package proto

import "bytes"

// Native is the server's original line-oriented text protocol, kept
// wire-compatible with the pre-codec server: the same commands, the
// same reply spellings, the same error strings. One request is one
// CRLF (or LF) terminated line; fields are space/tab separated; keys
// and values are unsigned decimal integers.
type Native struct{}

// Name returns the protocol's telemetry label.
func (Native) Name() string { return "native" }

// nativeSep reports whether c separates fields (the ASCII subset of
// strings.Fields' separators — the protocol is ASCII).
func nativeSep(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

// fields iterates a line's whitespace-separated tokens without
// allocating.
type fields struct{ b []byte }

// next returns the next token, or nil when the line is exhausted.
func (f *fields) next() []byte {
	for len(f.b) > 0 && nativeSep(f.b[0]) {
		f.b = f.b[1:]
	}
	if len(f.b) == 0 {
		return nil
	}
	j := 0
	for j < len(f.b) && !nativeSep(f.b[j]) {
		j++
	}
	t := f.b[:j]
	f.b = f.b[j:]
	return t
}

// reset clears a request slot for reuse, keeping KV's backing array.
func (r *Request) reset() {
	r.Cmd = CmdNone
	r.KV = r.KV[:0]
	r.Stats = StatsAggregate
	r.Shard = 0
	r.HasShard = false
	r.Bad = KNone
	r.BadMsg = ""
	r.Dur = DurDurable
	r.WaitRepl = false
	r.Seq = 0
	r.HasSeq = false
	r.Addr = ""
}

// bad marks the request malformed with the error reply to answer.
func (r *Request) bad(kind Kind, msg string) {
	r.Cmd = CmdBad
	r.Bad = kind
	r.BadMsg = msg
}

// Parse decodes the first complete line in buf. Whitespace-only lines
// decode as CmdNone (consumed silently, like the old handler's empty-
// line skip); malformed commands decode as CmdBad carrying the
// pre-codec error strings.
func (Native) Parse(buf []byte, req *Request) (int, error) {
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		return 0, nil
	}
	n := i + 1
	req.reset()
	f := fields{b: buf[:i]}
	cmd := f.next()
	if cmd == nil {
		return n, nil
	}
	parseNativeCommand(cmd, &f, req)
	return n, nil
}

// ParseEOF decodes trailing bytes at EOF as a final unterminated line
// — the same grace bufio.Scanner extended the old handler.
func (Native) ParseEOF(buf []byte, req *Request) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	req.reset()
	f := fields{b: buf}
	if cmd := f.next(); cmd != nil {
		parseNativeCommand(cmd, &f, req)
	}
	return len(buf), nil
}

// parseDur recognizes a durability-tier token. Mutating commands accept
// one as an optional trailing argument in both adapters.
func parseDur(t []byte) (Durability, bool) {
	switch {
	case eqFold(t, "durable"):
		return DurDurable, true
	case eqFold(t, "relaxed"):
		return DurRelaxed, true
	case eqFold(t, "fire"):
		return DurFire, true
	}
	return DurDurable, false
}

// badOptMsg is the error text for an unrecognized (or duplicated)
// trailing option token.
const badOptMsg = "bad option (durable|relaxed|fire|seq=<n>)"

// badSeqMsg is the error text for a malformed, zero, or duplicated
// request sequence number.
const badSeqMsg = "bad seq (must be an integer >= 1, at most once)"

// seqOpt recognizes a `seq=<n>` trailing token. isSeq reports that the
// token carried the seq= prefix; ok that its value parsed and n >= 1.
func seqOpt(t []byte) (n uint64, isSeq, ok bool) {
	if len(t) < 4 || !eqFold(t[:4], "seq=") {
		return 0, false, false
	}
	v, okv := parseUint64(t[4:])
	return v, true, okv && v > 0
}

// applyOpt folds one trailing-option token — a durability tier or a
// seq=<n> tag — into req. isOpt reports whether t was an option token
// at all; when it was but its value was bad or duplicated, req is
// marked bad and ok is false. Both adapters share it.
func applyOpt(t []byte, req *Request, haveDur, haveSeq *bool) (isOpt, ok bool) {
	if d, okd := parseDur(t); okd {
		if *haveDur {
			req.bad(KErrClient, badOptMsg)
			return true, false
		}
		*haveDur = true
		req.Dur = d
		return true, true
	}
	if n, isSeq, oks := seqOpt(t); isSeq {
		if !oks || *haveSeq {
			req.bad(KErrClient, badSeqMsg)
			return true, false
		}
		*haveSeq = true
		req.Seq = n
		req.HasSeq = true
		return true, true
	}
	return false, false
}

// parseTrailingOpts consumes a mutating command's optional trailing
// options — a durability tier and/or a seq=<n> tag, in either order,
// each at most once — plus end-of-line, reporting false (with the
// request marked bad) on anything else.
func parseTrailingOpts(f *fields, req *Request) bool {
	return parseOptsFrom(f.next(), f, req)
}

// parseOptsFrom is parseTrailingOpts with the first token already in
// hand — mset's argument loop stops on the first non-numeric token.
func parseOptsFrom(t []byte, f *fields, req *Request) bool {
	var haveDur, haveSeq bool
	for ; t != nil; t = f.next() {
		isOpt, ok := applyOpt(t, req, &haveDur, &haveSeq)
		if !ok {
			if !isOpt {
				req.bad(KErrClient, badOptMsg)
			}
			return false
		}
	}
	return true
}

// parseNativeCommand decodes one tokenized command line into req. It
// is shared with the RESP adapter's inline-command form.
func parseNativeCommand(cmd []byte, f *fields, req *Request) {
	switch {
	case eqFold(cmd, "get"):
		k := f.next()
		if k == nil || f.next() != nil {
			req.bad(KErrClient, "usage: get <key>")
			return
		}
		v, ok := parseUint64(k)
		if !ok {
			req.bad(KErrClient, "bad key")
			return
		}
		req.Cmd = CmdGet
		req.KV = append(req.KV, v)

	case eqFold(cmd, "set"):
		k, val := f.next(), f.next()
		if k == nil || val == nil {
			req.bad(KErrClient, "usage: set <key> <value>")
			return
		}
		if !parseTrailingOpts(f, req) {
			return
		}
		kn, ok1 := parseUint64(k)
		vn, ok2 := parseUint64(val)
		if !ok1 || !ok2 {
			req.bad(KErrClient, "keys and values are unsigned integers")
			return
		}
		req.Cmd = CmdSet
		req.KV = append(req.KV, kn, vn)

	case eqFold(cmd, "incr"):
		k, d := f.next(), f.next()
		if k == nil || d == nil {
			req.bad(KErrClient, "usage: incr <key> <delta>")
			return
		}
		if !parseTrailingOpts(f, req) {
			return
		}
		kn, ok1 := parseUint64(k)
		dn, ok2 := parseUint64(d)
		if !ok1 || !ok2 {
			req.bad(KErrClient, "bad arguments")
			return
		}
		req.Cmd = CmdIncr
		req.KV = append(req.KV, kn, dn)

	case eqFold(cmd, "delete"):
		for t := f.next(); t != nil; t = f.next() {
			v, ok := parseUint64(t)
			if !ok {
				// Non-numeric tokens end the keys: they are the trailing
				// options (tier and/or seq=<n>), as in mset.
				if !parseOptsFrom(t, f, req) {
					return
				}
				break
			}
			req.KV = append(req.KV, v)
		}
		if len(req.KV) == 0 {
			req.bad(KErrClient, "usage: delete <key> ...")
			return
		}
		req.Cmd = CmdDelete

	case eqFold(cmd, "mget"):
		for t := f.next(); t != nil; t = f.next() {
			v, ok := parseUint64(t)
			if !ok {
				req.bad(KErrClient, "bad key")
				return
			}
			req.KV = append(req.KV, v)
		}
		if len(req.KV) == 0 {
			req.bad(KErrClient, "usage: mget <key> ...")
			return
		}
		req.Cmd = CmdMGet

	case eqFold(cmd, "mset"):
		for t := f.next(); t != nil; t = f.next() {
			v, ok := parseUint64(t)
			if !ok {
				// Non-numeric tokens end the pairs: they are the trailing
				// options (tier and/or seq=<n>).
				if !parseOptsFrom(t, f, req) {
					return
				}
				break
			}
			req.KV = append(req.KV, v)
		}
		if len(req.KV) == 0 || len(req.KV)%2 != 0 {
			req.bad(KErrClient, "usage: mset <key> <value> ...")
			return
		}
		req.Cmd = CmdMSet

	case eqFold(cmd, "zadd"):
		k, val := f.next(), f.next()
		if k == nil || val == nil {
			req.bad(KErrClient, "usage: zadd <key> <value>")
			return
		}
		if !parseTrailingOpts(f, req) {
			return
		}
		kn, ok1 := parseUint64(k)
		vn, ok2 := parseUint64(val)
		if !ok1 || !ok2 {
			req.bad(KErrClient, "keys and values are unsigned integers")
			return
		}
		req.Cmd = CmdZAdd
		req.KV = append(req.KV, kn, vn)

	case eqFold(cmd, "zget"):
		k := f.next()
		if k == nil || f.next() != nil {
			req.bad(KErrClient, "usage: zget <key>")
			return
		}
		v, ok := parseUint64(k)
		if !ok {
			req.bad(KErrClient, "bad key")
			return
		}
		req.Cmd = CmdZGet
		req.KV = append(req.KV, v)

	case eqFold(cmd, "zincr"):
		k, d := f.next(), f.next()
		if k == nil || d == nil {
			req.bad(KErrClient, "usage: zincr <key> <delta>")
			return
		}
		if !parseTrailingOpts(f, req) {
			return
		}
		kn, ok1 := parseUint64(k)
		dn, ok2 := parseUint64(d)
		if !ok1 || !ok2 {
			req.bad(KErrClient, "bad arguments")
			return
		}
		req.Cmd = CmdZIncr
		req.KV = append(req.KV, kn, dn)

	case eqFold(cmd, "zdel"):
		k := f.next()
		if k == nil {
			req.bad(KErrClient, "usage: zdel <key>")
			return
		}
		if !parseTrailingOpts(f, req) {
			return
		}
		v, ok := parseUint64(k)
		if !ok {
			req.bad(KErrClient, "bad key")
			return
		}
		req.Cmd = CmdZDel
		req.KV = append(req.KV, v)

	case eqFold(cmd, "zrange"):
		lo, hi, limit := f.next(), f.next(), f.next()
		if lo == nil || hi == nil || f.next() != nil {
			req.bad(KErrClient, "usage: zrange <lo> <hi> [limit]")
			return
		}
		ln, ok1 := parseUint64(lo)
		hn, ok2 := parseUint64(hi)
		if !ok1 || !ok2 {
			req.bad(KErrClient, "bad bounds")
			return
		}
		req.KV = append(req.KV, ln, hn)
		if limit != nil {
			mn, ok := parseUint64(limit)
			if !ok {
				req.bad(KErrClient, "bad limit")
				return
			}
			req.KV = append(req.KV, mn)
		}
		req.Cmd = CmdZRange

	case eqFold(cmd, "zcount"):
		lo, hi := f.next(), f.next()
		if lo == nil || hi == nil || f.next() != nil {
			req.bad(KErrClient, "usage: zcount <lo> <hi>")
			return
		}
		ln, ok1 := parseUint64(lo)
		hn, ok2 := parseUint64(hi)
		if !ok1 || !ok2 {
			req.bad(KErrClient, "bad bounds")
			return
		}
		req.Cmd = CmdZCount
		req.KV = append(req.KV, ln, hn)

	case eqFold(cmd, "wait"):
		// wait [epoch [timeout-ms]] blocks on the persistent epoch
		// frontier (epoch 0 or none = the epoch current at execution);
		// wait repl [timeout-ms] blocks on one follower ack instead.
		const waitUsage = "usage: wait [epoch [timeout-ms]] | wait repl [timeout-ms]"
		var target, timeout uint64
		a := f.next()
		switch {
		case a == nil:
		case eqFold(a, "repl"):
			req.WaitRepl = true
			target = 1
			if t := f.next(); t != nil {
				tn, ok := parseUint64(t)
				if !ok || f.next() != nil {
					req.bad(KErrClient, waitUsage)
					return
				}
				timeout = tn
			}
		default:
			en, ok := parseUint64(a)
			if !ok {
				req.bad(KErrClient, waitUsage)
				return
			}
			target = en
			if t := f.next(); t != nil {
				tn, ok := parseUint64(t)
				if !ok || f.next() != nil {
					req.bad(KErrClient, waitUsage)
					return
				}
				timeout = tn
			}
		}
		req.Cmd = CmdWait
		req.KV = append(req.KV, target, timeout)

	case eqFold(cmd, "session"):
		id := f.next()
		if id == nil || f.next() != nil {
			req.bad(KErrClient, "usage: session <id>")
			return
		}
		v, ok := parseUint64(id)
		if !ok || v == 0 {
			req.bad(KErrClient, "bad session id (must be an integer >= 1)")
			return
		}
		req.Cmd = CmdSession
		req.KV = append(req.KV, v)

	case eqFold(cmd, "stats"):
		req.Cmd = CmdStats
		arg := f.next()
		if arg != nil && f.next() == nil {
			switch {
			case eqFold(arg, "shards"):
				req.Stats = StatsShards
			case eqFold(arg, "reset"):
				req.Stats = StatsReset
			}
		}

	case eqFold(cmd, "crash"):
		arg := f.next()
		switch {
		case arg == nil:
			req.Cmd = CmdCrash
		case f.next() == nil:
			req.Cmd = CmdCrash
			req.HasShard = true
			req.Shard = parseShard(arg)
		default:
			req.bad(KErrClient, "usage: crash [shard]")
		}

	case eqFold(cmd, "promote"):
		req.Cmd = CmdPromote

	case eqFold(cmd, "cluster"):
		arg := f.next()
		if arg != nil && (!eqFold(arg, "info") || f.next() != nil) {
			req.bad(KErrClient, "usage: cluster [info]")
			return
		}
		req.Cmd = CmdCluster

	case eqFold(cmd, "migrate"):
		slot, addr := f.next(), f.next()
		if slot == nil || addr == nil || f.next() != nil {
			req.bad(KErrClient, "usage: migrate <slot> <addr>")
			return
		}
		sn, ok := parseUint64(slot)
		if !ok {
			req.bad(KErrClient, "bad slot")
			return
		}
		req.Cmd = CmdMigrate
		req.KV = append(req.KV, sn)
		req.Addr = string(addr)

	case eqFold(cmd, "acceptslot"):
		slot := f.next()
		if slot == nil || f.next() != nil {
			req.bad(KErrClient, "usage: acceptslot <slot>")
			return
		}
		sn, ok := parseUint64(slot)
		if !ok {
			req.bad(KErrClient, "bad slot")
			return
		}
		req.Cmd = CmdAcceptSlot
		req.KV = append(req.KV, sn)

	case eqFold(cmd, "ping"):
		req.Cmd = CmdPing

	case eqFold(cmd, "quit"):
		if f.next() != nil {
			req.bad(KErrProto, "unknown command")
			return
		}
		req.Cmd = CmdQuit

	default:
		req.bad(KErrProto, "unknown command")
	}
}

// parseShard parses a signed shard index; anything unparseable maps to
// -1, which fails the server's range check with the same error an
// explicit -1 does (matching the old strconv.Atoi behavior).
func parseShard(b []byte) int {
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	v, ok := parseUint64(b)
	if !ok || v > 1<<31 {
		return -1
	}
	if neg {
		return -int(v)
	}
	return int(v)
}

// Encode appends rep's native-text form — one or more CRLF-terminated
// lines — to dst.
func (Native) Encode(dst []byte, rep *Reply) []byte {
	switch rep.Kind {
	case KNone, KQuit:
		return dst
	case KStored:
		dst = append(dst, "STORED"...)
		dst = appendEpoch(dst, rep.Epoch)
		return append(dst, '\r', '\n')
	case KStoredN:
		dst = append(dst, "STORED "...)
		dst = appendUint(dst, uint64(rep.N))
		dst = appendEpoch(dst, rep.Epoch)
		return append(dst, '\r', '\n')
	case KValue:
		dst = append(dst, "VALUE "...)
		dst = appendUint(dst, rep.Key)
		dst = append(dst, ' ')
		dst = appendUint(dst, rep.Val)
		return append(dst, '\r', '\n')
	case KNotFound:
		return append(dst, "NOT_FOUND\r\n"...)
	case KInt:
		dst = appendUint(dst, rep.Val)
		dst = appendEpoch(dst, rep.Epoch)
		return append(dst, '\r', '\n')
	case KDelete:
		for _, it := range rep.Items {
			if it.Found {
				dst = append(dst, "DELETED\r\n"...)
			} else {
				dst = append(dst, "NOT_FOUND\r\n"...)
			}
		}
		return dst
	case KMGet:
		for _, it := range rep.Items {
			if it.Found {
				dst = append(dst, "VALUE "...)
				dst = appendUint(dst, it.Key)
				dst = append(dst, ' ')
				dst = appendUint(dst, it.Val)
			} else {
				dst = append(dst, "NOT_FOUND "...)
				dst = appendUint(dst, it.Key)
			}
			dst = append(dst, '\r', '\n')
		}
		return append(dst, "END\r\n"...)
	case KRange:
		for _, it := range rep.Items {
			dst = append(dst, "VALUE "...)
			dst = appendUint(dst, it.Key)
			dst = append(dst, ' ')
			dst = appendUint(dst, it.Val)
			dst = append(dst, '\r', '\n')
		}
		return append(dst, "END\r\n"...)
	case KRaw:
		dst = append(dst, rep.Msg...)
		return append(dst, '\r', '\n')
	case KPong:
		return append(dst, "PONG\r\n"...)
	case KEmpty:
		return append(dst, "END\r\n"...)
	case KMoved:
		dst = append(dst, "MOVED "...)
		dst = appendUint(dst, uint64(rep.N))
		dst = append(dst, ' ')
		dst = append(dst, rep.Msg...)
		return append(dst, '\r', '\n')
	case KErrClient:
		dst = append(dst, "CLIENT_ERROR "...)
		dst = append(dst, rep.Msg...)
		return append(dst, '\r', '\n')
	case KErrServer:
		dst = append(dst, "SERVER_ERROR "...)
		dst = append(dst, rep.Msg...)
		return append(dst, '\r', '\n')
	default: // KErrProto and anything unmapped
		dst = append(dst, "ERROR "...)
		dst = append(dst, rep.Msg...)
		return append(dst, '\r', '\n')
	}
}

// appendEpoch appends the " @<epoch>" durability-receipt suffix when a
// reply carries an epoch stamp (relaxed/fire acknowledgements).
func appendEpoch(dst []byte, epoch uint64) []byte {
	if epoch == 0 {
		return dst
	}
	dst = append(dst, " @"...)
	return appendUint(dst, epoch)
}

// Resync skips to the next line boundary: everything up to and
// including the next LF belongs to the abandoned oversized request.
func (Native) Resync(buf []byte) (int, ResyncState) {
	if i := bytes.IndexByte(buf, '\n'); i >= 0 {
		return i + 1, ResyncDone
	}
	return len(buf), ResyncMore
}

// AppendRequest appends req's native wire form (one CRLF-terminated
// line) to dst — the client side of the protocol, used by benchmarks,
// examples and round-trip tests. Requests a client cannot express
// (CmdNone, CmdBad) append nothing.
func (Native) AppendRequest(dst []byte, req *Request) []byte {
	var name string
	switch req.Cmd {
	case CmdGet:
		name = "get"
	case CmdSet:
		name = "set"
	case CmdIncr:
		name = "incr"
	case CmdDelete:
		name = "delete"
	case CmdMGet:
		name = "mget"
	case CmdMSet:
		name = "mset"
	case CmdZAdd:
		name = "zadd"
	case CmdZGet:
		name = "zget"
	case CmdZIncr:
		name = "zincr"
	case CmdZDel:
		name = "zdel"
	case CmdZRange:
		name = "zrange"
	case CmdZCount:
		name = "zcount"
	case CmdWait:
		dst = append(dst, "wait"...)
		if req.WaitRepl {
			dst = append(dst, " repl"...)
			if len(req.KV) > 1 && req.KV[1] != 0 {
				dst = append(dst, ' ')
				dst = appendUint(dst, req.KV[1])
			}
		} else if len(req.KV) > 0 {
			dst = append(dst, ' ')
			dst = appendUint(dst, req.KV[0])
			if len(req.KV) > 1 && req.KV[1] != 0 {
				dst = append(dst, ' ')
				dst = appendUint(dst, req.KV[1])
			}
		}
		return append(dst, '\r', '\n')
	case CmdSession:
		name = "session"
	case CmdStats:
		name = "stats"
	case CmdCrash:
		name = "crash"
	case CmdPromote:
		name = "promote"
	case CmdCluster:
		name = "cluster"
	case CmdMigrate:
		dst = append(dst, "migrate "...)
		if len(req.KV) > 0 {
			dst = appendUint(dst, req.KV[0])
		}
		dst = append(dst, ' ')
		dst = append(dst, req.Addr...)
		return append(dst, '\r', '\n')
	case CmdAcceptSlot:
		name = "acceptslot"
	case CmdPing:
		name = "ping"
	case CmdQuit:
		name = "quit"
	default:
		return dst
	}
	dst = append(dst, name...)
	for _, v := range req.KV {
		dst = append(dst, ' ')
		dst = appendUint(dst, v)
	}
	if req.Dur != DurDurable {
		switch req.Cmd {
		case CmdSet, CmdIncr, CmdDelete, CmdMSet, CmdZAdd, CmdZIncr, CmdZDel:
			dst = append(dst, ' ')
			dst = append(dst, req.Dur.String()...)
		}
	}
	if req.HasSeq {
		switch req.Cmd {
		case CmdSet, CmdIncr, CmdDelete, CmdMSet, CmdZAdd, CmdZIncr, CmdZDel:
			dst = append(dst, " seq="...)
			dst = appendUint(dst, req.Seq)
		}
	}
	if req.Cmd == CmdStats {
		switch req.Stats {
		case StatsShards:
			dst = append(dst, " shards"...)
		case StatsReset:
			dst = append(dst, " reset"...)
		}
	}
	if req.Cmd == CmdCrash && req.HasShard {
		dst = append(dst, ' ')
		dst = appendUint(dst, uint64(req.Shard))
	}
	return append(dst, '\r', '\n')
}
