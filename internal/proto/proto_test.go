package proto

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// decodeAll runs a decoder to EOF, copying every request out of the
// arena so tests can inspect them after the fact.
func decodeAll(t *testing.T, d *Decoder) ([]Request, error) {
	t.Helper()
	var out []Request
	for {
		batch, err := d.Next()
		for _, r := range batch {
			c := r
			c.KV = append([]uint64(nil), r.KV...)
			out = append(out, c)
		}
		if err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
	}
}

func TestNativeParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		cmd  Cmd
		kv   []uint64
		bad  string
		kind Kind
	}{
		{"get 7\r\n", CmdGet, []uint64{7}, "", KNone},
		{"GET 7\n", CmdGet, []uint64{7}, "", KNone},
		{"set 1 2\r\n", CmdSet, []uint64{1, 2}, "", KNone},
		{"  set   1\t2  \r\n", CmdSet, []uint64{1, 2}, "", KNone},
		{"incr 3 4\r\n", CmdIncr, []uint64{3, 4}, "", KNone},
		{"delete 9\r\n", CmdDelete, []uint64{9}, "", KNone},
		{"mget 1 2 3\r\n", CmdMGet, []uint64{1, 2, 3}, "", KNone},
		{"mset 1 2 3 4\r\n", CmdMSet, []uint64{1, 2, 3, 4}, "", KNone},
		{"ping\r\n", CmdPing, nil, "", KNone},
		{"quit\r\n", CmdQuit, nil, "", KNone},
		{"promote\r\n", CmdPromote, nil, "", KNone},
		{"get\r\n", CmdBad, nil, "usage: get <key>", KErrClient},
		{"get x\r\n", CmdBad, nil, "bad key", KErrClient},
		{"set 1\r\n", CmdBad, nil, "usage: set <key> <value>", KErrClient},
		{"set a b\r\n", CmdBad, nil, "keys and values are unsigned integers", KErrClient},
		{"mset 1 2 3\r\n", CmdBad, nil, "usage: mset <key> <value> ...", KErrClient},
		{"bogus\r\n", CmdBad, nil, "unknown command", KErrProto},
		{"quit now\r\n", CmdBad, nil, "unknown command", KErrProto},
		{"crash 0 1\r\n", CmdBad, nil, "usage: crash [shard]", KErrClient},
	}
	var na Native
	for _, tc := range cases {
		var req Request
		n, err := na.Parse([]byte(tc.in), &req)
		if err != nil || n != len(tc.in) {
			t.Fatalf("Parse(%q) = %d, %v; want %d, nil", tc.in, n, err, len(tc.in))
		}
		if req.Cmd != tc.cmd {
			t.Errorf("Parse(%q).Cmd = %d, want %d", tc.in, req.Cmd, tc.cmd)
		}
		if tc.cmd == CmdBad {
			if req.BadMsg != tc.bad || req.Bad != tc.kind {
				t.Errorf("Parse(%q) bad = %q/%d, want %q/%d", tc.in, req.BadMsg, req.Bad, tc.bad, tc.kind)
			}
			continue
		}
		if len(req.KV) != len(tc.kv) {
			t.Errorf("Parse(%q).KV = %v, want %v", tc.in, req.KV, tc.kv)
			continue
		}
		for i := range tc.kv {
			if req.KV[i] != tc.kv[i] {
				t.Errorf("Parse(%q).KV = %v, want %v", tc.in, req.KV, tc.kv)
				break
			}
		}
	}
}

func TestNativeParseStatsAndCrash(t *testing.T) {
	var na Native
	var req Request
	for in, want := range map[string]StatsSub{
		"stats\r\n":        StatsAggregate,
		"stats shards\r\n": StatsShards,
		"stats reset\r\n":  StatsReset,
		"stats bogus\r\n":  StatsAggregate, // unknown variant falls back, as before
		"stats a b\r\n":    StatsAggregate,
	} {
		if _, err := na.Parse([]byte(in), &req); err != nil || req.Cmd != CmdStats || req.Stats != want {
			t.Errorf("Parse(%q) = cmd %d stats %d err %v, want CmdStats/%d", in, req.Cmd, req.Stats, err, want)
		}
	}
	if _, _ = na.Parse([]byte("crash\r\n"), &req); req.Cmd != CmdCrash || req.HasShard {
		t.Errorf("crash: got %+v", req)
	}
	if _, _ = na.Parse([]byte("crash 2\r\n"), &req); req.Cmd != CmdCrash || !req.HasShard || req.Shard != 2 {
		t.Errorf("crash 2: got %+v", req)
	}
	if _, _ = na.Parse([]byte("crash xx\r\n"), &req); req.Cmd != CmdCrash || !req.HasShard || req.Shard != -1 {
		t.Errorf("crash xx: got %+v", req)
	}
	if _, _ = na.Parse([]byte("crash -3\r\n"), &req); req.Cmd != CmdCrash || req.Shard != -3 {
		t.Errorf("crash -3: got %+v", req)
	}
}

func TestNativeEncodeKinds(t *testing.T) {
	var na Native
	cases := []struct {
		rep  Reply
		want string
	}{
		{Reply{Kind: KStored}, "STORED\r\n"},
		{Reply{Kind: KStoredN, N: 3}, "STORED 3\r\n"},
		{Reply{Kind: KValue, Key: 4, Val: 9}, "VALUE 4 9\r\n"},
		{Reply{Kind: KNotFound}, "NOT_FOUND\r\n"},
		{Reply{Kind: KInt, Val: 12}, "12\r\n"},
		{Reply{Kind: KDelete, Items: []Item{{Key: 1, Found: true}}}, "DELETED\r\n"},
		{Reply{Kind: KDelete, Items: []Item{{Key: 1}}}, "NOT_FOUND\r\n"},
		{Reply{Kind: KMGet, Items: []Item{{Key: 1, Val: 2, Found: true}, {Key: 3}}},
			"VALUE 1 2\r\nNOT_FOUND 3\r\nEND\r\n"},
		{Reply{Kind: KRaw, Msg: "OK"}, "OK\r\n"},
		{Reply{Kind: KPong}, "PONG\r\n"},
		{Reply{Kind: KQuit}, ""},
		{Reply{Kind: KNone}, ""},
		{Reply{Kind: KErrClient, Msg: "bad key"}, "CLIENT_ERROR bad key\r\n"},
		{Reply{Kind: KErrServer, Msg: "boom"}, "SERVER_ERROR boom\r\n"},
		{Reply{Kind: KErrProto, Msg: "unknown command"}, "ERROR unknown command\r\n"},
	}
	for _, tc := range cases {
		got := string(na.Encode(nil, &tc.rep))
		if got != tc.want {
			t.Errorf("Encode(%+v) = %q, want %q", tc.rep, got, tc.want)
		}
	}
}

// chunkReader returns one byte per Read, forcing the decoder to
// reassemble requests across many fills.
type chunkReader struct{ b []byte }

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p[:1], c.b)
	c.b = c.b[n:]
	return n, nil
}

func TestDecoderBatchesPipelinedInput(t *testing.T) {
	in := "set 1 10\r\nset 2 20\r\nget 1\r\nmget 1 2\r\n"
	d := NewDecoder(strings.NewReader(in), Native{}, 0)
	batch, err := d.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if len(batch) != 4 {
		t.Fatalf("one buffered write should decode as one batch; got %d requests", len(batch))
	}
	want := []Cmd{CmdSet, CmdSet, CmdGet, CmdMGet}
	for i, r := range batch {
		if r.Cmd != want[i] {
			t.Errorf("batch[%d].Cmd = %d, want %d", i, r.Cmd, want[i])
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next after drain = %v, want EOF", err)
	}
}

func TestDecoderChunkedAndTrailingLine(t *testing.T) {
	in := "set 5 50\r\nget 5" // final line unterminated at EOF
	d := NewDecoder(&chunkReader{b: []byte(in)}, Native{}, 0)
	reqs, err := decodeAll(t, d)
	if err != nil {
		t.Fatalf("decodeAll: %v", err)
	}
	if len(reqs) != 2 || reqs[0].Cmd != CmdSet || reqs[1].Cmd != CmdGet || reqs[1].KV[0] != 5 {
		t.Fatalf("got %+v, want set then trailing get", reqs)
	}
}

func TestDecoderSkipsBlankLines(t *testing.T) {
	d := NewDecoder(strings.NewReader("\r\n \t\r\nping\r\n"), Native{}, 0)
	batch, err := d.Next()
	if err != nil || len(batch) != 1 || batch[0].Cmd != CmdPing {
		t.Fatalf("got %v, %v; want single ping", batch, err)
	}
}

func TestDecoderTooLargeNativeRecovers(t *testing.T) {
	// Complete-but-over-limit: the line fits the read buffer, so the
	// decoder answers the error at a known boundary without resyncing.
	huge := "mset " + strings.Repeat("1 2 ", 400) // ~1600 bytes
	in := huge + "\r\nget 7\r\n"
	d := NewDecoder(strings.NewReader(in), Native{}, 128)
	got, err := decodeAll(t, d)
	if err != nil {
		t.Fatalf("decodeAll: %v", err)
	}
	if len(got) != 2 || got[0].Cmd != CmdBad || got[0].BadMsg != tooLargeMsg {
		t.Fatalf("want too-large CmdBad then get, got %+v", got)
	}
	if got[1].Cmd != CmdGet || got[1].KV[0] != 7 {
		t.Fatalf("connection should survive an oversized line; got %+v", got)
	}

	// Over-buffer-capacity: the request cannot even be buffered whole,
	// so the decoder answers early and resyncs to the next newline.
	huge = "mset " + strings.Repeat("1 2 ", 4000) // ~16KB > 4KB read buffer
	in = huge + "\r\nget 9\r\n"
	d = NewDecoder(&chunkReader{b: []byte(in)}, Native{}, 128)
	got, err = decodeAll(t, d)
	if err != nil {
		t.Fatalf("decodeAll (resync): %v", err)
	}
	if len(got) != 2 || got[0].BadMsg != tooLargeMsg || got[1].Cmd != CmdGet || got[1].KV[0] != 9 {
		t.Fatalf("resync should recover the stream; got %+v", got)
	}
}

func TestDecoderTooLargeRESPIsFatal(t *testing.T) {
	var rs RESP
	var buf []byte
	req := Request{Cmd: CmdSet, KV: []uint64{1, 2}}
	buf = rs.AppendRequest(buf, &req)
	huge := append([]byte("*3\r\n$4\r\nMSET\r\n$200\r\n"), bytes.Repeat([]byte("9"), 200)...)
	d := NewDecoder(bytes.NewReader(append(buf, huge...)), RESP{}, 64)
	batch, err := d.Next()
	if err != nil || len(batch) != 2 || batch[0].Cmd != CmdSet || batch[1].BadMsg != tooLargeMsg {
		t.Fatalf("first batch should carry the set and the too-large error: %+v, %v", batch, err)
	}
	if _, err = d.Next(); err != ErrDesync {
		t.Fatalf("RESP cannot resync; Next = %v, want ErrDesync", err)
	}
}

func TestRESPParseArrayAndInline(t *testing.T) {
	var rs RESP
	var req Request
	wire := "*3\r\n$3\r\nSET\r\n$2\r\n42\r\n$1\r\n7\r\n"
	n, err := rs.Parse([]byte(wire), &req)
	if err != nil || n != len(wire) || req.Cmd != CmdSet || req.KV[0] != 42 || req.KV[1] != 7 {
		t.Fatalf("array SET: n=%d err=%v req=%+v", n, err, req)
	}
	// Partial frame: incomplete, no consumption.
	if n, err := rs.Parse([]byte(wire[:11]), &req); n != 0 || err != nil {
		t.Fatalf("partial frame: n=%d err=%v", n, err)
	}
	// Inline form.
	if _, err := rs.Parse([]byte("GET 42\r\n"), &req); err != nil || req.Cmd != CmdGet || req.KV[0] != 42 {
		t.Fatalf("inline GET: err=%v req=%+v", err, req)
	}
	// Non-numeric keys hash, and SET/GET agree on the mapping.
	if _, err := rs.Parse([]byte("*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n"), &req); err != nil || req.Cmd != CmdGet {
		t.Fatalf("GET foo: %v %+v", err, req)
	}
	if req.KV[0] != fnv1a([]byte("foo")) {
		t.Fatalf("text key should FNV-hash: got %d", req.KV[0])
	}
	// Arity error decodes as CmdBad but keeps the stream aligned.
	wire = "*1\r\n$3\r\nGET\r\n*2\r\n$4\r\nINCR\r\n$1\r\n5\r\n"
	n, err = rs.Parse([]byte(wire), &req)
	if err != nil || req.Cmd != CmdBad || req.BadMsg != "wrong number of arguments for 'get' command" {
		t.Fatalf("GET arity: n=%d err=%v req=%+v", n, err, req)
	}
	rest := wire[n:]
	if _, err := rs.Parse([]byte(rest), &req); err != nil || req.Cmd != CmdIncr || req.KV[0] != 5 || req.KV[1] != 1 {
		t.Fatalf("post-arity INCR: err=%v req=%+v", err, req)
	}
	// Framing garbage is a hard error.
	if _, err := rs.Parse([]byte("*2\r\n$3\r\nGET\r\nnope\r\n"), &req); err == nil {
		t.Fatal("non-bulk element should be a protocol error")
	}
}

func TestRESPEncodeKinds(t *testing.T) {
	var rs RESP
	cases := []struct {
		rep  Reply
		want string
	}{
		{Reply{Kind: KStored}, "+OK\r\n"},
		{Reply{Kind: KStoredN, N: 4}, "+OK\r\n"},
		{Reply{Kind: KValue, Val: 123}, "$3\r\n123\r\n"},
		{Reply{Kind: KNotFound}, "$-1\r\n"},
		{Reply{Kind: KInt, Val: 9}, ":9\r\n"},
		{Reply{Kind: KDelete, Items: []Item{{Found: true}, {}, {Found: true}}}, ":2\r\n"},
		{Reply{Kind: KMGet, Items: []Item{{Val: 7, Found: true}, {}}}, "*2\r\n$1\r\n7\r\n$-1\r\n"},
		{Reply{Kind: KRaw, Msg: "x y"}, "$3\r\nx y\r\n"},
		{Reply{Kind: KPong}, "+PONG\r\n"},
		{Reply{Kind: KEmpty}, "*0\r\n"},
		{Reply{Kind: KQuit}, "+OK\r\n"},
		{Reply{Kind: KErrClient, Msg: "nope"}, "-ERR nope\r\n"},
	}
	for _, tc := range cases {
		if got := string(rs.Encode(nil, &tc.rep)); got != tc.want {
			t.Errorf("Encode(%+v) = %q, want %q", tc.rep, got, tc.want)
		}
	}
}

func TestRESPAppendRequestRoundTrip(t *testing.T) {
	var rs RESP
	reqs := []Request{
		{Cmd: CmdGet, KV: []uint64{1}},
		{Cmd: CmdSet, KV: []uint64{2, 20}},
		{Cmd: CmdIncr, KV: []uint64{3, 5}},
		{Cmd: CmdDelete, KV: []uint64{4, 5}},
		{Cmd: CmdMGet, KV: []uint64{1, 2, 3}},
		{Cmd: CmdMSet, KV: []uint64{6, 60, 7, 70}},
		{Cmd: CmdPing},
		{Cmd: CmdStats, Stats: StatsShards},
		{Cmd: CmdCrash, HasShard: true, Shard: 1},
		{Cmd: CmdQuit},
	}
	var wire []byte
	for i := range reqs {
		wire = rs.AppendRequest(wire, &reqs[i])
	}
	d := NewDecoder(bytes.NewReader(wire), RESP{}, 0)
	got, err := decodeAll(t, d)
	if err != nil {
		t.Fatalf("decodeAll: %v", err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round-trip count = %d, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i].Cmd != reqs[i].Cmd {
			t.Errorf("req %d: cmd %d, want %d", i, got[i].Cmd, reqs[i].Cmd)
		}
		for j := range reqs[i].KV {
			if got[i].KV[j] != reqs[i].KV[j] {
				t.Errorf("req %d: KV %v, want %v", i, got[i].KV, reqs[i].KV)
				break
			}
		}
	}
	if got[7].Stats != StatsShards {
		t.Errorf("stats sub lost: %+v", got[7])
	}
	if !got[8].HasShard || got[8].Shard != 1 {
		t.Errorf("crash shard lost: %+v", got[8])
	}
}

func TestNativeAppendRequestRoundTrip(t *testing.T) {
	var na Native
	reqs := []Request{
		{Cmd: CmdSet, KV: []uint64{2, 20}},
		{Cmd: CmdMSet, KV: []uint64{6, 60, 7, 70}},
		{Cmd: CmdGet, KV: []uint64{2}},
		{Cmd: CmdStats, Stats: StatsReset},
		{Cmd: CmdCrash, HasShard: true, Shard: 0},
	}
	var wire []byte
	for i := range reqs {
		wire = na.AppendRequest(wire, &reqs[i])
	}
	d := NewDecoder(bytes.NewReader(wire), Native{}, 0)
	got, err := decodeAll(t, d)
	if err != nil || len(got) != len(reqs) {
		t.Fatalf("decodeAll: %v, %d reqs", err, len(got))
	}
	for i := range reqs {
		if got[i].Cmd != reqs[i].Cmd {
			t.Errorf("req %d: cmd %d, want %d", i, got[i].Cmd, reqs[i].Cmd)
		}
	}
	if got[3].Stats != StatsReset || !got[4].HasShard || got[4].Shard != 0 {
		t.Errorf("modifiers lost: %+v / %+v", got[3], got[4])
	}
}

func TestEncoderStagesAndFlushes(t *testing.T) {
	var sink bytes.Buffer
	e := NewEncoder(&sink, Native{}, 0)
	e.Stage(&Reply{Kind: KStored})
	e.Stage(&Reply{Kind: KValue, Key: 1, Val: 2})
	if sink.Len() != 0 {
		t.Fatalf("staged replies must not hit the wire before Flush (wrote %d bytes)", sink.Len())
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := sink.String(); got != "STORED\r\nVALUE 1 2\r\n" {
		t.Fatalf("flushed %q", got)
	}
	if err := e.Flush(); err != nil || sink.Len() != len("STORED\r\nVALUE 1 2\r\n") {
		t.Fatalf("empty Flush should be a no-op")
	}
}

func TestEncoderBoundSpills(t *testing.T) {
	var sink bytes.Buffer
	e := NewEncoder(&sink, Native{}, 16)
	for i := 0; i < 10; i++ {
		e.Stage(&Reply{Kind: KStored}) // 8 bytes each
	}
	if sink.Len() == 0 {
		t.Fatal("bound should force mid-batch spills")
	}
	e.Flush()
	if got := sink.String(); got != strings.Repeat("STORED\r\n", 10) {
		t.Fatalf("spilled output corrupt: %q", got)
	}
}

func TestDecoderPeekAndUse(t *testing.T) {
	d := NewDecoder(strings.NewReader("*1\r\n$4\r\nPING\r\n"), Native{}, 0)
	b, err := d.Peek()
	if err != nil || b != '*' {
		t.Fatalf("Peek = %q, %v", b, err)
	}
	d.Use(RESP{})
	if d.Adapter().Name() != "resp" {
		t.Fatalf("Use did not switch adapter")
	}
	batch, err := d.Next()
	if err != nil || len(batch) != 1 || batch[0].Cmd != CmdPing {
		t.Fatalf("sniffed RESP ping: %v, %v", batch, err)
	}
}

func TestParseUint64Overflow(t *testing.T) {
	if _, ok := parseUint64([]byte("18446744073709551615")); !ok {
		t.Error("max uint64 should parse")
	}
	if _, ok := parseUint64([]byte("18446744073709551616")); ok {
		t.Error("overflow should fail")
	}
	if _, ok := parseUint64([]byte("")); ok {
		t.Error("empty should fail")
	}
	if _, ok := parseUint64([]byte("12x")); ok {
		t.Error("non-digit should fail")
	}
}

func TestDecoderManyPipelinedBatchCap(t *testing.T) {
	var wire []byte
	var na Native
	for i := 0; i < maxBatch+10; i++ {
		req := Request{Cmd: CmdSet, KV: []uint64{uint64(i), uint64(i)}}
		wire = na.AppendRequest(wire, &req)
	}
	d := NewDecoder(bytes.NewReader(wire), Native{}, 0)
	got, err := decodeAll(t, d)
	if err != nil || len(got) != maxBatch+10 {
		t.Fatalf("decoded %d reqs, err %v; want %d", len(got), err, maxBatch+10)
	}
}
