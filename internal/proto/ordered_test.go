package proto

import (
	"strings"
	"testing"
)

// Round-trip coverage for the ordered-keyspace (z*) commands in both
// adapters: parse, encode, and client-side AppendRequest.

func TestNativeParseOrdered(t *testing.T) {
	cases := []struct {
		in   string
		cmd  Cmd
		kv   []uint64
		bad  string
		kind Kind
	}{
		{"zadd 7 9\r\n", CmdZAdd, []uint64{7, 9}, "", KNone},
		{"ZADD 7 9\n", CmdZAdd, []uint64{7, 9}, "", KNone},
		{"zget 7\r\n", CmdZGet, []uint64{7}, "", KNone},
		{"zincr 3 4\r\n", CmdZIncr, []uint64{3, 4}, "", KNone},
		{"zdel 9\r\n", CmdZDel, []uint64{9}, "", KNone},
		{"zrange 10 20\r\n", CmdZRange, []uint64{10, 20}, "", KNone},
		{"zrange 10 20 5\r\n", CmdZRange, []uint64{10, 20, 5}, "", KNone},
		{"zcount 10 20\r\n", CmdZCount, []uint64{10, 20}, "", KNone},
		{"zadd 7\r\n", CmdBad, nil, "usage: zadd <key> <value>", KErrClient},
		{"zget\r\n", CmdBad, nil, "usage: zget <key>", KErrClient},
		{"zincr 3\r\n", CmdBad, nil, "usage: zincr <key> <delta>", KErrClient},
		{"zdel\r\n", CmdBad, nil, "usage: zdel <key>", KErrClient},
		{"zrange 10\r\n", CmdBad, nil, "usage: zrange <lo> <hi> [limit]", KErrClient},
		{"zrange a b\r\n", CmdBad, nil, "bad bounds", KErrClient},
		{"zrange 1 2 x\r\n", CmdBad, nil, "bad limit", KErrClient},
		{"zcount 1\r\n", CmdBad, nil, "usage: zcount <lo> <hi>", KErrClient},
	}
	var na Native
	for _, tc := range cases {
		var req Request
		n, err := na.Parse([]byte(tc.in), &req)
		if err != nil || n != len(tc.in) {
			t.Fatalf("Parse(%q) = %d, %v; want %d, nil", tc.in, n, err, len(tc.in))
		}
		if req.Cmd != tc.cmd {
			t.Errorf("Parse(%q).Cmd = %d, want %d", tc.in, req.Cmd, tc.cmd)
			continue
		}
		if tc.cmd == CmdBad {
			if req.BadMsg != tc.bad || req.Bad != tc.kind {
				t.Errorf("Parse(%q) bad = %q/%d, want %q/%d", tc.in, req.BadMsg, req.Bad, tc.bad, tc.kind)
			}
			continue
		}
		if len(req.KV) != len(tc.kv) {
			t.Errorf("Parse(%q).KV = %v, want %v", tc.in, req.KV, tc.kv)
			continue
		}
		for i := range tc.kv {
			if req.KV[i] != tc.kv[i] {
				t.Errorf("Parse(%q).KV = %v, want %v", tc.in, req.KV, tc.kv)
				break
			}
		}
	}
}

func TestNativeEncodeRange(t *testing.T) {
	var na Native
	rep := Reply{Kind: KRange, Items: []Item{
		{Key: 1, Val: 10, Found: true},
		{Key: 3, Val: 30, Found: true},
	}}
	want := "VALUE 1 10\r\nVALUE 3 30\r\nEND\r\n"
	if got := string(na.Encode(nil, &rep)); got != want {
		t.Fatalf("Encode(KRange) = %q, want %q", got, want)
	}
	empty := Reply{Kind: KRange}
	if got := string(na.Encode(nil, &empty)); got != "END\r\n" {
		t.Fatalf("Encode(empty KRange) = %q, want END", got)
	}
}

func TestRESPParseOrdered(t *testing.T) {
	var rs RESP
	var req Request
	wire := "*3\r\n$4\r\nZADD\r\n$2\r\n42\r\n$1\r\n7\r\n"
	if n, err := rs.Parse([]byte(wire), &req); err != nil || n != len(wire) ||
		req.Cmd != CmdZAdd || req.KV[0] != 42 || req.KV[1] != 7 {
		t.Fatalf("ZADD: n=%d err=%v req=%+v", n, err, req)
	}
	if _, err := rs.Parse([]byte("ZGET 42\r\n"), &req); err != nil || req.Cmd != CmdZGet || req.KV[0] != 42 {
		t.Fatalf("inline ZGET: err=%v req=%+v", err, req)
	}
	if _, err := rs.Parse([]byte("ZINCR 3 5\r\n"), &req); err != nil || req.Cmd != CmdZIncr ||
		req.KV[0] != 3 || req.KV[1] != 5 {
		t.Fatalf("ZINCR: err=%v req=%+v", err, req)
	}
	if _, err := rs.Parse([]byte("ZDEL 9\r\n"), &req); err != nil || req.Cmd != CmdZDel || req.KV[0] != 9 {
		t.Fatalf("ZDEL: err=%v req=%+v", err, req)
	}
	if _, err := rs.Parse([]byte("ZRANGE 10 20\r\n"), &req); err != nil || req.Cmd != CmdZRange ||
		req.KV[0] != 10 || req.KV[1] != 20 {
		t.Fatalf("ZRANGE: err=%v req=%+v", err, req)
	}
	if _, err := rs.Parse([]byte("ZRANGE 10 20 5\r\n"), &req); err != nil || req.Cmd != CmdZRange ||
		len(req.KV) != 3 || req.KV[2] != 5 {
		t.Fatalf("ZRANGE limit: err=%v req=%+v", err, req)
	}
	if _, err := rs.Parse([]byte("ZCOUNT 10 20\r\n"), &req); err != nil || req.Cmd != CmdZCount ||
		req.KV[0] != 10 || req.KV[1] != 20 {
		t.Fatalf("ZCOUNT: err=%v req=%+v", err, req)
	}
	// Bounds are positions, not keys: non-numeric bounds are rejected
	// rather than hashed.
	if _, err := rs.Parse([]byte("ZRANGE lo hi\r\n"), &req); err != nil || req.Cmd != CmdBad {
		t.Fatalf("ZRANGE text bounds should be CmdBad: err=%v req=%+v", err, req)
	}
	// ZINCR's delta must be numeric (redis's INCRBY contract).
	if _, err := rs.Parse([]byte("ZINCR 3 x\r\n"), &req); err != nil || req.Cmd != CmdBad ||
		!strings.Contains(req.BadMsg, "not an integer") {
		t.Fatalf("ZINCR text delta: err=%v req=%+v", err, req)
	}
}

func TestRESPEncodeRange(t *testing.T) {
	var rs RESP
	rep := Reply{Kind: KRange, Items: []Item{
		{Key: 1, Val: 10, Found: true},
		{Key: 3, Val: 30, Found: true},
	}}
	want := "*4\r\n$1\r\n1\r\n$2\r\n10\r\n$1\r\n3\r\n$2\r\n30\r\n"
	if got := string(rs.Encode(nil, &rep)); got != want {
		t.Fatalf("Encode(KRange) = %q, want %q", got, want)
	}
	empty := Reply{Kind: KRange}
	if got := string(rs.Encode(nil, &empty)); got != "*0\r\n" {
		t.Fatalf("Encode(empty KRange) = %q, want *0", got)
	}
}

// TestOrderedAppendRequestRoundTrip drives every z command through each
// adapter's client-side encoding and back through its parser.
func TestOrderedAppendRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Cmd: CmdZAdd, KV: []uint64{1, 10}},
		{Cmd: CmdZGet, KV: []uint64{1}},
		{Cmd: CmdZIncr, KV: []uint64{2, 5}},
		{Cmd: CmdZDel, KV: []uint64{3}},
		{Cmd: CmdZRange, KV: []uint64{0, 100}},
		{Cmd: CmdZRange, KV: []uint64{0, 100, 7}},
		{Cmd: CmdZCount, KV: []uint64{0, 100}},
	}
	type clientAdapter interface {
		Adapter
		AppendRequest([]byte, *Request) []byte
	}
	for _, ad := range []clientAdapter{Native{}, RESP{}} {
		var wire []byte
		for i := range reqs {
			wire = ad.AppendRequest(wire, &reqs[i])
		}
		for i := range reqs {
			var got Request
			n, err := ad.Parse(wire, &got)
			if err != nil || n == 0 {
				t.Fatalf("%s: Parse #%d: n=%d err=%v", ad.Name(), i, n, err)
			}
			wire = wire[n:]
			if got.Cmd != reqs[i].Cmd {
				t.Fatalf("%s: req %d round-tripped to cmd %d, want %d", ad.Name(), i, got.Cmd, reqs[i].Cmd)
			}
			if len(got.KV) != len(reqs[i].KV) {
				t.Fatalf("%s: req %d KV = %v, want %v", ad.Name(), i, got.KV, reqs[i].KV)
			}
			for j := range got.KV {
				if got.KV[j] != reqs[i].KV[j] {
					t.Fatalf("%s: req %d KV = %v, want %v", ad.Name(), i, got.KV, reqs[i].KV)
				}
			}
		}
		if len(wire) != 0 {
			t.Fatalf("%s: %d trailing bytes", ad.Name(), len(wire))
		}
	}
}
