// Package proto is the cache server's wire codec: a typed
// request/reply representation, a pipelined Decoder that drains many
// requests per socket read into one request batch, a staging Encoder
// that answers a whole decoded batch with one batched write, and an
// Adapter seam that keeps the framing/syntax of a concrete protocol
// (the native text protocol, RESP2) out of the server's execution
// path.
//
// The design goal is the same procrastination argument the storage
// stack is built on, applied to the network layer: persistence cost is
// cheapest paid in bulk, and so is protocol cost. A client that
// pipelines N commands into one TCP segment used to be served as N
// scanner iterations, N string dispatches and N small writes; with
// this codec the N commands surface as ONE []Request group, execute as
// ONE enqueue into the shard batch pipeline (bigger flat-combined
// groups, fewer doorbell wakeups), and answer with ONE write. On the
// hot path nothing is converted to a string: keys and values are
// parsed straight from the read buffer into uint64s, and replies are
// appended to a reusable staging buffer with strconv.Append-style
// helpers.
//
// A Request returned by Decoder.Next is valid until the next call to
// Next: its KV slice aliases a per-decoder arena that the next decode
// reuses. Callers that need a request to outlive the batch must copy
// it.
package proto

import "errors"

// Cmd identifies a decoded command, independent of which protocol
// carried it.
type Cmd uint8

// The command set. Native text and RESP both map into this one enum;
// commands a protocol does not define simply never decode from it.
const (
	// CmdNone marks a consumed-but-empty input (a blank line); the
	// server skips it without replying.
	CmdNone Cmd = iota
	// CmdGet reads one key: KV[0].
	CmdGet
	// CmdSet stores KV[1] under KV[0].
	CmdSet
	// CmdIncr adds KV[1] to KV[0], creating it at the delta if absent.
	CmdIncr
	// CmdDelete removes each key in KV (native carries exactly one;
	// RESP's DEL accepts several).
	CmdDelete
	// CmdMGet reads every key in KV, preserving request order.
	CmdMGet
	// CmdMSet stores KV[2i+1] under KV[2i] for each pair.
	CmdMSet
	// CmdZAdd stores KV[1] under KV[0] in the ordered keyspace.
	CmdZAdd
	// CmdZGet reads KV[0] from the ordered keyspace.
	CmdZGet
	// CmdZIncr adds KV[1] to KV[0] in the ordered keyspace, creating it
	// at the delta if absent.
	CmdZIncr
	// CmdZDel removes KV[0] from the ordered keyspace.
	CmdZDel
	// CmdZRange scans the ordered keyspace over [KV[0], KV[1]), capped
	// at KV[2] results when len(KV) == 3.
	CmdZRange
	// CmdZCount counts ordered keys in [KV[0], KV[1]).
	CmdZCount
	// CmdWait blocks until durability covers the caller's writes. With
	// Request.WaitRepl false it is an epoch barrier: KV[0] is the target
	// epoch (0 = the epoch current when the wait executes) and KV[1] a
	// timeout in milliseconds (0 = no timeout). With WaitRepl true it is
	// a replication barrier: KV[0] is the follower-ack count required
	// and KV[1] the timeout, RESP WAIT style.
	CmdWait
	// CmdSession binds the connection to client session KV[0] (session
	// ids start at 1). Subsequent mutations tagged seq=<n> are deduped
	// against the session's persistent window (see docs/PROTOCOL.md).
	CmdSession
	// CmdStats requests the telemetry view selected by Request.Stats.
	CmdStats
	// CmdCrash power-fails one shard (Request.HasShard) or all of them.
	CmdCrash
	// CmdPromote severs replication on a follower.
	CmdPromote
	// CmdPing asks for a liveness reply.
	CmdPing
	// CmdInfo asks for the server info text (RESP's INFO).
	CmdInfo
	// CmdCommand is RESP's COMMAND introspection; answered with an
	// empty array so redis-cli connects cleanly.
	CmdCommand
	// CmdQuit closes the connection after any staged replies flush.
	CmdQuit
	// CmdCluster asks for the cluster view: a node reports the slots it
	// owns and its ring epoch, a proxy reports the full slot → owner
	// table.
	CmdCluster
	// CmdMigrate hands slot KV[0] to the node at Request.Addr: the owner
	// streams the slot's snapshot + suffix there, flips ownership, and
	// answers misrouted commands with KMoved from then on.
	CmdMigrate
	// CmdAcceptSlot is the receiving side of a migration: the sender
	// issues it first on a fresh connection, and after the OK reply the
	// connection carries a replication-framed migration stream instead
	// of further commands.
	CmdAcceptSlot
	// CmdBad is a recognized-but-malformed request; Bad/BadMsg carry
	// the error reply the server must answer with.
	CmdBad
)

// Durability is a mutation's requested persistence tier — the
// Montage-style spectrum ROADMAP item 1 exposes per command. The zero
// value is full durability, so protocols that say nothing get today's
// behavior.
type Durability uint8

// The durability tiers, strongest first.
const (
	// DurDurable acknowledges after the write's Atlas critical section
	// committed: the pre-tier behavior, loss bound zero.
	DurDurable Durability = iota
	// DurRelaxed acknowledges on commit to the volatile overlay and
	// persists at the next epoch close: loss bounded by one epoch
	// interval.
	DurRelaxed
	// DurFire acknowledges before commit (fire-and-forget): the reply
	// carries no outcome and the loss bound is DurRelaxed's.
	DurFire
)

// String returns the tier's wire spelling.
func (d Durability) String() string {
	switch d {
	case DurRelaxed:
		return "relaxed"
	case DurFire:
		return "fire"
	default:
		return "durable"
	}
}

// StatsSub selects a stats variant.
type StatsSub uint8

// The stats variants of the native protocol.
const (
	// StatsAggregate is the whole-server merged view.
	StatsAggregate StatsSub = iota
	// StatsShards is the per-shard breakdown.
	StatsShards
	// StatsReset zeroes counters and histograms.
	StatsReset
)

// Request is one decoded command. It is protocol-neutral: every
// argument is already parsed to its numeric form, so the execution
// path never touches wire bytes or allocates per-command strings.
type Request struct {
	// Cmd is the decoded command.
	Cmd Cmd

	// KV holds the numeric arguments in wire order: keys for
	// Get/MGet/Delete, key/value pairs for Set/MSet, key then delta
	// for Incr. It aliases the decoder's arena and is only valid until
	// the next Decoder.Next call.
	KV []uint64

	// Stats selects the stats variant when Cmd == CmdStats.
	Stats StatsSub

	// Shard is the crash target when Cmd == CmdCrash and HasShard is
	// set; an unparseable target decodes as -1 so the server's
	// range check produces the usual error.
	Shard int

	// HasShard reports whether a crash request named a shard.
	HasShard bool

	// Dur is the durability tier a mutation requested; the zero value
	// (DurDurable) is the pre-tier behavior.
	Dur Durability

	// WaitRepl selects the replication-barrier form of CmdWait (wait
	// for follower acks) over the epoch-barrier form.
	WaitRepl bool

	// Seq is the per-session request sequence number a mutation carried
	// (native trailing `seq=<n>` token, RESP trailing `seq=<n>` bulk);
	// meaningful only when HasSeq is set. Sequence numbers start at 1.
	Seq uint64

	// HasSeq reports whether the request carried a sequence number and
	// therefore wants exactly-once dedup against the connection's
	// session window.
	HasSeq bool

	// Addr is the target address a CmdMigrate names. It is the one
	// argument that stays textual: addresses are routed, not stored.
	Addr string

	// Bad is the error class to answer with when Cmd == CmdBad
	// (KErrClient, KErrServer or KErrProto).
	Bad Kind

	// BadMsg is the error text to answer with when Cmd == CmdBad.
	BadMsg string
}

// Kind classifies a Reply for the adapter that encodes it.
type Kind uint8

// The reply kinds. Each adapter renders every kind in its own wire
// syntax; the server never formats protocol text itself.
const (
	// KNone encodes nothing (a skipped request).
	KNone Kind = iota
	// KStored acknowledges one set.
	KStored
	// KStoredN acknowledges a multi-set of Reply.N pairs.
	KStoredN
	// KValue is a get hit: Reply.Key holds Reply.Val.
	KValue
	// KNotFound is a get miss.
	KNotFound
	// KInt is a bare integer result (incr).
	KInt
	// KDelete reports per-key delete outcomes in Reply.Items.
	KDelete
	// KMGet reports a multi-get's per-key outcomes in Reply.Items.
	KMGet
	// KRange reports a zrange result: the ordered key/value pairs in
	// Reply.Items (every Item Found by construction).
	KRange
	// KRaw is pre-rendered text (stats, info, admin acknowledgements)
	// in Reply.Msg; native emits it verbatim, RESP as one bulk string.
	KRaw
	// KPong answers a ping.
	KPong
	// KEmpty is an empty result set (RESP's COMMAND).
	KEmpty
	// KQuit acknowledges a quit; native stays silent, RESP says +OK.
	KQuit
	// KMoved is a redirect: the slot in Reply.N lives at the node in
	// Reply.Msg ("?" when the new owner is still importing it and the
	// client should simply retry). The request was NOT executed.
	KMoved
	// KErrClient is a malformed-request error (Reply.Msg).
	KErrClient
	// KErrServer is an execution error (Reply.Msg).
	KErrServer
	// KErrProto is a protocol-level error (Reply.Msg).
	KErrProto
)

// Item is one key's outcome inside a multi-key reply.
type Item struct {
	// Key is the key the outcome belongs to.
	Key uint64
	// Val is the value read (meaningful only when Found).
	Val uint64
	// Found reports whether the key existed.
	Found bool
}

// Reply is one typed response. The server fills exactly one Reply per
// Request (KNone for requests that answer nothing) and the connection's
// adapter encodes it.
type Reply struct {
	// Kind selects the encoding.
	Kind Kind
	// Key is the key a KValue reply echoes.
	Key uint64
	// Val is the value of a KValue or KInt reply.
	Val uint64
	// N is the pair count a KStoredN reply reports.
	N int
	// Items carries per-key outcomes for KMGet and KDelete.
	Items []Item
	// Msg carries the text of KRaw and error replies.
	Msg string
	// Epoch, when nonzero, is the epoch a relaxed/fire mutation was
	// acknowledged under (epochs start at 1, so 0 means "no stamp").
	// The native adapter renders it as an " @<epoch>" suffix on
	// KStored/KStoredN/KInt; RESP ignores it for client compatibility.
	Epoch uint64
}

// ResyncState reports how an adapter's Resync attempt went.
type ResyncState uint8

// Resync outcomes.
const (
	// ResyncMore means the junk continues past the buffer; feed more.
	ResyncMore ResyncState = iota
	// ResyncDone means the stream is aligned on a request boundary.
	ResyncDone
	// ResyncFatal means the protocol cannot resynchronize; the
	// connection must close once staged replies have flushed.
	ResyncFatal
)

// Adapter is the protocol seam: everything the codec needs to know
// about one concrete wire protocol. Implementations must be stateless
// (all parse state lives in the Decoder's buffer), so one value can
// serve every connection.
type Adapter interface {
	// Name is the protocol's telemetry label ("native", "resp").
	Name() string

	// Parse decodes the first complete request in buf into req and
	// returns the bytes consumed. n == 0 with a nil error means the
	// request is incomplete and more bytes are needed. A non-nil error
	// means the stream is unrecoverably out of sync (the decoder
	// answers a protocol error and closes). Malformed-but-framed input
	// must instead decode as CmdBad with the error reply attached, so
	// the connection survives it.
	Parse(buf []byte, req *Request) (n int, err error)

	// Encode appends rep's wire form to dst and returns the extended
	// slice.
	Encode(dst []byte, rep *Reply) []byte

	// Resync consumes bytes of an abandoned oversized request until
	// the next request boundary. It returns how many bytes of buf it
	// consumed and whether the stream is aligned again.
	Resync(buf []byte) (n int, state ResyncState)
}

// ErrDesync is returned by Decoder.Next once the stream cannot be
// parsed further (a RESP framing error, or an oversized request on a
// protocol that cannot skip it). The error reply explaining why was
// already delivered in the preceding batch.
var ErrDesync = errors.New("proto: protocol stream out of sync")

// parseUint64 parses an unsigned decimal from b with overflow
// checking, allocation-free. ok is false for empty input, a non-digit,
// or overflow — the same inputs strconv.ParseUint rejects.
func parseUint64(b []byte) (v uint64, ok bool) {
	if len(b) == 0 {
		return 0, false
	}
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (1<<64-1)/10 || (v == (1<<64-1)/10 && d > (1<<64-1)%10) {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// appendUint appends v in decimal to dst without allocating.
func appendUint(dst []byte, v uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}

// eqFold reports whether b equals the ASCII string s ignoring case.
// s must be lowercase.
func eqFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// fnv1a hashes arbitrary key/value bytes to the server's uint64
// keyspace (the RESP adapter's escape hatch for non-numeric keys).
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
