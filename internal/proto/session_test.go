package proto

import (
	"bytes"
	"testing"
)

// Grammar tests for the exactly-once surface: the session handshake
// and the seq=<n> request tag, on both wire protocols.

func TestNativeParseSessionAndSeq(t *testing.T) {
	cases := []struct {
		in   string
		cmd  Cmd
		kv   []uint64
		seq  uint64
		dur  Durability
		bad  string
		kind Kind
	}{
		{"session 7\r\n", CmdSession, []uint64{7}, 0, DurDurable, "", KNone},
		{"SESSION 7\r\n", CmdSession, []uint64{7}, 0, DurDurable, "", KNone},
		{"set 1 2 seq=3\r\n", CmdSet, []uint64{1, 2}, 3, DurDurable, "", KNone},
		{"set 1 2 SEQ=3\r\n", CmdSet, []uint64{1, 2}, 3, DurDurable, "", KNone},
		{"set 1 2 relaxed seq=3\r\n", CmdSet, []uint64{1, 2}, 3, DurRelaxed, "", KNone},
		{"set 1 2 seq=3 relaxed\r\n", CmdSet, []uint64{1, 2}, 3, DurRelaxed, "", KNone},
		{"incr 4 5 seq=9\r\n", CmdIncr, []uint64{4, 5}, 9, DurDurable, "", KNone},
		{"delete 6 seq=2\r\n", CmdDelete, []uint64{6}, 2, DurDurable, "", KNone},
		{"mset 1 10 2 20 seq=4\r\n", CmdMSet, []uint64{1, 10, 2, 20}, 4, DurDurable, "", KNone},
		{"zadd 8 80 seq=1\r\n", CmdZAdd, []uint64{8, 80}, 1, DurDurable, "", KNone},
		{"zincr 8 1 seq=2 fire\r\n", CmdZIncr, []uint64{8, 1}, 2, DurFire, "", KNone},
		{"zdel 8 seq=3\r\n", CmdZDel, []uint64{8}, 3, DurDurable, "", KNone},

		{"session\r\n", CmdBad, nil, 0, DurDurable, "usage: session <id>", KErrClient},
		{"session 0\r\n", CmdBad, nil, 0, DurDurable, "bad session id (must be an integer >= 1)", KErrClient},
		{"session x\r\n", CmdBad, nil, 0, DurDurable, "bad session id (must be an integer >= 1)", KErrClient},
		{"session 1 2\r\n", CmdBad, nil, 0, DurDurable, "usage: session <id>", KErrClient},
		{"set 1 2 seq=0\r\n", CmdBad, nil, 0, DurDurable, badSeqMsg, KErrClient},
		{"set 1 2 seq=x\r\n", CmdBad, nil, 0, DurDurable, badSeqMsg, KErrClient},
		{"set 1 2 seq=1 seq=2\r\n", CmdBad, nil, 0, DurDurable, badSeqMsg, KErrClient},
		{"get 1 seq=1\r\n", CmdBad, nil, 0, DurDurable, "usage: get <key>", KErrClient},
	}
	var na Native
	for _, tc := range cases {
		var req Request
		n, err := na.Parse([]byte(tc.in), &req)
		if err != nil || n != len(tc.in) {
			t.Fatalf("Parse(%q) = %d, %v", tc.in, n, err)
		}
		if req.Cmd != tc.cmd {
			t.Errorf("Parse(%q).Cmd = %d, want %d", tc.in, req.Cmd, tc.cmd)
			continue
		}
		if tc.cmd == CmdBad {
			if req.BadMsg != tc.bad || req.Bad != tc.kind {
				t.Errorf("Parse(%q) bad = %q/%d, want %q/%d", tc.in, req.BadMsg, req.Bad, tc.bad, tc.kind)
			}
			continue
		}
		wantSeq := tc.seq != 0
		if req.HasSeq != wantSeq || req.Seq != tc.seq {
			t.Errorf("Parse(%q) seq = %v/%d, want %v/%d", tc.in, req.HasSeq, req.Seq, wantSeq, tc.seq)
		}
		if req.Dur != tc.dur {
			t.Errorf("Parse(%q) dur = %d, want %d", tc.in, req.Dur, tc.dur)
		}
		for i := range tc.kv {
			if req.KV[i] != tc.kv[i] {
				t.Errorf("Parse(%q).KV = %v, want %v", tc.in, req.KV, tc.kv)
				break
			}
		}
	}
}

func TestRESPParseSessionAndSeq(t *testing.T) {
	var rs RESP
	var req Request

	// CLIENT SESSION <id> is the redis-shaped handshake spelling.
	wire := "*3\r\n$6\r\nCLIENT\r\n$7\r\nSESSION\r\n$2\r\n42\r\n"
	if _, err := rs.Parse([]byte(wire), &req); err != nil || req.Cmd != CmdSession || req.KV[0] != 42 {
		t.Fatalf("CLIENT SESSION: err=%v req=%+v", err, req)
	}
	// The native spelling works over RESP too.
	if _, err := rs.Parse([]byte("*2\r\n$7\r\nSESSION\r\n$1\r\n9\r\n"), &req); err != nil || req.Cmd != CmdSession || req.KV[0] != 9 {
		t.Fatalf("SESSION: err=%v req=%+v", err, req)
	}
	// seq rides mutating commands as a trailing token, composable with
	// the tier token in either order.
	if _, err := rs.Parse([]byte("*4\r\n$3\r\nSET\r\n$1\r\n1\r\n$1\r\n2\r\n$5\r\nseq=3\r\n"), &req); err != nil ||
		req.Cmd != CmdSet || !req.HasSeq || req.Seq != 3 {
		t.Fatalf("SET seq: err=%v req=%+v", err, req)
	}
	if _, err := rs.Parse([]byte("*5\r\n$3\r\nSET\r\n$1\r\n1\r\n$1\r\n2\r\n$5\r\nseq=3\r\n$7\r\nrelaxed\r\n"), &req); err != nil ||
		req.Cmd != CmdSet || !req.HasSeq || req.Seq != 3 || req.Dur != DurRelaxed {
		t.Fatalf("SET seq relaxed: err=%v req=%+v", err, req)
	}
	// seq=0 is refused like the native grammar.
	if _, err := rs.Parse([]byte("*4\r\n$3\r\nSET\r\n$1\r\n1\r\n$1\r\n2\r\n$5\r\nseq=0\r\n"), &req); err != nil ||
		req.Cmd != CmdBad || req.BadMsg != badSeqMsg {
		t.Fatalf("SET seq=0: err=%v req=%+v", err, req)
	}
	// A multi-key DEL with seq parses (the serve layer enforces the
	// single-key restriction with its own error).
	if _, err := rs.Parse([]byte("*4\r\n$3\r\nDEL\r\n$1\r\n1\r\n$1\r\n2\r\n$5\r\nseq=1\r\n"), &req); err != nil ||
		req.Cmd != CmdDelete || !req.HasSeq || len(req.KV) != 2 {
		t.Fatalf("DEL seq: err=%v req=%+v", err, req)
	}
}

func TestAppendRequestCarriesSessionAndSeq(t *testing.T) {
	reqs := []Request{
		{Cmd: CmdSession, KV: []uint64{5}},
		{Cmd: CmdSet, KV: []uint64{1, 10}, Seq: 3, HasSeq: true},
		{Cmd: CmdIncr, KV: []uint64{2, 1}, Seq: 4, HasSeq: true, Dur: DurRelaxed},
		{Cmd: CmdMSet, KV: []uint64{6, 60, 7, 70}, Seq: 5, HasSeq: true},
	}
	type reqAppender interface {
		Adapter
		AppendRequest([]byte, *Request) []byte
	}
	for _, ad := range []reqAppender{Native{}, RESP{}} {
		var wire []byte
		for i := range reqs {
			wire = ad.AppendRequest(wire, &reqs[i])
		}
		d := NewDecoder(bytes.NewReader(wire), ad, 0)
		got, err := decodeAll(t, d)
		if err != nil || len(got) != len(reqs) {
			t.Fatalf("%s decodeAll: %v, %d reqs", ad.Name(), err, len(got))
		}
		for i := range reqs {
			if got[i].Cmd != reqs[i].Cmd {
				t.Errorf("%s req %d: cmd %d, want %d", ad.Name(), i, got[i].Cmd, reqs[i].Cmd)
			}
			if got[i].HasSeq != reqs[i].HasSeq || got[i].Seq != reqs[i].Seq {
				t.Errorf("%s req %d: seq %v/%d, want %v/%d",
					ad.Name(), i, got[i].HasSeq, got[i].Seq, reqs[i].HasSeq, reqs[i].Seq)
			}
			if got[i].Dur != reqs[i].Dur {
				t.Errorf("%s req %d: dur %d, want %d", ad.Name(), i, got[i].Dur, reqs[i].Dur)
			}
		}
	}
}
