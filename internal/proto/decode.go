package proto

import (
	"errors"
	"io"
)

// Decoder limits and defaults.
const (
	// DefaultMaxRequest is the request-size ceiling when the caller
	// passes 0: generous enough for thousand-key msets, small enough
	// that one abusive connection cannot balloon server memory.
	DefaultMaxRequest = 1 << 20

	// maxBatch caps how many requests one Next call returns. It bounds
	// the arena and keeps a firehose client from starving the write
	// side; a fuller socket just yields back-to-back full batches.
	maxBatch = 256

	// minReadBuf is the initial read-buffer size.
	minReadBuf = 4 << 10
)

// tooLargeMsg is the error text answered when a single request
// exceeds the decoder's ceiling.
const tooLargeMsg = "request too large"

// Decoder turns a byte stream into batches of decoded requests. Each
// Next call surfaces every complete request already buffered (reading
// from the stream only when none is) so a client that pipelines N
// commands into one TCP segment gets all N back as one batch — the
// unit the server feeds to the shard pipeline as a single enqueue.
//
// The returned batch and the KV slices inside it alias the decoder's
// arena and read buffer; they are valid only until the next Next call.
type Decoder struct {
	r   io.Reader
	a   Adapter
	max int

	buf        []byte
	start, end int

	reqs []Request

	resyncing bool
	fatal     bool
	err       error
}

// NewDecoder wraps r with adapter a. maxRequest bounds the wire size
// of a single request (0 means DefaultMaxRequest); a request that
// exceeds it decodes as CmdBad("request too large") and the stream is
// resynchronized — or torn down, if the protocol cannot skip ahead.
func NewDecoder(r io.Reader, a Adapter, maxRequest int) *Decoder {
	if maxRequest <= 0 {
		maxRequest = DefaultMaxRequest
	}
	return &Decoder{r: r, a: a, max: maxRequest, buf: make([]byte, minReadBuf)}
}

// Use switches the adapter — the protocol-sniffing hook: Peek at the
// first byte, pick the protocol, Use it, then start calling Next.
func (d *Decoder) Use(a Adapter) { d.a = a }

// Adapter returns the adapter currently decoding the stream.
func (d *Decoder) Adapter() Adapter { return d.a }

// Leftover returns the bytes buffered but not yet consumed by the
// decoder. It is the hand-off a caller needs when a command switches
// the connection from the request protocol to a framed stream (the
// cluster tier's acceptslot does this): resume reading from Leftover
// first, then the underlying stream. The slice aliases the decoder's
// buffer and is valid only until the next Next/Peek call.
func (d *Decoder) Leftover() []byte { return d.buf[d.start:d.end] }

// Peek returns the first unconsumed byte, reading if none is buffered.
func (d *Decoder) Peek() (byte, error) {
	for d.end == d.start {
		if err := d.fill(); err != nil {
			return 0, err
		}
	}
	return d.buf[d.start], nil
}

// slot returns the i'th arena request, growing the arena as needed.
// Reused slots keep their KV backing arrays, so steady-state decoding
// does not allocate.
func (d *Decoder) slot(i int) *Request {
	for len(d.reqs) <= i {
		d.reqs = append(d.reqs, Request{})
	}
	return &d.reqs[i]
}

// fill reads more bytes from the stream, compacting or growing the
// buffer as needed. The buffer stops growing once it can already hold
// an over-limit request — that is the too-large detection point.
func (d *Decoder) fill() error {
	if d.end == len(d.buf) {
		if d.start > 0 {
			copy(d.buf, d.buf[d.start:d.end])
			d.end -= d.start
			d.start = 0
		} else if len(d.buf) <= d.max {
			grown := make([]byte, 2*len(d.buf))
			copy(grown, d.buf[:d.end])
			d.buf = grown
		} else {
			// Pending already exceeds max; Next handles it.
			return nil
		}
	}
	n, err := d.r.Read(d.buf[d.end:])
	d.end += n
	if n > 0 {
		return nil
	}
	return err
}

// errStop is a sentinel fill() cannot return; used to break the read
// loop when pending bytes already exceed the ceiling.
var errStop = errors.New("proto: internal stop")

// Next returns the next batch of decoded requests. It blocks until at
// least one request (or a decode problem rendered as a CmdBad request)
// is available, then returns every further request already buffered,
// up to an internal batch cap. After ErrDesync or an I/O error the
// decoder is dead.
func (d *Decoder) Next() ([]Request, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.fatal {
		d.err = ErrDesync
		return nil, d.err
	}
	for {
		if d.resyncing {
			if err := d.resync(); err != nil {
				d.err = err
				return nil, err
			}
		}
		k := 0
		for k < maxBatch {
			n, err := d.a.Parse(d.buf[d.start:d.end], d.slot(k))
			if err != nil {
				// Stream out of sync: answer a protocol error in this
				// batch, then die on the next call.
				req := d.slot(k)
				req.reset()
				req.bad(KErrProto, err.Error())
				k++
				d.fatal = true
				return d.reqs[:k], nil
			}
			if n == 0 {
				if d.end-d.start > d.max {
					// One request is larger than the ceiling. Answer the
					// error now; skip its bytes on the next call.
					req := d.slot(k)
					req.reset()
					req.bad(KErrClient, tooLargeMsg)
					k++
					d.resyncing = true
					return d.reqs[:k], nil
				}
				break
			}
			d.start += n
			if n > d.max {
				// Complete but over the ceiling: answer the error and
				// move on — the boundary is known, no resync needed.
				req := d.slot(k)
				req.reset()
				req.bad(KErrClient, tooLargeMsg)
				k++
				continue
			}
			if d.reqs[k].Cmd != CmdNone {
				k++
			}
		}
		if k > 0 {
			return d.reqs[:k], nil
		}
		if err := d.fillOrFinish(); err != nil {
			if err == errStop {
				continue
			}
			if err == errFinalReq {
				return d.reqs[:1], nil
			}
			d.err = err
			return nil, err
		}
	}
}

// fillOrFinish reads more input; at clean EOF with leftover bytes it
// gives the adapter one chance to treat them as a final request (the
// old bufio.Scanner returned a trailing unterminated line the same
// way). Returns errStop when pending bytes already exceed the ceiling,
// so Next loops back into the too-large path without reading.
func (d *Decoder) fillOrFinish() error {
	if d.end-d.start > d.max {
		return errStop
	}
	err := d.fill()
	if err == nil {
		return nil
	}
	if err == io.EOF && d.end > d.start {
		if ep, ok := d.a.(eofParser); ok {
			n, perr := ep.ParseEOF(d.buf[d.start:d.end], d.slot(0))
			if perr == nil && n > 0 {
				d.start += n
				d.err = io.EOF // next call reports EOF
				if d.reqs[0].Cmd == CmdNone {
					return io.EOF
				}
				return errFinalReq
			}
		}
		return io.ErrUnexpectedEOF
	}
	return err
}

// errFinalReq signals Next that slot 0 holds a final EOF-terminated
// request to deliver before reporting EOF.
var errFinalReq = errors.New("proto: final request")

// eofParser is an optional Adapter extension: decode trailing bytes at
// EOF as a final request even without a terminator.
type eofParser interface {
	// ParseEOF decodes buf as a final, unterminated request.
	ParseEOF(buf []byte, req *Request) (int, error)
}

// resync discards bytes of the abandoned oversized request until the
// adapter reports a request boundary.
func (d *Decoder) resync() error {
	for {
		n, st := d.a.Resync(d.buf[d.start:d.end])
		d.start += n
		switch st {
		case ResyncDone:
			d.resyncing = false
			return nil
		case ResyncFatal:
			return ErrDesync
		}
		if err := d.fill(); err != nil {
			if err == io.EOF {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
}
