package proto

import "io"

// DefaultFlushBound is the staging-buffer size that triggers an early
// flush mid-batch, bounding encoder memory when a pipelined batch
// produces more reply bytes than one write should carry.
const DefaultFlushBound = 64 << 10

// Encoder stages encoded replies in a reusable buffer and writes them
// out in one syscall per decoded batch — the write-side half of the
// codec's procrastination: replies for N pipelined commands cost one
// write, not N.
type Encoder struct {
	w     io.Writer
	a     Adapter
	buf   []byte
	bound int
}

// NewEncoder wraps w with adapter a. bound is the staged-bytes
// threshold that forces an early flush (0 means DefaultFlushBound).
func NewEncoder(w io.Writer, a Adapter, bound int) *Encoder {
	if bound <= 0 {
		bound = DefaultFlushBound
	}
	return &Encoder{w: w, a: a, buf: make([]byte, 0, 1<<10), bound: bound}
}

// Use switches the adapter (paired with Decoder.Use after a sniff).
func (e *Encoder) Use(a Adapter) { e.a = a }

// Stage encodes rep into the staging buffer, flushing first if the
// buffer already holds bound bytes. The reply is not on the wire until
// Flush unless the bound spills it.
func (e *Encoder) Stage(rep *Reply) error {
	if len(e.buf) >= e.bound {
		if err := e.Flush(); err != nil {
			return err
		}
	}
	e.buf = e.a.Encode(e.buf, rep)
	return nil
}

// Flush writes every staged byte in one call and resets the buffer.
func (e *Encoder) Flush() error {
	if len(e.buf) == 0 {
		return nil
	}
	_, err := e.w.Write(e.buf)
	e.buf = e.buf[:0]
	return err
}

// Buffered reports how many staged bytes await the next Flush.
func (e *Encoder) Buffered() int { return len(e.buf) }
