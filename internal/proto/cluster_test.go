package proto

// Cluster-tier wire tests: the grammar the routing tier added
// (cluster/migrate/acceptslot, multi-key delete), the MOVED redirect
// in both protocols, and the client-side reply reader the proxy's
// backend FIFO depends on — including that a redirect leaves the
// pipelined reply stream aligned.

import (
	"bufio"
	"strings"
	"testing"
)

func TestNativeParseClusterCommands(t *testing.T) {
	var na Native
	cases := []struct {
		in   string
		cmd  Cmd
		kv   []uint64
		addr string
		bad  bool
	}{
		{"cluster\r\n", CmdCluster, nil, "", false},
		{"cluster info\r\n", CmdCluster, nil, "", false},
		{"migrate 5 127.0.0.1:11223\r\n", CmdMigrate, []uint64{5}, "127.0.0.1:11223", false},
		{"acceptslot 63\r\n", CmdAcceptSlot, []uint64{63}, "", false},
		{"delete 1 2 3\r\n", CmdDelete, []uint64{1, 2, 3}, "", false},
		{"delete 4 5 relaxed\r\n", CmdDelete, []uint64{4, 5}, "", false},
		{"delete 9 seq=3\r\n", CmdDelete, []uint64{9}, "", false},
		{"cluster bogus\r\n", CmdBad, nil, "", true},
		{"migrate\r\n", CmdBad, nil, "", true},
		{"migrate x addr\r\n", CmdBad, nil, "", true},
		{"migrate 5\r\n", CmdBad, nil, "", true},
		{"acceptslot\r\n", CmdBad, nil, "", true},
		{"acceptslot x\r\n", CmdBad, nil, "", true},
		{"delete\r\n", CmdBad, nil, "", true},
		{"delete 1 bogus\r\n", CmdBad, nil, "", true},
	}
	for _, tc := range cases {
		var req Request
		n, err := na.Parse([]byte(tc.in), &req)
		if err != nil || n != len(tc.in) {
			t.Fatalf("Parse(%q) = %d, %v", tc.in, n, err)
		}
		if tc.bad {
			if req.Cmd != CmdBad {
				t.Errorf("Parse(%q).Cmd = %d, want CmdBad", tc.in, req.Cmd)
			}
			continue
		}
		if req.Cmd != tc.cmd {
			t.Errorf("Parse(%q).Cmd = %d, want %d", tc.in, req.Cmd, tc.cmd)
		}
		if len(req.KV) != len(tc.kv) {
			t.Errorf("Parse(%q).KV = %v, want %v", tc.in, req.KV, tc.kv)
		}
		if req.Addr != tc.addr {
			t.Errorf("Parse(%q).Addr = %q, want %q", tc.in, req.Addr, tc.addr)
		}
	}

	// A sessioned seq survives the multi-key grammar.
	var req Request
	if _, err := na.Parse([]byte("delete 9 seq=3\r\n"), &req); err != nil {
		t.Fatal(err)
	}
	if !req.HasSeq || req.Seq != 3 {
		t.Errorf("delete seq: %+v", req)
	}
}

func TestMovedEncoding(t *testing.T) {
	rep := Reply{Kind: KMoved, N: 9, Msg: "127.0.0.1:11223"}
	if got := string(Native{}.Encode(nil, &rep)); got != "MOVED 9 127.0.0.1:11223\r\n" {
		t.Errorf("native MOVED: %q", got)
	}
	if got := string(RESP{}.Encode(nil, &rep)); got != "-MOVED 9 127.0.0.1:11223\r\n" {
		t.Errorf("RESP MOVED: %q", got)
	}
	rep.Msg = "?"
	if got := string(Native{}.Encode(nil, &rep)); got != "MOVED 9 ?\r\n" {
		t.Errorf("native MOVED importing: %q", got)
	}
}

func TestClusterAppendRequestRoundTrip(t *testing.T) {
	var na Native
	for _, req := range []Request{
		{Cmd: CmdCluster},
		{Cmd: CmdMigrate, KV: []uint64{7}, Addr: "10.0.0.9:11222"},
		{Cmd: CmdAcceptSlot, KV: []uint64{61}},
		{Cmd: CmdDelete, KV: []uint64{1, 2, 3}},
	} {
		wire := na.AppendRequest(nil, &req)
		var got Request
		n, err := na.Parse(wire, &got)
		if err != nil || n != len(wire) {
			t.Fatalf("Parse(%q) = %d, %v", wire, n, err)
		}
		if got.Cmd != req.Cmd || got.Addr != req.Addr || len(got.KV) != len(req.KV) {
			t.Errorf("round trip %q: %+v -> %+v", wire, req, got)
		}
	}
}

// reader wraps wire text for ReadNativeReply.
func replyReader(s string) *bufio.Reader {
	return bufio.NewReader(strings.NewReader(s))
}

func TestReadNativeReplyShapes(t *testing.T) {
	var rep Reply

	if err := ReadNativeReply(replyReader("VALUE 3 9\r\n"), CmdGet, 1, &rep); err != nil ||
		rep.Kind != KValue || rep.Key != 3 || rep.Val != 9 {
		t.Errorf("get: %+v, %v", rep, nil)
	}
	if err := ReadNativeReply(replyReader("STORED @4\r\n"), CmdSet, 1, &rep); err != nil ||
		rep.Kind != KStored || rep.Epoch != 4 {
		t.Errorf("relaxed set: %+v", rep)
	}
	if err := ReadNativeReply(replyReader("DELETED\r\nNOT_FOUND\r\n"), CmdDelete, 2, &rep); err != nil ||
		rep.Kind != KDelete || len(rep.Items) != 2 || !rep.Items[0].Found || rep.Items[1].Found {
		t.Errorf("multi delete: %+v", rep)
	}
	if err := ReadNativeReply(replyReader("VALUE 1 2\r\nNOT_FOUND 7\r\nEND\r\n"), CmdMGet, 2, &rep); err != nil ||
		rep.Kind != KMGet || len(rep.Items) != 2 {
		t.Errorf("mget: %+v", rep)
	}
	if err := ReadNativeReply(replyReader("CLUSTER epoch 2\r\nSLOTS 0-63 self\r\nEND\r\n"), CmdCluster, 0, &rep); err != nil ||
		rep.Kind != KRaw || !strings.Contains(rep.Msg, "SLOTS 0-63 self") {
		t.Errorf("cluster: %+v", rep)
	}
	if err := ReadNativeReply(replyReader("OK MIGRATED 5 x:1 pairs 10 groups 2\r\n"), CmdMigrate, 1, &rep); err != nil ||
		rep.Kind != KRaw || !strings.HasPrefix(rep.Msg, "OK MIGRATED") {
		t.Errorf("migrate: %+v", rep)
	}
	if err := ReadNativeReply(replyReader("CLIENT_ERROR nope\r\n"), CmdGet, 1, &rep); err != nil ||
		rep.Kind != KErrClient || rep.Msg != "nope" {
		t.Errorf("client error: %+v", rep)
	}
	// Streams that cannot be any reply to the command are fatal.
	if err := ReadNativeReply(replyReader("BANANA\r\n"), CmdGet, 1, &rep); err == nil {
		t.Error("garbage accepted as a get reply")
	}
}

// TestReadNativeReplyMovedAlignment: a MOVED redirect can answer ANY
// command, consumes exactly one line, and leaves the stream aligned —
// the invariant the proxy's backend FIFO depends on when it re-sends
// redirected requests while later replies are already buffered.
func TestReadNativeReplyMovedAlignment(t *testing.T) {
	r := replyReader("MOVED 12 10.0.0.2:11222\r\nVALUE 8 80\r\nMOVED 3 ?\r\nSTORED 2\r\n")
	var rep Reply

	// A redirect where an mget's multi-line block was expected: one
	// line only, no END swallowing.
	if err := ReadNativeReply(r, CmdMGet, 4, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KMoved || rep.N != 12 || rep.Msg != "10.0.0.2:11222" {
		t.Fatalf("moved: %+v", rep)
	}
	// The next reply in the pipeline parses cleanly.
	if err := ReadNativeReply(r, CmdGet, 1, &rep); err != nil || rep.Kind != KValue || rep.Val != 80 {
		t.Fatalf("reply after redirect: %+v, %v", rep, nil)
	}
	// An importing-owner redirect ("?") where a multi-key delete was
	// expected.
	if err := ReadNativeReply(r, CmdDelete, 3, &rep); err != nil || rep.Kind != KMoved || rep.Msg != "?" {
		t.Fatalf("importing moved: %+v", rep)
	}
	if err := ReadNativeReply(r, CmdMSet, 4, &rep); err != nil || rep.Kind != KStoredN || rep.N != 2 {
		t.Fatalf("reply after importing redirect: %+v", rep)
	}
}

// TestRESPParseClusterCommands: the RESP adapter accepts the cluster
// verbs redis clients spell (CLUSTER's subcommand is drained, MIGRATE
// carries the target address).
func TestRESPParseClusterCommands(t *testing.T) {
	var ra RESP
	parse := func(args ...string) Request {
		var b strings.Builder
		b.WriteString("*")
		b.WriteString(strings.TrimSpace(string(rune('0' + len(args)))))
		b.WriteString("\r\n")
		for _, a := range args {
			b.WriteString("$")
			b.WriteString(itoa(len(a)))
			b.WriteString("\r\n")
			b.WriteString(a)
			b.WriteString("\r\n")
		}
		var req Request
		n, err := ra.Parse([]byte(b.String()), &req)
		if err != nil || n != b.Len() {
			t.Fatalf("Parse(%v) = %d, %v", args, n, err)
		}
		return req
	}
	if req := parse("CLUSTER", "INFO"); req.Cmd != CmdCluster {
		t.Errorf("CLUSTER INFO: %+v", req)
	}
	if req := parse("MIGRATE", "5", "10.0.0.2:11222"); req.Cmd != CmdMigrate ||
		len(req.KV) != 1 || req.KV[0] != 5 || req.Addr != "10.0.0.2:11222" {
		t.Errorf("MIGRATE: %+v", req)
	}
	if req := parse("DEL", "1", "2", "3"); req.Cmd != CmdDelete || len(req.KV) != 3 {
		t.Errorf("multi DEL: %+v", req)
	}
}

// itoa is strconv.Itoa without the import churn.
func itoa(n int) string {
	return string(appendUint(nil, uint64(n)))
}
