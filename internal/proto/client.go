package proto

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
)

// This file is the client half of the native protocol: a reply reader
// that turns the server's wire text back into the same typed Reply the
// server encoded from. It exists for the cluster routing tier — a
// proxy multiplexes many frontend requests onto one pipelined backend
// connection, and because the server answers each connection strictly
// in request order, matching replies to requests is a FIFO walk that
// only needs to know each in-flight request's command (multi-line
// replies such as mget's VALUE…END block are framed by the command
// that provoked them, not by the wire).

// ErrReply is returned by ReadNativeReply when the server's reply does
// not parse as any reply the command can produce — the stream is out
// of step and the connection must be abandoned.
var ErrReply = errors.New("proto: unparseable reply")

// readLine returns the next LF-terminated line without the
// terminator, tolerating lines longer than r's buffer.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Rare (stats text): fall back to an allocating accumulation.
		acc := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = r.ReadSlice('\n')
			acc = append(acc, line...)
		}
		line = acc
	}
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}

// splitStamp splits an " @<epoch>" durability-receipt suffix off a
// reply line, returning the line without it and the epoch (0 if none).
func splitStamp(line []byte) ([]byte, uint64) {
	i := bytes.LastIndex(line, []byte(" @"))
	if i < 0 {
		return line, 0
	}
	if e, ok := parseUint64(line[i+2:]); ok {
		return line[:i], e
	}
	return line, 0
}

// classifyCommon recognizes the reply shapes every command can
// produce: redirects and the three error spellings. It reports whether
// it consumed the line into rep.
func classifyCommon(line []byte, rep *Reply) bool {
	switch {
	case bytes.HasPrefix(line, []byte("MOVED ")):
		f := fields{b: line[6:]}
		slot, addr := f.next(), f.next()
		if s, ok := parseUint64(slot); ok && addr != nil {
			rep.Kind = KMoved
			rep.N = int(s)
			rep.Msg = string(addr)
			return true
		}
	case bytes.HasPrefix(line, []byte("CLIENT_ERROR ")):
		rep.Kind = KErrClient
		rep.Msg = string(line[13:])
		return true
	case bytes.HasPrefix(line, []byte("SERVER_ERROR ")):
		rep.Kind = KErrServer
		rep.Msg = string(line[13:])
		return true
	case bytes.HasPrefix(line, []byte("ERROR ")):
		rep.Kind = KErrProto
		rep.Msg = string(line[6:])
		return true
	}
	return false
}

// parseValueLine parses "VALUE <key> <val>".
func parseValueLine(line []byte) (k, v uint64, ok bool) {
	f := fields{b: line[6:]}
	kb, vb := f.next(), f.next()
	kn, ok1 := parseUint64(kb)
	vn, ok2 := parseUint64(vb)
	return kn, vn, ok1 && ok2
}

// ReadNativeReply reads one complete native reply for a request of
// command cmd carrying nkeys keys, into rep. rep.Items is reset and
// reused. The reply read may also be a redirect (KMoved) or an error
// kind regardless of cmd. A nil error means rep holds a well-formed
// reply; ErrReply (wrapped with the offending line) means the stream
// no longer corresponds to the request FIFO and the connection is
// unusable.
func ReadNativeReply(r *bufio.Reader, cmd Cmd, nkeys int, rep *Reply) error {
	*rep = Reply{Items: rep.Items[:0]}
	line, err := readLine(r)
	if err != nil {
		return err
	}
	if classifyCommon(line, rep) {
		return nil
	}
	line, stamp := splitStamp(line)
	rep.Epoch = stamp

	switch cmd {
	case CmdGet, CmdZGet:
		if bytes.HasPrefix(line, []byte("VALUE ")) {
			if k, v, ok := parseValueLine(line); ok {
				rep.Kind, rep.Key, rep.Val = KValue, k, v
				return nil
			}
		}
		if bytes.Equal(line, []byte("NOT_FOUND")) {
			rep.Kind = KNotFound
			return nil
		}

	case CmdSet, CmdZAdd:
		if bytes.Equal(line, []byte("STORED")) {
			rep.Kind = KStored
			return nil
		}

	case CmdMSet:
		if bytes.HasPrefix(line, []byte("STORED ")) {
			if n, ok := parseUint64(line[7:]); ok {
				rep.Kind, rep.N = KStoredN, int(n)
				return nil
			}
		}

	case CmdIncr, CmdZIncr, CmdZCount, CmdWait:
		if v, ok := parseUint64(line); ok {
			rep.Kind, rep.Val = KInt, v
			return nil
		}

	case CmdDelete, CmdZDel:
		// One DELETED/NOT_FOUND line per requested key; the first is
		// already in hand.
		for i := 0; ; i++ {
			switch {
			case bytes.Equal(line, []byte("DELETED")):
				rep.Items = append(rep.Items, Item{Found: true})
			case bytes.Equal(line, []byte("NOT_FOUND")):
				rep.Items = append(rep.Items, Item{})
			default:
				return fmt.Errorf("%w: %q answering %d-key delete", ErrReply, line, nkeys)
			}
			if i == nkeys-1 {
				rep.Kind = KDelete
				return nil
			}
			if line, err = readLine(r); err != nil {
				return err
			}
		}

	case CmdMGet, CmdZRange:
		// VALUE / NOT_FOUND lines up to END; the first is in hand.
		for {
			switch {
			case bytes.Equal(line, []byte("END")):
				if cmd == CmdMGet {
					rep.Kind = KMGet
				} else {
					rep.Kind = KRange
				}
				return nil
			case bytes.HasPrefix(line, []byte("VALUE ")):
				k, v, ok := parseValueLine(line)
				if !ok {
					return fmt.Errorf("%w: %q in multi-value reply", ErrReply, line)
				}
				rep.Items = append(rep.Items, Item{Key: k, Val: v, Found: true})
			case bytes.HasPrefix(line, []byte("NOT_FOUND ")):
				k, ok := parseUint64(line[10:])
				if !ok {
					return fmt.Errorf("%w: %q in multi-value reply", ErrReply, line)
				}
				rep.Items = append(rep.Items, Item{Key: k})
			default:
				return fmt.Errorf("%w: %q in multi-value reply", ErrReply, line)
			}
			if line, err = readLine(r); err != nil {
				return err
			}
		}

	case CmdPing:
		if bytes.Equal(line, []byte("PONG")) {
			rep.Kind = KPong
			return nil
		}

	case CmdStats, CmdCluster:
		// Lines up to END, returned verbatim as one KRaw text (stats'
		// STAT lines; cluster's SLOTS table).
		var acc []byte
		for {
			if bytes.Equal(line, []byte("END")) {
				acc = append(acc, "END"...)
				rep.Kind, rep.Msg = KRaw, string(acc)
				return nil
			}
			acc = append(acc, line...)
			acc = append(acc, '\r', '\n')
			if line, err = readLine(r); err != nil {
				return err
			}
		}

	case CmdSession, CmdCrash, CmdPromote, CmdMigrate, CmdAcceptSlot, CmdInfo:
		// Single pre-rendered text line.
		rep.Kind, rep.Msg = KRaw, string(line)
		if stamp != 0 {
			// The stamp split was wrong for raw text; restore it.
			rep.Msg = string(line) + " @" + string(appendUint(nil, stamp))
			rep.Epoch = 0
		}
		return nil
	}
	return fmt.Errorf("%w: %q answering %v", ErrReply, line, cmd)
}
