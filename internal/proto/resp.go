package proto

import (
	"bytes"
	"errors"
)

// RESP is a RESP2 adapter: enough of the Redis serialization protocol
// that redis-cli and redis-benchmark drive the server directly
// (GET/SET/MGET/MSET/INCR/INCRBY/DEL/PING/INFO/COMMAND/QUIT), plus the
// server's own admin verbs (STATS/CRASH/PROMOTE) as extensions. The
// store's keyspace is uint64→uint64, so decimal arguments are used
// verbatim and anything non-numeric is mapped through FNV-1a — stable,
// so SET then GET of the same text key round-trips.
type RESP struct{}

// Name returns the protocol's telemetry label.
func (RESP) Name() string { return "resp" }

// RESP parse errors; any of them tears the connection down, since a
// framing error leaves no request boundary to recover to.
var (
	errIncomplete  = errors.New("resp: incomplete")
	errBadHeader   = errors.New("RESP protocol error: bad header")
	errExpectBulk  = errors.New("RESP protocol error: expected bulk string")
	errBadBulkLen  = errors.New("RESP protocol error: bad bulk length")
	errBadBulkTerm = errors.New("RESP protocol error: bad bulk terminator")
)

// respHeaderMax bounds a "*<n>\r\n" / "$<n>\r\n" header; anything
// longer without a newline is garbage, not a slow client.
const respHeaderMax = 32

// respArrayMax caps declared array and bulk lengths — far above any
// legitimate request, far below an allocation-as-a-service attack.
const respArrayMax = 1 << 26

// respLen parses a "<type><decimal>\r\n" header at buf[0]. n == 0 with
// a nil error means more bytes are needed.
func respLen(buf []byte) (v int, n int, err error) {
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		if len(buf) > respHeaderMax {
			return 0, 0, errBadHeader
		}
		return 0, 0, nil
	}
	line := buf[1:i]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	u, ok := parseUint64(line)
	if !ok || u > respArrayMax {
		return 0, 0, errBadHeader
	}
	return int(u), i + 1, nil
}

// respBulk parses one "$<len>\r\n<payload>\r\n" element.
func respBulk(buf []byte) (payload []byte, n int, err error) {
	if len(buf) == 0 {
		return nil, 0, errIncomplete
	}
	if buf[0] != '$' {
		return nil, 0, errExpectBulk
	}
	ln, hdr, err := respLen(buf)
	if err != nil {
		if err == errBadHeader {
			err = errBadBulkLen
		}
		return nil, 0, err
	}
	if hdr == 0 {
		return nil, 0, errIncomplete
	}
	total := hdr + ln + 2
	if len(buf) < total {
		return nil, 0, errIncomplete
	}
	if buf[hdr+ln] != '\r' || buf[hdr+ln+1] != '\n' {
		return nil, 0, errBadBulkTerm
	}
	return buf[hdr : hdr+ln], total, nil
}

// respArgs streams a request's arguments without materializing an
// argv slice: array mode walks bulk elements, inline mode walks
// whitespace tokens.
type respArgs struct {
	inline *fields
	buf    []byte
	pos    int
	left   int
}

// next returns the next argument, nil when exhausted, or an error
// (errIncomplete when the stream needs more bytes).
func (a *respArgs) next() ([]byte, error) {
	if a.inline != nil {
		return a.inline.next(), nil
	}
	if a.left == 0 {
		return nil, nil
	}
	payload, n, err := respBulk(a.buf[a.pos:])
	if err != nil {
		return nil, err
	}
	a.pos += n
	a.left--
	return payload, nil
}

// drain consumes any remaining arguments so the stream stays aligned
// after an arity error.
func (a *respArgs) drain() error {
	for {
		t, err := a.next()
		if err != nil {
			return err
		}
		if t == nil {
			return nil
		}
	}
}

// Parse decodes one RESP request: an array of bulk strings, or an
// inline command line (redis-cli's fallback syntax, which also lets a
// RESP listener speak the native command set one line at a time).
func (r RESP) Parse(buf []byte, req *Request) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	req.reset()
	if buf[0] != '*' {
		i := bytes.IndexByte(buf, '\n')
		if i < 0 {
			return 0, nil
		}
		n := i + 1
		f := fields{b: buf[:i]}
		cmd := f.next()
		if cmd == nil {
			return n, nil
		}
		st := respArgs{inline: &f}
		if err := parseRESPCommand(cmd, &st, req); err != nil {
			return 0, err
		}
		return n, nil
	}
	count, hdr, err := respLen(buf)
	if err != nil {
		return 0, err
	}
	if hdr == 0 {
		return 0, nil
	}
	if count == 0 {
		return hdr, nil // empty array: no-op
	}
	st := respArgs{buf: buf, pos: hdr, left: count}
	cmd, err := st.next()
	if err != nil {
		if err == errIncomplete {
			return 0, nil
		}
		return 0, err
	}
	if err := parseRESPCommand(cmd, &st, req); err != nil {
		if err == errIncomplete {
			return 0, nil
		}
		return 0, err
	}
	return st.pos, nil
}

// numOrHash maps an argument to the store's uint64 domain: decimal
// text is used verbatim, anything else hashes through FNV-1a.
func numOrHash(b []byte) uint64 {
	if v, ok := parseUint64(b); ok {
		return v
	}
	return fnv1a(b)
}

// wrongArgs marks req with redis's arity-error wording after draining
// the remaining arguments.
func wrongArgs(st *respArgs, req *Request, name string) error {
	if err := st.drain(); err != nil {
		return err
	}
	req.bad(KErrClient, "wrong number of arguments for '"+name+"' command")
	return nil
}

// respTrailingOpts consumes a mutating command's optional trailing
// options — a durability tier and/or a seq=<n> tag, in either order,
// each at most once — plus end-of-arguments. It reports done=false
// (request marked bad, or err set) when the caller must return.
func respTrailingOpts(st *respArgs, req *Request, name string) (done bool, err error) {
	var haveDur, haveSeq bool
	for {
		t, err := st.next()
		if err != nil {
			return false, err
		}
		if t == nil {
			return true, nil
		}
		isOpt, ok := applyOpt(t, req, &haveDur, &haveSeq)
		if ok {
			continue
		}
		if isOpt {
			// req is already marked bad; realign on the request boundary.
			return false, st.drain()
		}
		return false, wrongArgs(st, req, name)
	}
}

// respVariadicTail consumes a variadic key list (DEL, MSET) whose last
// one or two arguments may be trailing options — a durability tier
// and/or a seq=<n> tag. The two most recent tokens are held back so
// trailing option tokens are recognized instead of hashing to keys; a
// key literally spelled like an option must therefore not be last (the
// same documented ambiguity the tier token always had). Keys land in
// req.KV; a malformed option marks req bad.
func respVariadicTail(st *respArgs, req *Request) error {
	var newest, older []byte
	for {
		k, err := st.next()
		if err != nil {
			return err
		}
		if k == nil {
			break
		}
		if older != nil {
			req.KV = append(req.KV, numOrHash(older))
		}
		older, newest = newest, k
	}
	var haveDur, haveSeq bool
	if newest != nil {
		if isOpt, ok := applyOpt(newest, req, &haveDur, &haveSeq); isOpt {
			if !ok {
				return nil
			}
			newest = nil
		}
	}
	// Only when the final token was an option can the one before it be
	// one too — options are strictly trailing.
	if older != nil && newest == nil {
		if isOpt, ok := applyOpt(older, req, &haveDur, &haveSeq); isOpt {
			if !ok {
				return nil
			}
			older = nil
		}
	}
	if older != nil {
		req.KV = append(req.KV, numOrHash(older))
	}
	if newest != nil {
		req.KV = append(req.KV, numOrHash(newest))
	}
	return nil
}

// respSessionArgs decodes the single-argument tail of SESSION <id> /
// CLIENT SESSION <id>. Non-numeric ids hash through FNV-1a like keys;
// id 0 (which no hash realistically produces) is reserved as "no
// session" and rejected.
func respSessionArgs(st *respArgs, req *Request, name string) error {
	id, err := st.next()
	if err != nil {
		return err
	}
	if id == nil {
		return wrongArgs(st, req, name)
	}
	if extra, err := st.next(); err != nil {
		return err
	} else if extra != nil {
		return wrongArgs(st, req, name)
	}
	v := numOrHash(id)
	if v == 0 {
		req.bad(KErrClient, "bad session id (must be >= 1)")
		return nil
	}
	req.Cmd = CmdSession
	req.KV = append(req.KV, v)
	return nil
}

// parseRESPCommand decodes one command and its streamed arguments.
func parseRESPCommand(cmd []byte, st *respArgs, req *Request) error {
	switch {
	case eqFold(cmd, "get"):
		k, err := st.next()
		if err != nil {
			return err
		}
		if k == nil {
			return wrongArgs(st, req, "get")
		}
		if extra, err := st.next(); err != nil {
			return err
		} else if extra != nil {
			return wrongArgs(st, req, "get")
		}
		req.Cmd = CmdGet
		req.KV = append(req.KV, numOrHash(k))

	case eqFold(cmd, "set"):
		k, err := st.next()
		if err != nil {
			return err
		}
		v, err := st.next()
		if err != nil {
			return err
		}
		if k == nil || v == nil {
			return wrongArgs(st, req, "set")
		}
		if done, err := respTrailingOpts(st, req, "set"); !done {
			return err
		}
		req.Cmd = CmdSet
		req.KV = append(req.KV, numOrHash(k), numOrHash(v))

	case eqFold(cmd, "incr"):
		k, err := st.next()
		if err != nil {
			return err
		}
		if k == nil {
			return wrongArgs(st, req, "incr")
		}
		if done, err := respTrailingOpts(st, req, "incr"); !done {
			return err
		}
		req.Cmd = CmdIncr
		req.KV = append(req.KV, numOrHash(k), 1)

	case eqFold(cmd, "incrby"):
		k, err := st.next()
		if err != nil {
			return err
		}
		d, err := st.next()
		if err != nil {
			return err
		}
		if k == nil || d == nil {
			return wrongArgs(st, req, "incrby")
		}
		if done, err := respTrailingOpts(st, req, "incrby"); !done {
			return err
		}
		dn, ok := parseUint64(d)
		if !ok {
			req.bad(KErrClient, "value is not an integer or out of range")
			return nil
		}
		req.Cmd = CmdIncr
		req.KV = append(req.KV, numOrHash(k), dn)

	case eqFold(cmd, "del"):
		if err := respVariadicTail(st, req); err != nil {
			return err
		}
		if req.Cmd == CmdBad {
			return nil
		}
		if len(req.KV) == 0 {
			req.bad(KErrClient, "wrong number of arguments for 'del' command")
			return nil
		}
		req.Cmd = CmdDelete

	case eqFold(cmd, "mget"):
		for {
			k, err := st.next()
			if err != nil {
				return err
			}
			if k == nil {
				break
			}
			req.KV = append(req.KV, numOrHash(k))
		}
		if len(req.KV) == 0 {
			req.bad(KErrClient, "wrong number of arguments for 'mget' command")
			return nil
		}
		req.Cmd = CmdMGet

	case eqFold(cmd, "mset"):
		if err := respVariadicTail(st, req); err != nil {
			return err
		}
		if req.Cmd == CmdBad {
			return nil
		}
		if len(req.KV) == 0 || len(req.KV)%2 != 0 {
			req.bad(KErrClient, "wrong number of arguments for 'mset' command")
			return nil
		}
		req.Cmd = CmdMSet

	case eqFold(cmd, "zadd"):
		k, err := st.next()
		if err != nil {
			return err
		}
		v, err := st.next()
		if err != nil {
			return err
		}
		if k == nil || v == nil {
			return wrongArgs(st, req, "zadd")
		}
		if done, err := respTrailingOpts(st, req, "zadd"); !done {
			return err
		}
		req.Cmd = CmdZAdd
		req.KV = append(req.KV, numOrHash(k), numOrHash(v))

	case eqFold(cmd, "zget"):
		k, err := st.next()
		if err != nil {
			return err
		}
		if k == nil {
			return wrongArgs(st, req, "zget")
		}
		if extra, err := st.next(); err != nil {
			return err
		} else if extra != nil {
			return wrongArgs(st, req, "zget")
		}
		req.Cmd = CmdZGet
		req.KV = append(req.KV, numOrHash(k))

	case eqFold(cmd, "zincr"):
		k, err := st.next()
		if err != nil {
			return err
		}
		d, err := st.next()
		if err != nil {
			return err
		}
		if k == nil || d == nil {
			return wrongArgs(st, req, "zincr")
		}
		if done, err := respTrailingOpts(st, req, "zincr"); !done {
			return err
		}
		dn, ok := parseUint64(d)
		if !ok {
			req.bad(KErrClient, "value is not an integer or out of range")
			return nil
		}
		req.Cmd = CmdZIncr
		req.KV = append(req.KV, numOrHash(k), dn)

	case eqFold(cmd, "zdel"):
		k, err := st.next()
		if err != nil {
			return err
		}
		if k == nil {
			return wrongArgs(st, req, "zdel")
		}
		if done, err := respTrailingOpts(st, req, "zdel"); !done {
			return err
		}
		req.Cmd = CmdZDel
		req.KV = append(req.KV, numOrHash(k))

	case eqFold(cmd, "zrange"):
		lo, err := st.next()
		if err != nil {
			return err
		}
		hi, err := st.next()
		if err != nil {
			return err
		}
		if lo == nil || hi == nil {
			return wrongArgs(st, req, "zrange")
		}
		limit, err := st.next()
		if err != nil {
			return err
		}
		if limit != nil {
			if extra, err := st.next(); err != nil {
				return err
			} else if extra != nil {
				return wrongArgs(st, req, "zrange")
			}
		}
		// Bounds (and the limit) are positions in the ordered keyspace,
		// not keys: they must be numeric, there is nothing sensible to
		// hash.
		ln, ok1 := parseUint64(lo)
		hn, ok2 := parseUint64(hi)
		if !ok1 || !ok2 {
			req.bad(KErrClient, "value is not an integer or out of range")
			return nil
		}
		req.KV = append(req.KV, ln, hn)
		if limit != nil {
			mn, ok := parseUint64(limit)
			if !ok {
				req.bad(KErrClient, "value is not an integer or out of range")
				return nil
			}
			req.KV = append(req.KV, mn)
		}
		req.Cmd = CmdZRange

	case eqFold(cmd, "zcount"):
		lo, err := st.next()
		if err != nil {
			return err
		}
		hi, err := st.next()
		if err != nil {
			return err
		}
		if lo == nil || hi == nil {
			return wrongArgs(st, req, "zcount")
		}
		if extra, err := st.next(); err != nil {
			return err
		} else if extra != nil {
			return wrongArgs(st, req, "zcount")
		}
		ln, ok1 := parseUint64(lo)
		hn, ok2 := parseUint64(hi)
		if !ok1 || !ok2 {
			req.bad(KErrClient, "value is not an integer or out of range")
			return nil
		}
		req.Cmd = CmdZCount
		req.KV = append(req.KV, ln, hn)

	case eqFold(cmd, "wait"):
		// Redis-shaped WAIT <numreplicas> <timeout-ms>: numreplicas 0
		// waits on the local persistent epoch frontier (the epoch
		// current when the wait executes), numreplicas > 0 waits for
		// that many follower acks.
		nrep, err := st.next()
		if err != nil {
			return err
		}
		tmo, err := st.next()
		if err != nil {
			return err
		}
		if nrep == nil || tmo == nil {
			return wrongArgs(st, req, "wait")
		}
		if extra, err := st.next(); err != nil {
			return err
		} else if extra != nil {
			return wrongArgs(st, req, "wait")
		}
		nn, ok1 := parseUint64(nrep)
		tn, ok2 := parseUint64(tmo)
		if !ok1 || !ok2 {
			req.bad(KErrClient, "value is not an integer or out of range")
			return nil
		}
		req.Cmd = CmdWait
		req.WaitRepl = nn > 0
		if req.WaitRepl {
			req.KV = append(req.KV, nn, tn)
		} else {
			req.KV = append(req.KV, 0, tn)
		}

	case eqFold(cmd, "session"):
		return respSessionArgs(st, req, "session")

	case eqFold(cmd, "client"):
		// CLIENT SESSION <id> is the redis-shaped spelling of the native
		// session handshake; other CLIENT subcommands are not served.
		sub, err := st.next()
		if err != nil {
			return err
		}
		if sub != nil && eqFold(sub, "session") {
			return respSessionArgs(st, req, "client|session")
		}
		if err := st.drain(); err != nil {
			return err
		}
		req.bad(KErrClient, "unknown CLIENT subcommand (try CLIENT SESSION <id>)")

	case eqFold(cmd, "ping"):
		if err := st.drain(); err != nil {
			return err
		}
		req.Cmd = CmdPing

	case eqFold(cmd, "info"):
		if err := st.drain(); err != nil {
			return err
		}
		req.Cmd = CmdInfo

	case eqFold(cmd, "command"):
		if err := st.drain(); err != nil {
			return err
		}
		req.Cmd = CmdCommand

	case eqFold(cmd, "quit"):
		if err := st.drain(); err != nil {
			return err
		}
		req.Cmd = CmdQuit

	case eqFold(cmd, "stats"):
		arg, err := st.next()
		if err != nil {
			return err
		}
		if err := st.drain(); err != nil {
			return err
		}
		req.Cmd = CmdStats
		if arg != nil {
			switch {
			case eqFold(arg, "shards"):
				req.Stats = StatsShards
			case eqFold(arg, "reset"):
				req.Stats = StatsReset
			}
		}

	case eqFold(cmd, "crash"):
		arg, err := st.next()
		if err != nil {
			return err
		}
		if err := st.drain(); err != nil {
			return err
		}
		req.Cmd = CmdCrash
		if arg != nil {
			req.HasShard = true
			req.Shard = parseShard(arg)
		}

	case eqFold(cmd, "promote"):
		if err := st.drain(); err != nil {
			return err
		}
		req.Cmd = CmdPromote

	case eqFold(cmd, "cluster"):
		// CLUSTER [INFO] — any other subcommand is drained and answered
		// with the same view; the slot table is the only thing to say.
		if err := st.drain(); err != nil {
			return err
		}
		req.Cmd = CmdCluster

	case eqFold(cmd, "migrate"):
		slot, err := st.next()
		if err != nil {
			return err
		}
		addr, err := st.next()
		if err != nil {
			return err
		}
		if slot == nil || addr == nil {
			return wrongArgs(st, req, "migrate")
		}
		if extra, err := st.next(); err != nil {
			return err
		} else if extra != nil {
			return wrongArgs(st, req, "migrate")
		}
		sn, ok := parseUint64(slot)
		if !ok {
			req.bad(KErrClient, "value is not an integer or out of range")
			return nil
		}
		req.Cmd = CmdMigrate
		req.KV = append(req.KV, sn)
		req.Addr = string(addr)

	default:
		if err := st.drain(); err != nil {
			return err
		}
		req.bad(KErrClient, "unknown command")
	}
	return nil
}

// appendBulkUint appends v as a RESP bulk string of decimal digits.
func appendBulkUint(dst []byte, v uint64) []byte {
	var tmp [20]byte
	s := appendUint(tmp[:0], v)
	dst = append(dst, '$')
	dst = appendUint(dst, uint64(len(s)))
	dst = append(dst, '\r', '\n')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// appendBulkStr appends s as a RESP bulk string.
func appendBulkStr(dst []byte, s string) []byte {
	dst = append(dst, '$')
	dst = appendUint(dst, uint64(len(s)))
	dst = append(dst, '\r', '\n')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// Encode appends rep's RESP2 form to dst.
func (RESP) Encode(dst []byte, rep *Reply) []byte {
	switch rep.Kind {
	case KNone:
		return dst
	case KStored, KStoredN, KQuit:
		return append(dst, "+OK\r\n"...)
	case KValue:
		return appendBulkUint(dst, rep.Val)
	case KNotFound:
		return append(dst, "$-1\r\n"...)
	case KInt:
		dst = append(dst, ':')
		dst = appendUint(dst, rep.Val)
		return append(dst, '\r', '\n')
	case KDelete:
		n := 0
		for _, it := range rep.Items {
			if it.Found {
				n++
			}
		}
		dst = append(dst, ':')
		dst = appendUint(dst, uint64(n))
		return append(dst, '\r', '\n')
	case KMGet:
		dst = append(dst, '*')
		dst = appendUint(dst, uint64(len(rep.Items)))
		dst = append(dst, '\r', '\n')
		for _, it := range rep.Items {
			if it.Found {
				dst = appendBulkUint(dst, it.Val)
			} else {
				dst = append(dst, "$-1\r\n"...)
			}
		}
		return dst
	case KRange:
		// A flat array of key, value, key, value, ... bulk strings —
		// the shape redis's ZRANGE WITHSCORES uses.
		dst = append(dst, '*')
		dst = appendUint(dst, uint64(2*len(rep.Items)))
		dst = append(dst, '\r', '\n')
		for _, it := range rep.Items {
			dst = appendBulkUint(dst, it.Key)
			dst = appendBulkUint(dst, it.Val)
		}
		return dst
	case KRaw:
		return appendBulkStr(dst, rep.Msg)
	case KPong:
		return append(dst, "+PONG\r\n"...)
	case KEmpty:
		return append(dst, "*0\r\n"...)
	case KMoved:
		// Redis cluster's redirect shape: an error line clients can
		// pattern-match without a new frame type.
		dst = append(dst, "-MOVED "...)
		dst = appendUint(dst, uint64(rep.N))
		dst = append(dst, ' ')
		dst = append(dst, rep.Msg...)
		return append(dst, '\r', '\n')
	default: // error kinds
		dst = append(dst, "-ERR "...)
		dst = append(dst, rep.Msg...)
		return append(dst, '\r', '\n')
	}
}

// Resync reports the stream unrecoverable: a RESP request abandoned
// mid-frame leaves no boundary to skip to, so an oversized request
// costs the connection (its error reply still flushes first).
func (RESP) Resync(buf []byte) (int, ResyncState) {
	return 0, ResyncFatal
}

// AppendRequest appends req as a RESP array of bulk strings — the
// client side of the protocol, for benchmarks and round-trip tests.
// Requests a client cannot express append nothing.
func (RESP) AppendRequest(dst []byte, req *Request) []byte {
	var name string
	extra := 0
	switch req.Cmd {
	case CmdGet:
		name = "GET"
	case CmdSet:
		name = "SET"
	case CmdIncr:
		name = "INCRBY"
	case CmdDelete:
		name = "DEL"
	case CmdMGet:
		name = "MGET"
	case CmdMSet:
		name = "MSET"
	case CmdZAdd:
		name = "ZADD"
	case CmdZGet:
		name = "ZGET"
	case CmdZIncr:
		name = "ZINCR"
	case CmdZDel:
		name = "ZDEL"
	case CmdZRange:
		name = "ZRANGE"
	case CmdZCount:
		name = "ZCOUNT"
	case CmdWait:
		// Only the two-integer WAIT form exists on this wire; a native
		// epoch target beyond "current" cannot be expressed in RESP.
		name = "WAIT"
	case CmdPing:
		name = "PING"
	case CmdInfo:
		name = "INFO"
	case CmdCommand:
		name = "COMMAND"
	case CmdQuit:
		name = "QUIT"
	case CmdSession:
		name = "SESSION"
	case CmdPromote:
		name = "PROMOTE"
	case CmdStats:
		name = "STATS"
		if req.Stats != StatsAggregate {
			extra = 1
		}
	case CmdCrash:
		name = "CRASH"
		if req.HasShard {
			extra = 1
		}
	default:
		return dst
	}
	tier := req.Dur != DurDurable
	if tier {
		switch req.Cmd {
		case CmdSet, CmdIncr, CmdDelete, CmdMSet, CmdZAdd, CmdZIncr, CmdZDel:
			extra++
		default:
			tier = false
		}
	}
	seq := req.HasSeq
	if seq {
		switch req.Cmd {
		case CmdSet, CmdIncr, CmdDelete, CmdMSet, CmdZAdd, CmdZIncr, CmdZDel:
			extra++
		default:
			seq = false
		}
	}
	dst = append(dst, '*')
	dst = appendUint(dst, uint64(1+len(req.KV)+extra))
	dst = append(dst, '\r', '\n')
	dst = appendBulkStr(dst, name)
	for _, v := range req.KV {
		dst = appendBulkUint(dst, v)
	}
	if tier {
		dst = appendBulkStr(dst, req.Dur.String())
	}
	if seq {
		var tmp [28]byte
		t := append(tmp[:0], "seq="...)
		t = appendUint(t, req.Seq)
		dst = appendBulkStr(dst, string(t))
	}
	if req.Cmd == CmdStats && extra == 1 {
		if req.Stats == StatsShards {
			dst = appendBulkStr(dst, "shards")
		} else {
			dst = appendBulkStr(dst, "reset")
		}
	}
	if req.Cmd == CmdCrash && extra == 1 {
		dst = appendBulkUint(dst, uint64(req.Shard))
	}
	return dst
}
