package famsync

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

func newDev(words int) *nvm.Device {
	return nvm.NewDevice(nvm.Config{Words: words})
}

func TestCreateCommitOpenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.fam")
	dev := newDev(1 << 12)
	dev.Store(10, 111)
	dev.FlushAll()
	s, err := Create(dev, path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	dev.Store(10, 222)
	dev.Store(2000, 333)
	dev.FlushAll()
	n, err := s.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if n != 2 {
		t.Fatalf("Commit wrote %d pages, want 2", n)
	}
	s.Close()

	dev2 := newDev(1 << 12)
	s2, err := OpenFile(dev2, path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer s2.Close()
	if dev2.Load(10) != 222 || dev2.Load(2000) != 333 {
		t.Fatalf("restored values wrong: %d, %d", dev2.Load(10), dev2.Load(2000))
	}
	if s2.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", s2.Generation())
	}
}

func TestCommitWithNoChangesWritesNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.fam")
	dev := newDev(1 << 10)
	s, err := Create(dev, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n, err := s.Commit()
	if err != nil || n != 0 {
		t.Fatalf("empty Commit = %d,%v", n, err)
	}
	if s.Generation() != 0 {
		t.Fatal("generation advanced without changes")
	}
}

func TestOnlyDirtyPagesWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.fam")
	dev := newDev(1 << 12)
	s, err := Create(dev, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Touch one word -> exactly one page.
	dev.Store(100, 5)
	dev.FlushAll()
	if n, _ := s.Commit(); n != 1 {
		t.Fatalf("pages written = %d, want 1", n)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.fam")
	dev := newDev(1 << 10)
	s, err := Create(dev, path)
	if err != nil {
		t.Fatal(err)
	}
	dev.Store(0, 1)
	dev.FlushAll()
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-commit: append a page record with NO seal.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 8*(2+DefaultPageWords))
	garbage[0] = tagPage
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dev2 := newDev(1 << 10)
	s2, err := OpenFile(dev2, path)
	if err != nil {
		t.Fatalf("OpenFile with torn tail: %v", err)
	}
	defer s2.Close()
	if dev2.Load(0) != 1 {
		t.Fatalf("committed state lost: %d", dev2.Load(0))
	}
	if s2.Generation() != 1 {
		t.Fatalf("generation = %d, want 1 (torn group ignored)", s2.Generation())
	}
	// The torn tail must have been truncated: further commits and
	// reopens work.
	dev2.Store(5, 9)
	dev2.FlushAll()
	if _, err := s2.Commit(); err != nil {
		t.Fatalf("Commit after truncation: %v", err)
	}
	s2.Close()
	dev3 := newDev(1 << 10)
	s3, err := OpenFile(dev3, path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s3.Close()
	if dev3.Load(5) != 9 {
		t.Fatal("post-truncation commit lost")
	}
}

func TestTornCommitRecordDiscarded(t *testing.T) {
	// Flip a bit inside the LAST commit record: that group must be
	// ignored, the previous generation preserved.
	path := filepath.Join(t.TempDir(), "heap.fam")
	dev := newDev(1 << 10)
	s, err := Create(dev, path)
	if err != nil {
		t.Fatal(err)
	}
	dev.Store(0, 1)
	dev.FlushAll()
	s.Commit() // gen 1
	dev.Store(0, 2)
	dev.FlushAll()
	s.Commit() // gen 2
	s.Close()

	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff // corrupt the final checksum
	os.WriteFile(path, data, 0o644)

	dev2 := newDev(1 << 10)
	s2, err := OpenFile(dev2, path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer s2.Close()
	if dev2.Load(0) != 1 {
		t.Fatalf("value = %d, want gen-1's 1 (gen 2 was torn)", dev2.Load(0))
	}
	if s2.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", s2.Generation())
	}
}

func TestCompactFoldsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.fam")
	dev := newDev(1 << 10)
	s, err := Create(dev, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		dev.Store(nvm.Addr(i*64), i+1)
		dev.FlushAll()
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s.JournalWords() != 0 {
		t.Fatalf("journal = %d words after Compact", s.JournalWords())
	}
	s.Close()
	dev2 := newDev(1 << 10)
	s2, err := OpenFile(dev2, path)
	if err != nil {
		t.Fatalf("OpenFile after Compact: %v", err)
	}
	defer s2.Close()
	for i := uint64(0); i < 5; i++ {
		if dev2.Load(nvm.Addr(i*64)) != i+1 {
			t.Fatalf("value %d lost by Compact", i)
		}
	}
}

func TestAutoCompactBoundsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.fam")
	dev := newDev(1 << 10) // 1024 words: tiny, so compaction triggers fast
	s, err := Create(dev, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		dev.Store(nvm.Addr(i%1024), uint64(i))
		dev.FlushAll()
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if s.JournalWords() > int64(1024) {
		t.Fatalf("journal grew unbounded: %d words", s.JournalWords())
	}
}

func TestOpenFileRejects(t *testing.T) {
	dir := t.TempDir()
	dev := newDev(64)
	if _, err := OpenFile(dev, filepath.Join(dir, "missing")); err == nil {
		t.Fatal("OpenFile(missing) succeeded")
	}
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("garbage bytes that are definitely not a famsync file"), 0o644)
	if _, err := OpenFile(dev, bad); !errors.Is(err, ErrBadFile) {
		t.Fatalf("OpenFile(garbage) = %v", err)
	}
	// Size mismatch.
	path := filepath.Join(dir, "sized")
	big := newDev(128)
	s, err := Create(big, path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenFile(dev, path); !errors.Is(err, ErrSizeMatch) {
		t.Fatalf("OpenFile(wrong size) = %v", err)
	}
}

func TestClosedSyncerRejectsOperations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.fam")
	dev := newDev(64)
	s, err := Create(dev, path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit after Close = %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}

func TestWithPersistentHeap(t *testing.T) {
	// End-to-end: a persistent heap synced incrementally across a
	// simulated process restart.
	path := filepath.Join(t.TempDir(), "heap.fam")
	dev := newDev(1 << 12)
	heap, err := pheap.Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := heap.Alloc(4)
	heap.Store(p, 0, 0xabcd)
	heap.SetRoot(p)
	dev.FlushAll()
	s, err := Create(dev, path)
	if err != nil {
		t.Fatal(err)
	}
	heap.Store(p, 1, 0xef01)
	dev.FlushAll()
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	dev2 := newDev(1 << 12)
	s2, err := OpenFile(dev2, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	heap2, err := pheap.Open(dev2)
	if err != nil {
		t.Fatalf("heap reopen: %v", err)
	}
	if heap2.Load(heap2.Root(), 0) != 0xabcd || heap2.Load(heap2.Root(), 1) != 0xef01 {
		t.Fatal("heap contents lost across famsync round trip")
	}
}

// Property: a sequence of random mutations + commits round-trips: a
// reopened device always equals the state at the LAST SEALED commit,
// regardless of unsynced mutations afterwards.
func TestQuickCommittedStateAlwaysRecovered(t *testing.T) {
	f := func(muts []uint16, extra []uint16) bool {
		dir, err := os.MkdirTemp("", "famsync")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "f")
		dev := newDev(256)
		s, err := Create(dev, path)
		if err != nil {
			return false
		}
		for _, m := range muts {
			dev.Store(nvm.Addr(m%256), uint64(m)+1)
		}
		dev.FlushAll()
		if _, err := s.Commit(); err != nil {
			return false
		}
		want := dev.SnapshotPersisted()
		// Post-commit mutations that never get committed.
		for _, m := range extra {
			dev.Store(nvm.Addr(m%256), uint64(m)+777)
		}
		dev.FlushAll()
		s.Close()

		dev2 := newDev(256)
		s2, err := OpenFile(dev2, path)
		if err != nil {
			return false
		}
		defer s2.Close()
		got := dev2.SnapshotPersisted()
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
