// Package famsync implements failure-atomic incremental synchronization
// of a simulated NVM device's durable image to a real file — the
// mechanism of "Failure-atomic msync()" (Park, Kelly & Shen, EuroSys
// 2013), which the paper's Section 3 cites as the conventional-hardware
// building block for persistent heaps: on machines whose memory does NOT
// survive the tolerated failure, the heap's pages must be written to
// durable storage, and those writes must themselves be atomic so a crash
// mid-sync cannot leave the file holding a half-updated heap.
//
// The file holds a full base image followed by a journal of page groups.
// Each Commit appends only the pages that changed since the previous
// commit, sealed by a checksummed commit record; recovery replays exactly
// the sealed groups, so the loaded image is always SOME committed state
// — never a torn one. Compact rewrites the base (atomically, via rename)
// when the journal grows past the base's size.
package famsync

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"tsp/internal/nvm"
)

// On-disk layout (all values little-endian uint64 words):
//
//	header:  magic, version, imageWords, pageWords
//	base:    imageWords words (the image as of the last Compact)
//	journal: zero or more groups, each
//	           ( [tagPage, pageIdx, <pageWords words>] )*  — changed pages
//	           [tagCommit, generation, pageCount, checksum]
//	         an unsealed (torn) tail group is ignored by recovery.
const (
	Magic   = 0x4641_4d53_594e_4331 // "FAMSYNC1"
	Version = 1

	tagPage   = 1
	tagCommit = 2

	headerWords = 4
	// DefaultPageWords is the sync granularity: 64 words = 512 bytes.
	DefaultPageWords = 64
)

// Errors returned by the package.
var (
	ErrBadFile   = errors.New("famsync: not a valid famsync file")
	ErrSizeMatch = errors.New("famsync: file image size does not match device")
	ErrClosed    = errors.New("famsync: syncer is closed")
)

// Syncer binds a device to its backing file.
type Syncer struct {
	dev       *nvm.Device
	path      string
	f         *os.File
	shadow    []uint64 // last committed image
	gen       uint64   // last committed generation
	pageWords int
	journalWd int64 // journal length in words (for Compact heuristics)
	closed    bool
}

// fnv1a accumulates words into an FNV-1a hash.
func fnv1a(h uint64, words ...uint64) uint64 {
	const prime = 1099511628211
	if h == 0 {
		h = 14695981039346656037
	}
	var buf [8]byte
	for _, w := range words {
		binary.LittleEndian.PutUint64(buf[:], w)
		for _, b := range buf {
			h ^= uint64(b)
			h *= prime
		}
	}
	return h
}

// Create initializes path with the device's current persisted image as
// the base and returns a Syncer positioned for incremental commits. An
// existing file at path is truncated.
func Create(dev *nvm.Device, path string) (*Syncer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("famsync: %w", err)
	}
	img := dev.SnapshotPersisted()
	s := &Syncer{
		dev:       dev,
		path:      path,
		f:         f,
		shadow:    img,
		pageWords: DefaultPageWords,
	}
	if err := writeWords(f, []uint64{Magic, Version, uint64(len(img)), uint64(s.pageWords)}); err != nil {
		f.Close()
		return nil, err
	}
	if err := writeWords(f, img); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("famsync: sync: %w", err)
	}
	return s, nil
}

// OpenFile loads the committed image from path into the device (which
// must match the image's word count), restarts the device so the new
// incarnation sees it, and returns a Syncer for further commits. Torn
// journal tails from a crash mid-Commit are discarded — that is the
// failure-atomicity contract.
func OpenFile(dev *nvm.Device, path string) (*Syncer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("famsync: %w", err)
	}
	hdr := make([]uint64, headerWords)
	if err := readWords(f, hdr); err != nil {
		f.Close()
		return nil, ErrBadFile
	}
	if hdr[0] != Magic || hdr[1] != Version {
		f.Close()
		return nil, ErrBadFile
	}
	words, pageWords := hdr[2], int(hdr[3])
	if words != dev.Words() {
		f.Close()
		return nil, fmt.Errorf("%w: file %d words, device %d", ErrSizeMatch, words, dev.Words())
	}
	if pageWords < 1 || uint64(pageWords) > words {
		f.Close()
		return nil, ErrBadFile
	}
	img := make([]uint64, words)
	if err := readWords(f, img); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: truncated base image", ErrBadFile)
	}
	s := &Syncer{dev: dev, path: path, f: f, shadow: img, pageWords: pageWords}

	// Replay sealed journal groups; truncate at the first torn one.
	journalStart := int64(headerWords+len(img)) * 8
	validEnd := journalStart
	for {
		groupEnd, gen, ok := s.replayGroup(img)
		if !ok {
			break
		}
		s.gen = gen
		validEnd = groupEnd
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("famsync: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("famsync: %w", err)
	}
	s.journalWd = (validEnd - journalStart) / 8

	if err := dev.RestorePersisted(img); err != nil {
		f.Close()
		return nil, err
	}
	dev.Restart()
	copy(s.shadow, img)
	return s, nil
}

// replayGroup reads one journal group at the current file offset and
// applies it to img if sealed. It returns the end offset of the group,
// the committed generation, and whether the group was valid.
func (s *Syncer) replayGroup(img []uint64) (int64, uint64, bool) {
	type pendingPage struct {
		idx  uint64
		data []uint64
	}
	var pending []pendingPage
	crc := uint64(0)
	for {
		var tag [1]uint64
		if err := readWords(s.f, tag[:]); err != nil {
			return 0, 0, false
		}
		switch tag[0] {
		case tagPage:
			var idx [1]uint64
			if err := readWords(s.f, idx[:]); err != nil {
				return 0, 0, false
			}
			if idx[0]*uint64(s.pageWords) >= uint64(len(img)) {
				return 0, 0, false
			}
			data := make([]uint64, s.pageSize(int(idx[0]), len(img)))
			if err := readWords(s.f, data); err != nil {
				return 0, 0, false
			}
			crc = fnv1a(crc, idx[0])
			crc = fnv1a(crc, data...)
			pending = append(pending, pendingPage{idx[0], data})
		case tagCommit:
			var rest [3]uint64 // gen, count, checksum
			if err := readWords(s.f, rest[:]); err != nil {
				return 0, 0, false
			}
			crc = fnv1a(crc, rest[0], rest[1])
			if rest[1] != uint64(len(pending)) || rest[2] != crc {
				return 0, 0, false
			}
			for _, p := range pending {
				copy(img[p.idx*uint64(s.pageWords):], p.data)
			}
			off, err := s.f.Seek(0, io.SeekCurrent)
			if err != nil {
				return 0, 0, false
			}
			return off, rest[0], true
		default:
			return 0, 0, false
		}
	}
}

// pageSize returns page idx's size in words (the final page may be
// short).
func (s *Syncer) pageSize(idx int, imageWords int) int {
	start := idx * s.pageWords
	if start+s.pageWords > imageWords {
		return imageWords - start
	}
	return s.pageWords
}

// Commit atomically appends every page of the device's persisted image
// that changed since the last commit. Either the whole group becomes
// visible to a future OpenFile or none of it does. It returns the number
// of pages written.
func (s *Syncer) Commit() (int, error) {
	if s.closed {
		return 0, ErrClosed
	}
	img := s.dev.SnapshotPersisted()
	if len(img) != len(s.shadow) {
		return 0, ErrSizeMatch
	}
	nPages := (len(img) + s.pageWords - 1) / s.pageWords
	crc := uint64(0)
	written := 0
	for p := 0; p < nPages; p++ {
		lo := p * s.pageWords
		hi := lo + s.pageSize(p, len(img))
		if equalWords(img[lo:hi], s.shadow[lo:hi]) {
			continue
		}
		if err := writeWords(s.f, []uint64{tagPage, uint64(p)}); err != nil {
			return written, err
		}
		if err := writeWords(s.f, img[lo:hi]); err != nil {
			return written, err
		}
		crc = fnv1a(crc, uint64(p))
		crc = fnv1a(crc, img[lo:hi]...)
		s.journalWd += int64(2 + hi - lo)
		written++
	}
	if written == 0 {
		return 0, nil
	}
	// Data before seal: fsync the page records, then write and fsync the
	// sealed commit record. A crash between the two leaves a torn tail
	// that OpenFile discards.
	if err := s.f.Sync(); err != nil {
		return written, fmt.Errorf("famsync: sync: %w", err)
	}
	s.gen++
	crc = fnv1a(crc, s.gen, uint64(written))
	if err := writeWords(s.f, []uint64{tagCommit, s.gen, uint64(written), crc}); err != nil {
		return written, err
	}
	if err := s.f.Sync(); err != nil {
		return written, fmt.Errorf("famsync: sync: %w", err)
	}
	s.journalWd += 4
	copy(s.shadow, img)

	// Keep the journal bounded: when it outgrows the base image, fold it
	// in.
	if s.journalWd > int64(len(img)) {
		if err := s.Compact(); err != nil {
			return written, err
		}
	}
	return written, nil
}

// Generation returns the last committed generation number.
func (s *Syncer) Generation() uint64 { return s.gen }

// JournalWords returns the current journal length in words.
func (s *Syncer) JournalWords() int64 { return s.journalWd }

// Compact rewrites the file as header + current shadow image with an
// empty journal, atomically (temp file + rename), and reopens the
// handle.
func (s *Syncer) Compact() error {
	if s.closed {
		return ErrClosed
	}
	tmp := s.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("famsync: %w", err)
	}
	defer os.Remove(tmp)
	if err := writeWords(nf, []uint64{Magic, Version, uint64(len(s.shadow)), uint64(s.pageWords)}); err != nil {
		nf.Close()
		return err
	}
	if err := writeWords(nf, s.shadow); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return fmt.Errorf("famsync: sync: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		nf.Close()
		return fmt.Errorf("famsync: rename: %w", err)
	}
	old := s.f
	s.f = nf
	old.Close()
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("famsync: %w", err)
	}
	s.journalWd = 0
	return nil
}

// Close releases the file handle. Further operations fail with
// ErrClosed.
func (s *Syncer) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

func equalWords(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func writeWords(w io.Writer, words []uint64) error {
	buf := make([]byte, 8*len(words))
	for i, v := range words {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("famsync: write: %w", err)
	}
	return nil
}

func readWords(r io.Reader, words []uint64) error {
	buf := make([]byte, 8*len(words))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return nil
}
