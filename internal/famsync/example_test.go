package famsync_test

import (
	"fmt"
	"os"
	"path/filepath"

	"tsp/internal/famsync"
	"tsp/internal/nvm"
)

// The conventional-hardware discipline: commit changed pages through to
// a file failure-atomically; a new incarnation reloads the last sealed
// commit, never a torn one.
func Example() {
	dir, _ := os.MkdirTemp("", "famsync-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "heap.fam")

	dev := nvm.NewDevice(nvm.Config{Words: 1 << 10})
	sync, _ := famsync.Create(dev, path)

	dev.Store(0, 42)
	dev.FlushAll() // device image first...
	pages, _ := sync.Commit()
	fmt.Println("pages committed:", pages)

	dev.Store(0, 99) // ...this one never gets committed
	dev.FlushAll()
	sync.Close()

	dev2 := nvm.NewDevice(nvm.Config{Words: 1 << 10})
	sync2, _ := famsync.OpenFile(dev2, path)
	defer sync2.Close()
	fmt.Println("reloaded:", dev2.Load(0))
	// Output:
	// pages committed: 1
	// reloaded: 42
}
