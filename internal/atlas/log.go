package atlas

import (
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// Log entry format. Every entry occupies four words in a per-thread ring
// of log slots, aligned so no entry ever straddles a cache line (two
// entries per 64-byte line):
//
//	0: meta  — seq<<5 | kind<<1 | opening
//	1: a     — store: heap word address; acquire/release: mutex id
//	2: v     — store: the OLD value (undo value); others: 0
//	3: check — mixer over meta, a, v, the owning thread id and the log
//	           epoch at append time
//
// The thread id is implied by which ring the entry sits in and the epoch
// by the directory, so neither needs its own word: both are folded into
// the checksum, which therefore also rejects records from earlier epochs
// (truncated logs) and records read out of the wrong ring. The OCS a
// record belongs to is likewise implicit: per-thread sequence numbers
// are strictly increasing, so sorting a ring's valid records by sequence
// number recovers exact append order, and acquire/release nesting
// (with the opening flag marking each OCS's first acquire) regroups them.
//
// Compactness is not a luxury here: writing log records is precisely the
// failure-free overhead the paper measures, so every word of a record
// costs benchmark fidelity.
type entryKind uint64

const (
	entryInvalid entryKind = iota
	entryStore
	entryAcquire
	entryRelease
)

// entryWords is the size of one log entry in words.
const entryWords = 4

// entry is the decoded in-memory form of a log record.
type entry struct {
	kind    entryKind
	seq     uint64
	a       uint64
	v       uint64
	opening bool // acquire that opened its OCS (held count 0 -> 1)
}

const (
	metaOpeningBit = 1
	metaKindShift  = 1
	metaKindMask   = 0xf
	metaSeqShift   = 5
)

func (e entry) meta() uint64 {
	m := e.seq<<metaSeqShift | uint64(e.kind)<<metaKindShift
	if e.opening {
		m |= metaOpeningBit
	}
	return m
}

// mix64 is a 64-bit finalizer (splitmix64's mixing function).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// checksum computes the record's integrity word over the stored words
// plus the implied thread and epoch. A torn record (words from different
// appends captured together) validates only if the field deltas cancel
// exactly — a ~2^-64 coincidence. The result must not be zero so that a
// never-written all-zero slot can never validate.
func checksum(meta, a, v, thread, epoch uint64) uint64 {
	h := meta*0x9e3779b97f4a7c15 ^
		a*0xc2b2ae3d27d4eb4f ^
		v*0x165667b19e3779f9 ^
		thread*0xd6e8feb86659fd93 ^
		epoch*0xff51afd7ed558ccd
	h = mix64(h ^ 0x7350_2d61_746c_6173) // "sP-atlas" salt
	if h == 0 {
		h = 1
	}
	return h
}

// writeEntry stores the record at the given slot as one block burst.
// Under a TSP rescue the whole record is captured; in non-TSP mode the
// runtime flushes records in append order before anything that depends
// on them (see Thread.appendEntry). A background eviction capturing the
// line mid-write yields a checksum mismatch, never a silently wrong
// record.
func writeEntry(dev *nvm.Device, base nvm.Addr, e entry, thread, epoch uint64) {
	m := e.meta()
	dev.StoreBlock(base, []uint64{m, e.a, e.v, checksum(m, e.a, e.v, thread, epoch)})
}

// readEntry decodes and validates the record at base from the device's
// CURRENT image (recovery runs after Restart, so the volatile image is
// the persisted one). ok is false for never-written, torn, wrong-ring,
// or wrong-epoch records.
func readEntry(dev *nvm.Device, base nvm.Addr, thread, epoch uint64) (entry, bool) {
	m := dev.Load(base + 0)
	a := dev.Load(base + 1)
	v := dev.Load(base + 2)
	if dev.Load(base+3) != checksum(m, a, v, thread, epoch) {
		return entry{}, false
	}
	e := entry{
		kind:    entryKind(m >> metaKindShift & metaKindMask),
		seq:     m >> metaSeqShift,
		a:       a,
		v:       v,
		opening: m&metaOpeningBit != 0,
	}
	if e.kind == entryInvalid || e.kind > entryRelease {
		return entry{}, false
	}
	return e, true
}

// Log directory layout. The directory is a persistent block anchored at
// heap Aux slot AuxLogDir so that recovery can find the logs without any
// volatile state:
//
//	0:              magic
//	1:              epoch (current log epoch; bumped by checkpoint/recovery)
//	2:              maxThreads
//	3:              entriesPerThread
//	4..4+maxThreads: per-thread log buffer pointers (pheap.Ptr, 0 = none)
const (
	// AuxLogDir is the heap auxiliary-root slot anchoring the Atlas log
	// directory.
	AuxLogDir = 0

	dirMagicWord   = 0
	dirEpochWord   = 1
	dirThreadsWord = 2
	dirEntriesWord = 3
	dirBufBase     = 4

	dirMagic = 0x41544c41_534c4f47 // "ATLASLOG"
)

// dirWords returns the directory block size for maxThreads threads.
func dirWords(maxThreads int) int { return dirBufBase + maxThreads }

// alignedLogBase rounds a log buffer's payload pointer up to the next
// entry boundary. Heap payloads start one word past the block header, so
// buffers are allocated one entry oversized and every user of the
// directory derives the aligned base the same way — entries then never
// straddle cache lines.
func alignedLogBase(p pheap.Ptr) nvm.Addr {
	return nvm.Addr((uint64(p) + entryWords - 1) &^ (entryWords - 1))
}

// logDir is a volatile handle onto the persistent directory block.
type logDir struct {
	heap *pheap.Heap
	p    pheap.Ptr
}

func (d logDir) magic() uint64   { return d.heap.Load(d.p, dirMagicWord) }
func (d logDir) epoch() uint64   { return d.heap.Load(d.p, dirEpochWord) }
func (d logDir) maxThreads() int { return int(d.heap.Load(d.p, dirThreadsWord)) }
func (d logDir) entries() int    { return int(d.heap.Load(d.p, dirEntriesWord)) }
func (d logDir) buf(i int) pheap.Ptr {
	return pheap.Ptr(d.heap.Load(d.p, dirBufBase+i))
}

func (d logDir) setEpoch(e uint64) {
	d.heap.Store(d.p, dirEpochWord, e)
	d.heap.Device().FlushWord(d.p.Addr() + dirEpochWord)
}

func (d logDir) setBuf(i int, b pheap.Ptr) {
	d.heap.Store(d.p, dirBufBase+i, uint64(b))
	d.heap.Device().FlushWord(d.p.Addr() + nvm.Addr(dirBufBase+i))
}
