package atlas

import (
	"testing"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// Nested-crash testing: the machine dies AGAIN in the middle of
// recovery, repeatedly, at every possible store offset — and recovery
// must remain restartable: however many times it is cut short, a final
// uninterrupted run must produce exactly the state a single clean
// recovery would have.
func TestRecoveryRestartableUnderNestedCrashes(t *testing.T) {
	// Build the reference outcome once: a clean recovery.
	build := func() *nvm.Device {
		dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
		heap, err := pheap.Format(dev)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(heap, ModeTSP, Options{MaxThreads: 1, LogEntries: 256})
		if err != nil {
			t.Fatal(err)
		}
		region, err := heap.Alloc(8)
		if err != nil {
			t.Fatal(err)
		}
		heap.SetRoot(region)
		th, err := rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		m := rt.NewMutex()
		// Committed history...
		for i := uint64(1); i <= 10; i++ {
			th.Lock(m)
			th.Store(region.Addr()+nvm.Addr(i%8), i)
			th.Unlock(m)
		}
		// ...and an in-flight OCS touching several words.
		th.Lock(m)
		for w := nvm.Addr(0); w < 4; w++ {
			th.Store(region.Addr()+w, 9999)
		}
		dev.CrashRescue()
		dev.Restart()
		return dev
	}

	reference := build()
	refHeap, err := pheap.Open(reference)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(refHeap); err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 8)
	for w := 0; w < 8; w++ {
		want[w] = refHeap.Load(refHeap.Root(), w)
	}

	// Now re-run recovery with a crash armed at every store offset up to
	// well past recovery's total store count, nesting up to three deep.
	for offset := uint64(0); offset < 60; offset += 7 {
		dev := build()
		crashes := 0
		for attempt := 0; attempt < 10; attempt++ {
			heap, err := pheap.Open(dev)
			if err != nil {
				t.Fatalf("offset %d attempt %d: Open: %v", offset, attempt, err)
			}
			if crashes < 3 {
				dev.ArmCrashAfter(offset+uint64(attempt)*11, nvm.CrashOptions{RescueFraction: 1})
			}
			_, err = Recover(heap)
			if err != nil {
				t.Fatalf("offset %d attempt %d: Recover: %v", offset, attempt, err)
			}
			if !dev.Crashed() {
				// Recovery ran to completion; verify against the
				// reference.
				for w := 0; w < 8; w++ {
					if got := heap.Load(heap.Root(), w); got != want[w] {
						t.Fatalf("offset %d: word %d = %d, want %d (after %d nested crashes)",
							offset, w, got, want[w], crashes)
					}
				}
				break
			}
			crashes++
			dev.Restart()
		}
		if dev.Crashed() {
			t.Fatalf("offset %d: recovery never completed", offset)
		}
	}
}

// TestRecoveryRestartableUnderNoRescueNestedCrash covers the same
// property when the nested crash rescues nothing: recovery's own writes
// vanish, but the logs (still untruncated) drive an identical replay.
func TestRecoveryRestartableUnderNoRescueNestedCrash(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
	heap, err := pheap.Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(heap, ModeNonTSP, Options{MaxThreads: 1, LogEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	region, err := heap.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	heap.SetRoot(region)
	dev.FlushAll()
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutex()
	th.Lock(m)
	th.Store(region.Addr(), 42)
	th.Unlock(m) // committed, durable via commit flush
	th.Lock(m)
	th.Store(region.Addr(), 777) // in-flight
	dev.CrashDrop()
	dev.Restart()

	// First recovery attempt dies (no rescue) after a handful of stores.
	heap1, err := pheap.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	dev.ArmCrashAfter(0, nvm.CrashOptions{RescueFraction: 0})
	if _, err := Recover(heap1); err != nil {
		t.Fatal(err)
	}
	if !dev.Crashed() {
		t.Skip("recovery finished before the armed crash; store count shifted")
	}
	dev.Restart()

	// Second attempt runs clean and must land on the committed value.
	heap2, err := pheap.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(heap2); err != nil {
		t.Fatalf("re-recovery: %v", err)
	}
	if got := heap2.Load(heap2.Root(), 0); got != 42 {
		t.Fatalf("value = %d, want committed 42", got)
	}
}
