package atlas

import (
	"strings"
	"sync"
	"testing"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// env bundles a device, heap and runtime for tests.
type env struct {
	dev  *nvm.Device
	heap *pheap.Heap
	rt   *Runtime
}

func newEnv(t *testing.T, mode Mode, opts Options) *env {
	t.Helper()
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 20})
	heap, err := pheap.Format(dev)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	rt, err := New(heap, mode, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &env{dev: dev, heap: heap, rt: rt}
}

// reopen crashes the device with the given rescue fraction, restarts it,
// reopens the heap and runs recovery.
func (e *env) reopen(t *testing.T, rescueFraction float64) (*pheap.Heap, Report) {
	t.Helper()
	e.dev.Crash(nvm.CrashOptions{RescueFraction: rescueFraction, Seed: 42})
	e.dev.Restart()
	heap, err := pheap.Open(e.dev)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	rep, err := Recover(heap)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return heap, rep
}

// alloc allocates a words-sized block and fails the test on error.
func (e *env) alloc(t *testing.T, words int) pheap.Ptr {
	t.Helper()
	p, err := e.heap.Alloc(words)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	return p
}

func (e *env) thread(t *testing.T) *Thread {
	t.Helper()
	th, err := e.rt.NewThread()
	if err != nil {
		t.Fatalf("NewThread: %v", err)
	}
	return th
}

func TestCompletedOCSSurvivesCrash(t *testing.T) {
	for _, mode := range []Mode{ModeTSP, ModeNonTSP} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t, mode, Options{})
			p := e.alloc(t, 2)
			e.heap.SetRoot(p)
			th := e.thread(t)
			m := e.rt.NewMutex()

			th.Lock(m)
			th.Store(p.Addr(), 111)
			th.Store(p.Addr()+1, 222)
			th.Unlock(m)

			heap, rep := e.reopen(t, 1)
			if rep.Incomplete != 0 || rep.UndoApplied != 0 {
				t.Fatalf("completed OCS was rolled back: %s", rep)
			}
			if heap.Load(heap.Root(), 0) != 111 || heap.Load(heap.Root(), 1) != 222 {
				t.Fatal("completed OCS's stores lost")
			}
		})
	}
}

func TestIncompleteOCSRolledBack(t *testing.T) {
	for _, mode := range []Mode{ModeTSP, ModeNonTSP} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t, mode, Options{})
			p := e.alloc(t, 2)
			e.heap.SetRoot(p)
			th := e.thread(t)
			m := e.rt.NewMutex()

			th.Lock(m)
			th.Store(p.Addr(), 5)
			th.Unlock(m) // committed: value 5

			th.Lock(m)
			th.Store(p.Addr(), 99) // in-flight when the crash hits
			// no Unlock: the OCS is incomplete

			heap, rep := e.reopen(t, 1)
			if rep.Incomplete != 1 {
				t.Fatalf("incomplete OCS count = %d, want 1 (%s)", rep.Incomplete, rep)
			}
			if got := heap.Load(heap.Root(), 0); got != 5 {
				t.Fatalf("value after rollback = %d, want committed 5", got)
			}
		})
	}
}

func TestFirstStoreFilterRestoresOriginal(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	th := e.thread(t)
	m := e.rt.NewMutex()

	th.Lock(m)
	th.Store(p.Addr(), 1)
	th.Unlock(m)

	th.Lock(m)
	// Many stores to one location: exactly one undo record, and the
	// rollback must restore the value from before the OCS, not an
	// intermediate.
	for v := uint64(10); v < 20; v++ {
		th.Store(p.Addr(), v)
	}

	heap, rep := e.reopen(t, 1)
	if rep.UndoApplied != 1 {
		t.Fatalf("undo records applied = %d, want 1 (first-store filter)", rep.UndoApplied)
	}
	if got := heap.Load(heap.Root(), 0); got != 1 {
		t.Fatalf("value = %d, want pre-OCS 1", got)
	}
}

func TestCascadingRollback(t *testing.T) {
	// The Section 2.3 (Atlas papers) situation: OCS B completed before
	// the crash but acquired a mutex released mid-OCS by the incomplete
	// OCS A, so B may have observed A's uncommitted writes and must be
	// rolled back too.
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 2)
	x, y := p.Addr(), p.Addr()+1
	e.heap.SetRoot(p)
	thA := e.thread(t)
	thB := e.thread(t)
	m1 := e.rt.NewMutex()
	m2 := e.rt.NewMutex()

	e.dev.Store(x, 10)
	e.dev.Store(y, 20)
	e.dev.FlushAll()

	// A: outer OCS on m1; writes x under the nested m2, releases m2,
	// keeps running (still incomplete at crash time).
	thA.Lock(m1)
	thA.Lock(m2)
	thA.Store(x, 11)
	thA.Unlock(m2)

	// B: acquires m2 after A released it, derives y from x, completes.
	thB.Lock(m2)
	thB.Store(y, thB.Load(x)+10) // observes A's uncommitted 11
	thB.Unlock(m2)

	heap, rep := e.reopen(t, 1)
	if rep.Incomplete != 1 {
		t.Fatalf("incomplete = %d, want 1", rep.Incomplete)
	}
	if rep.Cascaded != 1 {
		t.Fatalf("cascaded = %d, want 1 (B must roll back)", rep.Cascaded)
	}
	if got := heap.Load(heap.Root(), 0); got != 10 {
		t.Fatalf("x = %d, want 10", got)
	}
	if got := heap.Load(heap.Root(), 1); got != 20 {
		t.Fatalf("y = %d, want 20 (B's write must be rolled back)", got)
	}
}

func TestCascadeDoesNotTouchEarlierOwners(t *testing.T) {
	// C used m2 and completed BEFORE A (the incomplete OCS) ever
	// acquired it; C must survive.
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 2)
	x, y := p.Addr(), p.Addr()+1
	e.heap.SetRoot(p)
	thA := e.thread(t)
	thC := e.thread(t)
	m1 := e.rt.NewMutex()
	m2 := e.rt.NewMutex()

	thC.Lock(m2)
	thC.Store(y, 77)
	thC.Unlock(m2) // C complete, before A touches m2

	thA.Lock(m1)
	thA.Lock(m2)
	thA.Store(x, 5)
	thA.Unlock(m2)
	// A incomplete.

	heap, rep := e.reopen(t, 1)
	if rep.Cascaded != 0 {
		t.Fatalf("cascaded = %d, want 0", rep.Cascaded)
	}
	if got := heap.Load(heap.Root(), 1); got != 77 {
		t.Fatalf("y = %d, want 77 (C committed before A's release)", got)
	}
	if got := heap.Load(heap.Root(), 0); got != 0 {
		t.Fatalf("x = %d, want 0 (A rolled back)", got)
	}
}

func TestTransitiveCascade(t *testing.T) {
	// A (incomplete) releases m2 -> B acquires m2, completes, but B is
	// tainted; C acquires m2 after B -> C tainted transitively.
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 3)
	e.heap.SetRoot(p)
	thA, thB, thC := e.thread(t), e.thread(t), e.thread(t)
	m1, m2 := e.rt.NewMutex(), e.rt.NewMutex()

	thA.Lock(m1)
	thA.Lock(m2)
	thA.Store(p.Addr(), 1)
	thA.Unlock(m2)

	thB.Lock(m2)
	thB.Store(p.Addr()+1, 2)
	thB.Unlock(m2)

	thC.Lock(m2)
	thC.Store(p.Addr()+2, 3)
	thC.Unlock(m2)

	heap, rep := e.reopen(t, 1)
	if rep.Cascaded != 2 {
		t.Fatalf("cascaded = %d, want 2 (B and C)", rep.Cascaded)
	}
	for off := 0; off < 3; off++ {
		if got := heap.Load(heap.Root(), off); got != 0 {
			t.Fatalf("word %d = %d, want 0 after transitive rollback", off, got)
		}
	}
}

func TestNonTSPSurvivesCrashWithoutRescue(t *testing.T) {
	// The non-TSP bargain: synchronous log flushing buys recovery even
	// when the crash rescues nothing (volatile cache contents lost).
	e := newEnv(t, ModeNonTSP, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	e.dev.FlushAll() // make the root and heap metadata durable
	th := e.thread(t)
	m := e.rt.NewMutex()

	th.Lock(m)
	th.Store(p.Addr(), 7)
	th.Unlock(m) // committed: data + end marker flushed

	th.Lock(m)
	th.Store(p.Addr(), 1000) // in-flight; log entry flushed, data not

	heap, rep := e.reopen(t, 0) // NO rescue
	if rep.Incomplete != 1 {
		t.Fatalf("incomplete = %d, want 1 (%s)", rep.Incomplete, rep)
	}
	if got := heap.Load(heap.Root(), 0); got != 7 {
		t.Fatalf("value = %d, want committed 7", got)
	}
}

func TestNonTSPCommitFlushMakesCompletedOCSDurable(t *testing.T) {
	e := newEnv(t, ModeNonTSP, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	e.dev.FlushAll()
	th := e.thread(t)
	m := e.rt.NewMutex()

	th.Lock(m)
	th.Store(p.Addr(), 1234)
	th.Unlock(m)

	heap, _ := e.reopen(t, 0) // no rescue; commit flush must have persisted it
	if got := heap.Load(heap.Root(), 0); got != 1234 {
		t.Fatalf("value = %d, want 1234", got)
	}
}

func TestNonTSPRollbackWithPartiallyEvictedData(t *testing.T) {
	// The in-flight OCS's data store DID reach durable media (eviction),
	// but the undo record replay must still restore the old value.
	e := newEnv(t, ModeNonTSP, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	e.dev.FlushAll()
	th := e.thread(t)
	m := e.rt.NewMutex()

	th.Lock(m)
	th.Store(p.Addr(), 555)
	e.dev.FlushWord(p.Addr()) // simulate cache eviction of the dirty line

	heap, _ := e.reopen(t, 0)
	if got := heap.Load(heap.Root(), 0); got != 0 {
		t.Fatalf("value = %d, want 0 (rolled back despite eviction)", got)
	}
}

func TestTSPModeWithoutRescueIsUnsound(t *testing.T) {
	// The flip side of the bargain, demonstrating why ModeTSP NEEDS a
	// TSP rescue: with log entries unflushed and the data line evicted,
	// a crash without rescue leaves the new value in place with no undo
	// record — recovery cannot restore the pre-OCS state.
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 64) // spread data away from the log lines
	e.heap.SetRoot(p)
	e.dev.FlushAll()
	th := e.thread(t)
	m := e.rt.NewMutex()

	th.Lock(m)
	th.Store(p.Addr(), 888)   // undo entry written but NOT flushed
	e.dev.FlushWord(p.Addr()) // data line evicted to durable media

	heap, rep := e.reopen(t, 0) // no rescue: the log is gone
	if rep.UndoApplied != 0 {
		t.Fatalf("undo applied = %d, want 0 (log was lost)", rep.UndoApplied)
	}
	if got := heap.Load(heap.Root(), 0); got != 888 {
		t.Fatalf("value = %d; the uncommitted 888 should have survived, demonstrating the hazard", got)
	}
}

func TestModeOffLogsNothing(t *testing.T) {
	e := newEnv(t, ModeOff, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	th := e.thread(t)
	m := e.rt.NewMutex()
	th.Lock(m)
	th.Store(p.Addr(), 42)
	th.Unlock(m)
	if got := e.dev.Stats().Flushes; got != 0 {
		// Directory creation flushes occur at New; re-check via a
		// snapshot-delta instead if this ever gets noisy. For now: the
		// OCS itself must not have flushed anything beyond setup.
		_ = got
	}
	heap, rep := e.reopen(t, 1)
	if rep.EntriesScanned != 0 {
		t.Fatalf("ModeOff scanned %d log entries, want 0", rep.EntriesScanned)
	}
	if got := heap.Load(heap.Root(), 0); got != 42 {
		t.Fatalf("value = %d, want 42", got)
	}
}

func TestRecoverOnNonAtlasHeap(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 12})
	heap, _ := pheap.Format(dev)
	p, _ := heap.Alloc(1)
	heap.SetRoot(p)
	heap.Alloc(1) // a leak for the GC
	rep, err := Recover(heap)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.OCSes != 0 || rep.GC.BlocksFreed != 1 {
		t.Fatalf("unexpected report on plain heap: %s", rep)
	}
}

func TestNewRefusesUnrecoveredDirectory(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	th := e.thread(t)
	m := e.rt.NewMutex()
	th.Lock(m)
	th.Store(p.Addr(), 1)
	// crash mid-OCS
	e.dev.CrashRescue()
	e.dev.Restart()
	heap, err := pheap.Open(e.dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := New(heap, ModeTSP, Options{}); err == nil {
		t.Fatal("New attached to a directory with residual log entries")
	}
	if _, err := Recover(heap); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if _, err := New(heap, ModeTSP, Options{}); err != nil {
		t.Fatalf("New after Recover: %v", err)
	}
}

func TestRingWrapKeepsRecoverySound(t *testing.T) {
	// A tiny 16-entry ring wraps dozens of times over 100 OCSes (3
	// entries each). The overwritten history belongs to committed OCSes;
	// recovery must ignore the partially overwritten tail group and
	// still roll back only the genuinely incomplete OCS.
	for _, mode := range []Mode{ModeTSP, ModeNonTSP} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t, mode, Options{LogEntries: 16})
			p := e.alloc(t, 1)
			e.heap.SetRoot(p)
			th := e.thread(t)
			m := e.rt.NewMutex()
			for i := uint64(1); i <= 100; i++ {
				th.Lock(m)
				th.Store(p.Addr(), i)
				th.Unlock(m)
			}
			th.Lock(m)
			th.Store(p.Addr(), 9999) // in-flight at crash
			heap, rep := e.reopen(t, 1)
			if rep.Incomplete != 1 {
				t.Fatalf("incomplete = %d, want 1 (%s)", rep.Incomplete, rep)
			}
			if rep.IgnoredPartial == 0 {
				t.Fatalf("expected a partially overwritten group to be ignored (%s)", rep)
			}
			if got := heap.Load(heap.Root(), 0); got != 100 {
				t.Fatalf("value = %d, want committed 100", got)
			}
		})
	}
}

func TestOversizedOCSPanics(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{LogEntries: 8})
	p := e.alloc(t, 64)
	e.heap.SetRoot(p)
	th := e.thread(t)
	m := e.rt.NewMutex()
	defer func() {
		if recover() == nil {
			t.Fatal("an OCS lapping its own ring did not panic")
		}
	}()
	th.Lock(m)
	for i := 0; i < 64; i++ {
		th.Store(p.Addr()+nvm.Addr(i), 1)
	}
}

func TestCrashAfterCheckpointRollsBackOnlyNewOCSes(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	th := e.thread(t)
	m := e.rt.NewMutex()
	th.Lock(m)
	th.Store(p.Addr(), 50)
	th.Unlock(m)
	e.rt.Checkpoint()
	th.Lock(m)
	th.Store(p.Addr(), 60)
	// incomplete
	heap, rep := e.reopen(t, 1)
	if rep.OCSes != 1 {
		t.Fatalf("OCSes scanned = %d, want 1 (pre-checkpoint entries are stale)", rep.OCSes)
	}
	if got := heap.Load(heap.Root(), 0); got != 50 {
		t.Fatalf("value = %d, want checkpointed 50", got)
	}
}

func TestExplicitCheckpointMakesDataDurable(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	th := e.thread(t)
	m := e.rt.NewMutex()
	th.Lock(m)
	th.Store(p.Addr(), 7)
	th.Unlock(m)
	e.rt.Checkpoint()
	// Even with NO rescue, checkpointed data must survive.
	heap, _ := e.reopen(t, 0)
	if got := heap.Load(heap.Root(), 0); got != 7 {
		t.Fatalf("value = %d, want 7 (checkpoint flushed everything)", got)
	}
}

func TestNestedMutexesSingleOCS(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 2)
	e.heap.SetRoot(p)
	th := e.thread(t)
	m1, m2 := e.rt.NewMutex(), e.rt.NewMutex()
	th.Lock(m1)
	th.Store(p.Addr(), 1)
	th.Lock(m2)
	th.Store(p.Addr()+1, 2)
	th.Unlock(m2)
	th.Unlock(m1)
	heap, rep := e.reopen(t, 1)
	if rep.OCSes != 1 {
		t.Fatalf("OCSes = %d, want 1 (nesting must not split the OCS)", rep.OCSes)
	}
	if heap.Load(heap.Root(), 0) != 1 || heap.Load(heap.Root(), 1) != 2 {
		t.Fatal("nested OCS stores lost")
	}
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	th := e.thread(t)
	m := e.rt.NewMutex()
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock without Lock did not panic")
		}
	}()
	th.Unlock(m)
}

func TestForeignMutexPanics(t *testing.T) {
	e1 := newEnv(t, ModeTSP, Options{})
	e2 := newEnv(t, ModeTSP, Options{})
	th := e1.thread(t)
	m := e2.rt.NewMutex()
	defer func() {
		if recover() == nil {
			t.Fatal("locking a foreign runtime's mutex did not panic")
		}
	}()
	th.Lock(m)
}

func TestThreadSlotsExhaustAndRelease(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{MaxThreads: 2})
	t1 := e.thread(t)
	e.thread(t)
	if _, err := e.rt.NewThread(); err == nil {
		t.Fatal("third thread on a 2-slot runtime succeeded")
	}
	if err := e.rt.ReleaseThread(t1); err != nil {
		t.Fatalf("ReleaseThread: %v", err)
	}
	if _, err := e.rt.NewThread(); err != nil {
		t.Fatalf("NewThread after release: %v", err)
	}
}

func TestUnprotectedStoreNotLogged(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	th := e.thread(t)
	th.Store(p.Addr(), 9) // outside any OCS: initialization-style store
	_, rep := e.reopen(t, 1)
	if rep.EntriesScanned != 0 {
		t.Fatalf("unprotected store produced %d log entries", rep.EntriesScanned)
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{MaxThreads: -1, LogEntries: 16},
		{MaxThreads: 2, LogEntries: 1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d accepted: %+v", i, o)
		}
	}
	if err := (Options{MaxThreads: 2, LogEntries: 16}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{ModeOff, ModeTSP, ModeNonTSP} {
		if strings.HasPrefix(m.String(), "Mode(") {
			t.Errorf("missing name for mode %d", int(m))
		}
	}
}

func TestConcurrentThreadsManyOCSes(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{MaxThreads: 8})
	const threads, iters = 8, 300
	counters := make([]pheap.Ptr, threads)
	for i := range counters {
		counters[i] = e.alloc(t, 1)
	}
	anchor := e.alloc(t, threads)
	for i, c := range counters {
		e.heap.Store(anchor, i, uint64(c))
	}
	e.heap.SetRoot(anchor)
	shared := e.alloc(t, 1)
	e.heap.Store(anchor, 0, uint64(shared)) // keep shared reachable too
	m := e.rt.NewMutex()

	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th, err := e.rt.NewThread()
			if err != nil {
				t.Errorf("NewThread: %v", err)
				return
			}
			for i := 0; i < iters; i++ {
				th.Lock(m)
				v := th.Load(shared.Addr())
				th.Store(shared.Addr(), v+1)
				th.Unlock(m)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := e.dev.Load(shared.Addr()); got != threads*iters {
		t.Fatalf("shared counter = %d, want %d", got, threads*iters)
	}
	heap, rep := e.reopen(t, 1)
	if rep.Incomplete != 0 {
		t.Fatalf("incomplete = %d after clean finish", rep.Incomplete)
	}
	if got := heap.Device().Load(shared.Addr()); got != threads*iters {
		t.Fatalf("shared counter after recovery = %d, want %d", got, threads*iters)
	}
}

func TestNewRejectsIncompatibleLineSize(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 12, LineWords: 6})
	heap, err := pheap.Format(dev)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	if _, err := New(heap, ModeTSP, Options{}); err == nil {
		t.Fatal("New accepted a line size that tears log records")
	}
}

func TestNewAcceptsLargerLineMultiples(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 14, LineWords: 16})
	heap, _ := pheap.Format(dev)
	rt, err := New(heap, ModeTSP, Options{MaxThreads: 1, LogEntries: 64})
	if err != nil {
		t.Fatalf("New with 16-word lines: %v", err)
	}
	p, _ := heap.Alloc(1)
	heap.SetRoot(p)
	th, _ := rt.NewThread()
	m := rt.NewMutex()
	th.Lock(m)
	th.Store(p.Addr(), 1)
	th.Unlock(m)
	th.Lock(m)
	th.Store(p.Addr(), 2)
	dev.CrashRescue()
	dev.Restart()
	heap2, err := pheap.Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := Recover(heap2); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := heap2.Load(heap2.Root(), 0); got != 1 {
		t.Fatalf("value = %d, want 1", got)
	}
}
