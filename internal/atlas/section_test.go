package atlas

import (
	"errors"
	"testing"

	"tsp/internal/nvm"
	"tsp/internal/telemetry"
)

// TestSectionIsOneOCS: a Section over several mutexes commits exactly
// one outermost critical section, however many locks and stores it
// spans — the amortization the cache server's batch pipeline rides on.
func TestSectionIsOneOCS(t *testing.T) {
	tel := &telemetry.AtlasStats{}
	e := newEnv(t, ModeTSP, Options{Telemetry: tel})
	th := e.thread(t)
	p := e.alloc(t, 8)
	mus := []*Mutex{e.rt.NewMutex(), e.rt.NewMutex(), e.rt.NewMutex()}

	err := th.Section(mus, func() error {
		for w := 0; w < 8; w++ {
			th.Store(p.Addr()+uint64ToAddr(w), uint64(w)*7)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Section: %v", err)
	}
	if got := tel.OCSCommits.Load(); got != 1 {
		t.Fatalf("OCS commits = %d, want 1 (one section, one OCS)", got)
	}
	if th.InOCS() {
		t.Fatal("thread still inside an OCS after Section returned")
	}
	for w := 0; w < 8; w++ {
		if got := th.Load(p.Addr() + uint64ToAddr(w)); got != uint64(w)*7 {
			t.Fatalf("word %d = %d, want %d", w, got, uint64(w)*7)
		}
	}
}

// TestSectionNested: a Section entered while a mutex is already held
// stays inside the enclosing OCS (no extra commit) — the nesting
// behavior mutex-based Atlas code relies on.
func TestSectionNested(t *testing.T) {
	tel := &telemetry.AtlasStats{}
	e := newEnv(t, ModeTSP, Options{Telemetry: tel})
	th := e.thread(t)
	outer := e.rt.NewMutex()
	inner := []*Mutex{e.rt.NewMutex(), e.rt.NewMutex()}

	th.Lock(outer)
	if err := th.Section(inner, func() error { return nil }); err != nil {
		t.Fatalf("nested Section: %v", err)
	}
	if got := tel.OCSCommits.Load(); got != 0 {
		t.Fatalf("OCS commits = %d inside enclosing OCS, want 0", got)
	}
	if !th.InOCS() {
		t.Fatal("enclosing OCS closed by nested Section")
	}
	th.Unlock(outer)
	if got := tel.OCSCommits.Load(); got != 1 {
		t.Fatalf("OCS commits = %d after outer unlock, want 1", got)
	}
}

// TestSectionErrorStillReleases: fn's error is propagated and every
// mutex is released — an erroring section must not wedge the stripe
// locks it holds.
func TestSectionErrorStillReleases(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	th := e.thread(t)
	mus := []*Mutex{e.rt.NewMutex(), e.rt.NewMutex()}
	sentinel := errors.New("boom")

	if err := th.Section(mus, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Section error = %v, want %v", err, sentinel)
	}
	if th.InOCS() {
		t.Fatal("thread left inside OCS after erroring section")
	}
	// The mutexes are free again: a fresh section over them succeeds.
	if err := th.Section(mus, func() error { return nil }); err != nil {
		t.Fatalf("reusing mutexes after error: %v", err)
	}
}

// TestSectionCrashRollsBackWholeGroup: a crash before the section's
// final release rolls back EVERY store the section made, across all of
// its mutexes — group atomicity, the correctness half of batching many
// operations into one critical section.
func TestSectionCrashRollsBackWholeGroup(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	th := e.thread(t)
	p := e.alloc(t, 4)
	e.heap.SetRoot(p)
	mus := []*Mutex{e.rt.NewMutex(), e.rt.NewMutex()}

	// Committed baseline values.
	if err := th.Section(mus, func() error {
		for w := 0; w < 4; w++ {
			th.Store(p.Addr()+uint64ToAddr(w), 100+uint64(w))
		}
		return nil
	}); err != nil {
		t.Fatalf("baseline Section: %v", err)
	}

	// Open a new section by hand (Section cannot pause mid-flight), dirty
	// every word, and crash before the final release.
	for _, m := range mus {
		th.Lock(m)
	}
	for w := 0; w < 4; w++ {
		th.Store(p.Addr()+uint64ToAddr(w), 999)
	}
	th.Unlock(mus[1]) // inner release: the OCS is still open

	heap, rep := e.reopen(t, 1)
	if rep.Incomplete == 0 {
		t.Fatalf("recovery saw no incomplete OCS: %+v", rep)
	}
	for w := 0; w < 4; w++ {
		if got := heap.Device().Load(heap.Root().Addr() + uint64ToAddr(w)); got != 100+uint64(w) {
			t.Fatalf("word %d = %d after rollback, want %d (whole group rolled back)", w, got, 100+uint64(w))
		}
	}
}

// uint64ToAddr converts a word offset for address arithmetic in tests.
func uint64ToAddr(w int) nvm.Addr { return nvm.Addr(w) }
