package atlas

import (
	"fmt"
	"sort"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// Recovery. After a crash, the persistent heap may contain the effects
// of outermost critical sections that were still running (no durable
// final release) and — through happens-before edges — of completed
// OCSes that observed their data. Recover restores the heap to a
// consistent cut:
//
//  1. scan every slot of every thread's log ring for valid current-epoch
//     records (checksums reject torn or never-written slots; the epoch
//     rejects records truncated by a previous checkpoint or recovery);
//  2. group records by (thread, OCS ordinal). A group holding its
//     opening acquire (the acquire that took the thread's held count
//     from 0 to 1, flagged at append time) is fully captured: it is
//     complete iff its acquires and releases balance. A group WITHOUT
//     its opening acquire is the partially overwritten tail of an old,
//     long-committed OCS — the ring overwrote its head precisely because
//     the thread kept logging afterwards — and is ignored;
//  3. cascade: if a rolled-back OCS released mutex M, every OCS that
//     acquired M after that release may have observed its writes and is
//     rolled back too (the Section 2.3 situation of the Atlas papers),
//     transitively;
//  4. apply the undo records of all rolled-back OCSes in descending
//     global-sequence order — each record restores the value a location
//     held just before its first store in that OCS, so the replay is
//     self-sufficient even when the data stores themselves never became
//     durable;
//  5. make the restored state durable, truncate the logs by bumping the
//     epoch, and run the heap's conservative collector to reclaim blocks
//     leaked by the crash.
//
// Soundness of ignoring partial groups rests on the ring-capacity
// assumption the runtime enforces at append time: an OCS never outlives
// one full lap of its own ring, so any group whose head was overwritten
// must have finished long before the crash (its thread appended a whole
// ring of records afterwards), and its durability is guaranteed by the
// mode's commit discipline (commit flush in non-TSP mode; the rescue in
// TSP mode).
//
// Recover must run before atlas.New on a reopened heap and with no
// mutators running, which recovery time guarantees by construction.

// Report summarizes a recovery pass.
type Report struct {
	EntriesScanned int // valid log records found
	OCSes          int // fully captured OCS groups
	IgnoredPartial int // partially overwritten old groups skipped
	Incomplete     int // OCSes lacking a durable final release
	Cascaded       int // completed OCSes rolled back via happens-before
	UndoApplied    int // undo records replayed
	GC             pheap.GCReport
}

// String renders the report for logs.
func (r Report) String() string {
	return fmt.Sprintf("atlas recovery{entries=%d ocses=%d partial=%d incomplete=%d cascaded=%d undone=%d, gc: freed %d blocks}",
		r.EntriesScanned, r.OCSes, r.IgnoredPartial, r.Incomplete, r.Cascaded, r.UndoApplied, r.GC.BlocksFreed)
}

// ocsKey identifies a reconstructed OCS: the thread and the ordinal of
// its group among that thread's recovered history (derived during the
// depth walk; ordinals are not stored in records).
type ocsKey struct{ thread, ocs uint64 }

// ocsGroup collects one OCS's records.
type ocsGroup struct {
	entries  []entry // in append (sequence) order
	complete bool    // final release observed (depth returned to 0)
}

// lockEvent is an acquire or release of a mutex by an OCS.
type lockEvent struct {
	seq     uint64
	acquire bool
	owner   ocsKey
}

// Recover scans the Atlas log rings on heap and rolls back every OCS cut
// short by (or transitively dependent on one cut short by) the crash.
// It is a no-op returning a zero Report if the heap carries no Atlas
// directory — e.g. for programs using only non-blocking structures,
// where Section 4.1 promises recovery needs no mechanism at all.
func Recover(heap *pheap.Heap) (Report, error) {
	var rep Report
	dirPtr := heap.Aux(AuxLogDir)
	if dirPtr.IsNil() {
		// Not Atlas-fortified; nothing to roll back. Still collect
		// leaked blocks so the two case studies get the same GC service.
		gc, err := heap.GC()
		if err != nil {
			return rep, err
		}
		rep.GC = gc
		return rep, nil
	}
	dir := logDir{heap: heap, p: dirPtr}
	if dir.magic() != dirMagic {
		return rep, fmt.Errorf("atlas: log directory corrupt (bad magic)")
	}
	dev := heap.Device()
	epoch := dir.epoch()

	// 1: scan every ring slot per thread; sort valid records by sequence
	// number, which recovers exact append order (per-thread sequence
	// numbers are strictly increasing, and the ring holds a contiguous
	// suffix of the thread's history).
	//
	// 2: regroup by the acquire/release depth walk. Records before the
	// first OCS-opening acquire are the partially overwritten tail of an
	// old, long-committed OCS and are skipped; after that, an opening
	// acquire starts a group and the release that balances its depth
	// completes it.
	groups := map[ocsKey]*ocsGroup{}
	for tid := 0; tid < dir.maxThreads(); tid++ {
		buf := dir.buf(tid)
		if buf.IsNil() {
			continue
		}
		base := alignedLogBase(buf)
		var recs []entry
		for slot := 0; slot < dir.entries(); slot++ {
			e, ok := readEntry(dev, base+nvm.Addr(slot*entryWords), uint64(tid), epoch)
			if !ok {
				continue // empty, torn, or stale slot
			}
			recs = append(recs, e)
		}
		rep.EntriesScanned += len(recs)
		sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })

		var cur *ocsGroup
		depth := 0
		ordinal := uint64(0)
		sawPartial := false
		for _, e := range recs {
			if cur == nil && !(e.kind == entryAcquire && e.opening) {
				sawPartial = true // overwritten head of an old OCS
				continue
			}
			if e.kind == entryAcquire && e.opening {
				if cur != nil {
					// A new OCS opening while the previous never closed
					// means the previous one's tail records were lost
					// (possible only in the unsound TSP-without-rescue
					// scenario); it stays incomplete.
					depth = 0
				}
				ordinal++
				cur = &ocsGroup{}
				groups[ocsKey{uint64(tid), ordinal}] = cur
			}
			cur.entries = append(cur.entries, e)
			switch e.kind {
			case entryAcquire:
				depth++
			case entryRelease:
				depth--
				if depth <= 0 {
					cur.complete = true
					cur = nil
					depth = 0
				}
			}
		}
		if sawPartial {
			rep.IgnoredPartial++
		}
	}

	// Seed the rollback set and build the per-mutex event lists for
	// cascade analysis.
	events := map[uint64][]lockEvent{} // mutex id -> events
	rollback := map[ocsKey]bool{}
	for k, g := range groups {
		rep.OCSes++
		if !g.complete {
			rollback[k] = true
			rep.Incomplete++
		}
		for _, e := range g.entries {
			if e.kind == entryAcquire || e.kind == entryRelease {
				events[e.a] = append(events[e.a], lockEvent{
					seq:     e.seq,
					acquire: e.kind == entryAcquire,
					owner:   k,
				})
			}
		}
	}

	// 3: close the rollback set under the released-then-acquired
	// relation.
	for id := range events {
		sort.Slice(events[id], func(i, j int) bool { return events[id][i].seq < events[id][j].seq })
	}
	for changed := true; changed; {
		changed = false
		for _, evs := range events {
			tainted := false
			for _, ev := range evs {
				if !ev.acquire && rollback[ev.owner] {
					tainted = true
					continue
				}
				if ev.acquire && tainted && !rollback[ev.owner] {
					rollback[ev.owner] = true
					rep.Cascaded++
					changed = true
				}
			}
		}
	}

	// 4: replay undo records of the rollback set in descending global
	// sequence order.
	var undo []entry
	for k := range rollback {
		if g := groups[k]; g != nil {
			for _, e := range g.entries {
				if e.kind == entryStore {
					undo = append(undo, e)
				}
			}
		}
	}
	sort.Slice(undo, func(i, j int) bool { return undo[i].seq > undo[j].seq })
	for _, e := range undo {
		dev.Store(nvm.Addr(e.a), e.v)
	}
	rep.UndoApplied = len(undo)

	// 5: persist the restored state, truncate logs, collect leaks.
	dev.FlushAll()
	dir.setEpoch(epoch + 1)
	gc, err := heap.GC()
	if err != nil {
		return rep, err
	}
	rep.GC = gc
	dev.FlushAll()
	return rep, nil
}
