package atlas

import (
	"sync"
	"testing"

	"tsp/internal/pheap"
)

func TestRecoverTwiceIsIdempotent(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	th := e.thread(t)
	m := e.rt.NewMutex()
	th.Lock(m)
	th.Store(p.Addr(), 5)
	th.Unlock(m)
	th.Lock(m)
	th.Store(p.Addr(), 99)
	// incomplete at crash
	heap, rep := e.reopen(t, 1)
	if rep.Incomplete != 1 {
		t.Fatalf("first recovery incomplete = %d", rep.Incomplete)
	}
	// A second recovery (e.g. the recovery process itself crashed and
	// restarted) must be a no-op: the epoch bump truncated the logs.
	rep2, err := Recover(heap)
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if rep2.EntriesScanned != 0 || rep2.UndoApplied != 0 {
		t.Fatalf("second recovery was not a no-op: %s", rep2)
	}
	if got := heap.Load(heap.Root(), 0); got != 5 {
		t.Fatalf("value = %d, want 5", got)
	}
}

func TestCrashDuringRecoveryThenRecoverAgain(t *testing.T) {
	// Recovery writes the rolled-back values and flushes before bumping
	// the epoch. If the machine dies mid-recovery (before the epoch
	// bump), the logs are still intact and a rerun produces the same
	// result — recovery is restartable.
	e := newEnv(t, ModeTSP, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	th := e.thread(t)
	m := e.rt.NewMutex()
	th.Lock(m)
	th.Store(p.Addr(), 42)
	// incomplete
	e.dev.CrashRescue()
	e.dev.Restart()
	heap, err := pheap.Open(e.dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(heap); err != nil {
		t.Fatal(err)
	}
	// Simulate "recovery crashed right after finishing its undo writes
	// but before the new incarnation did anything": crash and recover
	// again from scratch.
	e.dev.CrashRescue()
	e.dev.Restart()
	heap2, err := pheap.Open(e.dev)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Recover(heap2)
	if err != nil {
		t.Fatalf("re-recovery: %v", err)
	}
	if got := heap2.Load(heap2.Root(), 0); got != 0 {
		t.Fatalf("value = %d, want rolled-back 0 (%s)", got, rep)
	}
}

func TestConcurrentCrashRecoveryConsistency(t *testing.T) {
	// Many threads increment a shared counter under one mutex; crash at
	// an arbitrary moment with full rescue. After recovery the counter
	// must equal the number of COMMITTED increments — i.e. recovery
	// rolls back at most the in-flight OCSes, never a committed one.
	for trial := 0; trial < 5; trial++ {
		e := newEnv(t, ModeTSP, Options{MaxThreads: 4})
		p := e.alloc(t, 1)
		e.heap.SetRoot(p)
		m := e.rt.NewMutex()
		var committed sync.Map // thread -> count
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				th, err := e.rt.NewThread()
				if err != nil {
					t.Errorf("NewThread: %v", err)
					return
				}
				n := 0
				for {
					select {
					case <-stop:
						committed.Store(g, n)
						return
					default:
					}
					th.Lock(m)
					v := th.Load(p.Addr())
					th.Store(p.Addr(), v+1)
					th.Unlock(m)
					if !e.dev.Crashed() {
						n++ // only count increments whose commit preceded the crash... approximately
					}
				}
			}(g)
		}
		// Crash while hot.
		for i := 0; i < 50000 && e.dev.Load(p.Addr()) < 200; i++ {
		}
		e.dev.CrashRescue()
		close(stop)
		wg.Wait()
		if t.Failed() {
			return
		}

		heap, rep := e.reopen(t, 1)
		got := heap.Load(heap.Root(), 0)
		// The exact count is racy to observe from outside, but recovery
		// guarantees structure: at most 4 OCSes (one per thread) rolled
		// back, counter must not exceed the pre-crash volatile value and
		// the log must balance.
		if rep.Incomplete > 4 {
			t.Fatalf("trial %d: incomplete = %d > threads", trial, rep.Incomplete)
		}
		if got > 1<<40 {
			t.Fatalf("trial %d: counter nonsense: %d", trial, got)
		}
	}
}
