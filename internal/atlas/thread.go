package atlas

import (
	"fmt"
	"sync"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// Thread is a per-worker handle carrying the thread-local state real
// Atlas keeps in TLS: the undo-log cursor, the held-mutex count that
// delimits outermost critical sections, and the first-store filter. A
// Thread must be used by a single goroutine at a time.
type Thread struct {
	rt  *Runtime
	id  uint64
	buf nvm.Addr // log buffer base; 0 in ModeOff
	// buf is stored as the pheap payload address; pheap.Ptr(0) marks
	// "no log" (ModeOff runtimes register threads without buffers).

	head       int    // total entries ever appended; slot = head % capacity
	flushedTo  int    // entries [flushedTo, head) await their ordered flush (ModeNonTSP)
	ocsEntries int    // entries appended by the current OCS (ring-span guard)
	held       int    // mutexes currently held; 0->1 opens an OCS, 1->0 closes it
	clock      uint64 // Lamport clock: the thread's last log sequence number

	// First-store-per-OCS filter and the line set for the commit-time
	// data flush in ModeNonTSP. Small OCSes dominate, so a slice scan
	// beats a map until the OCS grows unusually large.
	dirtyAddrs []nvm.Addr
	dirtySet   map[nvm.Addr]struct{} // non-nil once dirtyAddrs overflows

	// deferredFrees holds blocks unlinked inside OCSes, freed only once
	// rollback can no longer resurrect them (see FreeDeferred).
	deferredFrees []deferredFree

	// lineScratch is flushOCSData's reusable dedup buffer.
	lineScratch []uint64
}

// deferredFree is a block awaiting reclamation: it becomes safe to free
// once the owning thread's log head reaches readyAt, at which point the
// unlinking OCS's records have been fully overwritten and recovery can
// never roll the unlink back.
type deferredFree struct {
	p       pheap.Ptr
	readyAt int
}

// dirtySliceMax is the first-store filter's slice-to-map switchover.
const dirtySliceMax = 32

// ID returns the thread's registration slot.
func (t *Thread) ID() uint64 { return t.id }

// InOCS reports whether the thread is inside an outermost critical
// section.
func (t *Thread) InOCS() bool { return t.held > 0 }

// beginOCS enters the OCS gate (held until the OCS closes), which
// serializes OCSes against explicit Checkpoints.
func (t *Thread) beginOCS() {
	t.rt.ocsGate.RLock()
	t.ocsEntries = 0
}

// appendEntry writes one log record into the thread's RING of log slots
// with a fresh global sequence number. The ring deliberately overwrites
// the oldest records — those belong to long-committed OCSes, which
// recovery never needs (see recovery.go for why that is sound, and the
// opening-acquire flag that protects against a partially overwritten
// group). Overwriting in place is what lets the runtime log forever
// without stop-the-world pruning, playing the role of Atlas's
// asynchronous log-pruning helper thread.
//
// Records are NOT flushed here even in ModeNonTSP; they accumulate in
// [flushedTo, head) and flushPending pushes them out in append order at
// the two points correctness requires durability — before a guarded data
// store executes, and at OCS commit. Batching matters: consecutive
// records share cache lines, so one flush often covers several records.
func (t *Thread) appendEntry(kind entryKind, a, v uint64, opening bool) {
	if t.ocsEntries >= t.rt.opts.LogEntries {
		// One OCS has lapped its own ring: its earliest undo records are
		// gone and rollback would corrupt rather than restore. This is a
		// configuration error (LogEntries must exceed the largest OCS).
		panic(fmt.Sprintf("atlas: thread %d: one OCS wrote %d+ log entries, exceeding the %d-entry ring; raise LogEntries",
			t.id, t.ocsEntries, t.rt.opts.LogEntries))
	}
	slot := t.head % t.rt.opts.LogEntries
	base := t.buf + nvm.Addr(slot*entryWords)
	t.clock++
	writeEntry(t.rt.dev, base, entry{
		kind:    kind,
		seq:     t.clock,
		a:       a,
		v:       v,
		opening: opening,
	}, t.id, t.rt.epoch.Load())
	t.head++
	t.ocsEntries++
	t.rt.tel.IncLogAppend()
}

// flushPending makes every appended-but-unflushed record durable, in
// append order, handling ring wrap. Only ModeNonTSP calls it.
func (t *Thread) flushPending() {
	cap := t.rt.opts.LogEntries
	for t.flushedTo < t.head {
		slot := t.flushedTo % cap
		n := t.head - t.flushedTo
		if slot+n > cap {
			n = cap - slot // flush up to the wrap point, then loop
		}
		t.rt.dev.FlushRange(t.buf+nvm.Addr(slot*entryWords), uint64(n*entryWords))
		t.flushedTo += n
		t.rt.tel.IncLogFlush()
	}
}

// Lock acquires m for this thread, opening an OCS if no mutex was held.
func (t *Thread) Lock(m *Mutex) {
	if m.rt != t.rt {
		panic("atlas: mutex belongs to a different runtime")
	}
	if t.held == 0 {
		t.beginOCS()
	}
	m.mu.Lock()
	t.held++
	if t.rt.mode == ModeOff {
		return
	}
	// Lamport-merge with the mutex's last release: sequence numbers need
	// no globally contended counter, only consistency with the
	// happens-before edges recovery analyzes — per-thread program order
	// (the local increment) and release-to-acquire edges (this merge,
	// performed under the mutex itself, so it costs no extra atomics).
	if m.lastSeq > t.clock {
		t.clock = m.lastSeq
	}
	// The opening flag marks the OCS-opening acquire so recovery can
	// tell a fully captured OCS from one whose head was overwritten in
	// the ring.
	t.appendEntry(entryAcquire, m.id, 0, t.held == 1)
}

// Unlock releases m. Releasing the last held mutex closes and commits
// the OCS: in ModeNonTSP the OCS's stored lines are flushed BEFORE the
// final release record is appended (and flushed), so a durable final
// release implies durable data; in ModeTSP the record is just appended —
// the TSP rescue guarantees everything in one go.
func (t *Thread) Unlock(m *Mutex) {
	if t.held <= 0 {
		panic("atlas: Unlock with no mutex held")
	}
	if t.rt.mode != ModeOff {
		if t.held == 1 { // closing the OCS
			if t.rt.mode == ModeNonTSP {
				// Data first, then the release record that commits it:
				// a durable final release implies durable data.
				t.flushOCSData()
				t.appendEntry(entryRelease, m.id, 0, false)
				t.flushPending()
			} else {
				t.appendEntry(entryRelease, m.id, 0, false)
			}
			t.resetDirty()
			t.rt.tel.IncOCSCommit()
		} else {
			t.appendEntry(entryRelease, m.id, 0, false)
		}
	}
	t.held--
	if t.rt.mode != ModeOff {
		m.lastSeq = t.clock // publish, still under the mutex
	}
	m.mu.Unlock()
	if t.held == 0 {
		t.rt.ocsGate.RUnlock()
		if len(t.deferredFrees) > 0 {
			t.runDeferredFrees()
		}
	}
}

// Section acquires every mutex in mus in slice order, runs fn, and
// releases in reverse order. Called with no mutex held, the whole body
// is ONE outermost critical section: every store fn makes — across any
// number of data-structure operations and stripe locks — commits or
// rolls back as a unit at recovery, and the per-OCS costs (begin/end
// records, first-store filtering, the ModeNonTSP commit flush) are paid
// once for the group instead of once per operation. This is the
// paper-side lever behind the cache server's batch pipeline: persistence
// cost per outermost critical section, so many queued operations in one
// Section amortize it.
//
// Callers that run concurrent Sections over overlapping mutex sets must
// order mus consistently (e.g. by stripe index, as txkv and the cache
// server do); Section itself imposes no order. fn's error is returned
// after the locks release; the error does NOT abort the section's
// stores — a caller needing all-or-nothing application must buffer
// writes until it knows fn succeeds (txkv's pattern).
//
// One sizing caveat: the section's undo records all land in the same
// log ring, so the combined footprint of fn must stay under the
// runtime's LogEntries bound (the ring panics if a single OCS laps it).
func (t *Thread) Section(mus []*Mutex, fn func() error) error {
	for _, m := range mus {
		t.Lock(m)
	}
	err := fn()
	for i := len(mus) - 1; i >= 0; i-- {
		t.Unlock(mus[i])
	}
	return err
}

// flushOCSData flushes every cache line dirtied by this OCS's guarded
// stores (deduplicated by line). The line scratch is thread-local so the
// commit path stays allocation-free.
func (t *Thread) flushOCSData() {
	t.lineScratch = t.lineScratch[:0]
	for _, a := range t.dirtyAddrs {
		line := t.rt.dev.LineOf(a)
		dup := false
		for _, l := range t.lineScratch {
			if l == line {
				dup = true
				break
			}
		}
		if !dup {
			t.lineScratch = append(t.lineScratch, line)
			t.rt.dev.FlushWord(a)
		}
	}
}

func (t *Thread) resetDirty() {
	t.dirtyAddrs = t.dirtyAddrs[:0]
	t.dirtySet = nil
}

// seenDirty reports (and records) whether a was already stored to in the
// current OCS — Atlas's first-store filter.
func (t *Thread) seenDirty(a nvm.Addr) bool {
	if t.dirtySet != nil {
		if _, ok := t.dirtySet[a]; ok {
			return true
		}
		t.dirtySet[a] = struct{}{}
		t.dirtyAddrs = append(t.dirtyAddrs, a)
		return false
	}
	for _, x := range t.dirtyAddrs {
		if x == a {
			return true
		}
	}
	t.dirtyAddrs = append(t.dirtyAddrs, a)
	if len(t.dirtyAddrs) > dirtySliceMax {
		t.dirtySet = make(map[nvm.Addr]struct{}, 2*len(t.dirtyAddrs))
		for _, x := range t.dirtyAddrs {
			t.dirtySet[x] = struct{}{}
		}
	}
	return false
}

// Store writes v to heap word address a. Inside an OCS the store is
// guarded: the first store to each location appends an undo record (and
// in ModeNonTSP flushes it) before the mutation. Outside any OCS the
// store is a plain unguarded store — the Atlas model reserves that for
// initialization of data not yet reachable by other threads; stores to
// shared reachable data outside critical sections are data races in the
// source program.
func (t *Thread) Store(a nvm.Addr, v uint64) {
	if t.rt.mode != ModeOff && t.held > 0 {
		// seenDirty must still run under LogEveryStore: it also feeds
		// the commit-time data-flush line set in ModeNonTSP.
		first := !t.seenDirty(a)
		if first || t.rt.opts.LogEveryStore {
			old := t.rt.dev.Load(a)
			t.appendEntry(entryStore, uint64(a), old, false)
			if t.rt.mode == ModeNonTSP {
				// The undo record (and everything logged before it) must
				// be durable before the mutation can possibly be.
				t.flushPending()
			}
		}
	}
	t.rt.dev.Store(a, v)
}

// Load reads heap word address a.
func (t *Thread) Load(a nvm.Addr) uint64 { return t.rt.dev.Load(a) }

// FreeDeferred schedules the block at p for deallocation once no
// possible recovery could resurrect it. Freeing inside a critical
// section directly would be unsound twice over: an incomplete OCS rolled
// back at recovery would undo the unlink stores and leave the structure
// referencing a reused block, and even a COMMITTED unlink can be undone
// later by a cascading rollback. Real Atlas defers deallocation until
// its log no longer references the critical section; the ring-log
// equivalent is precise — once the thread appends a full ring of further
// records, the unlinking OCS's group is partially overwritten and
// recovery ignores it — so that is the reclamation point. An explicit
// Checkpoint (which truncates all logs) releases deferred blocks
// immediately; blocks still deferred at a crash are mere leaks that the
// recovery-time collector reclaims.
//
// Outside any OCS the block is freed immediately: there is no log record
// that could resurrect it.
func (t *Thread) FreeDeferred(p pheap.Ptr) error {
	if t.held == 0 {
		return t.rt.heap.Free(p)
	}
	t.deferredFrees = append(t.deferredFrees, deferredFree{
		p: p,
		// Current OCS records plus a full ring must pass before the
		// group is guaranteed unrecoverable.
		readyAt: t.head + t.rt.opts.LogEntries,
	})
	return nil
}

// runDeferredFrees frees every deferred block whose safety point has
// passed. Entries are appended in readyAt order, so a prefix scan
// suffices.
func (t *Thread) runDeferredFrees() {
	i := 0
	for ; i < len(t.deferredFrees) && t.head >= t.deferredFrees[i].readyAt; i++ {
		// A failed free here means the pointer was corrupted inside the
		// OCS — a bug in the caller, surfaced loudly.
		if err := t.rt.heap.Free(t.deferredFrees[i].p); err != nil {
			panic(fmt.Sprintf("atlas: deferred free of %d: %v", t.deferredFrees[i].p, err))
		}
	}
	if i > 0 {
		t.deferredFrees = append(t.deferredFrees[:0], t.deferredFrees[i:]...)
	}
}

// releaseAllDeferredFrees frees everything regardless of log position;
// called under the checkpoint's write lock, where the epoch bump has
// just invalidated every log record.
func (t *Thread) releaseAllDeferredFrees() {
	for _, df := range t.deferredFrees {
		if err := t.rt.heap.Free(df.p); err != nil {
			panic(fmt.Sprintf("atlas: deferred free of %d: %v", df.p, err))
		}
	}
	t.deferredFrees = t.deferredFrees[:0]
}

// Mutex is a runtime-managed mutual-exclusion lock. Its identity (id)
// appears in acquire/release log records so recovery can reconstruct the
// happens-before edges between OCSes.
type Mutex struct {
	rt *Runtime
	id uint64
	mu sync.Mutex

	// lastSeq is the releasing thread's clock at the most recent unlock,
	// read by the next acquirer while it holds mu (no atomics needed).
	lastSeq uint64
}

// ID returns the mutex's log identity.
func (m *Mutex) ID() uint64 { return m.id }
