package atlas

import (
	"testing"

	"tsp/internal/pheap"
)

// countAllocated returns the number of allocated blocks on the heap.
func countAllocated(t *testing.T, h *pheap.Heap) int {
	t.Helper()
	rep, err := h.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return rep.AllocatedBlocks
}

func TestFreeDeferredOutsideOCSFreesImmediately(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	th := e.thread(t)
	before := countAllocated(t, e.heap)
	p := e.alloc(t, 4)
	if err := th.FreeDeferred(p); err != nil {
		t.Fatalf("FreeDeferred: %v", err)
	}
	if got := countAllocated(t, e.heap); got != before {
		t.Fatalf("allocated = %d, want %d (immediate free outside OCS)", got, before)
	}
}

func TestFreeDeferredWaitsForRingLap(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{LogEntries: 32})
	th := e.thread(t)
	m := e.rt.NewMutex()
	anchor := e.alloc(t, 1)
	e.heap.SetRoot(anchor)
	victim := e.alloc(t, 4)
	before := countAllocated(t, e.heap)

	th.Lock(m)
	th.Store(anchor.Addr(), 1)
	if err := th.FreeDeferred(victim); err != nil {
		t.Fatalf("FreeDeferred: %v", err)
	}
	th.Unlock(m)

	// Immediately after commit the block must still be allocated: a
	// cascading rollback could still resurrect the unlink.
	if got := countAllocated(t, e.heap); got != before {
		t.Fatalf("allocated = %d right after commit, want %d (free must be deferred)", got, before)
	}

	// Push a full ring of records through; the deferred free must then
	// execute at an OCS boundary.
	for i := 0; i < 32; i++ {
		th.Lock(m)
		th.Store(anchor.Addr(), uint64(i))
		th.Unlock(m)
	}
	if got := countAllocated(t, e.heap); got != before-1 {
		t.Fatalf("allocated = %d after a ring lap, want %d (deferred free should have run)", got, before-1)
	}
}

func TestCheckpointReleasesDeferredFrees(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{})
	th := e.thread(t)
	m := e.rt.NewMutex()
	anchor := e.alloc(t, 1)
	e.heap.SetRoot(anchor)
	victim := e.alloc(t, 4)
	before := countAllocated(t, e.heap)

	th.Lock(m)
	th.Store(anchor.Addr(), 1)
	if err := th.FreeDeferred(victim); err != nil {
		t.Fatalf("FreeDeferred: %v", err)
	}
	th.Unlock(m)
	if got := countAllocated(t, e.heap); got != before {
		t.Fatalf("allocated = %d, want %d before checkpoint", got, before)
	}
	e.rt.Checkpoint() // epoch bump invalidates all records: frees run now
	if got := countAllocated(t, e.heap); got != before-1 {
		t.Fatalf("allocated = %d after checkpoint, want %d", got, before-1)
	}
}

func TestRolledBackDeleteDoesNotFree(t *testing.T) {
	// A crash rolls the unlinking OCS back; the block must still be
	// allocated (and reachable) in the new incarnation.
	e := newEnv(t, ModeTSP, Options{})
	th := e.thread(t)
	m := e.rt.NewMutex()
	anchor := e.alloc(t, 1)
	victim := e.alloc(t, 2)
	e.heap.Store(anchor, 0, uint64(victim)) // anchor -> victim
	e.heap.SetRoot(anchor)
	e.dev.FlushAll()

	th.Lock(m)
	th.Store(anchor.Addr(), 0) // unlink
	if err := th.FreeDeferred(victim); err != nil {
		t.Fatalf("FreeDeferred: %v", err)
	}
	// Crash mid-OCS: the unlink rolls back; the deferred free never ran.
	heap, rep := e.reopen(t, 1)
	if rep.Incomplete != 1 {
		t.Fatalf("incomplete = %d, want 1", rep.Incomplete)
	}
	if got := pheap.Ptr(heap.Load(heap.Root(), 0)); got != victim {
		t.Fatalf("anchor points to %d after rollback, want resurrected %d", got, victim)
	}
	chk, err := heap.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if chk.AllocatedBlocks < 2 {
		t.Fatalf("victim block was freed despite rollback: %s", chk)
	}
}

func TestCheckpointResetsFlushCursor(t *testing.T) {
	// Regression guard: Checkpoint resets the log head; the non-TSP
	// flush cursor must reset with it or post-checkpoint records would
	// never be flushed.
	e := newEnv(t, ModeNonTSP, Options{})
	p := e.alloc(t, 1)
	e.heap.SetRoot(p)
	e.dev.FlushAll()
	th := e.thread(t)
	m := e.rt.NewMutex()
	th.Lock(m)
	th.Store(p.Addr(), 1)
	th.Unlock(m)
	e.rt.Checkpoint()
	th.Lock(m)
	th.Store(p.Addr(), 2)
	th.Unlock(m) // committed: must survive even with NO rescue
	heap, _ := e.reopen(t, 0)
	if got := heap.Load(heap.Root(), 0); got != 2 {
		t.Fatalf("value = %d, want 2 (post-checkpoint commit lost: flush cursor bug)", got)
	}
}
