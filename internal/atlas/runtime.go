// Package atlas reimplements the runtime half of the Atlas system
// (Chakrabarti, Boehm & Bhandari, OOPSLA 2014) that the paper's Section
// 4.2 builds on: it imbues conventional mutex-based multithreaded code
// with crash resilience by undo-logging the first store to each
// persistent-heap location within every outermost critical section (OCS)
// and rolling incomplete OCSes back at recovery, including the cascading
// rollbacks forced by happens-before edges between OCSes.
//
// Where real Atlas uses compiler instrumentation to intercept stores and
// lock operations, this package exposes the equivalent calls directly:
// programs route mutations through Thread.Store and use atlas.Mutex for
// locking. The runtime has three modes mirroring the paper's Table 1
// columns:
//
//   - ModeOff:    no logging at all ("no Atlas");
//   - ModeTSP:    undo logging only — sufficient when a Timely Sufficient
//     Persistence rescue guarantees every issued store survives the crash
//     ("log only");
//   - ModeNonTSP: undo logging plus synchronous flushing — each log entry
//     is flushed before its guarded store executes, and an OCS's stored
//     lines are flushed before its end marker commits ("log + flush").
package atlas

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/telemetry"
)

// Mode selects the fortification level.
type Mode int

const (
	// ModeOff disables logging: stores go straight to the heap. Crash
	// consistency is NOT guaranteed; this is the paper's unfortified
	// baseline.
	ModeOff Mode = iota
	// ModeTSP logs undo records but never flushes synchronously,
	// relying on a crash-time rescue (Atlas "TSP mode", log only).
	ModeTSP
	// ModeNonTSP logs undo records and flushes each entry before the
	// guarded store, plus the OCS's data lines at commit (Atlas without
	// TSP, log + flush).
	ModeNonTSP
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeTSP:
		return "tsp (log only)"
	case ModeNonTSP:
		return "non-tsp (log+flush)"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a Runtime.
type Options struct {
	// MaxThreads bounds how many Threads may be registered. Default 16.
	MaxThreads int

	// LogEntries is each thread's log RING capacity in entries. The ring
	// overwrites its oldest records (which belong to long-committed
	// OCSes and are never needed by recovery), so the only sizing
	// constraint is that no single OCS may append more than LogEntries
	// records — the runtime panics if one does. Default 4096.
	LogEntries int

	// LogEveryStore disables Atlas's first-store-per-OCS filter: every
	// guarded store appends an undo record instead of only the first
	// store to each location. Recovery stays correct (reverse-order
	// replay makes later duplicates harmless), so this exists purely as
	// the ablation knob for quantifying what the filter buys — one of
	// the design choices DESIGN.md calls out.
	LogEveryStore bool

	// Telemetry, when non-nil, receives the runtime's log-traffic and
	// commit counters (typically a stack registry's Atlas section). Nil
	// disables counting at the cost of one branch per event.
	Telemetry *telemetry.AtlasStats
}

func (o *Options) fillDefaults() {
	if o.MaxThreads == 0 {
		o.MaxThreads = 16
	}
	if o.LogEntries == 0 {
		o.LogEntries = 4096
	}
}

// Validate rejects inconsistent options.
func (o Options) Validate() error {
	if o.MaxThreads < 1 {
		return errors.New("atlas: MaxThreads must be at least 1")
	}
	if o.LogEntries < 2 {
		return errors.New("atlas: LogEntries must be at least 2")
	}
	return nil
}

// Runtime is the Atlas runtime bound to one persistent heap.
type Runtime struct {
	heap *pheap.Heap
	dev  *nvm.Device
	mode Mode
	opts Options
	tel  *telemetry.AtlasStats // nil-safe; from Options.Telemetry

	dir   logDir
	epoch atomic.Uint64 // cached copy of the directory epoch
	mtxID atomic.Uint64 // mutex id allocator

	// ocsGate serializes checkpoints against running OCSes: every OCS
	// holds a read lock for its duration; Checkpoint takes the write
	// lock, so it runs only at global quiescence.
	ocsGate sync.RWMutex

	mu         sync.Mutex // guards thread registration
	threads    []*Thread
	slotReused map[int]bool // slots whose rings hold a released thread's records

	checkpoints atomic.Uint64 // number of checkpoints taken
}

// New creates a Runtime on the heap, allocating (or re-attaching to) the
// persistent log directory anchored at Aux slot AuxLogDir. Call Recover
// before New when reopening a heap after a crash — New refuses to attach
// to a directory that still holds log entries from a previous
// incarnation.
func New(heap *pheap.Heap, mode Mode, opts Options) (*Runtime, error) {
	opts.fillDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if mode != ModeOff && mode != ModeTSP && mode != ModeNonTSP {
		return nil, fmt.Errorf("atlas: unknown mode %d", int(mode))
	}
	if lw := heap.Device().Config().LineWords; lw%entryWords != 0 {
		// Entries are entryWords-aligned; a line size that is not a
		// multiple would let records straddle lines, breaking both the
		// single-flush-per-record cost model and StoreBlock's contract.
		return nil, fmt.Errorf("atlas: device line size %d words is not a multiple of the %d-word log record", lw, entryWords)
	}
	rt := &Runtime{heap: heap, dev: heap.Device(), mode: mode, opts: opts, tel: opts.Telemetry}

	dirPtr := heap.Aux(AuxLogDir)
	if dirPtr.IsNil() {
		p, err := heap.Alloc(dirWords(opts.MaxThreads))
		if err != nil {
			return nil, fmt.Errorf("atlas: allocating log directory: %w", err)
		}
		heap.Store(p, dirMagicWord, dirMagic)
		heap.Store(p, dirEpochWord, 1)
		heap.Store(p, dirThreadsWord, uint64(opts.MaxThreads))
		heap.Store(p, dirEntriesWord, uint64(opts.LogEntries))
		heap.SetAux(AuxLogDir, p)
		rt.dev.FlushRange(p.Addr(), uint64(dirWords(opts.MaxThreads)))
		rt.dev.FlushRange(0, pheap.HeapStart()) // the aux slot lives in the header
		dirPtr = p
	}
	rt.dir = logDir{heap: heap, p: dirPtr}
	if rt.dir.magic() != dirMagic {
		return nil, errors.New("atlas: log directory corrupt (bad magic)")
	}
	if got := rt.dir.maxThreads(); got != opts.MaxThreads {
		return nil, fmt.Errorf("atlas: directory built for %d threads, options say %d", got, opts.MaxThreads)
	}
	if got := rt.dir.entries(); got != opts.LogEntries {
		return nil, fmt.Errorf("atlas: directory built for %d log entries, options say %d", got, opts.LogEntries)
	}
	if n := countResidualEntries(heap, rt.dir); n > 0 {
		return nil, fmt.Errorf("atlas: directory holds %d un-recovered log entries; run Recover first", n)
	}
	rt.epoch.Store(rt.dir.epoch())
	rt.threads = make([]*Thread, opts.MaxThreads)
	return rt, nil
}

// countResidualEntries counts valid current-epoch entries left anywhere
// in the log rings — nonzero means the previous incarnation crashed and
// Recover has not been run.
func countResidualEntries(heap *pheap.Heap, dir logDir) int {
	dev := heap.Device()
	epoch := dir.epoch()
	total := 0
	for i := 0; i < dir.maxThreads(); i++ {
		buf := dir.buf(i)
		if buf.IsNil() {
			continue
		}
		base := alignedLogBase(buf)
		for slot := 0; slot < dir.entries(); slot++ {
			if _, ok := readEntry(dev, base+nvm.Addr(slot*entryWords), uint64(i), epoch); ok {
				total++
			}
		}
	}
	return total
}

// Mode returns the runtime's fortification mode.
func (rt *Runtime) Mode() Mode { return rt.mode }

// Heap returns the underlying persistent heap.
func (rt *Runtime) Heap() *pheap.Heap { return rt.heap }

// Checkpoints returns how many log-truncating checkpoints have run.
func (rt *Runtime) Checkpoints() uint64 { return rt.checkpoints.Load() }

// NewMutex creates a mutex managed by this runtime. Mutexes are volatile
// Go objects; only their ids appear in the persistent log, which is all
// recovery needs.
func (rt *Runtime) NewMutex() *Mutex {
	return &Mutex{rt: rt, id: rt.mtxID.Add(1)}
}

// NewThread registers a worker thread and returns its handle. Each OS/Go
// thread of the simulated program must use its own Thread; handles are
// not safe for concurrent use (they model thread-local runtime state).
func (rt *Runtime) NewThread() (*Thread, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	reused := rt.slotReused
	for i, t := range rt.threads {
		if t == nil {
			buf := rt.dir.buf(i)
			if buf.IsNil() && rt.mode != ModeOff {
				// One entry of slack lets the base be rounded up to an
				// entry (= line) boundary; see alignedLogBase.
				p, err := rt.heap.Alloc((rt.opts.LogEntries + 1) * entryWords)
				if err != nil {
					return nil, fmt.Errorf("atlas: allocating log for thread %d: %w", i, err)
				}
				rt.dir.setBuf(i, p)
				buf = p
			}
			var base nvm.Addr
			if !buf.IsNil() {
				base = alignedLogBase(buf)
			}
			if reused[i] && !buf.IsNil() {
				// The slot's previous occupant left current-epoch records
				// in the ring; the new thread's sequence numbers restart,
				// so recovery could confuse stale records with fresh
				// ones. Scrub the ring (and make the scrub durable, so a
				// no-rescue crash cannot resurrect the stale records).
				for w := 0; w < rt.opts.LogEntries*entryWords; w++ {
					rt.dev.Store(base+nvm.Addr(w), 0)
				}
				rt.dev.FlushRange(base, uint64(rt.opts.LogEntries*entryWords))
			}
			t := &Thread{rt: rt, id: uint64(i), buf: base}
			rt.threads[i] = t
			return t, nil
		}
	}
	return nil, fmt.Errorf("atlas: all %d thread slots in use", rt.opts.MaxThreads)
}

// ReleaseThread unregisters a thread handle, making its slot (and log
// buffer) reusable by a future NewThread. The thread must not be inside
// an OCS.
func (rt *Runtime) ReleaseThread(t *Thread) error {
	if t.held != 0 {
		return errors.New("atlas: thread released while holding mutexes")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.threads[t.id] != t {
		return errors.New("atlas: thread not registered with this runtime")
	}
	rt.threads[t.id] = nil
	if rt.slotReused == nil {
		rt.slotReused = make(map[int]bool)
	}
	rt.slotReused[int(t.id)] = true
	return nil
}

// Checkpoint quiesces the program (waits for every in-flight OCS to
// finish and blocks new ones), makes the entire heap durable, and
// truncates all logs by bumping the epoch. The ring-structured logs make
// routine checkpoints unnecessary (old records simply get overwritten),
// but applications may still want one explicitly — before planned
// downtime, or to bound recovery work on hardware whose rescue is slow.
func (rt *Runtime) Checkpoint() {
	rt.ocsGate.Lock()
	defer rt.ocsGate.Unlock()
	rt.checkpointLocked()
}

func (rt *Runtime) checkpointLocked() {
	// All data durable first, then the epoch bump invalidates the logs.
	// If we crash mid-checkpoint the old epoch's logs are still intact
	// and recovery replays them — harmless, since the data they'd roll
	// back is already durable and consistent (no OCS is running).
	rt.dev.FlushAll()
	newEpoch := rt.epoch.Load() + 1
	rt.dir.setEpoch(newEpoch)
	rt.epoch.Store(newEpoch)
	rt.mu.Lock()
	for _, t := range rt.threads {
		if t != nil {
			t.head = 0
			t.flushedTo = 0
			t.releaseAllDeferredFrees()
		}
	}
	rt.mu.Unlock()
	rt.checkpoints.Add(1)
	rt.tel.IncCheckpoint()
}
