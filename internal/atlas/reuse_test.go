package atlas

import "testing"

// TestThreadSlotReuseScrubsRing is the regression test for a subtle
// soundness hazard: releasing a thread and registering a new one reuses
// the log ring, but the newcomer's sequence numbers restart, so stale
// current-epoch records from the previous occupant must not survive
// where recovery could mistake them for fresh history.
func TestThreadSlotReuseScrubsRing(t *testing.T) {
	e := newEnv(t, ModeTSP, Options{MaxThreads: 1, LogEntries: 64})
	p := e.alloc(t, 2)
	e.heap.SetRoot(p)
	m := e.rt.NewMutex()

	// First occupant writes some history and leaves.
	t1 := e.thread(t)
	for i := uint64(1); i <= 5; i++ {
		t1.Lock(m)
		t1.Store(p.Addr(), i)
		t1.Unlock(m)
	}
	if err := e.rt.ReleaseThread(t1); err != nil {
		t.Fatalf("ReleaseThread: %v", err)
	}

	// Second occupant reuses the slot, commits one OCS, then crashes
	// mid-OCS on its second.
	t2 := e.thread(t)
	t2.Lock(m)
	t2.Store(p.Addr(), 100)
	t2.Unlock(m)
	t2.Lock(m)
	t2.Store(p.Addr(), 999) // in-flight at crash

	heap, rep := e.reopen(t, 1)
	// Recovery must see ONLY the second occupant's records: stale
	// entries would inflate the counts or, worse, roll back with stale
	// undo values.
	if rep.OCSes != 2 {
		t.Fatalf("OCSes = %d, want 2 (stale records leaked into recovery: %s)", rep.OCSes, rep)
	}
	if got := heap.Load(heap.Root(), 0); got != 100 {
		t.Fatalf("value = %d, want 100", got)
	}
}

// TestThreadSlotReuseNoRescue covers the same hazard under a no-rescue
// crash in non-TSP mode: the scrub itself must be durable, otherwise the
// persisted image still holds the old occupant's records.
func TestThreadSlotReuseNoRescue(t *testing.T) {
	e := newEnv(t, ModeNonTSP, Options{MaxThreads: 1, LogEntries: 64})
	p := e.alloc(t, 2)
	e.heap.SetRoot(p)
	e.dev.FlushAll()
	m := e.rt.NewMutex()

	t1 := e.thread(t)
	for i := uint64(1); i <= 5; i++ {
		t1.Lock(m)
		t1.Store(p.Addr(), i)
		t1.Unlock(m)
	}
	if err := e.rt.ReleaseThread(t1); err != nil {
		t.Fatalf("ReleaseThread: %v", err)
	}

	t2 := e.thread(t)
	t2.Lock(m)
	t2.Store(p.Addr(), 100)
	t2.Unlock(m)
	t2.Lock(m)
	t2.Store(p.Addr(), 999) // in-flight

	heap, rep := e.reopen(t, 0) // NO rescue: only flushed state survives
	if rep.OCSes != 2 {
		t.Fatalf("OCSes = %d, want 2 (%s)", rep.OCSes, rep)
	}
	if got := heap.Load(heap.Root(), 0); got != 100 {
		t.Fatalf("value = %d, want 100", got)
	}
}
