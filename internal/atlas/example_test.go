package atlas_test

import (
	"fmt"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// The Section 4.2 flow end to end: a critical section interrupted by a
// crash is rolled back at recovery, so the recovery observer only ever
// sees committed states.
func Example() {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
	heap, _ := pheap.Format(dev)
	rt, _ := atlas.New(heap, atlas.ModeTSP, atlas.Options{MaxThreads: 1})
	account, _ := heap.Alloc(1)
	heap.SetRoot(account)

	th, _ := rt.NewThread()
	m := rt.NewMutex()

	// A committed update.
	th.Lock(m)
	th.Store(account.Addr(), 100)
	th.Unlock(m)

	// An update the crash interrupts mid-critical-section.
	th.Lock(m)
	th.Store(account.Addr(), 999)
	dev.CrashRescue() // TSP rescue: stores AND undo log survive

	// New incarnation.
	dev.Restart()
	heap2, _ := pheap.Open(dev)
	rep, _ := atlas.Recover(heap2)
	fmt.Println("rolled back:", rep.Incomplete)
	fmt.Println("balance:", heap2.Load(heap2.Root(), 0))
	// Output:
	// rolled back: 1
	// balance: 100
}
