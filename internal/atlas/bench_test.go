package atlas

import (
	"testing"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// benchRuntime builds a single-thread runtime in the given mode.
func benchRuntime(b *testing.B, mode Mode) (*nvm.Device, *Thread, *Mutex, pheap.Ptr) {
	b.Helper()
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 20})
	heap, err := pheap.Format(dev)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := New(heap, mode, Options{MaxThreads: 1})
	if err != nil {
		b.Fatal(err)
	}
	region, err := heap.Alloc(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	heap.SetRoot(region)
	th, err := rt.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	return dev, th, rt.NewMutex(), region
}

// BenchmarkOCS measures one outermost critical section with a single
// guarded store — the common case of the paper's workload — across the
// three modes. The off/tsp/nontsp deltas ARE the paper's logging and
// flushing overheads at the runtime's own granularity.
func BenchmarkOCS(b *testing.B) {
	for _, mode := range []Mode{ModeOff, ModeTSP, ModeNonTSP} {
		b.Run(mode.String(), func(b *testing.B) {
			_, th, m, region := benchRuntime(b, mode)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Lock(m)
				th.Store(region.Addr()+nvm.Addr(i&0xfff), uint64(i))
				th.Unlock(m)
			}
		})
	}
}

// BenchmarkStoreInOCS isolates the per-store cost inside one long OCS
// (lock overhead amortized away).
func BenchmarkStoreInOCS(b *testing.B) {
	for _, mode := range []Mode{ModeOff, ModeTSP, ModeNonTSP} {
		b.Run(mode.String(), func(b *testing.B) {
			dev := nvm.NewDevice(nvm.Config{Words: 1 << 22})
			heap, _ := pheap.Format(dev)
			rt, err := New(heap, mode, Options{MaxThreads: 1, LogEntries: 1 << 21 / entryWords})
			if err != nil {
				b.Fatal(err)
			}
			region, err := heap.Alloc(1 << 16)
			if err != nil {
				b.Fatal(err)
			}
			heap.SetRoot(region)
			th, _ := rt.NewThread()
			m := rt.NewMutex()
			th.Lock(m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Store(region.Addr()+nvm.Addr(i&0xffff), uint64(i))
			}
			b.StopTimer()
			th.Unlock(m)
		})
	}
}

// BenchmarkFirstStoreFilter measures repeated stores to ONE location in
// an OCS: after the first, the filter should make them as cheap as raw
// stores.
func BenchmarkFirstStoreFilter(b *testing.B) {
	_, th, m, region := benchRuntime(b, ModeTSP)
	th.Lock(m)
	defer th.Unlock(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Store(region.Addr(), uint64(i))
	}
}

// BenchmarkRecoveryScan measures a full recovery over a populated log.
func BenchmarkRecoveryScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := nvm.NewDevice(nvm.Config{Words: 1 << 20})
		heap, _ := pheap.Format(dev)
		rt, _ := New(heap, ModeTSP, Options{MaxThreads: 1, LogEntries: 4096})
		region, _ := heap.Alloc(256)
		heap.SetRoot(region)
		th, _ := rt.NewThread()
		m := rt.NewMutex()
		for j := 0; j < 1000; j++ {
			th.Lock(m)
			th.Store(region.Addr()+nvm.Addr(j&0xff), uint64(j))
			th.Unlock(m)
		}
		th.Lock(m)
		th.Store(region.Addr(), 999) // one incomplete OCS
		dev.CrashRescue()
		dev.Restart()
		heap2, _ := pheap.Open(dev)
		b.StartTimer()
		if _, err := Recover(heap2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint measures an explicit quiesce+flush+truncate.
func BenchmarkCheckpoint(b *testing.B) {
	_, th, m, region := benchRuntime(b, ModeTSP)
	rt := th.rt
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 100; j++ {
			th.Lock(m)
			th.Store(region.Addr()+nvm.Addr(j), uint64(j))
			th.Unlock(m)
		}
		b.StartTimer()
		rt.Checkpoint()
	}
}
