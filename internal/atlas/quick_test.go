package atlas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// Model-based crash testing: execute a random single-threaded sequence
// of OCSes against both the Atlas runtime and a plain in-memory model
// that applies an OCS's stores only when it completes. Crash at a random
// primitive step, recover, and require the heap to equal the model
// exactly — completed OCSes durable, the in-flight one rolled back.
//
// This one property subsumes a large family of hand-written recovery
// tests: every prefix of every generated schedule is a distinct crash
// scenario.

const modelWords = 8

// crashScript interprets ops as a schedule of OCSes over an 8-word
// region. Returns the committed model and whether the crash fired
// mid-schedule.
type scriptResult struct {
	model   [modelWords]uint64
	crashed bool
}

// runCrashScript drives the runtime under the given mode, crashing after
// `crashStep` primitive stores, with the given rescue fraction at crash
// time. It returns the device (crashed & restarted) and the model state.
func runCrashScript(t *testing.T, mode Mode, ops []uint16, crashStep int, rescue float64) (*nvm.Device, scriptResult) {
	t.Helper()
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
	heap, err := pheap.Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(heap, mode, Options{MaxThreads: 1, LogEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	region, err := heap.Alloc(modelWords)
	if err != nil {
		t.Fatal(err)
	}
	heap.SetRoot(region)
	dev.FlushAll()
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutex()

	var res scriptResult
	var pending [modelWords]uint64 // the in-flight OCS's view
	step := 0
	rng := rand.New(rand.NewSource(int64(len(ops))))

	for i := 0; i < len(ops); i += 3 {
		// One OCS per chunk of up to 3 ops.
		th.Lock(m)
		pending = res.model
		nStores := int(ops[i]%3) + 1
		committed := true
		for s := 0; s < nStores; s++ {
			var op uint16
			if i+s < len(ops) {
				op = ops[i+s]
			}
			addr := int(op % modelWords)
			val := uint64(op)*2654435761 + uint64(rng.Intn(1000))
			th.Store(region.Addr()+nvm.Addr(addr), val)
			pending[addr] = val
			step++
			if step >= crashStep {
				// Crash mid-OCS (or exactly at its last store, which is
				// still before the commit record).
				dev.StopEvictor()
				dev.Crash(nvm.CrashOptions{RescueFraction: rescue, Seed: 11})
				res.crashed = true
				committed = false
				break
			}
		}
		if !committed {
			break
		}
		th.Unlock(m)
		res.model = pending // OCS committed; the model applies it
	}
	if !res.crashed {
		// Schedule ended without reaching the crash step: crash between
		// OCSes (everything committed).
		dev.Crash(nvm.CrashOptions{RescueFraction: rescue, Seed: 11})
		res.crashed = true
	}
	dev.Restart()
	return dev, res
}

func checkAgainstModel(t *testing.T, dev *nvm.Device, want [modelWords]uint64) (ok bool) {
	t.Helper()
	heap, err := pheap.Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := Recover(heap); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	region := heap.Root()
	for w := 0; w < modelWords; w++ {
		if got := heap.Load(region, w); got != want[w] {
			return false
		}
	}
	return true
}

func TestQuickCrashRecoveryMatchesModelTSP(t *testing.T) {
	f := func(ops []uint16, crashAt uint8) bool {
		if len(ops) == 0 {
			return true
		}
		crashStep := int(crashAt)%(len(ops)+1) + 1
		dev, res := runCrashScript(t, ModeTSP, ops, crashStep, 1) // full rescue
		return checkAgainstModel(t, dev, res.model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCrashRecoveryMatchesModelNonTSPNoRescue(t *testing.T) {
	f := func(ops []uint16, crashAt uint8) bool {
		if len(ops) == 0 {
			return true
		}
		crashStep := int(crashAt)%(len(ops)+1) + 1
		dev, res := runCrashScript(t, ModeNonTSP, ops, crashStep, 0) // NO rescue
		return checkAgainstModel(t, dev, res.model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCrashRecoveryMatchesModelNonTSPPartialRescue(t *testing.T) {
	// Non-TSP mode must tolerate ANY rescue fraction: its durability
	// discipline never depends on the rescue.
	f := func(ops []uint16, crashAt uint8, frac uint8) bool {
		if len(ops) == 0 {
			return true
		}
		crashStep := int(crashAt)%(len(ops)+1) + 1
		rescue := float64(frac%101) / 100
		dev, res := runCrashScript(t, ModeNonTSP, ops, crashStep, rescue)
		return checkAgainstModel(t, dev, res.model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLogEveryStoreRecoversIdentically(t *testing.T) {
	// The first-store filter is a pure optimization: with it disabled
	// (an undo record per store), recovery must restore the same state.
	f := func(ops []uint16, crashAt uint8) bool {
		if len(ops) == 0 {
			return true
		}
		crashStep := int(crashAt)%(len(ops)+1) + 1
		dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
		heap, _ := pheap.Format(dev)
		rt, err := New(heap, ModeTSP, Options{MaxThreads: 1, LogEntries: 1024, LogEveryStore: true})
		if err != nil {
			return false
		}
		region, _ := heap.Alloc(modelWords)
		heap.SetRoot(region)
		dev.FlushAll()
		th, _ := rt.NewThread()
		m := rt.NewMutex()

		var model, pending [modelWords]uint64
		step := 0
		crashed := false
		for i := 0; i < len(ops) && !crashed; i += 3 {
			th.Lock(m)
			pending = model
			for s := 0; s < int(ops[i]%3)+1; s++ {
				var op uint16
				if i+s < len(ops) {
					op = ops[i+s]
				}
				addr := int(op % modelWords)
				// Store the SAME address twice to exercise duplicate
				// undo records.
				th.Store(region.Addr()+nvm.Addr(addr), uint64(op))
				th.Store(region.Addr()+nvm.Addr(addr), uint64(op)+1)
				pending[addr] = uint64(op) + 1
				step++
				if step >= crashStep {
					dev.CrashRescue()
					crashed = true
					break
				}
			}
			if crashed {
				break
			}
			th.Unlock(m)
			model = pending
		}
		if !crashed {
			dev.CrashRescue()
		}
		dev.Restart()
		return checkAgainstModel(t, dev, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickChecksumRejectsTampering: flipping any single stored word of
// a valid record must invalidate it.
func TestQuickChecksumRejectsTampering(t *testing.T) {
	f := func(seq, a, v uint64, kindBits, word, bit uint8) bool {
		e := entry{
			kind:    entryKind(kindBits%3) + entryStore,
			seq:     seq % (1 << 40),
			a:       a,
			v:       v,
			opening: kindBits%2 == 0,
		}
		dev := nvm.NewDevice(nvm.Config{Words: 64})
		writeEntry(dev, 0, e, 3, 7)
		if _, ok := readEntry(dev, 0, 3, 7); !ok {
			return false // must validate untampered
		}
		// Tamper with one bit of one word.
		w := nvm.Addr(word % entryWords)
		dev.Store(w, dev.Load(w)^(1<<(bit%64)))
		_, ok := readEntry(dev, 0, 3, 7)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEntryRejectedInWrongRingOrEpoch: a record read with the wrong
// thread id or epoch must not validate.
func TestQuickEntryRejectedInWrongRingOrEpoch(t *testing.T) {
	f := func(seq, a, v uint64, thread, epoch uint8) bool {
		e := entry{kind: entryStore, seq: seq % (1 << 40), a: a, v: v}
		dev := nvm.NewDevice(nvm.Config{Words: 64})
		writeEntry(dev, 0, e, uint64(thread), uint64(epoch))
		if _, ok := readEntry(dev, 0, uint64(thread), uint64(epoch)); !ok {
			return false
		}
		if _, ok := readEntry(dev, 0, uint64(thread)+1, uint64(epoch)); ok {
			return false
		}
		if _, ok := readEntry(dev, 0, uint64(thread), uint64(epoch)+1); ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
