// Package pheap implements a persistent heap on top of a simulated NVM
// device, following the programming model of the paper's case studies:
// durable data lives in a heap obtained through a malloc-like interface,
// "pointers" are stable word offsets into the heap (so a new process
// incarnation resolves them unchanged — the moral equivalent of mapping
// the backing file at a fixed virtual address), and all live data must be
// reachable from a heap-wide root manipulated via SetRoot/Root.
//
// Durability discipline. Only two kinds of state exist:
//
//   - persistent state: the heap header (magic, root, auxiliary roots,
//     bump pointer) and the per-block headers (size + allocated bit),
//     all stored in NVM words; and
//   - volatile state: the free lists, kept purely in Go memory and
//     rebuilt by Open after every crash by scanning the block chain.
//
// Keeping the free lists volatile makes the allocator trivially
// crash-consistent under a TSP rescue: the block chain is always walkable
// (each mutation is a single word store), and any block that was
// allocated but not yet linked into an application structure when the
// crash hit is simply unreachable from the root — the conservative
// mark-sweep collector in gc.go reclaims it, exactly the role of the
// recovery-time garbage collector the paper describes Atlas acquiring.
package pheap

import (
	"errors"
	"fmt"
	"sync"

	"tsp/internal/nvm"
	"tsp/internal/telemetry"
)

// Ptr is a persistent pointer: the word address of a block's payload.
// The zero Ptr is the nil pointer; the heap layout guarantees no payload
// ever starts at word 0.
type Ptr uint64

// Nil is the null persistent pointer.
const Nil Ptr = 0

// Addr converts the pointer to a raw device word address.
func (p Ptr) Addr() nvm.Addr { return nvm.Addr(p) }

// IsNil reports whether p is the null pointer.
func (p Ptr) IsNil() bool { return p == Nil }

// Header layout (word offsets from 0).
const (
	hdrMagic    = 0 // magic number identifying a formatted heap
	hdrVersion  = 1 // layout version
	hdrWords    = 2 // heap size in words at format time
	hdrRoot     = 3 // the heap-wide root pointer
	hdrBump     = 4 // first never-allocated word
	hdrAuxBase  = 5 // first of NumAux auxiliary root slots
	NumAux      = 8 // auxiliary roots (e.g. the Atlas log directory)
	hdrReserved = hdrAuxBase + NumAux
	heapStart   = 16 // first allocatable word; must be >= hdrReserved
)

// Magic and Version identify the on-device format.
const (
	Magic   = 0x5453_5048_4541_5001 // "TSPHEAP", v1 tag
	Version = 1
)

// Block header encoding: word = sizeWords<<1 | allocBit. sizeWords counts
// the header word itself plus the payload.
const (
	allocBit    = 1
	minBlock    = 2 // header + at least one payload word
	maxSizeBits = 40
)

// Size classes for the segregated free lists: total block sizes (header
// included) in words. Requests larger than the last class are allocated
// exactly and freed onto a separate large list.
var sizeClasses = []int{2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256, 512, 1024, 2048, 4096}

// Errors returned by the heap.
var (
	ErrOutOfMemory  = errors.New("pheap: out of memory")
	ErrNotFormatted = errors.New("pheap: device does not contain a formatted heap")
	ErrCorrupt      = errors.New("pheap: heap structure is corrupt")
	ErrBadPointer   = errors.New("pheap: invalid pointer")
	ErrDoubleFree   = errors.New("pheap: double free")
)

// Heap is a persistent heap bound to a device. All methods are safe for
// concurrent use; the allocator itself is protected by a single mutex,
// while payload accesses go straight to the device's atomic words.
type Heap struct {
	dev *nvm.Device

	mu    sync.Mutex
	free  [][]Ptr // free block payloads per size class
	large []Ptr   // free blocks bigger than the last class

	pins map[Ptr]struct{} // volatile GC roots registered this incarnation

	tel *telemetry.HeapStats // nil-safe; set via SetTelemetry
}

// Format initializes a fresh heap on the device, destroying any previous
// contents, and flushes the header so even an immediate crash-without-
// rescue leaves a well-formed (empty) heap.
func Format(dev *nvm.Device) (*Heap, error) {
	if dev.Words() < heapStart+minBlock {
		return nil, fmt.Errorf("pheap: device too small (%d words)", dev.Words())
	}
	dev.Store(hdrMagic, Magic)
	dev.Store(hdrVersion, Version)
	dev.Store(hdrWords, dev.Words())
	dev.Store(hdrRoot, 0)
	dev.Store(hdrBump, heapStart)
	for i := 0; i < NumAux; i++ {
		dev.Store(nvm.Addr(hdrAuxBase+i), 0)
	}
	dev.FlushRange(0, heapStart)
	return newHeap(dev), nil
}

// Open attaches to an existing heap, validating the header and rebuilding
// the volatile free lists by walking the block chain. It is the first
// step of every recovery.
func Open(dev *nvm.Device) (*Heap, error) {
	if dev.Words() < heapStart+minBlock {
		return nil, ErrNotFormatted
	}
	if dev.Load(hdrMagic) != Magic {
		return nil, ErrNotFormatted
	}
	if v := dev.Load(hdrVersion); v != Version {
		return nil, fmt.Errorf("pheap: unsupported version %d", v)
	}
	if w := dev.Load(hdrWords); w != dev.Words() {
		return nil, fmt.Errorf("%w: header says %d words, device has %d", ErrCorrupt, w, dev.Words())
	}
	h := newHeap(dev)
	if err := h.rebuildFreeLists(); err != nil {
		return nil, err
	}
	return h, nil
}

func newHeap(dev *nvm.Device) *Heap {
	return &Heap{
		dev:  dev,
		free: make([][]Ptr, len(sizeClasses)),
		pins: make(map[Ptr]struct{}),
	}
}

// Device returns the underlying device.
func (h *Heap) Device() *nvm.Device { return h.dev }

// rebuildFreeLists walks the block chain from heapStart to the bump
// pointer, repairing a torn bump pointer if the chain ends early (a
// crash-without-rescue can persist a block header without the bump
// update, or vice versa; both resolve to "trust the chain").
func (h *Heap) rebuildFreeLists() error {
	bump := Ptr(h.dev.Load(hdrBump))
	if uint64(bump) < heapStart || uint64(bump) > h.dev.Words() {
		return fmt.Errorf("%w: bump pointer %d out of range", ErrCorrupt, bump)
	}
	addr := Ptr(heapStart)
	for addr < bump {
		hdr := h.dev.Load(addr.Addr())
		size := hdr >> 1
		if size == 0 {
			// Torn allocation: the bump pointer advanced but the block
			// header never became durable. Everything from here on was
			// never handed out in this incarnation's view; pull the bump
			// pointer back.
			h.dev.Store(hdrBump, uint64(addr))
			h.dev.FlushWord(hdrBump)
			bump = addr
			break
		}
		if size < minBlock || size > 1<<maxSizeBits || uint64(addr)+size > uint64(bump) {
			return fmt.Errorf("%w: block at %d has size %d", ErrCorrupt, addr, size)
		}
		if hdr&allocBit == 0 {
			h.pushFree(addr+1, int(size))
		}
		addr += Ptr(size)
	}
	return nil
}

// classFor returns the smallest size-class index whose blocks hold total
// words, or -1 if total exceeds the largest class.
func classFor(total int) int {
	for i, c := range sizeClasses {
		if total <= c {
			return i
		}
	}
	return -1
}

// pushFree adds the block with the given payload pointer and total size
// to the appropriate volatile free list.
func (h *Heap) pushFree(payload Ptr, total int) {
	if c := classForExact(total); c >= 0 {
		h.free[c] = append(h.free[c], payload)
	} else {
		h.large = append(h.large, payload)
	}
}

// classForExact returns the class whose size equals total, or -1. Blocks
// are always carved at exact class sizes (or large), so lookup by exact
// size is sufficient and keeps freed blocks reusable at their class.
func classForExact(total int) int {
	for i, c := range sizeClasses {
		if total == c {
			return i
		}
	}
	return -1
}

// Alloc allocates a block with room for at least words payload words,
// zeroes the payload, and returns its persistent pointer. The payload is
// guaranteed zeroed even if the block is recycled.
func (h *Heap) Alloc(words int) (Ptr, error) {
	if words <= 0 {
		return Nil, fmt.Errorf("pheap: Alloc(%d): size must be positive", words)
	}
	need := words + 1 // block header
	h.mu.Lock()
	p, total, err := h.allocLocked(need)
	h.mu.Unlock()
	if err != nil {
		return Nil, err
	}
	// Zero the payload outside the allocator lock; the block is not yet
	// published to any other thread.
	for i := 0; i < total-1; i++ {
		h.dev.Store(p.Addr()+nvm.Addr(i), 0)
	}
	h.tel.IncAlloc()
	return p, nil
}

// SetTelemetry points the heap's counters at a registry section (nil
// turns counting off). Call before the heap is shared.
func (h *Heap) SetTelemetry(tel *telemetry.HeapStats) { h.tel = tel }

func (h *Heap) allocLocked(need int) (Ptr, int, error) {
	// Try the segregated lists first.
	if c := classFor(need); c >= 0 {
		for ; c < len(sizeClasses); c++ {
			if n := len(h.free[c]); n > 0 {
				p := h.free[c][n-1]
				h.free[c] = h.free[c][:n-1]
				h.markAllocated(p)
				return p, h.blockSize(p), nil
			}
		}
	} else {
		// Large request: first-fit over the large list.
		for i, p := range h.large {
			if h.blockSize(p) >= need {
				h.large = append(h.large[:i], h.large[i+1:]...)
				h.markAllocated(p)
				return p, h.blockSize(p), nil
			}
		}
	}
	// Carve a fresh block from the bump region at the class size (or the
	// exact size for large requests).
	total := need
	if c := classFor(need); c >= 0 {
		total = sizeClasses[c]
	}
	bump := h.dev.Load(hdrBump)
	if bump+uint64(total) > h.dev.Words() {
		return Nil, 0, ErrOutOfMemory
	}
	blockAddr := nvm.Addr(bump)
	// Order matters for crash robustness: write the header first, then
	// advance the bump pointer. rebuildFreeLists tolerates either store
	// being lost.
	h.dev.Store(blockAddr, uint64(total)<<1|allocBit)
	h.dev.Store(hdrBump, bump+uint64(total))
	return Ptr(blockAddr) + 1, total, nil
}

// markAllocated sets the allocated bit on a block being popped from a
// free list.
func (h *Heap) markAllocated(payload Ptr) {
	hdr := payload.Addr() - 1
	h.dev.Store(hdr, h.dev.Load(hdr)|allocBit)
}

// blockSize returns the total size (header included) of the block whose
// payload starts at p.
func (h *Heap) blockSize(payload Ptr) int {
	return int(h.dev.Load(payload.Addr()-1) >> 1)
}

// SizeOf returns the payload capacity, in words, of the block at p.
func (h *Heap) SizeOf(p Ptr) (int, error) {
	if err := h.validate(p); err != nil {
		return 0, err
	}
	return h.blockSize(p) - 1, nil
}

// Free returns the block at p to the allocator. Freeing Nil is a no-op,
// matching free(NULL).
func (h *Heap) Free(p Ptr) error {
	if p.IsNil() {
		return nil
	}
	if err := h.validate(p); err != nil {
		return err
	}
	hdrAddr := p.Addr() - 1
	hdr := h.dev.Load(hdrAddr)
	if hdr&allocBit == 0 {
		return fmt.Errorf("%w: block at %d", ErrDoubleFree, p)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dev.Store(hdrAddr, hdr&^uint64(allocBit))
	h.pushFree(p, int(hdr>>1))
	delete(h.pins, p)
	h.tel.IncFree()
	return nil
}

// validate checks that p plausibly points at the payload of a block
// inside the heap. It cannot prove p is a live allocation (that is the
// collector's job) but rejects out-of-range and misheaded pointers.
func (h *Heap) validate(p Ptr) error {
	if p.IsNil() || uint64(p) <= heapStart || uint64(p) >= h.dev.Words() {
		return fmt.Errorf("%w: %d", ErrBadPointer, p)
	}
	size := h.dev.Load(p.Addr()-1) >> 1
	if size < minBlock || uint64(p)-1+size > h.dev.Words() {
		return fmt.Errorf("%w: %d (header size %d)", ErrBadPointer, p, size)
	}
	return nil
}

// Root returns the heap-wide root pointer.
func (h *Heap) Root() Ptr { return Ptr(h.dev.Load(hdrRoot)) }

// SetRoot atomically publishes p as the heap-wide root. The single word
// store is the commit point for whatever structure p leads to.
func (h *Heap) SetRoot(p Ptr) { h.dev.Store(hdrRoot, uint64(p)) }

// Aux returns auxiliary root slot i. Auxiliary roots let subsystems such
// as the Atlas runtime anchor their persistent metadata (log buffers)
// where both recovery and the collector can find them.
func (h *Heap) Aux(i int) Ptr {
	if i < 0 || i >= NumAux {
		panic(fmt.Sprintf("pheap: aux index %d out of range", i))
	}
	return Ptr(h.dev.Load(nvm.Addr(hdrAuxBase + i)))
}

// SetAux sets auxiliary root slot i.
func (h *Heap) SetAux(i int, p Ptr) {
	if i < 0 || i >= NumAux {
		panic(fmt.Sprintf("pheap: aux index %d out of range", i))
	}
	h.dev.Store(nvm.Addr(hdrAuxBase+i), uint64(p))
}

// Pin registers p as an additional GC root for this incarnation (volatile;
// pins do not survive a crash — persistent anchors belong in Aux slots).
func (h *Heap) Pin(p Ptr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pins[p] = struct{}{}
}

// Unpin removes a pin added with Pin.
func (h *Heap) Unpin(p Ptr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.pins, p)
}

// Load reads payload word off of the block at p.
func (h *Heap) Load(p Ptr, off int) uint64 { return h.dev.Load(p.Addr() + nvm.Addr(off)) }

// Store writes payload word off of the block at p.
func (h *Heap) Store(p Ptr, off int, v uint64) { h.dev.Store(p.Addr()+nvm.Addr(off), v) }

// CAS compare-and-swaps payload word off of the block at p.
func (h *Heap) CAS(p Ptr, off int, old, new uint64) bool {
	return h.dev.CAS(p.Addr()+nvm.Addr(off), old, new)
}

// Add atomically adds delta to payload word off of the block at p and
// returns the new value.
func (h *Heap) Add(p Ptr, off int, delta uint64) uint64 {
	return h.dev.Add(p.Addr()+nvm.Addr(off), delta)
}

// HeapStart returns the first allocatable word; exported for tests and
// for the conservative collector's pointer heuristics.
func HeapStart() uint64 { return heapStart }

// Bump returns the current bump pointer (first never-allocated word).
func (h *Heap) Bump() uint64 { return h.dev.Load(hdrBump) }
