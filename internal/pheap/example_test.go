package pheap_test

import (
	"fmt"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// The canonical persistent-heap lifecycle: format, allocate, publish via
// the root, crash with a TSP rescue, reopen and read back.
func Example() {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 12})
	heap, _ := pheap.Format(dev)

	node, _ := heap.Alloc(2)
	heap.Store(node, 0, 42)
	heap.Store(node, 1, 43)
	heap.SetRoot(node) // single-word commit point

	dev.CrashRescue() // TSP: every store survives
	dev.Restart()

	heap2, _ := pheap.Open(dev)
	p := heap2.Root()
	fmt.Println(heap2.Load(p, 0), heap2.Load(p, 1))
	// Output: 42 43
}

// The recovery-time collector reclaims blocks a crash stranded between
// allocation and linking.
func ExampleHeap_GC() {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 12})
	heap, _ := pheap.Format(dev)

	kept, _ := heap.Alloc(1)
	heap.SetRoot(kept)
	heap.Alloc(1) // never linked anywhere: leaked by the "crash"

	rep, _ := heap.GC()
	fmt.Println(rep.BlocksMarked, rep.BlocksFreed)
	// Output: 1 1
}
