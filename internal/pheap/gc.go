package pheap

import "tsp/internal/nvm"

// This file implements the recovery-time garbage collector. The paper
// notes that crashes can cause Atlas-fortified software to leak memory
// (a block is allocated but the crash lands before it is linked into a
// reachable structure, or after it is unlinked but before it is freed)
// and that Atlas added a recovery-time collector to reclaim such leaks.
// The same situation arises for the non-blocking case study: a crash
// between pheap.Alloc and the linking CAS strands the node.
//
// The collector is conservative, in the tradition of Boehm-style
// collectors that Atlas's own collector descends from: any payload word
// whose value equals the payload address of an allocated block is treated
// as a pointer to it. False retention is possible (an integer that
// happens to collide with a block address) but harmless; false
// reclamation is impossible.

// GCReport summarizes a collection.
type GCReport struct {
	BlocksScanned  int // allocated blocks examined
	BlocksMarked   int // blocks reachable from the roots
	BlocksFreed    int // leaked blocks reclaimed
	WordsReclaimed int // total words (headers included) reclaimed
}

// GC runs a conservative stop-the-world mark-sweep from the heap root,
// the auxiliary roots, and any volatile pins. The caller must ensure no
// mutator is running — the collector is designed for recovery time, where
// that holds by construction.
func (h *Heap) GC() (GCReport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()

	blocks, err := h.collectBlocks()
	if err != nil {
		return GCReport{}, err
	}
	var rep GCReport
	rep.BlocksScanned = len(blocks)

	// Mark phase: breadth-first from all roots.
	marked := make(map[Ptr]bool, len(blocks))
	var queue []Ptr
	push := func(p Ptr) {
		if _, ok := blocks[p]; ok && !marked[p] {
			marked[p] = true
			queue = append(queue, p)
		}
	}
	push(h.Root())
	for i := 0; i < NumAux; i++ {
		push(h.Aux(i))
	}
	for p := range h.pins {
		push(p)
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		payloadWords := blocks[p] - 1
		for off := 0; off < payloadWords; off++ {
			v := h.dev.Load(p.Addr() + nvm.Addr(off))
			push(Ptr(v &^ markTagMask)) // strip pointer-tag bits (see below)
		}
	}
	rep.BlocksMarked = len(marked)

	// Sweep phase: free every allocated block the mark phase missed.
	for p, total := range blocks {
		if marked[p] {
			continue
		}
		hdrAddr := p.Addr() - 1
		h.dev.Store(hdrAddr, uint64(total)<<1) // clear alloc bit
		h.pushFree(p, total)
		rep.BlocksFreed++
		rep.WordsReclaimed += total
	}
	h.tel.AddGC(uint64(rep.BlocksFreed))
	return rep, nil
}

// markTagMask strips low/high tag bits before the conservative pointer
// test. Non-blocking structures store "marked" pointers whose
// most-significant bit flags logical deletion (see internal/skiplist);
// the collector must still see through the tag, otherwise nodes reachable
// only via marked references would be swept while a traversal could still
// reach them.
const markTagMask uint64 = 1 << 63

// collectBlocks walks the block chain and returns allocated payload
// pointers mapped to their total block sizes.
func (h *Heap) collectBlocks() (map[Ptr]int, error) {
	blocks := make(map[Ptr]int)
	bump := h.dev.Load(hdrBump)
	addr := uint64(heapStart)
	for addr < bump {
		hdr := h.dev.Load(nvm.Addr(addr))
		size := hdr >> 1
		if size < minBlock || addr+size > bump {
			return nil, ErrCorrupt
		}
		if hdr&allocBit != 0 {
			blocks[Ptr(addr)+1] = int(size)
		}
		addr += size
	}
	return blocks, nil
}
