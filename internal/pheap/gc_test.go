package pheap

import (
	"testing"

	"tsp/internal/nvm"
)

// buildList allocates a singly-linked list of n nodes (payload: [next,
// value]) and returns the head. Node word 0 is the next pointer.
func buildList(t *testing.T, h *Heap, n int) Ptr {
	t.Helper()
	var head Ptr
	for i := 0; i < n; i++ {
		p, err := h.Alloc(2)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		h.Store(p, 0, uint64(head))
		h.Store(p, 1, uint64(i))
		head = p
	}
	return head
}

func TestGCKeepsReachable(t *testing.T) {
	h := newHeapT(t, 1<<14)
	head := buildList(t, h, 10)
	h.SetRoot(head)
	rep, err := h.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if rep.BlocksFreed != 0 {
		t.Fatalf("GC freed %d reachable blocks", rep.BlocksFreed)
	}
	if rep.BlocksMarked != 10 {
		t.Fatalf("GC marked %d blocks, want 10", rep.BlocksMarked)
	}
	// The list must still be intact.
	count := 0
	for p := head; !p.IsNil(); p = Ptr(h.Load(p, 0)) {
		count++
	}
	if count != 10 {
		t.Fatalf("list has %d nodes after GC, want 10", count)
	}
}

func TestGCReclaimsUnreachable(t *testing.T) {
	h := newHeapT(t, 1<<14)
	head := buildList(t, h, 5)
	h.SetRoot(head)
	// Leak three blocks: allocated, never linked anywhere.
	for i := 0; i < 3; i++ {
		if _, err := h.Alloc(4); err != nil {
			t.Fatalf("Alloc: %v", err)
		}
	}
	rep, err := h.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if rep.BlocksFreed != 3 {
		t.Fatalf("GC freed %d blocks, want 3", rep.BlocksFreed)
	}
}

func TestGCNilRootReclaimsEverything(t *testing.T) {
	h := newHeapT(t, 1<<14)
	buildList(t, h, 8) // head discarded, root stays nil
	rep, err := h.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if rep.BlocksFreed != 8 {
		t.Fatalf("GC freed %d blocks, want 8", rep.BlocksFreed)
	}
	crep, err := h.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if crep.AllocatedBlocks != 0 {
		t.Fatalf("%d blocks still allocated after full sweep", crep.AllocatedBlocks)
	}
}

func TestGCFollowsAuxRoots(t *testing.T) {
	h := newHeapT(t, 1<<14)
	p, _ := h.Alloc(2)
	h.SetAux(0, p)
	rep, err := h.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if rep.BlocksFreed != 0 {
		t.Fatal("GC collected a block anchored by an aux root")
	}
}

func TestGCRespectsPins(t *testing.T) {
	h := newHeapT(t, 1<<14)
	p, _ := h.Alloc(2)
	h.Pin(p)
	rep, _ := h.GC()
	if rep.BlocksFreed != 0 {
		t.Fatal("GC collected a pinned block")
	}
	h.Unpin(p)
	rep, _ = h.GC()
	if rep.BlocksFreed != 1 {
		t.Fatal("GC kept an unpinned, unreachable block")
	}
}

func TestGCSeesThroughMarkedPointers(t *testing.T) {
	// Non-blocking structures tag pointers with the MSB to flag logical
	// deletion; the collector must treat a tagged reference as reachable.
	h := newHeapT(t, 1<<14)
	target, _ := h.Alloc(2)
	holder, _ := h.Alloc(1)
	h.Store(holder, 0, uint64(target)|1<<63)
	h.SetRoot(holder)
	rep, err := h.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if rep.BlocksFreed != 0 {
		t.Fatal("GC collected a block referenced via a marked pointer")
	}
}

func TestGCTransitiveChains(t *testing.T) {
	h := newHeapT(t, 1<<16)
	head := buildList(t, h, 200)
	h.SetRoot(head)
	// Leak a disconnected chain of the same length.
	buildListNoRoot(t, h, 200)
	rep, err := h.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if rep.BlocksMarked != 200 || rep.BlocksFreed != 200 {
		t.Fatalf("marked %d freed %d, want 200/200", rep.BlocksMarked, rep.BlocksFreed)
	}
}

func buildListNoRoot(t *testing.T, h *Heap, n int) {
	t.Helper()
	var head Ptr
	for i := 0; i < n; i++ {
		p, err := h.Alloc(2)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		h.Store(p, 0, uint64(head))
		head = p
	}
}

func TestGCConservativeFalseRetentionIsSafe(t *testing.T) {
	// A payload integer that happens to equal another block's payload
	// address must retain that block (false retention, by design).
	h := newHeapT(t, 1<<14)
	victim, _ := h.Alloc(2)
	holder, _ := h.Alloc(1)
	h.Store(holder, 0, uint64(victim)) // an "integer" colliding with a pointer
	h.SetRoot(holder)
	rep, _ := h.GC()
	if rep.BlocksFreed != 0 {
		t.Fatal("conservative GC freed a possibly-referenced block")
	}
}

func TestGCAfterCrashReclaimsAllocButUnlinked(t *testing.T) {
	// The recovery scenario from the paper: a crash lands after Alloc
	// but before the new node is linked into the structure. Recovery =
	// Open + GC must reclaim it.
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 14})
	h, _ := Format(dev)
	head := buildList(t, h, 4)
	h.SetRoot(head)
	if _, err := h.Alloc(2); err != nil { // the stranded node
		t.Fatalf("Alloc: %v", err)
	}
	dev.CrashRescue()
	dev.Restart()
	h2, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rep, err := h2.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if rep.BlocksFreed != 1 {
		t.Fatalf("recovery GC freed %d blocks, want 1 (the stranded node)", rep.BlocksFreed)
	}
	if rep.BlocksMarked != 4 {
		t.Fatalf("recovery GC marked %d, want 4", rep.BlocksMarked)
	}
}

func TestGCReusesReclaimedSpace(t *testing.T) {
	h := newHeapT(t, 256) // small heap
	// Fill it with garbage, GC, and confirm we can allocate again.
	for {
		if _, err := h.Alloc(4); err != nil {
			break
		}
	}
	if _, err := h.Alloc(4); err == nil {
		t.Fatal("heap should be full")
	}
	if _, err := h.GC(); err != nil {
		t.Fatalf("GC: %v", err)
	}
	if _, err := h.Alloc(4); err != nil {
		t.Fatalf("Alloc after GC of a full garbage heap: %v", err)
	}
}

func TestGCReportWordsReclaimed(t *testing.T) {
	h := newHeapT(t, 1<<14)
	h.Alloc(7) // one garbage block, class-rounded to 8 total
	rep, _ := h.GC()
	if rep.WordsReclaimed < 8 {
		t.Fatalf("WordsReclaimed = %d, want >= 8", rep.WordsReclaimed)
	}
}
