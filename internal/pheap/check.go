package pheap

import (
	"fmt"

	"tsp/internal/nvm"
)

// CheckReport summarizes the structural state of a heap.
type CheckReport struct {
	AllocatedBlocks int
	FreeBlocks      int
	AllocatedWords  int // total words in allocated blocks (headers included)
	FreeWords       int // total words in free blocks
	BumpWords       uint64
	UnusedWords     uint64 // words past the bump pointer
}

// String renders the report for logs.
func (r CheckReport) String() string {
	return fmt.Sprintf("heap{alloc=%d blocks/%d words, free=%d blocks/%d words, bump=%d, unused=%d}",
		r.AllocatedBlocks, r.AllocatedWords, r.FreeBlocks, r.FreeWords, r.BumpWords, r.UnusedWords)
}

// Check walks the entire block chain and validates structural invariants:
// blocks tile [heapStart, bump) exactly, every size is plausible, and the
// bump pointer is in range. It returns a report on success.
func (h *Heap) Check() (CheckReport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var rep CheckReport
	bump := h.dev.Load(hdrBump)
	if bump < heapStart || bump > h.dev.Words() {
		return rep, fmt.Errorf("%w: bump pointer %d out of range", ErrCorrupt, bump)
	}
	rep.BumpWords = bump
	rep.UnusedWords = h.dev.Words() - bump
	addr := uint64(heapStart)
	for addr < bump {
		hdr := h.dev.Load(nvm.Addr(addr))
		size := hdr >> 1
		if size < minBlock || size > 1<<maxSizeBits {
			return rep, fmt.Errorf("%w: block at %d has size %d", ErrCorrupt, addr, size)
		}
		if addr+size > bump {
			return rep, fmt.Errorf("%w: block at %d (size %d) overruns bump %d", ErrCorrupt, addr, size, bump)
		}
		if hdr&allocBit != 0 {
			rep.AllocatedBlocks++
			rep.AllocatedWords += int(size)
		} else {
			rep.FreeBlocks++
			rep.FreeWords += int(size)
		}
		addr += size
	}
	if addr != bump {
		return rep, fmt.Errorf("%w: block chain ends at %d, bump is %d", ErrCorrupt, addr, bump)
	}
	return rep, nil
}

// Blocks iterates over every block in the chain in address order, calling
// fn with the payload pointer, payload capacity in words, and whether the
// block is allocated. Iteration stops early if fn returns false. The
// allocator lock is held for the duration; fn must not allocate or free.
func (h *Heap) Blocks(fn func(p Ptr, payloadWords int, allocated bool) bool) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	bump := h.dev.Load(hdrBump)
	addr := uint64(heapStart)
	for addr < bump {
		hdr := h.dev.Load(nvm.Addr(addr))
		size := hdr >> 1
		if size < minBlock || addr+size > bump {
			return ErrCorrupt
		}
		if !fn(Ptr(addr)+1, int(size)-1, hdr&allocBit != 0) {
			return nil
		}
		addr += size
	}
	return nil
}
