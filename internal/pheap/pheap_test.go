package pheap

import (
	"errors"
	"sync"
	"testing"

	"tsp/internal/nvm"
)

func newHeapT(t *testing.T, words int) *Heap {
	t.Helper()
	h, err := Format(nvm.NewDevice(nvm.Config{Words: words}))
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return h
}

func TestFormatAndOpen(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 12})
	if _, err := Format(dev); err != nil {
		t.Fatalf("Format: %v", err)
	}
	h, err := Open(dev)
	if err != nil {
		t.Fatalf("Open after Format: %v", err)
	}
	if !h.Root().IsNil() {
		t.Fatal("fresh heap has non-nil root")
	}
}

func TestOpenUnformattedFails(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 12})
	if _, err := Open(dev); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("Open on raw device: err = %v, want ErrNotFormatted", err)
	}
}

func TestOpenTooSmallDevice(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 4})
	if _, err := Open(dev); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("err = %v, want ErrNotFormatted", err)
	}
	if _, err := Format(dev); err == nil {
		t.Fatal("Format accepted a 4-word device")
	}
}

func TestAllocReturnsZeroedPayload(t *testing.T) {
	h := newHeapT(t, 1<<12)
	p, err := h.Alloc(8)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	for i := 0; i < 8; i++ {
		if h.Load(p, i) != 0 {
			t.Fatalf("payload word %d not zeroed", i)
		}
	}
}

func TestAllocDistinctBlocks(t *testing.T) {
	h := newHeapT(t, 1<<12)
	seen := map[Ptr]bool{}
	for i := 0; i < 20; i++ {
		p, err := h.Alloc(4)
		if err != nil {
			t.Fatalf("Alloc #%d: %v", i, err)
		}
		if seen[p] {
			t.Fatalf("Alloc returned duplicate pointer %d", p)
		}
		seen[p] = true
	}
}

func TestAllocRejectsNonPositive(t *testing.T) {
	h := newHeapT(t, 1<<12)
	if _, err := h.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := h.Alloc(-3); err == nil {
		t.Fatal("Alloc(-3) succeeded")
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	h := newHeapT(t, 1<<12)
	p, _ := h.Alloc(4)
	h.Store(p, 2, 0xbeef)
	if got := h.Load(p, 2); got != 0xbeef {
		t.Fatalf("Load = %#x, want 0xbeef", got)
	}
}

func TestFreeAndReuse(t *testing.T) {
	h := newHeapT(t, 1<<12)
	p, _ := h.Alloc(4)
	h.Store(p, 0, 42)
	if err := h.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	q, err := h.Alloc(4)
	if err != nil {
		t.Fatalf("Alloc after Free: %v", err)
	}
	if q != p {
		t.Fatalf("freed block not reused: got %d, want %d", q, p)
	}
	if h.Load(q, 0) != 0 {
		t.Fatal("recycled block not re-zeroed")
	}
}

func TestFreeNilIsNoop(t *testing.T) {
	h := newHeapT(t, 1<<12)
	if err := h.Free(Nil); err != nil {
		t.Fatalf("Free(Nil) = %v", err)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	h := newHeapT(t, 1<<12)
	p, _ := h.Alloc(4)
	if err := h.Free(p); err != nil {
		t.Fatalf("first Free: %v", err)
	}
	if err := h.Free(p); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("second Free = %v, want ErrDoubleFree", err)
	}
}

func TestFreeBadPointerRejected(t *testing.T) {
	h := newHeapT(t, 1<<12)
	if err := h.Free(Ptr(3)); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("Free(3) = %v, want ErrBadPointer", err)
	}
	if err := h.Free(Ptr(1 << 20)); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("Free(out of range) = %v, want ErrBadPointer", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	h := newHeapT(t, 64)
	var last error
	for i := 0; i < 100; i++ {
		if _, err := h.Alloc(8); err != nil {
			last = err
			break
		}
	}
	if !errors.Is(last, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", last)
	}
}

func TestSizeOfReflectsClassRounding(t *testing.T) {
	h := newHeapT(t, 1<<12)
	p, _ := h.Alloc(5) // class 6 total -> 5 payload words... class sizes: need 6 -> class 6
	n, err := h.SizeOf(p)
	if err != nil {
		t.Fatalf("SizeOf: %v", err)
	}
	if n < 5 {
		t.Fatalf("SizeOf = %d, want >= 5", n)
	}
}

func TestLargeAllocation(t *testing.T) {
	h := newHeapT(t, 1<<16)
	p, err := h.Alloc(5000) // beyond the largest size class
	if err != nil {
		t.Fatalf("large Alloc: %v", err)
	}
	n, _ := h.SizeOf(p)
	if n < 5000 {
		t.Fatalf("large block payload = %d, want >= 5000", n)
	}
	h.Store(p, 4999, 7)
	if h.Load(p, 4999) != 7 {
		t.Fatal("large block tail not addressable")
	}
	if err := h.Free(p); err != nil {
		t.Fatalf("Free large: %v", err)
	}
	q, err := h.Alloc(4500) // first-fit from the large list
	if err != nil {
		t.Fatalf("Alloc after large free: %v", err)
	}
	if q != p {
		t.Fatalf("large block not reused: got %d want %d", q, p)
	}
}

func TestRootPersistsAcrossOpen(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 12})
	h, _ := Format(dev)
	p, _ := h.Alloc(2)
	h.SetRoot(p)
	dev.CrashRescue()
	dev.Restart()
	h2, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if h2.Root() != p {
		t.Fatalf("root after reopen = %d, want %d", h2.Root(), p)
	}
}

func TestAuxRoots(t *testing.T) {
	h := newHeapT(t, 1<<12)
	p, _ := h.Alloc(2)
	h.SetAux(3, p)
	if h.Aux(3) != p {
		t.Fatal("Aux(3) does not round-trip")
	}
	if h.Aux(0) != Nil {
		t.Fatal("unset aux root not nil")
	}
}

func TestAuxOutOfRangePanics(t *testing.T) {
	h := newHeapT(t, 1<<12)
	defer func() {
		if recover() == nil {
			t.Fatal("Aux(NumAux) did not panic")
		}
	}()
	h.Aux(NumAux)
}

func TestFreeListsRebuiltAfterCrash(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 12})
	h, _ := Format(dev)
	p1, _ := h.Alloc(4)
	p2, _ := h.Alloc(4)
	h.SetRoot(p2)
	if err := h.Free(p1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	dev.CrashRescue()
	dev.Restart()
	h2, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// The freed block must be available again in the new incarnation.
	q, err := h2.Alloc(4)
	if err != nil {
		t.Fatalf("Alloc after reopen: %v", err)
	}
	if q != p1 {
		t.Fatalf("rebuilt free list did not offer freed block: got %d want %d", q, p1)
	}
}

func TestTornBumpPointerRepaired(t *testing.T) {
	// Simulate a crash-without-rescue that persisted the bump-pointer
	// advance but not the new block header: Open must pull the bump
	// pointer back to the last well-formed block boundary.
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 12})
	h, _ := Format(dev)
	p, _ := h.Alloc(4)
	h.SetRoot(p)
	dev.FlushAll() // everything so far is durable

	// Hand-craft the torn state in the persisted image: advance bump
	// without a block header by writing and flushing only the bump word.
	bump := h.Bump()
	dev.Store(4 /* hdrBump */, bump+8)
	dev.FlushWord(4)
	dev.CrashDrop()
	dev.Restart()

	h2, err := Open(dev)
	if err != nil {
		t.Fatalf("Open on torn heap: %v", err)
	}
	if h2.Bump() != bump {
		t.Fatalf("bump not repaired: %d, want %d", h2.Bump(), bump)
	}
	if _, err := h2.Check(); err != nil {
		t.Fatalf("Check after repair: %v", err)
	}
}

func TestCheckOnHealthyHeap(t *testing.T) {
	h := newHeapT(t, 1<<12)
	p1, _ := h.Alloc(4)
	p2, _ := h.Alloc(10)
	_ = h.Free(p1)
	_ = p2
	rep, err := h.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.AllocatedBlocks != 1 || rep.FreeBlocks != 1 {
		t.Fatalf("unexpected report: %s", rep)
	}
}

func TestCheckDetectsCorruptHeader(t *testing.T) {
	h := newHeapT(t, 1<<12)
	p, _ := h.Alloc(4)
	// Smash the block header with an absurd size.
	h.Device().Store(p.Addr()-1, (1<<50)<<1|1)
	if _, err := h.Check(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Check = %v, want ErrCorrupt", err)
	}
}

func TestBlocksIteration(t *testing.T) {
	h := newHeapT(t, 1<<12)
	p1, _ := h.Alloc(4)
	p2, _ := h.Alloc(4)
	_ = h.Free(p1)
	var got []Ptr
	var allocFlags []bool
	err := h.Blocks(func(p Ptr, words int, allocated bool) bool {
		got = append(got, p)
		allocFlags = append(allocFlags, allocated)
		return true
	})
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	if len(got) != 2 || got[0] != p1 || got[1] != p2 {
		t.Fatalf("Blocks visited %v, want [%d %d]", got, p1, p2)
	}
	if allocFlags[0] || !allocFlags[1] {
		t.Fatalf("alloc flags %v, want [false true]", allocFlags)
	}
}

func TestBlocksEarlyStop(t *testing.T) {
	h := newHeapT(t, 1<<12)
	h.Alloc(4)
	h.Alloc(4)
	count := 0
	_ = h.Blocks(func(Ptr, int, bool) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d blocks, want 1", count)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	h := newHeapT(t, 1<<16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []Ptr
			for i := 0; i < 200; i++ {
				p, err := h.Alloc(3)
				if err != nil {
					t.Errorf("Alloc: %v", err)
					return
				}
				mine = append(mine, p)
				if len(mine) > 10 {
					if err := h.Free(mine[0]); err != nil {
						t.Errorf("Free: %v", err)
						return
					}
					mine = mine[1:]
				}
			}
			for _, p := range mine {
				if err := h.Free(p); err != nil {
					t.Errorf("Free: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	rep, err := h.Check()
	if err != nil {
		t.Fatalf("Check after concurrent churn: %v", err)
	}
	if rep.AllocatedBlocks != 0 {
		t.Fatalf("leaked %d blocks", rep.AllocatedBlocks)
	}
}

func TestCASAndAddOnPayload(t *testing.T) {
	h := newHeapT(t, 1<<12)
	p, _ := h.Alloc(2)
	h.Store(p, 0, 5)
	if !h.CAS(p, 0, 5, 6) {
		t.Fatal("CAS with correct expectation failed")
	}
	if h.CAS(p, 0, 5, 7) {
		t.Fatal("CAS with stale expectation succeeded")
	}
	if got := h.Add(p, 1, 3); got != 3 {
		t.Fatalf("Add returned %d, want 3", got)
	}
}

func TestPtrHelpers(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() = false")
	}
	p := Ptr(100)
	if p.IsNil() || p.Addr() != nvm.Addr(100) {
		t.Fatal("Ptr helpers broken")
	}
}
