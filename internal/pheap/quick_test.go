package pheap

import (
	"testing"
	"testing/quick"

	"tsp/internal/nvm"
)

// Property: any interleaving of Alloc and Free keeps the heap Check-clean
// and never hands out overlapping blocks.
func TestQuickAllocFreeIntegrity(t *testing.T) {
	f := func(ops []uint8) bool {
		h, err := Format(nvm.NewDevice(nvm.Config{Words: 1 << 12}))
		if err != nil {
			return false
		}
		type span struct{ lo, hi uint64 }
		live := map[Ptr]span{}
		var order []Ptr
		for _, op := range ops {
			if op%3 != 0 || len(order) == 0 {
				size := int(op%13) + 1
				p, err := h.Alloc(size)
				if err != nil {
					continue // heap full is fine
				}
				total, _ := h.SizeOf(p)
				s := span{uint64(p) - 1, uint64(p) + uint64(total)}
				for _, other := range live {
					if s.lo < other.hi && other.lo < s.hi {
						return false // overlap!
					}
				}
				live[p] = s
				order = append(order, p)
			} else {
				p := order[len(order)-1]
				order = order[:len(order)-1]
				if err := h.Free(p); err != nil {
					return false
				}
				delete(live, p)
			}
		}
		_, err = h.Check()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: stored payload words survive crash-with-rescue and reopen.
func TestQuickPayloadSurvivesRescue(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		dev := nvm.NewDevice(nvm.Config{Words: 1 << 12})
		h, _ := Format(dev)
		p, err := h.Alloc(len(vals))
		if err != nil {
			return true
		}
		for i, v := range vals {
			h.Store(p, i, v)
		}
		h.SetRoot(p)
		dev.CrashRescue()
		dev.Restart()
		h2, err := Open(dev)
		if err != nil {
			return false
		}
		q := h2.Root()
		if q != p {
			return false
		}
		for i, v := range vals {
			if h2.Load(q, i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: GC never frees anything reachable from the root, for random
// list shapes with random cross-links.
func TestQuickGCPreservesReachability(t *testing.T) {
	f := func(links []uint8, n uint8) bool {
		count := int(n%20) + 1
		h, err := Format(nvm.NewDevice(nvm.Config{Words: 1 << 14}))
		if err != nil {
			return false
		}
		ptrs := make([]Ptr, count)
		for i := range ptrs {
			p, err := h.Alloc(3)
			if err != nil {
				return true
			}
			ptrs[i] = p
		}
		// Random cross-links among the nodes.
		for i, l := range links {
			if i >= count {
				break
			}
			h.Store(ptrs[i], int(l)%2, uint64(ptrs[int(l)%count]))
		}
		h.SetRoot(ptrs[0])
		// Compute expected reachability.
		reach := map[Ptr]bool{}
		var walk func(p Ptr)
		walk = func(p Ptr) {
			if p.IsNil() || reach[p] {
				return
			}
			reach[p] = true
			for off := 0; off < 3; off++ {
				v := Ptr(h.Load(p, off))
				for _, q := range ptrs {
					if v == q {
						walk(q)
					}
				}
			}
		}
		walk(ptrs[0])
		if _, err := h.GC(); err != nil {
			return false
		}
		// Every expected-reachable block must still be allocated.
		stillAlloc := map[Ptr]bool{}
		_ = h.Blocks(func(p Ptr, _ int, allocated bool) bool {
			if allocated {
				stillAlloc[p] = true
			}
			return true
		})
		for p := range reach {
			if !stillAlloc[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
