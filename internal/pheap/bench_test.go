package pheap

import (
	"testing"

	"tsp/internal/nvm"
)

func benchHeap(b *testing.B, words int) *Heap {
	b.Helper()
	h, err := Format(nvm.NewDevice(nvm.Config{Words: words}))
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func BenchmarkAllocFreePair(b *testing.B) {
	h := benchHeap(b, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := h.Alloc(4)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocVaried(b *testing.B) {
	h := benchHeap(b, 1<<22)
	sizes := []int{1, 3, 8, 17, 64}
	var live []Ptr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := h.Alloc(sizes[i%len(sizes)])
		if err != nil {
			b.StopTimer()
			for _, q := range live {
				h.Free(q)
			}
			live = live[:0]
			b.StartTimer()
			continue
		}
		live = append(live, p)
	}
}

func BenchmarkStoreLoad(b *testing.B) {
	h := benchHeap(b, 1<<16)
	p, _ := h.Alloc(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Store(p, i&7, uint64(i))
		_ = h.Load(p, i&7)
	}
}

func BenchmarkGC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := benchHeap(b, 1<<18)
		// 1000 reachable nodes in a list, 1000 garbage blocks.
		var head Ptr
		for j := 0; j < 1000; j++ {
			p, err := h.Alloc(2)
			if err != nil {
				b.Fatal(err)
			}
			h.Store(p, 0, uint64(head))
			head = p
			if _, err := h.Alloc(2); err != nil { // garbage
				b.Fatal(err)
			}
		}
		h.SetRoot(head)
		b.StartTimer()
		rep, err := h.GC()
		if err != nil {
			b.Fatal(err)
		}
		if rep.BlocksFreed != 1000 {
			b.Fatalf("freed %d, want 1000", rep.BlocksFreed)
		}
	}
}

func BenchmarkOpenRebuild(b *testing.B) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 18})
	h, _ := Format(dev)
	for j := 0; j < 2000; j++ {
		p, err := h.Alloc(4)
		if err != nil {
			b.Fatal(err)
		}
		if j%2 == 0 {
			h.Free(p)
		}
	}
	dev.FlushAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(dev); err != nil {
			b.Fatal(err)
		}
	}
}
