package stack

import (
	"testing"
	"time"

	"tsp/internal/nvm"
	"tsp/internal/telemetry"
)

// TestTelemetryWiredThroughLayers checks that one registry observes
// every layer of a working stack.
func TestTelemetryWiredThroughLayers(t *testing.T) {
	s, err := New(WithDeviceWords(1 << 18))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Tel == nil {
		t.Fatal("New built no registry by default")
	}
	th, err := s.RT.NewThread()
	if err != nil {
		t.Fatalf("thread: %v", err)
	}
	for k := uint64(0); k < 10; k++ {
		if err := s.Map.Put(th, k, k); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if _, _, err := s.Map.Get(th, 3); err != nil {
		t.Fatalf("get: %v", err)
	}
	c := s.Tel.Counters()
	for _, name := range []string{"nvm_stores", "nvm_loads", "atlas_log_appends", "atlas_ocs_commits", "heap_allocs", "map_puts", "map_gets"} {
		if c[name] == 0 {
			t.Errorf("%s = 0, want > 0 (snapshot: %v)", name, c)
		}
	}
	if got := c["stack_generation"]; got != 1 {
		t.Errorf("stack_generation = %d, want 1", got)
	}
	if got := c["recovery_count"]; got != 0 {
		t.Errorf("recovery_count = %d, want 0 before any crash", got)
	}
}

// TestTelemetryContinuityAcrossCrashReattach is the registry's central
// contract: the SAME registry instruments the recovered stack, counters
// accumulate across the crash (no reset), the generation counter tells
// incarnations apart, and the Atlas recovery report's counts surface in
// the recovery section.
func TestTelemetryContinuityAcrossCrashReattach(t *testing.T) {
	s, err := New(WithDeviceWords(1 << 18))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	th, err := s.RT.NewThread()
	if err != nil {
		t.Fatalf("thread: %v", err)
	}
	for k := uint64(0); k < 50; k++ {
		if err := s.Map.Put(th, k, k+1); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	before := s.Tel.Counters()
	if before["nvm_rescues"] != 0 {
		t.Fatalf("nvm_rescues = %d before crash", before["nvm_rescues"])
	}
	// The registry's histogram sections (the cache server's batch-size
	// and per-command planes included) must ride the same continuity.
	s.Tel.CmdLatency.Observe(telemetry.CmdSet, time.Millisecond)
	s.Tel.BatchSize.ObserveValue(7)

	s2, err := s.CrashReattach(nvm.CrashOptions{RescueFraction: 1})
	if err != nil {
		t.Fatalf("CrashReattach: %v", err)
	}
	if s2.Tel != s.Tel {
		t.Fatal("CrashReattach built a different registry; counters severed")
	}
	after := s2.Tel.Counters()

	// Counters survived and kept going: pre-crash stores are still
	// visible, and recovery's own device traffic only added to them.
	if after["nvm_stores"] < before["nvm_stores"] {
		t.Fatalf("nvm_stores went backwards across crash: %d -> %d", before["nvm_stores"], after["nvm_stores"])
	}
	if got := after["nvm_rescues"]; got != 1 {
		t.Errorf("nvm_rescues = %d, want 1 (TSP rescue at crash)", got)
	}
	if got := after["stack_generation"]; got != 2 {
		t.Errorf("stack_generation = %d, want 2 after one reattach", got)
	}
	if got := after["recovery_count"]; got != 1 {
		t.Errorf("recovery_count = %d, want 1", got)
	}
	// The recovery report's log-scan counts surface in the registry,
	// consistent with the report the stack returned.
	if want := uint64(s2.Recovery.EntriesScanned); after["recovery_entries_scanned"] != want {
		t.Errorf("recovery_entries_scanned = %d, want %d (report)", after["recovery_entries_scanned"], want)
	}
	if want := uint64(s2.Recovery.OCSes); after["recovery_ocses"] != want {
		t.Errorf("recovery_ocses = %d, want %d (report)", after["recovery_ocses"], want)
	}
	if got := s2.Tel.CmdLatency.Snapshot(telemetry.CmdSet).Count(); got != 1 {
		t.Errorf("cmd latency count = %d across crash, want 1", got)
	}
	if got := s2.Tel.BatchSize.Snapshot().Count(); got != 1 {
		t.Errorf("batch size count = %d across crash, want 1", got)
	}

	// A second crash/reattach keeps accumulating.
	s3, err := s2.CrashReattach(nvm.CrashOptions{RescueFraction: 1})
	if err != nil {
		t.Fatalf("second CrashReattach: %v", err)
	}
	final := s3.Tel.Counters()
	if got := final["recovery_count"]; got != 2 {
		t.Errorf("recovery_count = %d after two crashes, want 2", got)
	}
	if got := final["stack_generation"]; got != 3 {
		t.Errorf("stack_generation = %d after two crashes, want 3", got)
	}
}

// TestWithTelemetryInjectsSharedRegistry: a caller-owned registry (the
// cache server's per-shard pattern) is adopted as-is.
func TestWithTelemetryInjectsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(WithDeviceWords(1<<16), WithTelemetry(reg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Tel != reg {
		t.Fatal("stack did not adopt the injected registry")
	}
	if got := s.Dev.Telemetry(); got != reg.Device {
		t.Fatal("device not wired to the injected registry's section")
	}
}

// TestWithoutTelemetryDisablesEverything: the explicit off switch wires
// nil sections through every layer and Device.Stats reads zero.
func TestWithoutTelemetryDisablesEverything(t *testing.T) {
	s, err := New(WithDeviceWords(1<<16), WithoutTelemetry())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Tel != nil {
		t.Fatal("Tel should be nil WithoutTelemetry")
	}
	if s.Dev.Telemetry() != nil {
		t.Fatal("device still counting WithoutTelemetry")
	}
	th, err := s.RT.NewThread()
	if err != nil {
		t.Fatalf("thread: %v", err)
	}
	if err := s.Map.Put(th, 1, 2); err != nil {
		t.Fatalf("put: %v", err)
	}
	if got := s.Dev.Stats(); got != (nvm.StatsSnapshot{}) {
		t.Fatalf("disabled device stats = %+v, want zeros", got)
	}
	// The disabled stack still recovers normally.
	s2, err := s.CrashReattach(nvm.CrashOptions{RescueFraction: 1})
	if err != nil {
		t.Fatalf("CrashReattach: %v", err)
	}
	if s2.Tel != nil {
		t.Fatal("reattached stack grew a registry despite WithoutTelemetry")
	}
}
