// Package stack assembles the full persistent storage stack — simulated
// NVM device, persistent heap, Atlas runtime, and fortified hash map —
// behind a single constructor pair. The build sequence (format-or-open,
// atlas.Recover on reopen, map attach, root publication, setup flush)
// has a strict required order, and before this package existed it was
// hand-duplicated at every call site (the cache server, the experiment
// harness behind cmd/faultinject, and the examples), each copy one
// reordering away from a recovery bug.
//
// Two entry points cover the two incarnations of a program's life:
//
//   - New builds a fresh stack: new device, formatted heap, runtime, an
//     empty map published as the heap root, all made durable so setup is
//     never part of a crash window.
//   - Reattach is the recovery path: reopen the heap of a restarted
//     device, run Atlas recovery (rollback of incomplete critical
//     sections), rebuild the runtime, and attach the map found at the
//     root.
//
// Options use the functional-option pattern precisely because the
// zero-value-defaulting Config structs they replace could not express
// "explicitly off": atlas.ModeOff == 0 was indistinguishable from "not
// set" and silently rewritten to ModeTSP. WithMode(atlas.ModeOff) now
// means what it says.
package stack

import (
	"fmt"

	"tsp/internal/atlas"
	"tsp/internal/hashmap"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// Stack is one assembled storage stack. RT and Map are nil for a
// heap-only stack (see HeapOnly).
type Stack struct {
	Dev  *nvm.Device
	Heap *pheap.Heap
	RT   *atlas.Runtime
	Map  *hashmap.Map

	// Recovery is the Atlas recovery report when the stack came up via
	// Reattach (zero value for a fresh stack or a heap-only reattach).
	Recovery atlas.Report

	cfg config // retained so CrashReattach can rebuild identically
}

type config struct {
	devCfg        nvm.Config
	mode          atlas.Mode
	maxThreads    int
	logEntries    int
	logEveryStore bool
	buckets       int
	perMutex      int
	heapOnly      bool
}

func defaults() config {
	return config{
		devCfg:     nvm.Config{Words: 1 << 21},
		mode:       atlas.ModeTSP,
		maxThreads: 16,
		buckets:    4096,
		perMutex:   256,
	}
}

// Option configures New and Reattach.
type Option func(*config)

// WithDeviceWords sizes the simulated NVM device (default 1<<21 words).
func WithDeviceWords(n int) Option {
	return func(c *config) { c.devCfg.Words = n }
}

// WithDeviceConfig replaces the whole device configuration (line size,
// flush cost, evictor, ...). Zero Words falls back to the default size.
func WithDeviceConfig(cfg nvm.Config) Option {
	return func(c *config) {
		if cfg.Words == 0 {
			cfg.Words = c.devCfg.Words
		}
		c.devCfg = cfg
	}
}

// WithMode selects the Atlas fortification mode. The default is
// ModeTSP; WithMode(atlas.ModeOff) builds a genuinely unfortified
// stack — the option is only applied when the caller invokes it, so the
// zero value is never second-guessed.
func WithMode(m atlas.Mode) Option {
	return func(c *config) { c.mode = m }
}

// WithMaxThreads bounds concurrent atlas.Thread registrations
// (default 16).
func WithMaxThreads(n int) Option {
	return func(c *config) { c.maxThreads = n }
}

// WithLogEntries sizes each thread's undo-log ring (0 = atlas default).
func WithLogEntries(n int) Option {
	return func(c *config) { c.logEntries = n }
}

// WithLogEveryStore disables Atlas's first-store-per-OCS filter
// (ablation knob; see atlas.Options.LogEveryStore).
func WithLogEveryStore(on bool) Option {
	return func(c *config) { c.logEveryStore = on }
}

// WithBuckets shapes the hash map: bucket count and buckets per stripe
// mutex (defaults 4096 and 256).
func WithBuckets(buckets, perMutex int) Option {
	return func(c *config) {
		c.buckets = buckets
		c.perMutex = perMutex
	}
}

// HeapOnly stops the stack at the persistent heap: no Atlas runtime, no
// map. For programs that build their own persistent structures directly
// on heap words (like examples/quickstart's linked list).
func HeapOnly() Option {
	return func(c *config) { c.heapOnly = true }
}

func buildConfig(opts []Option) config {
	c := defaults()
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) atlasOptions() atlas.Options {
	return atlas.Options{
		MaxThreads:    c.maxThreads,
		LogEntries:    c.logEntries,
		LogEveryStore: c.logEveryStore,
	}
}

// New builds a fresh stack on a new device and makes the initialized
// (pre-workload) state durable, so setup is not part of any crash
// window.
func New(opts ...Option) (*Stack, error) {
	c := buildConfig(opts)
	dev := nvm.NewDevice(c.devCfg)
	heap, err := pheap.Format(dev)
	if err != nil {
		return nil, fmt.Errorf("stack: format heap: %w", err)
	}
	s := &Stack{Dev: dev, Heap: heap, cfg: c}
	if c.heapOnly {
		return s, nil
	}
	rt, err := atlas.New(heap, c.mode, c.atlasOptions())
	if err != nil {
		return nil, fmt.Errorf("stack: atlas runtime: %w", err)
	}
	m, err := hashmap.New(rt, c.buckets, c.perMutex)
	if err != nil {
		return nil, fmt.Errorf("stack: hashmap: %w", err)
	}
	heap.SetRoot(m.Ptr())
	dev.FlushAll()
	s.RT = rt
	s.Map = m
	return s, nil
}

// Reattach is the recovery path: open the heap of a restarted device,
// run Atlas recovery, rebuild the runtime and attach the map anchored
// at the heap root. The options must describe the same shape the stack
// was built with (mode may differ — a store can be reopened under a
// different fortification level, as the paper's mode comparison does).
func Reattach(dev *nvm.Device, opts ...Option) (*Stack, error) {
	c := buildConfig(opts)
	heap, err := pheap.Open(dev)
	if err != nil {
		return nil, fmt.Errorf("stack: reopen heap: %w", err)
	}
	s := &Stack{Dev: dev, Heap: heap, cfg: c}
	if c.heapOnly {
		return s, nil
	}
	rep, err := atlas.Recover(heap)
	if err != nil {
		return nil, fmt.Errorf("stack: atlas recovery: %w", err)
	}
	s.Recovery = rep
	rt, err := atlas.New(heap, c.mode, c.atlasOptions())
	if err != nil {
		return nil, fmt.Errorf("stack: atlas runtime: %w", err)
	}
	m, err := hashmap.Open(rt, heap.Root())
	if err != nil {
		return nil, fmt.Errorf("stack: hashmap reattach: %w", err)
	}
	s.RT = rt
	s.Map = m
	return s, nil
}

// Mode returns the fortification mode the stack was assembled with.
func (s *Stack) Mode() atlas.Mode { return s.cfg.mode }

// CrashReattach simulates a power failure on the stack's device (with
// the given crash options), restarts it, and brings a new stack up
// through the standard recovery path — exactly what a restarted process
// would do. The receiver stack is dead afterwards; use the returned
// one. The caller is responsible for stopping the evictor first if one
// is running (a crashed machine's cache controller is not running
// either).
func (s *Stack) CrashReattach(opts nvm.CrashOptions) (*Stack, error) {
	s.Dev.Crash(opts)
	s.Dev.Restart()
	return s.reattachSelf()
}

func (s *Stack) reattachSelf() (*Stack, error) {
	c := s.cfg
	ns, err := Reattach(s.Dev, func(out *config) { *out = c })
	if err != nil {
		return nil, err
	}
	return ns, nil
}
