// Package stack assembles the full persistent storage stack — simulated
// NVM device, persistent heap, Atlas runtime, and fortified hash map —
// behind a single constructor pair. The build sequence (format-or-open,
// atlas.Recover on reopen, map attach, root publication, setup flush)
// has a strict required order, and before this package existed it was
// hand-duplicated at every call site (the cache server, the experiment
// harness behind cmd/faultinject, and the examples), each copy one
// reordering away from a recovery bug.
//
// Two entry points cover the two incarnations of a program's life:
//
//   - New builds a fresh stack: new device, formatted heap, runtime, an
//     empty map published as the heap root, all made durable so setup is
//     never part of a crash window.
//   - Reattach is the recovery path: reopen the heap of a restarted
//     device, run Atlas recovery (rollback of incomplete critical
//     sections), rebuild the runtime, and attach the map found at the
//     root.
//
// Options use the functional-option pattern precisely because the
// zero-value-defaulting Config structs they replace could not express
// "explicitly off": atlas.ModeOff == 0 was indistinguishable from "not
// set" and silently rewritten to ModeTSP. WithMode(atlas.ModeOff) now
// means what it says.
package stack

import (
	"fmt"

	"tsp/internal/atlas"
	"tsp/internal/hashmap"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/skiplist"
	"tsp/internal/telemetry"
)

// Multi-engine root directory layout (payload words). The heap root no
// longer points at the hash map directly: it points at a tiny directory
// block naming every engine the stack carries. The magic word is stored
// last so a directory is only ever observed fully formed, and its value
// is far outside any device address, so the recovery-time conservative
// GC never mistakes it for a pointer — while the two engine words keep
// both trees reachable.
const (
	rootMagicWord = 0
	rootMapWord   = 1
	rootListWord  = 2
	rootWords     = 3

	rootMagic = 0x5453_5052_4f4f_5431 // "TSPROOT1"
)

// auxEpochSlot is the heap auxiliary-root slot anchoring the durable
// epoch frontier: a one-word heap block holding the highest epoch whose
// relaxed-tier writes are known persistent. It lives in an allocated
// block (not a raw value in the Aux slot) because the recovery-time GC
// treats every Aux slot as a block pointer root — a bare counter there
// would be chased as an address. Slot 0 belongs to the Atlas log
// directory (atlas.AuxLogDir).
const auxEpochSlot = 1

// auxSessSlot is the heap auxiliary-root slot anchoring the session
// dedup table: the persistent window behind exactly-once retries (see
// DESIGN.md §12). Like the epoch frontier it lives in an allocated
// block because Aux slots are GC roots. The block layout is a two-word
// header {capacity, eviction floor} followed by capacity four-word
// records {session id, highest applied seq, reply payload, witness
// key}; session id 0 marks an empty record. All mutations of record
// and floor words happen inside the Atlas critical section of the
// operation they witness (via th.Store), which is exactly what makes a
// dedup record and its operation's effect atomic across a crash.
const auxSessSlot = 2

// Session-table word layout. The header's capacity word is read at
// reattach so a table keeps the size it was built with; the floor word
// is the highest sequence number ever evicted from the table (the
// `seq too old` boundary).
const (
	SessCapWord   = 0
	SessFloorWord = 1
	SessHdrWords  = 2

	SessRecSess    = 0
	SessRecSeq     = 1
	SessRecPayload = 2
	SessRecKey     = 3
	SessRecWords   = 4
)

// Stack is one assembled storage stack. RT, Map and List are nil for a
// heap-only stack (see HeapOnly).
type Stack struct {
	Dev  *nvm.Device
	Heap *pheap.Heap
	RT   *atlas.Runtime
	Map  *hashmap.Map

	// List is the stack's second engine: the persistent lock-free skip
	// list serving the ordered keyspace. Per Section 4.1 it takes no
	// crash-consistency measures at all — operations bypass Atlas — so
	// the directory root is the only coupling between the engines.
	List *skiplist.List

	// Recovery is the Atlas recovery report when the stack came up via
	// Reattach (zero value for a fresh stack or a heap-only reattach).
	Recovery atlas.Report

	// Tel is the stack's telemetry registry: one observability plane for
	// every layer. Nil when the stack was built WithoutTelemetry. The
	// registry outlives any single incarnation — CrashReattach hands the
	// same registry to the recovered stack, so counters accumulate across
	// crashes (Generation tells incarnations apart).
	Tel *telemetry.Registry

	// epochPtr is the one-word heap block behind DurableEpoch, anchored
	// at Aux slot auxEpochSlot. Nil on heap-only stacks.
	epochPtr pheap.Ptr

	// sessPtr is the session dedup-table block anchored at Aux slot
	// auxSessSlot (header + records; see the slot's layout comment).
	// Nil on heap-only stacks. sessCap is the record capacity read from
	// the header.
	sessPtr pheap.Ptr
	sessCap int

	cfg config // retained so CrashReattach can rebuild identically
}

type config struct {
	devCfg        nvm.Config
	mode          atlas.Mode
	maxThreads    int
	logEntries    int
	logEveryStore bool
	buckets       int
	perMutex      int
	listLevels    int
	sessSlots     int
	heapOnly      bool
	tel           *telemetry.Registry
	telemetryOff  bool
}

func defaults() config {
	return config{
		devCfg:     nvm.Config{Words: 1 << 21},
		mode:       atlas.ModeTSP,
		maxThreads: 16,
		buckets:    4096,
		perMutex:   256,
		listLevels: 16,
		sessSlots:  256,
	}
}

// Option configures New and Reattach.
type Option func(*config)

// WithDeviceWords sizes the simulated NVM device (default 1<<21 words).
func WithDeviceWords(n int) Option {
	return func(c *config) { c.devCfg.Words = n }
}

// WithDeviceConfig replaces the whole device configuration (line size,
// flush cost, evictor, ...). Zero Words falls back to the default size.
func WithDeviceConfig(cfg nvm.Config) Option {
	return func(c *config) {
		if cfg.Words == 0 {
			cfg.Words = c.devCfg.Words
		}
		c.devCfg = cfg
	}
}

// WithMode selects the Atlas fortification mode. The default is
// ModeTSP; WithMode(atlas.ModeOff) builds a genuinely unfortified
// stack — the option is only applied when the caller invokes it, so the
// zero value is never second-guessed.
func WithMode(m atlas.Mode) Option {
	return func(c *config) { c.mode = m }
}

// WithMaxThreads bounds concurrent atlas.Thread registrations
// (default 16).
func WithMaxThreads(n int) Option {
	return func(c *config) { c.maxThreads = n }
}

// WithLogEntries sizes each thread's undo-log ring (0 = atlas default).
func WithLogEntries(n int) Option {
	return func(c *config) { c.logEntries = n }
}

// WithLogEveryStore disables Atlas's first-store-per-OCS filter
// (ablation knob; see atlas.Options.LogEveryStore).
func WithLogEveryStore(on bool) Option {
	return func(c *config) { c.logEveryStore = on }
}

// WithBuckets shapes the hash map: bucket count and buckets per stripe
// mutex (defaults 4096 and 256).
func WithBuckets(buckets, perMutex int) Option {
	return func(c *config) {
		c.buckets = buckets
		c.perMutex = perMutex
	}
}

// WithListLevels sets the maximum level of the ordered-keyspace skip
// list (default 16, capped at skiplist.MaxLevel). Only consulted when a
// fresh list is created (New, or the legacy-root upgrade in Reattach);
// a reopened list keeps the level it was built with.
func WithListLevels(n int) Option {
	return func(c *config) { c.listLevels = n }
}

// WithSessionSlots sizes the session dedup table (records per stack,
// default 256, minimum 1). Only consulted when a fresh table is
// created; a reattached table keeps the capacity in its header.
func WithSessionSlots(n int) Option {
	return func(c *config) { c.sessSlots = n }
}

// HeapOnly stops the stack at the persistent heap: no Atlas runtime, no
// map. For programs that build their own persistent structures directly
// on heap words (like examples/quickstart's linked list).
func HeapOnly() Option {
	return func(c *config) { c.heapOnly = true }
}

// WithTelemetry threads an existing registry through every layer instead
// of the fresh one New would otherwise build — how a multi-stack program
// (one registry per cache-server shard) keeps each shard's registry
// stable while the shard's stack is crashed and rebuilt underneath it.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *config) {
		c.tel = reg
		c.telemetryOff = reg == nil
	}
}

// WithoutTelemetry builds the stack with no registry at all: every layer
// holds nil counter sections and pays one predictable branch per event.
// This is the configuration the overhead benchmarks compare against.
func WithoutTelemetry() Option {
	return func(c *config) {
		c.tel = nil
		c.telemetryOff = true
	}
}

func buildConfig(opts []Option) config {
	c := defaults()
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) atlasOptions(reg *telemetry.Registry) atlas.Options {
	o := atlas.Options{
		MaxThreads:    c.maxThreads,
		LogEntries:    c.logEntries,
		LogEveryStore: c.logEveryStore,
	}
	if reg != nil {
		o.Telemetry = reg.Atlas
	}
	return o
}

// resolveRegistry picks the stack's registry: the injected one, a fresh
// one by default, or nil when telemetry is explicitly off. The choice is
// written back into the config so CrashReattach rebuilds onto the SAME
// registry — that is what makes counters survive a crash.
func (c *config) resolveRegistry() *telemetry.Registry {
	if c.telemetryOff {
		c.tel = nil
		return nil
	}
	if c.tel == nil {
		c.tel = telemetry.NewRegistry()
	}
	return c.tel
}

// New builds a fresh stack on a new device and makes the initialized
// (pre-workload) state durable, so setup is not part of any crash
// window.
func New(opts ...Option) (*Stack, error) {
	c := buildConfig(opts)
	reg := c.resolveRegistry()
	devCfg := c.devCfg
	if reg != nil {
		devCfg.Telemetry = reg.Device
	} else {
		devCfg.DisableStats = true
	}
	dev := nvm.NewDevice(devCfg)
	heap, err := pheap.Format(dev)
	if err != nil {
		return nil, fmt.Errorf("stack: format heap: %w", err)
	}
	if reg != nil {
		heap.SetTelemetry(reg.Heap)
	}
	s := &Stack{Dev: dev, Heap: heap, Tel: reg, cfg: c}
	if c.heapOnly {
		if reg != nil {
			reg.Generation.Inc()
		}
		return s, nil
	}
	rt, err := atlas.New(heap, c.mode, c.atlasOptions(reg))
	if err != nil {
		return nil, fmt.Errorf("stack: atlas runtime: %w", err)
	}
	m, err := hashmap.New(rt, c.buckets, c.perMutex)
	if err != nil {
		return nil, fmt.Errorf("stack: hashmap: %w", err)
	}
	if reg != nil {
		m.SetTelemetry(reg.Map)
	}
	l, err := skiplist.New(heap, c.listLevels)
	if err != nil {
		return nil, fmt.Errorf("stack: skiplist: %w", err)
	}
	if err := publishRoot(heap, m.Ptr(), l.Ptr()); err != nil {
		return nil, err
	}
	ep, _, err := ensureEpochAnchor(heap)
	if err != nil {
		return nil, err
	}
	s.epochPtr = ep
	sp, _, err := ensureSessAnchor(heap, c.sessSlots)
	if err != nil {
		return nil, err
	}
	s.sessPtr = sp
	s.sessCap = int(heap.Load(sp, SessCapWord))
	dev.FlushAll()
	s.RT = rt
	s.Map = m
	s.List = l
	if reg != nil {
		reg.Generation.Inc()
	}
	return s, nil
}

// ensureEpochAnchor returns the epoch-frontier block, allocating and
// anchoring one when the heap predates the epoch clock (fresh heaps and
// the legacy-upgrade path both land here). The second result reports
// whether an allocation happened, so Reattach knows to flush the new
// anchor; New's setup FlushAll covers it for free.
func ensureEpochAnchor(heap *pheap.Heap) (pheap.Ptr, bool, error) {
	if p := heap.Aux(auxEpochSlot); !p.IsNil() {
		return p, false, nil
	}
	p, err := heap.Alloc(1)
	if err != nil {
		return pheap.Nil, false, fmt.Errorf("stack: epoch anchor: %w", err)
	}
	heap.Store(p, 0, 0)
	heap.SetAux(auxEpochSlot, p)
	return p, true, nil
}

// ensureSessAnchor returns the session dedup-table block, allocating
// and anchoring one when the heap predates detectable operations. Like
// ensureEpochAnchor, the second result tells Reattach to flush the
// fresh block. Record words are zeroed (session id 0 = empty), so a
// fresh table suppresses nothing and rejects nothing.
func ensureSessAnchor(heap *pheap.Heap, slots int) (pheap.Ptr, bool, error) {
	if p := heap.Aux(auxSessSlot); !p.IsNil() {
		return p, false, nil
	}
	if slots < 1 {
		slots = 1
	}
	p, err := heap.Alloc(SessHdrWords + SessRecWords*slots)
	if err != nil {
		return pheap.Nil, false, fmt.Errorf("stack: session table: %w", err)
	}
	heap.Store(p, SessCapWord, uint64(slots))
	heap.Store(p, SessFloorWord, 0)
	for w := 0; w < SessRecWords*slots; w++ {
		heap.Store(p, SessHdrWords+w, 0)
	}
	heap.SetAux(auxSessSlot, p)
	return p, true, nil
}

// SessTable exposes the persistent session dedup table: the block
// pointer (layout per the Sess* word constants) and its record
// capacity. The pointer is nil on heap-only stacks.
func (s *Stack) SessTable() (pheap.Ptr, int) { return s.sessPtr, s.sessCap }

// SetDurableEpoch publishes e as the persistent epoch frontier: every
// relaxed-tier write acknowledged with an epoch stamp ≤ e has been
// drained into fortified state and flushed. The store is made durable
// immediately (one word, one flush) — the frontier is only useful if it
// never runs ahead of the data it vouches for, so the caller must flush
// that data before advancing it. No-op on heap-only stacks.
func (s *Stack) SetDurableEpoch(e uint64) {
	if s.epochPtr.IsNil() {
		return
	}
	s.Dev.Store(s.epochPtr.Addr(), e)
	s.Dev.FlushWord(s.epochPtr.Addr())
}

// DurableEpoch reads back the persistent epoch frontier (0 when no
// epoch has ever closed, or on heap-only stacks).
func (s *Stack) DurableEpoch() uint64 {
	if s.epochPtr.IsNil() {
		return 0
	}
	return s.Dev.Load(s.epochPtr.Addr())
}

// publishRoot allocates a multi-engine directory naming both engines and
// commits it as the heap root in a single word store.
func publishRoot(heap *pheap.Heap, mapPtr, listPtr pheap.Ptr) error {
	dir, err := heap.Alloc(rootWords)
	if err != nil {
		return fmt.Errorf("stack: root directory: %w", err)
	}
	heap.Store(dir, rootMapWord, uint64(mapPtr))
	heap.Store(dir, rootListWord, uint64(listPtr))
	heap.Store(dir, rootMagicWord, rootMagic) // magic last: valid once visible
	heap.SetRoot(dir)
	return nil
}

// Reattach is the recovery path: open the heap of a restarted device,
// run Atlas recovery, rebuild the runtime and attach the map anchored
// at the heap root. The options must describe the same shape the stack
// was built with (mode may differ — a store can be reopened under a
// different fortification level, as the paper's mode comparison does).
func Reattach(dev *nvm.Device, opts ...Option) (*Stack, error) {
	c := buildConfig(opts)
	reg := c.resolveRegistry()
	if reg != nil && dev.Telemetry() != nil {
		// Adopt the restarted device's live counter section: the device
		// (and its counters) survived the crash, so severing them here
		// would erase exactly the flush/rescue history a crash experiment
		// wants to read afterwards.
		reg.Device = dev.Telemetry()
	}
	heap, err := pheap.Open(dev)
	if err != nil {
		return nil, fmt.Errorf("stack: reopen heap: %w", err)
	}
	if reg != nil {
		heap.SetTelemetry(reg.Heap)
	}
	s := &Stack{Dev: dev, Heap: heap, Tel: reg, cfg: c}
	if c.heapOnly {
		if reg != nil {
			reg.Generation.Inc()
			reg.Recovery.Recoveries.Inc()
		}
		return s, nil
	}
	rep, err := atlas.Recover(heap)
	if err != nil {
		return nil, fmt.Errorf("stack: atlas recovery: %w", err)
	}
	s.Recovery = rep
	rt, err := atlas.New(heap, c.mode, c.atlasOptions(reg))
	if err != nil {
		return nil, fmt.Errorf("stack: atlas runtime: %w", err)
	}
	root := heap.Root()
	var m *hashmap.Map
	var l *skiplist.List
	if !root.IsNil() && heap.Load(root, rootMagicWord) == rootMagic {
		// Multi-engine directory root: open both engines from it.
		m, err = hashmap.Open(rt, pheap.Ptr(heap.Load(root, rootMapWord)))
		if err != nil {
			return nil, fmt.Errorf("stack: hashmap reattach: %w", err)
		}
		l, err = skiplist.Open(heap, pheap.Ptr(heap.Load(root, rootListWord)))
		if err != nil {
			return nil, fmt.Errorf("stack: skiplist reattach: %w", err)
		}
	} else {
		// Legacy single-root heap (the root points at the map descriptor
		// directly). Upgrade in place: attach the map, create an empty
		// skip list, and publish a directory over both. The root word
		// flips atomically, so a crash mid-upgrade leaves the old format
		// intact and the half-built directory as unreachable garbage for
		// the next recovery GC.
		m, err = hashmap.Open(rt, root)
		if err != nil {
			return nil, fmt.Errorf("stack: hashmap reattach: %w", err)
		}
		l, err = skiplist.New(heap, c.listLevels)
		if err != nil {
			return nil, fmt.Errorf("stack: skiplist: %w", err)
		}
		if err := publishRoot(heap, m.Ptr(), l.Ptr()); err != nil {
			return nil, err
		}
		dev.FlushAll()
	}
	ep, freshEpoch, err := ensureEpochAnchor(heap)
	if err != nil {
		return nil, err
	}
	sp, freshSess, err := ensureSessAnchor(heap, c.sessSlots)
	if err != nil {
		return nil, err
	}
	if freshEpoch || freshSess {
		// Lazy upgrade of a pre-epoch (or pre-session) heap: make the
		// anchors durable now so a later frontier/record store never races
		// a crash that would lose the Aux slot itself. FlushAll (not
		// per-word flushes) because SetAux wrote a header word whose
		// address the heap does not expose.
		dev.FlushAll()
	}
	s.epochPtr = ep
	s.sessPtr = sp
	s.sessCap = int(heap.Load(sp, SessCapWord))
	if reg != nil {
		m.SetTelemetry(reg.Map)
		reg.Generation.Inc()
		recordRecovery(reg.Recovery, rep)
	}
	s.RT = rt
	s.Map = m
	s.List = l
	return s, nil
}

// recordRecovery accumulates one Atlas recovery report into the
// registry's recovery section.
func recordRecovery(rs *telemetry.RecoveryStats, rep atlas.Report) {
	if rs == nil {
		return
	}
	rs.Recoveries.Inc()
	rs.EntriesScanned.Add(uint64(rep.EntriesScanned))
	rs.OCSes.Add(uint64(rep.OCSes))
	rs.PartialGroups.Add(uint64(rep.IgnoredPartial))
	rs.Incomplete.Add(uint64(rep.Incomplete))
	rs.Cascaded.Add(uint64(rep.Cascaded))
	rs.UndoApplied.Add(uint64(rep.UndoApplied))
	rs.GCBlocksFreed.Add(uint64(rep.GC.BlocksFreed))
}

// Mode returns the fortification mode the stack was assembled with.
func (s *Stack) Mode() atlas.Mode { return s.cfg.mode }

// CrashReattach simulates a power failure on the stack's device (with
// the given crash options), restarts it, and brings a new stack up
// through the standard recovery path — exactly what a restarted process
// would do. The receiver stack is dead afterwards; use the returned
// one. The caller is responsible for stopping the evictor first if one
// is running (a crashed machine's cache controller is not running
// either).
func (s *Stack) CrashReattach(opts nvm.CrashOptions) (*Stack, error) {
	s.Dev.Crash(opts)
	s.Dev.Restart()
	return s.reattachSelf()
}

func (s *Stack) reattachSelf() (*Stack, error) {
	c := s.cfg
	ns, err := Reattach(s.Dev, func(out *config) { *out = c })
	if err != nil {
		return nil, err
	}
	return ns, nil
}
