package stack

import (
	"testing"

	"tsp/internal/atlas"
	"tsp/internal/hashmap"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// Tests for the multi-engine root directory: both engines served from
// one heap, and the in-place upgrade of pre-directory heaps whose root
// still points at the map descriptor directly.

func TestMultiEngineRootSurvivesCrash(t *testing.T) {
	s, err := New(WithDeviceWords(1 << 18))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.List == nil {
		t.Fatal("full stack missing skip list")
	}
	th, err := s.RT.NewThread()
	if err != nil {
		t.Fatalf("thread: %v", err)
	}
	for k := uint64(0); k < 50; k++ {
		if err := s.Map.Put(th, k, k+1000); err != nil {
			t.Fatalf("map put %d: %v", k, err)
		}
		if _, err := s.List.Put(k, k+2000); err != nil {
			t.Fatalf("list put %d: %v", k, err)
		}
	}
	s2, err := s.CrashReattach(nvm.CrashOptions{RescueFraction: 1})
	if err != nil {
		t.Fatalf("CrashReattach: %v", err)
	}
	if _, err := s2.Map.Verify(); err != nil {
		t.Fatalf("map verify: %v", err)
	}
	if _, err := s2.List.Verify(); err != nil {
		t.Fatalf("list verify: %v", err)
	}
	th2, _ := s2.RT.NewThread()
	for k := uint64(0); k < 50; k++ {
		if v, ok, err := s2.Map.Get(th2, k); err != nil || !ok || v != k+1000 {
			t.Fatalf("map get %d = %d,%v,%v", k, v, ok, err)
		}
		if v, ok := s2.List.Get(k); !ok || v != k+2000 {
			t.Fatalf("list get %d = %d,%v", k, v, ok)
		}
	}
	// The ordered view must come back in order.
	prev := uint64(0)
	n := 0
	s2.List.RangeBetween(0, 50, func(k, v uint64) bool {
		if n > 0 && k <= prev {
			t.Fatalf("range out of order: %d after %d", k, prev)
		}
		prev = k
		n++
		return true
	})
	if n != 50 {
		t.Fatalf("range saw %d keys, want 50", n)
	}
}

// TestLegacyMapOnlyHeapUpgrades builds a heap the way the stack did
// before the multi-engine root existed — the heap root pointing at the
// map descriptor directly — and asserts Reattach still opens it,
// upgrading it in place to the directory format with an empty list.
func TestLegacyMapOnlyHeapUpgrades(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 18, DisableStats: true})
	heap, err := pheap.Format(dev)
	if err != nil {
		t.Fatalf("format: %v", err)
	}
	rt, err := atlas.New(heap, atlas.ModeTSP, atlas.Options{})
	if err != nil {
		t.Fatalf("atlas: %v", err)
	}
	m, err := hashmap.New(rt, 256, 64)
	if err != nil {
		t.Fatalf("hashmap: %v", err)
	}
	th, err := rt.NewThread()
	if err != nil {
		t.Fatalf("thread: %v", err)
	}
	for k := uint64(0); k < 20; k++ {
		if err := m.Put(th, k, k*3); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	// The legacy format: root IS the map descriptor, no directory.
	heap.SetRoot(m.Ptr())
	dev.FlushAll()

	dev.Crash(nvm.CrashOptions{RescueFraction: 1})
	dev.Restart()
	s, err := Reattach(dev, WithBuckets(256, 64))
	if err != nil {
		t.Fatalf("Reattach legacy heap: %v", err)
	}
	if s.List == nil {
		t.Fatal("upgrade did not create a skip list")
	}
	if s.List.Len() != 0 {
		t.Fatalf("upgraded list should be empty, has %d", s.List.Len())
	}
	th2, _ := s.RT.NewThread()
	for k := uint64(0); k < 20; k++ {
		if v, ok, err := s.Map.Get(th2, k); err != nil || !ok || v != k*3 {
			t.Fatalf("map get %d after upgrade = %d,%v,%v", k, v, ok, err)
		}
	}
	// The upgrade is durable: a second crash+reattach opens the
	// directory path (list contents written now must survive).
	if _, err := s.List.Put(7, 700); err != nil {
		t.Fatalf("list put after upgrade: %v", err)
	}
	s2, err := s.CrashReattach(nvm.CrashOptions{RescueFraction: 1})
	if err != nil {
		t.Fatalf("CrashReattach after upgrade: %v", err)
	}
	if v, ok := s2.List.Get(7); !ok || v != 700 {
		t.Fatalf("list get after second crash = %d,%v", v, ok)
	}
	th3, _ := s2.RT.NewThread()
	if v, ok, err := s2.Map.Get(th3, 19); err != nil || !ok || v != 19*3 {
		t.Fatalf("map get after second crash = %d,%v,%v", v, ok, err)
	}
}
