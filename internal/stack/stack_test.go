package stack

import (
	"errors"
	"testing"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

func TestNewBuildsWorkingStack(t *testing.T) {
	s, err := New(WithDeviceWords(1 << 18))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.RT == nil || s.Map == nil {
		t.Fatal("full stack missing runtime or map")
	}
	if s.Mode() != atlas.ModeTSP {
		t.Fatalf("default mode = %v, want ModeTSP", s.Mode())
	}
	th, err := s.RT.NewThread()
	if err != nil {
		t.Fatalf("thread: %v", err)
	}
	if err := s.Map.Put(th, 1, 100); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, ok, err := s.Map.Get(th, 1)
	if err != nil || !ok || v != 100 {
		t.Fatalf("get = %d,%v,%v, want 100,true,nil", v, ok, err)
	}
	// The root must already be published and the setup durable: a crash
	// right now with no rescue still finds the (empty-but-formatted)
	// setup state.
	if s.Heap.Root().IsNil() {
		t.Fatal("root not published by New")
	}
}

func TestModeOffIsRespected(t *testing.T) {
	// Regression for the zero-value Config bug: atlas.ModeOff == 0 used
	// to be indistinguishable from "unset" and was rewritten to ModeTSP.
	s, err := New(WithMode(atlas.ModeOff), WithDeviceWords(1<<16))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := s.RT.Mode(); got != atlas.ModeOff {
		t.Fatalf("runtime mode = %v, want ModeOff", got)
	}
}

func TestCrashReattachPreservesCommittedState(t *testing.T) {
	s, err := New(WithDeviceWords(1 << 18))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	th, err := s.RT.NewThread()
	if err != nil {
		t.Fatalf("thread: %v", err)
	}
	for k := uint64(0); k < 100; k++ {
		if err := s.Map.Put(th, k, k*7); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	s2, err := s.CrashReattach(nvm.CrashOptions{RescueFraction: 1})
	if err != nil {
		t.Fatalf("CrashReattach: %v", err)
	}
	if _, err := s2.Map.Verify(); err != nil {
		t.Fatalf("verify after crash: %v", err)
	}
	th2, err := s2.RT.NewThread()
	if err != nil {
		t.Fatalf("thread after crash: %v", err)
	}
	for k := uint64(0); k < 100; k++ {
		v, ok, err := s2.Map.Get(th2, k)
		if err != nil || !ok || v != k*7 {
			t.Fatalf("get %d after crash = %d,%v,%v, want %d,true,nil", k, v, ok, err, k*7)
		}
	}
	// The rebuilt stack crashes and reattaches again: the retained
	// config makes repeated cycles identical.
	s3, err := s2.CrashReattach(nvm.CrashOptions{RescueFraction: 1})
	if err != nil {
		t.Fatalf("second CrashReattach: %v", err)
	}
	th3, _ := s3.RT.NewThread()
	if v, ok, _ := s3.Map.Get(th3, 99); !ok || v != 99*7 {
		t.Fatalf("get after second crash = %d,%v", v, ok)
	}
}

func TestHeapOnlyStack(t *testing.T) {
	s, err := New(HeapOnly(), WithDeviceWords(1<<16))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.RT != nil || s.Map != nil {
		t.Fatal("heap-only stack grew a runtime or map")
	}
	p, err := s.Heap.Alloc(2)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	s.Heap.Store(p, 0, 42)
	s.Heap.SetRoot(p)
	s.Dev.CrashRescue()
	s.Dev.Restart()
	s2, err := Reattach(s.Dev, HeapOnly())
	if err != nil {
		t.Fatalf("Reattach: %v", err)
	}
	root := s2.Heap.Root()
	if root != p {
		t.Fatalf("root = %d, want %d", root, p)
	}
	if got := s2.Heap.Load(root, 0); got != 42 {
		t.Fatalf("load = %d, want 42", got)
	}
	var _ pheap.Ptr = root
}

func TestReattachRollsBackTornUpdate(t *testing.T) {
	// The full Section-4.2 shape through the stack API: a torn update
	// inside an OCS, a crash with TSP rescue, and Reattach's recovery
	// rolling it back to a verifiable state.
	s, err := New(WithDeviceWords(1 << 18))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	th, _ := s.RT.NewThread()
	if err := s.Map.Put(th, 3, 1000); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Map.TornUpdate(th, 3, 250); err != nil {
		t.Fatalf("torn update: %v", err)
	}
	s2, err := s.CrashReattach(nvm.CrashOptions{RescueFraction: 1})
	if err != nil {
		t.Fatalf("CrashReattach: %v", err)
	}
	if _, err := s2.Map.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if s2.Recovery.UndoApplied == 0 {
		t.Fatalf("recovery report shows no rollback: %+v", s2.Recovery)
	}
	th2, _ := s2.RT.NewThread()
	if v, ok, _ := s2.Map.Get(th2, 3); !ok || v != 1000 {
		t.Fatalf("key 3 after rollback = %d,%v, want 1000,true", v, ok)
	}
}

func TestReattachWithoutRecoverFailsInsideAtlas(t *testing.T) {
	// Sanity: the stack API owns the recovery ordering. Reattaching the
	// raw pieces by hand without Recover is exactly the bug class the
	// package exists to prevent; atlas.New refuses residual logs.
	s, err := New(WithDeviceWords(1 << 18))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	th, _ := s.RT.NewThread()
	_ = s.Map.TornUpdate(th, 1, 2)
	s.Dev.CrashRescue()
	s.Dev.Restart()
	heap, err := pheap.Open(s.Dev)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := atlas.New(heap, atlas.ModeTSP, atlas.Options{MaxThreads: 16}); err == nil {
		t.Fatal("atlas.New accepted a heap with residual logs; expected refusal")
	} else if errors.Is(err, nil) {
		t.Fatal("unreachable")
	}
}

// TestDurableEpochSurvivesCrash pins the epoch-frontier contract: the
// frontier is durable the moment SetDurableEpoch returns, with no
// rescue required (RescueFraction 0), because the store is flushed
// eagerly. It must also survive repeated crash cycles and never move
// backwards.
func TestDurableEpochSurvivesCrash(t *testing.T) {
	s, err := New(WithDeviceWords(1 << 18))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := s.DurableEpoch(); got != 0 {
		t.Fatalf("fresh DurableEpoch = %d, want 0", got)
	}
	s.SetDurableEpoch(7)
	if got := s.DurableEpoch(); got != 7 {
		t.Fatalf("DurableEpoch = %d, want 7", got)
	}
	s2, err := s.CrashReattach(nvm.CrashOptions{RescueFraction: 0})
	if err != nil {
		t.Fatalf("CrashReattach: %v", err)
	}
	if got := s2.DurableEpoch(); got != 7 {
		t.Fatalf("DurableEpoch after crash = %d, want 7", got)
	}
	s2.SetDurableEpoch(19)
	s3, err := s2.CrashReattach(nvm.CrashOptions{RescueFraction: 1})
	if err != nil {
		t.Fatalf("second CrashReattach: %v", err)
	}
	if got := s3.DurableEpoch(); got != 19 {
		t.Fatalf("DurableEpoch after second crash = %d, want 19", got)
	}
}

// TestDurableEpochHeapOnlyNoop pins the heap-only degradation: no
// anchor, reads return 0, writes are dropped rather than panicking.
func TestDurableEpochHeapOnlyNoop(t *testing.T) {
	s, err := New(HeapOnly(), WithDeviceWords(1<<16))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.SetDurableEpoch(5) // must not panic
	if got := s.DurableEpoch(); got != 0 {
		t.Fatalf("heap-only DurableEpoch = %d, want 0", got)
	}
}
