package harness

import (
	"fmt"
)

// InvariantReport is the recovery observer's verdict on a quiescent
// store, per Section 5.1's two correctness invariants:
//
//	Equation 1:  0 <= Σ c1,t − Σ c2,t <= T
//	Equation 2:  Σ c1,t >= Σ_{k∈H} map[k] >= Σ c2,t
//
// plus the per-thread strengthening c2,t <= c1,t <= c2,t + 1 (each
// thread's iteration is at most one step ahead of its own commit), and a
// structural verification of the map implementation itself.
type InvariantReport struct {
	SumC1       uint64
	SumC2       uint64
	SumHigh     uint64
	PerThreadOK bool
	Eq1OK       bool
	Eq2OK       bool
	StructureOK bool
	StructErr   error
}

// OK reports whether every invariant held.
func (r InvariantReport) OK() bool {
	return r.PerThreadOK && r.Eq1OK && r.Eq2OK && r.StructureOK
}

// String renders the report for logs.
func (r InvariantReport) String() string {
	return fmt.Sprintf("invariants{Σc1=%d Σc2=%d ΣH=%d perThread=%v eq1=%v eq2=%v structure=%v}",
		r.SumC1, r.SumC2, r.SumHigh, r.PerThreadOK, r.Eq1OK, r.Eq2OK, r.StructureOK)
}

// Err returns a descriptive error when any invariant failed, nil
// otherwise.
func (r InvariantReport) Err() error {
	if r.OK() {
		return nil
	}
	if !r.StructureOK {
		return fmt.Errorf("harness: structural verification failed: %w", r.StructErr)
	}
	return fmt.Errorf("harness: invariants violated: %s", r)
}

// checkInvariants runs the recovery observer over a quiescent store.
func checkInvariants(d *deployment) InvariantReport {
	var rep InvariantReport
	rep.PerThreadOK = true
	for t := 0; t < d.cfg.Threads; t++ {
		c1, _ := d.store.GetQuiescent(KeyC1(t))
		c2, _ := d.store.GetQuiescent(KeyC2(t))
		rep.SumC1 += c1
		rep.SumC2 += c2
		if !(c2 <= c1 && c1 <= c2+1) {
			rep.PerThreadOK = false
		}
	}
	lo := HighBase(d.cfg.Threads)
	rep.SumHigh = d.store.SumRange(lo, lo+uint64(d.cfg.HighKeys))
	diff := int64(rep.SumC1) - int64(rep.SumC2)
	rep.Eq1OK = diff >= 0 && diff <= int64(d.cfg.Threads)
	rep.Eq2OK = rep.SumC1 >= rep.SumHigh && rep.SumHigh >= rep.SumC2
	if err := d.store.VerifyStructure(); err != nil {
		rep.StructureOK = false
		rep.StructErr = err
	} else {
		rep.StructureOK = true
	}
	return rep
}
