package harness

import (
	"errors"

	"tsp/internal/atlas"
	"tsp/internal/hashmap"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/skiplist"
	"tsp/internal/stack"
)

// kvStore abstracts the two map implementations behind the operations
// the workload needs. Implementations return ErrTerminated when the
// simulated machine has crashed, so workers wind down like killed
// threads.
type kvStore interface {
	// Set stores v under k as one atomic, isolated operation.
	Set(w *worker, k, v uint64) error
	// Inc adds delta to the value under k, inserting if absent.
	Inc(w *worker, k, delta uint64) error
	// SumRange sums the values of all keys in [lo, hi) on a quiescent
	// store (the recovery observer's aggregate read).
	SumRange(lo, hi uint64) uint64
	// GetQuiescent reads one key without isolation (quiescent store).
	GetQuiescent(k uint64) (uint64, bool)
	// VerifyStructure checks implementation-specific invariants on a
	// quiescent store.
	VerifyStructure() error
}

// ErrTerminated reports that a worker observed the crash and stopped,
// mirroring a thread terminated by SIGKILL.
var ErrTerminated = errors.New("harness: worker terminated by crash")

// worker is one simulated application thread.
type worker struct {
	idx      int
	thread   *atlas.Thread // nil for the non-blocking variant
	rngState uint64
	iters    uint64 // completed iterations (volatile, for throughput)
}

// nextRand is a thread-local splitmix64 step.
func (w *worker) nextRand() uint64 {
	w.rngState += 0x9e3779b97f4a7c15
	x := w.rngState
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// --- mutex-based adapter ---

type mutexStore struct {
	m *hashmap.Map
}

func (s *mutexStore) Set(w *worker, k, v uint64) error {
	return s.m.Put(w.thread, k, v)
}

func (s *mutexStore) Inc(w *worker, k, delta uint64) error {
	_, err := s.m.Inc(w.thread, k, delta)
	return err
}

func (s *mutexStore) SumRange(lo, hi uint64) uint64 {
	var sum uint64
	s.m.Range(func(k, v uint64) bool {
		if k >= lo && k < hi {
			sum += v
		}
		return true
	})
	return sum
}

func (s *mutexStore) GetQuiescent(k uint64) (uint64, bool) {
	var val uint64
	found := false
	s.m.Range(func(key, v uint64) bool {
		if key == k {
			val, found = v, true
			return false
		}
		return true
	})
	return val, found
}

func (s *mutexStore) VerifyStructure() error {
	_, err := s.m.Verify()
	return err
}

// --- non-blocking adapter ---

type nonBlockingStore struct {
	l *skiplist.List
}

func (s *nonBlockingStore) Set(w *worker, k, v uint64) error {
	_, err := s.l.Put(k, v)
	if errors.Is(err, skiplist.ErrCrashed) {
		return ErrTerminated
	}
	return err
}

func (s *nonBlockingStore) Inc(w *worker, k, delta uint64) error {
	_, err := s.l.Inc(k, delta)
	if errors.Is(err, skiplist.ErrCrashed) {
		return ErrTerminated
	}
	return err
}

func (s *nonBlockingStore) SumRange(lo, hi uint64) uint64 {
	var sum uint64
	s.l.Range(func(k, v uint64) bool {
		if k >= lo && k < hi {
			sum += v
		}
		return true
	})
	return sum
}

func (s *nonBlockingStore) GetQuiescent(k uint64) (uint64, bool) {
	return s.l.Get(k)
}

func (s *nonBlockingStore) VerifyStructure() error {
	_, err := s.l.Verify()
	return err
}

// deployment bundles everything a run needs.
type deployment struct {
	cfg   Config
	dev   *nvm.Device
	heap  *pheap.Heap
	rt    *atlas.Runtime // nil for NonBlocking
	store kvStore
}

// deviceConfig collects the machine-dependent device knobs.
func (c Config) deviceConfig() nvm.Config {
	return nvm.Config{
		Words:     c.DeviceWords,
		FlushCost: c.FlushCost,
		MissCost:  c.MissCost,
		MissLines: c.MissLines,
		Evictor:   c.Evictor,
	}
}

// stackOptions maps the harness configuration onto the shared
// stack-construction API used by the mutex-based variants.
func (c Config) stackOptions() []stack.Option {
	return []stack.Option{
		stack.WithDeviceConfig(c.deviceConfig()),
		stack.WithMode(c.Variant.AtlasMode()),
		stack.WithMaxThreads(c.Threads),
		stack.WithLogEntries(1 << 10),
		stack.WithLogEveryStore(c.LogEveryStore),
		stack.WithBuckets(c.Buckets, c.BucketsPerMutex),
	}
}

// build constructs a fresh device, heap and store per the configuration
// and makes the initialized (pre-workload) state durable.
func build(cfg Config) (*deployment, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Variant {
	case NonBlocking:
		// The non-blocking variant has no runtime and no map: a
		// heap-only stack carries the skip list directly.
		st, err := stack.New(stack.HeapOnly(), stack.WithDeviceConfig(cfg.deviceConfig()))
		if err != nil {
			return nil, err
		}
		l, err := skiplist.New(st.Heap, cfg.SkipLevels)
		if err != nil {
			return nil, err
		}
		st.Heap.SetRoot(l.Ptr())
		// Setup is not part of the crash window: make it durable.
		st.Dev.FlushAll()
		return &deployment{cfg: cfg, dev: st.Dev, heap: st.Heap, store: &nonBlockingStore{l: l}}, nil
	default:
		st, err := stack.New(cfg.stackOptions()...)
		if err != nil {
			return nil, err
		}
		return &deployment{cfg: cfg, dev: st.Dev, heap: st.Heap, rt: st.RT, store: &mutexStore{m: st.Map}}, nil
	}
}

// newWorker registers worker idx with the deployment.
func (d *deployment) newWorker(idx int) (*worker, error) {
	w := &worker{idx: idx, rngState: uint64(d.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(idx)<<32}
	if d.rt != nil {
		th, err := d.rt.NewThread()
		if err != nil {
			return nil, err
		}
		w.thread = th
	}
	return w, nil
}

// iterate performs one workload iteration for worker w (Section 5.1):
// set c1 to i, increment a uniformly random high key, set c2 to i. Each
// step is an atomic, isolated operation on the store.
func (d *deployment) iterate(w *worker, i uint64) error {
	t := w.idx
	if err := d.store.Set(w, KeyC1(t), i); err != nil {
		return err
	}
	hk := HighBase(d.cfg.Threads) + w.nextRand()%uint64(d.cfg.HighKeys)
	if err := d.store.Inc(w, hk, 1); err != nil {
		return err
	}
	if err := d.store.Set(w, KeyC2(t), i); err != nil {
		return err
	}
	w.iters++
	return nil
}
