package harness

import (
	"strings"
	"testing"
	"time"

	"tsp/internal/platform"
)

// fastCfg returns a configuration small enough for unit tests.
func fastCfg(v Variant) Config {
	return Config{
		Variant:     v,
		Threads:     4,
		HighKeys:    1 << 10,
		Buckets:     1 << 10,
		DeviceWords: 1 << 21,
		Duration:    30 * time.Millisecond,
		Seed:        1,
	}
}

func fastCrash(frac float64) CrashOptions {
	return CrashOptions{
		RescueFraction: frac,
		MinRun:         1 * time.Millisecond,
		MaxRun:         8 * time.Millisecond,
	}
}

func TestThroughputAllVariantsProduceWork(t *testing.T) {
	for _, v := range AllVariants() {
		t.Run(v.String(), func(t *testing.T) {
			res, err := RunThroughput(fastCfg(v))
			if err != nil {
				t.Fatalf("RunThroughput: %v", err)
			}
			if res.Iterations == 0 {
				t.Fatal("no iterations completed")
			}
			if res.IterPerSec() <= 0 {
				t.Fatalf("nonpositive throughput: %s", res)
			}
			if !strings.Contains(res.String(), "M iter/s") {
				t.Fatalf("malformed result string: %q", res)
			}
		})
	}
}

func TestCrashRecoveryTSPVariants(t *testing.T) {
	// The Section 5.2 claim: with a full TSP rescue, all fortified (and
	// the non-blocking) variants recover consistently from crashes at
	// arbitrary instants.
	for _, v := range []Variant{MutexAtlasTSP, MutexAtlasNonTSP, NonBlocking} {
		t.Run(v.String(), func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				cfg := fastCfg(v)
				cfg.Seed = seed
				res, err := RunCrash(cfg, fastCrash(1))
				if err != nil {
					t.Fatalf("RunCrash: %v", err)
				}
				if !res.OK() {
					t.Fatalf("seed %d: inconsistent recovery: %s (recovery err: %v)",
						seed, res, res.RecoveryErr)
				}
				if res.IterationsRun == 0 {
					t.Fatalf("seed %d: crash landed before any work", seed)
				}
			}
		})
	}
}

func TestCrashRecoveryNonTSPWithoutRescue(t *testing.T) {
	// The non-TSP configuration's raison d'être: it must recover even
	// when the crash rescues nothing.
	for seed := int64(0); seed < 5; seed++ {
		cfg := fastCfg(MutexAtlasNonTSP)
		cfg.Seed = seed
		res, err := RunCrash(cfg, fastCrash(0))
		if err != nil {
			t.Fatalf("RunCrash: %v", err)
		}
		if !res.OK() {
			t.Fatalf("seed %d: non-TSP mode failed a no-rescue crash: %s (recovery err: %v)",
				seed, res, res.RecoveryErr)
		}
	}
}

func TestUnfortifiedSurvivesCrashBetweenOperations(t *testing.T) {
	// Even unfortified code recovers if the crash happens to land
	// between OCSes on every thread — the runs here merely must not
	// error; consistency is not guaranteed and not asserted.
	cfg := fastCfg(MutexNoAtlas)
	if _, err := RunCrash(cfg, fastCrash(1)); err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
}

func TestTSPModeWithPartialRescueEventuallyInconsistent(t *testing.T) {
	// The hazard the paper's framework predicts: Atlas TSP mode relies
	// on a COMPLETE rescue. An interrupted rescue (or background
	// eviction) that persists an arbitrary subset of lines leaves some
	// uncommitted data durable with its undo records lost, and recovery
	// cannot restore consistency. (A total loss, rescue=0, is NOT the
	// dangerous case: it reverts to the last fully durable state.)
	sawInconsistent := false
	for seed := int64(0); seed < 20 && !sawInconsistent; seed++ {
		cfg := fastCfg(MutexAtlasTSP)
		cfg.Seed = seed
		res, err := RunCrash(cfg, fastCrash(0.5))
		if err != nil {
			t.Fatalf("RunCrash: %v", err)
		}
		if !res.OK() {
			sawInconsistent = true
		}
	}
	if !sawInconsistent {
		t.Skip("no inconsistency observed in 20 runs; timing-dependent, not a failure")
	}
}

func TestNonTSPSurvivesPartialRescue(t *testing.T) {
	// The non-TSP design's durability never depends on the rescue, so
	// ANY rescue fraction must recover consistently.
	for _, frac := range []float64{0, 0.3, 0.7, 1} {
		for seed := int64(0); seed < 3; seed++ {
			cfg := fastCfg(MutexAtlasNonTSP)
			cfg.Seed = seed
			res, err := RunCrash(cfg, fastCrash(frac))
			if err != nil {
				t.Fatalf("RunCrash: %v", err)
			}
			if !res.OK() {
				t.Fatalf("frac=%v seed=%d: inconsistent: %s (recovery err: %v)",
					frac, seed, res, res.RecoveryErr)
			}
		}
	}
}

func TestUnfortifiedWithPartialRescueEventuallyInconsistent(t *testing.T) {
	// The motivating hazard for Section 4.2: unfortified mutex code plus
	// a partial rescue leaves torn critical sections visible.
	sawInconsistent := false
	for seed := int64(0); seed < 20 && !sawInconsistent; seed++ {
		cfg := fastCfg(MutexNoAtlas)
		cfg.Seed = seed
		res, err := RunCrash(cfg, fastCrash(0.5))
		if err != nil {
			t.Fatalf("RunCrash: %v", err)
		}
		if !res.OK() {
			sawInconsistent = true
		}
	}
	if !sawInconsistent {
		t.Skip("no inconsistency observed in 20 runs; timing-dependent, not a failure")
	}
}

func TestCampaignAggregates(t *testing.T) {
	cfg := fastCfg(NonBlocking)
	camp, err := Campaign(cfg, fastCrash(1), 5)
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if !camp.OK() {
		t.Fatalf("campaign found inconsistencies: %s (failures: %v)", camp, camp.Failures)
	}
	if camp.Runs != 5 || camp.Consistent != 5 {
		t.Fatalf("unexpected counts: %s", camp)
	}
}

func TestTable1SmokeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table run in -short mode")
	}
	prof := platform.Unit()
	prof.Threads = 2
	rows, err := Table1([]platform.Profile{prof}, 20*time.Millisecond, 7)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	for _, v := range AllVariants() {
		if rows[0].Results[v].Iterations == 0 {
			t.Fatalf("variant %s did no work", v)
		}
	}
	out := FormatTable1(rows)
	for _, want := range []string{"no Atlas", "log only", "log + flush", "Non-Blocking", "TSP speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatTable1 output missing %q:\n%s", want, out)
		}
	}
}

func TestLatencyRunProducesDistribution(t *testing.T) {
	res, err := RunLatency(fastCfg(MutexAtlasTSP))
	if err != nil {
		t.Fatalf("RunLatency: %v", err)
	}
	if res.Iterations == 0 {
		t.Fatal("no latency samples collected")
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Fatalf("distribution not ordered: %s", res)
	}
	if !strings.Contains(res.String(), "p99=") {
		t.Fatalf("malformed result string: %q", res)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Variant: Variant(9), Threads: 1, HighKeys: 1, DeviceWords: 1 << 20},
		{Variant: NonBlocking, Threads: -1, HighKeys: 1, DeviceWords: 1 << 20},
		{Variant: NonBlocking, Threads: 1, HighKeys: 0, DeviceWords: 1 << 20},
		{Variant: NonBlocking, Threads: 1, HighKeys: 1, DeviceWords: 16},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestKeySpaceLayout(t *testing.T) {
	// L and H must not overlap, and per-thread counters must be unique.
	const T = 8
	seen := map[uint64]bool{}
	for th := 0; th < T; th++ {
		for _, k := range []uint64{KeyC1(th), KeyC2(th)} {
			if seen[k] {
				t.Fatalf("duplicate counter key %d", k)
			}
			seen[k] = true
			if k >= HighBase(T) {
				t.Fatalf("counter key %d overlaps the high range", k)
			}
		}
	}
}

func TestVariantStrings(t *testing.T) {
	for _, v := range AllVariants() {
		if strings.HasPrefix(v.String(), "Variant(") {
			t.Errorf("missing name for variant %d", int(v))
		}
	}
}

func TestInvariantReportErr(t *testing.T) {
	good := InvariantReport{PerThreadOK: true, Eq1OK: true, Eq2OK: true, StructureOK: true}
	if err := good.Err(); err != nil {
		t.Fatalf("Err on good report: %v", err)
	}
	bad := InvariantReport{PerThreadOK: true, Eq1OK: false, Eq2OK: true, StructureOK: true}
	if err := bad.Err(); err == nil {
		t.Fatal("Err on bad report returned nil")
	}
}
