package harness

import (
	"fmt"
	"strings"
	"time"

	"tsp/internal/platform"
	"tsp/internal/telemetry"
)

// Table1Row holds the four variant measurements for one platform.
type Table1Row struct {
	Profile platform.Profile
	Results map[Variant]ThroughputResult
}

// Table1 reproduces the paper's Table 1: for each platform profile,
// measure the throughput of the four variants with the profile's thread
// count, for `duration` per cell.
func Table1(profiles []platform.Profile, duration time.Duration, seed int64) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(profiles))
	for _, prof := range profiles {
		row := Table1Row{Profile: prof, Results: map[Variant]ThroughputResult{}}
		for _, v := range AllVariants() {
			cfg := Config{Variant: v, Duration: duration, Seed: seed}.FromProfile(prof)
			res, err := RunThroughput(cfg)
			if err != nil {
				return nil, fmt.Errorf("table1 %s/%s: %w", prof.Name, v, err)
			}
			row.Results[v] = res
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Overheads derives the percentages the paper quotes from a row:
// log-only and log+flush overhead relative to the unfortified baseline,
// and the TSP-vs-non-TSP speedup.
func (r Table1Row) Overheads() (logOnlyOverhead, logFlushOverhead, tspSpeedup float64) {
	base := r.Results[MutexNoAtlas].IterPerSec()
	logOnly := r.Results[MutexAtlasTSP].IterPerSec()
	logFlush := r.Results[MutexAtlasNonTSP].IterPerSec()
	if base > 0 {
		logOnlyOverhead = 1 - logOnly/base
		logFlushOverhead = 1 - logFlush/base
	}
	if logFlush > 0 {
		tspSpeedup = logOnly/logFlush - 1
	}
	return
}

// FormatTable1 renders rows in the layout of the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s | %14s %14s %14s | %14s\n",
		"Platform", "Threads", "no Atlas", "log only", "log + flush", "Non-Blocking")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 96))
	for _, row := range rows {
		fmt.Fprintf(&b, "%-10s %-8d |", row.Profile.Name, row.Profile.Threads)
		for _, v := range []Variant{MutexNoAtlas, MutexAtlasTSP, MutexAtlasNonTSP} {
			fmt.Fprintf(&b, " %11.3f M/s", row.Results[v].IterPerSec()/1e6)
		}
		fmt.Fprintf(&b, " | %11.3f M/s\n", row.Results[NonBlocking].IterPerSec()/1e6)
	}
	fmt.Fprintf(&b, "\n")
	for _, row := range rows {
		lo, lf, sp := row.Overheads()
		fmt.Fprintf(&b, "%-10s: log-only overhead %.0f%%, log+flush overhead %.0f%%, TSP speedup over non-TSP %.0f%%\n",
			row.Profile.Name, lo*100, lf*100, sp*100)
	}
	return b.String()
}

// CampaignResult aggregates a fault-injection campaign.
type CampaignResult struct {
	Variant        Variant
	RescueFraction float64
	Runs           int
	Consistent     int
	Failures       []CrashResult // the inconsistent runs, if any
}

// OK reports whether every injected crash recovered consistently.
func (c CampaignResult) OK() bool { return c.Consistent == c.Runs }

// String renders the campaign outcome.
func (c CampaignResult) String() string {
	return fmt.Sprintf("%-16s rescue=%.2f: %d/%d crashes recovered consistently",
		c.Variant, c.RescueFraction, c.Consistent, c.Runs)
}

// Counters exports the campaign's outcome in the telemetry registry's
// campaign_* vocabulary, so campaign reports merge (Snapshot.Add) and
// diff (Snapshot.Sub) like any server stats section. Every run injects
// exactly one crash, so campaign_crashes equals campaign_runs here.
func (c CampaignResult) Counters() telemetry.Snapshot {
	var cs telemetry.CampaignStats
	cs.Record(c.Runs, c.Consistent)
	cs.Crashes.Add(uint64(c.Runs))
	return cs.Counters()
}

// Campaign injects n crashes into the configured variant and reports how
// many recovered to a consistent state — the Section 5.2 fault-injection
// experiment ("hundreds of injected process crashes").
func Campaign(cfg Config, opts CrashOptions, n int) (CampaignResult, error) {
	res := CampaignResult{Variant: cfg.Variant, RescueFraction: opts.RescueFraction, Runs: n}
	for i := 0; i < n; i++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + int64(i)*1000003
		r, err := RunCrash(runCfg, opts)
		if err != nil {
			return res, fmt.Errorf("campaign run %d: %w", i, err)
		}
		if r.OK() {
			res.Consistent++
		} else {
			res.Failures = append(res.Failures, r)
		}
	}
	return res, nil
}
