package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/skiplist"
	"tsp/internal/stack"
)

// ThroughputResult reports one failure-free measurement run.
type ThroughputResult struct {
	Variant    Variant
	Threads    int
	Iterations uint64        // total completed worker iterations
	Elapsed    time.Duration // wall-clock measurement window
	DevStats   nvm.StatsSnapshot
}

// IterPerSec returns the Table-1 metric: total worker iterations per
// second (each iteration performs three atomic map operations).
func (r ThroughputResult) IterPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Iterations) / r.Elapsed.Seconds()
}

// String renders the result the way Table 1 does (millions of
// iterations per second).
func (r ThroughputResult) String() string {
	return fmt.Sprintf("%-16s %d threads: %8.3f M iter/s (%d iters in %v)",
		r.Variant, r.Threads, r.IterPerSec()/1e6, r.Iterations, r.Elapsed.Round(time.Millisecond))
}

// RunThroughput measures failure-free throughput of the configured
// variant for cfg.Duration.
func RunThroughput(cfg Config) (ThroughputResult, error) {
	cfg.fillDefaults()
	d, err := build(cfg)
	if err != nil {
		return ThroughputResult{}, err
	}
	// The evictor stays off during throughput measurement: on real
	// hardware cache write-back is free background work by the memory
	// system, but the simulated evictor is a goroutine that would steal
	// CPU from the workers and distort exactly the ratios Table 1
	// measures. Crash runs keep it (RunCrash), where its effect — an
	// arbitrary subset of stores already durable at the crash — is the
	// point.

	workers := make([]*worker, cfg.Threads)
	for i := range workers {
		w, err := d.newWorker(i)
		if err != nil {
			return ThroughputResult{}, err
		}
		workers[i] = w
	}

	stop := make(chan struct{})
	errs := make(chan error, cfg.Threads)
	var wg sync.WaitGroup
	statsBefore := d.dev.Stats()
	start := time.Now()
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := d.iterate(w, i); err != nil {
					if !errors.Is(err, ErrTerminated) {
						errs <- err
					}
					return
				}
			}
		}(w)
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return ThroughputResult{}, err
	}

	res := ThroughputResult{
		Variant:  cfg.Variant,
		Threads:  cfg.Threads,
		Elapsed:  elapsed,
		DevStats: d.dev.Stats().Sub(statsBefore),
	}
	for _, w := range workers {
		res.Iterations += w.iters
	}
	return res, nil
}

// CrashResult reports one fault-injection run.
type CrashResult struct {
	Variant        Variant
	RescueFraction float64
	IterationsRun  uint64 // iterations completed before the crash signal
	Recovered      bool   // recovery machinery completed without error
	Invariants     InvariantReport
	RecoveryErr    error
}

// OK reports whether the run recovered to a consistent state.
func (r CrashResult) OK() bool { return r.Recovered && r.Invariants.OK() }

// String renders the result for logs.
func (r CrashResult) String() string {
	verdict := "CONSISTENT"
	if !r.OK() {
		verdict = "INCONSISTENT"
	}
	return fmt.Sprintf("%-16s rescue=%.2f iters=%d -> %s (%s)",
		r.Variant, r.RescueFraction, r.IterationsRun, verdict, r.Invariants)
}

// CrashOptions parameterizes fault injection.
type CrashOptions struct {
	// RescueFraction is passed to the device crash: 1 = full TSP rescue,
	// 0 = no rescue.
	RescueFraction float64

	// MinRun/MaxRun bound the uniformly random instant at which the
	// crash is injected into the running workload. Defaults 2ms/20ms.
	MinRun, MaxRun time.Duration
}

func (o *CrashOptions) fillDefaults() {
	if o.MinRun == 0 {
		o.MinRun = 2 * time.Millisecond
	}
	if o.MaxRun == 0 {
		o.MaxRun = 20 * time.Millisecond
	}
}

// RunCrash executes the Section 5 fault-injection experiment once:
// start the workload, crash the machine at a random instant (mimicking
// the paper's SIGKILL, which abruptly terminates all threads), run
// recovery, and let the recovery observer verify the invariants.
func RunCrash(cfg Config, opts CrashOptions) (CrashResult, error) {
	cfg.fillDefaults()
	opts.fillDefaults()
	d, err := build(cfg)
	if err != nil {
		return CrashResult{}, err
	}
	d.dev.StartEvictor()

	workers := make([]*worker, cfg.Threads)
	for i := range workers {
		w, err := d.newWorker(i)
		if err != nil {
			return CrashResult{}, err
		}
		workers[i] = w
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := d.iterate(w, i); err != nil {
					return // terminated by crash (or allocator exhaustion post-crash)
				}
			}
		}(w)
	}

	// Crash at a uniformly random instant while the workload is hot.
	rng := rand.New(rand.NewSource(cfg.Seed))
	runFor := opts.MinRun + time.Duration(rng.Int63n(int64(opts.MaxRun-opts.MinRun)+1))
	time.Sleep(runFor)
	d.dev.StopEvictor() // the cache controller dies with the machine
	d.dev.Crash(nvm.CrashOptions{RescueFraction: opts.RescueFraction, Seed: cfg.Seed})
	close(stop)
	wg.Wait()

	res := CrashResult{Variant: cfg.Variant, RescueFraction: opts.RescueFraction}
	for _, w := range workers {
		res.IterationsRun += w.iters
	}

	// New incarnation: restart, recover, observe.
	d.dev.Restart()
	d2, err := recoverDeployment(cfg, d.dev)
	if err != nil {
		res.RecoveryErr = err
		return res, nil
	}
	res.Recovered = true
	res.Invariants = checkInvariants(d2)
	return res, nil
}

// recoverDeployment reopens the heap, runs Atlas recovery (a no-op with
// GC for the non-blocking variant) and reattaches the store. The
// mutex-based variants go through the shared stack recovery path; the
// non-blocking variant has no runtime or map to rebuild, only the skip
// list at the root.
func recoverDeployment(cfg Config, dev *nvm.Device) (*deployment, error) {
	cfg.fillDefaults()
	switch cfg.Variant {
	case NonBlocking:
		heap, err := pheap.Open(dev)
		if err != nil {
			return nil, err
		}
		// Recover is a directory-less no-op here but still runs the
		// recovery-time GC the observer expects.
		if _, err := atlas.Recover(heap); err != nil {
			return nil, err
		}
		l, err := skiplist.Open(heap, heap.Root())
		if err != nil {
			return nil, err
		}
		return &deployment{cfg: cfg, dev: dev, heap: heap, store: &nonBlockingStore{l: l}}, nil
	default:
		st, err := stack.Reattach(dev, cfg.stackOptions()...)
		if err != nil {
			return nil, err
		}
		return &deployment{cfg: cfg, dev: st.Dev, heap: st.Heap, rt: st.RT, store: &mutexStore{m: st.Map}}, nil
	}
}
