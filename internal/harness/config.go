// Package harness implements the paper's Section 5 experimental
// methodology: the two-range map workload, its correctness invariants
// (Equations 1 and 2), throughput measurement for the four Table-1
// variants, and the fault-injection campaign with a recovery observer
// that verifies consistent recovery after every crash.
package harness

import (
	"errors"
	"fmt"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/platform"
)

// Variant is one of the four Table-1 configurations.
type Variant int

const (
	// MutexNoAtlas: the unfortified mutex-based map ("no Atlas").
	MutexNoAtlas Variant = iota
	// MutexAtlasTSP: Atlas with undo logging only ("log only") — the TSP
	// configuration.
	MutexAtlasTSP
	// MutexAtlasNonTSP: Atlas with logging and synchronous flushing
	// ("log + flush") — the non-TSP configuration.
	MutexAtlasNonTSP
	// NonBlocking: the lock-free skip list, no fortification whatsoever.
	NonBlocking
)

// String implements fmt.Stringer, matching the Table-1 column names.
func (v Variant) String() string {
	switch v {
	case MutexNoAtlas:
		return "mutex/no-atlas"
	case MutexAtlasTSP:
		return "mutex/log-only"
	case MutexAtlasNonTSP:
		return "mutex/log+flush"
	case NonBlocking:
		return "non-blocking"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// AllVariants lists the Table-1 columns in presentation order.
func AllVariants() []Variant {
	return []Variant{MutexNoAtlas, MutexAtlasTSP, MutexAtlasNonTSP, NonBlocking}
}

// AtlasMode maps the variant to its runtime mode (meaningless for
// NonBlocking).
func (v Variant) AtlasMode() atlas.Mode {
	switch v {
	case MutexAtlasTSP:
		return atlas.ModeTSP
	case MutexAtlasNonTSP:
		return atlas.ModeNonTSP
	default:
		return atlas.ModeOff
	}
}

// Config parameterizes one experiment run.
type Config struct {
	// Variant selects the map implementation and fortification.
	Variant Variant

	// Threads is the worker count T. Each worker owns two counters in
	// the low key range L.
	Threads int

	// HighKeys is |H|, the size of the upper key range hit by the
	// random increments.
	HighKeys int

	// Buckets and BucketsPerMutex shape the mutex-based map (ignored by
	// NonBlocking). Defaults: 1<<13 buckets, 1000 buckets/mutex.
	Buckets         int
	BucketsPerMutex int

	// SkipLevels is the skip list's maximum level (NonBlocking only).
	// Default 16.
	SkipLevels int

	// DeviceWords sizes the simulated NVM. Default 1<<22.
	DeviceWords int

	// FlushCost, MissCost, MissLines and Evictor come from a platform
	// profile (see internal/platform).
	FlushCost int
	MissCost  int
	MissLines int
	Evictor   nvm.EvictorConfig

	// LogEveryStore disables Atlas's first-store filter (ablation knob;
	// see atlas.Options.LogEveryStore).
	LogEveryStore bool

	// Duration bounds throughput runs; crash runs use CrashAfter.
	Duration time.Duration

	// Seed makes workload randomness reproducible.
	Seed int64
}

// FromProfile fills machine-dependent fields from a platform profile.
func (c Config) FromProfile(p platform.Profile) Config {
	c.Threads = p.Threads
	c.FlushCost = p.FlushCost
	c.MissCost = p.MissCost
	c.MissLines = p.MissLines
	c.Evictor = p.Evictor
	return c
}

func (c *Config) fillDefaults() {
	if c.Threads == 0 {
		c.Threads = 8
	}
	if c.HighKeys == 0 {
		c.HighKeys = 1 << 14
	}
	if c.Buckets == 0 {
		// With the paper's 1000-buckets-per-mutex striping, the bucket
		// count sets the lock count; 2^17 buckets gives ~131 stripe
		// locks, keeping 8 threads mostly uncontended as the paper's
		// "moderate-grain locking" intends.
		c.Buckets = 1 << 17
	}
	if c.BucketsPerMutex == 0 {
		c.BucketsPerMutex = 1000
	}
	if c.SkipLevels == 0 {
		c.SkipLevels = 16
	}
	if c.DeviceWords == 0 {
		c.DeviceWords = 1 << 22
	}
	if c.Duration == 0 {
		c.Duration = 200 * time.Millisecond
	}
}

// Validate rejects malformed configurations.
func (c Config) Validate() error {
	if c.Variant < MutexNoAtlas || c.Variant > NonBlocking {
		return fmt.Errorf("harness: unknown variant %d", int(c.Variant))
	}
	if c.Threads < 1 {
		return errors.New("harness: Threads must be positive")
	}
	if c.HighKeys < 1 {
		return errors.New("harness: HighKeys must be positive")
	}
	if c.DeviceWords < 1<<12 {
		return errors.New("harness: DeviceWords too small")
	}
	return nil
}

// Key-space layout (Section 5.1): the low range L holds two private
// counters per thread; the high range H starts right above it.

// KeyC1 returns thread t's first counter key (c1,t).
func KeyC1(t int) uint64 { return uint64(2 * t) }

// KeyC2 returns thread t's second counter key (c2,t).
func KeyC2(t int) uint64 { return uint64(2*t + 1) }

// HighBase returns the first key of the high range H for T threads.
func HighBase(threads int) uint64 { return uint64(2 * threads) }
