package harness

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tsp/internal/stats"
)

// LatencyResult reports the per-iteration latency distribution of one
// variant — an extension experiment the paper's framework implies but
// does not plot: preventive designs pay their synchronous flushes on the
// critical path of every update, which shows up in the tail; TSP designs
// defer that work to failure time, keeping the tail flat.
type LatencyResult struct {
	Variant    Variant
	Threads    int
	Iterations uint64
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	Max        time.Duration
	Mean       time.Duration
}

// String renders the distribution for reports.
func (r LatencyResult) String() string {
	return fmt.Sprintf("%-16s p50=%v p90=%v p99=%v max=%v mean=%v (n=%d)",
		r.Variant, r.P50, r.P90, r.P99, r.Max, r.Mean, r.Iterations)
}

// RunLatency measures per-iteration latency for cfg.Duration. Every
// iteration is timed; the distribution is aggregated across workers.
func RunLatency(cfg Config) (LatencyResult, error) {
	cfg.fillDefaults()
	d, err := build(cfg)
	if err != nil {
		return LatencyResult{}, err
	}
	// As in RunThroughput, the evictor stays off: it would steal CPU
	// from workers and contaminate the distribution.

	workers := make([]*worker, cfg.Threads)
	samples := make([]*stats.Sample, cfg.Threads)
	for i := range workers {
		w, err := d.newWorker(i)
		if err != nil {
			return LatencyResult{}, err
		}
		workers[i] = w
		samples[i] = &stats.Sample{}
	}

	stop := make(chan struct{})
	errs := make(chan error, cfg.Threads)
	var wg sync.WaitGroup
	for wi, w := range workers {
		wg.Add(1)
		go func(w *worker, sample *stats.Sample) {
			defer wg.Done()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if err := d.iterate(w, i); err != nil {
					if !errors.Is(err, ErrTerminated) {
						errs <- err
					}
					return
				}
				sample.Add(float64(time.Since(start)))
			}
		}(w, samples[wi])
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return LatencyResult{}, err
	}

	// Merge the per-worker samples.
	var all stats.Sample
	for _, s := range samples {
		all.Merge(s)
	}
	res := LatencyResult{
		Variant:    cfg.Variant,
		Threads:    cfg.Threads,
		Iterations: uint64(all.N()),
		P50:        time.Duration(all.Percentile(50)),
		P90:        time.Duration(all.Percentile(90)),
		P99:        time.Duration(all.Percentile(99)),
		Max:        time.Duration(all.Max()),
		Mean:       time.Duration(all.Mean()),
	}
	return res, nil
}
