// Package lfqueue implements a lock-free FIFO queue (Michael & Scott,
// PODC 1996) over the persistent heap — a second witness, beyond the
// skip list, for the paper's Section 4.1 claim: ANY non-blocking
// structure on a persistent heap gains crash resilience from Timely
// Sufficient Persistence alone. The queue takes no crash-consistency
// measures; every linearization point is a single CAS on a durable word,
// so a crash under a full rescue leaves a state from which the recovery
// observer simply resumes.
//
// Crash anatomy:
//
//   - enqueue linearizes at the CAS that links the node after the old
//     tail; a crash before it strands the node (recovery GC reclaims),
//     after it the element is in the queue. The tail pointer may lag —
//     a valid state the algorithm itself tolerates and repairs;
//   - dequeue linearizes at the head-advancing CAS; the bypassed node
//     becomes unreachable garbage for the recovery GC.
package lfqueue

import (
	"errors"
	"fmt"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// Descriptor layout (payload words):
const (
	descMagicWord = 0
	descHeadWord  = 1
	descTailWord  = 2
	descWords     = 3

	descMagic = 0x4c46_5155_4555_4531 // "LFQUEUE1"
)

// Node layout (payload words):
const (
	nodeValue = 0
	nodeNext  = 1
	nodeWords = 2
)

// Errors returned by the package.
var (
	ErrNotQueue = errors.New("lfqueue: pointer does not reference a queue descriptor")
	ErrCrashed  = errors.New("lfqueue: device crashed (thread terminated)")
	ErrEmpty    = errors.New("lfqueue: queue is empty")
)

// Queue is a handle onto a persistent lock-free queue. All methods are
// safe for concurrent use.
type Queue struct {
	heap *pheap.Heap
	dev  *nvm.Device
	desc pheap.Ptr
}

// New allocates an empty queue (head = tail = a sentinel node) and
// returns its handle.
func New(heap *pheap.Heap) (*Queue, error) {
	sentinel, err := heap.Alloc(nodeWords)
	if err != nil {
		return nil, err
	}
	desc, err := heap.Alloc(descWords)
	if err != nil {
		return nil, err
	}
	heap.Store(desc, descHeadWord, uint64(sentinel))
	heap.Store(desc, descTailWord, uint64(sentinel))
	heap.Store(desc, descMagicWord, descMagic)
	return &Queue{heap: heap, dev: heap.Device(), desc: desc}, nil
}

// Open attaches to an existing queue via its descriptor pointer.
func Open(heap *pheap.Heap, desc pheap.Ptr) (*Queue, error) {
	if desc.IsNil() || heap.Load(desc, descMagicWord) != descMagic {
		return nil, ErrNotQueue
	}
	q := &Queue{heap: heap, dev: heap.Device(), desc: desc}
	if pheap.Ptr(heap.Load(desc, descHeadWord)).IsNil() {
		return nil, fmt.Errorf("lfqueue: descriptor has nil head")
	}
	return q, nil
}

// Ptr returns the descriptor pointer for linking into root structures.
func (q *Queue) Ptr() pheap.Ptr { return q.desc }

func (q *Queue) headAddr() nvm.Addr { return q.desc.Addr() + descHeadWord }
func (q *Queue) tailAddr() nvm.Addr { return q.desc.Addr() + descTailWord }

func nextAddr(n pheap.Ptr) nvm.Addr { return n.Addr() + nodeNext }

// Enqueue appends v to the queue.
func (q *Queue) Enqueue(v uint64) error {
	node, err := q.heap.Alloc(nodeWords)
	if err != nil {
		return err
	}
	q.heap.Store(node, nodeValue, v)
	for {
		if q.dev.Crashed() {
			return ErrCrashed
		}
		tail := pheap.Ptr(q.dev.Load(q.tailAddr()))
		next := pheap.Ptr(q.dev.Load(nextAddr(tail)))
		if !next.IsNil() {
			// Tail lags; help swing it forward.
			q.dev.CAS(q.tailAddr(), uint64(tail), uint64(next))
			continue
		}
		// The linearization point (and, under TSP, the durability point).
		if q.dev.CAS(nextAddr(tail), 0, uint64(node)) {
			// Best-effort tail swing; failure is fine (helpers fix it).
			q.dev.CAS(q.tailAddr(), uint64(tail), uint64(node))
			return nil
		}
	}
}

// Dequeue removes and returns the oldest element. It returns ErrEmpty
// when the queue has none.
func (q *Queue) Dequeue() (uint64, error) {
	for {
		if q.dev.Crashed() {
			return 0, ErrCrashed
		}
		head := pheap.Ptr(q.dev.Load(q.headAddr()))
		tail := pheap.Ptr(q.dev.Load(q.tailAddr()))
		next := pheap.Ptr(q.dev.Load(nextAddr(head)))
		if next.IsNil() {
			return 0, ErrEmpty
		}
		if head == tail {
			// Tail lags behind a non-empty queue; help.
			q.dev.CAS(q.tailAddr(), uint64(tail), uint64(next))
			continue
		}
		v := q.heap.Load(next, nodeValue)
		if q.dev.CAS(q.headAddr(), uint64(head), uint64(next)) {
			// The bypassed sentinel is garbage now; a concurrent reader
			// may still be traversing it, so reclamation is left to the
			// recovery-time collector, per the persistent-heap model.
			return v, nil
		}
	}
}

// Len counts elements by traversal on a quiescent queue.
func (q *Queue) Len() int {
	n := 0
	head := pheap.Ptr(q.dev.Load(q.headAddr()))
	for p := pheap.Ptr(q.dev.Load(nextAddr(head))); !p.IsNil(); p = pheap.Ptr(q.dev.Load(nextAddr(p))) {
		n++
	}
	return n
}

// Drain pops every element on a quiescent queue, in order.
func (q *Queue) Drain() ([]uint64, error) {
	var out []uint64
	for {
		v, err := q.Dequeue()
		if errors.Is(err, ErrEmpty) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
}

// VerifyReport summarizes a structural verification.
type VerifyReport struct {
	Elements int
	TailLag  int // nodes between the tail pointer and the true last node
}

// String renders the report.
func (r VerifyReport) String() string {
	return fmt.Sprintf("lfqueue{elements=%d tailLag=%d}", r.Elements, r.TailLag)
}

// Verify checks the recovery observer's invariants on a quiescent queue:
// the chain from head is acyclic and nil-terminated, and the tail
// pointer references a node on the chain (possibly lagging — a state the
// operations themselves repair). A crash under TSP can never produce
// anything else.
func (q *Queue) Verify() (VerifyReport, error) {
	var rep VerifyReport
	head := pheap.Ptr(q.dev.Load(q.headAddr()))
	tail := pheap.Ptr(q.dev.Load(q.tailAddr()))
	if head.IsNil() || tail.IsNil() {
		return rep, fmt.Errorf("lfqueue: nil head or tail")
	}
	seen := map[pheap.Ptr]int{} // node -> position
	pos := 0
	for p := head; !p.IsNil(); p = pheap.Ptr(q.dev.Load(nextAddr(p))) {
		if _, dup := seen[p]; dup {
			return rep, fmt.Errorf("lfqueue: cycle at node %d", p)
		}
		seen[p] = pos
		pos++
		if pos > 1<<24 {
			return rep, fmt.Errorf("lfqueue: chain absurdly long; corruption suspected")
		}
	}
	rep.Elements = pos - 1 // exclude the sentinel
	tailPos, ok := seen[tail]
	if !ok {
		return rep, fmt.Errorf("lfqueue: tail %d not reachable from head", tail)
	}
	rep.TailLag = (pos - 1) - tailPos
	return rep, nil
}

// RepairTail swings a lagging tail to the true last node on a quiescent
// queue. Purely an optimization: the lock-free operations tolerate and
// repair lag themselves; recovery code may call this to start the new
// incarnation tidy.
func (q *Queue) RepairTail() {
	last := pheap.Ptr(q.dev.Load(q.headAddr()))
	for {
		next := pheap.Ptr(q.dev.Load(nextAddr(last)))
		if next.IsNil() {
			break
		}
		last = next
	}
	q.dev.Store(q.tailAddr(), uint64(last))
}
