package lfqueue

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

func newQueue(t *testing.T, words int) (*nvm.Device, *pheap.Heap, *Queue) {
	t.Helper()
	dev := nvm.NewDevice(nvm.Config{Words: words})
	heap, err := pheap.Format(dev)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	q, err := New(heap)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	heap.SetRoot(q.Ptr())
	return dev, heap, q
}

func TestFIFOOrder(t *testing.T) {
	_, _, q := newQueue(t, 1<<14)
	for v := uint64(1); v <= 10; v++ {
		if err := q.Enqueue(v); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	for want := uint64(1); want <= 10; want++ {
		got, err := q.Dequeue()
		if err != nil || got != want {
			t.Fatalf("Dequeue = %d,%v want %d", got, err, want)
		}
	}
	if _, err := q.Dequeue(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Dequeue on empty = %v, want ErrEmpty", err)
	}
}

func TestLenAndDrain(t *testing.T) {
	_, _, q := newQueue(t, 1<<14)
	for v := uint64(0); v < 5; v++ {
		q.Enqueue(v * 10)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	vals, err := q.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, v := range vals {
		if v != uint64(i*10) {
			t.Fatalf("Drain[%d] = %d, want %d", i, v, i*10)
		}
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty after Drain")
	}
}

func TestInterleavedEnqueueDequeue(t *testing.T) {
	_, _, q := newQueue(t, 1<<16)
	next := uint64(0)
	expect := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < round%5+1; i++ {
			if err := q.Enqueue(next); err != nil {
				t.Fatalf("Enqueue: %v", err)
			}
			next++
		}
		for i := 0; i < round%3; i++ {
			v, err := q.Dequeue()
			if errors.Is(err, ErrEmpty) {
				break
			}
			if err != nil {
				t.Fatalf("Dequeue: %v", err)
			}
			if v != expect {
				t.Fatalf("Dequeue = %d, want %d (FIFO violated)", v, expect)
			}
			expect++
		}
	}
}

func TestOpenAttaches(t *testing.T) {
	_, heap, q := newQueue(t, 1<<14)
	q.Enqueue(42)
	q2, err := Open(heap, q.Ptr())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	v, err := q2.Dequeue()
	if err != nil || v != 42 {
		t.Fatalf("Dequeue via reattached handle = %d,%v", v, err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	_, heap, _ := newQueue(t, 1<<14)
	if _, err := Open(heap, pheap.Nil); !errors.Is(err, ErrNotQueue) {
		t.Fatalf("Open(Nil) = %v", err)
	}
	p, _ := heap.Alloc(descWords)
	if _, err := Open(heap, p); !errors.Is(err, ErrNotQueue) {
		t.Fatalf("Open(garbage) = %v", err)
	}
}

func TestSurvivesCrashWithRescue(t *testing.T) {
	dev, _, q := newQueue(t, 1<<16)
	for v := uint64(100); v < 150; v++ {
		q.Enqueue(v)
	}
	q.Dequeue() // consume a few: head has moved
	q.Dequeue()
	dev.CrashRescue()
	dev.Restart()
	heap2, err := pheap.Open(dev)
	if err != nil {
		t.Fatalf("Open heap: %v", err)
	}
	q2, err := Open(heap2, heap2.Root())
	if err != nil {
		t.Fatalf("Open queue: %v", err)
	}
	rep, err := q2.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Elements != 48 {
		t.Fatalf("elements = %d, want 48", rep.Elements)
	}
	vals, err := q2.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, v := range vals {
		if v != uint64(102+i) {
			t.Fatalf("recovered order broken at %d: %d", i, v)
		}
	}
}

func TestCrashWithLaggingTailRecovers(t *testing.T) {
	// Hand-craft the in-flight state: a node linked after the tail but
	// the tail pointer not yet swung — exactly what a crash between an
	// enqueue's two CASes leaves. Verify must accept it, operations and
	// RepairTail must fix it.
	dev, heap, q := newQueue(t, 1<<14)
	q.Enqueue(1)
	// Manually link a node without swinging the tail.
	node, _ := heap.Alloc(nodeWords)
	heap.Store(node, nodeValue, 2)
	tail := pheap.Ptr(dev.Load(q.tailAddr()))
	if !dev.CAS(nextAddr(tail), 0, uint64(node)) {
		t.Fatal("manual link failed")
	}
	dev.CrashRescue()
	dev.Restart()
	heap2, _ := pheap.Open(dev)
	q2, err := Open(heap2, heap2.Root())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rep, err := q2.Verify()
	if err != nil {
		t.Fatalf("Verify with lagging tail: %v", err)
	}
	if rep.TailLag != 1 {
		t.Fatalf("tailLag = %d, want 1", rep.TailLag)
	}
	q2.RepairTail()
	rep, _ = q2.Verify()
	if rep.TailLag != 0 {
		t.Fatalf("tailLag after repair = %d, want 0", rep.TailLag)
	}
	vals, err := q2.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("Drain = %v, want [1 2]", vals)
	}
}

func TestStrandedNodeCollectedByGC(t *testing.T) {
	// A crash before the linking CAS strands the freshly allocated
	// node; the recovery-time GC must reclaim it while keeping the
	// queue intact.
	dev, heap, q := newQueue(t, 1<<14)
	q.Enqueue(7)
	stranded, _ := heap.Alloc(nodeWords)
	heap.Store(stranded, nodeValue, 999) // never linked
	dev.CrashRescue()
	dev.Restart()
	heap2, _ := pheap.Open(dev)
	rep, err := heap2.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if rep.BlocksFreed != 1 {
		t.Fatalf("GC freed %d, want 1 (the stranded node)", rep.BlocksFreed)
	}
	q2, _ := Open(heap2, heap2.Root())
	if q2.Len() != 1 {
		t.Fatalf("queue damaged by GC: len = %d", q2.Len())
	}
}

func TestDequeuedNodesBecomeGarbage(t *testing.T) {
	dev, _, q := newQueue(t, 1<<14)
	for v := uint64(0); v < 10; v++ {
		q.Enqueue(v)
	}
	for i := 0; i < 10; i++ {
		if _, err := q.Dequeue(); err != nil {
			t.Fatalf("Dequeue: %v", err)
		}
	}
	dev.CrashRescue()
	dev.Restart()
	heap2, _ := pheap.Open(dev)
	rep, err := heap2.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if rep.BlocksFreed != 10 {
		t.Fatalf("GC freed %d bypassed nodes, want 10", rep.BlocksFreed)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	_, _, q := newQueue(t, 1<<20)
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Enqueue(uint64(g*perProducer + i)); err != nil {
					t.Errorf("Enqueue: %v", err)
					return
				}
			}
		}(g)
	}
	var mu sync.Mutex
	got := map[uint64]bool{}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, err := q.Dequeue()
				if errors.Is(err, ErrEmpty) {
					mu.Lock()
					done := len(got) == producers*perProducer
					mu.Unlock()
					if done {
						return
					}
					continue
				}
				if err != nil {
					t.Errorf("Dequeue: %v", err)
					return
				}
				mu.Lock()
				if got[v] {
					t.Errorf("value %d dequeued twice", v)
				}
				got[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(got) != producers*perProducer {
		t.Fatalf("dequeued %d values, want %d", len(got), producers*perProducer)
	}
}

func TestOperationsAfterCrashReturnErrCrashed(t *testing.T) {
	dev, _, q := newQueue(t, 1<<14)
	q.Enqueue(1)
	dev.CrashRescue()
	if err := q.Enqueue(2); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Enqueue after crash = %v, want ErrCrashed", err)
	}
	if _, err := q.Dequeue(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Dequeue after crash = %v, want ErrCrashed", err)
	}
}

// Property: any sequence of enqueues/dequeues agrees with a model slice,
// and the queue survives crash+reopen holding exactly the model.
func TestQuickMatchesModel(t *testing.T) {
	f := func(raw []uint16) bool {
		dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
		heap, _ := pheap.Format(dev)
		q, err := New(heap)
		if err != nil {
			return false
		}
		heap.SetRoot(q.Ptr())
		var model []uint64
		for _, r := range raw {
			if r%3 != 0 {
				if err := q.Enqueue(uint64(r)); err != nil {
					return false
				}
				model = append(model, uint64(r))
			} else {
				v, err := q.Dequeue()
				if len(model) == 0 {
					if !errors.Is(err, ErrEmpty) {
						return false
					}
				} else {
					if err != nil || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		dev.CrashRescue()
		dev.Restart()
		heap2, err := pheap.Open(dev)
		if err != nil {
			return false
		}
		q2, err := Open(heap2, heap2.Root())
		if err != nil {
			return false
		}
		if _, err := q2.Verify(); err != nil {
			return false
		}
		vals, err := q2.Drain()
		if err != nil || len(vals) != len(model) {
			return false
		}
		for i := range vals {
			if vals[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
