package lfqueue

import (
	"testing"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

func benchQueue(b *testing.B) (*pheap.Heap, *Queue) {
	b.Helper()
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 22})
	heap, err := pheap.Format(dev)
	if err != nil {
		b.Fatal(err)
	}
	q, err := New(heap)
	if err != nil {
		b.Fatal(err)
	}
	heap.SetRoot(q.Ptr())
	return heap, q
}

// reclaim runs the recovery-time collector outside the timed region.
// Queue nodes are deliberately never freed inline (a concurrent reader
// may still traverse them; see Dequeue), so long benchmark runs must
// reclaim periodically exactly as a long-lived deployment would at its
// recovery or quiescence points.
func reclaim(b *testing.B, heap *pheap.Heap) {
	b.StopTimer()
	if _, err := heap.GC(); err != nil {
		b.Fatal(err)
	}
	b.StartTimer()
}

// reclaimEvery is how many operations run between untimed collections.
const reclaimEvery = 1 << 18

func BenchmarkEnqueue(b *testing.B) {
	heap, q := benchQueue(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Enqueue(uint64(i)); err != nil {
			b.Fatal(err)
		}
		if (i+1)%reclaimEvery == 0 {
			// Drain (so the nodes become garbage) and collect.
			b.StopTimer()
			if _, err := q.Drain(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			reclaim(b, heap)
		}
	}
}

func BenchmarkEnqueueDequeuePair(b *testing.B) {
	heap, q := benchQueue(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Enqueue(uint64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := q.Dequeue(); err != nil {
			b.Fatal(err)
		}
		if (i+1)%reclaimEvery == 0 {
			reclaim(b, heap)
		}
	}
}

// BenchmarkPingPong is single-threaded by design: reclamation of
// bypassed nodes requires quiescence, and the concurrent behaviour is
// covered by the package's tests rather than its benchmarks.
func BenchmarkPingPong(b *testing.B) {
	heap, q := benchQueue(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Enqueue(1); err != nil {
			b.Fatal(err)
		}
		if _, err := q.Dequeue(); err != nil && err != ErrEmpty {
			b.Fatal(err)
		}
		if (i+1)%reclaimEvery == 0 {
			reclaim(b, heap)
		}
	}
}
