package lfqueue_test

import (
	"fmt"

	"tsp/internal/lfqueue"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// A lock-free queue survives a crash with no crash-consistency code:
// under a TSP rescue, the durable backlog is exactly what a recovery
// observer expects.
func Example() {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 14})
	heap, _ := pheap.Format(dev)
	q, _ := lfqueue.New(heap)
	heap.SetRoot(q.Ptr())

	for v := uint64(1); v <= 3; v++ {
		q.Enqueue(v * 10)
	}
	q.Dequeue() // 10 handed off before the crash

	dev.CrashRescue()
	dev.Restart()

	heap2, _ := pheap.Open(dev)
	q2, _ := lfqueue.Open(heap2, heap2.Root())
	backlog, _ := q2.Drain()
	fmt.Println(backlog)
	// Output: [20 30]
}
