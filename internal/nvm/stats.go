package nvm

import (
	"fmt"

	"tsp/internal/telemetry"
)

// The device's counters live in a telemetry.DeviceStats section — either
// one injected via Config.Telemetry (so a whole stack shares one
// registry) or a private section the device allocates for itself, which
// preserves the historical always-on behavior of the old nvm.Stats.
// StatsSnapshot remains the package's stable read-side view: a plain
// value struct the tests, the harness, and Table 1 diff and print.

// StatsSnapshot is a point-in-time copy of the device counters.
type StatsSnapshot struct {
	Loads      uint64
	Stores     uint64
	CAS        uint64
	Flushes    uint64
	Writebacks uint64
	Rescues    uint64
	Drops      uint64
}

// snapshotOf copies a telemetry section into the exported view. A nil
// section (telemetry disabled) reads as all zeros.
func snapshotOf(tel *telemetry.DeviceStats) StatsSnapshot {
	if tel == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		Loads:      tel.Loads.Load(),
		Stores:     tel.Stores.Load(),
		CAS:        tel.CAS.Load(),
		Flushes:    tel.Flushes.Load(),
		Writebacks: tel.Writebacks.Load(),
		Rescues:    tel.Rescues.Load(),
		Drops:      tel.Drops.Load(),
	}
}

// Sub returns the delta s minus earlier, counter by counter.
func (s StatsSnapshot) Sub(earlier StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Loads:      s.Loads - earlier.Loads,
		Stores:     s.Stores - earlier.Stores,
		CAS:        s.CAS - earlier.CAS,
		Flushes:    s.Flushes - earlier.Flushes,
		Writebacks: s.Writebacks - earlier.Writebacks,
		Rescues:    s.Rescues - earlier.Rescues,
		Drops:      s.Drops - earlier.Drops,
	}
}

// String formats the snapshot for logs.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("loads=%d stores=%d cas=%d flushes=%d writebacks=%d rescues=%d drops=%d",
		s.Loads, s.Stores, s.CAS, s.Flushes, s.Writebacks, s.Rescues, s.Drops)
}
