package nvm

import (
	"fmt"
	"sync/atomic"
)

// Stats holds the device's always-on operation counters. The hot-path
// counters (loads, stores, CAS) are sharded across padded cache lines
// and indexed by address bits: with many worker threads hammering the
// device, a single shared counter word would serialize the simulation on
// counter-line ping-pong and distort every measurement the counters are
// supposed to support.
type Stats struct {
	loads  shardedCounter
	stores shardedCounter
	cases  shardedCounter // CAS attempts

	flushes    atomic.Uint64 // synchronous, latency-charged flushes
	writebacks atomic.Uint64 // background/rescue write-backs (free)
	rescues    atomic.Uint64 // crash-time rescues performed
	drops      atomic.Uint64 // crashes that discarded the volatile image
}

const statShards = 16

// paddedU64 occupies a full cache line so shards never false-share.
type paddedU64 struct {
	v uint64
	_ [7]uint64
}

type shardedCounter struct {
	shards [statShards]paddedU64
}

func (c *shardedCounter) inc(a Addr) {
	atomic.AddUint64(&c.shards[uint64(a)&(statShards-1)].v, 1)
}

func (c *shardedCounter) sum() uint64 {
	var total uint64
	for i := range c.shards {
		total += atomic.LoadUint64(&c.shards[i].v)
	}
	return total
}

func (c *shardedCounter) reset() {
	for i := range c.shards {
		atomic.StoreUint64(&c.shards[i].v, 0)
	}
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Loads:      s.loads.sum(),
		Stores:     s.stores.sum(),
		CAS:        s.cases.sum(),
		Flushes:    s.flushes.Load(),
		Writebacks: s.writebacks.Load(),
		Rescues:    s.rescues.Load(),
		Drops:      s.drops.Load(),
	}
}

func (s *Stats) reset() {
	s.loads.reset()
	s.stores.reset()
	s.cases.reset()
	s.flushes.Store(0)
	s.writebacks.Store(0)
	s.rescues.Store(0)
	s.drops.Store(0)
}

// StatsSnapshot is a point-in-time copy of the device counters.
type StatsSnapshot struct {
	Loads      uint64
	Stores     uint64
	CAS        uint64
	Flushes    uint64
	Writebacks uint64
	Rescues    uint64
	Drops      uint64
}

// Sub returns the delta s minus earlier, counter by counter.
func (s StatsSnapshot) Sub(earlier StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Loads:      s.Loads - earlier.Loads,
		Stores:     s.Stores - earlier.Stores,
		CAS:        s.CAS - earlier.CAS,
		Flushes:    s.Flushes - earlier.Flushes,
		Writebacks: s.Writebacks - earlier.Writebacks,
		Rescues:    s.Rescues - earlier.Rescues,
		Drops:      s.Drops - earlier.Drops,
	}
}

// String formats the snapshot for logs.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("loads=%d stores=%d cas=%d flushes=%d writebacks=%d rescues=%d drops=%d",
		s.Loads, s.Stores, s.CAS, s.Flushes, s.Writebacks, s.Rescues, s.Drops)
}
