package nvm

import "sync/atomic"

// spinSink defeats dead-code elimination of the calibration loop.
var spinSink atomic.Uint64

// spin burns roughly n units of CPU time. One unit is a handful of
// nanoseconds on contemporary hardware; platform profiles express flush
// latency in these units so that the *relative* cost of synchronous
// flushing versus ordinary simulated memory operations matches the shape
// reported in the paper, independent of the host machine's absolute speed.
func spin(n int) {
	var x uint64 = 88172645463325252
	for i := 0; i < n; i++ {
		// xorshift keeps the loop data-dependent so it cannot be
		// collapsed by the compiler.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	if n > 0 {
		spinSink.Store(x)
	}
}

// Spin exposes the calibrated busy-wait for other packages that need to
// model fixed hardware costs (e.g. the WSP energy model's flush stages in
// demos). n is in the same units as Config.FlushCost.
func Spin(n int) { spin(n) }
