package nvm

import (
	"errors"
	"fmt"
	"time"

	"tsp/internal/telemetry"
)

// Config describes the simulated memory hierarchy.
type Config struct {
	// Words is the device size in 8-byte words.
	Words int

	// LineWords is the cache-line size in words. The default of 8 models
	// the ubiquitous 64-byte line.
	LineWords int

	// FlushCost is the simulated latency of one synchronous line flush,
	// in spin units (see spin.go). It is charged by FlushWord/FlushRange
	// — the operations a non-TSP design issues on the critical path — but
	// not by crash-time rescue or background eviction. Zero means flushes
	// are free, which is useful in unit tests.
	FlushCost int

	// MissCost is the simulated latency of a memory access that misses
	// the CPU cache, in spin units. The device models cache latency with
	// a direct-mapped tag table of MissLines lines: accesses to recently
	// touched lines are free (cache hits), others spin MissCost and
	// install the line. Zero disables the model (every access free),
	// which is right for unit tests; benchmarks enable it because the
	// relative cost of pointer-chasing map operations versus sequential
	// log appends — the ratio the paper's Table 1 measures — comes from
	// exactly this asymmetry on real hardware.
	MissCost int

	// MissLines is the latency model's tag-table size in cache lines
	// (rounded up to a power of two; default 8192 lines = 512 KB).
	MissLines int

	// Evictor configures background write-back of dirty lines, modelling
	// cache replacement. A zero value disables it.
	Evictor EvictorConfig

	// Telemetry, when non-nil, is the counter section the device reports
	// into — typically a stack registry's Device section, so the device's
	// counters aggregate with the layers above it. When nil the device
	// allocates a private section (the historical always-on behavior)
	// unless DisableStats is set.
	Telemetry *telemetry.DeviceStats

	// DisableStats turns counting off entirely: the device holds a nil
	// telemetry section and every counter update is a single predictable
	// branch. Stats() then reads as all zeros.
	DisableStats bool
}

// EvictorConfig controls the background evictor goroutine.
type EvictorConfig struct {
	// Interval between eviction sweeps. Zero disables the evictor.
	Interval time.Duration

	// LinesPerSweep bounds how many dirty lines one sweep writes back.
	LinesPerSweep int
}

// Enabled reports whether this configuration turns the evictor on.
func (e EvictorConfig) Enabled() bool { return e.Interval > 0 && e.LinesPerSweep > 0 }

// DefaultLineWords is the cache-line size used when Config.LineWords is 0.
const DefaultLineWords = 8

// DefaultMissLines is the latency model's tag-table size when
// Config.MissLines is 0 and the model is enabled.
const DefaultMissLines = 8192

func (c *Config) fillDefaults() {
	if c.LineWords == 0 {
		c.LineWords = DefaultLineWords
	}
	if c.MissLines == 0 {
		c.MissLines = DefaultMissLines
	}
	// Round MissLines up to a power of two for mask indexing.
	n := 1
	for n < c.MissLines {
		n <<= 1
	}
	c.MissLines = n
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Words <= 0 {
		return errors.New("Words must be positive")
	}
	if c.LineWords <= 0 {
		return errors.New("LineWords must be positive")
	}
	if c.FlushCost < 0 {
		return errors.New("FlushCost must be non-negative")
	}
	if c.MissCost < 0 {
		return errors.New("MissCost must be non-negative")
	}
	if c.MissLines < 0 {
		return errors.New("MissLines must be non-negative")
	}
	if c.Evictor.Interval < 0 {
		return errors.New("Evictor.Interval must be non-negative")
	}
	if c.Evictor.LinesPerSweep < 0 {
		return errors.New("Evictor.LinesPerSweep must be non-negative")
	}
	return nil
}

// String renders the configuration compactly for logs and bench output.
func (c Config) String() string {
	ev := "off"
	if c.Evictor.Enabled() {
		ev = fmt.Sprintf("%v/%d lines", c.Evictor.Interval, c.Evictor.LinesPerSweep)
	}
	return fmt.Sprintf("nvm{%d words, %d-word lines, flushCost=%d, evictor=%s}",
		c.Words, c.LineWords, c.FlushCost, ev)
}
