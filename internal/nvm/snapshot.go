package nvm

import (
	"fmt"
	"sync/atomic"
)

// SnapshotPersisted returns a copy of the persisted image. It is meant to
// be taken on a quiescent or crashed device (the persist package writes
// it to a file to survive real process restarts); taking it while threads
// run yields a word-atomic but line-torn view, like reading NVM from a
// bus analyzer.
func (d *Device) SnapshotPersisted() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]uint64, len(d.persisted))
	for w := range out {
		out[w] = d.persistedLoad(uint64(w))
	}
	return out
}

// RestorePersisted replaces the persisted image with img, which must have
// exactly the device's word count. Callers normally follow it with
// Restart so the volatile image re-reads the restored state.
func (d *Device) RestorePersisted(img []uint64) error {
	if len(img) != len(d.persisted) {
		return fmt.Errorf("nvm: snapshot has %d words, device has %d", len(img), len(d.persisted))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for w, v := range img {
		atomic.StoreUint64(&d.persisted[w], v)
	}
	return nil
}
