// Package nvm simulates byte-addressable non-volatile memory as seen by a
// multi-threaded program running on a machine with volatile CPU caches.
//
// The simulation is the substrate on which the whole repository is built.
// The paper's central question — "which stores are durable at the instant
// of a crash?" — is modelled by keeping two images of memory:
//
//   - the volatile image: the architectural state all running threads see
//     (the union of CPU caches and, on volatile-DRAM machines, DRAM), and
//   - the persisted image: the state that survives a crash when no rescue
//     runs (what has already been written back to the durable medium).
//
// Stores land in the volatile image and mark the containing cache line
// dirty.  A line becomes durable when it is flushed — either explicitly
// (FlushWord/FlushRange, the simulated clflush/clwb with a calibrated
// latency), by the background evictor (cache replacement), or by a
// crash-time rescue (the Timely Sufficient Persistence guarantee).
//
// All word accesses are atomic, mirroring the atomicity of aligned 8-byte
// loads and stores on x86-64; compare-and-swap is provided for the
// non-blocking case study.  Addresses are 8-byte word indexes, not byte
// offsets: the paper's persistent heaps only ever manipulate word-sized,
// word-aligned data, and word indexing removes an entire class of
// alignment bugs from the simulation.
package nvm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tsp/internal/telemetry"
)

// Addr is a word index into a Device. Word 0 is a valid address; packages
// layered above (pheap) reserve it so that 0 can double as a nil pointer.
type Addr uint64

// WordBytes is the size of one word in bytes.
const WordBytes = 8

// Device is a simulated NVM module plus the volatile cache hierarchy in
// front of it. All methods are safe for concurrent use.
type Device struct {
	cfg Config

	// volatile is the architectural state: what loads observe and where
	// stores land. Accessed with atomics only.
	volatile []uint64

	// persisted is the durable state: what a crash without rescue leaves
	// behind. Written by flush/eviction, read by recovery and snapshots.
	// Accessed with atomics only so the background evictor can run
	// concurrently with crash-time readers in tests.
	persisted []uint64

	// dirty has one word per cache line: nonzero when the line's volatile
	// content may differ from its persisted content.
	dirty []uint32

	// tel is the device's counter section: injected via Config.Telemetry,
	// privately allocated by default, or nil when Config.DisableStats is
	// set (every update then costs one branch).
	tel *telemetry.DeviceStats

	// cacheTags is the direct-mapped latency model: cacheTags[line&mask]
	// holds line+1 when that line is "cached". Entries race benignly —
	// the table is a latency heuristic, not an correctness structure.
	cacheTags []uint64
	tagMask   uint64

	evictor *evictor

	// crashed is set once a crash has been injected; stores after a crash
	// (from stragglers that have not yet observed the stop signal) are
	// ignored, mirroring the abrupt halt of all threads by SIGKILL.
	crashed atomic.Bool

	// armed counts down store-class operations to an automatically
	// injected crash (see ArmCrashAfter); 0 = disarmed.
	armed     atomic.Int64
	armedOpts atomic.Pointer[CrashOptions]

	mu sync.Mutex // serializes crash, restart and snapshot operations
}

// NewDevice creates a device of cfg.Words words with all words zero in
// both images. It panics if the configuration is invalid, as a device is
// always constructed from static test or benchmark parameters.
func NewDevice(cfg Config) *Device {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("nvm: invalid config: %v", err))
	}
	lines := (cfg.Words + cfg.LineWords - 1) / cfg.LineWords
	d := &Device{
		cfg:       cfg,
		volatile:  make([]uint64, cfg.Words),
		persisted: make([]uint64, cfg.Words),
		dirty:     make([]uint32, lines),
		tel:       cfg.Telemetry,
	}
	if d.tel == nil && !cfg.DisableStats {
		d.tel = &telemetry.DeviceStats{}
	}
	if cfg.MissCost > 0 {
		d.cacheTags = make([]uint64, cfg.MissLines)
		d.tagMask = uint64(cfg.MissLines - 1)
	}
	if cfg.Evictor.Enabled() {
		d.evictor = newEvictor(d, cfg.Evictor)
	}
	return d
}

// touchLoad charges the cache-latency model for a load of address a: a
// hit in the direct-mapped tag table is free, a miss spins MissCost and
// installs the line. Tag accesses are atomic only to stay race-clean;
// lost updates merely misestimate one access.
func (d *Device) touchLoad(a Addr) {
	if d.cacheTags == nil {
		return
	}
	line := d.LineOf(a)
	idx := line & d.tagMask
	if atomic.LoadUint64(&d.cacheTags[idx]) == line+1 {
		return
	}
	spin(d.cfg.MissCost)
	atomic.StoreUint64(&d.cacheTags[idx], line+1)
}

// touchStore installs the line without charging latency: store misses on
// real hardware drain through the store buffer and write-combining
// without stalling the pipeline, which is precisely why sequential log
// appends cost so much less than pointer-chasing loads — the asymmetry
// at the heart of the paper's overhead measurements. Read-modify-write
// operations (CAS, Add) stall like loads and use touchLoad.
func (d *Device) touchStore(a Addr) {
	if d.cacheTags == nil {
		return
	}
	line := d.LineOf(a)
	idx := line & d.tagMask
	if atomic.LoadUint64(&d.cacheTags[idx]) != line+1 {
		atomic.StoreUint64(&d.cacheTags[idx], line+1)
	}
}

// Config returns the configuration the device was built with.
func (d *Device) Config() Config { return d.cfg }

// Words returns the device size in words.
func (d *Device) Words() uint64 { return uint64(len(d.volatile)) }

// Lines returns the number of cache lines covering the device.
func (d *Device) Lines() uint64 { return uint64(len(d.dirty)) }

// LineOf returns the cache line index containing address a.
func (d *Device) LineOf(a Addr) uint64 { return uint64(a) / uint64(d.cfg.LineWords) }

// check panics on out-of-range addresses. Simulated programs indexing
// outside the device are bugs in this repository, not recoverable errors.
func (d *Device) check(a Addr) {
	if uint64(a) >= uint64(len(d.volatile)) {
		panic(fmt.Sprintf("nvm: address %d out of range (device has %d words)", a, len(d.volatile)))
	}
}

// Load atomically reads the word at a from the volatile image.
func (d *Device) Load(a Addr) uint64 {
	d.check(a)
	d.tel.IncLoad(uint64(a))
	d.touchLoad(a)
	return atomic.LoadUint64(&d.volatile[a])
}

// TryLoad atomically reads the word at a, reporting false instead of
// panicking when a is out of range. Optimistic readers need it: a
// lock-free chain walk can pick up a pointer mid-update, and the torn
// value may index anywhere. The reader detects the interleaving by
// sequence validation afterwards; TryLoad just keeps the speculative
// dereference from killing the process first.
func (d *Device) TryLoad(a Addr) (uint64, bool) {
	if uint64(a) >= uint64(len(d.volatile)) {
		return 0, false
	}
	d.tel.IncLoad(uint64(a))
	d.touchLoad(a)
	return atomic.LoadUint64(&d.volatile[a]), true
}

// Store atomically writes v to the word at a in the volatile image and
// marks the containing line dirty. Stores issued after a crash are
// dropped: the simulated threads have already been terminated.
func (d *Device) Store(a Addr, v uint64) {
	d.check(a)
	if d.crashed.Load() || d.countdown() {
		return
	}
	d.tel.IncStore(uint64(a))
	d.touchStore(a)
	atomic.StoreUint64(&d.volatile[a], v)
	d.markDirty(a)
}

// StoreBlock writes vals to consecutive words starting at a, which must
// all lie within one cache line. It models a line-sized store burst (the
// write-combined stores a logging runtime emits for a record): the
// individual word stores are still atomic, but the crash check, the
// statistics update and the dirty marking are paid once per line rather
// than once per word.
func (d *Device) StoreBlock(a Addr, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	d.check(a)
	last := a + Addr(len(vals)) - 1
	d.check(last)
	if d.LineOf(a) != d.LineOf(last) {
		panic(fmt.Sprintf("nvm: StoreBlock [%d,%d] crosses a cache line", a, last))
	}
	if d.crashed.Load() || d.countdown() {
		return
	}
	d.tel.IncStore(uint64(a))
	d.touchStore(a)
	for i, v := range vals {
		atomic.StoreUint64(&d.volatile[a+Addr(i)], v)
	}
	d.markDirty(a)
}

// CAS atomically compares-and-swaps the word at a in the volatile image.
// It returns false (and performs no store) after a crash.
func (d *Device) CAS(a Addr, old, new uint64) bool {
	d.check(a)
	if d.crashed.Load() || d.countdown() {
		return false
	}
	d.tel.IncCAS(uint64(a))
	d.touchLoad(a)
	if atomic.CompareAndSwapUint64(&d.volatile[a], old, new) {
		d.markDirty(a)
		return true
	}
	return false
}

// Add atomically adds delta to the word at a and returns the new value.
// After a crash it returns the current value unmodified.
func (d *Device) Add(a Addr, delta uint64) uint64 {
	d.check(a)
	if d.crashed.Load() || d.countdown() {
		return atomic.LoadUint64(&d.volatile[a])
	}
	d.tel.IncStore(uint64(a))
	d.touchLoad(a)
	v := atomic.AddUint64(&d.volatile[a], delta)
	d.markDirty(a)
	return v
}

// markDirty records that the line containing a may differ from the
// persisted image. The value is written before the dirty bit in Store, so
// a flusher that observes the bit also observes (at least) that value.
func (d *Device) markDirty(a Addr) {
	line := d.LineOf(a)
	if atomic.LoadUint32(&d.dirty[line]) == 0 {
		atomic.StoreUint32(&d.dirty[line], 1)
	}
}

// FlushWord synchronously writes back the cache line containing a,
// charging the configured flush latency. This is the simulated
// clflush/clwb + sfence a non-TSP design must issue on the critical path.
func (d *Device) FlushWord(a Addr) {
	d.check(a)
	d.flushLine(d.LineOf(a), true)
}

// FlushRange flushes every cache line overlapping [a, a+words). Each
// distinct line is charged one flush latency.
func (d *Device) FlushRange(a Addr, words uint64) {
	if words == 0 {
		return
	}
	d.check(a)
	d.check(a + Addr(words) - 1)
	first := d.LineOf(a)
	last := d.LineOf(a + Addr(words) - 1)
	for line := first; line <= last; line++ {
		d.flushLine(line, true)
	}
}

// FlushAll writes back every dirty line without charging latency. It is
// the crash-time rescue primitive (TSP's "last-minute rescue") and is also
// used by checkpoints; neither is on the failure-free critical path.
func (d *Device) FlushAll() {
	for line := uint64(0); line < uint64(len(d.dirty)); line++ {
		if atomic.LoadUint32(&d.dirty[line]) != 0 {
			d.flushLine(line, false)
		}
	}
}

// flushLine writes the line's volatile words to the persisted image. The
// dirty bit is cleared before the copy: a racing store that lands mid-copy
// re-sets the bit, so its value is either captured now or flushed later —
// never silently lost.
func (d *Device) flushLine(line uint64, charge bool) {
	if charge {
		d.tel.IncFlush()
		spin(d.cfg.FlushCost)
	} else {
		d.tel.IncWriteback()
	}
	atomic.StoreUint32(&d.dirty[line], 0)
	lo := line * uint64(d.cfg.LineWords)
	hi := lo + uint64(d.cfg.LineWords)
	if hi > uint64(len(d.volatile)) {
		hi = uint64(len(d.volatile))
	}
	for w := lo; w < hi; w++ {
		atomic.StoreUint64(&d.persisted[w], atomic.LoadUint64(&d.volatile[w]))
	}
}

// Persisted reads the word at a from the persisted image. Recovery code
// and tests use it to observe what a crash would leave behind.
func (d *Device) Persisted(a Addr) uint64 {
	d.check(a)
	return atomic.LoadUint64(&d.persisted[a])
}

// DirtyLines counts lines currently marked dirty.
func (d *Device) DirtyLines() uint64 {
	var n uint64
	for i := range d.dirty {
		if atomic.LoadUint32(&d.dirty[i]) != 0 {
			n++
		}
	}
	return n
}

// LineDirty reports whether the line containing a is marked dirty.
func (d *Device) LineDirty(a Addr) bool {
	d.check(a)
	return atomic.LoadUint32(&d.dirty[d.LineOf(a)]) != 0
}

// Internal raw accessors used by crash/restart and the evictor. They
// bypass counters and the crashed check: they model the machine, not the
// program running on it.

func (d *Device) volatileStore(w uint64, v uint64) { atomic.StoreUint64(&d.volatile[w], v) }
func (d *Device) persistedLoad(w uint64) uint64    { return atomic.LoadUint64(&d.persisted[w]) }
func (d *Device) dirtyLoad(line uint64) uint32     { return atomic.LoadUint32(&d.dirty[line]) }
func (d *Device) dirtyClear(line uint64)           { atomic.StoreUint32(&d.dirty[line], 0) }

// Stats returns a snapshot of the device's operation counters (all
// zeros when counting is disabled).
func (d *Device) Stats() StatsSnapshot { return snapshotOf(d.tel) }

// ResetStats zeroes the operation counters.
func (d *Device) ResetStats() { d.tel.Reset() }

// Telemetry returns the device's live counter section (nil when counting
// is disabled). stack.Reattach adopts it into the new incarnation's
// registry so device counters survive a crash/reattach cycle.
func (d *Device) Telemetry() *telemetry.DeviceStats { return d.tel }
