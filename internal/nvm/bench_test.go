package nvm

import "testing"

func BenchmarkLoad(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Load(Addr(i & 0xffff))
	}
}

func BenchmarkStore(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Store(Addr(i&0xffff), uint64(i))
	}
}

func BenchmarkStoreBlock(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16})
	vals := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.StoreBlock(Addr((i&0x1fff)*8), vals)
	}
}

func BenchmarkCAS(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Addr(i & 0xffff)
		d.CAS(a, d.Load(a), uint64(i))
	}
}

func BenchmarkFlushWord(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Addr(i & 0xffff)
		d.Store(a, uint64(i))
		d.FlushWord(a)
	}
}

func BenchmarkFlushWordWithCost(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16, FlushCost: 24})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Addr(i & 0xffff)
		d.Store(a, uint64(i))
		d.FlushWord(a)
	}
}

func BenchmarkLoadWithMissModelHit(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16, MissCost: 560})
	d.Load(0) // install the line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Load(0) // always a hit
	}
}

func BenchmarkLoadWithMissModelMiss(b *testing.B) {
	// Strided loads defeating an 8192-line tag table: every access
	// misses, paying the configured latency.
	d := NewDevice(Config{Words: 1 << 22, MissCost: 560})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Load(Addr((i * 8 * 8192) & (1<<22 - 1)))
	}
}

func BenchmarkCrashRescue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := NewDevice(Config{Words: 1 << 18})
		for a := Addr(0); a < 1<<18; a += 8 {
			d.Store(a, uint64(a))
		}
		b.StartTimer()
		d.CrashRescue()
	}
}
