package nvm

import "testing"

func BenchmarkLoad(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Load(Addr(i & 0xffff))
	}
}

func BenchmarkStore(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Store(Addr(i&0xffff), uint64(i))
	}
}

func BenchmarkStoreBlock(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16})
	vals := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.StoreBlock(Addr((i&0x1fff)*8), vals)
	}
}

func BenchmarkCAS(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Addr(i & 0xffff)
		d.CAS(a, d.Load(a), uint64(i))
	}
}

func BenchmarkFlushWord(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Addr(i & 0xffff)
		d.Store(a, uint64(i))
		d.FlushWord(a)
	}
}

func BenchmarkFlushWordWithCost(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16, FlushCost: 24})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Addr(i & 0xffff)
		d.Store(a, uint64(i))
		d.FlushWord(a)
	}
}

func BenchmarkLoadWithMissModelHit(b *testing.B) {
	d := NewDevice(Config{Words: 1 << 16, MissCost: 560})
	d.Load(0) // install the line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Load(0) // always a hit
	}
}

func BenchmarkLoadWithMissModelMiss(b *testing.B) {
	// Strided loads defeating an 8192-line tag table: every access
	// misses, paying the configured latency.
	d := NewDevice(Config{Words: 1 << 22, MissCost: 560})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Load(Addr((i * 8 * 8192) & (1<<22 - 1)))
	}
}

// BenchmarkStoreTelemetry pins the telemetry layer's overhead bound:
// "on" is the default device (counting into its DeviceStats section,
// sharded-atomic increments only), "off" takes the nil-receiver fast
// path via DisableStats. The two must stay within a few percent of each
// other — counting is sharded atomics with no locks, and disabling it
// costs only a predictable nil-check branch.
//
//	go test -run ZZZ -bench StoreTelemetry ./internal/nvm
func BenchmarkStoreTelemetry(b *testing.B) {
	for _, sub := range []struct {
		name string
		cfg  Config
	}{
		{"on", Config{Words: 1 << 16}},
		{"off", Config{Words: 1 << 16, DisableStats: true}},
	} {
		b.Run(sub.name, func(b *testing.B) {
			d := NewDevice(sub.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Store(Addr(i&0xffff), uint64(i))
			}
		})
	}
}

// BenchmarkLoadTelemetry is the read-path twin of
// BenchmarkStoreTelemetry.
func BenchmarkLoadTelemetry(b *testing.B) {
	for _, sub := range []struct {
		name string
		cfg  Config
	}{
		{"on", Config{Words: 1 << 16}},
		{"off", Config{Words: 1 << 16, DisableStats: true}},
	} {
		b.Run(sub.name, func(b *testing.B) {
			d := NewDevice(sub.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Load(Addr(i & 0xffff))
			}
		})
	}
}

func BenchmarkCrashRescue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := NewDevice(Config{Words: 1 << 18})
		for a := Addr(0); a < 1<<18; a += 8 {
			d.Store(a, uint64(a))
		}
		b.StartTimer()
		d.CrashRescue()
	}
}
