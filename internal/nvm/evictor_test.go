package nvm

import (
	"testing"
	"time"
)

func TestEvictorWritesBackDirtyLines(t *testing.T) {
	d := NewDevice(Config{
		Words:   256,
		Evictor: EvictorConfig{Interval: time.Millisecond, LinesPerSweep: 64},
	})
	d.StartEvictor()
	defer d.StopEvictor()
	for a := Addr(0); a < 256; a++ {
		d.Store(a, uint64(a)+1)
	}
	deadline := time.Now().Add(2 * time.Second)
	for d.DirtyLines() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("evictor left %d dirty lines after 2s", d.DirtyLines())
		}
		time.Sleep(time.Millisecond)
	}
	for a := Addr(0); a < 256; a++ {
		if d.Persisted(a) != uint64(a)+1 {
			t.Fatalf("word %d not written back by evictor", a)
		}
	}
}

func TestEvictorRespectsSweepBudget(t *testing.T) {
	d := NewDevice(Config{
		Words:   1 << 12,
		Evictor: EvictorConfig{Interval: time.Hour, LinesPerSweep: 3},
	})
	// Drive the sweep directly rather than waiting an hour.
	for a := Addr(0); a < 1<<12; a += 8 {
		d.Store(a, 1)
	}
	dirtyBefore := d.DirtyLines()
	d.evictor.sweep()
	if got := dirtyBefore - d.DirtyLines(); got != 3 {
		t.Fatalf("sweep wrote back %d lines, budget is 3", got)
	}
}

func TestEvictorRoundRobinCoversAllLines(t *testing.T) {
	d := NewDevice(Config{
		Words:   512,
		Evictor: EvictorConfig{Interval: time.Hour, LinesPerSweep: 8},
	})
	for a := Addr(0); a < 512; a++ {
		d.Store(a, 9)
	}
	for i := 0; i < int(d.Lines()/8)+1; i++ {
		d.evictor.sweep()
	}
	if d.DirtyLines() != 0 {
		t.Fatalf("round-robin sweeps left %d dirty lines", d.DirtyLines())
	}
}

func TestStartStopWithoutEvictorConfigured(t *testing.T) {
	d := NewDevice(Config{Words: 16})
	d.StartEvictor() // no-op
	d.StopEvictor()  // no-op
}

func TestStopEvictorIdempotent(t *testing.T) {
	d := NewDevice(Config{
		Words:   16,
		Evictor: EvictorConfig{Interval: time.Millisecond, LinesPerSweep: 1},
	})
	d.StartEvictor()
	d.StopEvictor()
	d.StopEvictor()
}

func TestStopEvictorNeverStarted(t *testing.T) {
	d := NewDevice(Config{
		Words:   16,
		Evictor: EvictorConfig{Interval: time.Millisecond, LinesPerSweep: 1},
	})
	d.StopEvictor()
	// After a stop, a late start must not launch the goroutine.
	d.StartEvictor()
	d.StopEvictor()
}

func TestRestartReinstallsEvictor(t *testing.T) {
	d := NewDevice(Config{
		Words:   64,
		Evictor: EvictorConfig{Interval: time.Millisecond, LinesPerSweep: 16},
	})
	d.StartEvictor()
	d.Store(0, 5)
	d.StopEvictor()
	d.CrashDrop()
	d.Restart()
	d.StartEvictor()
	defer d.StopEvictor()
	d.Store(1, 6)
	deadline := time.Now().Add(2 * time.Second)
	for d.Persisted(1) != 6 {
		if time.Now().After(deadline) {
			t.Fatal("evictor not functional after restart")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEvictorConcurrentWithWritersNoCorruption(t *testing.T) {
	d := NewDevice(Config{
		Words:   1 << 10,
		Evictor: EvictorConfig{Interval: 100 * time.Microsecond, LinesPerSweep: 32},
	})
	d.StartEvictor()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50000; i++ {
			a := Addr(i % (1 << 10))
			d.Store(a, uint64(i))
		}
	}()
	<-done
	d.StopEvictor()
	d.CrashRescue()
	// After rescue everything must match the final volatile state.
	for a := Addr(0); a < 1<<10; a++ {
		if d.Persisted(a) != d.Load(a) {
			t.Fatalf("word %d: persisted %d != volatile %d after rescue", a, d.Persisted(a), d.Load(a))
		}
	}
}
