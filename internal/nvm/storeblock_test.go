package nvm

import "testing"

func TestStoreBlockWritesAllWords(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.StoreBlock(8, []uint64{1, 2, 3, 4})
	for i, want := range []uint64{1, 2, 3, 4} {
		if got := d.Load(Addr(8 + i)); got != want {
			t.Fatalf("word %d = %d, want %d", 8+i, got, want)
		}
	}
}

func TestStoreBlockEmptyIsNoop(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.StoreBlock(0, nil)
	if d.Stats().Stores != 0 {
		t.Fatal("empty StoreBlock counted a store")
	}
}

func TestStoreBlockMarksDirtyOnce(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.StoreBlock(0, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	if got := d.DirtyLines(); got != 1 {
		t.Fatalf("dirty lines = %d, want 1", got)
	}
	s := d.Stats()
	if s.Stores != 1 {
		t.Fatalf("stores counted = %d, want 1 (one burst)", s.Stores)
	}
}

func TestStoreBlockCrossLinePanics(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	defer func() {
		if recover() == nil {
			t.Fatal("cross-line StoreBlock did not panic")
		}
	}()
	d.StoreBlock(6, []uint64{1, 2, 3, 4}) // words 6..9 span lines 0 and 1
}

func TestStoreBlockDroppedAfterCrash(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.CrashRescue()
	d.StoreBlock(0, []uint64{9, 9})
	if d.Load(0) != 0 {
		t.Fatal("StoreBlock after crash reached the volatile image")
	}
}

func TestStoreBlockSurvivesRescue(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.StoreBlock(16, []uint64{7, 8, 9})
	d.CrashRescue()
	for i, want := range []uint64{7, 8, 9} {
		if got := d.Persisted(Addr(16 + i)); got != want {
			t.Fatalf("persisted word %d = %d, want %d", 16+i, got, want)
		}
	}
}

// --- cache-latency model ---

func TestMissModelDisabledByDefault(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	if d.cacheTags != nil {
		t.Fatal("latency model active without MissCost")
	}
}

func TestMissModelInstallsOnLoad(t *testing.T) {
	d := NewDevice(Config{Words: 1 << 12, MissCost: 10, MissLines: 16})
	d.Load(0)
	line := d.LineOf(0)
	if d.cacheTags[line&d.tagMask] != line+1 {
		t.Fatal("load did not install its line in the tag table")
	}
}

func TestMissModelInstallsOnStore(t *testing.T) {
	d := NewDevice(Config{Words: 1 << 12, MissCost: 10, MissLines: 16})
	d.Store(64, 5)
	line := d.LineOf(64)
	if d.cacheTags[line&d.tagMask] != line+1 {
		t.Fatal("store did not install its line in the tag table")
	}
}

func TestMissModelDirectMappedEviction(t *testing.T) {
	// Two lines mapping to the same tag slot evict each other.
	d := NewDevice(Config{Words: 1 << 12, MissCost: 10, MissLines: 16})
	d.Load(0)            // line 0 -> slot 0
	d.Load(Addr(16 * 8)) // line 16 -> slot 0 (16 % 16 == 0)
	line0 := d.LineOf(0)
	if d.cacheTags[0] == line0+1 {
		t.Fatal("conflicting line did not evict the previous tag")
	}
}

func TestMissLinesRoundedToPowerOfTwo(t *testing.T) {
	d := NewDevice(Config{Words: 64, MissCost: 1, MissLines: 100})
	if len(d.cacheTags) != 128 {
		t.Fatalf("tag table size = %d, want 128", len(d.cacheTags))
	}
}

func TestConfigValidateNegativeMissCost(t *testing.T) {
	if err := (Config{Words: 10, LineWords: 8, MissCost: -1}).Validate(); err == nil {
		t.Fatal("negative MissCost accepted")
	}
	if err := (Config{Words: 10, LineWords: 8, MissLines: -1}).Validate(); err == nil {
		t.Fatal("negative MissLines accepted")
	}
}
