package nvm

import (
	"sync"
	"sync/atomic"
	"time"
)

// evictor models cache replacement: a background goroutine that writes
// dirty lines back to the persisted image at a configurable rate. Its
// existence is what makes the non-TSP hazard realistic — at any crash
// instant, an arbitrary *subset* of recent stores has already reached
// durable media, so recovery cannot rely on either "all lost" or "all
// kept" without an explicit mechanism.
type evictor struct {
	d       *Device
	cfg     EvictorConfig
	stop    chan struct{}
	done    chan struct{}
	startMu sync.Mutex
	started bool
	stopped bool
	next    uint64 // round-robin scan position
}

func newEvictor(d *Device, cfg EvictorConfig) *evictor {
	return &evictor{d: d, cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// StartEvictor launches the background evictor if one is configured.
// Calling it on a device without an evictor, or twice, is a no-op.
func (d *Device) StartEvictor() {
	e := d.evictor
	if e == nil {
		return
	}
	e.startMu.Lock()
	defer e.startMu.Unlock()
	if e.started || e.stopped {
		return
	}
	e.started = true
	go e.run()
}

// StopEvictor halts the background evictor and waits for it to exit. It
// is safe to call even if the evictor was never started or configured,
// and safe to call more than once.
func (d *Device) StopEvictor() {
	e := d.evictor
	if e == nil {
		return
	}
	e.startMu.Lock()
	wasStarted := e.started
	if !e.stopped {
		e.stopped = true
		close(e.stop)
	}
	e.startMu.Unlock()
	if wasStarted {
		<-e.done
	}
}

func (e *evictor) run() {
	defer close(e.done)
	t := time.NewTicker(e.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			e.sweep()
		}
	}
}

// sweep writes back up to LinesPerSweep dirty lines, scanning round-robin
// so every line eventually gets evicted under sustained dirtying.
func (e *evictor) sweep() {
	d := e.d
	lines := uint64(len(d.dirty))
	written := 0
	for scanned := uint64(0); scanned < lines && written < e.cfg.LinesPerSweep; scanned++ {
		line := e.next
		e.next = (e.next + 1) % lines
		if atomic.LoadUint32(&d.dirty[line]) != 0 {
			d.flushLine(line, false)
			written++
		}
	}
}
