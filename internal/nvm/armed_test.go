package nvm

import "testing"

func TestArmCrashFiresAfterCountdown(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.ArmCrashAfter(3, CrashOptions{RescueFraction: 1})
	d.Store(0, 1) // 1
	d.Store(1, 2) // 2
	d.Store(2, 3) // 3: allowed
	if d.Crashed() {
		t.Fatal("crash fired early")
	}
	d.Store(3, 4) // the 4th store triggers and is swallowed
	if !d.Crashed() {
		t.Fatal("armed crash did not fire")
	}
	// The first three stores were rescued; the trigger store was not.
	for i, want := range []uint64{1, 2, 3, 0} {
		if got := d.Persisted(Addr(i)); got != want {
			t.Fatalf("persisted[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestArmCrashZeroFiresOnNextStore(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.ArmCrashAfter(0, CrashOptions{RescueFraction: 1})
	d.Store(0, 9)
	if !d.Crashed() {
		t.Fatal("crash did not fire on the next store")
	}
	if d.Persisted(0) != 0 {
		t.Fatal("the triggering store leaked through")
	}
}

func TestArmCrashCountsAllStoreClasses(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.ArmCrashAfter(2, CrashOptions{RescueFraction: 1})
	d.Add(0, 1)                     // 1
	d.CAS(1, 0, 5)                  // 2
	d.StoreBlock(8, []uint64{1, 2}) // 3: fires, swallowed
	if !d.Crashed() {
		t.Fatal("StoreBlock did not trigger the armed crash")
	}
	if d.Persisted(8) != 0 {
		t.Fatal("triggering StoreBlock leaked through")
	}
	if d.Persisted(0) != 1 || d.Persisted(1) != 5 {
		t.Fatal("pre-trigger operations were not rescued")
	}
}

func TestFailedCASDoesNotCountDown(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.Store(0, 7)
	d.ArmCrashAfter(1, CrashOptions{RescueFraction: 1})
	// Hmm: CAS counts down at entry regardless of success (it is a
	// store-class operation reaching the device). Verify the documented
	// behaviour: two CAS attempts, second fires.
	d.CAS(0, 999, 1) // fails, but counts: 1
	d.CAS(0, 7, 1)   // fires, swallowed
	if !d.Crashed() {
		t.Fatal("second CAS did not trigger")
	}
	if d.Persisted(0) != 7 {
		t.Fatalf("persisted[0] = %d, want pre-trigger 7", d.Persisted(0))
	}
}

func TestDisarmCancels(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.ArmCrashAfter(0, CrashOptions{RescueFraction: 1})
	d.DisarmCrash()
	d.Store(0, 1)
	if d.Crashed() {
		t.Fatal("disarmed crash fired")
	}
}

func TestRestartClearsArmedCrash(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.CrashRescue()
	d.ArmCrashAfter(0, CrashOptions{RescueFraction: 1})
	d.Restart()
	d.Store(0, 1)
	if d.Crashed() {
		t.Fatal("armed crash survived Restart")
	}
}

func TestLoadsDoNotCountDown(t *testing.T) {
	d := NewDevice(Config{Words: 64})
	d.ArmCrashAfter(0, CrashOptions{RescueFraction: 1})
	for i := 0; i < 100; i++ {
		d.Load(0)
	}
	if d.Crashed() {
		t.Fatal("loads triggered a store-armed crash")
	}
}
