package nvm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: after any sequence of stores and flushes followed by a crash
// with full rescue, persisted == volatile for every word.
func TestQuickRescueEqualsVolatile(t *testing.T) {
	f := func(ops []uint32, seed int64) bool {
		d := NewDevice(Config{Words: 256})
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			a := Addr(op % 256)
			switch op % 3 {
			case 0:
				d.Store(a, uint64(rng.Int63()))
			case 1:
				d.Add(a, uint64(op))
			case 2:
				d.FlushWord(a)
			}
		}
		want := make([]uint64, 256)
		for a := Addr(0); a < 256; a++ {
			want[a] = d.Load(a)
		}
		d.CrashRescue()
		for a := Addr(0); a < 256; a++ {
			if d.Persisted(a) != want[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after a crash with no rescue, every persisted word holds a
// value that was either its initial zero or some value actually stored to
// it and flushed — never an invented value.
func TestQuickDropOnlyKeepsFlushedValues(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDevice(Config{Words: 64})
		// history[a] = set of values ever present at a.
		history := make([]map[uint64]bool, 64)
		for i := range history {
			history[i] = map[uint64]bool{0: true}
		}
		for i, op := range ops {
			a := Addr(op % 64)
			if op%2 == 0 {
				v := uint64(i + 1)
				d.Store(a, v)
				history[a][v] = true
			} else {
				d.FlushWord(a)
			}
		}
		d.CrashDrop()
		for a := Addr(0); a < 64; a++ {
			if !history[a][d.Persisted(a)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a flushed word survives a crash-drop with exactly the value
// it had when its line was last flushed, provided it was not re-stored
// afterwards.
func TestQuickFlushedValueSurvivesDrop(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		d := NewDevice(Config{Words: 8}) // a single line
		var last uint64
		for _, v := range vals {
			d.Store(0, v)
			last = v
		}
		d.FlushWord(0)
		d.CrashDrop()
		return d.Persisted(0) == last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Restart makes the volatile image identical to the persisted
// image regardless of prior history.
func TestQuickRestartEqualsPersisted(t *testing.T) {
	f := func(ops []uint16, frac float64, seed int64) bool {
		frac = math.Abs(frac)
		if math.IsNaN(frac) || math.IsInf(frac, 0) {
			frac = 0.5
		}
		frac -= math.Floor(frac)
		d := NewDevice(Config{Words: 64})
		for i, op := range ops {
			a := Addr(op % 64)
			if op%3 == 0 {
				d.FlushWord(a)
			} else {
				d.Store(a, uint64(i))
			}
		}
		d.CrashPartial(frac, seed)
		want := make([]uint64, 64)
		for a := Addr(0); a < 64; a++ {
			want[a] = d.Persisted(a)
		}
		d.Restart()
		for a := Addr(0); a < 64; a++ {
			if d.Load(a) != want[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/restore is an exact round trip of the persisted image.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(stores []uint64) bool {
		d := NewDevice(Config{Words: 32})
		for i, v := range stores {
			d.Store(Addr(i%32), v)
		}
		d.FlushAll()
		snap := d.SnapshotPersisted()
		d2 := NewDevice(Config{Words: 32})
		if err := d2.RestorePersisted(snap); err != nil {
			return false
		}
		for a := Addr(0); a < 32; a++ {
			if d2.Persisted(a) != d.Persisted(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
