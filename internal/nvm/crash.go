package nvm

import (
	"fmt"
	"math/rand"
)

// CrashOptions controls what a simulated crash does with the dirty lines
// of the volatile image.
//
// The options span the failure/mechanism matrix of the paper's Section 3:
//
//   - RescueFraction == 1 models a tolerated failure under a correct TSP
//     mechanism: the rescue (panic-handler cache flush, NVDIMM save,
//     WSP-style energy-backed evacuation, or POSIX kernel persistence of
//     a shared file-backed mapping) moves every dirty line to safety, so
//     the persisted image reflects *every* store issued before the crash
//     — the "recovery observer" view.
//   - RescueFraction == 0 models a failure with no rescue (e.g. power
//     loss on volatile DRAM with no standby energy): only lines already
//     written back by flushes or eviction survive.
//   - 0 < RescueFraction < 1 models an interrupted or underpowered
//     rescue; each dirty line survives independently with the given
//     probability. Tests use it to probe recovery robustness.
type CrashOptions struct {
	// RescueFraction is the probability that each dirty line is written
	// back at crash time. Must be in [0, 1].
	RescueFraction float64

	// Seed makes partial rescues deterministic. Ignored when
	// RescueFraction is 0 or 1.
	Seed int64
}

// Crash terminates the simulated machine: all subsequent stores are
// dropped (the threads have been killed), and dirty lines are written
// back according to opts. The evictor, if running, should be stopped by
// the caller first — a crashed machine's cache controller is not running
// either, and a racing evictor would blur the rescue fraction.
//
// After Crash, the persisted image is the recovery observer's view of
// memory. Call Restart to begin a new incarnation that reads it.
func (d *Device) Crash(opts CrashOptions) {
	if opts.RescueFraction < 0 || opts.RescueFraction > 1 {
		panic(fmt.Sprintf("nvm: RescueFraction %v out of [0,1]", opts.RescueFraction))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed.Load() {
		return
	}
	d.crashed.Store(true)
	switch {
	case opts.RescueFraction == 1:
		d.tel.IncRescue()
		d.FlushAll()
	case opts.RescueFraction == 0:
		d.tel.IncDrop()
		// Dirty lines are simply lost; nothing to do.
	default:
		d.tel.IncRescue()
		rng := rand.New(rand.NewSource(opts.Seed))
		for line := uint64(0); line < uint64(len(d.dirty)); line++ {
			if d.lineDirty(line) && rng.Float64() < opts.RescueFraction {
				d.flushLine(line, false)
			}
		}
	}
}

// CrashRescue crashes with a complete TSP rescue: every store issued
// before the crash becomes durable.
func (d *Device) CrashRescue() { d.Crash(CrashOptions{RescueFraction: 1}) }

// CrashDrop crashes with no rescue: all dirty lines are lost.
func (d *Device) CrashDrop() { d.Crash(CrashOptions{RescueFraction: 0}) }

// CrashPartial crashes rescuing each dirty line with probability frac,
// deterministically under seed.
func (d *Device) CrashPartial(frac float64, seed int64) {
	d.Crash(CrashOptions{RescueFraction: frac, Seed: seed})
}

// Crashed reports whether a crash has been injected since the last
// restart.
func (d *Device) Crashed() bool { return d.crashed.Load() }

// ArmCrashAfter schedules a crash to fire automatically after `stores`
// more store-class operations (Store, StoreBlock, successful CAS, Add)
// reach the device, using opts at that moment. It turns any code path —
// including recovery itself — into a fault-injection target without
// cooperation from the code under test: arm the countdown, run the code,
// and the crash lands mid-flight at word-store granularity.
//
// Arming with stores == 0 crashes on the very next store. A crash or
// restart clears any armed countdown.
func (d *Device) ArmCrashAfter(stores uint64, opts CrashOptions) {
	if opts.RescueFraction < 0 || opts.RescueFraction > 1 {
		panic(fmt.Sprintf("nvm: RescueFraction %v out of [0,1]", opts.RescueFraction))
	}
	d.armedOpts.Store(&opts)
	d.armed.Store(int64(stores) + 1)
}

// DisarmCrash cancels a pending armed crash.
func (d *Device) DisarmCrash() {
	d.armed.Store(0)
	d.armedOpts.Store(nil)
}

// countdown is called by every store-class operation; when an armed
// countdown reaches zero the crash fires BEFORE the triggering store
// takes effect (the store is the one that never happened).
func (d *Device) countdown() bool {
	if d.armed.Load() == 0 {
		return false
	}
	if d.armed.Add(-1) != 0 {
		return false
	}
	optsp := d.armedOpts.Load()
	d.armedOpts.Store(nil)
	if optsp == nil {
		return false
	}
	d.Crash(*optsp)
	return true
}

// Restart begins a new machine incarnation after a crash: the volatile
// image is re-read from the persisted image (what the durable medium
// holds is all the new incarnation can see), dirty bits are cleared, and
// stores are accepted again. A fresh evictor is installed if one is
// configured, ready for StartEvictor.
//
// Restart on a device that never crashed is permitted and simply
// discards unflushed volatile state, which is occasionally useful in
// tests; it still requires the evictor to be stopped.
func (d *Device) Restart() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for w := range d.volatile {
		v := d.persistedLoad(uint64(w))
		d.volatileStore(uint64(w), v)
	}
	for line := range d.dirty {
		d.dirtyClear(uint64(line))
	}
	if d.cfg.Evictor.Enabled() {
		d.evictor = newEvictor(d, d.cfg.Evictor)
	}
	d.armed.Store(0)
	d.armedOpts.Store(nil)
	d.crashed.Store(false)
}

// lineDirty reports whether the given line index is dirty.
func (d *Device) lineDirty(line uint64) bool {
	return d.dirtyLoad(line) != 0
}
