package nvm

import (
	"sync"
	"testing"
)

func testDevice(t *testing.T, words int) *Device {
	t.Helper()
	return NewDevice(Config{Words: words})
}

func TestLoadStoreRoundTrip(t *testing.T) {
	d := testDevice(t, 128)
	d.Store(3, 42)
	if got := d.Load(3); got != 42 {
		t.Fatalf("Load(3) = %d, want 42", got)
	}
}

func TestZeroInitialized(t *testing.T) {
	d := testDevice(t, 64)
	for a := Addr(0); a < 64; a++ {
		if d.Load(a) != 0 {
			t.Fatalf("word %d not zero-initialized", a)
		}
		if d.Persisted(a) != 0 {
			t.Fatalf("persisted word %d not zero-initialized", a)
		}
	}
}

func TestStoreDoesNotReachPersistedWithoutFlush(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(5, 7)
	if got := d.Persisted(5); got != 0 {
		t.Fatalf("Persisted(5) = %d before any flush, want 0", got)
	}
}

func TestFlushWordPersistsWholeLine(t *testing.T) {
	d := testDevice(t, 64)
	// Words 0..7 share the first 8-word line.
	for a := Addr(0); a < 8; a++ {
		d.Store(a, uint64(a)+100)
	}
	d.FlushWord(0)
	for a := Addr(0); a < 8; a++ {
		if got := d.Persisted(a); got != uint64(a)+100 {
			t.Fatalf("Persisted(%d) = %d after line flush, want %d", a, got, a+100)
		}
	}
	// Word 8 is on the next line and must remain unflushed.
	d.Store(8, 999)
	if d.Persisted(8) != 0 {
		t.Fatal("flush of line 0 leaked into line 1")
	}
}

func TestDirtyTracking(t *testing.T) {
	d := testDevice(t, 64)
	if d.DirtyLines() != 0 {
		t.Fatal("fresh device has dirty lines")
	}
	d.Store(0, 1)
	d.Store(1, 2) // same line
	if got := d.DirtyLines(); got != 1 {
		t.Fatalf("DirtyLines = %d after stores to one line, want 1", got)
	}
	d.Store(9, 3) // second line
	if got := d.DirtyLines(); got != 2 {
		t.Fatalf("DirtyLines = %d, want 2", got)
	}
	d.FlushWord(0)
	if d.LineDirty(0) {
		t.Fatal("line 0 still dirty after flush")
	}
	if !d.LineDirty(9) {
		t.Fatal("line 1 lost its dirty bit")
	}
}

func TestFlushRangeSpansLines(t *testing.T) {
	d := testDevice(t, 64)
	for a := Addr(4); a < 20; a++ {
		d.Store(a, uint64(a))
	}
	d.FlushRange(4, 16) // touches lines 0, 1 and 2
	for a := Addr(4); a < 20; a++ {
		if d.Persisted(a) != uint64(a) {
			t.Fatalf("word %d not persisted by FlushRange", a)
		}
	}
	if got := d.Stats().Flushes; got != 3 {
		t.Fatalf("FlushRange over 3 lines charged %d flushes, want 3", got)
	}
}

func TestFlushRangeZeroWordsIsNoop(t *testing.T) {
	d := testDevice(t, 64)
	d.FlushRange(0, 0)
	if d.Stats().Flushes != 0 {
		t.Fatal("FlushRange(_, 0) charged a flush")
	}
}

func TestCASSemantics(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(1, 10)
	if d.CAS(1, 11, 12) {
		t.Fatal("CAS succeeded with wrong expected value")
	}
	if !d.CAS(1, 10, 12) {
		t.Fatal("CAS failed with correct expected value")
	}
	if d.Load(1) != 12 {
		t.Fatalf("Load(1) = %d after CAS, want 12", d.Load(1))
	}
}

func TestCASMarksDirty(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(0, 5)
	d.FlushWord(0)
	if d.LineDirty(0) {
		t.Fatal("line dirty after flush")
	}
	d.CAS(0, 5, 6)
	if !d.LineDirty(0) {
		t.Fatal("successful CAS did not mark line dirty")
	}
}

func TestFailedCASDoesNotMarkDirty(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(0, 5)
	d.FlushWord(0)
	d.CAS(0, 99, 6)
	if d.LineDirty(0) {
		t.Fatal("failed CAS marked line dirty")
	}
}

func TestAdd(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(2, 40)
	if got := d.Add(2, 2); got != 42 {
		t.Fatalf("Add returned %d, want 42", got)
	}
	if d.Load(2) != 42 {
		t.Fatalf("Load after Add = %d, want 42", d.Load(2))
	}
}

func TestCrashRescuePersistsEverything(t *testing.T) {
	d := testDevice(t, 64)
	for a := Addr(0); a < 64; a++ {
		d.Store(a, uint64(a)*3)
	}
	d.CrashRescue()
	for a := Addr(0); a < 64; a++ {
		if d.Persisted(a) != uint64(a)*3 {
			t.Fatalf("word %d lost despite TSP rescue", a)
		}
	}
}

func TestCrashDropLosesUnflushedStores(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(0, 111)
	d.FlushWord(0)
	d.Store(0, 222) // re-dirtied, not flushed
	d.Store(20, 333)
	d.CrashDrop()
	if got := d.Persisted(0); got != 111 {
		t.Fatalf("Persisted(0) = %d after drop, want the flushed 111", got)
	}
	if got := d.Persisted(20); got != 0 {
		t.Fatalf("Persisted(20) = %d after drop, want 0", got)
	}
}

func TestStoresAfterCrashAreDropped(t *testing.T) {
	d := testDevice(t, 64)
	d.CrashRescue()
	d.Store(0, 7)
	if d.Load(0) != 0 {
		t.Fatal("store after crash reached the volatile image")
	}
	if d.Add(1, 5); d.Load(1) != 0 {
		t.Fatal("Add after crash reached the volatile image")
	}
	if d.CAS(2, 0, 9) {
		t.Fatal("CAS after crash claimed success")
	}
}

func TestCrashIsIdempotent(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(0, 1)
	d.CrashDrop()
	d.CrashRescue() // must not resurrect the dropped store
	if d.Persisted(0) != 0 {
		t.Fatal("second crash rescued a line dropped by the first")
	}
}

func TestRestartReadsPersistedImage(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(0, 10)
	d.FlushWord(0)
	d.Store(0, 20) // will be lost
	d.CrashDrop()
	d.Restart()
	if got := d.Load(0); got != 10 {
		t.Fatalf("post-restart Load(0) = %d, want 10", got)
	}
	if d.Crashed() {
		t.Fatal("device still reports crashed after Restart")
	}
	d.Store(0, 30)
	if d.Load(0) != 30 {
		t.Fatal("stores rejected after restart")
	}
}

func TestRestartClearsDirtyBits(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(0, 1)
	d.CrashDrop()
	d.Restart()
	if d.DirtyLines() != 0 {
		t.Fatal("dirty lines survived restart")
	}
}

func TestCrashPartialDeterministic(t *testing.T) {
	run := func() []uint64 {
		d := testDevice(t, 512)
		for a := Addr(0); a < 512; a++ {
			d.Store(a, uint64(a)+1)
		}
		d.CrashPartial(0.5, 12345)
		out := make([]uint64, 512)
		for a := Addr(0); a < 512; a++ {
			out[a] = d.Persisted(a)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("partial rescue not deterministic at word %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCrashPartialRescuesSomeLoses(t *testing.T) {
	d := testDevice(t, 4096)
	for a := Addr(0); a < 4096; a++ {
		d.Store(a, 1)
	}
	d.CrashPartial(0.5, 7)
	var kept, lost int
	for a := Addr(0); a < 4096; a++ {
		if d.Persisted(a) == 1 {
			kept++
		} else {
			lost++
		}
	}
	if kept == 0 || lost == 0 {
		t.Fatalf("partial rescue at 0.5 kept %d lost %d; expected a mix", kept, lost)
	}
	// Survival is line-granular: within any line, all words share a fate.
	for line := uint64(0); line < d.Lines(); line++ {
		base := Addr(line * 8)
		first := d.Persisted(base)
		for w := Addr(1); w < 8; w++ {
			if d.Persisted(base+w) != first {
				t.Fatalf("line %d partially rescued; rescue must be line-granular", line)
			}
		}
	}
}

func TestCrashRescueIsStrictPrefix(t *testing.T) {
	// Under a full TSP rescue, the persisted image must equal the
	// volatile image: the recovery observer sees every store issued.
	d := testDevice(t, 256)
	for a := Addr(0); a < 256; a++ {
		d.Store(a, uint64(a)^0xdead)
	}
	before := make([]uint64, 256)
	for a := Addr(0); a < 256; a++ {
		before[a] = d.Load(a)
	}
	d.CrashRescue()
	for a := Addr(0); a < 256; a++ {
		if d.Persisted(a) != before[a] {
			t.Fatalf("word %d: persisted %d != volatile-at-crash %d", a, d.Persisted(a), before[a])
		}
	}
}

func TestConcurrentStoresRaceFree(t *testing.T) {
	d := NewDevice(Config{Words: 1 << 12})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				a := Addr((g*512 + i%512))
				d.Store(a, uint64(i))
				_ = d.Load(a)
				if i%37 == 0 {
					d.FlushWord(a)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConcurrentAddIsAtomic(t *testing.T) {
	d := testDevice(t, 64)
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d.Add(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := d.Load(0); got != goroutines*perG {
		t.Fatalf("concurrent Add lost updates: %d, want %d", got, goroutines*perG)
	}
}

func TestStatsCounters(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(0, 1)
	d.Load(0)
	d.CAS(0, 1, 2)
	d.FlushWord(0)
	s := d.Stats()
	if s.Stores != 1 || s.Loads != 1 || s.CAS != 1 || s.Flushes != 1 {
		t.Fatalf("unexpected stats: %s", s)
	}
	d.ResetStats()
	if s := d.Stats(); s.Stores != 0 || s.Loads != 0 {
		t.Fatalf("ResetStats left counters: %s", s)
	}
}

func TestStatsSub(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(0, 1)
	before := d.Stats()
	d.Store(0, 2)
	d.Store(0, 3)
	delta := d.Stats().Sub(before)
	if delta.Stores != 2 {
		t.Fatalf("delta.Stores = %d, want 2", delta.Stores)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := testDevice(t, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Load did not panic")
		}
	}()
	d.Load(16)
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{Words: 10, LineWords: 8}, true},
		{"zero words", Config{Words: 0, LineWords: 8}, false},
		{"negative words", Config{Words: -1, LineWords: 8}, false},
		{"zero line", Config{Words: 10, LineWords: 0}, false},
		{"negative flush", Config{Words: 10, LineWords: 8, FlushCost: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	d := NewDevice(Config{Words: 100})
	if d.Config().LineWords != DefaultLineWords {
		t.Fatalf("LineWords default = %d, want %d", d.Config().LineWords, DefaultLineWords)
	}
	// 100 words / 8-word lines -> 13 lines (ceiling).
	if d.Lines() != 13 {
		t.Fatalf("Lines() = %d, want 13", d.Lines())
	}
}

func TestDeviceSizeNotLineMultiple(t *testing.T) {
	// Last line is short; flushing it must not run off the end.
	d := NewDevice(Config{Words: 10})
	d.Store(9, 77)
	d.FlushWord(9)
	if d.Persisted(9) != 77 {
		t.Fatal("short final line not flushed correctly")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d := testDevice(t, 64)
	d.Store(1, 11)
	d.Store(2, 22)
	d.FlushAll()
	snap := d.SnapshotPersisted()

	d2 := testDevice(t, 64)
	if err := d2.RestorePersisted(snap); err != nil {
		t.Fatalf("RestorePersisted: %v", err)
	}
	d2.Restart()
	if d2.Load(1) != 11 || d2.Load(2) != 22 {
		t.Fatal("restored device does not reflect the snapshot")
	}
}

func TestRestoreWrongSizeRejected(t *testing.T) {
	d := testDevice(t, 64)
	if err := d.RestorePersisted(make([]uint64, 63)); err == nil {
		t.Fatal("RestorePersisted accepted a wrong-size snapshot")
	}
}

func TestSpinZeroIsFree(t *testing.T) {
	// Just exercises the spin path; zero-cost flush must not crash.
	Spin(0)
	Spin(10)
	d := NewDevice(Config{Words: 16, FlushCost: 5})
	d.Store(0, 1)
	d.FlushWord(0)
	if d.Persisted(0) != 1 {
		t.Fatal("flush with nonzero cost did not persist")
	}
}
