package core

import (
	"fmt"
	"strings"
)

// Section 3: "Requirements might even designate different fault
// tolerance requirements for different subsets of application data" —
// e.g. the process heap is critical but thread execution stacks may be
// lost; a commit log must survive power loss while a cache of derived
// results need only survive process crashes. This file derives a plan
// per data class and summarizes what the composite application pays.

// DataClass names one subset of application data with its own
// fault-tolerance contract.
type DataClass struct {
	// Name identifies the class in reports ("heap", "stacks", "cache").
	Name string

	// Critical reports whether the class must survive at all. Expendable
	// classes (thread stacks in the paper's example) get a trivial plan.
	Critical bool

	// Req is the class's contract; ignored when Critical is false.
	Req Requirements
}

// ClassPlan pairs a data class with its derived mechanism.
type ClassPlan struct {
	Class DataClass
	// Plan is the derived mechanism; zero-valued when the class is
	// expendable or unsatisfiable.
	Plan Plan
	// Err is non-nil when no mechanism can satisfy the class.
	Err error
}

// ProfileResult is the composite outcome for a multi-class application.
type ProfileResult struct {
	Classes []ClassPlan

	// MaxOverhead is the highest runtime-overhead class any critical,
	// satisfiable data class pays — the figure that bounds update-path
	// slowdown for code touching all classes.
	MaxOverhead Overhead

	// AllTSP reports whether every critical, satisfiable class got a
	// procrastinating plan.
	AllTSP bool

	// Unsatisfiable lists class names whose contracts no mechanism on
	// this hardware can meet.
	Unsatisfiable []string
}

// String renders the composite report.
func (r ProfileResult) String() string {
	var b strings.Builder
	for _, cp := range r.Classes {
		switch {
		case !cp.Class.Critical:
			fmt.Fprintf(&b, "%-12s expendable: no mechanism\n", cp.Class.Name)
		case cp.Err != nil:
			fmt.Fprintf(&b, "%-12s UNSATISFIABLE: %v\n", cp.Class.Name, cp.Err)
		default:
			tsp := "prevention"
			if cp.Plan.TSP {
				tsp = "TSP"
			}
			fmt.Fprintf(&b, "%-12s %s, overhead %s\n", cp.Class.Name, tsp, cp.Plan.Overhead)
		}
	}
	fmt.Fprintf(&b, "composite: max overhead %s, all-TSP %v\n", r.MaxOverhead, r.AllTSP)
	return b.String()
}

// DeriveProfile derives a plan for every data class on the given
// hardware. Expendable classes are never an error; unsatisfiable
// critical classes are collected rather than failing the whole profile,
// so callers can see the full picture.
func DeriveProfile(classes []DataClass, hw Hardware) (ProfileResult, error) {
	if len(classes) == 0 {
		return ProfileResult{}, fmt.Errorf("core: no data classes given")
	}
	seen := map[string]bool{}
	res := ProfileResult{AllTSP: true}
	for _, c := range classes {
		if c.Name == "" {
			return ProfileResult{}, fmt.Errorf("core: data class with empty name")
		}
		if seen[c.Name] {
			return ProfileResult{}, fmt.Errorf("core: duplicate data class %q", c.Name)
		}
		seen[c.Name] = true
		cp := ClassPlan{Class: c}
		if c.Critical {
			plan, err := DerivePlan(c.Req, hw)
			if err != nil {
				cp.Err = err
				res.Unsatisfiable = append(res.Unsatisfiable, c.Name)
			} else {
				cp.Plan = plan
				if plan.Overhead > res.MaxOverhead {
					res.MaxOverhead = plan.Overhead
				}
				if !plan.TSP {
					res.AllTSP = false
				}
			}
		}
		res.Classes = append(res.Classes, cp)
	}
	return res, nil
}

// HeapAndStacks is the paper's own example: the process heap is critical
// (survives the given failures with the given isolation style), while
// thread execution stacks are expendable.
func HeapAndStacks(req Requirements) []DataClass {
	return []DataClass{
		{Name: "heap", Critical: true, Req: req},
		{Name: "stacks", Critical: false},
	}
}
