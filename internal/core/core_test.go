package core

import (
	"errors"
	"strings"
	"testing"
)

func mustPlan(t *testing.T, req Requirements, hw Hardware) Plan {
	t.Helper()
	p, err := DerivePlan(req, hw)
	if err != nil {
		t.Fatalf("DerivePlan: %v", err)
	}
	return p
}

func hasAction(as []Action, a Action) bool {
	for _, x := range as {
		if x == a {
			return true
		}
	}
	return false
}

// --- The Section 3 headline: process crashes + shared mappings = free ---

func TestProcessCrashNonBlockingZeroOverhead(t *testing.T) {
	p := mustPlan(t, Requirements{
		Tolerate:  []Failure{ProcessCrash},
		Isolation: NonBlocking,
	}, ConventionalDesktop())
	if !p.TSP {
		t.Fatal("plan is not TSP despite kernel persistence")
	}
	if p.Overhead != OverheadZero {
		t.Fatalf("overhead = %v, want zero", p.Overhead)
	}
	if len(p.Runtime) != 0 {
		t.Fatalf("runtime actions = %v, want none", p.Runtime)
	}
	if p.Recovery != RecoveryNone {
		t.Fatalf("recovery = %v, want none", p.Recovery)
	}
	if !hasAction(p.Rescue[ProcessCrash], ActionKernelPersistence) {
		t.Fatalf("rescue for process crash = %v, want kernel persistence", p.Rescue[ProcessCrash])
	}
}

func TestProcessCrashMutexBasedLoggingOnly(t *testing.T) {
	p := mustPlan(t, Requirements{
		Tolerate:  []Failure{ProcessCrash},
		Isolation: MutexBased,
	}, ConventionalDesktop())
	if !p.TSP {
		t.Fatal("plan should be TSP")
	}
	if p.Overhead != OverheadLogging {
		t.Fatalf("overhead = %v, want logging (Atlas TSP mode)", p.Overhead)
	}
	if !hasAction(p.Runtime, ActionUndoLog) {
		t.Fatal("mutex-based plan lacks undo logging")
	}
	if hasAction(p.Runtime, ActionFlushLogEntry) {
		t.Fatal("TSP plan must not flush log entries synchronously")
	}
	if p.Recovery != RecoveryRollback {
		t.Fatalf("recovery = %v, want rollback", p.Recovery)
	}
}

// --- Kernel panics ---

func TestKernelPanicNeedsPanicFlush(t *testing.T) {
	// Desktop without a panic-flush kernel: caches die with the kernel,
	// so the plan must fall back to preventive flushing (non-TSP).
	hw := ConventionalDesktop()
	hw.PanicWriteToStorage = false
	p := mustPlan(t, Requirements{
		Tolerate:  []Failure{ProcessCrash, KernelPanic},
		Isolation: MutexBased,
	}, hw)
	if p.TSP {
		t.Fatal("TSP should not hold without panic-time cache flush")
	}
	if p.Overhead < OverheadLoggingFlush {
		t.Fatalf("overhead = %v, want at least logging+flush", p.Overhead)
	}
}

func TestKernelPanicWithPanicFlushOnNVRAM(t *testing.T) {
	p := mustPlan(t, Requirements{
		Tolerate:  []Failure{ProcessCrash, KernelPanic},
		Isolation: MutexBased,
	}, NVRAMMachine())
	if !p.TSP {
		t.Fatal("NVRAM + panic flush should admit TSP for kernel panics")
	}
	if !hasAction(p.Rescue[KernelPanic], ActionRescueFlushCaches) {
		t.Fatalf("kernel panic rescue = %v, want cache flush", p.Rescue[KernelPanic])
	}
	if p.Overhead != OverheadLogging {
		t.Fatalf("overhead = %v, want logging", p.Overhead)
	}
}

func TestKernelPanicVolatileDRAMNeedsPanicWriteToStorage(t *testing.T) {
	// DRAM that does not survive reboot: the panic handler must write
	// the heap down to storage (the HP Linux patch scenario).
	hw := ConventionalServerUPS()
	p := mustPlan(t, Requirements{
		Tolerate:  []Failure{KernelPanic},
		Isolation: NonBlocking,
	}, hw)
	if !p.TSP {
		t.Fatal("panic flush + panic write-to-storage should admit TSP")
	}
	r := p.Rescue[KernelPanic]
	if !hasAction(r, ActionRescueFlushCaches) || !hasAction(r, ActionRescueWriteHeapToStorage) {
		t.Fatalf("kernel panic rescue = %v, want flush-caches + write-heap-to-storage", r)
	}
}

func TestKernelPanicWarmRebootAvoidsStorageWrite(t *testing.T) {
	hw := ConventionalDesktop()
	hw.PanicFlush = true
	hw.WarmRebootPreservesDRAM = true
	p := mustPlan(t, Requirements{
		Tolerate:  []Failure{KernelPanic},
		Isolation: NonBlocking,
	}, hw)
	if !p.TSP {
		t.Fatal("warm reboot preservation should admit TSP")
	}
	if hasAction(p.Rescue[KernelPanic], ActionRescueWriteHeapToStorage) {
		t.Fatal("warm-reboot machine should not need a panic-time storage write")
	}
}

// --- Power outages ---

func TestPowerOutageNVRAMNeedsOnlyPSUResidual(t *testing.T) {
	p := mustPlan(t, Requirements{
		Tolerate:  []Failure{PowerOutage},
		Isolation: NonBlocking,
	}, NVRAMMachine())
	if !p.TSP {
		t.Fatal("NVRAM + PSU residual energy should admit TSP for power outages")
	}
	r := p.Rescue[PowerOutage]
	if !hasAction(r, ActionRescueFlushCaches) {
		t.Fatalf("rescue = %v, want cache flush", r)
	}
	if hasAction(r, ActionRescueSaveDRAM) {
		t.Fatal("NVRAM machine should not need DRAM evacuation")
	}
}

func TestPowerOutageWSPTwoStage(t *testing.T) {
	// Volatile DRAM + supercap: Whole System Persistence's two stages.
	hw := ConventionalDesktop()
	hw.Energy = EnergySupercap
	p := mustPlan(t, Requirements{
		Tolerate:  []Failure{PowerOutage},
		Isolation: NonBlocking,
	}, hw)
	if !p.TSP {
		t.Fatal("supercap-backed DRAM should admit a WSP-style TSP design")
	}
	r := p.Rescue[PowerOutage]
	if !hasAction(r, ActionRescueFlushCaches) || !hasAction(r, ActionRescueSaveDRAM) {
		t.Fatalf("rescue = %v, want two-stage flush+save", r)
	}
}

func TestPowerOutageNoEnergyForcesSyncIO(t *testing.T) {
	p := mustPlan(t, Requirements{
		Tolerate:  []Failure{PowerOutage},
		Isolation: MutexBased,
	}, ConventionalDesktop())
	if p.TSP {
		t.Fatal("no standby energy: TSP must not hold")
	}
	if p.Overhead != OverheadSyncIO {
		t.Fatalf("overhead = %v, want sync-io", p.Overhead)
	}
	if !hasAction(p.Runtime, ActionSyncWriteStorage) {
		t.Fatalf("runtime = %v, want sync-write-storage", p.Runtime)
	}
}

func TestPowerOutageUnsatisfiableWithoutAnything(t *testing.T) {
	hw := Hardware{Memory: MemDRAM} // no energy, no storage
	_, err := DerivePlan(Requirements{
		Tolerate:  []Failure{PowerOutage},
		Isolation: NonBlocking,
	}, hw)
	var u *UnsatisfiableError
	if !errors.As(err, &u) {
		t.Fatalf("err = %v, want UnsatisfiableError", err)
	}
	if u.Failure != PowerOutage {
		t.Fatalf("unsatisfiable failure = %v, want power outage", u.Failure)
	}
}

// --- Site disasters ---

func TestSiteDisasterRequiresReplication(t *testing.T) {
	_, err := DerivePlan(Requirements{
		Tolerate:  []Failure{SiteDisaster},
		Isolation: NonBlocking,
	}, NVRAMMachine())
	var u *UnsatisfiableError
	if !errors.As(err, &u) {
		t.Fatalf("err = %v, want UnsatisfiableError", err)
	}
}

func TestSiteDisasterIsNeverTSP(t *testing.T) {
	p := mustPlan(t, Requirements{
		Tolerate:  []Failure{SiteDisaster},
		Isolation: NonBlocking,
	}, GeoReplicated())
	if p.TSP {
		t.Fatal("site disasters give no notice; the plan cannot be TSP")
	}
	if p.Overhead != OverheadSyncIO {
		t.Fatalf("overhead = %v, want sync-io", p.Overhead)
	}
	if !hasAction(p.Runtime, ActionSyncReplicate) {
		t.Fatalf("runtime = %v, want sync-replicate", p.Runtime)
	}
}

// --- Corruption mode ---

func TestCorruptingFailuresRequireMutexBased(t *testing.T) {
	_, err := DerivePlan(Requirements{
		Tolerate:  []Failure{ProcessCrash},
		Mode:      Corrupting,
		Isolation: NonBlocking,
	}, NVRAMMachine())
	var u *UnsatisfiableError
	if !errors.As(err, &u) {
		t.Fatalf("err = %v, want UnsatisfiableError for corrupting + non-blocking", err)
	}
}

func TestCorruptingFailuresWithAtlas(t *testing.T) {
	p := mustPlan(t, Requirements{
		Tolerate:  []Failure{ProcessCrash},
		Mode:      Corrupting,
		Isolation: MutexBased,
	}, NVRAMMachine())
	if p.Recovery != RecoveryRollback {
		t.Fatal("corrupting failures need rollback recovery")
	}
}

// --- The Table-1 configurations: Atlas TSP vs non-TSP on one machine ---

func TestAtlasTSPVersusNonTSPOverheadOrdering(t *testing.T) {
	req := Requirements{
		Tolerate:  []Failure{ProcessCrash, KernelPanic, PowerOutage},
		Isolation: MutexBased,
	}
	tspPlan := mustPlan(t, req, NVRAMMachine())
	hwNoTSP := NVRAMMachine()
	hwNoTSP.PanicFlush = false
	hwNoTSP.Energy = EnergyNone
	nonTSPPlan := mustPlan(t, req, hwNoTSP)

	if !tspPlan.TSP || nonTSPPlan.TSP {
		t.Fatalf("TSP flags: %v/%v, want true/false", tspPlan.TSP, nonTSPPlan.TSP)
	}
	if tspPlan.Overhead >= nonTSPPlan.Overhead {
		t.Fatalf("TSP overhead %v must be strictly below non-TSP %v",
			tspPlan.Overhead, nonTSPPlan.Overhead)
	}
}

// --- Full matrix smoke test ---

func TestPlanMatrixAllCombinationsEitherPlanOrUnsatisfiable(t *testing.T) {
	hws := map[string]Hardware{
		"desktop":    ConventionalDesktop(),
		"server-ups": ConventionalServerUPS(),
		"nvdimm":     NVDIMMServer(),
		"nvram":      NVRAMMachine(),
		"legacy":     DiskOnlyLegacy(),
		"geo":        GeoReplicated(),
		"bare":       {},
	}
	for name, hw := range hws {
		for _, iso := range []Isolation{NonBlocking, MutexBased} {
			for _, mode := range []Mode{FailStop, Corrupting} {
				for _, f := range AllFailures() {
					req := Requirements{Tolerate: []Failure{f}, Mode: mode, Isolation: iso}
					p, err := DerivePlan(req, hw)
					if err != nil {
						var u *UnsatisfiableError
						if !errors.As(err, &u) {
							t.Errorf("%s/%v/%v/%v: unexpected error type %v", name, iso, mode, f, err)
						}
						continue
					}
					// Structural sanity of every produced plan.
					if p.Rescue == nil {
						t.Errorf("%s/%v/%v/%v: nil rescue map", name, iso, mode, f)
					}
					if p.TSP && p.Overhead >= OverheadLoggingFlush {
						t.Errorf("%s/%v/%v/%v: TSP plan with overhead %v", name, iso, mode, f, p.Overhead)
					}
					if iso == MutexBased && !hasAction(p.Runtime, ActionUndoLog) {
						t.Errorf("%s/%v/%v/%v: mutex-based plan without undo log", name, iso, mode, f)
					}
					if s := p.String(); !strings.Contains(s, "overhead") {
						t.Errorf("%s: Plan.String() malformed: %q", name, s)
					}
				}
			}
		}
	}
}

// --- Requirements validation ---

func TestRequirementsValidate(t *testing.T) {
	if err := (Requirements{}).Validate(); err == nil {
		t.Fatal("empty requirements accepted")
	}
	if err := (Requirements{Tolerate: []Failure{ProcessCrash, ProcessCrash}}).Validate(); err == nil {
		t.Fatal("duplicate failure accepted")
	}
	if err := (Requirements{Tolerate: []Failure{Failure(99)}}).Validate(); err == nil {
		t.Fatal("unknown failure accepted")
	}
	if err := (Requirements{Tolerate: []Failure{ProcessCrash}}).Validate(); err != nil {
		t.Fatalf("valid requirements rejected: %v", err)
	}
}

func TestTolerates(t *testing.T) {
	r := Requirements{Tolerate: []Failure{ProcessCrash, PowerOutage}}
	if !r.Tolerates(ProcessCrash) || r.Tolerates(KernelPanic) {
		t.Fatal("Tolerates misreports membership")
	}
}

// --- Safety lattice spot checks ---

func TestSafetyLattice(t *testing.T) {
	cases := []struct {
		hw   Hardware
		loc  Location
		f    Failure
		safe bool
	}{
		{ConventionalDesktop(), DRAM, ProcessCrash, true},     // kernel persistence
		{DiskOnlyLegacy(), DRAM, ProcessCrash, false},         // private memory
		{ConventionalDesktop(), CPUCache, ProcessCrash, true}, // coherence + eviction
		{DiskOnlyLegacy(), CPUCache, ProcessCrash, false},
		{ConventionalDesktop(), CPURegisters, ProcessCrash, false},
		{ConventionalDesktop(), DRAM, KernelPanic, false},
		{ConventionalDesktop(), DRAM, PowerOutage, false},
		{NVRAMMachine(), NVRAM, PowerOutage, true},
		{NVDIMMServer(), NVDIMM, PowerOutage, true},
		{ConventionalDesktop(), BlockStorage, PowerOutage, true},
		{ConventionalDesktop(), BlockStorage, SiteDisaster, false}, // Section 3: disks vulnerable to catastrophes
		{GeoReplicated(), RemoteReplica, SiteDisaster, true},
	}
	for i, c := range cases {
		if got := c.hw.Safe(c.loc, c.f); got != c.safe {
			t.Errorf("case %d: Safe(%v, %v) = %v, want %v", i, c.loc, c.f, got, c.safe)
		}
	}
}

// --- Stringers ---

func TestStringers(t *testing.T) {
	for _, f := range AllFailures() {
		if strings.HasPrefix(f.String(), "Failure(") {
			t.Errorf("missing name for %d", int(f))
		}
	}
	for _, l := range AllLocations() {
		if strings.HasPrefix(l.String(), "Location(") {
			t.Errorf("missing name for location %d", int(l))
		}
	}
	for _, a := range []Action{ActionUndoLog, ActionFlushLogEntry, ActionFlushDataAtCommit,
		ActionSyncWriteStorage, ActionSyncReplicate, ActionRescueFlushCaches,
		ActionRescueSaveDRAM, ActionRescueWriteHeapToStorage, ActionKernelPersistence} {
		if strings.HasPrefix(a.String(), "Action(") {
			t.Errorf("missing name for action %d", int(a))
		}
	}
	for _, o := range []Overhead{OverheadZero, OverheadLogging, OverheadLoggingFlush, OverheadSyncIO} {
		if strings.HasPrefix(o.String(), "Overhead(") {
			t.Errorf("missing name for overhead %d", int(o))
		}
	}
	if FailStop.String() == Corrupting.String() {
		t.Error("mode stringer broken")
	}
	if NonBlocking.String() == MutexBased.String() {
		t.Error("isolation stringer broken")
	}
	for _, m := range []MemoryTech{MemDRAM, MemNVDIMM, MemNVRAM} {
		if strings.HasPrefix(m.String(), "MemoryTech(") {
			t.Errorf("missing name for memory tech %d", int(m))
		}
	}
	for _, e := range []EnergyReserve{EnergyNone, EnergyPSUResidual, EnergySupercap, EnergyUPS} {
		if strings.HasPrefix(e.String(), "EnergyReserve(") {
			t.Errorf("missing name for energy reserve %d", int(e))
		}
	}
}
