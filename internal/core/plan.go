package core

import (
	"fmt"
	"sort"
	"strings"
)

// Action is a single measure a fault-tolerance mechanism takes, either
// eagerly during failure-free operation (prevention) or just-in-time at
// failure (TSP procrastination).
type Action int

const (
	// ActionUndoLog: append an undo-log entry before the first store to
	// each location in an outermost critical section (Atlas runtime).
	ActionUndoLog Action = iota
	// ActionFlushLogEntry: synchronously flush each undo-log entry to
	// memory before the guarded store executes (Atlas without TSP).
	ActionFlushLogEntry
	// ActionFlushDataAtCommit: synchronously flush an OCS's stored cache
	// lines before declaring it durable (Atlas without TSP).
	ActionFlushDataAtCommit
	// ActionSyncWriteStorage: synchronously write updates through to
	// block storage (the traditional pre-NVM discipline).
	ActionSyncWriteStorage
	// ActionSyncReplicate: synchronously replicate updates to a remote
	// site.
	ActionSyncReplicate
	// ActionRescueFlushCaches: at failure time, flush CPU caches to main
	// memory (panic-handler patch; WSP stage one on PSU residual energy).
	ActionRescueFlushCaches
	// ActionRescueSaveDRAM: at failure time, evacuate DRAM to flash or
	// storage (WSP stage two on supercapacitor; NVDIMM save; UPS-backed
	// shutdown path).
	ActionRescueSaveDRAM
	// ActionRescueWriteHeapToStorage: at kernel-panic time, write the
	// persistent heap's memory ranges to block storage before halting.
	ActionRescueWriteHeapToStorage
	// ActionKernelPersistence: rely on POSIX semantics of MAP_SHARED —
	// pages of a crashed process's shared mapping remain in the page
	// cache. A free action: listed so plans are self-describing.
	ActionKernelPersistence
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionUndoLog:
		return "undo-log"
	case ActionFlushLogEntry:
		return "flush-log-entry"
	case ActionFlushDataAtCommit:
		return "flush-data-at-commit"
	case ActionSyncWriteStorage:
		return "sync-write-storage"
	case ActionSyncReplicate:
		return "sync-replicate"
	case ActionRescueFlushCaches:
		return "rescue:flush-caches"
	case ActionRescueSaveDRAM:
		return "rescue:save-dram"
	case ActionRescueWriteHeapToStorage:
		return "rescue:write-heap-to-storage"
	case ActionKernelPersistence:
		return "kernel-persistence"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Overhead classifies the failure-free runtime cost of a plan, ordered
// from cheapest to most expensive. The ordering is the paper's central
// performance claim: TSP plans sit strictly left of their non-TSP
// counterparts.
type Overhead int

const (
	// OverheadZero: no failure-free cost at all (non-blocking + TSP).
	OverheadZero Overhead = iota
	// OverheadLogging: undo logging only (mutex-based + TSP).
	OverheadLogging
	// OverheadLoggingFlush: logging plus synchronous cache flushing
	// (mutex-based without TSP).
	OverheadLoggingFlush
	// OverheadSyncIO: synchronous block-storage or network I/O on the
	// update path (traditional prevention).
	OverheadSyncIO
)

// String implements fmt.Stringer.
func (o Overhead) String() string {
	switch o {
	case OverheadZero:
		return "zero"
	case OverheadLogging:
		return "logging"
	case OverheadLoggingFlush:
		return "logging+flush"
	case OverheadSyncIO:
		return "sync-io"
	default:
		return fmt.Sprintf("Overhead(%d)", int(o))
	}
}

// Recovery is the consistency-restoration strategy a plan prescribes.
type Recovery int

const (
	// RecoveryNone: traverse from the heap root; the structure is
	// consistent by construction (non-blocking case, Section 4.1).
	RecoveryNone Recovery = iota
	// RecoveryRollback: replay undo logs to roll back critical sections
	// cut short (or cascaded into) by the crash, then collect leaked
	// blocks (Atlas, Section 4.2).
	RecoveryRollback
)

// String implements fmt.Stringer.
func (r Recovery) String() string {
	if r == RecoveryRollback {
		return "rollback+gc"
	}
	return "none (traverse from root)"
}

// Plan is the derived fault-tolerance mechanism.
type Plan struct {
	// TSP reports whether the plan procrastinates: all data movement for
	// at least the cache/memory layers happens at failure time rather
	// than on the update path.
	TSP bool

	// Overhead is the failure-free runtime cost class.
	Overhead Overhead

	// Runtime lists eager actions taken during failure-free operation.
	Runtime []Action

	// Rescue maps each tolerated failure to the just-in-time actions its
	// occurrence triggers.
	Rescue map[Failure][]Action

	// Recovery is the consistency restoration run at restart.
	Recovery Recovery

	// Notes carries human-readable derivation remarks.
	Notes []string
}

// String renders the plan as a small report.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TSP: %v\n", p.TSP)
	fmt.Fprintf(&b, "runtime overhead: %s\n", p.Overhead)
	fmt.Fprintf(&b, "runtime actions: %s\n", actionList(p.Runtime))
	fails := make([]Failure, 0, len(p.Rescue))
	for f := range p.Rescue {
		fails = append(fails, f)
	}
	sort.Slice(fails, func(i, j int) bool { return fails[i] < fails[j] })
	for _, f := range fails {
		fmt.Fprintf(&b, "on %s: %s\n", f, actionList(p.Rescue[f]))
	}
	fmt.Fprintf(&b, "recovery: %s\n", p.Recovery)
	for _, n := range p.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func actionList(as []Action) string {
	if len(as) == 0 {
		return "(none)"
	}
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// UnsatisfiableError reports that no mechanism — TSP or preventive — can
// meet the requirements on the given hardware.
type UnsatisfiableError struct {
	Failure Failure
	Reason  string
}

// Error implements error.
func (e *UnsatisfiableError) Error() string {
	return fmt.Sprintf("core: cannot tolerate %s: %s", e.Failure, e.Reason)
}

// DerivePlan computes the minimal mechanism satisfying req on hw,
// preferring TSP (procrastination) and falling back to preventive
// measures only where no timely rescue exists. It returns an
// UnsatisfiableError if even prevention cannot meet the requirements.
func DerivePlan(req Requirements, hw Hardware) (Plan, error) {
	if err := req.Validate(); err != nil {
		return Plan{}, err
	}
	p := Plan{Rescue: map[Failure][]Action{}}
	home := hw.MemoryLocation()

	// tspHolds tracks whether every tolerated failure admits a timely
	// rescue that preserves all issued stores (the TSP guarantee the
	// Section 4 case studies assume).
	tspHolds := true

	for _, f := range req.Tolerate {
		rescue, runtime, err := rescueFor(f, hw, home)
		if err != nil {
			return Plan{}, err
		}
		p.Rescue[f] = rescue
		if len(runtime) > 0 {
			tspHolds = false
			p.Runtime = appendUnique(p.Runtime, runtime...)
		}
	}

	p.TSP = tspHolds

	// Consistency mechanism: depends on isolation style and on whether
	// TSP holds.
	switch req.Isolation {
	case NonBlocking:
		if req.Mode == Corrupting {
			return Plan{}, &UnsatisfiableError{
				Failure: req.Tolerate[0],
				Reason: "corrupting failures require rollback of damaged critical sections; " +
					"the non-blocking approach has no log to roll back — use mutex-based isolation with Atlas",
			}
		}
		if tspHolds {
			// The Section 4.1 result: zero overhead, no recovery work.
			p.Overhead = OverheadZero
			p.Recovery = RecoveryNone
			p.Notes = append(p.Notes,
				"non-blocking + TSP: recovery observer sees a consistent heap; no mechanism needed")
		} else {
			// Without TSP the recovery observer may see a non-prefix
			// subset of stores; every CAS must be made durable eagerly.
			p.Overhead = OverheadLoggingFlush
			p.Runtime = append(p.Runtime, ActionFlushDataAtCommit)
			p.Recovery = RecoveryNone
			p.Notes = append(p.Notes,
				"non-blocking without TSP: each linearization point must be flushed before it is observable")
		}
	case MutexBased:
		p.Recovery = RecoveryRollback
		p.Runtime = append(p.Runtime, ActionUndoLog)
		if tspHolds {
			p.Overhead = OverheadLogging
			p.Notes = append(p.Notes,
				"mutex-based + TSP: undo logging alone suffices; no synchronous flushing (Atlas TSP mode)")
		} else {
			p.Overhead = OverheadLoggingFlush
			p.Runtime = append(p.Runtime, ActionFlushLogEntry, ActionFlushDataAtCommit)
			p.Notes = append(p.Notes,
				"mutex-based without TSP: log entries flushed before stores, data flushed at OCS commit")
		}
	default:
		return Plan{}, fmt.Errorf("core: unknown isolation style %d", int(req.Isolation))
	}

	// Preventive I/O overrides dominate the overhead classification.
	for _, a := range p.Runtime {
		if a == ActionSyncWriteStorage || a == ActionSyncReplicate {
			p.Overhead = OverheadSyncIO
		}
	}
	return p, nil
}

// appendUnique appends each action not already present.
func appendUnique(dst []Action, as ...Action) []Action {
	for _, a := range as {
		found := false
		for _, d := range dst {
			if d == a {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, a)
		}
	}
	return dst
}

// rescueFor derives the failure-time actions for f. When no timely
// rescue exists it returns preventive runtime actions instead (non-empty
// runtime slice means TSP does not hold for this failure). It returns an
// error when neither procrastination nor prevention can work.
func rescueFor(f Failure, hw Hardware, home Location) (rescue, runtime []Action, err error) {
	switch f {
	case ProcessCrash:
		if hw.Safe(CPUCache, f) && hw.Safe(home, f) {
			// The Section 3 observation: with a shared file-backed
			// mapping, a process crash needs no rescue at all — the OS
			// already guarantees survival of every store.
			return []Action{ActionKernelPersistence}, nil, nil
		}
		if !hw.BlockStorage {
			return nil, nil, &UnsatisfiableError{f,
				"heap is in process-private memory and no durable storage exists"}
		}
		// Without kernel persistence the heap dies with the process;
		// only eager write-through saves it.
		return nil, []Action{ActionSyncWriteStorage}, nil

	case KernelPanic:
		if !hw.Safe(CPUCache, f) && !hw.PanicFlush {
			// Cache contents die with the kernel; stores since the last
			// eviction are lost. Prevention: flush on the update path —
			// the isolation-specific flush actions added by DerivePlan.
			if !hw.Safe(home, f) && !hw.BlockStorage {
				return nil, nil, &UnsatisfiableError{f,
					"no panic-time cache flush, DRAM does not survive reboot, and no durable storage"}
			}
			if hw.Safe(home, f) {
				return nil, []Action{ActionFlushDataAtCommit}, nil
			}
			return nil, []Action{ActionSyncWriteStorage}, nil
		}
		rescue = append(rescue, ActionRescueFlushCaches)
		if hw.Safe(home, f) {
			return rescue, nil, nil
		}
		// Volatile DRAM without warm-reboot preservation: the panic
		// handler must also push the heap down to storage.
		if hw.PanicWriteToStorage && hw.BlockStorage {
			return append(rescue, ActionRescueWriteHeapToStorage), nil, nil
		}
		if !hw.BlockStorage {
			return nil, nil, &UnsatisfiableError{f,
				"DRAM does not survive reboot and no durable storage exists"}
		}
		return nil, []Action{ActionSyncWriteStorage}, nil

	case PowerOutage:
		// Stage one: caches need at least PSU residual energy.
		if hw.Energy == EnergyNone {
			if !hw.BlockStorage {
				return nil, nil, &UnsatisfiableError{f,
					"no standby energy and no durable storage"}
			}
			return nil, []Action{ActionSyncWriteStorage}, nil
		}
		rescue = append(rescue, ActionRescueFlushCaches)
		if hw.Safe(home, f) {
			// NVDIMM/NVRAM home: caches flushed, memory keeps itself.
			return rescue, nil, nil
		}
		// Stage two: DRAM evacuation needs supercap/UPS-scale energy.
		if hw.Energy >= EnergySupercap && hw.BlockStorage {
			return append(rescue, ActionRescueSaveDRAM), nil, nil
		}
		if !hw.BlockStorage {
			return nil, nil, &UnsatisfiableError{f,
				"volatile DRAM, insufficient energy to evacuate it, and no durable storage"}
		}
		return nil, []Action{ActionSyncWriteStorage}, nil

	case SiteDisaster:
		// No notice, no rescue: disasters are never timely. Replication
		// is inherently preventive.
		if !hw.RemoteReplication {
			return nil, nil, &UnsatisfiableError{f, "no remote replication available"}
		}
		return nil, []Action{ActionSyncReplicate}, nil

	default:
		return nil, nil, fmt.Errorf("core: unknown failure class %d", int(f))
	}
}
