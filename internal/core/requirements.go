package core

import (
	"errors"
	"fmt"
)

// Isolation is how the application's threads coordinate access to shared
// data in the persistent heap — the axis separating the paper's two case
// studies.
type Isolation int

const (
	// NonBlocking: threads use non-blocking algorithms (CAS-based); the
	// suspension or termination of any subset of threads cannot prevent
	// the rest from computing correctly (Fraser & Harris). Under TSP
	// this class needs no further mechanism at all (Section 4.1).
	NonBlocking Isolation = iota
	// MutexBased: threads use conventional mutual exclusion; consistent
	// recovery requires Atlas-style undo logging keyed to outermost
	// critical sections (Section 4.2).
	MutexBased
)

// String implements fmt.Stringer.
func (i Isolation) String() string {
	if i == MutexBased {
		return "mutex-based"
	}
	return "non-blocking"
}

// Requirements captures an application's fault-tolerance contract.
type Requirements struct {
	// Tolerate lists the failure classes that must not damage the
	// persistent heap's integrity. Failures outside the list may.
	Tolerate []Failure

	// Mode says whether tolerated failures are fail-stop or may corrupt
	// data inside running critical sections before halting.
	Mode Mode

	// Isolation is the application's concurrency-control style.
	Isolation Isolation
}

// Validate rejects malformed requirement sets.
func (r Requirements) Validate() error {
	if len(r.Tolerate) == 0 {
		return errors.New("core: requirements tolerate no failures; no mechanism needed")
	}
	seen := map[Failure]bool{}
	for _, f := range r.Tolerate {
		if f < 0 || f >= numFailures {
			return fmt.Errorf("core: unknown failure class %d", int(f))
		}
		if seen[f] {
			return fmt.Errorf("core: failure class %v listed twice", f)
		}
		seen[f] = true
	}
	return nil
}

// Tolerates reports whether f is in the tolerated set.
func (r Requirements) Tolerates(f Failure) bool {
	for _, g := range r.Tolerate {
		if g == f {
			return true
		}
	}
	return false
}

// Preset hardware profiles used across tests, benchmarks and the tspplan
// command. They correspond to the machine classes the paper discusses.

// ConventionalDesktop is volatile DRAM with the persistent heap in a
// shared file-backed mapping on an ordinary filesystem; no panic-time or
// energy support.
func ConventionalDesktop() Hardware {
	return Hardware{
		Memory:         MemDRAM,
		SharedMappings: true,
		BlockStorage:   true,
	}
}

// ConventionalServerUPS is ConventionalDesktop plus an uninterruptible
// power supply and a panic handler able to both flush caches and write
// the heap to storage.
func ConventionalServerUPS() Hardware {
	return Hardware{
		Memory:              MemDRAM,
		SharedMappings:      true,
		PanicFlush:          true,
		PanicWriteToStorage: true,
		Energy:              EnergyUPS,
		BlockStorage:        true,
	}
}

// NVDIMMServer has supercapacitor-backed NVDIMMs and a panic-flush
// kernel: the Whole System Persistence configuration.
func NVDIMMServer() Hardware {
	return Hardware{
		Memory:         MemNVDIMM,
		SharedMappings: true,
		PanicFlush:     true,
		Energy:         EnergySupercap,
		BlockStorage:   true,
	}
}

// NVRAMMachine has inherently non-volatile main memory; PSU residual
// energy suffices to flush CPU caches on power loss.
func NVRAMMachine() Hardware {
	return Hardware{
		Memory:         MemNVRAM,
		SharedMappings: true,
		PanicFlush:     true,
		Energy:         EnergyPSUResidual,
		BlockStorage:   true,
	}
}

// DiskOnlyLegacy is the traditional database deployment: volatile DRAM,
// no shared-mapping trickery (data manipulated through explicit I/O), no
// rescue support of any kind.
func DiskOnlyLegacy() Hardware {
	return Hardware{
		Memory:       MemDRAM,
		BlockStorage: true,
	}
}

// GeoReplicated extends NVRAMMachine with remote replication, the only
// defence against site disasters.
func GeoReplicated() Hardware {
	hw := NVRAMMachine()
	hw.RemoteReplication = true
	return hw
}
