package core_test

import (
	"fmt"

	"tsp/internal/core"
)

// The headline Section 3 result: on a machine with shared file-backed
// mappings, tolerating process crashes with a non-blocking design costs
// literally nothing.
func ExampleDerivePlan() {
	plan, _ := core.DerivePlan(core.Requirements{
		Tolerate:  []core.Failure{core.ProcessCrash},
		Isolation: core.NonBlocking,
	}, core.ConventionalDesktop())
	fmt.Println("TSP:", plan.TSP)
	fmt.Println("overhead:", plan.Overhead)
	fmt.Println("recovery:", plan.Recovery)
	// Output:
	// TSP: true
	// overhead: zero
	// recovery: none (traverse from root)
}

// Different data subsets may carry different contracts (Section 3); the
// composite pays only for what each class actually needs.
func ExampleDeriveProfile() {
	res, _ := core.DeriveProfile(core.HeapAndStacks(core.Requirements{
		Tolerate:  []core.Failure{core.ProcessCrash, core.KernelPanic},
		Isolation: core.MutexBased,
	}), core.NVRAMMachine())
	fmt.Println("all TSP:", res.AllTSP)
	fmt.Println("max overhead:", res.MaxOverhead)
	// Output:
	// all TSP: true
	// max overhead: logging
}
