package core

import (
	"testing"
	"testing/quick"
)

// randomHardware decodes a bitmask into a hardware description.
func randomHardware(bits uint16) Hardware {
	return Hardware{
		Memory:                  MemoryTech(bits % 3),
		SharedMappings:          bits&(1<<2) != 0,
		PanicFlush:              bits&(1<<3) != 0,
		PanicWriteToStorage:     bits&(1<<4) != 0,
		WarmRebootPreservesDRAM: bits&(1<<5) != 0,
		Energy:                  EnergyReserve(bits >> 6 % 4),
		BlockStorage:            bits&(1<<8) != 0,
		RemoteReplication:       bits&(1<<9) != 0,
	}
}

// upgrade returns hw with one additional capability set, per sel.
func upgrade(hw Hardware, sel uint8) Hardware {
	switch sel % 8 {
	case 0:
		hw.SharedMappings = true
	case 1:
		hw.PanicFlush = true
	case 2:
		hw.PanicWriteToStorage = true
	case 3:
		hw.WarmRebootPreservesDRAM = true
	case 4:
		if hw.Energy < EnergyUPS {
			hw.Energy++
		}
	case 5:
		hw.BlockStorage = true
	case 6:
		hw.RemoteReplication = true
	case 7:
		if hw.Memory == MemDRAM {
			hw.Memory = MemNVRAM
		}
	}
	return hw
}

func randomRequirements(bits uint8) Requirements {
	var req Requirements
	for i, f := range AllFailures() {
		if bits&(1<<i) != 0 {
			req.Tolerate = append(req.Tolerate, f)
		}
	}
	if len(req.Tolerate) == 0 {
		req.Tolerate = []Failure{ProcessCrash}
	}
	if bits&(1<<5) != 0 {
		req.Isolation = MutexBased
	}
	if bits&(1<<6) != 0 && req.Isolation == MutexBased {
		req.Mode = Corrupting
	}
	return req
}

// Property: adding hardware capabilities never turns a satisfiable
// requirement set unsatisfiable — the decision procedure is monotone in
// hardware support.
func TestQuickPlanMonotoneInHardware(t *testing.T) {
	f := func(hwBits uint16, reqBits uint8, sel uint8) bool {
		hw := randomHardware(hwBits)
		req := randomRequirements(reqBits)
		_, err1 := DerivePlan(req, hw)
		_, err2 := DerivePlan(req, upgrade(hw, sel))
		if err1 == nil && err2 != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every plan the procedure emits is internally coherent — TSP
// plans never carry flush/sync runtime actions; preventive plans always
// carry at least one; mutex-based plans always log and use rollback
// recovery; non-blocking plans never do.
func TestQuickPlanInternallyCoherent(t *testing.T) {
	f := func(hwBits uint16, reqBits uint8) bool {
		hw := randomHardware(hwBits)
		req := randomRequirements(reqBits)
		plan, err := DerivePlan(req, hw)
		if err != nil {
			return true // unsatisfiable is a legal outcome
		}
		hasEager := false
		for _, a := range plan.Runtime {
			switch a {
			case ActionFlushLogEntry, ActionFlushDataAtCommit, ActionSyncWriteStorage, ActionSyncReplicate:
				hasEager = true
			}
		}
		if plan.TSP && hasEager {
			return false
		}
		if !plan.TSP && !hasEager {
			return false
		}
		if req.Isolation == MutexBased {
			if plan.Recovery != RecoveryRollback {
				return false
			}
			found := false
			for _, a := range plan.Runtime {
				if a == ActionUndoLog {
					found = true
				}
			}
			if !found {
				return false
			}
		} else {
			if plan.Recovery != RecoveryNone {
				return false
			}
			for _, a := range plan.Runtime {
				if a == ActionUndoLog {
					return false
				}
			}
		}
		// Every tolerated failure has a rescue entry (possibly empty for
		// purely preventive handling).
		for _, fl := range req.Tolerate {
			if _, ok := plan.Rescue[fl]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: overhead classification is monotone in the TSP flag — for
// identical requirements, a hardware upgrade can only keep or lower the
// overhead class, never raise it.
func TestQuickOverheadMonotone(t *testing.T) {
	f := func(hwBits uint16, reqBits uint8, sel uint8) bool {
		hw := randomHardware(hwBits)
		req := randomRequirements(reqBits)
		p1, err1 := DerivePlan(req, hw)
		p2, err2 := DerivePlan(req, upgrade(hw, sel))
		if err1 != nil || err2 != nil {
			return true // monotone satisfiability is checked elsewhere
		}
		return p2.Overhead <= p1.Overhead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
