// Package core implements the conceptual contribution of the paper:
// Timely Sufficient Persistence as a decision procedure. Given (a) the
// failures an application must tolerate, (b) how its threads isolate
// access to shared persistent data, and (c) what the hardware and OS can
// do at failure time, core.Plan derives the *minimal* fault-tolerance
// mechanism: which data moves where, whether it moves eagerly during
// failure-free operation ("prevention") or just-in-time when the failure
// hits ("procrastination"), and what the residual runtime overhead class
// is.
//
// The package encodes the paper's Section 3 analysis — vulnerable versus
// safe locations as a function of the failure class and the available
// "hidden" support (POSIX kernel persistence of shared file-backed
// mappings, panic-handler cache flushes, energy-backed rescues à la
// Whole System Persistence) — and the Section 4 consequences for the two
// software classes (non-blocking and mutex-based).
package core

import "fmt"

// Failure is a class of failure an application may be required to
// tolerate. The paper restricts itself to single-machine failures but the
// lattice extends naturally to site disasters, which we include so that
// "even hard disks may be deemed vulnerable" (Section 3) is expressible.
type Failure int

const (
	// ProcessCrash abruptly terminates all threads of one process (e.g.
	// SIGKILL, segmentation violation, illegal instruction).
	ProcessCrash Failure = iota
	// KernelPanic halts the operating system; the machine reboots.
	KernelPanic
	// PowerOutage removes utility power from the machine.
	PowerOutage
	// SiteDisaster destroys the entire machine and its storage.
	SiteDisaster
	numFailures
)

// String implements fmt.Stringer.
func (f Failure) String() string {
	switch f {
	case ProcessCrash:
		return "process-crash"
	case KernelPanic:
		return "kernel-panic"
	case PowerOutage:
		return "power-outage"
	case SiteDisaster:
		return "site-disaster"
	default:
		return fmt.Sprintf("Failure(%d)", int(f))
	}
}

// AllFailures lists every failure class, mildest first.
func AllFailures() []Failure {
	return []Failure{ProcessCrash, KernelPanic, PowerOutage, SiteDisaster}
}

// Mode distinguishes fail-stop failures from those that may first corrupt
// application data (Section 3: "Requirements must also distinguish
// between fail-stop failures ... and failures that first corrupt
// application data").
type Mode int

const (
	// FailStop failures halt execution without scribbling on data
	// (SIGKILL, power loss).
	FailStop Mode = iota
	// Corrupting failures may damage data inside the currently-running
	// critical sections before execution stops (wild stores from memory
	// bugs). Only mechanisms that can roll back in-flight critical
	// sections (Atlas-style logging) tolerate these.
	Corrupting
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Corrupting {
		return "corrupting"
	}
	return "fail-stop"
}
