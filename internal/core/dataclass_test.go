package core

import (
	"strings"
	"testing"
)

func TestHeapAndStacksProfile(t *testing.T) {
	req := Requirements{Tolerate: []Failure{ProcessCrash}, Isolation: NonBlocking}
	res, err := DeriveProfile(HeapAndStacks(req), ConventionalDesktop())
	if err != nil {
		t.Fatalf("DeriveProfile: %v", err)
	}
	if len(res.Classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(res.Classes))
	}
	if !res.AllTSP {
		t.Fatal("heap-only process-crash tolerance should be all-TSP")
	}
	if res.MaxOverhead != OverheadZero {
		t.Fatalf("max overhead = %v, want zero", res.MaxOverhead)
	}
	if !strings.Contains(res.String(), "expendable") {
		t.Fatalf("report missing the expendable class:\n%s", res)
	}
}

func TestMixedClassesCompositeOverhead(t *testing.T) {
	// A commit log that must survive power outages on rescue-less
	// hardware (forced prevention) alongside a cache that only needs
	// process-crash tolerance (free): the composite pays the maximum.
	classes := []DataClass{
		{Name: "commit-log", Critical: true, Req: Requirements{
			Tolerate: []Failure{PowerOutage}, Isolation: MutexBased}},
		{Name: "derived-cache", Critical: true, Req: Requirements{
			Tolerate: []Failure{ProcessCrash}, Isolation: NonBlocking}},
	}
	res, err := DeriveProfile(classes, ConventionalDesktop())
	if err != nil {
		t.Fatalf("DeriveProfile: %v", err)
	}
	if res.AllTSP {
		t.Fatal("power outages without energy cannot be TSP")
	}
	if res.MaxOverhead != OverheadSyncIO {
		t.Fatalf("max overhead = %v, want sync-io (dominated by the commit log)", res.MaxOverhead)
	}
	// The cache's own plan must still be the cheap one.
	for _, cp := range res.Classes {
		if cp.Class.Name == "derived-cache" {
			if !cp.Plan.TSP || cp.Plan.Overhead != OverheadZero {
				t.Fatalf("derived-cache plan = TSP %v overhead %v, want TSP/zero",
					cp.Plan.TSP, cp.Plan.Overhead)
			}
		}
	}
}

func TestUnsatisfiableClassCollected(t *testing.T) {
	classes := []DataClass{
		{Name: "replica-set", Critical: true, Req: Requirements{
			Tolerate: []Failure{SiteDisaster}, Isolation: NonBlocking}},
		{Name: "scratch", Critical: true, Req: Requirements{
			Tolerate: []Failure{ProcessCrash}, Isolation: NonBlocking}},
	}
	res, err := DeriveProfile(classes, ConventionalDesktop()) // no replication
	if err != nil {
		t.Fatalf("DeriveProfile: %v", err)
	}
	if len(res.Unsatisfiable) != 1 || res.Unsatisfiable[0] != "replica-set" {
		t.Fatalf("unsatisfiable = %v, want [replica-set]", res.Unsatisfiable)
	}
	if !strings.Contains(res.String(), "UNSATISFIABLE") {
		t.Fatalf("report missing unsatisfiable marker:\n%s", res)
	}
}

func TestProfileValidation(t *testing.T) {
	if _, err := DeriveProfile(nil, ConventionalDesktop()); err == nil {
		t.Fatal("empty class list accepted")
	}
	if _, err := DeriveProfile([]DataClass{{Name: ""}}, ConventionalDesktop()); err == nil {
		t.Fatal("unnamed class accepted")
	}
	dup := []DataClass{{Name: "x"}, {Name: "x"}}
	if _, err := DeriveProfile(dup, ConventionalDesktop()); err == nil {
		t.Fatal("duplicate class names accepted")
	}
}
