package core

import "fmt"

// Location is a place data can live. Safety is *not* a property of the
// location alone: it is a relation between a location, a failure class,
// and the hardware/OS support available (Section 3: "Safety can be
// defined only with respect to fault-tolerance requirements and is
// orthogonal to hardware characteristics such as volatility").
type Location int

const (
	// CPURegisters hold thread execution state.
	CPURegisters Location = iota
	// CPUCache holds recently stored cache lines not yet written back.
	CPUCache
	// DRAM is volatile main memory. With a shared file-backed mapping,
	// its page frames have POSIX "kernel persistence".
	DRAM
	// NVDIMM is DRAM persisted to flash by supercapacitor on power loss.
	NVDIMM
	// NVRAM is inherently non-volatile byte-addressable memory
	// (PCM, STT-MRAM, memristor).
	NVRAM
	// BlockStorage is a local disk or SSD behind a block interface.
	BlockStorage
	// RemoteReplica is a copy on a different site.
	RemoteReplica
	numLocations
)

// String implements fmt.Stringer.
func (l Location) String() string {
	switch l {
	case CPURegisters:
		return "cpu-registers"
	case CPUCache:
		return "cpu-cache"
	case DRAM:
		return "dram"
	case NVDIMM:
		return "nvdimm"
	case NVRAM:
		return "nvram"
	case BlockStorage:
		return "block-storage"
	case RemoteReplica:
		return "remote-replica"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// AllLocations lists every location, most volatile first.
func AllLocations() []Location {
	return []Location{CPURegisters, CPUCache, DRAM, NVDIMM, NVRAM, BlockStorage, RemoteReplica}
}

// MemoryTech is the main-memory technology of a machine.
type MemoryTech int

const (
	// MemDRAM is conventional volatile DRAM.
	MemDRAM MemoryTech = iota
	// MemNVDIMM is battery/supercapacitor-backed DRAM+flash.
	MemNVDIMM
	// MemNVRAM is inherently non-volatile memory.
	MemNVRAM
)

// String implements fmt.Stringer.
func (m MemoryTech) String() string {
	switch m {
	case MemDRAM:
		return "dram"
	case MemNVDIMM:
		return "nvdimm"
	case MemNVRAM:
		return "nvram"
	default:
		return fmt.Sprintf("MemoryTech(%d)", int(m))
	}
}

// EnergyReserve describes standby energy available for a crash-time
// rescue when utility power fails.
type EnergyReserve int

const (
	// EnergyNone: no standby energy at all.
	EnergyNone EnergyReserve = iota
	// EnergyPSUResidual: the few milliseconds stored in the power
	// supply's capacitors — enough to flush CPU registers and caches to
	// memory (the first stage of Whole System Persistence).
	EnergyPSUResidual
	// EnergySupercap: seconds of energy — enough to also evacuate DRAM
	// contents to flash (the second WSP stage, or an NVDIMM save).
	EnergySupercap
	// EnergyUPS: minutes of energy — enough to write memory to block
	// storage and shut down in an orderly fashion.
	EnergyUPS
)

// String implements fmt.Stringer.
func (e EnergyReserve) String() string {
	switch e {
	case EnergyNone:
		return "none"
	case EnergyPSUResidual:
		return "psu-residual"
	case EnergySupercap:
		return "supercapacitor"
	case EnergyUPS:
		return "ups"
	default:
		return fmt.Sprintf("EnergyReserve(%d)", int(e))
	}
}

// Hardware describes the machine and OS support available for building a
// TSP mechanism. The zero value is the most pessimistic machine:
// volatile DRAM, no panic-time flush, no standby energy, no replication.
type Hardware struct {
	// Memory is the main-memory technology.
	Memory MemoryTech

	// SharedMappings reports whether the persistent heap is backed by a
	// MAP_SHARED file mapping (or the moral equivalent), giving stores
	// POSIX kernel persistence: they survive process crashes with zero
	// runtime overhead (Section 3 and Appendix A).
	SharedMappings bool

	// PanicFlush reports whether the OS kernel's panic handler flushes
	// CPU caches to memory before halting (the paper mentions an HP
	// Linux patch providing exactly this).
	PanicFlush bool

	// PanicWriteToStorage reports whether the panic handler can further
	// write persistent-heap memory ranges to block storage before the
	// machine stops — required to survive kernel panics on volatile
	// DRAM without warm-reboot preservation.
	PanicWriteToStorage bool

	// WarmRebootPreservesDRAM reports whether DRAM contents survive an
	// OS restart (Rio-style warm reboot).
	WarmRebootPreservesDRAM bool

	// Energy is the standby energy reserve for power-outage rescues.
	Energy EnergyReserve

	// BlockStorage reports whether a local durable block device exists.
	BlockStorage bool

	// RemoteReplication reports whether updates can be replicated to a
	// remote site.
	RemoteReplication bool
}

// MemoryLocation returns the Location corresponding to the machine's main
// memory technology.
func (hw Hardware) MemoryLocation() Location {
	switch hw.Memory {
	case MemNVDIMM:
		return NVDIMM
	case MemNVRAM:
		return NVRAM
	default:
		return DRAM
	}
}

// Safe reports whether data residing at loc survives failure f on this
// machine *without any additional mechanism*. It encodes the paper's
// vulnerable/safe analysis.
func (hw Hardware) Safe(loc Location, f Failure) bool {
	switch f {
	case ProcessCrash:
		switch loc {
		case CPURegisters:
			return false // thread state dies with the process
		case CPUCache:
			// Dirty lines belonging to a shared file-backed mapping stay
			// coherent and will be evicted to pages that outlive the
			// process (Appendix A). Private anonymous memory dies.
			return hw.SharedMappings
		case DRAM:
			// Page-cache frames of a shared mapping have kernel
			// persistence; private pages are reclaimed.
			return hw.SharedMappings
		default:
			return true
		}
	case KernelPanic:
		switch loc {
		case CPURegisters, CPUCache:
			return false // gone unless the panic handler rescues them
		case DRAM:
			return hw.WarmRebootPreservesDRAM
		default:
			return true
		}
	case PowerOutage:
		switch loc {
		case CPURegisters, CPUCache, DRAM:
			return false // volatile, gone when power is cut
		default:
			return true
		}
	case SiteDisaster:
		return loc == RemoteReplica
	default:
		return false
	}
}
