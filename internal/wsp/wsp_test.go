package wsp

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDesktopTypicalIsFeasible(t *testing.T) {
	res, err := Evaluate(DesktopMachine(), TypicalEnergy(), TypicalRates())
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !res.Feasible() {
		t.Fatalf("desktop WSP should be feasible:\n%s", res)
	}
	if res.Stage1.Time >= res.Stage2.Time {
		t.Fatalf("stage1 (%v) should be far faster than stage2 (%v)", res.Stage1.Time, res.Stage2.Time)
	}
}

func TestServerNeedsMoreSupercap(t *testing.T) {
	// 1.5 TB at 1 GB/s and 40 W needs ~61 kJ; the 5 kJ typical bank
	// must be insufficient.
	res, err := Evaluate(ServerMachine(), TypicalEnergy(), TypicalRates())
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Stage2.Feasible {
		t.Fatalf("server stage 2 should exceed a 5 kJ bank:\n%s", res)
	}
	if res.Stage1.Feasible == false {
		t.Fatalf("server stage 1 (cache flush) should still fit PSU residual:\n%s", res)
	}
}

func TestStage1EnergyMath(t *testing.T) {
	m := Machine{Cores: 1, RegisterBytesPerCore: 0, CacheBytes: 10e9}
	r := Rates{FlushBytesPerSec: 10e9, FlushWatts: 100, SaveBytesPerSec: 1, SaveWatts: 1}
	res, err := Evaluate(m, Energy{PSUResidualJoules: 100.1, SupercapJoules: 1}, r)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// 10 GB at 10 GB/s = 1 s at 100 W = 100 J.
	if res.Stage1.Time.Round(time.Millisecond) != time.Second {
		t.Fatalf("stage1 time = %v, want 1s", res.Stage1.Time)
	}
	if res.Stage1.EnergyNeeded < 99.9 || res.Stage1.EnergyNeeded > 100.1 {
		t.Fatalf("stage1 energy = %v, want ~100 J", res.Stage1.EnergyNeeded)
	}
	if !res.Stage1.Feasible {
		t.Fatal("stage1 should fit a 100.1 J budget")
	}
}

func TestMaxDRAMBytes(t *testing.T) {
	r := Rates{FlushBytesPerSec: 1, FlushWatts: 1, SaveBytesPerSec: 1e9, SaveWatts: 40}
	n, err := MaxDRAMBytes(Energy{SupercapJoules: 40}, r)
	if err != nil {
		t.Fatalf("MaxDRAMBytes: %v", err)
	}
	// 40 J at 40 W = 1 s at 1 GB/s = 1e9 bytes.
	if n != 1e9 {
		t.Fatalf("MaxDRAMBytes = %d, want 1e9", n)
	}
}

func TestMaxDRAMBytesConsistentWithEvaluate(t *testing.T) {
	e, r := TypicalEnergy(), TypicalRates()
	maxBytes, err := MaxDRAMBytes(e, r)
	if err != nil {
		t.Fatal(err)
	}
	m := DesktopMachine()
	m.DRAMBytes = maxBytes
	res, err := Evaluate(m, e, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stage2.Feasible {
		t.Fatalf("DRAM at the computed maximum should be feasible:\n%s", res)
	}
	m.DRAMBytes = maxBytes + maxBytes/100
	res, _ = Evaluate(m, e, r)
	if res.Stage2.Feasible {
		t.Fatal("DRAM 1% past the maximum should be infeasible")
	}
}

func TestDiskEvacuationAsymmetry(t *testing.T) {
	// The Section 2 point: cache flush is minuscule next to pushing
	// DRAM through a disk path.
	cache, disk, err := DiskEvacuationComparison(DesktopMachine(), TypicalRates(), 200e6)
	if err != nil {
		t.Fatalf("DiskEvacuationComparison: %v", err)
	}
	if cache*1000 > disk {
		t.Fatalf("cache flush (%v) should be >1000x faster than disk evacuation (%v)", cache, disk)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Evaluate(Machine{}, TypicalEnergy(), TypicalRates()); err == nil {
		t.Error("zero-core machine accepted")
	}
	if _, err := Evaluate(DesktopMachine(), TypicalEnergy(), Rates{}); err == nil {
		t.Error("zero rates accepted")
	}
	if _, err := Evaluate(DesktopMachine(), Energy{PSUResidualJoules: -1}, TypicalRates()); err == nil {
		t.Error("negative energy accepted")
	}
	if _, err := MaxDRAMBytes(Energy{SupercapJoules: -1}, TypicalRates()); err == nil {
		t.Error("negative supercap accepted")
	}
	if _, _, err := DiskEvacuationComparison(DesktopMachine(), TypicalRates(), 0); err == nil {
		t.Error("zero disk bandwidth accepted")
	}
}

func TestQuickMoreEnergyNeverHurts(t *testing.T) {
	f := func(dramGB uint16, extraJ uint16) bool {
		m := DesktopMachine()
		m.DRAMBytes = int64(dramGB%2048) << 30
		e := TypicalEnergy()
		res1, err := Evaluate(m, e, TypicalRates())
		if err != nil {
			return false
		}
		e.SupercapJoules += float64(extraJ)
		e.PSUResidualJoules += float64(extraJ)
		res2, err := Evaluate(m, e, TypicalRates())
		if err != nil {
			return false
		}
		// Monotonicity: adding energy can only turn infeasible into
		// feasible, never the reverse.
		if res1.Feasible() && !res2.Feasible() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTimeScalesWithBytes(t *testing.T) {
	f := func(gb uint8) bool {
		m := DesktopMachine()
		m.DRAMBytes = int64(gb) << 30
		res, err := Evaluate(m, TypicalEnergy(), TypicalRates())
		if err != nil {
			return false
		}
		m2 := m
		m2.DRAMBytes *= 2
		res2, err := Evaluate(m2, TypicalEnergy(), TypicalRates())
		if err != nil {
			return false
		}
		return res2.Stage2.Time >= res.Stage2.Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	res, _ := Evaluate(DesktopMachine(), TypicalEnergy(), TypicalRates())
	if s := res.String(); len(s) == 0 {
		t.Fatal("empty Result string")
	}
	if res.Stage1.Margin() <= 0 {
		t.Fatal("nonpositive margin on feasible stage")
	}
	empty := StageResult{}
	if empty.Margin() <= 0 {
		t.Fatal("zero-need margin should be huge")
	}
}
