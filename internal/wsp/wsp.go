// Package wsp models Whole System Persistence (Narayanan & Hodson,
// ASPLOS 2012), the paper's flagship example of a Timely Sufficient
// Persistence design for power outages (Section 3): a two-stage rescue
// that first flushes CPU registers and caches into DRAM using the
// residual energy stored in the system power supply, then evacuates DRAM
// into flash using supercapacitor energy — eliminating all failure-free
// overhead.
//
// The model answers the question a TSP designer must ask before trusting
// procrastination: is there enough stored energy to run the rescue to
// completion once the failure gives notice? It also quantifies the
// paper's Section 2 observation that flushing caches to memory costs
// orders of magnitude less time and energy than evacuating DRAM to block
// storage — the asymmetry that makes NVM-era TSP designs so attractive.
package wsp

import (
	"errors"
	"fmt"
	"time"
)

// Machine describes the volatile state that must be rescued.
type Machine struct {
	// Cores is the CPU core count.
	Cores int
	// RegisterBytesPerCore is the architectural + SIMD register file
	// size that must be saved per core (a few KB).
	RegisterBytesPerCore int64
	// CacheBytes is the total CPU cache capacity (dirty lines are not
	// tracked; the rescue conservatively flushes it all, as WSP does).
	CacheBytes int64
	// DRAMBytes is the installed DRAM that stage two must evacuate.
	DRAMBytes int64
}

// Validate rejects nonsensical machines.
func (m Machine) Validate() error {
	if m.Cores < 1 {
		return errors.New("wsp: Cores must be positive")
	}
	if m.RegisterBytesPerCore < 0 || m.CacheBytes < 0 || m.DRAMBytes < 0 {
		return errors.New("wsp: sizes must be non-negative")
	}
	return nil
}

// Energy describes the stored energy available to the two rescue stages.
type Energy struct {
	// PSUResidualJoules is the energy held in the power supply's bulk
	// capacitors after utility power is lost — stage one's budget
	// (typically well under a joule of usable headroom at the rail, a
	// few ms of full-system draw).
	PSUResidualJoules float64
	// SupercapJoules is the supercapacitor bank's energy — stage two's
	// budget.
	SupercapJoules float64
}

// Rates describes the rescue datapath.
type Rates struct {
	// FlushBytesPerSec is the register/cache-to-DRAM flush bandwidth.
	FlushBytesPerSec float64
	// FlushWatts is the system power draw during stage one.
	FlushWatts float64
	// SaveBytesPerSec is the DRAM-to-flash bandwidth of stage two.
	SaveBytesPerSec float64
	// SaveWatts is the system power draw during stage two (DRAM in
	// self-refresh plus the flash controllers; the cores are halted).
	SaveWatts float64
}

// Validate rejects nonsensical rates.
func (r Rates) Validate() error {
	if r.FlushBytesPerSec <= 0 || r.SaveBytesPerSec <= 0 {
		return errors.New("wsp: bandwidths must be positive")
	}
	if r.FlushWatts <= 0 || r.SaveWatts <= 0 {
		return errors.New("wsp: power draws must be positive")
	}
	return nil
}

// StageResult evaluates one rescue stage.
type StageResult struct {
	Bytes        int64
	Time         time.Duration
	EnergyNeeded float64 // joules
	EnergyBudget float64 // joules
	Feasible     bool
}

// Margin returns the energy headroom ratio (budget/needed); +Inf when
// nothing is needed.
func (s StageResult) Margin() float64 {
	if s.EnergyNeeded == 0 {
		return 1e308
	}
	return s.EnergyBudget / s.EnergyNeeded
}

// String renders the stage for reports.
func (s StageResult) String() string {
	verdict := "FEASIBLE"
	if !s.Feasible {
		verdict = "INFEASIBLE"
	}
	return fmt.Sprintf("%d bytes in %v, %.3f J of %.3f J -> %s",
		s.Bytes, s.Time.Round(time.Microsecond), s.EnergyNeeded, s.EnergyBudget, verdict)
}

// Result is the full two-stage evaluation.
type Result struct {
	Stage1 StageResult // registers + caches -> DRAM on PSU residual
	Stage2 StageResult // DRAM -> flash on supercapacitor
}

// Feasible reports whether the whole rescue completes within budget.
func (r Result) Feasible() bool { return r.Stage1.Feasible && r.Stage2.Feasible }

// TotalTime is the end-to-end rescue latency.
func (r Result) TotalTime() time.Duration { return r.Stage1.Time + r.Stage2.Time }

// String renders the evaluation.
func (r Result) String() string {
	return fmt.Sprintf("stage1: %s\nstage2: %s\ntotal: %v, feasible: %v",
		r.Stage1, r.Stage2, r.TotalTime().Round(time.Microsecond), r.Feasible())
}

// Evaluate runs the two-stage feasibility analysis.
func Evaluate(m Machine, e Energy, r Rates) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if err := r.Validate(); err != nil {
		return Result{}, err
	}
	if e.PSUResidualJoules < 0 || e.SupercapJoules < 0 {
		return Result{}, errors.New("wsp: energies must be non-negative")
	}
	var res Result

	s1Bytes := int64(m.Cores)*m.RegisterBytesPerCore + m.CacheBytes
	s1Time := float64(s1Bytes) / r.FlushBytesPerSec
	res.Stage1 = StageResult{
		Bytes:        s1Bytes,
		Time:         time.Duration(s1Time * float64(time.Second)),
		EnergyNeeded: s1Time * r.FlushWatts,
		EnergyBudget: e.PSUResidualJoules,
	}
	res.Stage1.Feasible = res.Stage1.EnergyNeeded <= res.Stage1.EnergyBudget

	s2Time := float64(m.DRAMBytes) / r.SaveBytesPerSec
	res.Stage2 = StageResult{
		Bytes:        m.DRAMBytes,
		Time:         time.Duration(s2Time * float64(time.Second)),
		EnergyNeeded: s2Time * r.SaveWatts,
		EnergyBudget: e.SupercapJoules,
	}
	res.Stage2.Feasible = res.Stage2.EnergyNeeded <= res.Stage2.EnergyBudget
	return res, nil
}

// MaxDRAMBytes returns the largest DRAM size stage two can evacuate with
// the given supercap budget — the sizing helper a WSP deployment needs.
func MaxDRAMBytes(e Energy, r Rates) (int64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if e.SupercapJoules < 0 {
		return 0, errors.New("wsp: energies must be non-negative")
	}
	// energy = bytes/bw * watts  =>  bytes = energy * bw / watts
	return int64(e.SupercapJoules * r.SaveBytesPerSec / r.SaveWatts), nil
}

// Presets for the demo and tests.

// DesktopMachine is a 4-core desktop with 8 MB of cache and 32 GB DRAM.
func DesktopMachine() Machine {
	return Machine{Cores: 4, RegisterBytesPerCore: 4 << 10, CacheBytes: 8 << 20, DRAMBytes: 32 << 30}
}

// ServerMachine is a 60-core server with 150 MB of cache and 1.5 TB DRAM.
func ServerMachine() Machine {
	return Machine{Cores: 60, RegisterBytesPerCore: 4 << 10, CacheBytes: 150 << 20, DRAMBytes: 1536 << 30}
}

// TypicalRates reflects WSP-era hardware: ~10 GB/s flush into DRAM at
// 150 W, ~1 GB/s save into flash at 40 W.
func TypicalRates() Rates {
	return Rates{
		FlushBytesPerSec: 10e9,
		FlushWatts:       150,
		SaveBytesPerSec:  1e9,
		SaveWatts:        40,
	}
}

// TypicalEnergy reflects a PSU with ~10 J of usable residual (tens of
// milliseconds of full-system draw from the bulk capacitors) and a small
// supercap bank of ~5 kJ.
func TypicalEnergy() Energy {
	return Energy{PSUResidualJoules: 10.0, SupercapJoules: 5000}
}

// DiskEvacuationComparison quantifies the Section 2 asymmetry: the time
// to push the same DRAM image through a block-storage path of the given
// bandwidth, versus the NVM-era cache flush of stage one.
func DiskEvacuationComparison(m Machine, r Rates, diskBytesPerSec float64) (cacheFlush, diskEvac time.Duration, err error) {
	if diskBytesPerSec <= 0 {
		return 0, 0, errors.New("wsp: disk bandwidth must be positive")
	}
	if err := m.Validate(); err != nil {
		return 0, 0, err
	}
	if err := r.Validate(); err != nil {
		return 0, 0, err
	}
	s1Bytes := int64(m.Cores)*m.RegisterBytesPerCore + m.CacheBytes
	cacheFlush = time.Duration(float64(s1Bytes) / r.FlushBytesPerSec * float64(time.Second))
	diskEvac = time.Duration(float64(m.DRAMBytes) / diskBytesPerSec * float64(time.Second))
	return cacheFlush, diskEvac, nil
}
