// Package persist writes a device's persisted image to a real file and
// reads it back, giving the simulated NVM actual durability across
// process runs. It stands in for the paper's backing file of the shared
// memory mapping: what our simulated "durable medium" holds is exactly
// what a file-backed mapping's file would hold after a crash, so the
// examples can demonstrate recovery across genuine process restarts.
//
// The format is deliberately simple and self-validating:
//
//	word 0: magic
//	word 1: format version
//	word 2: image size in words
//	word 3: FNV-1a checksum of the image words
//	word 4...: image words, little-endian
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"tsp/internal/nvm"
)

// Magic and Version identify the snapshot format.
const (
	Magic   = 0x5453_5053_4e41_5031 // "TSPSNAP1"
	Version = 1
)

const headerWords = 4

// Errors returned by the package.
var (
	ErrBadSnapshot = errors.New("persist: not a valid snapshot file")
	ErrChecksum    = errors.New("persist: snapshot checksum mismatch")
	ErrSizeChanged = errors.New("persist: snapshot size does not match device")
)

// checksum is FNV-1a over the words' little-endian bytes.
func checksum(img []uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	var buf [8]byte
	for _, w := range img {
		binary.LittleEndian.PutUint64(buf[:], w)
		for _, b := range buf {
			h ^= uint64(b)
			h *= prime
		}
	}
	return h
}

// Save writes the device's persisted image to path atomically (write to
// a temp file, fsync, rename). The device should be quiescent or
// crashed.
func Save(dev *nvm.Device, path string) error {
	img := dev.SnapshotPersisted()
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp) // no-op after successful rename

	header := []uint64{Magic, Version, uint64(len(img)), checksum(img)}
	if err := writeWords(f, header); err != nil {
		f.Close()
		return err
	}
	if err := writeWords(f, img); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: rename: %w", err)
	}
	return nil
}

func writeWords(w io.Writer, words []uint64) error {
	buf := make([]byte, 8*4096)
	for off := 0; off < len(words); off += 4096 {
		n := len(words) - off
		if n > 4096 {
			n = 4096
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], words[off+i])
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return fmt.Errorf("persist: write: %w", err)
		}
	}
	return nil
}

// Load reads a snapshot from path into the device's persisted image and
// restarts the device so the new incarnation sees it. The device must
// have exactly the snapshot's word count.
func Load(dev *nvm.Device, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer f.Close()

	header := make([]uint64, headerWords)
	if err := readWords(f, header); err != nil {
		return ErrBadSnapshot
	}
	if header[0] != Magic {
		return ErrBadSnapshot
	}
	if header[1] != Version {
		return fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, header[1])
	}
	words := header[2]
	if words != dev.Words() {
		return fmt.Errorf("%w: snapshot %d words, device %d", ErrSizeChanged, words, dev.Words())
	}
	img := make([]uint64, words)
	if err := readWords(f, img); err != nil {
		return fmt.Errorf("%w: truncated image", ErrBadSnapshot)
	}
	if checksum(img) != header[3] {
		return ErrChecksum
	}
	if err := dev.RestorePersisted(img); err != nil {
		return err
	}
	dev.Restart()
	return nil
}

func readWords(r io.Reader, words []uint64) error {
	buf := make([]byte, 8*4096)
	for off := 0; off < len(words); off += 4096 {
		n := len(words) - off
		if n > 4096 {
			n = 4096
		}
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			words[off+i] = binary.LittleEndian.Uint64(buf[i*8:])
		}
	}
	return nil
}

// Exists reports whether a snapshot file is present at path.
func Exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
