package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "heap.tsp")

	dev := nvm.NewDevice(nvm.Config{Words: 1 << 12})
	heap, _ := pheap.Format(dev)
	p, _ := heap.Alloc(4)
	heap.Store(p, 0, 1234)
	heap.SetRoot(p)
	dev.CrashRescue()

	if err := Save(dev, path); err != nil {
		t.Fatalf("Save: %v", err)
	}

	dev2 := nvm.NewDevice(nvm.Config{Words: 1 << 12})
	if err := Load(dev2, path); err != nil {
		t.Fatalf("Load: %v", err)
	}
	heap2, err := pheap.Open(dev2)
	if err != nil {
		t.Fatalf("Open restored heap: %v", err)
	}
	if got := heap2.Load(heap2.Root(), 0); got != 1234 {
		t.Fatalf("restored value = %d, want 1234", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 64})
	if err := Load(dev, filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("not a snapshot at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	dev := nvm.NewDevice(nvm.Config{Words: 64})
	if err := Load(dev, path); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("Load(garbage) = %v, want ErrBadSnapshot", err)
	}
}

func TestLoadRejectsWrongSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	dev := nvm.NewDevice(nvm.Config{Words: 128})
	dev.Store(0, 1)
	dev.FlushAll()
	if err := Save(dev, path); err != nil {
		t.Fatal(err)
	}
	small := nvm.NewDevice(nvm.Config{Words: 64})
	if err := Load(small, path); !errors.Is(err, ErrSizeChanged) {
		t.Fatalf("Load into wrong-size device = %v, want ErrSizeChanged", err)
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	dev := nvm.NewDevice(nvm.Config{Words: 64})
	dev.Store(5, 42)
	dev.FlushAll()
	if err := Save(dev, path); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the image body.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-9] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	dev2 := nvm.NewDevice(nvm.Config{Words: 64})
	if err := Load(dev2, path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Load(corrupted) = %v, want ErrChecksum", err)
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	dev := nvm.NewDevice(nvm.Config{Words: 64})
	dev.FlushAll()
	if err := Save(dev, path); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-16], 0o644); err != nil {
		t.Fatal(err)
	}
	dev2 := nvm.NewDevice(nvm.Config{Words: 64})
	if err := Load(dev2, path); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("Load(truncated) = %v, want ErrBadSnapshot", err)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	dev := nvm.NewDevice(nvm.Config{Words: 64})
	dev.Store(0, 1)
	dev.FlushAll()
	if err := Save(dev, path); err != nil {
		t.Fatal(err)
	}
	dev.Store(0, 2)
	dev.FlushAll()
	if err := Save(dev, path); err != nil {
		t.Fatal(err)
	}
	dev2 := nvm.NewDevice(nvm.Config{Words: 64})
	if err := Load(dev2, path); err != nil {
		t.Fatal(err)
	}
	if dev2.Load(0) != 2 {
		t.Fatalf("second save not visible: got %d", dev2.Load(0))
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestExists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	if Exists(path) {
		t.Fatal("Exists on missing file")
	}
	dev := nvm.NewDevice(nvm.Config{Words: 64})
	if err := Save(dev, path); err != nil {
		t.Fatal(err)
	}
	if !Exists(path) {
		t.Fatal("Exists on present file")
	}
}

func TestUnflushedStateNotSaved(t *testing.T) {
	// Save captures the PERSISTED image: volatile-only stores must not
	// leak into the snapshot.
	path := filepath.Join(t.TempDir(), "snap")
	dev := nvm.NewDevice(nvm.Config{Words: 64})
	dev.Store(0, 7) // never flushed
	if err := Save(dev, path); err != nil {
		t.Fatal(err)
	}
	dev2 := nvm.NewDevice(nvm.Config{Words: 64})
	if err := Load(dev2, path); err != nil {
		t.Fatal(err)
	}
	if dev2.Load(0) != 0 {
		t.Fatal("unflushed store leaked into the snapshot")
	}
}
