package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the histogram's fixed bucket count: bucket i holds
// observations whose nanosecond value has bit length i, i.e. values in
// [2^(i-1), 2^i). Bucket 0 holds exact zeros. 65 buckets cover every
// possible uint64 duration, so Observe never needs bounds checks or
// configuration — the power-of-two resolution (quantiles accurate to a
// factor of two) is plenty for the p50/p95/p99 attribution the stats
// surfaces report.
const histBuckets = 65

// Histogram is a fixed-bucket, lock-free latency histogram. All methods
// are nil-receiver safe; a nil *Histogram is "telemetry off".
type Histogram struct {
	// Buckets are padless atomic words: one histogram's buckets are
	// updated by the same operation stream, so per-bucket padding would
	// buy nothing.
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64 // total observed nanoseconds (for Mean)
}

// Observe records one duration. Negative durations are clamped to zero
// (the clock went backwards; the sample is still an event).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bits.Len64(uint64(d))].Add(1)
	h.sum.Add(uint64(d))
}

// ObserveValue records an arbitrary uint64 magnitude (a batch size, a
// byte count) in the same power-of-two buckets. Quantiles over a
// value-observed histogram read back as plain integers through the
// returned Duration's numeric value; Histogram imposes no unit, only
// bit-length bucketing.
func (h *Histogram) ObserveValue(v uint64) {
	if h == nil {
		return
	}
	h.counts[bits.Len64(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot returns a point-in-time copy of the buckets. The copy is not
// atomic across buckets; concurrent observations may straddle it, which
// distorts a quantile by at most the in-flight events.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	return s
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a Histogram, and the unit
// of aggregation: shard snapshots Merge into a whole-server view.
type HistogramSnapshot struct {
	Counts [histBuckets]uint64
	Sum    uint64
}

// Count returns the number of observations.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the average observation (0 with none).
func (s HistogramSnapshot) Mean() time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(s.Sum / n)
}

// Quantile returns the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket holding that rank — a conservative (never underestimating)
// answer at power-of-two resolution. It returns 0 with no observations.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Max returns the upper bound of the highest non-empty bucket.
func (s HistogramSnapshot) Max() time.Duration {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			return bucketUpper(i)
		}
	}
	return 0
}

// Merge adds other's buckets into s.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
}

// bucketUpper returns bucket i's inclusive upper bound in nanoseconds.
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(uint64(1)<<i - 1)
}
