package telemetry

// ReplStats aggregates the replication tier's counters and the
// ack-driven lag histogram. Unlike the per-stack Registry sections it
// is server-wide — replication streams span shards — so the cache
// server owns one instance and folds it into `stats` output and the
// Prometheus endpoint itself. All methods are nil-receiver safe, like
// the rest of the package, so code paths can record unconditionally.
type ReplStats struct {
	// GroupsStreamed counts committed groups sent to followers.
	GroupsStreamed Counter
	// OpsStreamed counts individual ops inside streamed groups.
	OpsStreamed Counter
	// AcksReceived counts cumulative acks received from followers.
	AcksReceived Counter
	// Snapshots counts full state transfers served by the primary.
	Snapshots Counter
	// SnapshotKeys counts key/value pairs sent in state transfers.
	SnapshotKeys Counter
	// GroupsApplied counts groups a follower applied locally.
	GroupsApplied Counter
	// OpsApplied counts ops a follower applied locally.
	OpsApplied Counter
	// SnapshotsLoaded counts full state transfers a follower installed.
	SnapshotsLoaded Counter
	// Reconnects counts follower dial attempts after the first.
	Reconnects Counter
	// Lag is the primary's ack-driven replication lag distribution:
	// time from a group's commit (log append) to its cumulative ack.
	Lag Histogram
}

// NewReplStats returns a zeroed bundle.
func NewReplStats() *ReplStats {
	return &ReplStats{}
}

// Reset zeroes every counter and the lag histogram.
func (r *ReplStats) Reset() {
	if r == nil {
		return
	}
	r.GroupsStreamed.Reset()
	r.OpsStreamed.Reset()
	r.AcksReceived.Reset()
	r.Snapshots.Reset()
	r.SnapshotKeys.Reset()
	r.GroupsApplied.Reset()
	r.OpsApplied.Reset()
	r.SnapshotsLoaded.Reset()
	r.Reconnects.Reset()
	r.Lag.Reset()
}

// Snapshot returns the counters under their canonical repl_* names.
// The lag histogram is exposed separately via LagSnapshot so callers
// can render quantiles.
func (r *ReplStats) Snapshot() map[string]uint64 {
	if r == nil {
		return nil
	}
	return map[string]uint64{
		"repl_groups_streamed":  r.GroupsStreamed.Load(),
		"repl_ops_streamed":     r.OpsStreamed.Load(),
		"repl_acks_received":    r.AcksReceived.Load(),
		"repl_snapshots":        r.Snapshots.Load(),
		"repl_snapshot_keys":    r.SnapshotKeys.Load(),
		"repl_groups_applied":   r.GroupsApplied.Load(),
		"repl_ops_applied":      r.OpsApplied.Load(),
		"repl_snapshots_loaded": r.SnapshotsLoaded.Load(),
		"repl_reconnects":       r.Reconnects.Load(),
	}
}

// LagSnapshot returns a point-in-time copy of the lag histogram.
func (r *ReplStats) LagSnapshot() HistogramSnapshot {
	if r == nil {
		return HistogramSnapshot{}
	}
	return r.Lag.Snapshot()
}
