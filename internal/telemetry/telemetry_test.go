package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestCounterNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("nil Counter.Load() = %d, want 0", got)
	}

	var sc *ShardedCounter
	sc.Inc(7)
	sc.Reset()
	if got := sc.Load(); got != 0 {
		t.Fatalf("nil ShardedCounter.Load() = %d, want 0", got)
	}

	var h *Histogram
	h.Observe(time.Millisecond)
	h.Reset()
	if got := h.Snapshot().Count(); got != 0 {
		t.Fatalf("nil Histogram snapshot count = %d, want 0", got)
	}

	var d *DeviceStats
	d.IncLoad(1)
	d.IncStore(2)
	d.IncCAS(3)
	d.IncFlush()
	d.IncWriteback()
	d.IncRescue()
	d.IncDrop()
	d.Reset()

	var a *AtlasStats
	a.IncLogAppend()
	a.IncLogFlush()
	a.IncOCSCommit()
	a.IncCheckpoint()

	var hp *HeapStats
	hp.IncAlloc()
	hp.IncFree()
	hp.AddGC(10)

	var m *MapStats
	m.IncGet()
	m.IncPut()
	m.IncInc()
	m.IncDelete()

	var r *Registry
	if r.Counters() != nil {
		t.Fatal("nil Registry.Counters() should be nil")
	}
	r.Walk(func(string, uint64) { t.Fatal("nil Registry.Walk must not call fn") })
}

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if got := c.Load(); got != 10 {
		t.Fatalf("Load() = %d, want 10", got)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("after Reset, Load() = %d, want 0", got)
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	var c ShardedCounter
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("Load() = %d, want %d", got, workers*per)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("after Reset, Load() = %d, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast ops (~1us), 10 slow ops (~1ms).
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if got := s.Count(); got != 100 {
		t.Fatalf("Count() = %d, want 100", got)
	}
	p50 := s.Quantile(0.50)
	p99 := s.Quantile(0.99)
	if p50 < time.Microsecond || p50 >= 100*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1us bucket upper bound", p50)
	}
	if p99 < time.Millisecond || p99 >= 100*time.Millisecond {
		t.Fatalf("p99 = %v, want ~1ms bucket upper bound", p99)
	}
	if max := s.Max(); max < time.Millisecond {
		t.Fatalf("Max() = %v, want >= 1ms", max)
	}
	if mean := s.Mean(); mean < time.Microsecond || mean > time.Millisecond {
		t.Fatalf("Mean() = %v, want between 1us and 1ms", mean)
	}
	// Quantiles never underestimate: p100 upper bound >= actual max sample.
	if got := s.Quantile(1.0); got < time.Millisecond {
		t.Fatalf("Quantile(1.0) = %v, want >= 1ms", got)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second) // clamped to zero
	s := h.Snapshot()
	if got := s.Count(); got != 2 {
		t.Fatalf("Count() = %d, want 2", got)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile(0.5) = %v, want 0", got)
	}
	if got := s.Max(); got != 0 {
		t.Fatalf("Max() = %v, want 0", got)
	}
	h.Reset()
	if got := h.Snapshot().Count(); got != 0 {
		t.Fatalf("after Reset, Count() = %d, want 0", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var s HistogramSnapshot
	if s.Count() != 0 || s.Mean() != 0 || s.Quantile(0.99) != 0 || s.Max() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	b.Observe(time.Millisecond)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if got := sa.Count(); got != 2 {
		t.Fatalf("merged Count() = %d, want 2", got)
	}
	if got := sa.Max(); got < time.Millisecond {
		t.Fatalf("merged Max() = %v, want >= 1ms", got)
	}
	if sa.Sum != sb.Sum+uint64(time.Microsecond) {
		t.Fatalf("merged Sum = %d, want %d", sa.Sum, sb.Sum+uint64(time.Microsecond))
	}
}

func TestRegistrySnapshotSubAdd(t *testing.T) {
	r := NewRegistry()
	r.Device.IncStore(1)
	r.Device.IncFlush()
	r.Atlas.IncLogAppend()
	r.Map.IncPut()
	r.Generation.Inc()

	s1 := r.Counters()
	if s1["nvm_stores"] != 1 || s1["nvm_flushes"] != 1 || s1["atlas_log_appends"] != 1 ||
		s1["map_puts"] != 1 || s1["stack_generation"] != 1 {
		t.Fatalf("unexpected snapshot: %v", s1)
	}

	r.Device.IncStore(2)
	r.Map.IncPut()
	s2 := r.Counters()
	delta := s2.Sub(s1)
	if delta["nvm_stores"] != 1 || delta["map_puts"] != 1 || delta["nvm_flushes"] != 0 {
		t.Fatalf("unexpected delta: %v", delta)
	}

	agg := s1.Add(s2.Sub(s1))
	if agg["nvm_stores"] != 2 {
		t.Fatalf("Add: nvm_stores = %d, want 2", agg["nvm_stores"])
	}
}

func TestRegistryWalkDeterministicAndComplete(t *testing.T) {
	r := NewRegistry()
	var names1, names2 []string
	r.Walk(func(name string, _ uint64) { names1 = append(names1, name) })
	r.Walk(func(name string, _ uint64) { names2 = append(names2, name) })
	if len(names1) == 0 {
		t.Fatal("Walk emitted nothing")
	}
	if len(names1) != len(names2) {
		t.Fatalf("Walk not stable: %d vs %d names", len(names1), len(names2))
	}
	seen := make(map[string]bool, len(names1))
	for i, n := range names1 {
		if n != names2[i] {
			t.Fatalf("Walk order differs at %d: %q vs %q", i, n, names2[i])
		}
		if seen[n] {
			t.Fatalf("duplicate metric name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{
		"nvm_loads", "nvm_flushes", "atlas_log_appends", "heap_allocs",
		"map_gets", "server_hits", "recovery_count", "stack_generation",
	} {
		if !seen[want] {
			t.Fatalf("Walk missing %q (have %v)", want, names1)
		}
	}

	// A registry with nil sections still emits the full vocabulary, as
	// zeros.
	empty := &Registry{}
	var n int
	empty.Walk(func(_ string, v uint64) {
		n++
		if v != 0 {
			t.Fatalf("nil-section registry emitted nonzero value %d", v)
		}
	})
	if n != len(names1) {
		t.Fatalf("nil-section Walk emitted %d names, want %d", n, len(names1))
	}
}

func TestSnapshotNames(t *testing.T) {
	s := Snapshot{"b": 1, "a": 2, "c": 3}
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names() = %v, want sorted [a b c]", names)
	}
}
