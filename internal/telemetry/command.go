package telemetry

import "time"

// Command enumerates the cache server's protocol commands, the key of
// the per-command latency attribution the batch pipeline reports: a
// coalesced drain serves gets and sets in the same critical section, so
// only per-command histograms can show whether reads ride along for
// free or pay for the mutations they were batched with.
type Command uint8

const (
	CmdGet Command = iota
	CmdSet
	CmdIncr
	CmdDelete
	CmdMGet
	CmdMSet
	// CmdRepl labels operations a follower applies from its replication
	// stream — the same exec path as client commands, attributed
	// separately so replica apply cost never masquerades as client
	// traffic.
	CmdRepl

	// NumCommands bounds the enum; CommandLatency sizes its histogram
	// array with it.
	NumCommands = int(CmdRepl) + 1
)

// String returns the wire-protocol spelling of the command.
func (c Command) String() string {
	switch c {
	case CmdGet:
		return "get"
	case CmdSet:
		return "set"
	case CmdIncr:
		return "incr"
	case CmdDelete:
		return "delete"
	case CmdMGet:
		return "mget"
	case CmdMSet:
		return "mset"
	case CmdRepl:
		return "repl"
	default:
		return "unknown"
	}
}

// Commands lists every command in enum order, for deterministic
// rendering of per-command surfaces.
func Commands() []Command {
	return []Command{CmdGet, CmdSet, CmdIncr, CmdDelete, CmdMGet, CmdMSet, CmdRepl}
}

// CommandLatency is a bundle of per-command latency histograms, one
// per protocol command. Like every section it is nil-receiver safe:
// a nil *CommandLatency is "telemetry off".
type CommandLatency struct {
	hists [NumCommands]Histogram
}

// Observe records one request's service time under its command.
// Out-of-range commands are dropped rather than panicking — the
// histogram is telemetry, not control flow.
func (c *CommandLatency) Observe(cmd Command, d time.Duration) {
	if c == nil || int(cmd) >= NumCommands {
		return
	}
	c.hists[cmd].Observe(d)
}

// Snapshot copies one command's histogram (zero value on nil).
func (c *CommandLatency) Snapshot(cmd Command) HistogramSnapshot {
	if c == nil || int(cmd) >= NumCommands {
		return HistogramSnapshot{}
	}
	return c.hists[cmd].Snapshot()
}

// Reset zeroes every command's histogram.
func (c *CommandLatency) Reset() {
	if c == nil {
		return
	}
	for i := range c.hists {
		c.hists[i].Reset()
	}
}

// CommandLatencySnapshot is the point-in-time copy of a whole bundle,
// and the unit of cross-shard aggregation.
type CommandLatencySnapshot [NumCommands]HistogramSnapshot

// SnapshotAll copies every command's histogram at once.
func (c *CommandLatency) SnapshotAll() CommandLatencySnapshot {
	var s CommandLatencySnapshot
	if c == nil {
		return s
	}
	for i := range c.hists {
		s[i] = c.hists[i].Snapshot()
	}
	return s
}

// Merge adds other's buckets into s, command by command.
func (s *CommandLatencySnapshot) Merge(other CommandLatencySnapshot) {
	for i := range s {
		s[i].Merge(other[i])
	}
}
