package telemetry

import "time"

// Command enumerates the cache server's protocol commands, the key of
// the per-command latency attribution the batch pipeline reports: a
// coalesced drain serves gets and sets in the same critical section, so
// only per-command histograms can show whether reads ride along for
// free or pay for the mutations they were batched with.
type Command uint8

const (
	CmdGet Command = iota
	CmdSet
	CmdIncr
	CmdDelete
	CmdMGet
	CmdMSet
	// The z* commands operate on the ordered keyspace (the persistent
	// skip list): point writes ride the batch pipeline, range reads run
	// lock-free with no Atlas machinery at all.
	CmdZAdd
	CmdZGet
	CmdZIncr
	CmdZDel
	CmdZRange
	CmdZCount
	// CmdWait labels durability-barrier requests: epoch waits and
	// replication-ack waits both land here, so barrier latency (which
	// includes the block time) never pollutes mutation histograms.
	CmdWait
	// CmdRepl labels operations a follower applies from its replication
	// stream — the same exec path as client commands, attributed
	// separately so replica apply cost never masquerades as client
	// traffic.
	CmdRepl

	// NumCommands bounds the enum; CommandLatency sizes its histogram
	// array with it.
	NumCommands = int(CmdRepl) + 1
)

// String returns the wire-protocol spelling of the command.
func (c Command) String() string {
	switch c {
	case CmdGet:
		return "get"
	case CmdSet:
		return "set"
	case CmdIncr:
		return "incr"
	case CmdDelete:
		return "delete"
	case CmdMGet:
		return "mget"
	case CmdMSet:
		return "mset"
	case CmdZAdd:
		return "zadd"
	case CmdZGet:
		return "zget"
	case CmdZIncr:
		return "zincr"
	case CmdZDel:
		return "zdel"
	case CmdZRange:
		return "zrange"
	case CmdZCount:
		return "zcount"
	case CmdWait:
		return "wait"
	case CmdRepl:
		return "repl"
	default:
		return "unknown"
	}
}

// Commands lists every command in enum order, for deterministic
// rendering of per-command surfaces.
func Commands() []Command {
	return []Command{
		CmdGet, CmdSet, CmdIncr, CmdDelete, CmdMGet, CmdMSet,
		CmdZAdd, CmdZGet, CmdZIncr, CmdZDel, CmdZRange, CmdZCount,
		CmdWait, CmdRepl,
	}
}

// Protocol labels which wire protocol carried a command — the second
// dimension of command-latency attribution. The same get executes the
// same shard code whether it arrived as native text or RESP, but the
// codec in front of it differs; per-protocol histograms are how an
// adapter regression shows up without a cross-protocol A/B harness.
type Protocol uint8

const (
	// ProtoInternal labels work that arrived on no wire protocol:
	// replication apply, embedded callers, tests driving exec directly.
	ProtoInternal Protocol = iota
	// ProtoNative is the server's line-oriented text protocol.
	ProtoNative
	// ProtoRESP is the RESP2 adapter.
	ProtoRESP

	// NumProtocols bounds the enum.
	NumProtocols = int(ProtoRESP) + 1
)

// String returns the protocol's stable telemetry label.
func (p Protocol) String() string {
	switch p {
	case ProtoNative:
		return "native"
	case ProtoRESP:
		return "resp"
	case ProtoInternal:
		return "internal"
	default:
		return "unknown"
	}
}

// Protocols lists every protocol in enum order, for deterministic
// rendering of per-protocol surfaces.
func Protocols() []Protocol {
	return []Protocol{ProtoInternal, ProtoNative, ProtoRESP}
}

// CommandLatency is a bundle of per-protocol, per-command latency
// histograms. Like every section it is nil-receiver safe: a nil
// *CommandLatency is "telemetry off".
type CommandLatency struct {
	hists [NumProtocols][NumCommands]Histogram
}

// Observe records one request's service time under its command with no
// protocol attribution (ProtoInternal) — the pre-seam API, kept for
// embedded callers.
func (c *CommandLatency) Observe(cmd Command, d time.Duration) {
	c.ObserveProto(ProtoInternal, cmd, d)
}

// ObserveProto records one request's service time under its protocol
// and command. Out-of-range values are dropped rather than panicking —
// the histogram is telemetry, not control flow.
func (c *CommandLatency) ObserveProto(p Protocol, cmd Command, d time.Duration) {
	if c == nil || int(cmd) >= NumCommands || int(p) >= NumProtocols {
		return
	}
	c.hists[p][cmd].Observe(d)
}

// Snapshot copies one command's histogram merged across protocols
// (zero value on nil).
func (c *CommandLatency) Snapshot(cmd Command) HistogramSnapshot {
	var s HistogramSnapshot
	if c == nil || int(cmd) >= NumCommands {
		return s
	}
	for p := 0; p < NumProtocols; p++ {
		s.Merge(c.hists[p][cmd].Snapshot())
	}
	return s
}

// SnapshotProto copies one protocol × command histogram.
func (c *CommandLatency) SnapshotProto(p Protocol, cmd Command) HistogramSnapshot {
	if c == nil || int(cmd) >= NumCommands || int(p) >= NumProtocols {
		return HistogramSnapshot{}
	}
	return c.hists[p][cmd].Snapshot()
}

// Reset zeroes every histogram in the bundle.
func (c *CommandLatency) Reset() {
	if c == nil {
		return
	}
	for p := range c.hists {
		for i := range c.hists[p] {
			c.hists[p][i].Reset()
		}
	}
}

// CommandLatencySnapshot is the point-in-time copy of one protocol's
// (or the merged) command histograms, and the unit of cross-shard
// aggregation.
type CommandLatencySnapshot [NumCommands]HistogramSnapshot

// SnapshotAll copies every command's histogram merged across protocols
// — the protocol-blind view the aggregate stats report.
func (c *CommandLatency) SnapshotAll() CommandLatencySnapshot {
	var s CommandLatencySnapshot
	if c == nil {
		return s
	}
	for p := range c.hists {
		for i := range c.hists[p] {
			s[i].Merge(c.hists[p][i].Snapshot())
		}
	}
	return s
}

// SnapshotAllByProto copies every protocol × command histogram at
// once, protocols unmerged.
func (c *CommandLatency) SnapshotAllByProto() [NumProtocols]CommandLatencySnapshot {
	var s [NumProtocols]CommandLatencySnapshot
	if c == nil {
		return s
	}
	for p := range c.hists {
		for i := range c.hists[p] {
			s[p][i] = c.hists[p][i].Snapshot()
		}
	}
	return s
}

// Merge adds other's buckets into s, command by command.
func (s *CommandLatencySnapshot) Merge(other CommandLatencySnapshot) {
	for i := range s {
		s[i].Merge(other[i])
	}
}
