package telemetry

// CampaignStats is a fault-injection campaign's counter section: what
// the harness and cmd/faultinject drove and how much of it recovered
// consistently. It follows the registry sections' vocabulary rules —
// nil-safe counters, a Walk with canonical campaign_* names, a Snapshot
// usable with the shared Snapshot arithmetic — so campaign reports and
// server stats speak one schema (the ROADMAP's "campaigns and servers
// share one stats schema" item). It lives outside Registry because a
// campaign aggregates over many stacks, not one.
type CampaignStats struct {
	// Runs counts campaign runs/cycles executed.
	Runs Counter
	// Consistent counts runs that recovered consistently (every
	// invariant and crash contract held).
	Consistent Counter
	// Failures counts runs that broke their contract.
	Failures Counter
	// Crashes counts crashes injected across all runs.
	Crashes Counter
	// Migrations counts slot migrations driven by the cluster campaign.
	Migrations Counter
}

// Record tallies one campaign's outcome: runs cycles, of which
// consistent recovered cleanly.
func (t *CampaignStats) Record(runs, consistent int) {
	if t == nil {
		return
	}
	t.Runs.Add(uint64(runs))
	t.Consistent.Add(uint64(consistent))
	t.Failures.Add(uint64(runs - consistent))
}

// Walk calls fn for every campaign counter with its canonical
// campaign_* name, in a fixed order.
func (t *CampaignStats) Walk(fn func(name string, value uint64)) {
	if t == nil {
		return
	}
	fn("campaign_runs", t.Runs.Load())
	fn("campaign_consistent", t.Consistent.Load())
	fn("campaign_failures", t.Failures.Load())
	fn("campaign_crashes", t.Crashes.Load())
	fn("campaign_migrations", t.Migrations.Load())
}

// Counters snapshots the campaign counters under their canonical names
// (nil-safe, like Registry.Counters).
func (t *CampaignStats) Counters() Snapshot {
	if t == nil {
		return nil
	}
	s := make(Snapshot, 8)
	t.Walk(func(name string, v uint64) { s[name] = v })
	return s
}
