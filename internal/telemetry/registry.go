package telemetry

import "sort"

// DeviceStats is the simulated NVM device's section: memory-access
// counters (sharded; they fire on every simulated load/store) and the
// persistence-cost counters the paper's whole argument rests on —
// synchronous flushes are the preventive cost, writebacks are free
// background work, rescues/drops classify crash outcomes.
type DeviceStats struct {
	Loads  ShardedCounter
	Stores ShardedCounter
	CAS    ShardedCounter

	Flushes    Counter // synchronous, latency-charged flushes
	Writebacks Counter // background/rescue write-backs (free)
	Rescues    Counter // crash-time rescues performed
	Drops      Counter // crashes that discarded the volatile image
}

// The Inc* helpers are the device's hot-path entry points. They are
// nil-receiver safe so a device built without telemetry pays exactly one
// branch per event.

func (s *DeviceStats) IncLoad(hint uint64) {
	if s != nil {
		s.Loads.Inc(hint)
	}
}

func (s *DeviceStats) IncStore(hint uint64) {
	if s != nil {
		s.Stores.Inc(hint)
	}
}

func (s *DeviceStats) IncCAS(hint uint64) {
	if s != nil {
		s.CAS.Inc(hint)
	}
}

func (s *DeviceStats) IncFlush() {
	if s != nil {
		s.Flushes.Inc()
	}
}

func (s *DeviceStats) IncWriteback() {
	if s != nil {
		s.Writebacks.Inc()
	}
}

func (s *DeviceStats) IncRescue() {
	if s != nil {
		s.Rescues.Inc()
	}
}

func (s *DeviceStats) IncDrop() {
	if s != nil {
		s.Drops.Inc()
	}
}

// Reset zeroes the section (nvm.Device.ResetStats compatibility).
func (s *DeviceStats) Reset() {
	if s == nil {
		return
	}
	s.Loads.Reset()
	s.Stores.Reset()
	s.CAS.Reset()
	s.Flushes.Reset()
	s.Writebacks.Reset()
	s.Rescues.Reset()
	s.Drops.Reset()
}

// AtlasStats is the Atlas runtime's section: undo-log traffic and OCS
// commit counts — the "log writes" column of the paper's cost breakdown.
type AtlasStats struct {
	LogAppends  Counter // undo records appended
	LogFlushes  Counter // synchronous log flush ranges (ModeNonTSP only)
	OCSCommits  Counter // outermost critical sections committed
	Checkpoints Counter // explicit log-truncating checkpoints
}

func (s *AtlasStats) IncLogAppend() {
	if s != nil {
		s.LogAppends.Inc()
	}
}

func (s *AtlasStats) IncLogFlush() {
	if s != nil {
		s.LogFlushes.Inc()
	}
}

func (s *AtlasStats) IncOCSCommit() {
	if s != nil {
		s.OCSCommits.Inc()
	}
}

func (s *AtlasStats) IncCheckpoint() {
	if s != nil {
		s.Checkpoints.Inc()
	}
}

// Reset zeroes the section.
func (s *AtlasStats) Reset() {
	if s == nil {
		return
	}
	s.LogAppends.Reset()
	s.LogFlushes.Reset()
	s.OCSCommits.Reset()
	s.Checkpoints.Reset()
}

// HeapStats is the persistent heap's section.
type HeapStats struct {
	Allocs        Counter
	Frees         Counter
	GCRuns        Counter
	GCBlocksFreed Counter
}

func (s *HeapStats) IncAlloc() {
	if s != nil {
		s.Allocs.Inc()
	}
}

func (s *HeapStats) IncFree() {
	if s != nil {
		s.Frees.Inc()
	}
}

func (s *HeapStats) AddGC(blocksFreed uint64) {
	if s != nil {
		s.GCRuns.Inc()
		s.GCBlocksFreed.Add(blocksFreed)
	}
}

// Reset zeroes the section.
func (s *HeapStats) Reset() {
	if s == nil {
		return
	}
	s.Allocs.Reset()
	s.Frees.Reset()
	s.GCRuns.Reset()
	s.GCBlocksFreed.Reset()
}

// MapStats is the fortified hash map's section: data-structure-level
// operation counts (distinct from ServerStats, which counts protocol
// requests — one mget request is many map gets). The Opt* counters
// instrument the seqlock read path: OptGets are reads served without
// any stripe mutex, OptRetries are snapshot validations that failed
// (a writer interleaved), and OptFallbacks are reads that exhausted
// their retry budget and re-ran under the stripe lock — the bounded-
// retry contract made observable.
type MapStats struct {
	Gets    Counter
	Puts    Counter
	Incs    Counter
	Deletes Counter

	OptGets      Counter
	OptRetries   Counter
	OptFallbacks Counter
}

func (s *MapStats) IncGet() {
	if s != nil {
		s.Gets.Inc()
	}
}

func (s *MapStats) IncPut() {
	if s != nil {
		s.Puts.Inc()
	}
}

func (s *MapStats) IncInc() {
	if s != nil {
		s.Incs.Inc()
	}
}

func (s *MapStats) IncDelete() {
	if s != nil {
		s.Deletes.Inc()
	}
}

func (s *MapStats) IncOptGet() {
	if s != nil {
		s.OptGets.Inc()
	}
}

func (s *MapStats) IncOptRetry() {
	if s != nil {
		s.OptRetries.Inc()
	}
}

func (s *MapStats) IncOptFallback() {
	if s != nil {
		s.OptFallbacks.Inc()
	}
}

// Reset zeroes the section.
func (s *MapStats) Reset() {
	if s == nil {
		return
	}
	s.Gets.Reset()
	s.Puts.Reset()
	s.Incs.Reset()
	s.Deletes.Reset()
	s.OptGets.Reset()
	s.OptRetries.Reset()
	s.OptFallbacks.Reset()
}

// ServerStats is the cache server's protocol-level section, per shard.
// The batch counters instrument the per-shard execution pipeline: how
// many coalesced critical sections ran, how many operations rode in
// them, and how often a full queue degraded an operation to the
// synchronous per-op path.
type ServerStats struct {
	Gets    Counter
	Hits    Counter
	Sets    Counter
	Deletes Counter

	// The Z* counters are the ordered keyspace's request counts: reads
	// (zget/zrange/zcount traversals) and writes against the skip list,
	// kept apart from the map counters because the two engines have
	// completely different persistence cost models.
	ZGets    Counter // zget/zrange/zcount requests served lock-free
	ZHits    Counter // zget requests that found the key
	ZSets    Counter // zadd/zincr writes applied
	ZDeletes Counter // zdel writes applied

	Batches        Counter // drained batch groups executed by the shard worker
	BatchedOps     Counter // operations executed inside batch groups
	BatchFallbacks Counter // operations that took the synchronous path (queue full/disabled)

	// The epoch-durability counters instrument the per-operation
	// durability tiers: how many mutations deferred their persistence
	// to an epoch close (RelaxedOps/FireOps vs DurableOps), how many
	// epoch closes ran, how many overlay entries they flushed into
	// Atlas sections, and how many closes skipped the frontier advance
	// because a crash raced the drain.
	DurableOps   Counter // mutations served at the durable tier
	RelaxedOps   Counter // mutations acknowledged at the relaxed tier
	FireOps      Counter // mutations acknowledged fire-and-forget
	EpochCloses  Counter // epoch-close cycles completed
	EpochFlushed Counter // overlay entries drained into Atlas at epoch close
	EpochSkipped Counter // epoch closes that withheld the frontier (crash raced)
	Waits        Counter // wait barrier requests served

	// The session counters instrument the exactly-once dedup window:
	// how many sessioned (seq-tagged) mutations arrived, how many were
	// suppressed as duplicates of an already-applied request, how many
	// were rejected as older than the eviction floor, and how many
	// records the bounded window evicted to make room.
	SessionOps     Counter // seq-tagged mutations served
	SessionDups    Counter // duplicate retries suppressed by the window
	SessionTooOld  Counter // seq-too-old rejections (below record or floor)
	SessionEvicted Counter // dedup records evicted from the bounded window
}

// Reset zeroes the section.
func (s *ServerStats) Reset() {
	if s == nil {
		return
	}
	s.Gets.Reset()
	s.Hits.Reset()
	s.Sets.Reset()
	s.Deletes.Reset()
	s.ZGets.Reset()
	s.ZHits.Reset()
	s.ZSets.Reset()
	s.ZDeletes.Reset()
	s.Batches.Reset()
	s.BatchedOps.Reset()
	s.BatchFallbacks.Reset()
	s.DurableOps.Reset()
	s.RelaxedOps.Reset()
	s.FireOps.Reset()
	s.EpochCloses.Reset()
	s.EpochFlushed.Reset()
	s.EpochSkipped.Reset()
	s.Waits.Reset()
	s.SessionOps.Reset()
	s.SessionDups.Reset()
	s.SessionTooOld.Reset()
	s.SessionEvicted.Reset()
}

// RecoveryStats accumulates crash/recovery outcomes across a stack's
// incarnations: one Recoveries increment per successful reattach, plus
// the cumulative Atlas recovery-report counts (what rescue-time work the
// paper's procrastination deferred to failure time).
type RecoveryStats struct {
	Recoveries     Counter // successful crash/reattach cycles
	EntriesScanned Counter // valid log records found at recovery
	OCSes          Counter // fully captured OCS groups
	PartialGroups  Counter // partially overwritten old groups skipped
	Incomplete     Counter // OCSes lacking a durable final release
	Cascaded       Counter // completed OCSes rolled back via happens-before
	UndoApplied    Counter // undo records replayed
	GCBlocksFreed  Counter // leaked blocks reclaimed by recovery GC
}

// Reset zeroes the section.
func (s *RecoveryStats) Reset() {
	if s == nil {
		return
	}
	s.Recoveries.Reset()
	s.EntriesScanned.Reset()
	s.OCSes.Reset()
	s.PartialGroups.Reset()
	s.Incomplete.Reset()
	s.Cascaded.Reset()
	s.UndoApplied.Reset()
	s.GCBlocksFreed.Reset()
}

// Registry is one storage stack's complete telemetry plane. Layer
// sections are pointers so an already-running layer's live section can
// be adopted (stack.Reattach adopts the restarted device's counters
// instead of severing their history). A nil *Registry disables telemetry
// end to end; every accessor tolerates it.
type Registry struct {
	Device   *DeviceStats
	Atlas    *AtlasStats
	Heap     *HeapStats
	Map      *MapStats
	Server   *ServerStats
	Recovery *RecoveryStats

	// OpLatency is the service-time distribution observed at the top of
	// the stack: one observation per request-level op on the synchronous
	// path, one per drained group on the batch pipeline (the group is
	// the unit of locking and persistence there).
	OpLatency *Histogram

	// RecoveryLatency is the crash-to-serving distribution, one
	// observation per recovery.
	RecoveryLatency *Histogram

	// CmdLatency attributes request service time per protocol command
	// (one observation per request, on both execution paths).
	CmdLatency *CommandLatency

	// BatchSize is a value histogram (ObserveValue) of operations per
	// drained batch group — the direct read on how much amortization the
	// pipeline is actually getting.
	BatchSize *Histogram

	// ReadLatency is the service-time distribution of read commands that
	// completed entirely on the optimistic (seqlock) path — no stripe
	// mutex, no batch pipeline. Every command still lands in CmdLatency
	// exactly once whichever path served it; ReadLatency is the
	// lock-free subset, so comparing the two isolates what the locked
	// machinery costs a read.
	ReadLatency *Histogram

	// RangeLen is a value histogram (ObserveValue) of result lengths of
	// zrange requests — the shape of the ordered workload's scans, and
	// the denominator for judging whether the range limit is binding.
	RangeLen *Histogram

	// EpochFlushLatency is the epoch-close drain distribution: one
	// observation per close that flushed this shard's relaxed overlay,
	// measuring how long the deferred persistence actually takes — the
	// tail a relaxed writer's loss window adds to, and the cost the
	// durable tier avoids paying inline.
	EpochFlushLatency *Histogram

	// Generation counts the stack's incarnations: 1 after New, +1 per
	// reattach. Counters deliberately survive reattach (the registry
	// outlives the stack it instruments); Generation is how a consumer
	// tells one incarnation's deltas from the next.
	Generation Counter
}

// NewRegistry returns a registry with every section live.
func NewRegistry() *Registry {
	return &Registry{
		Device:            &DeviceStats{},
		Atlas:             &AtlasStats{},
		Heap:              &HeapStats{},
		Map:               &MapStats{},
		Server:            &ServerStats{},
		Recovery:          &RecoveryStats{},
		OpLatency:         &Histogram{},
		RecoveryLatency:   &Histogram{},
		CmdLatency:        &CommandLatency{},
		BatchSize:         &Histogram{},
		ReadLatency:       &Histogram{},
		RangeLen:          &Histogram{},
		EpochFlushLatency: &Histogram{},
	}
}

// Reset zeroes every counter and histogram in the registry — the
// operator-facing "stats reset" — while deliberately leaving Generation
// alone: counters describe traffic, Generation describes which
// incarnation of the stack is serving it, and a reset must not make a
// twice-recovered stack look freshly built.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.Device.Reset()
	r.Atlas.Reset()
	r.Heap.Reset()
	r.Map.Reset()
	r.Server.Reset()
	r.Recovery.Reset()
	r.OpLatency.Reset()
	r.RecoveryLatency.Reset()
	r.CmdLatency.Reset()
	r.BatchSize.Reset()
	r.ReadLatency.Reset()
	r.RangeLen.Reset()
	r.EpochFlushLatency.Reset()
}

// Snapshot is a point-in-time copy of a registry's counters, keyed by
// canonical metric name. Counters are monotonic within an incarnation,
// so Sub yields the events of a window and Add aggregates shards.
type Snapshot map[string]uint64

// Counters snapshots every counter in the registry (nil on a nil
// registry). Names are stable: they are the wire-protocol and
// Prometheus-exposition vocabulary.
func (r *Registry) Counters() Snapshot {
	if r == nil {
		return nil
	}
	s := make(Snapshot, 32)
	r.Walk(func(name string, v uint64) { s[name] = v })
	return s
}

// Walk calls fn for every counter with its canonical name, in a fixed
// order. Missing (nil) sections are emitted as zeros so consumers always
// see the full vocabulary.
func (r *Registry) Walk(fn func(name string, value uint64)) {
	if r == nil {
		return
	}
	d, a, h, m, sv, rec := r.Device, r.Atlas, r.Heap, r.Map, r.Server, r.Recovery
	fn("nvm_loads", d.loadsLoad())
	fn("nvm_stores", d.storesLoad())
	fn("nvm_cas", d.casLoad())
	fn("nvm_flushes", d.flushesLoad())
	fn("nvm_writebacks", d.writebacksLoad())
	fn("nvm_rescues", d.rescuesLoad())
	fn("nvm_drops", d.dropsLoad())
	fn("atlas_log_appends", fieldLoad(a, func(a *AtlasStats) *Counter { return &a.LogAppends }))
	fn("atlas_log_flushes", fieldLoad(a, func(a *AtlasStats) *Counter { return &a.LogFlushes }))
	fn("atlas_ocs_commits", fieldLoad(a, func(a *AtlasStats) *Counter { return &a.OCSCommits }))
	fn("atlas_checkpoints", fieldLoad(a, func(a *AtlasStats) *Counter { return &a.Checkpoints }))
	fn("heap_allocs", fieldLoad(h, func(h *HeapStats) *Counter { return &h.Allocs }))
	fn("heap_frees", fieldLoad(h, func(h *HeapStats) *Counter { return &h.Frees }))
	fn("heap_gc_runs", fieldLoad(h, func(h *HeapStats) *Counter { return &h.GCRuns }))
	fn("heap_gc_blocks_freed", fieldLoad(h, func(h *HeapStats) *Counter { return &h.GCBlocksFreed }))
	fn("map_gets", fieldLoad(m, func(m *MapStats) *Counter { return &m.Gets }))
	fn("map_puts", fieldLoad(m, func(m *MapStats) *Counter { return &m.Puts }))
	fn("map_incs", fieldLoad(m, func(m *MapStats) *Counter { return &m.Incs }))
	fn("map_deletes", fieldLoad(m, func(m *MapStats) *Counter { return &m.Deletes }))
	fn("map_opt_gets", fieldLoad(m, func(m *MapStats) *Counter { return &m.OptGets }))
	fn("map_opt_retries", fieldLoad(m, func(m *MapStats) *Counter { return &m.OptRetries }))
	fn("map_opt_fallbacks", fieldLoad(m, func(m *MapStats) *Counter { return &m.OptFallbacks }))
	fn("server_gets", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.Gets }))
	fn("server_hits", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.Hits }))
	fn("server_sets", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.Sets }))
	fn("server_deletes", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.Deletes }))
	fn("server_zgets", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.ZGets }))
	fn("server_zhits", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.ZHits }))
	fn("server_zsets", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.ZSets }))
	fn("server_zdeletes", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.ZDeletes }))
	fn("server_batches", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.Batches }))
	fn("server_batched_ops", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.BatchedOps }))
	fn("server_batch_fallbacks", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.BatchFallbacks }))
	fn("server_durable_ops", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.DurableOps }))
	fn("server_relaxed_ops", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.RelaxedOps }))
	fn("server_fire_ops", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.FireOps }))
	fn("server_epoch_closes", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.EpochCloses }))
	fn("server_session_ops", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.SessionOps }))
	fn("server_session_dups", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.SessionDups }))
	fn("server_session_too_old", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.SessionTooOld }))
	fn("server_session_evicted", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.SessionEvicted }))
	fn("server_epoch_flushed", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.EpochFlushed }))
	fn("server_epoch_skipped", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.EpochSkipped }))
	fn("server_waits", fieldLoad(sv, func(s *ServerStats) *Counter { return &s.Waits }))
	fn("recovery_count", fieldLoad(rec, func(r *RecoveryStats) *Counter { return &r.Recoveries }))
	fn("recovery_entries_scanned", fieldLoad(rec, func(r *RecoveryStats) *Counter { return &r.EntriesScanned }))
	fn("recovery_ocses", fieldLoad(rec, func(r *RecoveryStats) *Counter { return &r.OCSes }))
	fn("recovery_partial_groups", fieldLoad(rec, func(r *RecoveryStats) *Counter { return &r.PartialGroups }))
	fn("recovery_incomplete", fieldLoad(rec, func(r *RecoveryStats) *Counter { return &r.Incomplete }))
	fn("recovery_cascaded", fieldLoad(rec, func(r *RecoveryStats) *Counter { return &r.Cascaded }))
	fn("recovery_undo_applied", fieldLoad(rec, func(r *RecoveryStats) *Counter { return &r.UndoApplied }))
	fn("recovery_gc_blocks_freed", fieldLoad(rec, func(r *RecoveryStats) *Counter { return &r.GCBlocksFreed }))
	fn("stack_generation", r.Generation.Load())
}

// fieldLoad loads one counter out of a possibly-nil section.
func fieldLoad[S any](sec *S, field func(*S) *Counter) uint64 {
	if sec == nil {
		return 0
	}
	return field(sec).Load()
}

// Sharded device counters need their own nil-tolerant loads.

func (s *DeviceStats) loadsLoad() uint64 {
	if s == nil {
		return 0
	}
	return s.Loads.Load()
}

func (s *DeviceStats) storesLoad() uint64 {
	if s == nil {
		return 0
	}
	return s.Stores.Load()
}

func (s *DeviceStats) casLoad() uint64 {
	if s == nil {
		return 0
	}
	return s.CAS.Load()
}

func (s *DeviceStats) flushesLoad() uint64 {
	if s == nil {
		return 0
	}
	return s.Flushes.Load()
}

func (s *DeviceStats) writebacksLoad() uint64 {
	if s == nil {
		return 0
	}
	return s.Writebacks.Load()
}

func (s *DeviceStats) rescuesLoad() uint64 {
	if s == nil {
		return 0
	}
	return s.Rescues.Load()
}

func (s *DeviceStats) dropsLoad() uint64 {
	if s == nil {
		return 0
	}
	return s.Drops.Load()
}

// Sub returns s minus earlier, name by name. Names present in s but not
// in earlier are treated as starting from zero.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for name, v := range s {
		out[name] = v - earlier[name]
	}
	return out
}

// Add merges other into s (s is mutated and returned).
func (s Snapshot) Add(other Snapshot) Snapshot {
	for name, v := range other {
		s[name] += v
	}
	return s
}

// Names returns the snapshot's metric names, sorted, for deterministic
// rendering.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
