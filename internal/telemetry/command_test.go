package telemetry

import (
	"testing"
	"time"
)

func TestCommandStrings(t *testing.T) {
	want := []string{
		"get", "set", "incr", "delete", "mget", "mset",
		"zadd", "zget", "zincr", "zdel", "zrange", "zcount",
		"wait", "repl",
	}
	cmds := Commands()
	if len(cmds) != NumCommands {
		t.Fatalf("Commands() returned %d entries, want %d", len(cmds), NumCommands)
	}
	for i, c := range cmds {
		if c.String() != want[i] {
			t.Errorf("command %d = %q, want %q", i, c.String(), want[i])
		}
	}
	if got := Command(200).String(); got != "unknown" {
		t.Errorf("out-of-range command String() = %q", got)
	}
}

func TestCommandLatencyObserveAndSnapshot(t *testing.T) {
	var cl CommandLatency
	cl.Observe(CmdGet, 100*time.Nanosecond)
	cl.Observe(CmdGet, 200*time.Nanosecond)
	cl.Observe(CmdSet, time.Microsecond)
	cl.Observe(Command(250), time.Second) // dropped, not a panic

	if got := cl.Snapshot(CmdGet).Count(); got != 2 {
		t.Errorf("get count = %d, want 2", got)
	}
	if got := cl.Snapshot(CmdSet).Count(); got != 1 {
		t.Errorf("set count = %d, want 1", got)
	}
	if got := cl.Snapshot(CmdDelete).Count(); got != 0 {
		t.Errorf("delete count = %d, want 0", got)
	}
	if got := cl.Snapshot(Command(250)).Count(); got != 0 {
		t.Errorf("out-of-range snapshot count = %d, want 0", got)
	}

	all := cl.SnapshotAll()
	if all[CmdGet].Count() != 2 || all[CmdSet].Count() != 1 {
		t.Errorf("SnapshotAll mismatch: get=%d set=%d", all[CmdGet].Count(), all[CmdSet].Count())
	}

	var merged CommandLatencySnapshot
	merged.Merge(all)
	merged.Merge(all)
	if got := merged[CmdGet].Count(); got != 4 {
		t.Errorf("merged get count = %d, want 4", got)
	}

	cl.Reset()
	if got := cl.Snapshot(CmdGet).Count(); got != 0 {
		t.Errorf("get count after Reset = %d, want 0", got)
	}
}

func TestCommandLatencyNilSafe(t *testing.T) {
	var cl *CommandLatency
	cl.Observe(CmdGet, time.Second) // must not panic
	cl.Reset()
	if got := cl.Snapshot(CmdGet).Count(); got != 0 {
		t.Errorf("nil snapshot count = %d", got)
	}
	if got := cl.SnapshotAll()[CmdSet].Count(); got != 0 {
		t.Errorf("nil SnapshotAll count = %d", got)
	}
}

func TestHistogramObserveValue(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 64} {
		h.ObserveValue(v)
	}
	s := h.Snapshot()
	if got := s.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := s.Sum; got != 70 {
		t.Fatalf("sum = %d, want 70", got)
	}
	// The p50 of {1,2,3,64} lands in the bit-length-2 bucket: upper
	// bound 3 read back as a plain integer.
	if got := uint64(s.Quantile(0.5)); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	if got := uint64(s.Max()); got != 127 {
		t.Errorf("max bucket upper = %d, want 127", got)
	}
	var nilH *Histogram
	nilH.ObserveValue(9) // must not panic
}

// TestRegistryReset is the "stats reset" contract: every counter and
// histogram zeroes, but Generation — which identifies the incarnation,
// not the traffic — survives.
func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Device.IncStore(1)
	r.Device.IncFlush()
	r.Atlas.IncLogAppend()
	r.Heap.IncAlloc()
	r.Map.IncPut()
	r.Server.Sets.Inc()
	r.Server.Batches.Inc()
	r.Server.BatchedOps.Add(8)
	r.Server.BatchFallbacks.Inc()
	r.Recovery.Recoveries.Inc()
	r.OpLatency.Observe(time.Millisecond)
	r.RecoveryLatency.Observe(time.Millisecond)
	r.CmdLatency.Observe(CmdSet, time.Millisecond)
	r.BatchSize.ObserveValue(8)
	r.Generation.Add(3)

	r.Reset()

	snap := r.Counters()
	for name, v := range snap {
		if name == "stack_generation" {
			continue
		}
		if v != 0 {
			t.Errorf("%s = %d after Reset, want 0", name, v)
		}
	}
	if got := snap["stack_generation"]; got != 3 {
		t.Errorf("stack_generation = %d after Reset, want 3 (must survive)", got)
	}
	if got := r.OpLatency.Snapshot().Count(); got != 0 {
		t.Errorf("OpLatency count = %d after Reset", got)
	}
	if got := r.RecoveryLatency.Snapshot().Count(); got != 0 {
		t.Errorf("RecoveryLatency count = %d after Reset", got)
	}
	if got := r.CmdLatency.Snapshot(CmdSet).Count(); got != 0 {
		t.Errorf("CmdLatency set count = %d after Reset", got)
	}
	if got := r.BatchSize.Snapshot().Count(); got != 0 {
		t.Errorf("BatchSize count = %d after Reset", got)
	}

	// A nil registry Resets as a no-op.
	var nilReg *Registry
	nilReg.Reset()

	// A registry with nil sections Resets without panicking.
	(&Registry{}).Reset()
}

// TestWalkIncludesBatchCounters pins the new wire vocabulary.
func TestWalkIncludesBatchCounters(t *testing.T) {
	r := NewRegistry()
	r.Server.Batches.Inc()
	r.Server.BatchedOps.Add(4)
	r.Server.BatchFallbacks.Inc()
	c := r.Counters()
	if c["server_batches"] != 1 || c["server_batched_ops"] != 4 || c["server_batch_fallbacks"] != 1 {
		t.Fatalf("batch counters not in Walk vocabulary: %v", c)
	}
}
