// Package telemetry is the stack-wide observability plane: lock-free
// atomic counters, fixed-bucket latency histograms, and a per-stack
// Registry that every layer of the storage stack (simulated NVM device,
// persistent heap, Atlas runtime, hash map, cache-server shard) reports
// into. Before this package existed each layer reinvented its own
// snapshot/reset scheme (nvm.Stats, the cache server's shardStats, the
// harness's hand-rolled sample merging) with no way to see one coherent
// picture of where persistence cost goes — the very attribution the
// paper's Table 1 is built on (flushes vs. log writes vs. rescue work).
//
// Design constraints, in order:
//
//   - The disabled path must be essentially free. Every mutator is
//     nil-receiver safe, so a layer built without telemetry holds a nil
//     section pointer and pays one predictable branch per event — no
//     interface dispatch, no map lookup, no allocation.
//   - The enabled hot path is atomics only. High-frequency device
//     counters (loads/stores/CAS) are sharded across padded cache lines
//     exactly as nvm.Stats was, so counting never serializes the
//     simulation on counter-line ping-pong.
//   - Snapshots are monotonic deltas. Counters only ever go up during an
//     incarnation; consumers diff two Snapshots (Sub) to attribute cost
//     to a window, and merge shards' Snapshots (Add) to aggregate.
package telemetry

import "sync/atomic"

// Counter is a lock-free monotonic event counter. All methods are safe
// on a nil receiver, which is the "telemetry off" fast path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter. Resets are for test isolation and explicit
// operator action only; live consumers should diff snapshots instead.
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// counterShards is the sharding degree of ShardedCounter. Sixteen padded
// lines keep a simulated many-core workload from serializing on one
// counter word while costing only 2 KiB per counter.
const counterShards = 16

// paddedCounter occupies a full cache line so shards never false-share.
type paddedCounter struct {
	v atomic.Uint64
	_ [7]uint64
}

// ShardedCounter is a Counter sharded across padded cache lines for
// counters incremented on every simulated memory access. The hint
// (typically the address being accessed) picks the shard, so concurrent
// workers touching different addresses bump different lines.
type ShardedCounter struct {
	shards [counterShards]paddedCounter
}

// Inc adds one to the shard selected by hint.
func (c *ShardedCounter) Inc(hint uint64) {
	if c != nil {
		c.shards[hint&(counterShards-1)].v.Add(1)
	}
}

// Load sums all shards (0 on nil).
func (c *ShardedCounter) Load() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Reset zeroes every shard.
func (c *ShardedCounter) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}
