package telemetry

// RouteStats is the routing tier's counter section: what a cluster
// proxy did with the frontend traffic it decoded. It follows the same
// vocabulary rules as the server-side registry sections — nil-safe
// increment helpers, a Walk with canonical route_* names, and a
// Snapshot usable with the Snapshot arithmetic the stats surfaces
// share — but lives outside Registry because a proxy carries no
// storage stack underneath it.
type RouteStats struct {
	// Frontends counts accepted frontend connections.
	Frontends Counter
	// Batches counts decoded frontend batches routed (one backend write
	// per touched node each).
	Batches Counter
	// Requests counts frontend requests decoded.
	Requests Counter
	// LocalReplies counts requests the proxy answered itself (ping,
	// stats, cluster, errors).
	LocalReplies Counter
	// Forwards counts requests forwarded whole to one node.
	Forwards Counter
	// Fanouts counts scatter-gather requests (mget/mset/delete split
	// across nodes, zrange/zcount/wait broadcasts).
	Fanouts Counter
	// FanoutLegs counts the per-node sub-requests fanouts produced.
	FanoutLegs Counter
	// Redirects counts MOVED replies consumed from backends.
	Redirects Counter
	// Retries counts re-sends after a redirect or an importing-owner
	// wait.
	Retries Counter
	// RingRefreshes counts ownership changes applied to the proxy's
	// ring from redirects and migrate acknowledgements.
	RingRefreshes Counter
	// BackendDials counts backend connections established.
	BackendDials Counter
	// BackendErrors counts backend connections torn down by errors.
	BackendErrors Counter

	// ForwardLatency observes the frontend-observed latency of
	// single-node forwards (enqueue to reply).
	ForwardLatency Histogram
	// FanoutLatency observes the frontend-observed latency of
	// scatter-gather requests (enqueue to last leg's reply).
	FanoutLatency Histogram
}

// IncFrontends counts one accepted frontend connection.
func (t *RouteStats) IncFrontends() {
	if t != nil {
		t.Frontends.Inc()
	}
}

// Walk calls fn for every routing counter with its canonical route_*
// name, in a fixed order — the proxy-side mirror of Registry.Walk.
func (t *RouteStats) Walk(fn func(name string, value uint64)) {
	if t == nil {
		return
	}
	fn("route_frontends", t.Frontends.Load())
	fn("route_batches", t.Batches.Load())
	fn("route_requests", t.Requests.Load())
	fn("route_local_replies", t.LocalReplies.Load())
	fn("route_forwards", t.Forwards.Load())
	fn("route_fanouts", t.Fanouts.Load())
	fn("route_fanout_legs", t.FanoutLegs.Load())
	fn("route_redirects", t.Redirects.Load())
	fn("route_retries", t.Retries.Load())
	fn("route_ring_refreshes", t.RingRefreshes.Load())
	fn("route_backend_dials", t.BackendDials.Load())
	fn("route_backend_errors", t.BackendErrors.Load())
}

// Counters snapshots the routing counters under their canonical names
// (nil-safe, like Registry.Counters).
func (t *RouteStats) Counters() Snapshot {
	if t == nil {
		return nil
	}
	s := make(Snapshot, 16)
	t.Walk(func(name string, v uint64) { s[name] = v })
	return s
}

// ClusterStats is a cluster NODE's slot-ownership counter section —
// the server-side mirror of the proxy's RouteStats: what a node did
// with traffic for slots it does or does not own, and how migrations
// in and out of it went. Same vocabulary rules: nil-safe, a Walk with
// canonical cluster_* names, a Snapshot for the shared arithmetic.
type ClusterStats struct {
	// MovedReplies counts requests answered with a MOVED redirect
	// (importing, frozen, or not-owned slots).
	MovedReplies Counter
	// MigrationsOut counts slot migrations this node completed as the
	// source (ownership handed off).
	MigrationsOut Counter
	// MigrationsIn counts slot migrations this node completed as the
	// target (ownership taken).
	MigrationsIn Counter
	// MigrationAborts counts migrations (either side) that failed and
	// rolled back without an ownership change.
	MigrationAborts Counter
	// MigratedPairs counts snapshot pairs streamed out by migrations.
	MigratedPairs Counter
	// MigratedGroups counts log groups streamed out by migrations (the
	// dual-write window's traffic).
	MigratedGroups Counter
	// ImportedPairs counts snapshot pairs applied by inbound migrations.
	ImportedPairs Counter
	// ImportedGroups counts log groups applied by inbound migrations.
	ImportedGroups Counter
}

// Walk calls fn for every cluster counter with its canonical
// cluster_* name, in a fixed order.
func (t *ClusterStats) Walk(fn func(name string, value uint64)) {
	if t == nil {
		return
	}
	fn("cluster_moved_replies", t.MovedReplies.Load())
	fn("cluster_migrations_out", t.MigrationsOut.Load())
	fn("cluster_migrations_in", t.MigrationsIn.Load())
	fn("cluster_migration_aborts", t.MigrationAborts.Load())
	fn("cluster_migrated_pairs", t.MigratedPairs.Load())
	fn("cluster_migrated_groups", t.MigratedGroups.Load())
	fn("cluster_imported_pairs", t.ImportedPairs.Load())
	fn("cluster_imported_groups", t.ImportedGroups.Load())
}

// Counters snapshots the cluster counters under their canonical names
// (nil-safe).
func (t *ClusterStats) Counters() Snapshot {
	if t == nil {
		return nil
	}
	s := make(Snapshot, 8)
	t.Walk(func(name string, v uint64) { s[name] = v })
	return s
}

// Reset zeroes every cluster counter.
func (t *ClusterStats) Reset() {
	if t == nil {
		return
	}
	t.MovedReplies.Reset()
	t.MigrationsOut.Reset()
	t.MigrationsIn.Reset()
	t.MigrationAborts.Reset()
	t.MigratedPairs.Reset()
	t.MigratedGroups.Reset()
	t.ImportedPairs.Reset()
	t.ImportedGroups.Reset()
}

// NodeStats is one backend node's routing counters, keyed by address
// at the proxy.
type NodeStats struct {
	// Sent counts requests (including fanout legs and session rebind
	// prefixes) written to the node.
	Sent Counter
	// Batches counts backend writes (one per frontend batch touching
	// the node).
	Batches Counter
	// Redirects counts MOVED replies the node answered.
	Redirects Counter
	// Errors counts connection failures against the node.
	Errors Counter
}
