package cluster

import (
	"bufio"
	"errors"
	"net"
	"runtime"
	"sync"
	"time"

	"tsp/internal/proto"
	"tsp/internal/telemetry"
)

// pendCap bounds the replies outstanding on one backend connection.
// Enqueueing past it blocks the sending frontend (natural
// backpressure); the reader goroutine is always draining, so the block
// is bounded by the node's service rate.
const pendCap = 4096

// fwd is one in-flight forwarded request: what the reply reader needs
// to frame the reply (cmd, key count), plus a private copy of the
// request so a redirect can re-send it after the decoder's arena has
// moved on. A non-zero sess makes appendWire emit a session-rebind
// command ahead of the request; the reader consumes and drops the
// rebind's reply to keep the FIFO aligned.
type fwd struct {
	cmd      proto.Cmd
	kv       []uint64
	dur      proto.Durability
	seq      uint64
	hasSeq   bool
	sess     uint64 // session to rebind before this request (0 = none)
	addr     string // leg's target node (fanouts), or migrate target
	waitRepl bool   // CmdWait's replication-barrier form

	ch  chan proto.Reply
	rep proto.Reply // the settled reply (moved out of ch by the waiter)
}

// newFwd returns a reusable forward slot with its reply channel.
func newFwd() *fwd {
	return &fwd{ch: make(chan proto.Reply, 1)}
}

// set loads a request copy into the slot for one flight.
func (f *fwd) set(cmd proto.Cmd, kv []uint64, dur proto.Durability, seq uint64, hasSeq bool, sess uint64) {
	f.cmd = cmd
	f.kv = append(f.kv[:0], kv...)
	f.dur = dur
	f.seq = seq
	f.hasSeq = hasSeq
	f.sess = sess
	f.addr = ""
	f.waitRepl = false
}

// appendWire appends the forward's native wire form (session rebind
// prefix first when set) to dst.
func (f *fwd) appendWire(dst []byte) []byte {
	var req proto.Request
	if f.sess != 0 {
		req.Cmd = proto.CmdSession
		req.KV = []uint64{f.sess}
		dst = proto.Native{}.AppendRequest(dst, &req)
		req = proto.Request{}
	}
	req.Cmd = f.cmd
	req.KV = f.kv
	req.Dur = f.dur
	req.Seq = f.seq
	req.HasSeq = f.hasSeq
	req.WaitRepl = f.waitRepl
	if f.cmd == proto.CmdMigrate {
		req.Addr = f.addr
	}
	return proto.Native{}.AppendRequest(dst, &req)
}

// backendConn is one live pipelined connection to a node: a write side
// serialized by the owning backend's mutex and a reader goroutine that
// walks the in-flight FIFO, parsing each reply by its request's
// command.
type backendConn struct {
	conn net.Conn
	w    *bufio.Writer
	pend chan *fwd
	dead chan struct{} // closed by the write-side teardown only
}

// backend is the proxy's view of one node: the current connection (if
// any) plus its counters. A backend survives connection failures; the
// next send re-dials.
type backend struct {
	addr string
	tel  *telemetry.RouteStats
	node *telemetry.NodeStats

	mu  sync.Mutex
	cur *backendConn
}

// errConnClosed is reported for fwds stranded by a write-side teardown.
var errConnClosed = errors.New("connection closed")

// errorReply shapes a backend failure as the error reply the frontend
// protocol can carry.
func errorReply(addr string, err error) proto.Reply {
	if err == nil {
		err = errConnClosed
	}
	return proto.Reply{Kind: proto.KErrServer, Msg: "cluster node " + addr + ": " + err.Error()}
}

// countError bumps the failure counters.
func (b *backend) countError() {
	if b.node != nil {
		b.node.Errors.Inc()
	}
	if b.tel != nil {
		b.tel.BackendErrors.Inc()
	}
}

// get returns the live connection, dialing if needed. Callers hold mu.
func (b *backend) get() (*backendConn, error) {
	if b.cur != nil {
		return b.cur, nil
	}
	conn, err := net.DialTimeout("tcp", b.addr, 2*time.Second)
	if err != nil {
		b.countError()
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	bc := &backendConn{
		conn: conn,
		w:    bufio.NewWriterSize(conn, 64<<10),
		pend: make(chan *fwd, pendCap),
		dead: make(chan struct{}),
	}
	b.cur = bc
	if b.tel != nil {
		b.tel.BackendDials.Inc()
	}
	go bc.readLoop(b)
	return bc, nil
}

// send writes one batch of forwards to the node: the FIFO entries and
// the payload bytes enter the connection under one mutex hold, so
// interleaved frontends cannot split a batch's reply order. On error
// every fwd in fs (and anything already in flight) is answered with an
// error reply.
func (b *backend) send(fs []*fwd, payload []byte) {
	b.mu.Lock()
	bc, err := b.get()
	if err != nil {
		b.mu.Unlock()
		for _, f := range fs {
			if f.ch != nil {
				f.ch <- errorReply(b.addr, err)
			}
		}
		return
	}
	for _, f := range fs {
		bc.pend <- f
	}
	_, werr := bc.w.Write(payload)
	if werr == nil {
		werr = bc.w.Flush()
	}
	if werr != nil {
		// Retire the connection; the reader wakes (dead, or the read
		// failing after Close) and answers everything in flight,
		// including fs.
		b.cur = nil
		close(bc.dead)
		bc.conn.Close()
		b.countError()
	}
	b.mu.Unlock()
	if b.node != nil {
		b.node.Batches.Inc()
		b.node.Sent.Add(uint64(len(fs)))
	}
}

// sendOne is the slow-path single-request send used by redirect
// retries. It returns the scratch buffer for reuse.
func (b *backend) sendOne(f *fwd, scratch []byte) []byte {
	payload := f.appendWire(scratch[:0])
	b.send([]*fwd{f}, payload)
	return payload
}

// readLoop walks the in-flight FIFO, answering each fwd from the
// connection's reply stream. On failure it retires the connection
// under the backend mutex first — no new fwds can join — then drains
// and answers everything stranded.
func (bc *backendConn) readLoop(b *backend) {
	r := bufio.NewReaderSize(bc.conn, 64<<10)
	var rep proto.Reply
	for {
		var f *fwd
		select {
		case f = <-bc.pend:
		case <-bc.dead:
			bc.drainFail(b, errConnClosed)
			return
		}
		// A session-rebind prefix rides the wire ahead of its request
		// (appendWire emits both); its OK SESSION reply is consumed and
		// dropped here to keep the FIFO aligned.
		var err error
		if f.sess != 0 {
			err = proto.ReadNativeReply(r, proto.CmdSession, 1, &rep)
		}
		if err == nil {
			err = proto.ReadNativeReply(r, f.cmd, len(f.kv), &rep)
		}
		if err != nil {
			if f.ch != nil {
				f.ch <- errorReply(b.addr, err)
			}
			// Close first so any in-progress write fails, then retire.
			// A sender blocked enqueueing into a full FIFO holds the
			// mutex, so drain between TryLock attempts to unblock it.
			bc.conn.Close()
			for !b.mu.TryLock() {
				bc.drainFail(b, err)
				runtime.Gosched()
			}
			if b.cur == bc {
				b.cur = nil
				b.countError()
			}
			b.mu.Unlock()
			bc.drainFail(b, err)
			return
		}
		if f.ch != nil {
			out := rep
			out.Items = append([]proto.Item(nil), rep.Items...)
			f.ch <- out
		}
	}
}

// drainFail answers everything still in the FIFO with an error. It
// runs only after the connection is retired, so the FIFO can no longer
// grow.
func (bc *backendConn) drainFail(b *backend, err error) {
	for {
		select {
		case f := <-bc.pend:
			if f.ch != nil {
				f.ch <- errorReply(b.addr, err)
			}
		default:
			return
		}
	}
}
