package cluster

import (
	"testing"
)

// SlotOf must be a pure function of the key, land inside the slot
// space, and stay independent of the per-process shard router (bits
// 32..63): keys that share a shard must not all share a slot.
func TestSlotOf(t *testing.T) {
	for key := uint64(0); key < 10_000; key++ {
		s := SlotOf(key)
		if s < 0 || s >= NumSlots {
			t.Fatalf("SlotOf(%d) = %d, outside 0-%d", key, s, NumSlots-1)
		}
		if s != SlotOf(key) {
			t.Fatalf("SlotOf(%d) not deterministic", key)
		}
	}
	// Coverage: 10k sequential keys should touch every slot.
	seen := make(map[int]int)
	for key := uint64(0); key < 10_000; key++ {
		seen[SlotOf(key)]++
	}
	if len(seen) != NumSlots {
		t.Fatalf("10k keys hit %d/%d slots", len(seen), NumSlots)
	}
	// Balance: no slot should hold more than 4x its fair share.
	fair := 10_000 / NumSlots
	for s, n := range seen {
		if n > 4*fair {
			t.Fatalf("slot %d holds %d keys (fair share %d)", s, n, fair)
		}
	}
}

// The initial assignment must be deterministic in the node list and
// cover every slot, and each node must own something at the default
// vnode count.
func TestNewRingDeterministic(t *testing.T) {
	nodes := []string{"10.0.0.1:11222", "10.0.0.2:11222", "10.0.0.3:11222", "10.0.0.4:11222"}
	a, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < NumSlots; s++ {
		if a.Owner(s) != b.Owner(s) {
			t.Fatalf("slot %d: %q vs %q across identical rings", s, a.Owner(s), b.Owner(s))
		}
		if a.Owner(s) == "" {
			t.Fatalf("slot %d unowned after NewRing", s)
		}
	}
	for _, n := range nodes {
		if len(a.SlotsOf(n)) == 0 {
			t.Fatalf("node %s owns no slots at DefaultVNodes", n)
		}
	}
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("NewRing(nil) succeeded")
	}
}

// SetOwner must move exactly one slot, bump the epoch, learn unknown
// targets, and be idempotent.
func TestRingSetOwner(t *testing.T) {
	r, err := NewRing([]string{"a:1", "b:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Epoch(); got != 1 {
		t.Fatalf("fresh epoch = %d, want 1", got)
	}
	r.SetOwner(7, "c:1")
	if got := r.Owner(7); got != "c:1" {
		t.Fatalf("Owner(7) = %q after SetOwner", got)
	}
	if got := r.Epoch(); got != 2 {
		t.Fatalf("epoch after move = %d, want 2", got)
	}
	r.SetOwner(7, "c:1") // idempotent: no epoch bump
	if got := r.Epoch(); got != 2 {
		t.Fatalf("epoch after no-op move = %d, want 2", got)
	}
	found := false
	for _, n := range r.Nodes() {
		if n == "c:1" {
			found = true
		}
	}
	if !found {
		t.Fatal("migration target not learned into the node list")
	}
}

// FormatSlots and ParseSlots must round-trip any slot set, including
// the SlotSpec of a live ring.
func TestSlotSpecRoundTrip(t *testing.T) {
	cases := [][]int{
		{0},
		{0, 1, 2, 3},
		{5, 7, 9},
		{0, 1, 2, 10, 11, 63},
	}
	for _, slots := range cases {
		spec := FormatSlots(slots)
		set, err := ParseSlots(spec)
		if err != nil {
			t.Fatalf("ParseSlots(%q): %v", spec, err)
		}
		if len(set) != len(slots) {
			t.Fatalf("%q parsed to %d slots, want %d", spec, len(set), len(slots))
		}
		for _, s := range slots {
			if !set[s] {
				t.Fatalf("%q lost slot %d", spec, s)
			}
		}
	}

	all, err := ParseSlots("all")
	if err != nil || len(all) != NumSlots {
		t.Fatalf(`ParseSlots("all") = %d slots, err %v`, len(all), err)
	}
	for _, bad := range []string{"x", "1-", "-3", "5-4", "64", "0-64"} {
		if _, err := ParseSlots(bad); err == nil {
			t.Fatalf("ParseSlots(%q) succeeded", bad)
		}
	}

	r, err := NewRing([]string{"a:1", "b:1", "c:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range r.Nodes() {
		set, err := ParseSlots(r.SlotSpec(n))
		if err != nil {
			t.Fatalf("SlotSpec(%s) unparseable: %v", n, err)
		}
		for s := range set {
			if r.Owner(s) != n {
				t.Fatalf("SlotSpec(%s) claims slot %d owned by %s", n, s, r.Owner(s))
			}
		}
		total += len(set)
	}
	if total != NumSlots {
		t.Fatalf("node specs cover %d/%d slots", total, NumSlots)
	}
}
