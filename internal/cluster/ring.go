// Package cluster is the horizontal scale-out tier: a consistent-hash
// ring that maps the server's uint64 keyspace onto cache nodes through
// a fixed set of slots, and a routing proxy that multiplexes many
// frontend connections onto a few pipelined backend connections per
// node.
//
// Keys hash to one of NumSlots slots (the unit of ownership and of
// migration); slots map to nodes through the ring. The two-level
// scheme is what makes shards mobile: moving a slot is a bounded
// stream of state plus one ownership flip, while the key → slot
// mapping never changes. The ring's epoch counts ownership flips, so
// routing state can be compared and refreshed cheaply after a MOVED
// redirect.
package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NumSlots is the fixed number of hash slots keys map onto. 64 keeps
// the slot → owner table one cache line per column while still letting
// a handful of nodes rebalance in small steps (redis uses 16384 for
// thousand-node clusters; this tier targets tens).
const NumSlots = 64

// SlotOf maps a key to its hash slot. It reuses the splitmix64
// finalizer the per-process shard router applies, but takes the TOP
// bits where shardOf takes bits 32..63 — the two placements stay
// independent, so a node's local shard balance survives any slot
// layout.
func SlotOf(key uint64) int {
	x := key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int((x >> 58) % NumSlots)
}

// point is one virtual node on the hash circle.
type point struct {
	hash uint64
	node int // index into the ring's node list
}

// Ring is the slot → owner table plus the consistent-hash layout that
// seeds it. The layout (virtual-node points on a 64-bit circle) only
// decides the INITIAL owner of each slot; after that, ownership moves
// by explicit migration and the table is authoritative. An epoch
// counts ownership changes so cached routing state can be validated.
type Ring struct {
	mu     sync.RWMutex
	nodes  []string
	owners [NumSlots]string
	epoch  uint64
}

// DefaultVNodes is the virtual-node count per node used when a caller
// passes 0: enough points that 4 nodes land within a few slots of a
// perfect split.
const DefaultVNodes = 64

// NewRing builds a ring over nodes (backend addresses) with vnodes
// virtual points per node (0 = DefaultVNodes) and assigns every slot
// its initial owner by walking the hash circle. The assignment is
// deterministic in the node list, so a proxy and an operator script
// computing slot ranges for the same node list agree without talking.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	pts := make([]point, 0, len(nodes)*vnodes)
	for ni, addr := range nodes {
		for v := 0; v < vnodes; v++ {
			h := pointHash(addr, v)
			pts = append(pts, point{hash: h, node: ni})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].node < pts[j].node
	})
	r := &Ring{nodes: append([]string(nil), nodes...), epoch: 1}
	for s := 0; s < NumSlots; s++ {
		h := slotHash(s)
		i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
		if i == len(pts) {
			i = 0
		}
		r.owners[s] = r.nodes[pts[i].node]
	}
	return r, nil
}

// pointHash places virtual point v of a node on the circle.
func pointHash(addr string, v int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	h ^= uint64(v) + 0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// slotHash places a slot on the circle.
func slotHash(s int) uint64 {
	x := uint64(s) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the node currently owning slot s.
func (r *Ring) Owner(s int) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.owners[s]
}

// OwnerOfKey returns the node owning key's slot, and the slot.
func (r *Ring) OwnerOfKey(key uint64) (addr string, slot int) {
	slot = SlotOf(key)
	return r.Owner(slot), slot
}

// Epoch returns the ring epoch (starts at 1, bumps on every ownership
// change).
func (r *Ring) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// SetOwner moves slot s to addr, bumping the epoch. Unknown addresses
// join the node list (a migration target need not have been in the
// seed list).
func (r *Ring) SetOwner(s int, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.owners[s] == addr {
		return
	}
	r.owners[s] = addr
	known := false
	for _, n := range r.nodes {
		if n == addr {
			known = true
			break
		}
	}
	if !known {
		r.nodes = append(r.nodes, addr)
	}
	r.epoch++
}

// Nodes returns the node list (seed nodes plus any migration targets
// learned since).
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.nodes...)
}

// SlotsOf returns the sorted slots addr currently owns.
func (r *Ring) SlotsOf(addr string) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []int
	for s, o := range r.owners {
		if o == addr {
			out = append(out, s)
		}
	}
	return out
}

// Table renders the slot → owner table as "lo-hi addr" lines grouped
// by contiguous runs — the cluster info text.
func (r *Ring) Table() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "CLUSTER epoch %d\r\n", r.epoch)
	for s := 0; s < NumSlots; {
		e := s
		for e+1 < NumSlots && r.owners[e+1] == r.owners[s] {
			e++
		}
		fmt.Fprintf(&b, "SLOTS %d-%d %s\r\n", s, e, r.owners[s])
		s = e + 1
	}
	b.WriteString("END")
	return b.String()
}

// SlotSpec renders addr's owned slots as the compact "lo-hi,lo-hi"
// spec the cache server's -cluster-slots flag takes, or "" when addr
// owns nothing.
func (r *Ring) SlotSpec(addr string) string {
	slots := r.SlotsOf(addr)
	return FormatSlots(slots)
}

// FormatSlots renders a sorted slot list as a "lo-hi,lo" spec.
func FormatSlots(slots []int) string {
	var b strings.Builder
	for i := 0; i < len(slots); {
		j := i
		for j+1 < len(slots) && slots[j+1] == slots[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if i == j {
			fmt.Fprintf(&b, "%d", slots[i])
		} else {
			fmt.Fprintf(&b, "%d-%d", slots[i], slots[j])
		}
		i = j + 1
	}
	return b.String()
}

// ParseSlots parses a "lo-hi,lo" slot spec into a slot set. The word
// "all" is every slot; "none" is the empty set — a fresh node joining
// a cluster with nothing, to be filled by migration.
func ParseSlots(spec string) (map[int]bool, error) {
	out := make(map[int]bool)
	switch spec {
	case "all":
		for s := 0; s < NumSlots; s++ {
			out[s] = true
		}
		return out, nil
	case "none":
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi := part, part
		if i := strings.IndexByte(part, '-'); i >= 0 {
			lo, hi = part[:i], part[i+1:]
		}
		var l, h int
		if _, err := fmt.Sscanf(lo, "%d", &l); err != nil {
			return nil, fmt.Errorf("cluster: bad slot spec %q", part)
		}
		if _, err := fmt.Sscanf(hi, "%d", &h); err != nil {
			return nil, fmt.Errorf("cluster: bad slot spec %q", part)
		}
		if l < 0 || h >= NumSlots || l > h {
			return nil, fmt.Errorf("cluster: slot range %q outside 0-%d", part, NumSlots-1)
		}
		for s := l; s <= h; s++ {
			out[s] = true
		}
	}
	return out, nil
}
