package cluster_test

// End-to-end proxy tests: real cache servers as cluster nodes, a real
// Proxy in front, clients speaking both wire protocols. The external
// test package breaks the import cycle (cacheserver imports cluster
// for the slot table).

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"

	"tsp/internal/cacheserver"
	"tsp/internal/cluster"
	"tsp/internal/telemetry"
)

// startNode boots one cluster node owning the given slots.
func startNode(t *testing.T, slots string) *cacheserver.Server {
	t.Helper()
	s, err := cacheserver.New(
		cacheserver.WithAddr("127.0.0.1:0"),
		cacheserver.WithShards(2),
		cacheserver.WithClusterSlots(slots),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

// startProxy boots a proxy over the nodes and returns it.
func startProxy(t *testing.T, nodes ...string) *cluster.Proxy {
	t.Helper()
	p, err := cluster.New(cluster.Config{
		Nodes: nodes,
		Tel:   &telemetry.RouteStats{},
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// textClient is a minimal native-protocol client.
type textClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialText(t *testing.T, addr string) *textClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &textClient{conn: conn, r: bufio.NewReader(conn)}
}

func (c *textClient) cmd(t *testing.T, format string, args ...interface{}) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, format+"\r\n", args...); err != nil {
		t.Fatalf("write: %v", err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return strings.TrimSpace(line)
}

func (c *textClient) lines(t *testing.T, format string, args ...interface{}) []string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, format+"\r\n", args...); err != nil {
		t.Fatalf("write: %v", err)
	}
	var out []string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		line = strings.TrimSpace(line)
		out = append(out, line)
		if line == "END" {
			return out
		}
	}
}

// twoNodeCluster splits the slot space in half across two nodes and
// fronts them with a proxy whose ring was seeded from their cluster
// replies.
func twoNodeCluster(t *testing.T) (*cacheserver.Server, *cacheserver.Server, *cluster.Proxy) {
	t.Helper()
	a := startNode(t, "0-31")
	b := startNode(t, "32-63")
	p := startProxy(t, a.Addr().String(), b.Addr().String())
	return a, b, p
}

// TestProxySeedsRingFromNodes: the slot table the proxy serves must be
// the nodes' actual ownership, not the hash layout's guess.
func TestProxySeedsRingFromNodes(t *testing.T) {
	a, b, p := twoNodeCluster(t)
	for s := 0; s < cluster.NumSlots; s++ {
		want := a.Addr().String()
		if s >= 32 {
			want = b.Addr().String()
		}
		if got := p.Ring().Owner(s); got != want {
			t.Fatalf("slot %d owner = %s, want %s", s, got, want)
		}
	}
}

// TestProxyRoutesAndMerges: the single-server command set through the
// proxy — point ops routed to the right node, multi-key ops split and
// merged back in request order, ordered-keyspace ops k-way merged.
func TestProxyRoutesAndMerges(t *testing.T) {
	_, _, p := twoNodeCluster(t)
	c := dialText(t, p.Addr())

	// Point ops across both halves of the slot space.
	for k := uint64(0); k < 64; k++ {
		if got := c.cmd(t, "set %d %d", k, k*3); got != "STORED" {
			t.Fatalf("set %d: %q", k, got)
		}
	}
	for k := uint64(0); k < 64; k++ {
		if got := c.cmd(t, "get %d", k); got != fmt.Sprintf("VALUE %d %d", k, k*3) {
			t.Fatalf("get %d: %q", k, got)
		}
	}
	if got := c.cmd(t, "incr 5 1"); got != "16" {
		t.Fatalf("incr: %q", got)
	}
	c.cmd(t, "set 5 15") // restore

	// mset/mget/delete span nodes and come back in request order.
	if got := c.cmd(t, "mset 100 1 101 2 102 3 103 4"); got != "STORED 4" {
		t.Fatalf("mset: %q", got)
	}
	out := c.lines(t, "mget 103 100 999999 102")
	want := []string{"VALUE 103 4", "VALUE 100 1", "NOT_FOUND 999999", "VALUE 102 3", "END"}
	if strings.Join(out, ",") != strings.Join(want, ",") {
		t.Fatalf("mget order: %v", out)
	}
	// Multi-key delete: one outcome line per key, request order.
	if _, err := fmt.Fprintf(c.conn, "delete 100 101 999999 103\r\n"); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"DELETED", "DELETED", "NOT_FOUND", "DELETED"} {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(line) != want {
			t.Fatalf("delete outcome %d: %q, want %q", i, line, want)
		}
	}
	if got := c.cmd(t, "delete 102"); got != "DELETED" {
		t.Fatalf("cleanup delete: %q", got)
	}

	// Ordered keyspace: zadds land on each key's owner; zrange merges
	// the nodes' disjoint ordered lists into one sorted view.
	for _, k := range []uint64{10, 20, 30, 40, 50} {
		if got := c.cmd(t, "zadd %d %d", k, k*7); got != "STORED" {
			t.Fatalf("zadd %d: %q", k, got)
		}
	}
	out = c.lines(t, "zrange 0 1000")
	want = []string{"VALUE 10 70", "VALUE 20 140", "VALUE 30 210", "VALUE 40 280", "VALUE 50 350", "END"}
	if strings.Join(out, ",") != strings.Join(want, ",") {
		t.Fatalf("zrange merge: %v", out)
	}
	out = c.lines(t, "zrange 0 1000 3")
	if len(out) != 4 { // 3 values + END
		t.Fatalf("zrange limit: %v", out)
	}
	if got := c.cmd(t, "zcount 0 1000"); got != "5" {
		t.Fatalf("zcount sum: %q", got)
	}

	// wait broadcasts to every node and reports the minimum frontier.
	if got := c.cmd(t, "set 7 700 relaxed"); !strings.HasPrefix(got, "STORED") {
		t.Fatalf("relaxed set: %q", got)
	}
	if got := c.cmd(t, "wait"); func() bool { _, err := strconv.Atoi(got); return err != nil }() {
		t.Fatalf("wait through proxy: %q", got)
	}

	// ping and stats answer from the proxy itself.
	if got := c.cmd(t, "ping"); got != "PONG" {
		t.Fatalf("ping: %q", got)
	}
	stats := strings.Join(c.lines(t, "stats"), "\n")
	for _, name := range []string{"route_requests", "route_forwards", "route_fanouts", "ring_epoch"} {
		if !strings.Contains(stats, "STAT "+name) {
			t.Fatalf("proxy stats missing %s:\n%s", name, stats)
		}
	}
	table := strings.Join(c.lines(t, "cluster"), "\n")
	if !strings.Contains(table, "SLOTS") {
		t.Fatalf("cluster table through proxy:\n%s", table)
	}

	// Node-only admin verbs are refused, not forwarded.
	if got := c.cmd(t, "crash"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("crash through proxy: %q", got)
	}
}

// TestProxySessionForwarding: a frontend session binding rides the
// shared backend connections, so detectable ops dedup on the owning
// node — including after the proxy interleaves other sessions.
func TestProxySessionForwarding(t *testing.T) {
	_, _, p := twoNodeCluster(t)
	c1 := dialText(t, p.Addr())
	c2 := dialText(t, p.Addr())

	if got := c1.cmd(t, "session 7"); got != "OK SESSION 7" {
		t.Fatalf("session: %q", got)
	}
	if got := c2.cmd(t, "session 8"); got != "OK SESSION 8" {
		t.Fatalf("session: %q", got)
	}
	if got := c1.cmd(t, "incr 1000 5 seq=1"); got != "5" {
		t.Fatalf("sessioned incr: %q", got)
	}
	// Another session touches the same node in between.
	if got := c2.cmd(t, "incr 1000 7 seq=1"); got != "12" {
		t.Fatalf("second session incr: %q", got)
	}
	// Retry of session 7 seq=1: replayed, not re-applied.
	if got := c1.cmd(t, "incr 1000 5 seq=1"); got != "5" {
		t.Fatalf("replay: %q", got)
	}
	if got := c1.cmd(t, "get 1000"); got != "VALUE 1000 12" {
		t.Fatalf("value after replays: %q", got)
	}
	// seq without a session is refused at the proxy.
	c3 := dialText(t, p.Addr())
	if got := c3.cmd(t, "incr 1 1 seq=1"); !strings.HasPrefix(got, "CLIENT_ERROR seq requires a session") {
		t.Fatalf("sessionless seq: %q", got)
	}
}

// TestProxyFollowsMigration: a migrate issued through the proxy moves
// the slot AND the proxy's own ring; traffic follows without errors.
func TestProxyFollowsMigration(t *testing.T) {
	a, b, p := twoNodeCluster(t)
	c := dialText(t, p.Addr())

	// A key in a slot node a owns.
	var key uint64
	for k := uint64(0); ; k++ {
		if cluster.SlotOf(k) < 32 {
			key = k
			break
		}
	}
	slot := cluster.SlotOf(key)
	if got := c.cmd(t, "set %d 4242", key); got != "STORED" {
		t.Fatalf("set: %q", got)
	}

	epoch0 := p.Ring().Epoch()
	got := c.cmd(t, "migrate %d %s", slot, b.Addr().String())
	if !strings.HasPrefix(got, "OK MIGRATED") {
		t.Fatalf("migrate through proxy: %q", got)
	}
	if p.Ring().Owner(slot) != b.Addr().String() {
		t.Fatalf("proxy ring not updated: slot %d -> %s", slot, p.Ring().Owner(slot))
	}
	if p.Ring().Epoch() == epoch0 {
		t.Fatal("ring epoch did not advance on migration")
	}
	// Traffic keeps flowing to the new owner, same frontend connection.
	if got := c.cmd(t, "get %d", key); got != fmt.Sprintf("VALUE %d 4242", key) {
		t.Fatalf("get after migration: %q", got)
	}
	if got := c.cmd(t, "set %d 4343", key); got != "STORED" {
		t.Fatalf("set after migration: %q", got)
	}

	// A second proxy seeded AFTER the move learns the new table.
	p2 := startProxy(t, a.Addr().String(), b.Addr().String())
	if p2.Ring().Owner(slot) != b.Addr().String() {
		t.Fatalf("fresh proxy seeded stale owner for slot %d", slot)
	}
}

// TestProxyFollowsRedirects: a proxy whose ring went stale (the move
// happened behind its back) follows the MOVED redirect, refreshes its
// ring, and still answers the client correctly.
func TestProxyFollowsRedirects(t *testing.T) {
	a, b, p := twoNodeCluster(t)
	c := dialText(t, p.Addr())

	var key uint64
	for k := uint64(0); ; k++ {
		if cluster.SlotOf(k) < 32 {
			key = k
			break
		}
	}
	slot := cluster.SlotOf(key)
	if got := c.cmd(t, "set %d 1", key); got != "STORED" {
		t.Fatalf("set: %q", got)
	}

	// Move the slot directly between the nodes; the proxy is not told.
	direct := dialText(t, a.Addr().String())
	if got := direct.cmd(t, "migrate %d %s", slot, b.Addr().String()); !strings.HasPrefix(got, "OK MIGRATED") {
		t.Fatalf("direct migrate: %q", got)
	}
	if p.Ring().Owner(slot) != a.Addr().String() {
		t.Fatal("precondition: proxy ring should still be stale")
	}
	// The proxy's first request hits the old owner, gets MOVED, retries
	// at the new owner, and the client sees only the answer.
	if got := c.cmd(t, "get %d", key); got != fmt.Sprintf("VALUE %d 1", key) {
		t.Fatalf("get through stale proxy: %q", got)
	}
	if p.Ring().Owner(slot) != b.Addr().String() {
		t.Fatalf("ring not refreshed by redirect: %s", p.Ring().Owner(slot))
	}
	// A multi-key request spanning the moved slot re-splits cleanly.
	if got := c.cmd(t, "mset %d 10 %d 20", key, key+1); got != "STORED 2" {
		t.Fatalf("mset after redirect: %q", got)
	}
}

// TestProxySniffsRESP: the proxy's listener applies the cache server's
// first-byte rule — '*' selects RESP framing, anything else native —
// so redis clients work against the proxy unchanged.
func TestProxySniffsRESP(t *testing.T) {
	_, _, p := twoNodeCluster(t)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(args ...string) {
		var b strings.Builder
		fmt.Fprintf(&b, "*%d\r\n", len(args))
		for _, a := range args {
			fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
		}
		if _, err := conn.Write([]byte(b.String())); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	readLine := func() string {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return strings.TrimRight(line, "\r\n")
	}

	send("PING")
	if got := readLine(); got != "+PONG" {
		t.Fatalf("RESP ping: %q", got)
	}
	send("SET", "42", "4200")
	if got := readLine(); got != "+OK" {
		t.Fatalf("RESP set: %q", got)
	}
	send("GET", "42")
	if got := readLine(); got != "$4" {
		t.Fatalf("RESP get header: %q", got)
	}
	body := make([]byte, 6)
	if _, err := io.ReadFull(r, body); err != nil {
		t.Fatal(err)
	}
	if string(body[:4]) != "4200" {
		t.Fatalf("RESP get body: %q", body)
	}

	// Same listener, new connection, native framing.
	c := dialText(t, p.Addr())
	if got := c.cmd(t, "get 42"); got != "VALUE 42 4200" {
		t.Fatalf("native get of RESP-set key: %q", got)
	}
}

// TestProxyPipelinedBatch: a pipelined burst (many requests in one
// write) comes back complete and in order through the scatter-gather
// path.
func TestProxyPipelinedBatch(t *testing.T) {
	_, _, p := twoNodeCluster(t)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var b strings.Builder
	const n = 200
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "set %d %d\r\n", i, i)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "get %d\r\n", i)
	}
	if _, err := conn.Write([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(line) != "STORED" {
			t.Fatalf("burst set %d: %q", i, line)
		}
	}
	for i := 0; i < n; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("VALUE %d %d", i, i); strings.TrimSpace(line) != want {
			t.Fatalf("burst get %d: %q, want %q", i, line, want)
		}
	}
}
