package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"tsp/internal/proto"
	"tsp/internal/telemetry"
)

// Config configures a Proxy.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// Nodes are the seed backend addresses the ring is built over.
	Nodes []string
	// VNodes is the virtual-node count per node (0 = DefaultVNodes).
	VNodes int
	// Proto fixes the frontend protocol: "native", "resp", or "" /
	// "auto" to sniff per connection by first byte, exactly like the
	// cache server's listener.
	Proto string
	// MaxRequestBytes caps one frontend request (0 = the codec
	// default).
	MaxRequestBytes int
	// Tel receives routing counters (nil = telemetry off).
	Tel *telemetry.RouteStats
	// Logf receives serving errors (nil = silent).
	Logf func(format string, args ...any)
}

// Proxy is the cluster routing tier: it terminates frontend
// connections (native or RESP, sniffed per connection), decodes each
// connection's pipelined burst as one batch, routes every request to
// the slot owner through a shared pipelined backend connection per
// node — one backend write per decoded frontend batch per touched
// node — and merges scatter-gather fan-outs back in request order.
// MOVED redirects from nodes update its ring, so it follows live
// migrations without coordination.
type Proxy struct {
	cfg  Config
	ln   net.Listener
	ring *Ring
	tel  *telemetry.RouteStats

	mu       sync.Mutex
	backends map[string]*backend
	nodeTel  map[string]*telemetry.NodeStats
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// New builds the ring, starts listening, and begins serving.
func New(cfg Config) (*Proxy, error) {
	ring, err := NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	switch cfg.Proto {
	case "", "auto", "native", "resp":
	default:
		return nil, fmt.Errorf("cluster: unknown proto %q", cfg.Proto)
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:      cfg,
		ln:       ln,
		ring:     ring,
		tel:      cfg.Tel,
		backends: make(map[string]*backend),
		nodeTel:  make(map[string]*telemetry.NodeStats),
		conns:    make(map[net.Conn]struct{}),
	}
	p.seedFromNodes()
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// seedFromNodes reconciles the ring's deterministic initial assignment
// with what the nodes actually own: each seed node's `cluster` reply
// lists its owned slots ("SLOTS <spec> self"), and those claims
// overwrite the hash assignment. Nodes that are down or not cluster
// nodes are skipped — the hash layout stands in for them and MOVED
// redirects correct it later, exactly as they do for post-startup
// changes.
func (p *Proxy) seedFromNodes() {
	for _, addr := range p.ring.Nodes() {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			p.logf("cluster seed: %s: %v", addr, err)
			continue
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Write([]byte("cluster\r\n")); err != nil {
			conn.Close()
			continue
		}
		br := bufio.NewReader(conn)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				break
			}
			line = strings.TrimRight(line, "\r\n")
			if line == "END" {
				break
			}
			fields := strings.Fields(line)
			if len(fields) == 3 && fields[0] == "SLOTS" && fields[2] == "self" {
				slots, err := ParseSlots(fields[1])
				if err != nil {
					continue
				}
				for s := range slots {
					p.ring.SetOwner(s, addr)
				}
			}
		}
		conn.Close()
	}
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Ring returns the proxy's routing table.
func (p *Proxy) Ring() *Ring { return p.ring }

// Close stops the listener and tears down every connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	for _, b := range p.backends {
		b.mu.Lock()
		if b.cur != nil {
			bc := b.cur
			b.cur = nil
			close(bc.dead)
			bc.conn.Close()
		}
		b.mu.Unlock()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// logf reports a serving error.
func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// backendFor returns (creating if needed) the backend for addr.
func (p *Proxy) backendFor(addr string) *backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.backends[addr]; ok {
		return b
	}
	nt := &telemetry.NodeStats{}
	p.nodeTel[addr] = nt
	b := &backend{addr: addr, tel: p.tel, node: nt}
	p.backends[addr] = b
	return b
}

// acceptLoop serves frontend connections until Close.
func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.handle(conn)
	}
}

// entry routing classes.
const (
	eSkip = iota // nothing to stage (CmdNone)
	eLocal
	eForward
	eFanout
)

// fanout merge modes.
const (
	mNone   = iota
	mMGet   // ordered per-key items (mget)
	mDelete // ordered per-key items (delete)
	mMSet   // summed pair count
	mRange  // k-way merge by key with limit
	mCount  // summed integer
	mWait   // minimum integer
)

// entry is one frontend request's routing state for the current batch.
type entry struct {
	kind   int
	rep    proto.Reply // local reply, or the merge target
	f      *fwd        // eForward
	legs   []*fwd      // eFanout
	merge  int
	limit  int   // mRange result cap (-1 = none)
	keyLeg []int // mMGet/mDelete: leg index per original key
	moved  int   // migrate: slot to re-own on success (-1 = none)
	start  time.Time
}

// feConn is one frontend connection's reusable serving state.
type feConn struct {
	p       *Proxy
	sess    uint64
	entries []entry
	fwds    []*fwd
	nfwd    int
	scratch []byte
	legs    map[string]*fwd // per-request scratch: addr → leg
	bufFwds map[*backend][]*fwd
	bufs    map[*backend][]byte
}

// takeFwd returns a reusable fwd slot for this batch.
func (cs *feConn) takeFwd() *fwd {
	if cs.nfwd == len(cs.fwds) {
		cs.fwds = append(cs.fwds, newFwd())
	}
	f := cs.fwds[cs.nfwd]
	cs.nfwd++
	return f
}

// handle runs one frontend connection: sniff the protocol like the
// cache server does (RESP leads with '*'), then decode → route → merge
// → stage, one write per batch.
func (p *Proxy) handle(conn net.Conn) {
	defer func() {
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
		conn.Close()
		p.wg.Done()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p.tel.IncFrontends()
	dec := proto.NewDecoder(conn, proto.Native{}, p.cfg.MaxRequestBytes)
	var ad proto.Adapter
	switch p.cfg.Proto {
	case "native":
		ad = proto.Native{}
	case "resp":
		ad = proto.RESP{}
	default: // auto
		b, err := dec.Peek()
		if err != nil {
			return
		}
		if b == '*' {
			ad = proto.RESP{}
		} else {
			ad = proto.Native{}
		}
	}
	dec.Use(ad)
	enc := proto.NewEncoder(conn, ad, 0)
	defer enc.Flush()

	cs := &feConn{
		p:       p,
		legs:    make(map[string]*fwd),
		bufFwds: make(map[*backend][]*fwd),
		bufs:    make(map[*backend][]byte),
	}
	for {
		batch, err := dec.Next()
		if len(batch) > 0 {
			quit := p.serveBatch(cs, enc, batch)
			if ferr := enc.Flush(); ferr != nil || quit {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// serveBatch routes one decoded batch: classify and send every request
// first (one backend write per touched node), then settle replies in
// request order.
func (p *Proxy) serveBatch(cs *feConn, enc *proto.Encoder, batch []proto.Request) (quit bool) {
	if p.tel != nil {
		p.tel.Batches.Inc()
		p.tel.Requests.Add(uint64(len(batch)))
	}
	cs.nfwd = 0
	entries := cs.entries[:0]
	for i := range batch {
		entries = append(entries, p.classify(cs, &batch[i]))
		if entries[len(entries)-1].kind == eLocal && batch[i].Cmd == proto.CmdQuit {
			break
		}
	}
	cs.entries = entries

	// One write per touched backend: ship every entry's payload.
	for b, fs := range cs.bufFwds {
		if len(fs) == 0 {
			continue
		}
		b.send(fs, cs.bufs[b])
		cs.bufFwds[b] = fs[:0]
		cs.bufs[b] = cs.bufs[b][:0]
	}

	// Settle in request order.
	for i := range entries {
		e := &entries[i]
		switch e.kind {
		case eSkip:
			continue
		case eLocal:
			enc.Stage(&e.rep)
			if e.rep.Kind == proto.KQuit {
				return true
			}
		case eForward:
			p.settle(cs, e.f)
			rep := e.f.rep
			if e.moved >= 0 && rep.Kind == proto.KRaw && strings.HasPrefix(rep.Msg, "OK MIGRATED") {
				// A migrate acknowledged through the proxy flips our ring
				// along with the cluster's.
				p.ring.SetOwner(e.moved, e.f.addr)
				if p.tel != nil {
					p.tel.RingRefreshes.Inc()
				}
			}
			if p.tel != nil {
				p.tel.ForwardLatency.Observe(time.Since(e.start))
			}
			enc.Stage(&rep)
		case eFanout:
			rep := p.mergeFanout(cs, e)
			if p.tel != nil {
				p.tel.FanoutLatency.Observe(time.Since(e.start))
			}
			enc.Stage(&rep)
		}
	}
	return false
}

// stageForward queues f for the batch write to addr's backend.
func (cs *feConn) stageForward(addr string, f *fwd) {
	b := cs.p.backendFor(addr)
	cs.bufFwds[b] = append(cs.bufFwds[b], f)
	cs.bufs[b] = f.appendWire(cs.bufs[b])
}

// localReply shapes an eLocal entry.
func localReply(rep proto.Reply) entry {
	return entry{kind: eLocal, rep: rep, moved: -1}
}

// notRoutableMsg answers admin verbs that only make sense on a node.
const notRoutableMsg = "not routable through the proxy (connect to a node directly)"

// classify routes one request: answer locally, forward whole to the
// slot owner, or split into fan-out legs. Forwarded requests are
// staged into the per-backend batch buffers; settle picks the replies
// up afterwards.
func (p *Proxy) classify(cs *feConn, req *proto.Request) entry {
	switch req.Cmd {
	case proto.CmdNone:
		return entry{kind: eSkip, moved: -1}

	case proto.CmdGet, proto.CmdSet, proto.CmdIncr,
		proto.CmdZAdd, proto.CmdZGet, proto.CmdZIncr, proto.CmdZDel:
		return p.forwardKeyed(cs, req)

	case proto.CmdDelete:
		if req.HasSeq || len(req.KV) == 1 {
			return p.forwardKeyed(cs, req)
		}
		return p.fanKeys(cs, req, req.KV, 1, mDelete)

	case proto.CmdMGet:
		if len(req.KV) == 1 {
			return p.forwardKeyed(cs, req)
		}
		return p.fanKeys(cs, req, req.KV, 1, mMGet)

	case proto.CmdMSet:
		if req.HasSeq || len(req.KV) == 2 {
			return p.forwardKeyed(cs, req)
		}
		return p.fanKeys(cs, req, req.KV, 2, mMSet)

	case proto.CmdZRange:
		limit := -1
		if len(req.KV) == 3 {
			limit = int(req.KV[2])
		}
		return p.broadcast(cs, req, mRange, limit)

	case proto.CmdZCount:
		return p.broadcast(cs, req, mCount, -1)

	case proto.CmdWait:
		return p.broadcast(cs, req, mWait, -1)

	case proto.CmdSession:
		cs.sess = req.KV[0]
		return localReply(proto.Reply{Kind: proto.KRaw, Msg: "OK SESSION " + fmt.Sprint(req.KV[0])})

	case proto.CmdMigrate:
		slot := int(req.KV[0])
		if slot < 0 || slot >= NumSlots {
			return localReply(proto.Reply{Kind: proto.KErrClient, Msg: "bad slot"})
		}
		f := cs.takeFwd()
		f.set(req.Cmd, req.KV, req.Dur, 0, false, 0)
		f.addr = req.Addr
		if p.tel != nil {
			p.tel.Forwards.Inc()
		}
		cs.stageForward(p.ring.Owner(slot), f)
		return entry{kind: eForward, f: f, moved: slot, start: time.Now()}

	case proto.CmdCluster:
		if p.tel != nil {
			p.tel.LocalReplies.Inc()
		}
		return localReply(proto.Reply{Kind: proto.KRaw, Msg: p.ring.Table()})

	case proto.CmdStats:
		if p.tel != nil {
			p.tel.LocalReplies.Inc()
		}
		return localReply(proto.Reply{Kind: proto.KRaw, Msg: p.statsText()})

	case proto.CmdInfo:
		if p.tel != nil {
			p.tel.LocalReplies.Inc()
		}
		return localReply(proto.Reply{Kind: proto.KRaw, Msg: p.infoText()})

	case proto.CmdPing:
		if p.tel != nil {
			p.tel.LocalReplies.Inc()
		}
		return localReply(proto.Reply{Kind: proto.KPong})

	case proto.CmdCommand:
		return localReply(proto.Reply{Kind: proto.KEmpty})

	case proto.CmdQuit:
		return localReply(proto.Reply{Kind: proto.KQuit})

	case proto.CmdBad:
		if p.tel != nil {
			p.tel.LocalReplies.Inc()
		}
		return localReply(proto.Reply{Kind: req.Bad, Msg: req.BadMsg})

	default: // CmdCrash, CmdPromote, CmdAcceptSlot
		if p.tel != nil {
			p.tel.LocalReplies.Inc()
		}
		return localReply(proto.Reply{Kind: proto.KErrClient, Msg: notRoutableMsg})
	}
}

// forwardKeyed stages a whole request to the owner of its first key's
// slot. Sessioned requests carry a rebind prefix; a sessioned request
// with no bound session is refused with the server's own error text.
func (p *Proxy) forwardKeyed(cs *feConn, req *proto.Request) entry {
	sess := uint64(0)
	if req.HasSeq {
		if cs.sess == 0 {
			return localReply(proto.Reply{Kind: proto.KErrClient,
				Msg: "seq requires a session (send: session <id> first)"})
		}
		sess = cs.sess
	}
	f := cs.takeFwd()
	f.set(req.Cmd, req.KV, req.Dur, req.Seq, req.HasSeq, sess)
	addr, _ := p.ring.OwnerOfKey(req.KV[0])
	if p.tel != nil {
		p.tel.Forwards.Inc()
	}
	cs.stageForward(addr, f)
	return entry{kind: eForward, f: f, moved: -1, start: time.Now()}
}

// fanKeys splits a multi-key request across slot owners: stride 1 for
// key lists (mget/delete), 2 for pairs (mset). Keys for the same node
// stay in one leg, in request order.
func (p *Proxy) fanKeys(cs *feConn, req *proto.Request, kv []uint64, stride int, merge int) entry {
	for k := range cs.legs {
		delete(cs.legs, k)
	}
	e := entry{kind: eFanout, merge: merge, limit: -1, moved: -1, start: time.Now()}
	nkeys := len(kv) / stride
	if cap(e.keyLeg) < nkeys {
		e.keyLeg = make([]int, 0, nkeys)
	}
	var order []*fwd
	for i := 0; i < len(kv); i += stride {
		addr, _ := p.ring.OwnerOfKey(kv[i])
		f, ok := cs.legs[addr]
		if !ok {
			f = cs.takeFwd()
			f.set(req.Cmd, nil, req.Dur, 0, false, 0)
			f.addr = addr
			cs.legs[addr] = f
			order = append(order, f)
		}
		f.kv = append(f.kv, kv[i:i+stride]...)
		e.keyLeg = append(e.keyLeg, indexOf(order, f))
	}
	if len(order) == 1 {
		// Single owner: no split needed; forward whole.
		f := order[0]
		if p.tel != nil {
			p.tel.Forwards.Inc()
		}
		cs.stageForward(f.addr, f)
		return entry{kind: eForward, f: f, moved: -1, start: e.start}
	}
	if p.tel != nil {
		p.tel.Fanouts.Inc()
		p.tel.FanoutLegs.Add(uint64(len(order)))
	}
	for _, f := range order {
		cs.stageForward(f.addr, f)
	}
	e.legs = order
	return e
}

// indexOf finds f in order (legs are few; linear is right).
func indexOf(order []*fwd, f *fwd) int {
	for i, g := range order {
		if g == f {
			return i
		}
	}
	return -1
}

// broadcast stages one copy of req to every node in the ring.
func (p *Proxy) broadcast(cs *feConn, req *proto.Request, merge int, limit int) entry {
	nodes := p.ring.Nodes()
	e := entry{kind: eFanout, merge: merge, limit: limit, moved: -1, start: time.Now()}
	for _, addr := range nodes {
		f := cs.takeFwd()
		f.set(req.Cmd, req.KV, req.Dur, 0, false, 0)
		f.waitRepl = req.WaitRepl
		f.addr = addr
		cs.stageForward(addr, f)
		e.legs = append(e.legs, f)
	}
	if p.tel != nil {
		p.tel.Fanouts.Inc()
		p.tel.FanoutLegs.Add(uint64(len(e.legs)))
	}
	return e
}

// movedRetryMax bounds redirect-following per request: an importing
// owner answers "MOVED <slot> ?" until its stream settles, so the
// proxy waits in 1 ms steps between retries.
const movedRetryMax = 2000

// settle receives f's reply, following MOVED redirects: a redirect
// naming a node updates the ring and re-sends there; "?" means the
// new owner is still importing — wait and retry.
func (p *Proxy) settle(cs *feConn, f *fwd) {
	f.rep = <-f.ch
	for tries := 0; f.rep.Kind == proto.KMoved && tries < movedRetryMax; tries++ {
		if p.tel != nil {
			p.tel.Redirects.Inc()
		}
		slot := f.rep.N
		if f.rep.Msg != "?" {
			if p.ring.Owner(slot) != f.rep.Msg {
				p.ring.SetOwner(slot, f.rep.Msg)
				if p.tel != nil {
					p.tel.RingRefreshes.Inc()
				}
			}
		} else {
			time.Sleep(time.Millisecond)
		}
		owner := p.ring.Owner(slot)
		if p.tel != nil {
			p.tel.Retries.Inc()
		}
		cs.scratch = p.backendFor(owner).sendOne(f, cs.scratch)
		f.rep = <-f.ch
	}
}

// settleLeg settles one fan-out leg. A redirected multi-key leg is
// re-split per key (ownership may have diverged mid-migration); the
// singles settle recursively and reassemble into the leg's reply
// shape.
func (p *Proxy) settleLeg(cs *feConn, f *fwd) {
	f.rep = <-f.ch
	if f.rep.Kind != proto.KMoved {
		return
	}
	if p.tel != nil {
		p.tel.Redirects.Inc()
	}
	stride := 1
	if f.cmd == proto.CmdMSet {
		stride = 2
	}
	if len(f.kv) == stride {
		// Single-key leg: plain redirect following. Put the reply back
		// for settle's loop.
		f.ch <- f.rep
		p.settle(cs, f)
		return
	}
	// Re-split per key and reassemble.
	singles := make([]*fwd, 0, len(f.kv)/stride)
	for i := 0; i < len(f.kv); i += stride {
		s := newFwd()
		s.set(f.cmd, f.kv[i:i+stride], f.dur, 0, false, 0)
		addr, _ := p.ring.OwnerOfKey(f.kv[i])
		cs.scratch = p.backendFor(addr).sendOne(s, cs.scratch)
		p.settle(cs, s)
		singles = append(singles, s)
	}
	out := proto.Reply{}
	switch f.cmd {
	case proto.CmdMGet:
		out.Kind = proto.KMGet
		for _, s := range singles {
			if isErr(s.rep.Kind) {
				f.rep = s.rep
				return
			}
			out.Items = append(out.Items, s.rep.Items...)
		}
	case proto.CmdDelete:
		out.Kind = proto.KDelete
		for _, s := range singles {
			if isErr(s.rep.Kind) {
				f.rep = s.rep
				return
			}
			out.Items = append(out.Items, s.rep.Items...)
		}
	case proto.CmdMSet:
		out.Kind = proto.KStoredN
		for _, s := range singles {
			if isErr(s.rep.Kind) {
				f.rep = s.rep
				return
			}
			out.N += s.rep.N
		}
	default:
		f.rep = proto.Reply{Kind: proto.KErrServer, Msg: "unmergeable redirected leg"}
		return
	}
	f.rep = out
}

// isErr reports whether k is an error (or still-moved) reply kind.
func isErr(k proto.Kind) bool {
	return k == proto.KErrClient || k == proto.KErrServer || k == proto.KErrProto || k == proto.KMoved
}

// mergeFanout settles every leg and merges them into one reply.
func (p *Proxy) mergeFanout(cs *feConn, e *entry) proto.Reply {
	for _, f := range e.legs {
		p.settleLeg(cs, f)
	}
	for _, f := range e.legs {
		if isErr(f.rep.Kind) {
			return f.rep
		}
	}
	switch e.merge {
	case mMGet, mDelete:
		// Rebuild original key order from the per-key leg map.
		out := proto.Reply{Kind: proto.KMGet}
		if e.merge == mDelete {
			out.Kind = proto.KDelete
		}
		cursors := make([]int, len(e.legs))
		for _, li := range e.keyLeg {
			items := e.legs[li].rep.Items
			ci := cursors[li]
			if ci < len(items) {
				out.Items = append(out.Items, items[ci])
				cursors[li] = ci + 1
			}
		}
		return out
	case mMSet:
		out := proto.Reply{Kind: proto.KStoredN}
		for _, f := range e.legs {
			out.N += f.rep.N
		}
		if len(e.legs) == 1 {
			out.Epoch = e.legs[0].rep.Epoch
		}
		return out
	case mRange:
		return mergeRange(e)
	case mCount:
		out := proto.Reply{Kind: proto.KInt}
		for _, f := range e.legs {
			out.Val += f.rep.Val
		}
		return out
	case mWait:
		// Each node settles its own frontier; the barrier holds once
		// every leg returned. The reported epoch is the minimum — the
		// conservative cluster-wide receipt.
		out := proto.Reply{Kind: proto.KInt}
		for i, f := range e.legs {
			if i == 0 || f.rep.Val < out.Val {
				out.Val = f.rep.Val
			}
		}
		return out
	}
	return proto.Reply{Kind: proto.KErrServer, Msg: "unmergeable fan-out"}
}

// mergeRange k-way merges the legs' ordered items by key, honoring the
// request's limit. Node keyspaces are disjoint, so no deduplication is
// needed.
func mergeRange(e *entry) proto.Reply {
	out := proto.Reply{Kind: proto.KRange}
	cursors := make([]int, len(e.legs))
	for {
		best, bestLeg := uint64(0), -1
		for li, f := range e.legs {
			items := f.rep.Items
			ci := cursors[li]
			if ci >= len(items) {
				continue
			}
			if bestLeg < 0 || items[ci].Key < best {
				best, bestLeg = items[ci].Key, li
			}
		}
		if bestLeg < 0 {
			break
		}
		out.Items = append(out.Items, e.legs[bestLeg].rep.Items[cursors[bestLeg]])
		cursors[bestLeg]++
		if e.limit >= 0 && len(out.Items) >= e.limit {
			break
		}
	}
	return out
}

// statsText renders the proxy's routing counters and per-node counters
// in the servers' STAT vocabulary.
func (p *Proxy) statsText() string {
	var b strings.Builder
	p.tel.Walk(func(name string, v uint64) {
		fmt.Fprintf(&b, "STAT %s %d\r\n", name, v)
	})
	if p.tel != nil {
		for _, h := range []struct {
			name string
			hist *telemetry.Histogram
		}{{"route_forward_latency", &p.tel.ForwardLatency}, {"route_fanout_latency", &p.tel.FanoutLatency}} {
			s := h.hist.Snapshot()
			fmt.Fprintf(&b, "STAT %s_count %d\r\n", h.name, s.Count())
			fmt.Fprintf(&b, "STAT %s_p50_ns %d\r\n", h.name, int64(s.Quantile(0.50)))
			fmt.Fprintf(&b, "STAT %s_p99_ns %d\r\n", h.name, int64(s.Quantile(0.99)))
		}
	}
	fmt.Fprintf(&b, "STAT ring_epoch %d\r\n", p.ring.Epoch())
	p.mu.Lock()
	addrs := make([]string, 0, len(p.nodeTel))
	for addr := range p.nodeTel {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		nt := p.nodeTel[addr]
		fmt.Fprintf(&b, "STAT node_%s_sent %d\r\n", addr, nt.Sent.Load())
		fmt.Fprintf(&b, "STAT node_%s_batches %d\r\n", addr, nt.Batches.Load())
		fmt.Fprintf(&b, "STAT node_%s_redirects %d\r\n", addr, nt.Redirects.Load())
		fmt.Fprintf(&b, "STAT node_%s_errors %d\r\n", addr, nt.Errors.Load())
	}
	p.mu.Unlock()
	b.WriteString("END")
	return b.String()
}

// infoText renders the INFO reply.
func (p *Proxy) infoText() string {
	var b strings.Builder
	b.WriteString("# tspproxy\r\n")
	fmt.Fprintf(&b, "ring_epoch:%d\r\n", p.ring.Epoch())
	fmt.Fprintf(&b, "slots:%d\r\n", NumSlots)
	nodes := p.ring.Nodes()
	fmt.Fprintf(&b, "nodes:%d", len(nodes))
	return b.String()
}
