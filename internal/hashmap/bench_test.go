package hashmap

import (
	"testing"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/telemetry"
)

func benchMap(b *testing.B, mode atlas.Mode, prefill int) (*Map, *atlas.Thread) {
	b.Helper()
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 22})
	heap, err := pheap.Format(dev)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := atlas.New(heap, mode, atlas.Options{MaxThreads: 1})
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(rt, 1<<14, 1000)
	if err != nil {
		b.Fatal(err)
	}
	heap.SetRoot(m.Ptr())
	th, err := rt.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < prefill; i++ {
		if err := m.Put(th, uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	return m, th
}

// BenchmarkPut compares the three fortification modes at the map level —
// the per-operation view of Table 1's mutex columns.
func BenchmarkPut(b *testing.B) {
	for _, mode := range []atlas.Mode{atlas.ModeOff, atlas.ModeTSP, atlas.ModeNonTSP} {
		b.Run(mode.String(), func(b *testing.B) {
			m, th := benchMap(b, mode, 1<<12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Put(th, uint64(i)%(1<<12), uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGet(b *testing.B) {
	m, th := benchMap(b, atlas.ModeTSP, 1<<12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Get(th, uint64(i)%(1<<13)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInc(b *testing.B) {
	for _, mode := range []atlas.Mode{atlas.ModeOff, atlas.ModeTSP, atlas.ModeNonTSP} {
		b.Run(mode.String(), func(b *testing.B) {
			m, th := benchMap(b, mode, 1<<12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Inc(th, uint64(i)%(1<<12), 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDelete(b *testing.B) {
	m, th := benchMap(b, atlas.ModeTSP, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		if err := m.Put(th, k, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Delete(th, k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutTelemetry compares map writes with a live telemetry
// section attached ("on") against the nil-section fast path ("off") —
// the map-level half of the telemetry overhead guard. The device under
// both runs still counts (benchMap uses the default device config), so
// the delta isolates the map layer's own increment.
//
//	go test -run ZZZ -bench PutTelemetry ./internal/hashmap
func BenchmarkPutTelemetry(b *testing.B) {
	for _, withTel := range []bool{true, false} {
		name := "off"
		if withTel {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			m, th := benchMap(b, atlas.ModeTSP, 1<<12)
			if withTel {
				m.SetTelemetry(&telemetry.MapStats{})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Put(th, uint64(i)%(1<<12), uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVerify(b *testing.B) {
	m, _ := benchMap(b, atlas.ModeOff, 1<<13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
