// Package hashmap implements the paper's mutex-based map: a
// separate-chaining hash table in the persistent heap with moderate-grain
// lock striping ("one mutex per 1000 buckets", Section 5.1), written
// against the Atlas runtime so that one code path serves all three Table
// 1 configurations — unfortified (atlas.ModeOff), Atlas TSP mode
// (atlas.ModeTSP, log only) and Atlas non-TSP mode (atlas.ModeNonTSP,
// log + flush).
//
// Every entry carries an integrity word alongside its value (check =
// hash(key, value)). An update writes the value and then the check word —
// two separate stores inside one critical section. A crash that lands
// between them therefore leaves a *detectably* inconsistent entry unless
// the enclosing outermost critical section is rolled back, which is
// exactly the hazard that motivates Atlas for mutex-based code: unlike
// the non-blocking case study, mutex-based updates pass through states
// that violate application invariants while the lock is held.
package hashmap

import (
	"errors"
	"fmt"
	"sync/atomic"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/telemetry"
)

// Descriptor layout (payload words):
const (
	descMagicWord   = 0
	descBucketsWord = 1
	descStrideWord  = 2 // buckets per mutex
	descArrayWord   = 3
	descWords       = 4

	descMagic = 0x484d_4150_5453_5031 // "HMAPTSP1"
)

// Node layout (payload words):
const (
	nodeKey   = 0
	nodeValue = 1
	nodeCheck = 2
	nodeNext  = 3
	nodeWords = 4
)

// Errors returned by the package.
var (
	ErrNotMap   = errors.New("hashmap: pointer does not reference a hash-map descriptor")
	ErrCorrupt  = errors.New("hashmap: integrity check failed")
	ErrNoThread = errors.New("hashmap: nil atlas thread")
)

// DefaultBucketsPerMutex matches the paper's striping grain.
const DefaultBucketsPerMutex = 1000

// Map is a handle onto a persistent mutex-based hash map.
type Map struct {
	rt       *atlas.Runtime
	heap     *pheap.Heap
	desc     pheap.Ptr
	array    pheap.Ptr
	nBuckets int
	stride   int
	mutexes  []*atlas.Mutex
	seqs     []stripeSeq // one seqlock word per stripe, parallel to mutexes

	tel *telemetry.MapStats // nil-safe; set via SetTelemetry
}

// stripeSeq is one stripe's sequence counter, padded to a cache line so
// writers on neighbouring stripes don't false-share. The counter lives in
// volatile Go memory, not the persistent heap: like the stripe mutexes it
// is rebuilt on attach, so recovery starts every stripe quiescent (even)
// and crash-consistency never depends on it. Odd means a writer is inside
// the stripe's critical section.
type stripeSeq struct {
	v uint64
	_ [56]byte
}

// SetTelemetry points the map's operation counters at a registry section
// (nil turns counting off). Call before the map is shared. The *Locked
// stripe-level variants count too: they are the same logical map
// operations, just with caller-managed locking.
func (m *Map) SetTelemetry(tel *telemetry.MapStats) { m.tel = tel }

// mix64 is the table's hash and integrity mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// checkWord computes the integrity companion of (key, value).
func checkWord(key, value uint64) uint64 {
	return mix64(key ^ mix64(value^0x6861_736d_6170_7631))
}

// New allocates a fresh map with nBuckets buckets and one mutex per
// bucketsPerMutex buckets (DefaultBucketsPerMutex if 0).
func New(rt *atlas.Runtime, nBuckets, bucketsPerMutex int) (*Map, error) {
	if nBuckets < 1 {
		return nil, fmt.Errorf("hashmap: nBuckets %d must be positive", nBuckets)
	}
	if bucketsPerMutex == 0 {
		bucketsPerMutex = DefaultBucketsPerMutex
	}
	if bucketsPerMutex < 1 {
		return nil, fmt.Errorf("hashmap: bucketsPerMutex %d must be positive", bucketsPerMutex)
	}
	heap := rt.Heap()
	array, err := heap.Alloc(nBuckets)
	if err != nil {
		return nil, fmt.Errorf("hashmap: allocating bucket array: %w", err)
	}
	desc, err := heap.Alloc(descWords)
	if err != nil {
		return nil, fmt.Errorf("hashmap: allocating descriptor: %w", err)
	}
	heap.Store(desc, descBucketsWord, uint64(nBuckets))
	heap.Store(desc, descStrideWord, uint64(bucketsPerMutex))
	heap.Store(desc, descArrayWord, uint64(array))
	heap.Store(desc, descMagicWord, descMagic)
	return attach(rt, desc)
}

// Open attaches to an existing map via its descriptor pointer.
func Open(rt *atlas.Runtime, desc pheap.Ptr) (*Map, error) {
	if desc.IsNil() {
		return nil, ErrNotMap
	}
	if rt.Heap().Load(desc, descMagicWord) != descMagic {
		return nil, ErrNotMap
	}
	return attach(rt, desc)
}

func attach(rt *atlas.Runtime, desc pheap.Ptr) (*Map, error) {
	heap := rt.Heap()
	m := &Map{
		rt:       rt,
		heap:     heap,
		desc:     desc,
		array:    pheap.Ptr(heap.Load(desc, descArrayWord)),
		nBuckets: int(heap.Load(desc, descBucketsWord)),
		stride:   int(heap.Load(desc, descStrideWord)),
	}
	if m.nBuckets < 1 || m.stride < 1 || m.array.IsNil() {
		return nil, ErrNotMap
	}
	nMutexes := (m.nBuckets + m.stride - 1) / m.stride
	m.mutexes = make([]*atlas.Mutex, nMutexes)
	for i := range m.mutexes {
		m.mutexes[i] = rt.NewMutex()
	}
	m.seqs = make([]stripeSeq, nMutexes)
	return m, nil
}

// writeBegin/writeEnd bracket every mutation of reachable map state under
// a stripe mutex: begin flips the stripe's sequence odd before the first
// visible store, end flips it even after the last. Optimistic readers
// snapshot the sequence, walk, and revalidate; any bump in between voids
// the snapshot. The callers already hold the stripe mutex, so the two
// atomic adds never contend with another writer — they exist purely to
// signal readers.

func (m *Map) writeBegin(b int) { atomic.AddUint64(&m.seqs[b/m.stride].v, 1) }

func (m *Map) writeEnd(b int) { atomic.AddUint64(&m.seqs[b/m.stride].v, 1) }

// StripeVersion returns stripe i's current sequence value — the
// optimistic readers' consistency witness, exported so multi-key
// readers can implement snapshot validation across keys: capture every
// involved stripe's version before the first read, revalidate all of
// them after the last, and an unchanged even set proves the values
// coexisted. A single-key reader gets this for free inside
// GetOptimistic; only cross-key consistency needs the raw witness.
func (m *Map) StripeVersion(i int) uint64 { return atomic.LoadUint64(&m.seqs[i].v) }

// BeginStripeWrites flips stripe i's sequence odd: the opening bracket
// a multi-key section owner places around ALL its stripes before its
// first *Locked mutation. Holding every involved stripe odd for the
// whole section is what makes the section atomic to optimistic readers
// — with per-mutation brackets alone, the quiet window between two
// mutations of one section validates, and a cross-key reader could see
// half an mset. The caller must hold stripe i's mutex.
func (m *Map) BeginStripeWrites(i int) { atomic.AddUint64(&m.seqs[i].v, 1) }

// EndStripeWrites flips stripe i's sequence even again: the closing
// bracket, after the section's last mutation.
func (m *Map) EndStripeWrites(i int) { atomic.AddUint64(&m.seqs[i].v, 1) }

// Ptr returns the descriptor pointer for linking into root structures.
func (m *Map) Ptr() pheap.Ptr { return m.desc }

// Buckets returns the bucket count.
func (m *Map) Buckets() int { return m.nBuckets }

// Mutexes returns the number of stripe locks.
func (m *Map) Mutexes() int { return len(m.mutexes) }

func (m *Map) bucketOf(key uint64) int { return int(mix64(key) % uint64(m.nBuckets)) }

func (m *Map) bucketAddr(b int) nvm.Addr { return m.array.Addr() + nvm.Addr(b) }

func (m *Map) mutexFor(b int) *atlas.Mutex { return m.mutexes[b/m.stride] }

// findLocked walks bucket b's chain for key; the caller holds the
// stripe's mutex. It returns the node and its predecessor (Nil if the
// node is the chain head).
func (m *Map) findLocked(t *atlas.Thread, b int, key uint64) (node, prev pheap.Ptr) {
	prev = pheap.Nil
	for n := pheap.Ptr(t.Load(m.bucketAddr(b))); !n.IsNil(); {
		if t.Load(n.Addr()+nodeKey) == key {
			return n, prev
		}
		prev = n
		n = pheap.Ptr(t.Load(n.Addr() + nodeNext))
	}
	return pheap.Nil, pheap.Nil
}

// Put sets key to value as one outermost critical section.
func (m *Map) Put(t *atlas.Thread, key, value uint64) error {
	if t == nil {
		return ErrNoThread
	}
	m.tel.IncPut()
	b := m.bucketOf(key)
	mu := m.mutexFor(b)
	t.Lock(mu)
	defer t.Unlock(mu)
	return m.putLocked(t, b, key, value, true)
}

// putLocked is the shared body of Put and PutLocked. bump selects
// per-mutation seqlock bracketing (the single-op paths); the *Locked
// variants pass false because their caller brackets every involved
// stripe for its whole multi-key section.
func (m *Map) putLocked(t *atlas.Thread, b int, key, value uint64, bump bool) error {
	if n, _ := m.findLocked(t, b, key); !n.IsNil() {
		// The two-store update whose intermediate state is the
		// mutex-based hazard: value first, integrity word second.
		if bump {
			m.writeBegin(b)
		}
		t.Store(n.Addr()+nodeValue, value)
		t.Store(n.Addr()+nodeCheck, checkWord(key, value))
		if bump {
			m.writeEnd(b)
		}
		return nil
	}
	n, err := m.heap.Alloc(nodeWords)
	if err != nil {
		return err
	}
	t.Store(n.Addr()+nodeKey, key)
	t.Store(n.Addr()+nodeValue, value)
	t.Store(n.Addr()+nodeCheck, checkWord(key, value))
	t.Store(n.Addr()+nodeNext, t.Load(m.bucketAddr(b)))
	// Only the head store publishes the (fully initialized) node, but the
	// bump keeps the reader protocol uniform: any mutation of reachable
	// state invalidates concurrent snapshots.
	if bump {
		m.writeBegin(b)
	}
	t.Store(m.bucketAddr(b), uint64(n))
	if bump {
		m.writeEnd(b)
	}
	return nil
}

// Get returns the value under key, acquiring the stripe lock for
// isolation (the paper's map interface performs each operation as an
// atomic, isolated step).
func (m *Map) Get(t *atlas.Thread, key uint64) (uint64, bool, error) {
	if t == nil {
		return 0, false, ErrNoThread
	}
	m.tel.IncGet()
	b := m.bucketOf(key)
	mu := m.mutexFor(b)
	t.Lock(mu)
	defer t.Unlock(mu)
	n, _ := m.findLocked(t, b, key)
	if n.IsNil() {
		return 0, false, nil
	}
	return t.Load(n.Addr() + nodeValue), true, nil
}

// Inc adds delta to the value under key (inserting the key with value
// delta if absent) as one outermost critical section, and returns the
// new value.
func (m *Map) Inc(t *atlas.Thread, key, delta uint64) (uint64, error) {
	if t == nil {
		return 0, ErrNoThread
	}
	m.tel.IncInc()
	b := m.bucketOf(key)
	mu := m.mutexFor(b)
	t.Lock(mu)
	defer t.Unlock(mu)
	return m.incLocked(t, b, key, delta, true)
}

// incLocked is the shared body of Inc and IncLocked; bump as in
// putLocked.
func (m *Map) incLocked(t *atlas.Thread, b int, key, delta uint64, bump bool) (uint64, error) {
	if n, _ := m.findLocked(t, b, key); !n.IsNil() {
		v := t.Load(n.Addr()+nodeValue) + delta
		if bump {
			m.writeBegin(b)
		}
		t.Store(n.Addr()+nodeValue, v)
		t.Store(n.Addr()+nodeCheck, checkWord(key, v))
		if bump {
			m.writeEnd(b)
		}
		return v, nil
	}
	// Absent key: the insert path (and its seqlock bracketing) is
	// putLocked's.
	if err := m.putLocked(t, b, key, delta, bump); err != nil {
		return 0, err
	}
	return delta, nil
}

// Delete unlinks key's node. The block is reclaimed through the Atlas
// runtime's deferred-free mechanism: deallocation happens only after the
// enclosing critical section commits, so a rolled-back delete can
// resurrect the node intact (Atlas itself defers deallocation for the
// same reason). It reports whether the key was present.
func (m *Map) Delete(t *atlas.Thread, key uint64) (bool, error) {
	if t == nil {
		return false, ErrNoThread
	}
	m.tel.IncDelete()
	b := m.bucketOf(key)
	mu := m.mutexFor(b)
	t.Lock(mu)
	defer t.Unlock(mu)
	return m.deleteLocked(t, b, key, true)
}

// deleteLocked is the shared unlink body of Delete and DeleteLocked. The
// seqlock bracket (per-mutation here, or the caller's section-wide one)
// covers the unlink store, so an optimistic reader that could otherwise
// chase the dead node's pointers is forced to retry; the deferred free
// then guarantees the block survives untouched until a full log-ring lap
// later, long after every such snapshot has been voided.
func (m *Map) deleteLocked(t *atlas.Thread, b int, key uint64, bump bool) (bool, error) {
	n, prev := m.findLocked(t, b, key)
	if n.IsNil() {
		return false, nil
	}
	next := t.Load(n.Addr() + nodeNext)
	if bump {
		m.writeBegin(b)
	}
	if prev.IsNil() {
		t.Store(m.bucketAddr(b), next)
	} else {
		t.Store(prev.Addr()+nodeNext, next)
	}
	if bump {
		m.writeEnd(b)
	}
	if err := t.FreeDeferred(n); err != nil {
		return false, err
	}
	return true, nil
}

// Stripe-level access, for layers (such as txkv and the cache server's
// batch pipeline) that implement multi-key operations by taking several
// stripe locks themselves. The *Locked methods require the caller's
// thread to hold the stripe mutex covering the key — they perform no
// locking of their own, and no seqlock bumping either: the section
// owner brackets every stripe its group touches with BeginStripeWrites
// before the first mutation and EndStripeWrites after the last, which
// holds the stripes odd for the whole section and makes the group
// atomic to optimistic readers (per-mutation brackets would leave the
// quiet windows between a group's mutations individually validatable —
// a cross-key reader could see half an mset).

// StripeOf returns the stripe-lock index covering key.
func (m *Map) StripeOf(key uint64) int { return m.bucketOf(key) / m.stride }

// StripeMutex returns stripe i's mutex.
func (m *Map) StripeMutex(i int) *atlas.Mutex { return m.mutexes[i] }

// GetLocked reads key under a caller-held stripe lock.
func (m *Map) GetLocked(t *atlas.Thread, key uint64) (uint64, bool, error) {
	if t == nil {
		return 0, false, ErrNoThread
	}
	m.tel.IncGet()
	n, _ := m.findLocked(t, m.bucketOf(key), key)
	if n.IsNil() {
		return 0, false, nil
	}
	return t.Load(n.Addr() + nodeValue), true, nil
}

// PutLocked writes key under a caller-held stripe lock and
// caller-owned seqlock bracket (see BeginStripeWrites).
func (m *Map) PutLocked(t *atlas.Thread, key, value uint64) error {
	if t == nil {
		return ErrNoThread
	}
	m.tel.IncPut()
	return m.putLocked(t, m.bucketOf(key), key, value, false)
}

// IncLocked adds delta to key's value (inserting delta if absent) under
// a caller-held stripe lock and seqlock bracket, returning the new
// value — Inc's body for layers that batch several operations into one
// critical section.
func (m *Map) IncLocked(t *atlas.Thread, key, delta uint64) (uint64, error) {
	if t == nil {
		return 0, ErrNoThread
	}
	m.tel.IncInc()
	return m.incLocked(t, m.bucketOf(key), key, delta, false)
}

// DeleteLocked unlinks key under a caller-held stripe lock and seqlock
// bracket, with the same deferred reclamation as Delete.
func (m *Map) DeleteLocked(t *atlas.Thread, key uint64) (bool, error) {
	if t == nil {
		return false, ErrNoThread
	}
	m.tel.IncDelete()
	return m.deleteLocked(t, m.bucketOf(key), key, false)
}

// TornUpdate is a fault-injection hook: it begins the critical section
// of an update to an EXISTING key, stores the new value, and returns
// without storing the integrity word and without closing the critical
// section — the state a crash landing mid-OCS would capture. The thread
// is left inside the OCS (holding the stripe mutex) and must not be used
// again; the caller is expected to crash the device next. Examples and
// fault-injection tests use it to land a crash at the most revealing
// instant deterministically.
func (m *Map) TornUpdate(t *atlas.Thread, key, value uint64) error {
	if t == nil {
		return ErrNoThread
	}
	b := m.bucketOf(key)
	t.Lock(m.mutexFor(b))
	n, _ := m.findLocked(t, b, key)
	if n.IsNil() {
		return fmt.Errorf("hashmap: TornUpdate: key %d not present", key)
	}
	// writeBegin with no matching writeEnd: the stripe sequence stays odd,
	// so optimistic readers fall back to the (held) stripe lock — i.e.
	// they block behind the torn writer exactly as the locked path would —
	// until the crash the caller is about to inject rebuilds the map and
	// its sequence counters.
	m.writeBegin(b)
	t.Store(n.Addr()+nodeValue, value)
	// No check-word store, no Unlock: the crash happens here.
	return nil
}

// VerifyReport summarizes a Verify pass.
type VerifyReport struct {
	Entries int
	Chains  int // non-empty buckets
}

// String renders the report for logs.
func (r VerifyReport) String() string {
	return fmt.Sprintf("hashmap{entries=%d chains=%d}", r.Entries, r.Chains)
}

// Verify walks every chain on a QUIESCENT map (no locks taken; recovery
// time or single-threaded tests), validating that each entry's integrity
// word matches its key/value, that chains are acyclic, and that each
// entry hashes to the bucket holding it. A non-nil error means the map
// is corrupt — which, for an unfortified map interrupted mid-update, is
// the expected observable outcome.
func (m *Map) Verify() (VerifyReport, error) {
	var rep VerifyReport
	dev := m.heap.Device()
	for b := 0; b < m.nBuckets; b++ {
		n := pheap.Ptr(dev.Load(m.bucketAddr(b)))
		if !n.IsNil() {
			rep.Chains++
		}
		steps := 0
		for !n.IsNil() {
			steps++
			if steps > m.nBuckets*1024 {
				return rep, fmt.Errorf("%w: cycle suspected in bucket %d", ErrCorrupt, b)
			}
			key := dev.Load(n.Addr() + nodeKey)
			val := dev.Load(n.Addr() + nodeValue)
			chk := dev.Load(n.Addr() + nodeCheck)
			if chk != checkWord(key, val) {
				return rep, fmt.Errorf("%w: entry key=%d val=%d in bucket %d", ErrCorrupt, key, val, b)
			}
			if m.bucketOf(key) != b {
				return rep, fmt.Errorf("%w: key %d misfiled in bucket %d", ErrCorrupt, key, b)
			}
			rep.Entries++
			n = pheap.Ptr(dev.Load(n.Addr() + nodeNext))
		}
	}
	return rep, nil
}

// Range calls fn for every entry on a QUIESCENT map until fn returns
// false. Iteration order is unspecified.
func (m *Map) Range(fn func(key, value uint64) bool) {
	dev := m.heap.Device()
	for b := 0; b < m.nBuckets; b++ {
		for n := pheap.Ptr(dev.Load(m.bucketAddr(b))); !n.IsNil(); n = pheap.Ptr(dev.Load(n.Addr() + nodeNext)) {
			if !fn(dev.Load(n.Addr()+nodeKey), dev.Load(n.Addr()+nodeValue)) {
				return
			}
		}
	}
}

// Len counts entries on a QUIESCENT map.
func (m *Map) Len() int {
	n := 0
	m.Range(func(_, _ uint64) bool { n++; return true })
	return n
}
