package hashmap

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

type env struct {
	dev  *nvm.Device
	heap *pheap.Heap
	rt   *atlas.Runtime
	m    *Map
}

func newEnv(t *testing.T, mode atlas.Mode, buckets, stride int) *env {
	t.Helper()
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 21})
	heap, err := pheap.Format(dev)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	rt, err := atlas.New(heap, mode, atlas.Options{MaxThreads: 16})
	if err != nil {
		t.Fatalf("atlas.New: %v", err)
	}
	m, err := New(rt, buckets, stride)
	if err != nil {
		t.Fatalf("hashmap.New: %v", err)
	}
	heap.SetRoot(m.Ptr())
	// Make initialization durable before the workload starts, as any
	// real deployment would (setup is not in the crash window).
	dev.FlushAll()
	return &env{dev: dev, heap: heap, rt: rt, m: m}
}

func (e *env) thread(t *testing.T) *atlas.Thread {
	t.Helper()
	th, err := e.rt.NewThread()
	if err != nil {
		t.Fatalf("NewThread: %v", err)
	}
	return th
}

func TestPutGetBasic(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 64, 8)
	th := e.thread(t)
	for k := uint64(0); k < 100; k++ {
		if err := e.m.Put(th, k, k*3); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for k := uint64(0); k < 100; k++ {
		v, ok, err := e.m.Get(th, k)
		if err != nil || !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d,%v,%v", k, v, ok, err)
		}
	}
	if _, ok, _ := e.m.Get(th, 1000); ok {
		t.Fatal("Get found a missing key")
	}
	if e.m.Len() != 100 {
		t.Fatalf("Len = %d, want 100", e.m.Len())
	}
}

func TestPutOverwrites(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 16, 4)
	th := e.thread(t)
	e.m.Put(th, 5, 1)
	e.m.Put(th, 5, 2)
	v, ok, _ := e.m.Get(th, 5)
	if !ok || v != 2 {
		t.Fatalf("Get = %d,%v, want 2", v, ok)
	}
	if e.m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", e.m.Len())
	}
}

func TestIncInsertsAndAdds(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 16, 4)
	th := e.thread(t)
	if v, err := e.m.Inc(th, 9, 4); err != nil || v != 4 {
		t.Fatalf("Inc absent = %d,%v", v, err)
	}
	if v, err := e.m.Inc(th, 9, 6); err != nil || v != 10 {
		t.Fatalf("Inc present = %d,%v", v, err)
	}
}

func TestDelete(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 16, 4)
	th := e.thread(t)
	e.m.Put(th, 1, 10)
	e.m.Put(th, 2, 20)
	ok, err := e.m.Delete(th, 1)
	if err != nil || !ok {
		t.Fatalf("Delete = %v,%v", ok, err)
	}
	if _, found, _ := e.m.Get(th, 1); found {
		t.Fatal("deleted key still present")
	}
	if ok, _ := e.m.Delete(th, 1); ok {
		t.Fatal("double delete returned true")
	}
	if _, err := e.m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestDeleteMiddleOfChain(t *testing.T) {
	// One bucket forces chaining; delete the middle element.
	e := newEnv(t, atlas.ModeTSP, 1, 1)
	th := e.thread(t)
	for k := uint64(1); k <= 3; k++ {
		e.m.Put(th, k, k)
	}
	if ok, _ := e.m.Delete(th, 2); !ok {
		t.Fatal("Delete(2) failed")
	}
	if e.m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.m.Len())
	}
	for _, k := range []uint64{1, 3} {
		if _, ok, _ := e.m.Get(th, k); !ok {
			t.Fatalf("key %d lost by middle delete", k)
		}
	}
	if _, err := e.m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestStripingGrain(t *testing.T) {
	e := newEnv(t, atlas.ModeOff, 5000, 1000)
	if got := e.m.Mutexes(); got != 5 {
		t.Fatalf("Mutexes = %d, want 5 (one per 1000 buckets)", got)
	}
	e2 := newEnv(t, atlas.ModeOff, 100, 0) // default stride
	if got := e2.m.Mutexes(); got != 1 {
		t.Fatalf("Mutexes = %d, want 1", got)
	}
}

func TestOpenAttaches(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 32, 8)
	th := e.thread(t)
	e.m.Put(th, 77, 770)
	m2, err := Open(e.rt, e.m.Ptr())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if v, ok, _ := m2.Get(th, 77); !ok || v != 770 {
		t.Fatalf("reattached Get = %d,%v", v, ok)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 16, 4)
	if _, err := Open(e.rt, pheap.Nil); !errors.Is(err, ErrNotMap) {
		t.Fatalf("Open(Nil) = %v", err)
	}
	p, _ := e.heap.Alloc(descWords)
	if _, err := Open(e.rt, p); !errors.Is(err, ErrNotMap) {
		t.Fatalf("Open(garbage) = %v", err)
	}
}

func TestNilThreadRejected(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 16, 4)
	if err := e.m.Put(nil, 1, 1); !errors.Is(err, ErrNoThread) {
		t.Fatalf("Put(nil thread) = %v", err)
	}
	if _, _, err := e.m.Get(nil, 1); !errors.Is(err, ErrNoThread) {
		t.Fatalf("Get(nil thread) = %v", err)
	}
	if _, err := e.m.Inc(nil, 1, 1); !errors.Is(err, ErrNoThread) {
		t.Fatalf("Inc(nil thread) = %v", err)
	}
	if _, err := e.m.Delete(nil, 1); !errors.Is(err, ErrNoThread) {
		t.Fatalf("Delete(nil thread) = %v", err)
	}
}

func TestConcurrentIncAccuracy(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 1024, 128)
	const threads, per, keys = 8, 300, 32
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th, err := e.rt.NewThread()
			if err != nil {
				t.Errorf("NewThread: %v", err)
				return
			}
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				if _, err := e.m.Inc(th, uint64(rng.Intn(keys)), 1); err != nil {
					t.Errorf("Inc: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var total uint64
	e.m.Range(func(_, v uint64) bool { total += v; return true })
	if total != threads*per {
		t.Fatalf("sum = %d, want %d", total, threads*per)
	}
	if _, err := e.m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// --- Crash behaviour: the three Table-1 configurations ---

// crashRecover crashes with the given rescue fraction, reopens the heap,
// runs Atlas recovery, and returns a reattached map.
func (e *env) crashRecover(t *testing.T, frac float64, mode atlas.Mode) *Map {
	t.Helper()
	e.dev.Crash(nvm.CrashOptions{RescueFraction: frac, Seed: 99})
	e.dev.Restart()
	heap, err := pheap.Open(e.dev)
	if err != nil {
		t.Fatalf("Open heap: %v", err)
	}
	if _, err := atlas.Recover(heap); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	rt, err := atlas.New(heap, mode, atlas.Options{MaxThreads: 16})
	if err != nil {
		t.Fatalf("atlas.New: %v", err)
	}
	m, err := Open(rt, heap.Root())
	if err != nil {
		t.Fatalf("hashmap.Open: %v", err)
	}
	return m
}

func TestAtlasTSPRollsBackMidOCSCrash(t *testing.T) {
	// Crash lands between the value store and the check store of one
	// OCS; Atlas TSP mode + full rescue must roll back to the committed
	// state, making Verify pass.
	e := newEnv(t, atlas.ModeTSP, 64, 8)
	th := e.thread(t)
	if err := e.m.Put(th, 7, 100); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Hand-roll a torn update: do what Put does but crash mid-OCS.
	b := e.m.bucketOf(7)
	mu := e.m.mutexFor(b)
	th.Lock(mu)
	n, _ := e.m.findLocked(th, b, 7)
	th.Store(n.Addr()+nodeValue, 200) // value updated, check NOT
	// crash here, mid-OCS
	m2 := e.crashRecover(t, 1, atlas.ModeTSP)
	if _, err := m2.Verify(); err != nil {
		t.Fatalf("Verify after recovery: %v", err)
	}
	th2, _ := m2.rt.NewThread()
	if v, ok, _ := m2.Get(th2, 7); !ok || v != 100 {
		t.Fatalf("Get(7) = %d,%v, want rolled-back 100", v, ok)
	}
}

func TestUnfortifiedMidOCSCrashIsDetectablyCorrupt(t *testing.T) {
	// The same torn update WITHOUT Atlas: the recovery observer sees the
	// inconsistent entry. This is the motivating hazard for Section 4.2.
	e := newEnv(t, atlas.ModeOff, 64, 8)
	th := e.thread(t)
	if err := e.m.Put(th, 7, 100); err != nil {
		t.Fatalf("Put: %v", err)
	}
	b := e.m.bucketOf(7)
	mu := e.m.mutexFor(b)
	th.Lock(mu)
	n, _ := e.m.findLocked(th, b, 7)
	th.Store(n.Addr()+nodeValue, 200) // torn: check word still for 100
	m2 := e.crashRecover(t, 1, atlas.ModeOff)
	if _, err := m2.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify = %v, want ErrCorrupt (no rollback without Atlas)", err)
	}
}

func TestAtlasNonTSPSurvivesCrashWithoutRescue(t *testing.T) {
	e := newEnv(t, atlas.ModeNonTSP, 64, 8)
	th := e.thread(t)
	for k := uint64(0); k < 20; k++ {
		if err := e.m.Put(th, k, k+1000); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Torn update in flight at crash time.
	b := e.m.bucketOf(3)
	mu := e.m.mutexFor(b)
	th.Lock(mu)
	n, _ := e.m.findLocked(th, b, 3)
	th.Store(n.Addr()+nodeValue, 9999)
	// Crash with NO rescue: only synchronously flushed state survives.
	m2 := e.crashRecover(t, 0, atlas.ModeNonTSP)
	if _, err := m2.Verify(); err != nil {
		t.Fatalf("Verify after no-rescue crash: %v", err)
	}
	th2, _ := m2.rt.NewThread()
	for k := uint64(0); k < 20; k++ {
		v, ok, err := m2.Get(th2, k)
		if err != nil || !ok || v != k+1000 {
			t.Fatalf("Get(%d) = %d,%v,%v, want %d", k, v, ok, err, k+1000)
		}
	}
}

func TestCompletedOCSesSurviveManyModes(t *testing.T) {
	for _, tc := range []struct {
		mode atlas.Mode
		frac float64
	}{
		{atlas.ModeOff, 1},    // unfortified needs full rescue and no in-flight OCS
		{atlas.ModeTSP, 1},    // TSP mode needs full rescue
		{atlas.ModeNonTSP, 0}, // non-TSP survives even a no-rescue crash
	} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			e := newEnv(t, tc.mode, 128, 16)
			th := e.thread(t)
			for k := uint64(0); k < 50; k++ {
				if err := e.m.Put(th, k, k*7); err != nil {
					t.Fatalf("Put: %v", err)
				}
			}
			m2 := e.crashRecover(t, tc.frac, tc.mode)
			if _, err := m2.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if m2.Len() != 50 {
				t.Fatalf("Len = %d, want 50", m2.Len())
			}
			th2, _ := m2.rt.NewThread()
			for k := uint64(0); k < 50; k++ {
				if v, ok, _ := m2.Get(th2, k); !ok || v != k*7 {
					t.Fatalf("Get(%d) = %d,%v", k, v, ok)
				}
			}
		})
	}
}

func TestRolledBackInsertLeavesNoGhostEntry(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 64, 8)
	th := e.thread(t)
	e.m.Put(th, 1, 1)
	// In-flight insert of a new key at crash time.
	b := e.m.bucketOf(55)
	mu := e.m.mutexFor(b)
	th.Lock(mu)
	if err := e.m.putLocked(th, b, 55, 555, true); err != nil {
		t.Fatalf("putLocked: %v", err)
	}
	// crash before Unlock
	m2 := e.crashRecover(t, 1, atlas.ModeTSP)
	th2, _ := m2.rt.NewThread()
	if _, ok, _ := m2.Get(th2, 55); ok {
		t.Fatal("rolled-back insert still visible")
	}
	if _, err := m2.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if m2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m2.Len())
	}
}

func TestRolledBackDeleteResurrectsEntry(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 1, 1) // single bucket: chain of 3
	th := e.thread(t)
	for k := uint64(1); k <= 3; k++ {
		e.m.Put(th, k, k*10)
	}
	// In-flight delete of the middle node at crash time.
	mu := e.m.mutexFor(0)
	th.Lock(mu)
	n, prev := e.m.findLocked(th, 0, 2)
	next := th.Load(n.Addr() + nodeNext)
	if prev.IsNil() {
		th.Store(e.m.bucketAddr(0), next)
	} else {
		th.Store(prev.Addr()+nodeNext, next)
	}
	// crash mid-OCS: the unlink must be rolled back and the node must
	// NOT have been freed (deferred reclamation).
	m2 := e.crashRecover(t, 1, atlas.ModeTSP)
	th2, _ := m2.rt.NewThread()
	if v, ok, _ := m2.Get(th2, 2); !ok || v != 20 {
		t.Fatalf("Get(2) = %d,%v, want resurrected 20", v, ok)
	}
	if m2.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m2.Len())
	}
	if _, err := m2.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyDetectsMisfiledKey(t *testing.T) {
	e := newEnv(t, atlas.ModeOff, 64, 8)
	th := e.thread(t)
	e.m.Put(th, 10, 1)
	// Corrupt the key in place, keeping the check word consistent so
	// only the bucket-placement check can catch it.
	b := e.m.bucketOf(10)
	n := pheap.Ptr(e.dev.Load(e.m.bucketAddr(b)))
	var k2 uint64
	for k2 = 11; e.m.bucketOf(k2) == b; k2++ {
	}
	e.heap.Store(n, nodeKey, k2)
	e.heap.Store(n, nodeCheck, checkWord(k2, 1))
	if _, err := e.m.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify = %v, want ErrCorrupt", err)
	}
}

func TestNewValidation(t *testing.T) {
	e := newEnv(t, atlas.ModeOff, 16, 4)
	if _, err := New(e.rt, 0, 4); err == nil {
		t.Fatal("New(0 buckets) succeeded")
	}
	if _, err := New(e.rt, 16, -1); err == nil {
		t.Fatal("New(negative stride) succeeded")
	}
}
