// Optimistic (seqlock) read path: the paper's recovery-observer argument
// (Section 4.1) made executable. A reader never writes, so it needs zero
// persistence work under TSP — no undo log, no flushes, no mutex. What it
// does need is a consistency witness, because the mutex-based update
// passes through states that violate the map's invariants (the two-store
// value/check update, the unlink of a node mid-chain). The per-stripe
// sequence counter is that witness: readers snapshot it, walk the chain
// with atomic loads straight off the device, and revalidate; if any
// writer bumped the stripe in between, the snapshot is void and the
// reader retries. After optimisticAttempts void snapshots the reader
// falls back to the locked Get, so writers under 100% churn delay
// readers but never livelock them.
//
// Safety of the speculative walk (no locks held, writers concurrent):
//   - Every word access is an atomic load on the simulated NVM device, so
//     the race detector is clean by construction.
//   - A torn pointer (next/head read mid-unlink) can point anywhere; the
//     walk dereferences through Device.TryLoad, which range-checks
//     instead of panicking, and any such interleaving also bumped the
//     sequence, so the garbage value is discarded at validation.
//   - Freed node memory cannot be recycled under a reader's feet: Delete
//     unlinks inside a seqlock bump and reclaims through FreeDeferred,
//     which waits a full log-ring lap — by the time the block is
//     reusable, every snapshot that could have seen it is long void.
//   - A cyclic chain (transient, assembled from torn pointers) cannot
//     hang the reader: the walk gives up after optimisticMaxSteps and
//     retries.
package hashmap

import (
	"sync/atomic"

	"tsp/internal/nvm"
)

const (
	// optimisticAttempts bounds how many void snapshots a reader tolerates
	// before taking the stripe lock. Small on purpose: a failed snapshot
	// means a writer is active on the stripe, and under sustained writes
	// the locked path is the fair queue. Measured across 1/2/4/8 (see
	// EXPERIMENTS.md): the read benchmarks are flat in this knob, so 4
	// stays as the bounded-delay middle ground.
	optimisticAttempts = 4

	// optimisticMaxSteps bounds one speculative chain walk. Chains are
	// expected to hold a handful of nodes; a walk this long means the
	// reader is chasing torn pointers and should revalidate.
	optimisticMaxSteps = 4096
)

// GetOptimistic attempts a lock-free read of key. It returns
// (value, ok, true) when a snapshot validated — ok reporting presence,
// exactly as Get would — and (0, false, false) when the retry budget was
// exhausted, in which case the caller must re-run the read under the
// stripe lock (Get). It takes no atlas.Thread: the whole point is that
// the reader participates in no critical section.
func (m *Map) GetOptimistic(key uint64) (value uint64, ok, valid bool) {
	for attempt := 0; attempt < optimisticAttempts; attempt++ {
		value, ok, valid = m.getAttempt(key)
		if valid {
			m.tel.IncOptGet()
			m.tel.IncGet()
			return value, ok, true
		}
		m.tel.IncOptRetry()
	}
	m.tel.IncOptFallback()
	return 0, false, false
}

// MGetOptimistic attempts lock-free reads of keys[i] into vals[i]/oks[i],
// setting valid[i] per key and returning how many validated. Invalid
// entries (retry budget exhausted) must be re-read under the stripe lock
// by the caller; the slices let a server resolve a whole mget with one
// pass and fall back only for the contended minority.
func (m *Map) MGetOptimistic(keys, vals []uint64, oks, valid []bool) (nValid int) {
	for i, key := range keys {
		v, ok, okSnap := m.GetOptimistic(key)
		vals[i], oks[i], valid[i] = v, ok, okSnap
		if okSnap {
			nValid++
		}
	}
	return nValid
}

// getAttempt is one snapshot-walk-validate cycle.
func (m *Map) getAttempt(key uint64) (value uint64, ok, valid bool) {
	b := m.bucketOf(key)
	seqAddr := &m.seqs[b/m.stride].v
	seq := atomic.LoadUint64(seqAddr)
	if seq&1 != 0 { // writer in the stripe's critical section right now
		return 0, false, false
	}
	dev := m.heap.Device()
	n, live := dev.TryLoad(m.bucketAddr(b))
	steps := 0
	for live && n != 0 {
		steps++
		if steps > optimisticMaxSteps {
			return 0, false, false
		}
		k, kLive := dev.TryLoad(nvm.Addr(n) + nodeKey)
		if !kLive {
			return 0, false, false
		}
		if k == key {
			v, vLive := dev.TryLoad(nvm.Addr(n) + nodeValue)
			if !vLive || atomic.LoadUint64(seqAddr) != seq {
				return 0, false, false
			}
			return v, true, true
		}
		n, live = dev.TryLoad(nvm.Addr(n) + nodeNext)
	}
	if !live || atomic.LoadUint64(seqAddr) != seq {
		return 0, false, false
	}
	return 0, false, true // validated miss
}
