package hashmap

import (
	"sync"
	"testing"

	"tsp/internal/atlas"
	"tsp/internal/telemetry"
)

func TestGetOptimisticBasic(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 64, 8)
	tel := &telemetry.MapStats{}
	e.m.SetTelemetry(tel)
	th := e.thread(t)
	for k := uint64(0); k < 50; k++ {
		if err := e.m.Put(th, k, k*7); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for k := uint64(0); k < 50; k++ {
		v, ok, valid := e.m.GetOptimistic(k)
		if !valid || !ok || v != k*7 {
			t.Fatalf("GetOptimistic(%d) = %d,%v,%v", k, v, ok, valid)
		}
	}
	if _, ok, valid := e.m.GetOptimistic(999); !valid || ok {
		t.Fatalf("GetOptimistic(miss): ok=%v valid=%v, want validated miss", ok, valid)
	}
	if got := tel.OptGets.Load(); got != 51 {
		t.Fatalf("OptGets = %d, want 51", got)
	}
	if got := tel.OptFallbacks.Load(); got != 0 {
		t.Fatalf("OptFallbacks = %d on a quiescent map", got)
	}
}

func TestMGetOptimistic(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 64, 8)
	th := e.thread(t)
	for k := uint64(0); k < 20; k++ {
		if err := e.m.Put(th, k, k+100); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	keys := []uint64{3, 777, 11, 888, 0}
	vals := make([]uint64, len(keys))
	oks := make([]bool, len(keys))
	valid := make([]bool, len(keys))
	if n := e.m.MGetOptimistic(keys, vals, oks, valid); n != len(keys) {
		t.Fatalf("MGetOptimistic validated %d of %d on a quiescent map", n, len(keys))
	}
	want := []struct {
		ok  bool
		val uint64
	}{{true, 103}, {false, 0}, {true, 111}, {false, 0}, {true, 100}}
	for i := range keys {
		if !valid[i] || oks[i] != want[i].ok || vals[i] != want[i].val {
			t.Fatalf("key %d: val=%d ok=%v valid=%v, want val=%d ok=%v",
				keys[i], vals[i], oks[i], valid[i], want[i].val, want[i].ok)
		}
	}
}

// TestSectionBracketAtomicToOptimisticReaders pins the *Locked seqlock
// contract: the section owner's BeginStripeWrites/EndStripeWrites hold
// the stripe odd across EVERY mutation of the section, and the *Locked
// variants themselves never bump. The failure mode this closes is the
// quiet window: if each PutLocked bracketed itself, the stripe would
// read even between two writes of one mset, and an optimistic reader
// validating there would see the first write without the second.
func TestSectionBracketAtomicToOptimisticReaders(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 8, 8) // one stripe covers both keys
	th := e.thread(t)
	const k1, k2 = 1, 2
	if err := e.m.Put(th, k1, 10); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := e.m.Put(th, k2, 20); err != nil {
		t.Fatalf("Put: %v", err)
	}
	st := e.m.StripeOf(k1)
	if got := e.m.StripeOf(k2); got != st {
		t.Fatalf("keys on different stripes (%d, %d); the env should have one", st, got)
	}
	start := e.m.StripeVersion(st)
	if start%2 != 0 {
		t.Fatalf("quiescent stripe version %d is odd", start)
	}

	mu := e.m.StripeMutex(st)
	th.Lock(mu)
	e.m.BeginStripeWrites(st)
	if err := e.m.PutLocked(th, k1, 11); err != nil {
		t.Fatalf("PutLocked: %v", err)
	}
	// The instant between the section's two writes — exactly where a
	// self-bracketing PutLocked would have left the stripe readable.
	if _, _, valid := e.m.GetOptimistic(k2); valid {
		t.Fatal("optimistic read validated mid-section")
	}
	if v := e.m.StripeVersion(st); v%2 == 0 {
		t.Fatalf("stripe version %d even mid-section", v)
	}
	if err := e.m.PutLocked(th, k2, 21); err != nil {
		t.Fatalf("PutLocked: %v", err)
	}
	e.m.EndStripeWrites(st)
	th.Unlock(mu)

	// One bracket for the whole section: exactly one odd/even cycle, not
	// one per mutation.
	if got := e.m.StripeVersion(st); got != start+2 {
		t.Fatalf("stripe version advanced %d->%d across one section, want +2", start, got)
	}
	for k, want := range map[uint64]uint64{k1: 11, k2: 21} {
		v, ok, valid := e.m.GetOptimistic(k)
		if !valid || !ok || v != want {
			t.Fatalf("GetOptimistic(%d) = %d,%v,%v after section, want %d", k, v, ok, valid, want)
		}
	}
}

// TestOptimisticMonotonicSingleWriter is the torn/stale-read property
// test: with one writer incrementing a counter key, every validated
// optimistic read is linearizable inside its snapshot window, so a
// single reader's successive validated reads must be non-decreasing. A
// torn or stale read (seeing the value regress, or a value that was
// never stored) fails the property.
func TestOptimisticMonotonicSingleWriter(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 8, 8) // one stripe: every read collides with the writer
	th := e.thread(t)
	const key = 7
	if err := e.m.Put(th, key, 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3000; i++ {
			if _, err := e.m.Inc(th, key, 1); err != nil {
				t.Errorf("Inc: %v", err)
				return
			}
		}
	}()
	var last uint64
	validated := 0
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		v, ok, valid := e.m.GetOptimistic(key)
		if !valid {
			continue
		}
		if !ok {
			t.Fatal("GetOptimistic: counter key vanished")
		}
		if v < last {
			t.Fatalf("non-monotonic optimistic read: %d after %d", v, last)
		}
		last = v
		validated++
	}
	if v, ok, valid := e.m.GetOptimistic(key); !valid || !ok || v != 3000 {
		t.Fatalf("final GetOptimistic = %d,%v,%v, want 3000", v, ok, valid)
	}
	t.Logf("validated %d optimistic reads against the writer", validated)
}

// TestOptimisticUnderChurn hammers one stripe with inserting/deleting
// writers while readers run lock-free. Two properties: a never-deleted
// key always reads its fixed value when validated (an unlink race that
// slipped past validation would break it), and any validated hit on a
// churn key sees exactly the value its writers store (never a torn or
// recycled word).
func TestOptimisticUnderChurn(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 8, 8) // one stripe: maximum collision
	tel := &telemetry.MapStats{}
	e.m.SetTelemetry(tel)
	const (
		stable    = uint64(1000)
		stableVal = uint64(424242)
		churnKeys = 32
		writers   = 3
		readers   = 3
		writerOps = 1500
	)
	setup := e.thread(t)
	if err := e.m.Put(setup, stable, stableVal); err != nil {
		t.Fatalf("Put: %v", err)
	}
	wths := make([]*atlas.Thread, writers)
	for i := range wths {
		wths[i] = e.thread(t)
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int, th *atlas.Thread) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < writerOps; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := rng % churnKeys
				if rng&(1<<40) != 0 {
					if err := e.m.Put(th, k, k*31+7); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else {
					if _, err := e.m.Delete(th, k); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(w, wths[w])
	}
	go func() { wg.Wait(); close(done) }()

	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			k := uint64(0)
			for {
				select {
				case <-done:
					return
				default:
				}
				if v, ok, valid := e.m.GetOptimistic(stable); valid && (!ok || v != stableVal) {
					t.Errorf("stable key read %d,%v, want %d,true", v, ok, stableVal)
					return
				}
				k = (k + 1) % churnKeys
				if v, ok, valid := e.m.GetOptimistic(k); valid && ok && v != k*31+7 {
					t.Errorf("churn key %d read %d, want %d", k, v, k*31+7)
					return
				}
			}
		}()
	}
	rwg.Wait()
	if _, err := e.m.Verify(); err != nil {
		t.Fatalf("Verify after churn: %v", err)
	}
	t.Logf("opt_gets=%d opt_retries=%d opt_fallbacks=%d",
		tel.OptGets.Load(), tel.OptRetries.Load(), tel.OptFallbacks.Load())
}

// TestOptimisticBoundedUnderWriter pins a writer inside the stripe's
// critical section (TornUpdate: seq left odd, mutex held) and checks
// the reader gives up after exactly optimisticAttempts snapshots — the
// bounded-retry contract — while other stripes stay readable.
func TestOptimisticBoundedUnderWriter(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 64, 8) // 8 stripes
	tel := &telemetry.MapStats{}
	e.m.SetTelemetry(tel)
	th := e.thread(t)
	hot := uint64(1)
	var cold uint64
	for k := uint64(2); ; k++ {
		if e.m.StripeOf(k) != e.m.StripeOf(hot) {
			cold = k
			break
		}
	}
	if err := e.m.Put(th, hot, 5); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := e.m.Put(th, cold, 6); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// A second thread tears the hot stripe open and never closes it.
	torn := e.thread(t)
	if err := e.m.TornUpdate(torn, hot, 99); err != nil {
		t.Fatalf("TornUpdate: %v", err)
	}
	if _, _, valid := e.m.GetOptimistic(hot); valid {
		t.Fatal("GetOptimistic validated under an in-flight writer")
	}
	if got := tel.OptRetries.Load(); got != optimisticAttempts {
		t.Fatalf("OptRetries = %d, want %d (bounded)", got, optimisticAttempts)
	}
	if got := tel.OptFallbacks.Load(); got != 1 {
		t.Fatalf("OptFallbacks = %d, want 1", got)
	}
	// Stripes without an in-flight writer are unaffected.
	if v, ok, valid := e.m.GetOptimistic(cold); !valid || !ok || v != 6 {
		t.Fatalf("cold-stripe GetOptimistic = %d,%v,%v", v, ok, valid)
	}
}

// TestOptimisticSeqsRebuiltOnOpen: the sequence counters live in
// volatile Go memory, so a reattach (what recovery does) starts every
// stripe quiescent even if the crash caught a writer mid-section.
func TestOptimisticSeqsRebuiltOnOpen(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP, 8, 8)
	th := e.thread(t)
	if err := e.m.Put(th, 1, 11); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := e.m.Put(th, 2, 22); err != nil {
		t.Fatalf("Put: %v", err)
	}
	torn := e.thread(t)
	if err := e.m.TornUpdate(torn, 1, 99); err != nil {
		t.Fatalf("TornUpdate: %v", err)
	}
	if _, _, valid := e.m.GetOptimistic(2); valid {
		t.Fatal("old handle validated while its stripe is torn open")
	}
	m2, err := Open(e.rt, e.m.Ptr())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if v, ok, valid := m2.GetOptimistic(2); !valid || !ok || v != 22 {
		t.Fatalf("fresh handle GetOptimistic(2) = %d,%v,%v, want 22", v, ok, valid)
	}
}
