package hashmap

import (
	"testing"
	"testing/quick"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// Model-based testing mirroring the skip-list's: a random single-threaded
// op sequence against the map and a plain Go map must agree, across a
// crash-with-rescue and Atlas recovery.

func TestQuickMatchesModelAcrossCrash(t *testing.T) {
	f := func(raw []uint32, mode8 uint8) bool {
		mode := atlas.ModeTSP
		if mode8%2 == 1 {
			mode = atlas.ModeNonTSP
		}
		dev := nvm.NewDevice(nvm.Config{Words: 1 << 18})
		heap, err := pheap.Format(dev)
		if err != nil {
			return false
		}
		rt, err := atlas.New(heap, mode, atlas.Options{MaxThreads: 1, LogEntries: 512})
		if err != nil {
			return false
		}
		m, err := New(rt, 32, 8) // tiny table -> long chains
		if err != nil {
			return false
		}
		heap.SetRoot(m.Ptr())
		dev.FlushAll()
		th, err := rt.NewThread()
		if err != nil {
			return false
		}

		model := map[uint64]uint64{}
		for _, r := range raw {
			key := uint64(r>>2) % 48
			val := uint64(r)
			switch r % 4 {
			case 0:
				if err := m.Put(th, key, val); err != nil {
					return false
				}
				model[key] = val
			case 1:
				if _, err := m.Inc(th, key, 1); err != nil {
					return false
				}
				model[key]++
			case 2:
				ok, err := m.Delete(th, key)
				if err != nil {
					return false
				}
				if _, in := model[key]; in != ok {
					return false
				}
				delete(model, key)
			case 3:
				v, ok, err := m.Get(th, key)
				if err != nil {
					return false
				}
				mv, in := model[key]
				if ok != in || (ok && v != mv) {
					return false
				}
			}
		}

		// Crash between operations (every OCS complete), full rescue.
		dev.CrashRescue()
		dev.Restart()
		heap2, err := pheap.Open(dev)
		if err != nil {
			return false
		}
		if _, err := atlas.Recover(heap2); err != nil {
			return false
		}
		rt2, err := atlas.New(heap2, mode, atlas.Options{MaxThreads: 1, LogEntries: 512})
		if err != nil {
			return false
		}
		m2, err := Open(rt2, heap2.Root())
		if err != nil {
			return false
		}
		if _, err := m2.Verify(); err != nil {
			return false
		}
		if m2.Len() != len(model) {
			return false
		}
		agree := true
		m2.Range(func(k, v uint64) bool {
			if mv, ok := model[k]; !ok || mv != v {
				agree = false
				return false
			}
			return true
		})
		return agree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a torn update crashed mid-OCS always rolls back to the model
// state under TSP rescue, wherever the key hashes.
func TestQuickTornUpdateAlwaysRollsBack(t *testing.T) {
	f := func(key uint64, before, torn uint64) bool {
		dev := nvm.NewDevice(nvm.Config{Words: 1 << 18})
		heap, _ := pheap.Format(dev)
		rt, err := atlas.New(heap, atlas.ModeTSP, atlas.Options{MaxThreads: 1})
		if err != nil {
			return false
		}
		m, err := New(rt, 16, 4)
		if err != nil {
			return false
		}
		heap.SetRoot(m.Ptr())
		dev.FlushAll()
		th, _ := rt.NewThread()
		if err := m.Put(th, key, before); err != nil {
			return false
		}
		if err := m.TornUpdate(th, key, torn); err != nil {
			return false
		}
		dev.CrashRescue()
		dev.Restart()
		heap2, err := pheap.Open(dev)
		if err != nil {
			return false
		}
		if _, err := atlas.Recover(heap2); err != nil {
			return false
		}
		rt2, _ := atlas.New(heap2, atlas.ModeTSP, atlas.Options{MaxThreads: 1})
		m2, err := Open(rt2, heap2.Root())
		if err != nil {
			return false
		}
		if _, err := m2.Verify(); err != nil {
			return false
		}
		th2, _ := rt2.NewThread()
		v, ok, err := m2.Get(th2, key)
		return err == nil && ok && v == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
