package cacheserver

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tsp/internal/telemetry"
)

// statValue extracts "STAT <name> <value>" from a stats response.
func statValue(t *testing.T, lines []string, name string) uint64 {
	t.Helper()
	prefix := "STAT " + name + " "
	for _, l := range lines {
		if strings.HasPrefix(l, prefix) {
			v, err := strconv.ParseUint(strings.TrimPrefix(l, prefix), 10, 64)
			if err != nil {
				t.Fatalf("stat %s: %v (line %q)", name, err, l)
			}
			return v
		}
	}
	t.Fatalf("stat %s not in response:\n%s", name, strings.Join(lines, "\n"))
	return 0
}

// TestMsetIsOneBatchOneSection: with a single shard, an mset whose ops
// fit one batch group runs as exactly one drained batch inside exactly
// one Atlas critical section — the amortization the pipeline exists
// for.
func TestMsetIsOneBatchOneSection(t *testing.T) {
	s := startServer(t, WithShards(1))
	c := dial(t, s.Addr().String())
	sh := s.shards[0]

	batchesBefore := sh.tel.Server.Batches.Load()
	ocsBefore := sh.tel.Atlas.OCSCommits.Load()
	if got := c.cmd(t, "mset 1 10 2 20 3 30 4 40 5 50 6 60 7 70 8 80"); got != "STORED 8" {
		t.Fatalf("mset: %q", got)
	}
	if got := sh.tel.Server.Batches.Load() - batchesBefore; got != 1 {
		t.Fatalf("batches for one mset = %d, want 1", got)
	}
	if got := sh.tel.Atlas.OCSCommits.Load() - ocsBefore; got != 1 {
		t.Fatalf("OCS commits for one 8-op mset = %d, want 1 (one section per batch)", got)
	}
	if got := sh.tel.Server.BatchedOps.Load(); got < 8 {
		t.Fatalf("batched ops = %d, want >= 8", got)
	}
	if got := uint64(sh.tel.BatchSize.Snapshot().Max()); got < 8 {
		t.Fatalf("batch size max bucket = %d, want >= 8", got)
	}
}

// TestBatchDisabledServesSynchronously: WithBatchMax(0) is the
// pre-pipeline server — correct answers, no worker, nothing counted as
// a batch.
func TestBatchDisabledServesSynchronously(t *testing.T) {
	s := startServer(t, WithShards(2), WithBatchMax(0))
	for _, sh := range s.shards {
		if sh.queue != nil {
			t.Fatal("batch queue exists with batching disabled")
		}
	}
	c := dial(t, s.Addr().String())
	if got := c.cmd(t, "mset 1 10 2 20 3 30"); got != "STORED 3" {
		t.Fatalf("mset: %q", got)
	}
	if got := c.cmd(t, "incr 1 5"); got != "15" {
		t.Fatalf("incr: %q", got)
	}
	if got := c.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED EPOCH ") {
		t.Fatalf("crash: %q", got)
	}
	if got := c.cmd(t, "get 1"); got != "VALUE 1 15" {
		t.Fatalf("get after crash: %q", got)
	}
	for _, sh := range s.shards {
		if got := sh.tel.Server.Batches.Load(); got != 0 {
			t.Fatalf("shard %d counted %d batches with batching disabled", sh.idx, got)
		}
		if got := sh.tel.Server.BatchFallbacks.Load(); got != 0 {
			t.Fatalf("shard %d counted %d fallbacks with batching disabled", sh.idx, got)
		}
	}
}

// TestOversizedGroupChunksThroughPipeline: a group larger than
// batchMax is never executed in one section (that would overrun the
// undo-log ring the bound sizes); it is split into batchMax-sized
// chunks that each ride the pipeline — paying the per-batch
// amortization instead of degrading to the per-op synchronous path,
// which matters once pipelined clients present hundreds of ops in one
// decoded group.
func TestOversizedGroupChunksThroughPipeline(t *testing.T) {
	s := startServer(t, WithShards(1), WithBatchMax(4))
	c := dial(t, s.Addr().String())
	sh := s.shards[0]

	if got := c.cmd(t, "mset 1 1 2 2 3 3 4 4 5 5 6 6 7 7 8 8"); got != "STORED 8" {
		t.Fatalf("oversized mset: %q", got)
	}
	if got := sh.tel.Server.BatchFallbacks.Load(); got != 0 {
		t.Fatalf("fallbacks = %d, want 0 (oversized groups chunk, not degrade)", got)
	}
	if got := sh.tel.Server.Batches.Load(); got != 2 {
		t.Fatalf("batches = %d, want 2 (8 ops / batchMax 4)", got)
	}
	if got := sh.tel.Server.BatchedOps.Load(); got != 8 {
		t.Fatalf("batched ops = %d, want 8", got)
	}
	out := c.lines(t, "mget 1 2 3 4 5 6 7 8")
	for i := 0; i < 8; i++ {
		want := fmt.Sprintf("VALUE %d %d", i+1, i+1)
		if out[i] != want {
			t.Fatalf("mget line %d = %q, want %q", i, out[i], want)
		}
	}
}

// TestQueueFullFallsBackToSyncPath stalls the shard (write lock held,
// so the worker and every sync op block) while six clients submit
// two-op msets through a depth-1 queue. Multi-op groups always route
// to the pipeline, and the stalled worker can absorb at most one
// drain's worth (batchMax=4 ops = two groups) plus the one queued
// group, so at least three writers must take the counted synchronous
// fallback instead of blocking on the queue — and every write must
// still be acked and applied once the shard resumes.
func TestQueueFullFallsBackToSyncPath(t *testing.T) {
	s := startServer(t, WithShards(1), WithBatchMax(4), WithQueueDepth(1))
	sh := s.shards[0]

	sh.mu.Lock() // stall worker drains and sync ops alike
	const n = 6
	conns := make([]net.Conn, n)
	readers := make([]*bufio.Reader, n)
	for i := 0; i < n; i++ {
		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			sh.mu.Unlock()
			t.Fatalf("dial %d: %v", i, err)
		}
		defer conn.Close()
		conns[i] = conn
		readers[i] = bufio.NewReader(conn)
		fmt.Fprintf(conn, "mset %d %d %d %d\r\n", 2*i, 100+i, 2*i+1, 200+i)
	}
	// Every request reaches a routing decision while the shard is
	// stalled: at most two groups drained by the blocked worker
	// (batchMax=4), one filling the depth-1 queue, so at least three
	// must have taken the counted fallback. Fallbacks are counted at the
	// routing decision, before the op blocks on the shard lock, so the
	// counter is pollable here.
	waitFor(t, 10*time.Second, "three sync fallbacks", func() bool {
		return sh.tel.Server.BatchFallbacks.Load() >= 3
	})
	sh.mu.Unlock()

	for i := 0; i < n; i++ {
		line, err := readers[i].ReadString('\n')
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got := strings.TrimSpace(line); got != "STORED 2" {
			t.Fatalf("client %d response: %q", i, got)
		}
	}
	if got := sh.tel.Server.BatchFallbacks.Load(); got < 1 {
		t.Fatalf("fallbacks = %d, want >= 1 (queue depth 1, six concurrent two-op writers)", got)
	}
	// Latency histograms recorded on both paths.
	if got := sh.tel.OpLatency.Snapshot().Count(); got < 1 {
		t.Fatal("no op latency observations")
	}
	if got := sh.tel.CmdLatency.Snapshot(telemetry.CmdMSet).Count(); got != n {
		t.Fatalf("mset command latency observations = %d, want %d", got, n)
	}
	c := dial(t, s.Addr().String())
	for i := 0; i < n; i++ {
		if got, want := c.cmd(t, "get %d", 2*i), fmt.Sprintf("VALUE %d %d", 2*i, 100+i); got != want {
			t.Fatalf("get %d: %q, want %q", 2*i, got, want)
		}
		if got, want := c.cmd(t, "get %d", 2*i+1), fmt.Sprintf("VALUE %d %d", 2*i+1, 200+i); got != want {
			t.Fatalf("get %d: %q, want %q", 2*i+1, got, want)
		}
	}
}

// TestPipelinedCommandsOrdered writes a burst of dependent commands in
// one TCP segment — mixing inline single ops with an mset whose
// per-shard groups ride the pipeline or, when a group exceeds
// batchMax, take the synchronous fallback — and requires the responses
// in request order with the dependent values correct: the pipeline
// must not reorder one connection's commands even when they take
// different execution paths.
func TestPipelinedCommandsOrdered(t *testing.T) {
	s := startServer(t, WithShards(2), WithBatchMax(4))
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	var req strings.Builder
	req.WriteString("set 1 1\r\n")
	req.WriteString("incr 1 1\r\n")
	req.WriteString("mset 10 1 11 2 12 3 13 4 14 5 15 6\r\n") // 6 ops across 2 shards: pipeline or oversize fallback per group
	req.WriteString("incr 1 1\r\n")
	req.WriteString("get 1\r\n")
	if _, err := conn.Write([]byte(req.String())); err != nil {
		t.Fatalf("write: %v", err)
	}
	want := []string{"STORED", "2", "STORED 6", "3", "VALUE 1 3"}
	r := bufio.NewReader(conn)
	for i, w := range want {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if got := strings.TrimSpace(line); got != w {
			t.Fatalf("response %d = %q, want %q", i, got, w)
		}
	}
}

// TestCrashNeverTearsBatchGroup races an administrative power failure
// against an in-flight batch group, every round. The crash command
// rebuilds the stack under the shard WRITE lock while the worker runs
// each group under the read lock, so the failure must land between
// groups: whichever side wins the race, the group is applied whole —
// all eight keys reach the round's value, never a mix — and a group
// still queued at crash time executes against the recovered stack
// rather than being dropped.
func TestCrashNeverTearsBatchGroup(t *testing.T) {
	s := startServer(t, WithShards(1))
	sh := s.shards[0]
	c := dial(t, s.Addr().String())

	const rounds, width = 15, 8
	for r := uint64(1); r <= rounds; r++ {
		ops := make([]batchOp, width)
		for i := range ops {
			ops[i] = batchOp{kind: opSet, key: uint64(i), arg: r}
		}
		req := s.tryEnqueue(sh, ops)
		if req == nil {
			t.Fatalf("round %d: enqueue refused on an idle pipeline", r)
		}
		sh.ringDoorbell() // hand the group to the worker, not a combiner

		crashed := make(chan error, 1)
		go func() { crashed <- sh.crashAndRecover() }()
		<-req.done
		if err := <-crashed; err != nil {
			t.Fatalf("round %d: recovery failed: %v", r, err)
		}
		for i := range ops {
			if ops[i].err != nil {
				t.Fatalf("round %d: op %d failed: %v", r, i, ops[i].err)
			}
		}
		for i := 0; i < width; i++ {
			want := fmt.Sprintf("VALUE %d %d", i, r)
			if got := c.cmd(t, "get %d", i); got != want {
				t.Fatalf("round %d: key %d after crash = %q, want %q (torn group)", r, i, got, want)
			}
		}
	}
	if got := sh.tel.Recovery.Recoveries.Load(); got != rounds {
		t.Fatalf("recoveries = %d, want %d", got, rounds)
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
}

// TestCrashMidBatchCampaign is the table-driven crash-consistency
// campaign: concurrent writers drive the batch pipeline while an admin
// connection power-fails shards (one at a time or the whole machine).
// The durability contract is checked through the writers' own acks —
// the analogue of the harness's recovery-observer equations:
//
//   - incr workload: each writer owns one counter and requires every
//     response to be exactly previous+1. A response regression would
//     mean an ACKED increment was lost to a crash; a skip would mean
//     one applied twice (a half-rolled-back group). Afterwards the
//     stored value must equal the writer's last ack — acked == applied,
//     the Σc1/Σc2 sandwich with T = 0 in-flight at quiesce. Every
//     fourth round each writer also rewrites a two-key side group, so
//     batches keep forming mid-crash (lone increments on an idle shard
//     run inline by design) and increments race real drains.
//   - mset workload: each writer rewrites its whole key group to the
//     round number through the cross-shard fan-out, so crashes land
//     between per-shard groups of the same command. Every ack covers
//     the whole group; at quiesce every key must hold the final round.
func TestCrashMidBatchCampaign(t *testing.T) {
	cases := []struct {
		name     string
		shards   int
		crashAll bool
		useMset  bool
	}{
		{"1shard_crashall_incr", 1, true, false},
		{"4shards_single_incr", 4, false, false},
		{"4shards_crashall_mset", 4, true, true},
		{"4shards_single_mset", 4, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := startServer(t, WithShards(tc.shards), WithMaxConns(16))
			const writers = 4
			stop := make(chan struct{})
			errs := make(chan error, writers)
			lastAck := make([]uint64, writers)
			var wg sync.WaitGroup
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					conn, err := net.Dial("tcp", s.Addr().String())
					if err != nil {
						errs <- err
						return
					}
					defer conn.Close()
					r := bufio.NewReader(conn)
					base := uint64(10_000 + g*1000)
					for round := uint64(1); ; round++ {
						select {
						case <-stop:
							return
						default:
						}
						if tc.useMset {
							fmt.Fprintf(conn, "mset %d %d %d %d %d %d %d %d %d %d\r\n",
								base, round, base+1, round, base+2, round, base+3, round, base+4, round)
						} else {
							if round%4 == 0 {
								// Stir the pipeline: a five-key side group
								// every few rounds (more keys than shards, so
								// at least one shard receives a multi-op
								// group) keeps batches forming mid-crash even
								// in the incr workload, whose lone increments
								// run inline on an idle shard by design.
								fmt.Fprintf(conn, "mset %d %d %d %d %d %d %d %d %d %d\r\n",
									base+500, round, base+501, round, base+502, round,
									base+503, round, base+504, round)
								stir, serr := r.ReadString('\n')
								if serr != nil {
									errs <- serr
									return
								}
								if got := strings.TrimSpace(stir); got != "STORED 5" {
									errs <- fmt.Errorf("writer %d stir round %d: %q", g, round, got)
									return
								}
							}
							fmt.Fprintf(conn, "incr %d 1\r\n", base)
						}
						line, err := r.ReadString('\n')
						if err != nil {
							errs <- err
							return
						}
						line = strings.TrimSpace(line)
						if tc.useMset {
							if line != "STORED 5" {
								errs <- fmt.Errorf("writer %d round %d: %q", g, round, line)
								return
							}
						} else {
							v, perr := strconv.ParseUint(line, 10, 64)
							if perr != nil {
								errs <- fmt.Errorf("writer %d round %d: %q", g, round, line)
								return
							}
							if v != round {
								errs <- fmt.Errorf("writer %d: ack %d after %d acked increments (lost or doubled write)", g, v, round-1)
								return
							}
						}
						lastAck[g] = round
					}
				}(g)
			}

			admin := dial(t, s.Addr().String())
			for round := 0; round < 3; round++ {
				if tc.crashAll {
					if got := admin.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED EPOCH ") {
						t.Fatalf("crash: %q", got)
					}
				} else {
					for i := 0; i < tc.shards; i++ {
						if got := admin.cmd(t, "crash %d", i); !strings.HasPrefix(got, fmt.Sprintf("OK RECOVERED SHARD %d EPOCH ", i)) {
							t.Fatalf("crash %d: %q", i, got)
						}
						waitProgress(t, s, 5)
					}
				}
				waitProgress(t, s, 10)
			}
			close(stop)
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				t.Fatalf("writer error: %v", err)
			}

			// Quiesced: acked == applied, per writer.
			for g := 0; g < writers; g++ {
				base := uint64(10_000 + g*1000)
				if lastAck[g] == 0 {
					continue // writer never completed a round; nothing promised
				}
				if tc.useMset {
					for i := uint64(0); i < 5; i++ {
						want := fmt.Sprintf("VALUE %d %d", base+i, lastAck[g])
						if got := admin.cmd(t, "get %d", base+i); got != want {
							t.Fatalf("writer %d key %d: %q, want %q", g, base+i, got, want)
						}
					}
				} else {
					want := fmt.Sprintf("VALUE %d %d", base, lastAck[g])
					if got := admin.cmd(t, "get %d", base); got != want {
						t.Fatalf("writer %d counter: %q, want %q", g, got, want)
					}
				}
			}
			if err := s.VerifyAll(); err != nil {
				t.Fatalf("VerifyAll after campaign: %v", err)
			}
			var batches, recoveries uint64
			for _, sh := range s.shards {
				batches += sh.tel.Server.Batches.Load()
				recoveries += sh.tel.Recovery.Recoveries.Load()
			}
			if batches == 0 {
				t.Fatal("campaign never exercised the batch pipeline")
			}
			if recoveries == 0 {
				t.Fatal("campaign never recovered a shard")
			}
		})
	}
}

// TestStatsResetCommand: stats reset zeroes every counter and histogram
// over the wire but keeps stack_generation, which identifies the
// incarnation rather than the traffic.
func TestStatsResetCommand(t *testing.T) {
	// Epoch tiers off: the clock persists the frontier word every tick,
	// so a tick landing between `stats reset` and the readback would
	// legitimately make nvm_stores nonzero on a quiescent server.
	s := startServer(t, WithShards(2), WithEpochInterval(0))
	c := dial(t, s.Addr().String())
	c.cmd(t, "set 1 1")
	// Four keys over two shards: at least one shard receives a multi-op
	// group, which rides the batch pipeline.
	c.cmd(t, "mset 2 2 3 3 4 4 5 5")
	c.cmd(t, "get 1")
	c.cmd(t, "crash")

	before := c.lines(t, "stats")
	if got := statValue(t, before, "sets"); got != 5 {
		t.Fatalf("sets before reset = %d, want 5", got)
	}
	gen := statValue(t, before, "stack_generation")
	if gen < 4 { // 2 shards x (initial 1 + one crash)
		t.Fatalf("stack_generation before reset = %d, want >= 4", gen)
	}
	if got := statValue(t, before, "server_batches"); got == 0 {
		t.Fatal("no batches counted before reset")
	}

	if got := c.cmd(t, "stats reset"); got != "RESET" {
		t.Fatalf("stats reset: %q", got)
	}
	after := c.lines(t, "stats")
	for _, name := range []string{"gets", "sets", "op_count", "batch_count", "server_batches", "server_batched_ops", "nvm_stores", "crashes_survived"} {
		if got := statValue(t, after, name); got != 0 {
			t.Errorf("%s after reset = %d, want 0", name, got)
		}
	}
	if got := statValue(t, after, "stack_generation"); got != gen {
		t.Errorf("stack_generation after reset = %d, want %d (must survive)", got, gen)
	}
	// The server keeps serving and counting after a reset, across a
	// crash.
	if got := c.cmd(t, "get 1"); got != "VALUE 1 1" {
		t.Fatalf("get after reset: %q", got)
	}
	if got := statValue(t, c.lines(t, "stats"), "gets"); got != 1 {
		t.Fatalf("gets after post-reset traffic = %d, want 1", got)
	}
}
