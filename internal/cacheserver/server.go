// Package cacheserver is a miniature memcached-style TCP server backed
// by the crash-resilient persistent-heap stack — the shape of
// application the paper's Atlas work was originally evaluated on
// (memcached, OpenLDAP). Every mutation runs through the Atlas runtime,
// so the cache's contents survive simulated crashes with the usual TSP
// contract, and an administrative command can inject exactly such a
// crash to demonstrate it over a live connection.
//
// The protocol is a line-oriented subset of memcached's text protocol
// over integer keys and values:
//
//	set <key> <value>      -> STORED
//	get <key>              -> VALUE <key> <value> | NOT_FOUND
//	incr <key> <delta>     -> <new value> | error
//	delete <key>           -> DELETED | NOT_FOUND
//	stats                  -> STAT lines + END
//	crash                  -> simulates a power failure with TSP rescue,
//	                          recovers, and reports OK RECOVERED
//	quit                   -> closes the connection
package cacheserver

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"tsp/internal/atlas"
	"tsp/internal/hashmap"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// Config parameterizes a server.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:0".
	Addr string

	// Mode is the Atlas fortification level. Default ModeTSP.
	Mode atlas.Mode

	// DeviceWords sizes the simulated NVM. Default 1<<21.
	DeviceWords int

	// MaxConns bounds concurrent connections (each holds an Atlas
	// thread slot). Default 16.
	MaxConns int
}

func (c *Config) fillDefaults() {
	if c.DeviceWords == 0 {
		c.DeviceWords = 1 << 21
	}
	if c.MaxConns == 0 {
		c.MaxConns = 16
	}
	if c.Mode == 0 {
		c.Mode = atlas.ModeTSP
	}
}

// Server is a running cache server.
type Server struct {
	cfg Config
	ln  net.Listener

	// state guards the storage stack: the crash command tears it down
	// and rebuilds it, so request handling takes it as a read lock.
	state struct {
		sync.RWMutex
		dev  *nvm.Device
		heap *pheap.Heap
		rt   *atlas.Runtime
		m    *hashmap.Map
	}

	wg      sync.WaitGroup
	closing atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// Counters for the stats command.
	gets, sets, hits, crashes atomic.Uint64
}

// New builds the storage stack and starts listening. Call Serve to
// accept connections.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{cfg: cfg, conns: map[net.Conn]struct{}{}}
	if err := s.buildStack(nil); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cacheserver: %w", err)
	}
	s.ln = ln
	return s, nil
}

// buildStack constructs (or, given a recovered device, reattaches) the
// storage stack. Caller must hold the state write lock unless this is
// construction time.
func (s *Server) buildStack(dev *nvm.Device) error {
	fresh := dev == nil
	if fresh {
		dev = nvm.NewDevice(nvm.Config{Words: s.cfg.DeviceWords})
	}
	var heap *pheap.Heap
	var err error
	if fresh {
		heap, err = pheap.Format(dev)
	} else {
		heap, err = pheap.Open(dev)
	}
	if err != nil {
		return err
	}
	if !fresh {
		if _, err := atlas.Recover(heap); err != nil {
			return err
		}
	}
	rt, err := atlas.New(heap, s.cfg.Mode, atlas.Options{MaxThreads: s.cfg.MaxConns})
	if err != nil {
		return err
	}
	var m *hashmap.Map
	if fresh {
		m, err = hashmap.New(rt, 4096, 256)
		if err != nil {
			return err
		}
		heap.SetRoot(m.Ptr())
		dev.FlushAll()
	} else {
		m, err = hashmap.Open(rt, heap.Root())
		if err != nil {
			return err
		}
	}
	s.state.dev = dev
	s.state.heap = heap
	s.state.rt = rt
	s.state.m = m
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until Close. It returns nil on clean
// shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes the listener and every active
// connection, and waits for the handlers to finish.
func (s *Server) Close() error {
	s.closing.Store(true)
	err := s.ln.Close()
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// connState is one connection's registration with the (current) storage
// stack. A crash replaces the runtime; ensureFresh re-registers lazily.
type connState struct {
	rt *atlas.Runtime
	th *atlas.Thread
}

// ensureFresh re-registers the connection's Atlas thread if the storage
// stack was rebuilt by a crash since the last request. Caller holds the
// state read lock.
func (s *Server) ensureFresh(cs *connState) error {
	if cs.rt == s.state.rt && cs.th != nil {
		return nil
	}
	cs.rt = s.state.rt
	th, err := cs.rt.NewThread()
	if err != nil {
		return err
	}
	cs.th = th
	return nil
}

// handle runs one connection's request loop.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()

	cs := &connState{}
	// Release the thread slot at connection end, unless the runtime it
	// belongs to has already been replaced by a crash (then it is
	// garbage along with its runtime).
	defer func() {
		s.state.RLock()
		if cs.th != nil && cs.rt == s.state.rt {
			_ = cs.rt.ReleaseThread(cs.th)
		}
		s.state.RUnlock()
	}()

	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			return
		}
		fmt.Fprintf(w, "%s\r\n", s.dispatch(cs, line))
		w.Flush()
	}
}

// dispatch executes one command line.
func (s *Server) dispatch(cs *connState, line string) string {
	fields := strings.Fields(line)
	cmd := strings.ToLower(fields[0])
	args := fields[1:]

	parse := func(a string) (uint64, error) { return strconv.ParseUint(a, 10, 64) }

	// The crash command takes the state write lock itself and must not
	// run under the read lock below.
	if cmd == "crash" {
		if err := s.crashAndRecover(); err != nil {
			return fmt.Sprintf("SERVER_ERROR recovery failed: %v", err)
		}
		s.crashes.Add(1)
		return "OK RECOVERED"
	}

	s.state.RLock()
	defer s.state.RUnlock()
	if err := s.ensureFresh(cs); err != nil {
		return fmt.Sprintf("SERVER_ERROR %v", err)
	}
	th := cs.th

	switch cmd {
	case "set":
		if len(args) != 2 {
			return "CLIENT_ERROR usage: set <key> <value>"
		}
		k, err1 := parse(args[0])
		v, err2 := parse(args[1])
		if err1 != nil || err2 != nil {
			return "CLIENT_ERROR keys and values are unsigned integers"
		}
		if err := s.state.m.Put(th, k, v); err != nil {
			return fmt.Sprintf("SERVER_ERROR %v", err)
		}
		s.sets.Add(1)
		return "STORED"

	case "get":
		if len(args) != 1 {
			return "CLIENT_ERROR usage: get <key>"
		}
		k, err := parse(args[0])
		if err != nil {
			return "CLIENT_ERROR bad key"
		}
		v, ok, gerr := s.state.m.Get(th, k)
		s.gets.Add(1)
		if gerr != nil {
			return fmt.Sprintf("SERVER_ERROR %v", gerr)
		}
		if !ok {
			return "NOT_FOUND"
		}
		s.hits.Add(1)
		return fmt.Sprintf("VALUE %d %d", k, v)

	case "incr":
		if len(args) != 2 {
			return "CLIENT_ERROR usage: incr <key> <delta>"
		}
		k, err1 := parse(args[0])
		d, err2 := parse(args[1])
		if err1 != nil || err2 != nil {
			return "CLIENT_ERROR bad arguments"
		}
		nv, err := s.state.m.Inc(th, k, d)
		if err != nil {
			return fmt.Sprintf("SERVER_ERROR %v", err)
		}
		s.sets.Add(1)
		return strconv.FormatUint(nv, 10)

	case "delete":
		if len(args) != 1 {
			return "CLIENT_ERROR usage: delete <key>"
		}
		k, err := parse(args[0])
		if err != nil {
			return "CLIENT_ERROR bad key"
		}
		ok, derr := s.state.m.Delete(th, k)
		if derr != nil {
			return fmt.Sprintf("SERVER_ERROR %v", derr)
		}
		if !ok {
			return "NOT_FOUND"
		}
		return "DELETED"

	case "stats":
		items := s.state.m.Len()
		devStats := s.state.dev.Stats()
		return fmt.Sprintf("STAT items %d\r\nSTAT gets %d\r\nSTAT hits %d\r\nSTAT sets %d\r\nSTAT crashes_survived %d\r\nSTAT nvm_stores %d\r\nEND",
			items, s.gets.Load(), s.hits.Load(), s.sets.Load(), s.crashes.Load(), devStats.Stores)

	default:
		return "ERROR unknown command"
	}
}

// crashAndRecover simulates a power failure with a TSP rescue and brings
// the storage stack back through the standard recovery path, exactly as
// a restarted process would.
func (s *Server) crashAndRecover() error {
	s.state.Lock()
	defer s.state.Unlock()
	dev := s.state.dev
	dev.StopEvictor()
	dev.CrashRescue()
	dev.Restart()
	if err := s.buildStack(dev); err != nil {
		return errors.Join(errors.New("cacheserver: stack rebuild failed"), err)
	}
	if _, err := s.state.m.Verify(); err != nil {
		return err
	}
	return nil
}
