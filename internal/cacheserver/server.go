// Package cacheserver is a sharded, memcached-style TCP server backed
// by the crash-resilient persistent-heap stack — the shape of
// application the paper's Atlas work was originally evaluated on
// (memcached, OpenLDAP). Keys are hashed across N independent storage
// stacks (device + heap + Atlas runtime + map, assembled by
// internal/stack), so operations on different shards never contend and
// throughput scales with cores instead of serializing on one global
// stack. Every mutation runs through an Atlas runtime, so the cache's
// contents survive simulated crashes with the usual TSP contract —
// per shard: an administrative command can power-fail one shard (or all
// of them) while the rest keep serving, and recovery re-verifies the
// shard's integrity invariants before it rejoins.
//
// The protocol is a line-oriented subset of memcached's text protocol
// over integer keys and values:
//
//	set <key> <value>        -> STORED
//	get <key>                -> VALUE <key> <value> | NOT_FOUND
//	incr <key> <delta>       -> <new value> | error
//	delete <key>             -> DELETED | NOT_FOUND
//	mget <key> ...           -> per key VALUE <key> <value> | NOT_FOUND <key>, then END
//	mset <key> <value> ...   -> STORED <count>
//	stats                    -> aggregate STAT lines + END
//	stats shards             -> one STAT line per shard + END
//	crash                    -> power-fails and recovers every shard; OK RECOVERED
//	crash <shard>            -> power-fails and recovers one shard; OK RECOVERED SHARD <n>
//	quit                     -> closes the connection
//
// The batch commands pipeline one request across shards: keys are
// grouped by shard and the groups execute concurrently, one goroutine
// per shard touched, so a single mget/mset drives every stack at once.
package cacheserver

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/telemetry"
)

// Server is a running sharded cache server.
type Server struct {
	cfg    config
	ln     net.Listener
	shards []*shard

	// sem is the MaxConns admission semaphore: Serve acquires a slot
	// before accepting, so excess connections queue in the listen
	// backlog (backpressure) instead of being served or erroring.
	sem chan struct{}

	wg      sync.WaitGroup
	closing atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// metrics is the optional Prometheus-style HTTP endpoint (see
	// metrics.go); nil unless WithMetricsAddr was given.
	metrics *metricsServer
}

// New builds the sharded storage stacks and starts listening. Call
// Serve to accept connections.
func New(opts ...Option) (*Server, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		shards: make([]*shard, cfg.shards),
		sem:    make(chan struct{}, cfg.maxConns),
		conns:  map[net.Conn]struct{}{},
	}
	for i := range s.shards {
		sh, err := newShard(i, cfg)
		if err != nil {
			return nil, err
		}
		s.shards[i] = sh
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, fmt.Errorf("cacheserver: %w", err)
	}
	s.ln = ln
	if cfg.metricsAddr != "" {
		m, err := startMetrics(s, cfg.metricsAddr)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.metrics = m
	}
	return s, nil
}

// MetricsAddr returns the bound metrics listen address, or nil when the
// metrics endpoint is disabled.
func (s *Server) MetricsAddr() net.Addr {
	if s.metrics == nil {
		return nil
	}
	return s.metrics.addr()
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Mode returns the fortification mode the shards run under.
func (s *Server) Mode() atlas.Mode { return s.cfg.mode }

// VerifyAll re-checks every shard's map integrity invariants,
// quiescing each shard in turn. It returns the first failure.
func (s *Server) VerifyAll() error {
	for _, sh := range s.shards {
		if err := sh.verify(); err != nil {
			return err
		}
	}
	return nil
}

// shardOf hashes a key to its shard. The finalizer differs from the
// map's own bucket hash (a splitmix64 step) and uses the high bits, so
// shard selection does not correlate with bucket selection — otherwise
// each shard's keys would cluster in 1/N of its buckets.
func (s *Server) shardOf(key uint64) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	x := key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return s.shards[(x>>32)%uint64(len(s.shards))]
}

// Serve accepts connections until Close. It returns nil on clean
// shutdown. A connection slot is acquired before each accept, so at
// most MaxConns connections are ever in service; further clients wait
// in the listen backlog until a slot frees.
func (s *Server) Serve() error {
	for {
		s.sem <- struct{}{}
		if s.closing.Load() {
			<-s.sem
			return nil
		}
		conn, err := s.ln.Accept()
		if err != nil {
			<-s.sem
			if s.closing.Load() {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
				<-s.sem
			}()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes the listener and every active
// connection, and waits for the handlers to finish.
func (s *Server) Close() error {
	s.closing.Store(true)
	err := s.ln.Close()
	if s.metrics != nil {
		s.metrics.close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// connState is one connection's registration with the shards: one lazy
// Atlas thread per shard, tagged with the shard generation it was
// registered under so a crash-rebuilt shard triggers re-registration.
type connState struct {
	shards []connShard
}

type connShard struct {
	gen uint64
	th  *atlas.Thread
}

func (s *Server) newConnState() *connState {
	return &connState{shards: make([]connShard, len(s.shards))}
}

// releaseConn returns every registered thread slot at connection end.
func (s *Server) releaseConn(cs *connState) {
	for i, sl := range cs.shards {
		if sl.th != nil {
			s.shards[i].releaseThread(cs)
		}
	}
}

// handle runs one connection's request loop. Responses go through a
// bounded write buffer: anything beyond the bound spills to the socket
// as it is produced, so a slow reader stalls only its own handler.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewScanner(conn)
	w := bufio.NewWriterSize(conn, s.cfg.writeBuf)
	defer w.Flush()

	cs := s.newConnState()
	defer s.releaseConn(cs)

	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			return
		}
		w.WriteString(s.dispatch(cs, line))
		w.WriteString("\r\n")
		w.Flush()
	}
}

// withShard runs fn on key's shard under its read lock with the
// connection's thread for that shard, observing the operation's service
// time into the shard's op-latency histogram.
func (s *Server) withShard(cs *connState, key uint64, fn func(sh *shard, th *atlas.Thread) string) string {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	th, err := sh.threadFor(cs)
	if err != nil {
		return fmt.Sprintf("SERVER_ERROR %v", err)
	}
	start := time.Now()
	resp := fn(sh, th)
	sh.tel.OpLatency.Observe(time.Since(start))
	return resp
}

// dispatch executes one command line and returns the response (possibly
// multi-line, CRLF-separated; the caller appends the final CRLF).
func (s *Server) dispatch(cs *connState, line string) string {
	fields := strings.Fields(line)
	cmd := strings.ToLower(fields[0])
	args := fields[1:]

	parse := func(a string) (uint64, error) { return strconv.ParseUint(a, 10, 64) }

	switch cmd {
	case "crash":
		// Crash takes shard write locks itself and must not run under a
		// read lock.
		switch {
		case len(args) == 0:
			if err := s.crashAll(); err != nil {
				return fmt.Sprintf("SERVER_ERROR recovery failed: %v", err)
			}
			return "OK RECOVERED"
		case len(args) == 1:
			idx, err := strconv.Atoi(args[0])
			if err != nil || idx < 0 || idx >= len(s.shards) {
				return fmt.Sprintf("CLIENT_ERROR shard index out of range [0,%d)", len(s.shards))
			}
			if err := s.shards[idx].crashAndRecover(); err != nil {
				return fmt.Sprintf("SERVER_ERROR recovery failed: %v", err)
			}
			return fmt.Sprintf("OK RECOVERED SHARD %d", idx)
		default:
			return "CLIENT_ERROR usage: crash [shard]"
		}

	case "set":
		if len(args) != 2 {
			return "CLIENT_ERROR usage: set <key> <value>"
		}
		k, err1 := parse(args[0])
		v, err2 := parse(args[1])
		if err1 != nil || err2 != nil {
			return "CLIENT_ERROR keys and values are unsigned integers"
		}
		return s.withShard(cs, k, func(sh *shard, th *atlas.Thread) string {
			if err := sh.stk.Map.Put(th, k, v); err != nil {
				return fmt.Sprintf("SERVER_ERROR %v", err)
			}
			sh.tel.Server.Sets.Inc()
			return "STORED"
		})

	case "get":
		if len(args) != 1 {
			return "CLIENT_ERROR usage: get <key>"
		}
		k, err := parse(args[0])
		if err != nil {
			return "CLIENT_ERROR bad key"
		}
		return s.withShard(cs, k, func(sh *shard, th *atlas.Thread) string {
			v, ok, gerr := sh.stk.Map.Get(th, k)
			sh.tel.Server.Gets.Inc()
			if gerr != nil {
				return fmt.Sprintf("SERVER_ERROR %v", gerr)
			}
			if !ok {
				return "NOT_FOUND"
			}
			sh.tel.Server.Hits.Inc()
			return fmt.Sprintf("VALUE %d %d", k, v)
		})

	case "incr":
		if len(args) != 2 {
			return "CLIENT_ERROR usage: incr <key> <delta>"
		}
		k, err1 := parse(args[0])
		d, err2 := parse(args[1])
		if err1 != nil || err2 != nil {
			return "CLIENT_ERROR bad arguments"
		}
		return s.withShard(cs, k, func(sh *shard, th *atlas.Thread) string {
			nv, err := sh.stk.Map.Inc(th, k, d)
			if err != nil {
				return fmt.Sprintf("SERVER_ERROR %v", err)
			}
			sh.tel.Server.Sets.Inc()
			return strconv.FormatUint(nv, 10)
		})

	case "delete":
		if len(args) != 1 {
			return "CLIENT_ERROR usage: delete <key>"
		}
		k, err := parse(args[0])
		if err != nil {
			return "CLIENT_ERROR bad key"
		}
		return s.withShard(cs, k, func(sh *shard, th *atlas.Thread) string {
			ok, derr := sh.stk.Map.Delete(th, k)
			if derr != nil {
				return fmt.Sprintf("SERVER_ERROR %v", derr)
			}
			sh.tel.Server.Deletes.Inc()
			if !ok {
				return "NOT_FOUND"
			}
			return "DELETED"
		})

	case "mget":
		if len(args) == 0 {
			return "CLIENT_ERROR usage: mget <key> ..."
		}
		keys := make([]uint64, len(args))
		for i, a := range args {
			k, err := parse(a)
			if err != nil {
				return "CLIENT_ERROR bad key"
			}
			keys[i] = k
		}
		return s.mget(cs, keys)

	case "mset":
		if len(args) == 0 || len(args)%2 != 0 {
			return "CLIENT_ERROR usage: mset <key> <value> ..."
		}
		kv := make([]uint64, len(args))
		for i, a := range args {
			n, err := parse(a)
			if err != nil {
				return "CLIENT_ERROR keys and values are unsigned integers"
			}
			kv[i] = n
		}
		return s.mset(cs, kv)

	case "stats":
		if len(args) == 1 && strings.EqualFold(args[0], "shards") {
			return s.statsShards()
		}
		return s.statsAggregate()

	default:
		return "ERROR unknown command"
	}
}

// fanOut groups request indices by shard and runs one goroutine per
// shard touched, pipelining a single batch command across the stacks.
// fn handles that shard's index group with the connection's thread (nil
// if registration failed); it must write only its own indices' results.
// Distinct shards mean distinct connState slots and distinct result
// indices, so the goroutines share nothing mutable.
func (s *Server) fanOut(cs *connState, nIdx int, shardFor func(i int) *shard, fn func(sh *shard, th *atlas.Thread, idxs []int)) {
	groups := make([][]int, len(s.shards))
	for i := 0; i < nIdx; i++ {
		sh := shardFor(i)
		groups[sh.idx] = append(groups[sh.idx], i)
	}
	var wg sync.WaitGroup
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		sh := s.shards[si]
		wg.Add(1)
		go func(sh *shard, idxs []int) {
			defer wg.Done()
			sh.mu.RLock()
			defer sh.mu.RUnlock()
			th, _ := sh.threadFor(cs)
			fn(sh, th, idxs)
		}(sh, idxs)
	}
	wg.Wait()
}

// mget pipelines a multi-key read across shards and reports results in
// request order.
func (s *Server) mget(cs *connState, keys []uint64) string {
	lines := make([]string, len(keys)+1)
	s.fanOut(cs, len(keys),
		func(i int) *shard { return s.shardOf(keys[i]) },
		func(sh *shard, th *atlas.Thread, idxs []int) {
			for _, i := range idxs {
				if th == nil {
					lines[i] = fmt.Sprintf("SERVER_ERROR shard %d unavailable", sh.idx)
					continue
				}
				k := keys[i]
				start := time.Now()
				v, ok, err := sh.stk.Map.Get(th, k)
				sh.tel.OpLatency.Observe(time.Since(start))
				sh.tel.Server.Gets.Inc()
				switch {
				case err != nil:
					lines[i] = fmt.Sprintf("SERVER_ERROR %v", err)
				case ok:
					sh.tel.Server.Hits.Inc()
					lines[i] = fmt.Sprintf("VALUE %d %d", k, v)
				default:
					lines[i] = fmt.Sprintf("NOT_FOUND %d", k)
				}
			}
		})
	lines[len(keys)] = "END"
	return strings.Join(lines, "\r\n")
}

// mset pipelines a multi-key write across shards. On success it reports
// the number of keys stored; any per-shard failure is reported instead.
func (s *Server) mset(cs *connState, kv []uint64) string {
	n := len(kv) / 2
	errsByIdx := make([]error, n)
	s.fanOut(cs, n,
		func(i int) *shard { return s.shardOf(kv[2*i]) },
		func(sh *shard, th *atlas.Thread, idxs []int) {
			for _, i := range idxs {
				if th == nil {
					errsByIdx[i] = fmt.Errorf("shard %d unavailable", sh.idx)
					continue
				}
				start := time.Now()
				err := sh.stk.Map.Put(th, kv[2*i], kv[2*i+1])
				sh.tel.OpLatency.Observe(time.Since(start))
				if err != nil {
					errsByIdx[i] = err
					continue
				}
				sh.tel.Server.Sets.Inc()
			}
		})
	if err := errors.Join(errsByIdx...); err != nil {
		return fmt.Sprintf("SERVER_ERROR %v", err)
	}
	return fmt.Sprintf("STORED %d", n)
}

// crashAll power-fails and recovers every shard concurrently — the
// whole-machine analogue of the per-shard crash command.
func (s *Server) crashAll() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			errs[i] = sh.crashAndRecover()
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// aggregateViews collects and merges every shard's telemetry view.
func (s *Server) aggregateViews() (items int, agg telemetry.Snapshot, opLat, recLat telemetry.HistogramSnapshot) {
	agg = telemetry.Snapshot{}
	for _, sh := range s.shards {
		v := sh.view()
		items += v.items
		agg.Add(v.counters)
		opLat.Merge(v.opLat)
		recLat.Merge(v.recLat)
	}
	return items, agg, opLat, recLat
}

// us renders a duration in (fractional) microseconds for STAT lines.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// statsAggregate renders the whole-server stats view: the historical
// headline STAT keys, op-latency percentiles, and then the registry's
// full per-layer counter vocabulary — every shard merged into one
// monotonic snapshot.
func (s *Server) statsAggregate() string {
	items, agg, opLat, recLat := s.aggregateViews()
	gets, hits := agg["server_gets"], agg["server_hits"]
	hitRate := 0.0
	if gets > 0 {
		hitRate = float64(hits) / float64(gets)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "STAT shards %d\r\n", len(s.shards))
	fmt.Fprintf(&b, "STAT items %d\r\n", items)
	fmt.Fprintf(&b, "STAT gets %d\r\n", gets)
	fmt.Fprintf(&b, "STAT hits %d\r\n", hits)
	fmt.Fprintf(&b, "STAT hit_rate %.4f\r\n", hitRate)
	fmt.Fprintf(&b, "STAT sets %d\r\n", agg["server_sets"])
	fmt.Fprintf(&b, "STAT deletes %d\r\n", agg["server_deletes"])
	fmt.Fprintf(&b, "STAT crashes_survived %d\r\n", agg["recovery_count"])
	fmt.Fprintf(&b, "STAT recovery_avg_us %.1f\r\n", us(recLat.Mean()))
	fmt.Fprintf(&b, "STAT recovery_max_us %.1f\r\n", us(recLat.Max()))
	fmt.Fprintf(&b, "STAT op_count %d\r\n", opLat.Count())
	fmt.Fprintf(&b, "STAT op_p50_us %.1f\r\n", us(opLat.Quantile(0.50)))
	fmt.Fprintf(&b, "STAT op_p95_us %.1f\r\n", us(opLat.Quantile(0.95)))
	fmt.Fprintf(&b, "STAT op_p99_us %.1f\r\n", us(opLat.Quantile(0.99)))
	for _, name := range agg.Names() {
		fmt.Fprintf(&b, "STAT %s %d\r\n", name, agg[name])
	}
	b.WriteString("END")
	return b.String()
}

// statsShards renders one line per shard: the historical per-shard
// fields plus that shard's per-layer highlights and op percentiles.
func (s *Server) statsShards() string {
	var b strings.Builder
	for _, sh := range s.shards {
		v := sh.view()
		c := v.counters
		fmt.Fprintf(&b, "STAT shard %d items %d gets %d hits %d sets %d deletes %d recoveries %d recovery_avg_us %.1f nvm_stores %d nvm_flushes %d atlas_log_appends %d map_gets %d map_puts %d op_p50_us %.1f op_p99_us %.1f\r\n",
			sh.idx, v.items, c["server_gets"], c["server_hits"], c["server_sets"], c["server_deletes"],
			c["recovery_count"], us(v.recLat.Mean()), c["nvm_stores"], c["nvm_flushes"],
			c["atlas_log_appends"], c["map_gets"], c["map_puts"],
			us(v.opLat.Quantile(0.50)), us(v.opLat.Quantile(0.99)))
	}
	b.WriteString("END")
	return b.String()
}
