// Package cacheserver is a sharded, memcached-style TCP server backed
// by the crash-resilient persistent-heap stack — the shape of
// application the paper's Atlas work was originally evaluated on
// (memcached, OpenLDAP). Keys are hashed across N independent storage
// stacks (device + heap + Atlas runtime + map, assembled by
// internal/stack), so operations on different shards never contend and
// throughput scales with cores instead of serializing on one global
// stack. Every mutation runs through an Atlas runtime, so the cache's
// contents survive simulated crashes with the usual TSP contract —
// per shard: an administrative command can power-fail one shard (or all
// of them) while the rest keep serving, and recovery re-verifies the
// shard's integrity invariants before it rejoins.
//
// The wire protocol lives behind internal/proto's Adapter seam. The
// native protocol is a line-oriented subset of memcached's text
// protocol over integer keys and values:
//
//	set <key> <value>        -> STORED
//	get <key>                -> VALUE <key> <value> | NOT_FOUND
//	incr <key> <delta>       -> <new value> | error
//	delete <key>             -> DELETED | NOT_FOUND
//	mget <key> ...           -> per key VALUE <key> <value> | NOT_FOUND <key>, then END
//	mset <key> <value> ...   -> STORED <count>
//	zadd <key> <value>       -> STORED (ordered keyspace)
//	zget <key>               -> VALUE <key> <value> | NOT_FOUND
//	zincr <key> <delta>      -> <new value> | error
//	zdel <key>               -> DELETED | NOT_FOUND
//	zrange <lo> <hi> [limit] -> ascending VALUE lines over [lo,hi), then END
//	zcount <lo> <hi>         -> count of ordered keys in [lo,hi)
//	stats                    -> aggregate STAT lines + END
//	stats shards             -> one STAT line per shard + END
//	stats reset              -> zeroes counters and histograms; RESET
//	crash                    -> power-fails and recovers every shard; OK RECOVERED EPOCH <p>
//	crash <shard>            -> power-fails and recovers one shard; OK RECOVERED SHARD <n> EPOCH <p>
//	promote                  -> severs replication on a follower; OK PROMOTED
//	ping                     -> PONG
//	quit                     -> closes the connection
//
// Every mutating command additionally accepts a trailing durability
// tier — `durable` (the default: effects are committed to fortified
// state before the ack), `relaxed` (acked from a volatile overlay,
// persisted when the current epoch closes; the ack carries `@<epoch>`,
// a receipt redeemable against the crash reply's recovered frontier),
// or `fire` (acked before any state is consulted). The companion
// barrier:
//
//	wait [epoch [timeout-ms]] -> persisted frontier once it covers <epoch> (default: now)
//	wait repl [timeout-ms]    -> follower ack count for this connection's writes
//
// See epoch.go for the tier machinery and DESIGN.md §11 for the
// crash-loss contract.
//
// Exactly-once retries ride a session handshake plus per-request
// sequence numbers (detectable operations; see session.go and
// DESIGN.md §12):
//
//	session <id>             -> OK SESSION <id> (binds the connection)
//	set <k> <v> seq=<n>      -> as set, but duplicate retries of seq n
//	                            replay the recorded ack instead of
//	                            re-applying (likewise incr, delete,
//	                            mset, zadd, zincr, zdel)
//
// A seq below the session's record — or below the shard's eviction
// floor — is refused with "seq too old". docs/PROTOCOL.md is the
// canonical reference for the full grammar, both protocols' spellings,
// and every error string.
//
// The same commands are also served over RESP2 (GET/SET/INCRBY/DEL/
// MGET/MSET/PING/INFO and friends), so redis-cli and redis-benchmark
// can drive the server directly; non-numeric keys and values hash to
// the integer keyspace. By default each connection's protocol is
// sniffed from its first byte (RESP framing always leads with '*');
// WithProto pins a listener to one protocol.
//
// The z* commands address the ordered keyspace: a persistent lock-free
// skip list living beside the hash map under each shard's multi-engine
// heap root (see internal/stack and internal/skiplist). Ordered writes
// ride the same flat-combined batches as map writes; ordered reads —
// zget, zrange, zcount — traverse the skip list with no Atlas critical
// section and no seqlock, the paper's Section 4.1 argument that a
// non-blocking structure needs zero crash-consistency measures made
// visible on the wire. Ranges are half-open [lo, hi). Ordered keys are
// hash-routed across shards like map keys; zrange merges the per-shard
// runs (DESIGN.md §10).
//
// Requests decode in pipelined batches (see serve.go and
// internal/proto): one socket read surfaces every buffered request as
// one batch, the batch's data commands coalesce into one combined op
// group handed to the shard pipeline as a single enqueue, and every
// reply flushes in one write. A client that pipelines N commands pays
// the protocol and persistence machinery once per burst, not once per
// command — the paper's procrastinated-persistence shape applied to
// the network layer.
//
// A server can additionally run as a replication primary (streaming
// every committed batch group to followers) or as a read-only follower
// of such a primary — the preventive tier for site-disaster failure
// classes; see repl.go and internal/repl. A follower rejects mutations
// (and the crash command, whose state shedding would silently diverge
// the copy) until promoted.
//
// Execution is batched per shard (see batch.go): each shard's worker
// drains every request group already queued — from any connection —
// and runs them inside one Atlas critical section, so the persistence
// cost of a critical section is paid per batch, not per op. Batch
// commands additionally pipeline one request across shards: keys are
// grouped by shard and the groups proceed concurrently, so a single
// mget/mset drives every stack at once.
package cacheserver

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/proto"
	"tsp/internal/repl"
	"tsp/internal/telemetry"
)

// Server is a running sharded cache server.
type Server struct {
	cfg    config
	ln     net.Listener
	shards []*shard

	// sem is the MaxConns admission semaphore: Serve acquires a slot
	// before accepting, so excess connections queue in the listen
	// backlog (backpressure) instead of being served or erroring.
	sem chan struct{}

	wg      sync.WaitGroup
	closing atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// metrics is the optional Prometheus-style HTTP endpoint (see
	// metrics.go); nil unless WithMetricsAddr was given.
	metrics *metricsServer

	// Replication state (see repl.go). replLog and replPrimary are set
	// on a primary (WithReplListen); replFollower and replCS on a
	// follower (WithReplicaOf); replTel always exists so stats can
	// record unconditionally. readOnly gates client mutations while the
	// follower replicates; the promote command clears it.
	replLog      *repl.Log
	replPrimary  *repl.Primary
	replFollower *repl.Follower
	replCS       *connState
	replTel      *telemetry.ReplStats
	readOnly     atomic.Bool

	// clusterSt is the slot-ownership table and migration machinery;
	// non-nil only when WithClusterSlots made this server a cluster
	// node (see cluster.go).
	clusterSt *clusterState

	// decodedBatch records, per wire protocol, how many requests each
	// decoder batch carried — the direct measure of how much pipelining
	// clients actually present and hence how much work each protocol
	// amortizes per socket read.
	decodedBatch [telemetry.NumProtocols]telemetry.Histogram

	// Durability-tier state (see epoch.go). curEpoch is the open epoch
	// relaxed acks are stamped with; perEpoch is the persistent frontier
	// — the highest epoch whose relaxed writes are known durable.
	// epochWake re-arms epoch-barrier waiters on every epoch close;
	// ackWake re-arms replication-barrier waiters on every follower ack.
	curEpoch  atomic.Uint64
	perEpoch  atomic.Uint64
	epochWake atomic.Pointer[chan struct{}]
	ackWake   atomic.Pointer[chan struct{}]
	epochStop chan struct{}
	epochDone chan struct{}

	// optReadHook is a test-only interleaving hook, called after each
	// validated read of a multi-key optimistic group with the op index
	// just served. Cross-key tearing is a timing race (a group commit
	// landing between two reads of one mget) that a single-core box may
	// never produce naturally; the hook lets a test land one there
	// deterministically. Nil outside tests.
	optReadHook func(i int)
}

// New builds the sharded storage stacks and starts listening. Call
// Serve to accept connections.
func New(opts ...Option) (*Server, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		shards:  make([]*shard, cfg.shards),
		sem:     make(chan struct{}, cfg.maxConns),
		conns:   map[net.Conn]struct{}{},
		replTel: telemetry.NewReplStats(),
	}
	for i := range s.shards {
		sh, err := newShard(i, cfg)
		if err != nil {
			return nil, err
		}
		s.shards[i] = sh
	}
	// The epoch clock starts before replication: a follower's first ack
	// can arrive the moment the primary listener opens, and its OnAck
	// hook touches the wake pointer the clock state initializes.
	s.startEpochClock()
	if err := s.startReplication(); err != nil {
		s.stopEpochClock()
		return nil, err
	}
	// Cluster mode initializes after replication so it can share the
	// primary's log (or create a private one) before any traffic.
	if err := s.startCluster(); err != nil {
		s.closeReplication()
		s.stopEpochClock()
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		s.closeReplication()
		s.stopEpochClock()
		return nil, fmt.Errorf("cacheserver: %w", err)
	}
	s.ln = ln
	if cfg.metricsAddr != "" {
		m, err := startMetrics(s, cfg.metricsAddr)
		if err != nil {
			ln.Close()
			s.closeReplication()
			s.stopEpochClock()
			return nil, err
		}
		s.metrics = m
	}
	return s, nil
}

// MetricsAddr returns the bound metrics listen address, or nil when the
// metrics endpoint is disabled.
func (s *Server) MetricsAddr() net.Addr {
	if s.metrics == nil {
		return nil
	}
	return s.metrics.addr()
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Mode returns the fortification mode the shards run under.
func (s *Server) Mode() atlas.Mode { return s.cfg.mode }

// VerifyAll re-checks every shard's map integrity invariants,
// quiescing each shard in turn. It returns the first failure.
func (s *Server) VerifyAll() error {
	for _, sh := range s.shards {
		if err := sh.verify(); err != nil {
			return err
		}
	}
	return nil
}

// shardOf hashes a key to its shard. The finalizer differs from the
// map's own bucket hash (a splitmix64 step) and uses the high bits, so
// shard selection does not correlate with bucket selection — otherwise
// each shard's keys would cluster in 1/N of its buckets.
func (s *Server) shardOf(key uint64) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	x := key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return s.shards[(x>>32)%uint64(len(s.shards))]
}

// Serve accepts connections until Close. It returns nil on clean
// shutdown. A connection slot is acquired before each accept, so at
// most MaxConns connections are ever in service; further clients wait
// in the listen backlog until a slot frees.
func (s *Server) Serve() error {
	for {
		s.sem <- struct{}{}
		if s.closing.Load() {
			<-s.sem
			return nil
		}
		conn, err := s.ln.Accept()
		if err != nil {
			<-s.sem
			if s.closing.Load() {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
				<-s.sem
			}()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes the listener and every active
// connection, waits for the handlers to finish, and then drains the
// shard batch workers (every request already queued executes before
// its worker exits). Close is idempotent.
func (s *Server) Close() error {
	if s.closing.Swap(true) {
		return nil
	}
	err := s.ln.Close()
	if s.metrics != nil {
		s.metrics.close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	// Wake every parked wait barrier: their handlers re-check the
	// closing flag and exit, which is what lets wg.Wait finish when a
	// client was blocked in `wait` with no timeout at shutdown.
	broadcastWake(&s.epochWake)
	broadcastWake(&s.ackWake)
	s.wg.Wait()
	// One final epoch close (the clock's stop path) drains every
	// overlay: relaxed writes acked before a clean shutdown persist —
	// only a crash is licensed to lose them. Runs before replication
	// stops so the final drain still replicates.
	s.stopEpochClock()
	// The follower's applier and the primary's snapshot callback both
	// execute through the shards, so replication must stop while the
	// pipelines are still alive.
	s.closeReplication()
	// All enqueuers are gone: handlers have exited, the acceptor is
	// stopped, and replication is down, so the queues can close safely.
	for _, sh := range s.shards {
		sh.closePipeline()
	}
	return err
}

// connState is one connection's registration with the shards: one lazy
// Atlas thread per shard, tagged with the shard generation it was
// registered under so a crash-rebuilt shard triggers re-registration.
// It also carries the connection's telemetry protocol label and the
// per-connection scratch arenas the batch-serving path reuses.
type connState struct {
	shards []connShard

	// ptel labels this connection's command latency by wire protocol;
	// the zero value (ProtoInternal) covers non-wire callers such as
	// the replication applier.
	ptel telemetry.Protocol

	// Scratch reused across serveBatch calls: the coalesced op group,
	// the request→span tags, and the reply item arena.
	ops   []batchOp
	tags  []cmdTag
	items []proto.Item

	// sess is the session id the connection bound with the session
	// handshake (0 = none); seq-tagged requests dedup against it. sops
	// is the sessioned path's own op scratch — sessioned groups never
	// share cs.ops, which the surrounding batch still owns.
	sess uint64
	sops []batchOp

	// importSlot is set (>= 0) when an acceptslot command committed this
	// connection to an inbound migration: serveBatch returns and handle
	// splices the connection onto the migration stream reader.
	importSlot int
}

type connShard struct {
	gen uint64
	th  *atlas.Thread
}

func (s *Server) newConnState() *connState {
	return &connState{shards: make([]connShard, len(s.shards)), importSlot: -1}
}

// releaseConn returns every registered thread slot at connection end.
func (s *Server) releaseConn(cs *connState) {
	for i, sl := range cs.shards {
		if sl.th != nil {
			s.shards[i].releaseThread(cs)
		}
	}
}

// tryEnqueue hands ops to sh's batch worker if the pipeline can take
// them, returning the request to wait on. It returns nil — and counts
// the fallback when the pipeline is enabled — if the caller must run
// the group synchronously instead: pipeline disabled, group larger
// than one batch may hold, or queue full (backpressure degrades to the
// pre-pipeline path rather than blocking the handler).
func (s *Server) tryEnqueue(sh *shard, ops []batchOp) *batchReq {
	if s.cfg.batchMax <= 0 {
		return nil
	}
	if len(ops) > s.cfg.batchMax {
		sh.tel.Server.BatchFallbacks.Inc()
		return nil
	}
	req := &batchReq{ops: ops, done: make(chan struct{})}
	select {
	case sh.queue <- req:
		return req
	default:
		sh.tel.Server.BatchFallbacks.Inc()
		return nil
	}
}

// execSync executes ops on sh the pre-pipeline way: under the shard
// read lock with the connection's own thread, one stripe acquisition
// and one op-latency observation per op.
func (s *Server) execSync(cs *connState, sh *shard, ops []batchOp) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	th, err := sh.threadFor(cs)
	if err != nil {
		for i := range ops {
			ops[i].err = err
		}
		return
	}
	for i := range ops {
		start := time.Now()
		sh.execOp(th, &ops[i], false)
		sh.tel.OpLatency.Observe(time.Since(start))
	}
}

// exec runs one command's ops through execGroup and observes the
// command's end-to-end service time (queueing included) into the first
// touched shard's per-command histogram, labeled with the connection's
// wire protocol. One observation per command: concurrent shard groups
// finish together, so elapsed time after the barrier IS the service
// time on the slowest shard; hosting it on one shard keeps aggregate
// counts right (a merged view does not care which shard held it).
func (s *Server) exec(cs *connState, cmd telemetry.Command, ops []batchOp) {
	start := time.Now()
	s.execGroup(cs, ops)
	s.shardOf(ops[0].key).tel.CmdLatency.ObserveProto(cs.ptel, cmd, time.Since(start))
}

// execGroup routes ops to their shards and blocks until every result
// is in: ops are grouped by shard, each group goes to its shard's
// batch pipeline when it has something to amortize — more than one op,
// or a drain already in flight to coalesce with — and otherwise runs
// inline on the synchronous path (flush-on-idle: a lone op on an idle
// shard pays no goroutine handoff). Groups on distinct shards proceed
// concurrently — the pipelining the old per-command fan-out provided,
// now through the shared worker queues. A group deeper than one batch
// may hold (a deeply pipelined burst) is chunked through the pipeline
// batchMax ops at a time rather than degrading to the per-op
// synchronous path. Results land in ops in place.
func (s *Server) execGroup(cs *connState, ops []batchOp) {
	// On a replicating primary every mutating group must be serialized
	// through its shard's drain lock — the synchronous path would commit
	// outside the replication log's order (and never append to it). The
	// group is forced into the pipeline, or through runGroupDirect when
	// the pipeline can't take it.
	force := false
	if s.replLog != nil {
		for i := range ops {
			if ops[i].kind != opGet {
				force = true
				break
			}
		}
	}

	// Fast path: everything on one shard (always true for single-key
	// commands and single-shard servers) — no group copies needed.
	oneShard := s.shardOf(ops[0].key)
	multi := false
	for i := 1; i < len(ops); i++ {
		if s.shardOf(ops[i].key) != oneShard {
			multi = true
			break
		}
	}
	if !multi {
		s.execShardChunked(cs, oneShard, ops, force)
		return
	}

	type group struct {
		sh    *shard
		idxs  []int
		ops   []batchOp
		req   *batchReq
		chunk bool
	}
	byShard := make([][]int, len(s.shards))
	for i := range ops {
		sh := s.shardOf(ops[i].key)
		byShard[sh.idx] = append(byShard[sh.idx], i)
	}
	var groups []*group
	var syncGroups []*group
	for si, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		g := &group{sh: s.shards[si], idxs: idxs, ops: make([]batchOp, len(idxs))}
		for j, i := range idxs {
			g.ops[j] = ops[i]
		}
		g.chunk = !force && s.cfg.batchMax > 0 && len(g.ops) > s.cfg.batchMax
		if !g.chunk && (force || len(g.ops) > 1 || g.sh.pipelineActive()) {
			g.req = s.tryEnqueue(g.sh, g.ops)
		}
		if g.req == nil {
			syncGroups = append(syncGroups, g)
		}
		groups = append(groups, g)
	}
	// Groups the pipeline did not take in one piece run one goroutine
	// per shard, like the old fan-out; distinct shards mean distinct
	// connState slots, so the goroutines share nothing mutable. Forced
	// groups the pipeline rejected keep the drain-lock ordering via
	// runGroupDirect; oversized groups chunk through the pipeline.
	var wg sync.WaitGroup
	for _, g := range syncGroups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			switch {
			case force:
				s.runGroupDirect(g.sh, g.ops, 0)
			case g.chunk:
				s.execShardChunked(cs, g.sh, g.ops, false)
			default:
				s.execSync(cs, g.sh, g.ops)
			}
		}(g)
	}
	// Combine each enqueued group in turn: every drain this goroutine
	// wins runs inline with no handoff, and a shard whose drain lock is
	// already taken gets its doorbell rung so its worker (or the active
	// combiner) finishes the group while we move to the next shard.
	for _, g := range groups {
		if g.req != nil && !g.sh.combine(g.req) {
			g.sh.ringDoorbell()
		}
	}
	for _, g := range groups {
		if g.req != nil {
			<-g.req.done
		}
	}
	wg.Wait()
	for _, g := range groups {
		for j, i := range g.idxs {
			ops[i] = g.ops[j]
		}
	}
}

// execShardChunked runs one shard's op group, splitting a group deeper
// than the pipeline's batch cap into batchMax-sized chunks that each
// ride the pipeline — sequential per shard, so results resolve in op
// order. The pre-pipeline fallback ran such groups op by op under the
// shard lock; with pipelined clients routinely presenting hundreds of
// ops at once, chunking keeps the per-batch persistence amortization.
func (s *Server) execShardChunked(cs *connState, sh *shard, ops []batchOp, force bool) {
	max := s.cfg.batchMax
	if force || max <= 0 || len(ops) <= max {
		s.execShardGroup(cs, sh, ops, force)
		return
	}
	for off := 0; off < len(ops); off += max {
		end := off + max
		if end > len(ops) {
			end = len(ops)
		}
		s.execShardGroup(cs, sh, ops[off:end], false)
	}
}

// execShardGroup runs one pipeline-sized op group on one shard.
func (s *Server) execShardGroup(cs *connState, sh *shard, ops []batchOp, force bool) {
	var req *batchReq
	if force || len(ops) > 1 || sh.pipelineActive() {
		req = s.tryEnqueue(sh, ops)
	}
	switch {
	case req != nil:
		// Combining first: if the drain lock is free this goroutine
		// executes its own batch (plus anything queued alongside)
		// with no handoff; only a contended drain wakes the worker.
		if !sh.combine(req) {
			sh.ringDoorbell()
			<-req.done
		}
	case force:
		s.runGroupDirect(sh, ops, 0)
	default:
		s.execSync(cs, sh, ops)
	}
}

// readOptimistic attempts to serve every (pure-get) op on the lock-free
// path, filling results in place, and returns the indexes it could not
// validate. Those must re-run through exec; nil means the whole command
// was served without a lock.
//
// A single-key command uses the per-key validated path. A multi-key
// group additionally needs CROSS-key consistency — per-key validation
// alone could read key A before a concurrent mset commits and key B
// after, both individually valid, and return a mixture no locked reader
// could ever observe. Multi-key groups therefore run a snapshot
// protocol: capture every key's stripe version (and shard generation,
// guarding crash rebuilds) before the first read, read each key on the
// per-key path, and revalidate every capture after the last read. Each
// key's stripe is then provably quiescent from its capture through its
// revalidate, and since every capture precedes every read precedes
// every revalidate, all values coexisted at the last capture point. Any
// mismatch sends the WHOLE group to the locked fallback — and because
// runBatch holds all of a batch's stripes odd for its entire section
// (see hashmap.BeginStripeWrites), a half-applied mset can never
// revalidate here. Overlay-served relaxed state is exempt: the overlay
// is per-key newest-state by design, and the snapshot guarantee targets
// the durable map.
func (s *Server) readOptimistic(ops []batchOp) (pending []int) {
	if len(ops) == 1 {
		sh := s.shardOf(ops[0].key)
		val, ok, valid := sh.getOptimistic(ops[0].key)
		if !valid {
			return []int{0}
		}
		ops[0].val, ops[0].ok = val, ok
		return nil
	}
	all := func() []int {
		pending = make([]int, len(ops))
		for i := range ops {
			pending[i] = i
		}
		return pending
	}
	gens := make([]uint64, len(ops))
	vers := make([]uint64, len(ops))
	for i := range ops {
		gen, ver, even := s.shardOf(ops[i].key).captureVersion(ops[i].key)
		if !even {
			return all()
		}
		gens[i], vers[i] = gen, ver
	}
	for i := range ops {
		val, ok, valid := s.shardOf(ops[i].key).getOptimistic(ops[i].key)
		if !valid {
			return all()
		}
		ops[i].val, ops[i].ok = val, ok
		if s.optReadHook != nil {
			s.optReadHook(i)
		}
	}
	for i := range ops {
		gen, ver, even := s.shardOf(ops[i].key).captureVersion(ops[i].key)
		if !even || gen != gens[i] || ver != vers[i] {
			return all()
		}
	}
	return nil
}

// crashAll power-fails and recovers every shard concurrently — the
// whole-machine analogue of the per-shard crash command.
func (s *Server) crashAll() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			errs[i] = sh.crashAndRecover()
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// serverView is every shard's telemetry merged into one snapshot.
type serverView struct {
	items      int
	zitems     int
	agg        telemetry.Snapshot
	opLat      telemetry.HistogramSnapshot
	recLat     telemetry.HistogramSnapshot
	readLat    telemetry.HistogramSnapshot
	cmdLat     telemetry.CommandLatencySnapshot
	cmdProto   [telemetry.NumProtocols]telemetry.CommandLatencySnapshot
	batchSize  telemetry.HistogramSnapshot
	rangeLen   telemetry.HistogramSnapshot
	epochFlush telemetry.HistogramSnapshot
}

// aggregateViews collects and merges every shard's telemetry view.
func (s *Server) aggregateViews() serverView {
	v := serverView{agg: telemetry.Snapshot{}}
	for _, sh := range s.shards {
		sv := sh.view()
		v.items += sv.items
		v.zitems += sv.zitems
		v.agg.Add(sv.counters)
		v.opLat.Merge(sv.opLat)
		v.recLat.Merge(sv.recLat)
		v.readLat.Merge(sv.readLat)
		v.cmdLat.Merge(sv.cmdLat)
		for p := range sv.cmdProto {
			v.cmdProto[p].Merge(sv.cmdProto[p])
		}
		v.batchSize.Merge(sv.batchSize)
		v.rangeLen.Merge(sv.rangeLen)
		v.epochFlush.Merge(sv.epochFlush)
	}
	return v
}

// statsReset zeroes every shard's counters and histograms. Shard
// generations survive — they identify the stack incarnation, not the
// traffic — as does anything a crash needs for recovery: the reset
// touches only telemetry.
func (s *Server) statsReset() string {
	for _, sh := range s.shards {
		sh.tel.Reset()
	}
	for p := range s.decodedBatch {
		s.decodedBatch[p].Reset()
	}
	s.replTel.Reset()
	if s.clusterSt != nil {
		s.clusterSt.tel.Reset()
	}
	return "RESET"
}

// us renders a duration in (fractional) microseconds for STAT lines.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// statsAggregate renders the whole-server stats view: the historical
// headline STAT keys, op-latency percentiles, and then the registry's
// full per-layer counter vocabulary — every shard merged into one
// monotonic snapshot.
func (s *Server) statsAggregate() string {
	v := s.aggregateViews()
	agg, opLat, recLat := v.agg, v.opLat, v.recLat
	gets, hits := agg["server_gets"], agg["server_hits"]
	hitRate := 0.0
	if gets > 0 {
		hitRate = float64(hits) / float64(gets)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "STAT shards %d\r\n", len(s.shards))
	fmt.Fprintf(&b, "STAT items %d\r\n", v.items)
	fmt.Fprintf(&b, "STAT gets %d\r\n", gets)
	fmt.Fprintf(&b, "STAT hits %d\r\n", hits)
	fmt.Fprintf(&b, "STAT hit_rate %.4f\r\n", hitRate)
	fmt.Fprintf(&b, "STAT sets %d\r\n", agg["server_sets"])
	fmt.Fprintf(&b, "STAT deletes %d\r\n", agg["server_deletes"])
	fmt.Fprintf(&b, "STAT zitems %d\r\n", v.zitems)
	fmt.Fprintf(&b, "STAT zgets %d\r\n", agg["server_zgets"])
	fmt.Fprintf(&b, "STAT zsets %d\r\n", agg["server_zsets"])
	fmt.Fprintf(&b, "STAT zdeletes %d\r\n", agg["server_zdeletes"])
	fmt.Fprintf(&b, "STAT crashes_survived %d\r\n", agg["recovery_count"])
	fmt.Fprintf(&b, "STAT recovery_avg_us %.1f\r\n", us(recLat.Mean()))
	fmt.Fprintf(&b, "STAT recovery_max_us %.1f\r\n", us(recLat.Max()))
	fmt.Fprintf(&b, "STAT op_count %d\r\n", opLat.Count())
	fmt.Fprintf(&b, "STAT op_p50_us %.1f\r\n", us(opLat.Quantile(0.50)))
	fmt.Fprintf(&b, "STAT op_p95_us %.1f\r\n", us(opLat.Quantile(0.95)))
	fmt.Fprintf(&b, "STAT op_p99_us %.1f\r\n", us(opLat.Quantile(0.99)))
	fmt.Fprintf(&b, "STAT read_count %d\r\n", v.readLat.Count())
	fmt.Fprintf(&b, "STAT read_p50_us %.1f\r\n", us(v.readLat.Quantile(0.50)))
	fmt.Fprintf(&b, "STAT read_p95_us %.1f\r\n", us(v.readLat.Quantile(0.95)))
	fmt.Fprintf(&b, "STAT read_p99_us %.1f\r\n", us(v.readLat.Quantile(0.99)))
	fmt.Fprintf(&b, "STAT batch_count %d\r\n", v.batchSize.Count())
	fmt.Fprintf(&b, "STAT batch_size_p50 %d\r\n", uint64(v.batchSize.Quantile(0.50)))
	fmt.Fprintf(&b, "STAT batch_size_max %d\r\n", uint64(v.batchSize.Max()))
	if v.rangeLen.Count() > 0 {
		fmt.Fprintf(&b, "STAT zrange_count %d\r\n", v.rangeLen.Count())
		fmt.Fprintf(&b, "STAT zrange_len_p50 %d\r\n", uint64(v.rangeLen.Quantile(0.50)))
		fmt.Fprintf(&b, "STAT zrange_len_max %d\r\n", uint64(v.rangeLen.Max()))
	}
	for _, c := range telemetry.Commands() {
		cl := v.cmdLat[c]
		if cl.Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "STAT cmd_%s_count %d\r\n", c, cl.Count())
		fmt.Fprintf(&b, "STAT cmd_%s_p50_us %.1f\r\n", c, us(cl.Quantile(0.50)))
		fmt.Fprintf(&b, "STAT cmd_%s_p99_us %.1f\r\n", c, us(cl.Quantile(0.99)))
	}
	// Per-protocol surfaces: how commands split across wire codecs, and
	// how many requests each decoded batch carried (the pipelining depth
	// clients actually present).
	for _, p := range telemetry.Protocols() {
		for _, c := range telemetry.Commands() {
			cl := v.cmdProto[p][c]
			if cl.Count() == 0 {
				continue
			}
			fmt.Fprintf(&b, "STAT proto_%s_cmd_%s_count %d\r\n", p, c, cl.Count())
		}
		db := s.decodedBatch[p].Snapshot()
		if db.Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "STAT proto_%s_decoded_batches %d\r\n", p, db.Count())
		fmt.Fprintf(&b, "STAT proto_%s_decoded_batch_p50 %d\r\n", p, uint64(db.Quantile(0.50)))
		fmt.Fprintf(&b, "STAT proto_%s_decoded_batch_max %d\r\n", p, uint64(db.Max()))
	}
	// Durability-tier surface: where the epoch clock stands, how far the
	// persistent frontier trails it, and what closing an epoch costs.
	if s.epochEnabled() {
		fmt.Fprintf(&b, "STAT epoch_current %d\r\n", s.curEpoch.Load())
		fmt.Fprintf(&b, "STAT epoch_persisted %d\r\n", s.perEpoch.Load())
		fmt.Fprintf(&b, "STAT epoch_interval_us %.1f\r\n", us(s.cfg.epochInterval))
		if ef := v.epochFlush; ef.Count() > 0 {
			fmt.Fprintf(&b, "STAT epoch_flush_count %d\r\n", ef.Count())
			fmt.Fprintf(&b, "STAT epoch_flush_p50_us %.1f\r\n", us(ef.Quantile(0.50)))
			fmt.Fprintf(&b, "STAT epoch_flush_p99_us %.1f\r\n", us(ef.Quantile(0.99)))
		}
	}
	if role := s.replRole(); role != "" {
		fmt.Fprintf(&b, "STAT repl_role %s\r\n", role)
		if s.replPrimary != nil {
			fmt.Fprintf(&b, "STAT repl_followers %d\r\n", s.replPrimary.Followers())
			gen, seq := s.replLog.Position()
			fmt.Fprintf(&b, "STAT repl_log_gen %d\r\n", gen)
			fmt.Fprintf(&b, "STAT repl_log_seq %d\r\n", seq)
		}
		if s.replFollower != nil {
			gen, seq := s.replFollower.Position()
			fmt.Fprintf(&b, "STAT repl_pos_gen %d\r\n", gen)
			fmt.Fprintf(&b, "STAT repl_pos_seq %d\r\n", seq)
		}
		rs := s.replTel.Snapshot()
		for _, name := range sortedKeys(rs) {
			fmt.Fprintf(&b, "STAT %s %d\r\n", name, rs[name])
		}
		if lag := s.replTel.LagSnapshot(); lag.Count() > 0 {
			fmt.Fprintf(&b, "STAT repl_lag_count %d\r\n", lag.Count())
			fmt.Fprintf(&b, "STAT repl_lag_p50_us %.1f\r\n", us(lag.Quantile(0.50)))
			fmt.Fprintf(&b, "STAT repl_lag_p95_us %.1f\r\n", us(lag.Quantile(0.95)))
			fmt.Fprintf(&b, "STAT repl_lag_p99_us %.1f\r\n", us(lag.Quantile(0.99)))
		}
	}
	// Cluster-node surface: ownership epoch, slot count, and the
	// migration/redirect counters under their canonical names.
	if st := s.clusterSt; st != nil {
		fmt.Fprintf(&b, "STAT cluster_epoch %d\r\n", st.epoch.Load())
		fmt.Fprintf(&b, "STAT cluster_slots_owned %d\r\n", len(st.slotsIn(slotOwned)))
		st.tel.Walk(func(name string, v uint64) {
			fmt.Fprintf(&b, "STAT %s %d\r\n", name, v)
		})
	}
	for _, name := range agg.Names() {
		fmt.Fprintf(&b, "STAT %s %d\r\n", name, agg[name])
	}
	b.WriteString("END")
	return b.String()
}

// sortedKeys renders a counter map deterministically.
func sortedKeys(m map[string]uint64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// statsShards renders one line per shard: the historical per-shard
// fields plus that shard's per-layer highlights and op percentiles.
func (s *Server) statsShards() string {
	var b strings.Builder
	for _, sh := range s.shards {
		v := sh.view()
		c := v.counters
		fmt.Fprintf(&b, "STAT shard %d items %d zitems %d gets %d hits %d sets %d deletes %d recoveries %d recovery_avg_us %.1f nvm_stores %d nvm_flushes %d atlas_log_appends %d map_gets %d map_puts %d op_p50_us %.1f op_p99_us %.1f\r\n",
			sh.idx, v.items, v.zitems, c["server_gets"], c["server_hits"], c["server_sets"], c["server_deletes"],
			c["recovery_count"], us(v.recLat.Mean()), c["nvm_stores"], c["nvm_flushes"],
			c["atlas_log_appends"], c["map_gets"], c["map_puts"],
			us(v.opLat.Quantile(0.50)), us(v.opLat.Quantile(0.99)))
	}
	b.WriteString("END")
	return b.String()
}
