package cacheserver

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"tsp/internal/proto"
)

// newDispatchServer builds a small server for driving the codec loop
// directly, without going through TCP: the parsers and execution paths
// are what is under test, not the socket loop. The epoch clock runs at
// 1ms so the durability-tier grammar (relaxed/fire suffixes, wait)
// reaches the overlay and barrier paths instead of degrading to
// durable; every wait the soup can express is bounded by the clock, so
// the liveness invariant holds.
func newDispatchServer(tb testing.TB) (*Server, *connState) {
	tb.Helper()
	s, err := New(WithShards(2), WithBatchMax(4), WithQueueDepth(2), WithDeviceWords(1<<16),
		WithEpochInterval(time.Millisecond))
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	tb.Cleanup(func() { s.Close() })
	return s, s.newConnState()
}

// serveInput drives the full codec loop — Decoder → serveBatch →
// Encoder — over in-memory bytes: the socketless analogue of handle,
// one simulated connection per call.
func serveInput(s *Server, cs *connState, ad proto.Adapter, input []byte) string {
	dec := proto.NewDecoder(bytes.NewReader(input), ad, s.cfg.maxRequestBytes)
	var out bytes.Buffer
	enc := proto.NewEncoder(&out, ad, s.cfg.writeBuf)
	for {
		batch, err := dec.Next()
		if len(batch) > 0 {
			quit := s.serveBatch(cs, enc, batch)
			enc.Flush()
			if quit {
				return out.String()
			}
		}
		if err != nil {
			enc.Flush()
			return out.String()
		}
	}
}

// checkQueuesDrained fails if any shard queue still holds a request —
// a leaked future would wedge the worker's next drain accounting and,
// on a real connection, hang the client forever.
func checkQueuesDrained(t *testing.T, s *Server, ctx string) {
	t.Helper()
	for _, sh := range s.shards {
		if sh.queue != nil && len(sh.queue) != 0 {
			t.Fatalf("shard %d queue holds %d stranded requests after %s", sh.idx, len(sh.queue), ctx)
		}
	}
}

// FuzzNativeLoop throws arbitrary bytes at the native-protocol codec
// loop. The invariants are liveness ones: the loop must return (no
// panic, no deadlock against the batch workers, no infinite decode
// loop) and must not leave a request stranded in any shard queue.
func FuzzNativeLoop(f *testing.F) {
	for _, seed := range []string{
		"get 1", "set 1 2", "incr 1 2", "delete 1",
		"mget 1 2 3", "mset 1 2 3 4",
		"mget " + strings.Repeat("7 ", 64),
		"mset " + strings.Repeat("9 9 ", 64),
		"stats", "stats shards", "stats reset", "stats bogus",
		"crash 99", "crash -1", "crash 0 0",
		"", "   ", "\t", "set", "set 1", "set a b", "mset 1",
		"get 18446744073709551615", "get 18446744073709551616",
		"GET 1", "Set 1 2", "frobnicate", "quit", "ping",
		"get \x00", "set \xff\xfe 1", "incr 1 ☃",
		"set 1 2\r\nget 1\r\nmget 1 2\r\nquit",
		"set 1 2\nset 3",
		// Durability-tier grammar: valid suffixes, suffixes on commands
		// that take none, and the wait barrier's whole argument space.
		"set 1 2 relaxed", "set 1 2 fire", "set 1 2 durable",
		"incr 1 2 relaxed", "delete 1 fire", "mset 1 2 3 4 relaxed",
		"zadd 1 2 relaxed", "zincr 1 2 fire", "zdel 1 relaxed",
		"get 1 relaxed", "set 1 2 bogus", "set 1 relaxed",
		"wait", "wait 0", "wait 1", "wait 1 5", "wait 0 0",
		"wait 18446744073709551615", "wait 99 1",
		"wait repl", "wait repl 5", "wait repl 0", "wait -1",
		"wait relaxed", "wait 1 2 3",
		"set 1 2 relaxed\r\nwait\r\nget 1",
		"set 1 2 relaxed\r\ncrash\r\nget 1",
	} {
		f.Add([]byte(seed + "\r\n"))
	}
	s, cs := newDispatchServer(f)
	f.Fuzz(func(t *testing.T, input []byte) {
		serveInput(s, cs, proto.Native{}, input)
		checkQueuesDrained(t, s, fmt.Sprintf("%q", input))
	})
}

// FuzzRESPLoop is the same campaign against the RESP adapter: valid
// arrays, inline commands, torn frames, lying length headers, and raw
// garbage must never panic, hang, or strand a queue entry — at worst
// the codec answers an error and tears the connection down.
func FuzzRESPLoop(f *testing.F) {
	for _, seed := range []string{
		"*2\r\n$3\r\nGET\r\n$1\r\n1\r\n",
		"*3\r\n$3\r\nSET\r\n$1\r\n1\r\n$1\r\n2\r\n",
		"*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n",
		"*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n",
		"*1\r\n$4\r\nPING\r\n",
		"*1\r\n$4\r\nINFO\r\n",
		"*1\r\n$4\r\nQUIT\r\n",
		"*3\r\n$6\r\nINCRBY\r\n$1\r\n1\r\n$1\r\n5\r\n",
		"*3\r\n$4\r\nMSET\r\n$1\r\n1\r\n$1\r\n2\r\n",
		"*2\r\n$4\r\nMGET\r\n$1\r\n1\r\n",
		"*2\r\n$3\r\nDEL\r\n$1\r\n1\r\n",
		"PING\r\n",
		"GET 1\r\n",
		"*0\r\n",
		"*1\r\n$3\r\nGET\r\n",   // arity error
		"*2\r\n$3\r\nGET\r\n",   // torn frame
		"*2\r\n$300\r\nGET\r\n", // lying bulk length
		"*-1\r\n",
		"*999999999999999999\r\n",
		"$5\r\nhello\r\n", // bulk outside array
		"\x00\x01\x02",
		"*2\r\n$3\r\nGET\r\n$1\r\n1\r\n*1\r\n$4\r\nPING\r\n", // pipelined
		// Durability tiers and WAIT in RESP: trailing tier bulk on SET,
		// WAIT numreplicas timeout (0 = epoch barrier, >0 = repl acks).
		"*4\r\n$3\r\nSET\r\n$1\r\n1\r\n$1\r\n2\r\n$7\r\nrelaxed\r\n",
		"*4\r\n$3\r\nSET\r\n$1\r\n1\r\n$1\r\n2\r\n$4\r\nfire\r\n",
		"*4\r\n$3\r\nSET\r\n$1\r\n1\r\n$1\r\n2\r\n$5\r\nbogus\r\n",
		"*3\r\n$4\r\nWAIT\r\n$1\r\n0\r\n$1\r\n5\r\n",
		"*3\r\n$4\r\nWAIT\r\n$1\r\n2\r\n$1\r\n1\r\n",
		"*3\r\n$4\r\nWAIT\r\n$2\r\n-1\r\n$1\r\n0\r\n",
		"*1\r\n$4\r\nWAIT\r\n",
		"*2\r\n$4\r\nWAIT\r\n$1\r\n0\r\n",
	} {
		f.Add([]byte(seed))
	}
	s, cs := newDispatchServer(f)
	f.Fuzz(func(t *testing.T, input []byte) {
		serveInput(s, cs, proto.RESP{}, input)
		checkQueuesDrained(t, s, fmt.Sprintf("%q", input))
	})
}

// TestRandomLinesBothAdapters is the deterministic slice of the fuzz
// campaign, run on every test invocation: thousands of seeded-random
// token soups — including valid commands, torn fragments, and real
// crash commands interleaved with mutations — must never panic,
// deadlock, or corrupt the store, on either adapter. Afterwards the
// server must still serve correctly and verify clean.
func TestRandomLinesBothAdapters(t *testing.T) {
	s, cs := newDispatchServer(t)
	rng := rand.New(rand.NewSource(42))
	tokens := []string{
		"get", "set", "incr", "delete", "mget", "mset", "stats", "shards",
		"reset", "crash", "quit", "frobnicate", "ping",
		"relaxed", "durable", "fire", "wait", "repl",
		"0", "1", "2", "7", "99", "-1", "0x10", "18446744073709551615",
		"18446744073709551616", "abc", "", " ",
		"*2", "$3", "\r", "*", "$",
	}
	for i := 0; i < 3000; i++ {
		n := rng.Intn(6)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = tokens[rng.Intn(len(tokens))]
		}
		line := strings.Join(parts, " ") + "\r\n"
		ad := proto.Adapter(proto.Native{})
		if i%2 == 1 {
			ad = proto.RESP{}
		}
		serveInput(s, cs, ad, []byte(line))
		checkQueuesDrained(t, s, fmt.Sprintf("iteration %d %q", i, line))
	}
	if got := s.dispatch(cs, "set 12345 678"); got != "STORED" {
		t.Fatalf("set after soup: %q", got)
	}
	if got := s.dispatch(cs, "get 12345"); got != "VALUE 12345 678" {
		t.Fatalf("get after soup: %q", got)
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll after soup: %v", err)
	}
}

// TestInterleavedPipelinedConnections drives several connections that
// each write bursts of pipelined commands (some malformed, some wide
// enough to be chunked through the pipeline) and checks every
// connection gets exactly one in-order response per command — the
// per-connection FIFO the batch pipeline must preserve while
// coalescing across connections.
func TestInterleavedPipelinedConnections(t *testing.T) {
	s := startServer(t, WithShards(2), WithBatchMax(4), WithQueueDepth(2))
	const clients, bursts = 4, 20
	errs := make(chan error, clients)
	conns := make([]*client, clients)
	for g := range conns {
		conns[g] = dial(t, s.Addr().String())
	}
	for g := 0; g < clients; g++ {
		go func(g int) {
			c := conns[g]
			base := 100 + g // one key per client: dependent command chain
			for b := 1; b <= bursts; b++ {
				var req strings.Builder
				fmt.Fprintf(&req, "incr %d 1\r\n", base)
				fmt.Fprintf(&req, "bogus %d\r\n", b)
				fmt.Fprintf(&req, "mset 1000 1 2000 2 3000 3 4000 4 5000 5 6000 6\r\n")
				fmt.Fprintf(&req, "get %d\r\n", base)
				if _, err := c.conn.Write([]byte(req.String())); err != nil {
					errs <- err
					return
				}
				want := []string{
					fmt.Sprintf("%d", b),
					"ERROR unknown command",
					"STORED 6",
					fmt.Sprintf("VALUE %d %d", base, b),
				}
				for i, w := range want {
					line, err := c.r.ReadString('\n')
					if err != nil {
						errs <- fmt.Errorf("client %d burst %d response %d: %w", g, b, i, err)
						return
					}
					if got := strings.TrimSpace(line); got != w {
						errs <- fmt.Errorf("client %d burst %d response %d = %q, want %q", g, b, i, got, w)
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < clients; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
}
