package cacheserver

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// newDispatchServer builds a small server for driving dispatch
// directly, without going through TCP: the parser and execution paths
// are what is under test, not the socket loop.
func newDispatchServer(tb testing.TB) (*Server, *connState) {
	tb.Helper()
	s, err := New(WithShards(2), WithBatchMax(4), WithQueueDepth(2), WithDeviceWords(1<<16))
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	tb.Cleanup(func() { s.Close() })
	return s, s.newConnState()
}

// FuzzDispatch throws arbitrary command lines at the dispatcher. The
// invariants are liveness ones: dispatch must return (no panic, no
// deadlock against the batch workers), must answer something, and must
// not leave a request stranded in any shard queue — a leaked future
// would wedge the worker's next drain accounting and, on a real
// connection, hang the client forever.
func FuzzDispatch(f *testing.F) {
	for _, seed := range []string{
		"get 1", "set 1 2", "incr 1 2", "delete 1",
		"mget 1 2 3", "mset 1 2 3 4",
		"mget " + strings.Repeat("7 ", 64),
		"mset " + strings.Repeat("9 9 ", 64),
		"stats", "stats shards", "stats reset", "stats bogus",
		"crash 99", "crash -1", "crash 0 0",
		"", "   ", "\t", "set", "set 1", "set a b", "mset 1",
		"get 18446744073709551615", "get 18446744073709551616",
		"GET 1", "Set 1 2", "frobnicate",
		"get \x00", "set \xff\xfe 1", "incr 1 ☃",
	} {
		f.Add(seed)
	}
	s, cs := newDispatchServer(f)
	f.Fuzz(func(t *testing.T, line string) {
		resp := s.dispatch(cs, line)
		if resp == "" {
			t.Errorf("empty response for %q", line)
		}
		for _, sh := range s.shards {
			if sh.queue != nil && len(sh.queue) != 0 {
				t.Fatalf("shard %d queue holds %d stranded requests after %q", sh.idx, len(sh.queue), line)
			}
		}
	})
}

// TestDispatchRandomLines is the deterministic slice of the fuzz
// campaign, run on every test invocation: thousands of seeded-random
// token soups — including valid commands, torn fragments, and real
// crash commands interleaved with mutations — must never panic,
// deadlock, or corrupt the store. Afterwards the server must still
// serve correctly and verify clean.
func TestDispatchRandomLines(t *testing.T) {
	s, cs := newDispatchServer(t)
	rng := rand.New(rand.NewSource(42))
	tokens := []string{
		"get", "set", "incr", "delete", "mget", "mset", "stats", "shards",
		"reset", "crash", "quit", "frobnicate",
		"0", "1", "2", "7", "99", "-1", "0x10", "18446744073709551615",
		"18446744073709551616", "abc", "", " ",
	}
	for i := 0; i < 3000; i++ {
		n := rng.Intn(6)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = tokens[rng.Intn(len(tokens))]
		}
		line := strings.Join(parts, " ")
		if resp := s.dispatch(cs, line); resp == "" {
			t.Fatalf("iteration %d: empty response for %q", i, line)
		}
		for _, sh := range s.shards {
			if sh.queue != nil && len(sh.queue) != 0 {
				t.Fatalf("iteration %d: stranded request after %q", i, line)
			}
		}
	}
	if got := s.dispatch(cs, "set 12345 678"); got != "STORED" {
		t.Fatalf("set after soup: %q", got)
	}
	if got := s.dispatch(cs, "get 12345"); got != "VALUE 12345 678" {
		t.Fatalf("get after soup: %q", got)
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll after soup: %v", err)
	}
}

// TestInterleavedPipelinedConnections drives several connections that
// each write bursts of pipelined commands (some malformed, some wide
// enough to take the sync fallback) and checks every connection gets
// exactly one in-order response per command — the per-connection FIFO
// the batch pipeline must preserve while coalescing across
// connections.
func TestInterleavedPipelinedConnections(t *testing.T) {
	s := startServer(t, WithShards(2), WithBatchMax(4), WithQueueDepth(2))
	const clients, bursts = 4, 20
	errs := make(chan error, clients)
	conns := make([]*client, clients)
	for g := range conns {
		conns[g] = dial(t, s.Addr().String())
	}
	for g := 0; g < clients; g++ {
		go func(g int) {
			c := conns[g]
			base := 100 + g // one key per client: dependent command chain
			for b := 1; b <= bursts; b++ {
				var req strings.Builder
				fmt.Fprintf(&req, "incr %d 1\r\n", base)
				fmt.Fprintf(&req, "bogus %d\r\n", b)
				fmt.Fprintf(&req, "mset 1000 1 2000 2 3000 3 4000 4 5000 5 6000 6\r\n")
				fmt.Fprintf(&req, "get %d\r\n", base)
				if _, err := c.conn.Write([]byte(req.String())); err != nil {
					errs <- err
					return
				}
				want := []string{
					fmt.Sprintf("%d", b),
					"ERROR unknown command",
					"STORED 6",
					fmt.Sprintf("VALUE %d %d", base, b),
				}
				for i, w := range want {
					line, err := c.r.ReadString('\n')
					if err != nil {
						errs <- fmt.Errorf("client %d burst %d response %d: %w", g, b, i, err)
						return
					}
					if got := strings.TrimSpace(line); got != w {
						errs <- fmt.Errorf("client %d burst %d response %d = %q, want %q", g, b, i, got, w)
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < clients; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
}
