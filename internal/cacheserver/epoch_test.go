package cacheserver

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Durability-tier tests: the relaxed/fire acks and their epoch
// receipts, cross-tier read-your-writes, the wait barrier, the
// crash-loss bound, and the telemetry surface. Timing-dependent
// assertions poll conditions instead of sleeping fixed intervals.

// waitFor polls cond every millisecond until it holds or d elapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// epochStamp asserts reply is `prefix @<e>` and returns e.
func epochStamp(t *testing.T, reply, prefix string) uint64 {
	t.Helper()
	rest, ok := strings.CutPrefix(reply, prefix+" @")
	if !ok {
		t.Fatalf("reply %q: want %q with an epoch stamp", reply, prefix)
	}
	e, err := strconv.ParseUint(rest, 10, 64)
	if err != nil || e == 0 {
		t.Fatalf("reply %q: bad epoch stamp (%v)", reply, err)
	}
	return e
}

// crashFrontier asserts reply is `OK RECOVERED EPOCH <p>` and returns p.
func crashFrontier(t *testing.T, reply string) uint64 {
	t.Helper()
	rest, ok := strings.CutPrefix(reply, "OK RECOVERED EPOCH ")
	if !ok {
		t.Fatalf("crash reply %q: want OK RECOVERED EPOCH <p>", reply)
	}
	p, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		t.Fatalf("crash reply %q: bad frontier (%v)", reply, err)
	}
	return p
}

func TestRelaxedAckStampsAndReadYourWrites(t *testing.T) {
	s := startServer(t, WithShards(2))
	c := dial(t, s.Addr().String())

	e := epochStamp(t, c.cmd(t, "set 1 100 relaxed"), "STORED")
	if got := c.cmd(t, "get 1"); got != "VALUE 1 100" {
		t.Fatalf("get after relaxed set: %q", got)
	}
	// Relaxed incr reads the buffered value as its base.
	epochStamp(t, c.cmd(t, "incr 1 5 relaxed"), "105")
	if got := c.cmd(t, "get 1"); got != "VALUE 1 105" {
		t.Fatalf("get after relaxed incr: %q", got)
	}
	// Relaxed delete hides the key from every read path.
	if got := c.cmd(t, "delete 1 relaxed"); got != "DELETED" {
		t.Fatalf("relaxed delete: %q", got)
	}
	if got := c.cmd(t, "get 1"); got != "NOT_FOUND" {
		t.Fatalf("get after relaxed delete: %q", got)
	}
	// mset spreads across shards; one stamped ack covers all keys.
	epochStamp(t, c.cmd(t, "mset 10 1 11 2 12 3 relaxed"), "STORED 3")
	for k := 10; k <= 12; k++ {
		want := fmt.Sprintf("VALUE %d %d", k, k-9)
		if got := c.cmd(t, "get %d", k); got != want {
			t.Fatalf("get %d: %q, want %q", k, got, want)
		}
	}
	if e == 0 {
		t.Fatal("unreachable")
	}
}

func TestRelaxedOrderedKeyspace(t *testing.T) {
	s := startServer(t, WithShards(2))
	c := dial(t, s.Addr().String())

	// Interleave durable and relaxed ordered writes; reads must see one
	// merged logical keyspace.
	if got := c.cmd(t, "zadd 2 20"); got != "STORED" {
		t.Fatalf("zadd durable: %q", got)
	}
	epochStamp(t, c.cmd(t, "zadd 1 10 relaxed"), "STORED")
	epochStamp(t, c.cmd(t, "zadd 3 30 relaxed"), "STORED")
	if got := c.cmd(t, "zget 1"); got != "VALUE 1 10" {
		t.Fatalf("zget relaxed: %q", got)
	}
	got := c.lines(t, "zrange 0 10")
	want := []string{"VALUE 1 10", "VALUE 2 20", "VALUE 3 30", "END"}
	if len(got) != len(want) {
		t.Fatalf("zrange: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zrange[%d]: %q, want %q", i, got[i], want[i])
		}
	}
	if got := c.cmd(t, "zcount 0 10"); got != "3" {
		t.Fatalf("zcount: %q", got)
	}
	// A relaxed zdel hides a durable key from range and count.
	if got := c.cmd(t, "zdel 2 relaxed"); got != "DELETED" {
		t.Fatalf("relaxed zdel: %q", got)
	}
	if got := c.cmd(t, "zget 2"); got != "NOT_FOUND" {
		t.Fatalf("zget after relaxed zdel: %q", got)
	}
	if got := c.cmd(t, "zcount 0 10"); got != "2" {
		t.Fatalf("zcount after relaxed zdel: %q", got)
	}
	epochStamp(t, c.cmd(t, "zincr 3 4 relaxed"), "34")
	if got := c.cmd(t, "zget 3"); got != "VALUE 3 34" {
		t.Fatalf("zget after relaxed zincr: %q", got)
	}
}

func TestDurableWriteFoldsRelaxedOverlay(t *testing.T) {
	// A long epoch interval keeps the clock out of the picture: nothing
	// drains, so whatever the durable ops commit is exactly what must
	// survive the crash.
	s := startServer(t, WithEpochInterval(time.Minute))
	c := dial(t, s.Addr().String())

	epochStamp(t, c.cmd(t, "set 1 10 relaxed"), "STORED")
	// The durable incr's base must be the buffered 10, and its commit
	// must carry that base to fortified state.
	if got := c.cmd(t, "incr 1 5"); got != "15" {
		t.Fatalf("durable incr over relaxed base: %q", got)
	}
	// Same fold on the ordered keyspace.
	epochStamp(t, c.cmd(t, "zadd 2 20 relaxed"), "STORED")
	if got := c.cmd(t, "zincr 2 7"); got != "27" {
		t.Fatalf("durable zincr over relaxed base: %q", got)
	}
	// A durable set supersedes a pending relaxed write entirely: the
	// stale overlay entry must not resurface at the (eventual) drain.
	epochStamp(t, c.cmd(t, "set 3 111 relaxed"), "STORED")
	if got := c.cmd(t, "set 3 222"); got != "STORED" {
		t.Fatalf("durable set over relaxed: %q", got)
	}

	crashFrontier(t, c.cmd(t, "crash"))
	if got := c.cmd(t, "get 1"); got != "VALUE 1 15" {
		t.Fatalf("get 1 after crash: %q (durable fold lost)", got)
	}
	if got := c.cmd(t, "zget 2"); got != "VALUE 2 27" {
		t.Fatalf("zget 2 after crash: %q (durable fold lost)", got)
	}
	if got := c.cmd(t, "get 3"); got != "VALUE 3 222" {
		t.Fatalf("get 3 after crash: %q (durable set lost or overwritten)", got)
	}
}

func TestRelaxedLossBoundedByFrontier(t *testing.T) {
	// No epoch ever closes (1-minute interval), so the crash receipt
	// must report frontier 0 and the relaxed write — acked above it —
	// is legally and actually lost, while the durable write survives.
	s := startServer(t, WithEpochInterval(time.Minute))
	c := dial(t, s.Addr().String())

	stamp := epochStamp(t, c.cmd(t, "set 1 100 relaxed"), "STORED")
	if got := c.cmd(t, "set 2 200"); got != "STORED" {
		t.Fatalf("durable set: %q", got)
	}
	p := crashFrontier(t, c.cmd(t, "crash"))
	if stamp <= p {
		t.Fatalf("stamp %d <= frontier %d: receipt claims the relaxed write survived", stamp, p)
	}
	if got := c.cmd(t, "get 1"); got != "NOT_FOUND" {
		t.Fatalf("relaxed write above the frontier survived the crash: %q", got)
	}
	if got := c.cmd(t, "get 2"); got != "VALUE 2 200" {
		t.Fatalf("durable write lost: %q", got)
	}
}

func TestWaitBarrierMakesRelaxedCrashProof(t *testing.T) {
	s := startServer(t, WithEpochInterval(2*time.Millisecond))
	c := dial(t, s.Addr().String())

	stamp := epochStamp(t, c.cmd(t, "set 1 100 relaxed"), "STORED")
	got := c.cmd(t, "wait")
	frontier, err := strconv.ParseUint(got, 10, 64)
	if err != nil {
		t.Fatalf("wait reply %q: %v", got, err)
	}
	if frontier < stamp {
		t.Fatalf("wait returned frontier %d < stamp %d", frontier, stamp)
	}
	p := crashFrontier(t, c.cmd(t, "crash"))
	if p < stamp {
		t.Fatalf("crash frontier %d < waited stamp %d", p, stamp)
	}
	if got := c.cmd(t, "get 1"); got != "VALUE 1 100" {
		t.Fatalf("wait-covered relaxed write lost: %q", got)
	}
	// An explicit target already behind the frontier returns at once.
	if got := c.cmd(t, "wait %d 100", stamp); got == "" {
		t.Fatalf("explicit-target wait: empty reply")
	}
}

func TestWaitTimeoutAndErrors(t *testing.T) {
	// 1-minute interval: the frontier will not reach a far-future epoch
	// within the wait's timeout.
	s := startServer(t, WithEpochInterval(time.Minute))
	c := dial(t, s.Addr().String())

	// Epoch 1 is current but a minute from persisting: the wait times out.
	if got := c.cmd(t, "wait 1 30"); got != "SERVER_ERROR wait timeout" {
		t.Fatalf("wait timeout: %q", got)
	}
	// A target the server never issued is a confused client, not a
	// license to park the connection until the clock crawls there.
	if got := c.cmd(t, "wait 999999 30"); got != "CLIENT_ERROR wait epoch beyond current" {
		t.Fatalf("future-target wait: %q", got)
	}
	if got := c.cmd(t, "wait repl 10"); got != "CLIENT_ERROR not a replication primary" {
		t.Fatalf("wait repl on non-primary: %q", got)
	}
	for _, bad := range []string{"wait x", "wait 1 2 3", "wait repl 1 2"} {
		got := c.cmd(t, "%s", bad)
		if !strings.HasPrefix(got, "CLIENT_ERROR") {
			t.Fatalf("%q -> %q, want CLIENT_ERROR", bad, got)
		}
	}
}

func TestTiersDisabledDegradeToDurable(t *testing.T) {
	s := startServer(t, WithEpochInterval(0))
	c := dial(t, s.Addr().String())

	// Tier keywords still parse, but every ack is the durable tier's:
	// no epoch stamp, effects committed before the ack.
	if got := c.cmd(t, "set 1 100 relaxed"); got != "STORED" {
		t.Fatalf("relaxed set with tiers off: %q", got)
	}
	if got := c.cmd(t, "set 2 200 fire"); got != "STORED" {
		t.Fatalf("fire set with tiers off: %q", got)
	}
	// Epoch waits are trivially met.
	if got := c.cmd(t, "wait"); got != "0" {
		t.Fatalf("wait with tiers off: %q", got)
	}
	crashFrontier(t, c.cmd(t, "crash"))
	if got := c.cmd(t, "get 1"); got != "VALUE 1 100" {
		t.Fatalf("degraded relaxed write lost: %q", got)
	}
	if got := c.cmd(t, "get 2"); got != "VALUE 2 200" {
		t.Fatalf("degraded fire write lost: %q", got)
	}
}

func TestFireTierAcksWithoutLooking(t *testing.T) {
	s := startServer(t)
	c := dial(t, s.Addr().String())

	epochStamp(t, c.cmd(t, "set 1 100 fire"), "STORED")
	if got := c.cmd(t, "get 1"); got != "VALUE 1 100" {
		t.Fatalf("get after fire set: %q", got)
	}
	// Fire acks without consulting state: deleting a missing key still
	// reports DELETED (the relaxed tier would say NOT_FOUND).
	if got := c.cmd(t, "delete 999 fire"); got != "DELETED" {
		t.Fatalf("fire delete of missing key: %q", got)
	}
	if got := c.cmd(t, "delete 998 relaxed"); got != "NOT_FOUND" {
		t.Fatalf("relaxed delete of missing key: %q", got)
	}
}

// TestPipelinedRelaxedBurstThenWait is the pipelining property test: a
// burst of relaxed sets and a trailing wait travel in ONE socket
// write. The replies must come back in request order, every ack
// stamped, and the wait's reply — which may only be answered after an
// epoch close — must cover every stamp in the burst, proven by the
// whole burst surviving a crash.
func TestPipelinedRelaxedBurstThenWait(t *testing.T) {
	const burst = 32
	s := startServer(t, WithShards(2), WithEpochInterval(2*time.Millisecond))
	c := dial(t, s.Addr().String())

	var req strings.Builder
	for i := 0; i < burst; i++ {
		fmt.Fprintf(&req, "set %d %d relaxed\r\n", i, i*10)
	}
	req.WriteString("wait\r\n")
	if _, err := c.conn.Write([]byte(req.String())); err != nil {
		t.Fatalf("pipelined write: %v", err)
	}
	var maxStamp uint64
	for i := 0; i < burst; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("read ack %d: %v", i, err)
		}
		e := epochStamp(t, strings.TrimSpace(line), "STORED")
		if e > maxStamp {
			maxStamp = e
		}
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read wait reply: %v", err)
	}
	frontier, err := strconv.ParseUint(strings.TrimSpace(line), 10, 64)
	if err != nil {
		t.Fatalf("wait reply %q: %v", strings.TrimSpace(line), err)
	}
	if frontier < maxStamp {
		t.Fatalf("wait frontier %d < burst max stamp %d", frontier, maxStamp)
	}
	p := crashFrontier(t, c.cmd(t, "crash"))
	if p < maxStamp {
		t.Fatalf("crash frontier %d < waited stamp %d", p, maxStamp)
	}
	for i := 0; i < burst; i++ {
		want := fmt.Sprintf("VALUE %d %d", i, i*10)
		if got := c.cmd(t, "get %d", i); got != want {
			t.Fatalf("get %d after crash: %q, want %q", i, got, want)
		}
	}
}

func TestEpochTelemetrySurface(t *testing.T) {
	s := startServer(t, WithEpochInterval(2*time.Millisecond))
	c := dial(t, s.Addr().String())

	epochStamp(t, c.cmd(t, "set 1 1 relaxed"), "STORED")
	epochStamp(t, c.cmd(t, "set 2 2 fire"), "STORED")
	if got := c.cmd(t, "set 3 3"); got != "STORED" {
		t.Fatalf("durable set: %q", got)
	}
	c.cmd(t, "wait")

	stat := func(lines []string, key string) (uint64, bool) {
		for _, l := range lines {
			if v, ok := strings.CutPrefix(l, "STAT "+key+" "); ok {
				n, err := strconv.ParseUint(strings.Fields(v)[0], 10, 64)
				if err != nil {
					t.Fatalf("stat %s: bad value %q", key, v)
				}
				return n, true
			}
		}
		return 0, false
	}
	lines := c.lines(t, "stats")
	for key, min := range map[string]uint64{
		"epoch_current":       1,
		"epoch_persisted":     1,
		"server_epoch_closes": 1,
		"server_relaxed_ops":  1,
		"server_fire_ops":     1,
		"server_durable_ops":  1,
		"server_waits":        1,
	} {
		v, ok := stat(lines, key)
		if !ok {
			t.Fatalf("stats: missing %s", key)
		}
		if v < min {
			t.Fatalf("stats: %s = %d, want >= %d", key, v, min)
		}
	}
	cur, _ := stat(lines, "epoch_current")
	per, _ := stat(lines, "epoch_persisted")
	if per >= cur {
		t.Fatalf("persisted frontier %d not behind open epoch %d", per, cur)
	}
}

// TestRelaxedReplicatesAtEpochClose: relaxed writes reach followers
// when their epoch drains, and the follower's LastEpoch tracks the
// primary's frontier.
func TestRelaxedReplicatesAtEpochClose(t *testing.T) {
	p := startServer(t, WithReplListen("127.0.0.1:0"), WithEpochInterval(2*time.Millisecond))
	f := startServer(t, WithReplicaOf(p.ReplAddr().String()), WithEpochInterval(0))

	pc := dial(t, p.Addr().String())
	fc := dial(t, f.Addr().String())

	stamp := epochStamp(t, pc.cmd(t, "set 1 100 relaxed"), "STORED")
	if got := pc.cmd(t, "wait"); got == "" {
		t.Fatal("wait: empty reply")
	}
	waitFor(t, 5*time.Second, "relaxed write to reach the follower", func() bool {
		return fc.cmd(t, "get 1") == "VALUE 1 100"
	})
	waitFor(t, 5*time.Second, "follower epoch to cover the stamp", func() bool {
		return f.replFollower.LastEpoch() >= stamp
	})

	// wait repl covers durable writes: ack count reaches 1 follower.
	if got := pc.cmd(t, "set 2 200"); got != "STORED" {
		t.Fatalf("durable set: %q", got)
	}
	got := pc.cmd(t, "wait repl 2000")
	n, err := strconv.ParseUint(got, 10, 64)
	if err != nil || n < 1 {
		t.Fatalf("wait repl: %q, want >= 1 follower", got)
	}
}
