package cacheserver

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"tsp/internal/telemetry"
)

// respClient is a minimal RESP2 client for acceptance tests: the
// in-repo stand-in for redis-cli/redis-benchmark, which the test
// environment does not ship.
type respClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialRESP(t *testing.T, addr string) *respClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &respClient{conn: conn, r: bufio.NewReader(conn)}
}

// cmd sends one command as a RESP array of bulk strings and reads one
// reply, rendered compactly: "+OK", "-ERR ...", ":5", "$ payload",
// "(nil)", or for arrays the elements joined by "|".
func (c *respClient) cmd(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
	}
	if _, err := c.conn.Write([]byte(b.String())); err != nil {
		t.Fatalf("write: %v", err)
	}
	return c.read(t)
}

func (c *respClient) read(t *testing.T) string {
	t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	line = strings.TrimRight(line, "\r\n")
	switch line[0] {
	case '+', '-', ':':
		return line
	case '$':
		var n int
		fmt.Sscanf(line[1:], "%d", &n)
		if n < 0 {
			return "(nil)"
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			t.Fatalf("bulk body: %v", err)
		}
		return "$ " + string(buf[:n])
	case '*':
		var n int
		fmt.Sscanf(line[1:], "%d", &n)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = c.read(t)
		}
		return strings.Join(parts, "|")
	default:
		t.Fatalf("unexpected reply line %q", line)
		return ""
	}
}

// TestRESPOverTCP is the RESP acceptance test: the command set
// redis-benchmark drives (SET/GET/MGET/MSET/INCRBY/DEL/PING/INFO) must
// work over a sniffed connection — the first '*' byte selects the RESP
// adapter with no configuration.
func TestRESPOverTCP(t *testing.T) {
	s := startServer(t, WithShards(2))
	c := dialRESP(t, s.Addr().String())

	if got := c.cmd(t, "PING"); got != "+PONG" {
		t.Fatalf("PING: %q", got)
	}
	if got := c.cmd(t, "SET", "1", "42"); got != "+OK" {
		t.Fatalf("SET: %q", got)
	}
	if got := c.cmd(t, "GET", "1"); got != "$ 42" {
		t.Fatalf("GET: %q", got)
	}
	if got := c.cmd(t, "GET", "999"); got != "(nil)" {
		t.Fatalf("GET missing: %q", got)
	}
	if got := c.cmd(t, "INCRBY", "1", "8"); got != ":50" {
		t.Fatalf("INCRBY: %q", got)
	}
	if got := c.cmd(t, "MSET", "2", "20", "3", "30"); got != "+OK" {
		t.Fatalf("MSET: %q", got)
	}
	if got := c.cmd(t, "MGET", "1", "2", "999", "3"); got != "$ 50|$ 20|(nil)|$ 30" {
		t.Fatalf("MGET: %q", got)
	}
	if got := c.cmd(t, "DEL", "2", "999"); got != ":1" {
		t.Fatalf("DEL: %q", got)
	}
	// Non-numeric keys and values hash into the integer keyspace but
	// must round-trip as a coherent key→value association.
	if got := c.cmd(t, "SET", "user:alice", "hello"); got != "+OK" {
		t.Fatalf("SET string key: %q", got)
	}
	if got := c.cmd(t, "GET", "user:alice"); !strings.HasPrefix(got, "$ ") {
		t.Fatalf("GET string key: %q", got)
	}
	if got := c.cmd(t, "INFO"); !strings.Contains(got, "server:tspcached") {
		t.Fatalf("INFO: %q", got)
	}
	if got := c.cmd(t, "GET"); !strings.HasPrefix(got, "-ERR wrong number of arguments") {
		t.Fatalf("arity error: %q", got)
	}
	// The stream must still be aligned after an arity error.
	if got := c.cmd(t, "PING"); got != "+PONG" {
		t.Fatalf("PING after arity error: %q", got)
	}
	// Crash survivability is protocol-independent: the RESP view of the
	// store must come back intact.
	if got := c.cmd(t, "CRASH"); !strings.HasPrefix(got, "$ OK RECOVERED EPOCH ") {
		t.Fatalf("CRASH: %q", got)
	}
	if got := c.cmd(t, "GET", "1"); got != "$ 50" {
		t.Fatalf("GET after crash: %q", got)
	}
}

// TestProtoPinned checks WithProto overrides sniffing: a "resp"
// listener treats a text line as a RESP inline command and answers in
// RESP framing.
func TestProtoPinned(t *testing.T) {
	s := startServer(t, WithProto("resp"))
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	if _, err := conn.Write([]byte("PING\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := strings.TrimRight(line, "\r\n"); got != "+PONG" {
		t.Fatalf("inline PING on pinned RESP listener: %q", got)
	}
}

// TestTooLargeRequestNative is the regression test for the old
// bufio.Scanner 64 KiB token limit, which silently dropped the
// connection with no error. Now: a request within the configured
// ceiling works no matter how big, one over it is answered with an
// error, and the native connection keeps serving afterwards.
func TestTooLargeRequestNative(t *testing.T) {
	s := startServer(t, WithMaxRequestBytes(8<<10))
	c := dial(t, s.Addr().String())

	// Within the ceiling — and comfortably beyond bufio.Scanner's old
	// 4 KiB initial buffer.
	var b strings.Builder
	b.WriteString("mset")
	for k := 0; b.Len() < 6<<10; k++ {
		fmt.Fprintf(&b, " %d %d", 1000+k, k)
	}
	if got := c.cmd(t, b.String()); !strings.HasPrefix(got, "STORED ") {
		t.Fatalf("large in-limit mset: %q", got)
	}

	// Over the ceiling: answered, not dropped.
	b.Reset()
	b.WriteString("mset")
	for k := 0; b.Len() < 12<<10; k++ {
		fmt.Fprintf(&b, " %d %d", 5000+k, k)
	}
	if got := c.cmd(t, b.String()); got != "CLIENT_ERROR request too large" {
		t.Fatalf("oversized mset: %q", got)
	}

	// The connection survives and resynchronizes at the next newline.
	if got := c.cmd(t, "set 7 77"); got != "STORED" {
		t.Fatalf("set after oversized: %q", got)
	}
	if got := c.cmd(t, "get 7"); got != "VALUE 7 77" {
		t.Fatalf("get after oversized: %q", got)
	}
}

// TestScannerLimitGone sends a single request far beyond bufio.Scanner's
// old 64 KiB default token cap; under the default 1 MiB ceiling it must
// simply work.
func TestScannerLimitGone(t *testing.T) {
	s := startServer(t)
	c := dial(t, s.Addr().String())
	var b strings.Builder
	b.WriteString("mset")
	for k := 0; b.Len() < 128<<10; k++ {
		fmt.Fprintf(&b, " %d 1", 10000+k)
	}
	if got := c.cmd(t, b.String()); !strings.HasPrefix(got, "STORED ") {
		t.Fatalf("128KiB mset: %q", got)
	}
}

// TestTooLargeRequestRESP: RESP frames cannot be skipped without
// trusting the oversized header, so the server answers the error and
// closes the connection instead of desynchronizing.
func TestTooLargeRequestRESP(t *testing.T) {
	s := startServer(t, WithMaxRequestBytes(1<<10))
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	var b strings.Builder
	payload := strings.Repeat("x", 4<<10)
	fmt.Fprintf(&b, "*3\r\n$3\r\nSET\r\n$1\r\n1\r\n$%d\r\n%s\r\n", len(payload), payload)
	if _, err := conn.Write([]byte(b.String())); err != nil {
		t.Fatalf("write: %v", err)
	}
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read error reply: %v", err)
	}
	if got := strings.TrimRight(line, "\r\n"); got != "-ERR request too large" {
		t.Fatalf("oversized RESP set: %q", got)
	}
	// The server tears the connection down (EOF, or RST when it closes
	// with our unread frame bytes still pending) — never more replies.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("connection still serving after oversized RESP frame, want teardown")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("connection neither served nor closed after oversized RESP frame")
	}
}

// TestPipeliningProperty is the pipelining property test: N commands
// written in one segment produce exactly N replies, in request order,
// for randomized command mixes — and the decoder's batch telemetry
// shows the burst was decoded as a group rather than line by line.
func TestPipeliningProperty(t *testing.T) {
	s := startServer(t, WithShards(4))
	c := dial(t, s.Addr().String())
	rng := rand.New(rand.NewSource(7))

	vals := map[uint64]uint64{}
	for round := 0; round < 20; round++ {
		n := 2 + rng.Intn(30)
		var req strings.Builder
		want := make([]string, n)
		for i := 0; i < n; i++ {
			k := uint64(rng.Intn(50))
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64() % 1000
				fmt.Fprintf(&req, "set %d %d\r\n", k, v)
				vals[k] = v
				want[i] = "STORED"
			case 1:
				fmt.Fprintf(&req, "get %d\r\n", k)
				if v, ok := vals[k]; ok {
					want[i] = fmt.Sprintf("VALUE %d %d", k, v)
				} else {
					want[i] = "NOT_FOUND"
				}
			default:
				fmt.Fprintf(&req, "incr %d 1\r\n", k)
				vals[k]++
				want[i] = fmt.Sprintf("%d", vals[k])
			}
		}
		if _, err := c.conn.Write([]byte(req.String())); err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
		for i, w := range want {
			line, err := c.r.ReadString('\n')
			if err != nil {
				t.Fatalf("round %d reply %d/%d: %v", round, i, n, err)
			}
			if got := strings.TrimRight(line, "\r\n"); got != w {
				t.Fatalf("round %d reply %d = %q, want %q", round, i, got, w)
			}
		}
	}

	// The bursts must have decoded as multi-request batches: the
	// native-protocol decoded-batch histogram saw groups, not only
	// singletons. (Timing can split a burst across reads, so assert the
	// max, not every observation.)
	db := s.decodedBatch[telemetry.ProtoNative].Snapshot()
	if db.Count() == 0 {
		t.Fatal("no decoded-batch observations")
	}
	if db.Max() < 2 {
		t.Fatalf("decoded batch max = %v, want >= 2 (bursts never batched)", db.Max())
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
}
