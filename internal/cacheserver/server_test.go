package cacheserver

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

// client is a minimal test client for the text protocol.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

// cmd sends one command and returns the first response line.
func (c *client) cmd(t *testing.T, format string, args ...interface{}) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, format+"\r\n", args...); err != nil {
		t.Fatalf("write: %v", err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return strings.TrimSpace(line)
}

// lines reads until an END line (for stats).
func (c *client) lines(t *testing.T, format string, args ...interface{}) []string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, format+"\r\n", args...); err != nil {
		t.Fatalf("write: %v", err)
	}
	var out []string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		line = strings.TrimSpace(line)
		out = append(out, line)
		if line == "END" {
			return out
		}
	}
}

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSetGetDeleteOverTCP(t *testing.T) {
	s := startServer(t)
	c := dial(t, s.Addr().String())

	if got := c.cmd(t, "set 1 100"); got != "STORED" {
		t.Fatalf("set: %q", got)
	}
	if got := c.cmd(t, "get 1"); got != "VALUE 1 100" {
		t.Fatalf("get: %q", got)
	}
	if got := c.cmd(t, "get 2"); got != "NOT_FOUND" {
		t.Fatalf("get missing: %q", got)
	}
	if got := c.cmd(t, "incr 1 5"); got != "105" {
		t.Fatalf("incr: %q", got)
	}
	if got := c.cmd(t, "incr 7 3"); got != "3" {
		t.Fatalf("incr absent: %q", got)
	}
	if got := c.cmd(t, "delete 1"); got != "DELETED" {
		t.Fatalf("delete: %q", got)
	}
	if got := c.cmd(t, "delete 1"); got != "NOT_FOUND" {
		t.Fatalf("double delete: %q", got)
	}
}

func TestProtocolErrors(t *testing.T) {
	s := startServer(t)
	c := dial(t, s.Addr().String())
	for _, bad := range []string{
		"set 1", "set a b", "get", "get x", "incr 1", "delete",
		"frobnicate 1 2",
	} {
		got := c.cmd(t, "%s", bad)
		if !strings.HasPrefix(got, "CLIENT_ERROR") && !strings.HasPrefix(got, "ERROR") {
			t.Errorf("%q -> %q, want an error", bad, got)
		}
	}
}

func TestCrashCommandPreservesData(t *testing.T) {
	s := startServer(t)
	c := dial(t, s.Addr().String())

	for k := 0; k < 50; k++ {
		if got := c.cmd(t, "set %d %d", k, k*11); got != "STORED" {
			t.Fatalf("set %d: %q", k, got)
		}
	}
	if got := c.cmd(t, "crash"); got != "OK RECOVERED" {
		t.Fatalf("crash: %q", got)
	}
	// Same connection keeps working against the recovered stack.
	for k := 0; k < 50; k++ {
		want := fmt.Sprintf("VALUE %d %d", k, k*11)
		if got := c.cmd(t, "get %d", k); got != want {
			t.Fatalf("get %d after crash: %q, want %q", k, got, want)
		}
	}
	// And mutations still work.
	if got := c.cmd(t, "set 1000 1"); got != "STORED" {
		t.Fatalf("set after crash: %q", got)
	}
}

func TestCrashVisibleAcrossConnections(t *testing.T) {
	s := startServer(t)
	c1 := dial(t, s.Addr().String())
	c2 := dial(t, s.Addr().String())

	c1.cmd(t, "set 5 55")
	if got := c2.cmd(t, "crash"); got != "OK RECOVERED" {
		t.Fatalf("crash from c2: %q", got)
	}
	// c1's thread registration is stale; its next request must be
	// transparently re-registered.
	if got := c1.cmd(t, "get 5"); got != "VALUE 5 55" {
		t.Fatalf("c1 get after c2 crash: %q", got)
	}
}

func TestStats(t *testing.T) {
	s := startServer(t)
	c := dial(t, s.Addr().String())
	c.cmd(t, "set 1 1")
	c.cmd(t, "get 1")
	c.cmd(t, "crash")
	out := c.lines(t, "stats")
	joined := strings.Join(out, "\n")
	for _, want := range []string{"STAT items 1", "STAT sets 1", "STAT hits 1", "STAT crashes_survived 1", "END"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("stats missing %q:\n%s", want, joined)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t)
	const clients, opsPer = 8, 100
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < opsPer; i++ {
				fmt.Fprintf(conn, "incr %d 1\r\n", g)
				if _, err := r.ReadString('\n'); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatalf("client error: %v", err)
	}
	c := dial(t, s.Addr().String())
	for g := 0; g < clients; g++ {
		want := fmt.Sprintf("VALUE %d %d", g, opsPer)
		if got := c.cmd(t, "get %d", g); got != want {
			t.Fatalf("counter %d: %q, want %q", g, got, want)
		}
	}
}

func TestQuitClosesConnection(t *testing.T) {
	s := startServer(t)
	c := dial(t, s.Addr().String())
	fmt.Fprintf(c.conn, "quit\r\n")
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after quit")
	}
}

func TestConnectionLimitByThreadSlots(t *testing.T) {
	srv, err := New(Config{Addr: "127.0.0.1:0", MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	c1 := dial(t, srv.Addr().String())
	c2 := dial(t, srv.Addr().String())
	c1.cmd(t, "set 1 1")
	c2.cmd(t, "set 2 2")
	// A third active connection exceeds the thread slots and must get a
	// server error rather than hanging or crashing.
	c3 := dial(t, srv.Addr().String())
	if got := c3.cmd(t, "set 3 3"); !strings.HasPrefix(got, "SERVER_ERROR") {
		t.Fatalf("third connection: %q, want SERVER_ERROR", got)
	}
}
