package cacheserver

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tsp/internal/atlas"
)

// client is a minimal test client for the text protocol.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

// cmd sends one command and returns the first response line.
func (c *client) cmd(t *testing.T, format string, args ...interface{}) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, format+"\r\n", args...); err != nil {
		t.Fatalf("write: %v", err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return strings.TrimSpace(line)
}

// lines reads until an END line (for stats and mget).
func (c *client) lines(t *testing.T, format string, args ...interface{}) []string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, format+"\r\n", args...); err != nil {
		t.Fatalf("write: %v", err)
	}
	var out []string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		line = strings.TrimSpace(line)
		out = append(out, line)
		if line == "END" {
			return out
		}
	}
}

// totalSets sums the mutation counter across shards — the progress
// signal crash-under-load tests poll between kills.
func totalSets(s *Server) uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.tel.Server.Sets.Load()
	}
	return n
}

// waitProgress polls until the server has applied n more mutations than
// when it was called: crash-under-load pacing that guarantees the next
// kill lands on a store that has actually resumed traffic, where a
// fixed sleep may cover zero requests on a slow or single-core box.
func waitProgress(t *testing.T, s *Server, n uint64) {
	t.Helper()
	start := totalSets(s)
	waitFor(t, 10*time.Second, "write progress between crashes", func() bool {
		return totalSets(s)-start >= n
	})
}

func startServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	s, err := New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSetGetDeleteOverTCP(t *testing.T) {
	s := startServer(t)
	c := dial(t, s.Addr().String())

	if got := c.cmd(t, "set 1 100"); got != "STORED" {
		t.Fatalf("set: %q", got)
	}
	if got := c.cmd(t, "get 1"); got != "VALUE 1 100" {
		t.Fatalf("get: %q", got)
	}
	if got := c.cmd(t, "get 2"); got != "NOT_FOUND" {
		t.Fatalf("get missing: %q", got)
	}
	if got := c.cmd(t, "incr 1 5"); got != "105" {
		t.Fatalf("incr: %q", got)
	}
	if got := c.cmd(t, "incr 7 3"); got != "3" {
		t.Fatalf("incr absent: %q", got)
	}
	if got := c.cmd(t, "delete 1"); got != "DELETED" {
		t.Fatalf("delete: %q", got)
	}
	if got := c.cmd(t, "delete 1"); got != "NOT_FOUND" {
		t.Fatalf("double delete: %q", got)
	}
}

func TestProtocolErrors(t *testing.T) {
	s := startServer(t)
	c := dial(t, s.Addr().String())
	for _, bad := range []string{
		"set 1", "set a b", "get", "get x", "incr 1", "delete",
		"mget", "mget x", "mset", "mset 1", "mset 1 2 3",
		"crash 99", "crash -1", "crash 0 0",
		"frobnicate 1 2",
	} {
		got := c.cmd(t, "%s", bad)
		if !strings.HasPrefix(got, "CLIENT_ERROR") && !strings.HasPrefix(got, "ERROR") {
			t.Errorf("%q -> %q, want an error", bad, got)
		}
	}
}

func TestKeysSpreadAcrossShards(t *testing.T) {
	s := startServer(t, WithShards(4))
	c := dial(t, s.Addr().String())
	touched := make(map[int]bool)
	for k := 0; k < 64; k++ {
		if got := c.cmd(t, "set %d %d", k, k); got != "STORED" {
			t.Fatalf("set %d: %q", k, got)
		}
		touched[s.shardOf(uint64(k)).idx] = true
	}
	if len(touched) != 4 {
		t.Fatalf("64 consecutive keys touched only %d of 4 shards", len(touched))
	}
	for k := 0; k < 64; k++ {
		want := fmt.Sprintf("VALUE %d %d", k, k)
		if got := c.cmd(t, "get %d", k); got != want {
			t.Fatalf("get %d: %q, want %q", k, got, want)
		}
	}
}

func TestMsetMgetPipeline(t *testing.T) {
	s := startServer(t, WithShards(4))
	c := dial(t, s.Addr().String())

	if got := c.cmd(t, "mset 1 10 2 20 3 30 4 40 5 50"); got != "STORED 5" {
		t.Fatalf("mset: %q", got)
	}
	out := c.lines(t, "mget 1 2 3 4 5 99")
	want := []string{
		"VALUE 1 10", "VALUE 2 20", "VALUE 3 30", "VALUE 4 40", "VALUE 5 50",
		"NOT_FOUND 99", "END",
	}
	if len(out) != len(want) {
		t.Fatalf("mget returned %d lines, want %d: %v", len(out), len(want), out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("mget line %d = %q, want %q", i, out[i], want[i])
		}
	}
	// Repeated keys and request-order preservation.
	out = c.lines(t, "mget 5 5 1")
	want = []string{"VALUE 5 50", "VALUE 5 50", "VALUE 1 10", "END"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("mget line %d = %q, want %q", i, out[i], want[i])
		}
	}
}

func TestCrashCommandPreservesData(t *testing.T) {
	s := startServer(t, WithShards(4))
	c := dial(t, s.Addr().String())

	for k := 0; k < 50; k++ {
		if got := c.cmd(t, "set %d %d", k, k*11); got != "STORED" {
			t.Fatalf("set %d: %q", k, got)
		}
	}
	if got := c.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED EPOCH ") {
		t.Fatalf("crash: %q", got)
	}
	// Same connection keeps working against the recovered stacks.
	for k := 0; k < 50; k++ {
		want := fmt.Sprintf("VALUE %d %d", k, k*11)
		if got := c.cmd(t, "get %d", k); got != want {
			t.Fatalf("get %d after crash: %q, want %q", k, got, want)
		}
	}
	// And mutations still work.
	if got := c.cmd(t, "set 1000 1"); got != "STORED" {
		t.Fatalf("set after crash: %q", got)
	}
}

func TestCrashSingleShardLeavesOthersServing(t *testing.T) {
	s := startServer(t, WithShards(4))
	c := dial(t, s.Addr().String())
	for k := 0; k < 40; k++ {
		c.cmd(t, "set %d %d", k, k+1)
	}
	if got := c.cmd(t, "crash 2"); !strings.HasPrefix(got, "OK RECOVERED SHARD 2 EPOCH ") {
		t.Fatalf("crash 2: %q", got)
	}
	for k := 0; k < 40; k++ {
		want := fmt.Sprintf("VALUE %d %d", k, k+1)
		if got := c.cmd(t, "get %d", k); got != want {
			t.Fatalf("get %d after shard crash: %q, want %q", k, got, want)
		}
	}
	// Only the crashed shard counts a recovery.
	if got := s.shards[2].tel.Recovery.Recoveries.Load(); got != 1 {
		t.Fatalf("shard 2 recoveries = %d, want 1", got)
	}
	for _, i := range []int{0, 1, 3} {
		if got := s.shards[i].tel.Recovery.Recoveries.Load(); got != 0 {
			t.Fatalf("shard %d recoveries = %d, want 0", i, got)
		}
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
}

func TestCrashVisibleAcrossConnections(t *testing.T) {
	s := startServer(t)
	c1 := dial(t, s.Addr().String())
	c2 := dial(t, s.Addr().String())

	c1.cmd(t, "set 5 55")
	if got := c2.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED EPOCH ") {
		t.Fatalf("crash from c2: %q", got)
	}
	// c1's thread registrations are stale; its next request must be
	// transparently re-registered.
	if got := c1.cmd(t, "get 5"); got != "VALUE 5 55" {
		t.Fatalf("c1 get after c2 crash: %q", got)
	}
}

func TestStats(t *testing.T) {
	s := startServer(t, WithShards(2))
	c := dial(t, s.Addr().String())
	c.cmd(t, "set 1 1")
	c.cmd(t, "get 1")
	c.cmd(t, "crash")
	out := c.lines(t, "stats")
	joined := strings.Join(out, "\n")
	for _, want := range []string{
		"STAT shards 2", "STAT items 1", "STAT sets 1", "STAT hits 1",
		"STAT hit_rate 1.0000", "STAT crashes_survived 2", "STAT nvm_stores",
		"STAT recovery_avg_us", "END",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("stats missing %q:\n%s", want, joined)
		}
	}

	perShard := c.lines(t, "stats shards")
	if len(perShard) != 3 { // 2 shards + END
		t.Fatalf("stats shards returned %d lines: %v", len(perShard), perShard)
	}
	for i := 0; i < 2; i++ {
		if !strings.HasPrefix(perShard[i], fmt.Sprintf("STAT shard %d ", i)) {
			t.Fatalf("per-shard line %d = %q", i, perShard[i])
		}
		if !strings.Contains(perShard[i], "recoveries 1") {
			t.Fatalf("shard %d shows no recovery: %q", i, perShard[i])
		}
	}
}

func TestModeOffServerRunsUnfortified(t *testing.T) {
	// Regression for the zero-value Config bug: Mode atlas.ModeOff (== 0)
	// used to be rewritten to ModeTSP by fillDefaults, so an unfortified
	// server was unreachable. The options API applies WithMode only when
	// the caller says so.
	s := startServer(t, WithMode(atlas.ModeOff), WithShards(2))
	if got := s.Mode(); got != atlas.ModeOff {
		t.Fatalf("server mode = %v, want ModeOff", got)
	}
	for _, sh := range s.shards {
		if got := sh.stk.RT.Mode(); got != atlas.ModeOff {
			t.Fatalf("shard %d runtime mode = %v, want ModeOff", sh.idx, got)
		}
	}
	c := dial(t, s.Addr().String())
	if got := c.cmd(t, "set 1 2"); got != "STORED" {
		t.Fatalf("set on ModeOff server: %q", got)
	}
	if got := c.cmd(t, "get 1"); got != "VALUE 1 2" {
		t.Fatalf("get on ModeOff server: %q", got)
	}
	// And the default remains TSP when no option is passed.
	d := startServer(t)
	if got := d.Mode(); got != atlas.ModeTSP {
		t.Fatalf("default mode = %v, want ModeTSP", got)
	}
}

func TestConcurrentClientsAcrossShards(t *testing.T) {
	s := startServer(t, WithShards(4), WithMaxConns(16))
	const clients, opsPer = 8, 100
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < opsPer; i++ {
				// Stride the counters so the 8 clients hit all 4 shards.
				fmt.Fprintf(conn, "incr %d 1\r\n", g*31)
				if _, err := r.ReadString('\n'); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatalf("client error: %v", err)
	}
	c := dial(t, s.Addr().String())
	for g := 0; g < clients; g++ {
		want := fmt.Sprintf("VALUE %d %d", g*31, opsPer)
		if got := c.cmd(t, "get %d", g*31); got != want {
			t.Fatalf("counter %d: %q, want %q", g, got, want)
		}
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
}

// TestCrashDuringLoad drives every shard with concurrent mutating
// clients while an admin connection power-fails shards one at a time
// and then all at once. Afterwards every shard must verify clean and
// every key confirmed STORED before the crash phase must survive.
func TestCrashDuringLoad(t *testing.T) {
	const nShards = 4
	s := startServer(t, WithShards(nShards), WithMaxConns(16))

	// Seed phase: confirmed-durable keys, spread across shards.
	seed := dial(t, s.Addr().String())
	const seeded = 200
	for k := 0; k < seeded; k++ {
		if got := seed.cmd(t, "set %d %d", k, k*3+1); got != "STORED" {
			t.Fatalf("seed set %d: %q", k, got)
		}
	}

	// Load phase: 6 clients mutate disjoint high keys on all shards.
	const clients = 6
	stop := make(chan struct{})
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := 10_000 + g*1000 + i%100
				fmt.Fprintf(conn, "incr %d 1\r\n", k)
				line, err := r.ReadString('\n')
				if err != nil {
					errs <- err
					return
				}
				if strings.HasPrefix(line, "SERVER_ERROR") {
					errs <- fmt.Errorf("client %d: %s", g, strings.TrimSpace(line))
					return
				}
			}
		}(g)
	}

	// Admin: crash each shard in turn, then the whole machine, while the
	// load runs.
	admin := dial(t, s.Addr().String())
	for i := 0; i < nShards; i++ {
		if got := admin.cmd(t, "crash %d", i); !strings.HasPrefix(got, fmt.Sprintf("OK RECOVERED SHARD %d EPOCH ", i)) {
			t.Fatalf("crash %d: %q", i, got)
		}
		waitProgress(t, s, 10)
	}
	if got := admin.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED EPOCH ") {
		t.Fatalf("crash all: %q", got)
	}
	close(stop)
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatalf("load client error: %v", err)
	}

	// Every shard recovers with clean invariants...
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll after crash-under-load: %v", err)
	}
	for _, sh := range s.shards {
		if got := sh.tel.Recovery.Recoveries.Load(); got < 2 {
			t.Fatalf("shard %d recoveries = %d, want >= 2", sh.idx, got)
		}
	}
	// ...and every pre-crash confirmed key is readable with its value.
	for k := 0; k < seeded; k++ {
		want := fmt.Sprintf("VALUE %d %d", k, k*3+1)
		if got := seed.cmd(t, "get %d", k); got != want {
			t.Fatalf("seeded key %d after crashes: %q, want %q", k, got, want)
		}
	}
}

func TestQuitClosesConnection(t *testing.T) {
	s := startServer(t)
	c := dial(t, s.Addr().String())
	fmt.Fprintf(c.conn, "quit\r\n")
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after quit")
	}
}

func TestMaxConnsBackpressure(t *testing.T) {
	// With MaxConns 2, a third connection is not rejected and not served:
	// it waits in the accept queue until a slot frees.
	s := startServer(t, WithMaxConns(2), WithShards(1))

	c1 := dial(t, s.Addr().String())
	c2 := dial(t, s.Addr().String())
	c1.cmd(t, "set 1 1")
	c2.cmd(t, "set 2 2")

	conn3, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial 3: %v", err)
	}
	defer conn3.Close()
	fmt.Fprintf(conn3, "set 3 3\r\n")
	r3 := bufio.NewReader(conn3)
	conn3.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := r3.ReadString('\n'); err == nil {
		t.Fatal("third connection was served while both slots were held")
	}

	// Freeing a slot admits the queued connection and its buffered
	// command executes.
	fmt.Fprintf(c1.conn, "quit\r\n")
	conn3.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := r3.ReadString('\n')
	if err != nil {
		t.Fatalf("third connection still unserved after slot freed: %v", err)
	}
	if got := strings.TrimSpace(line); got != "STORED" {
		t.Fatalf("third connection response: %q, want STORED", got)
	}
}
