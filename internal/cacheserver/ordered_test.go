package cacheserver

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

// Tests for the ordered keyspace served from the persistent skip list:
// wire round-trips in both adapters, lock-free zrange concurrent with
// batched zadd writes, crash survivability, replication to a follower,
// and the zero-Atlas-involvement property of the ordered read path.

func TestOrderedCommandsOverTCP(t *testing.T) {
	s := startServer(t, WithShards(4))
	c := dial(t, s.Addr().String())

	if got := c.cmd(t, "zadd 10 100"); got != "STORED" {
		t.Fatalf("zadd: %q", got)
	}
	if got := c.cmd(t, "zadd 20 200"); got != "STORED" {
		t.Fatalf("zadd: %q", got)
	}
	if got := c.cmd(t, "zget 10"); got != "VALUE 10 100" {
		t.Fatalf("zget: %q", got)
	}
	if got := c.cmd(t, "zget 15"); got != "NOT_FOUND" {
		t.Fatalf("zget missing: %q", got)
	}
	if got := c.cmd(t, "zincr 10 5"); got != "105" {
		t.Fatalf("zincr: %q", got)
	}
	if got := c.cmd(t, "zincr 30 7"); got != "7" {
		t.Fatalf("zincr absent: %q", got)
	}
	if got := c.lines(t, "zrange 0 100"); strings.Join(got, ",") !=
		"VALUE 10 105,VALUE 20 200,VALUE 30 7,END" {
		t.Fatalf("zrange: %v", got)
	}
	if got := c.lines(t, "zrange 0 100 2"); strings.Join(got, ",") !=
		"VALUE 10 105,VALUE 20 200,END" {
		t.Fatalf("zrange limit: %v", got)
	}
	// Half-open interval: hi is excluded.
	if got := c.lines(t, "zrange 10 20"); strings.Join(got, ",") != "VALUE 10 105,END" {
		t.Fatalf("zrange half-open: %v", got)
	}
	if got := c.cmd(t, "zcount 0 100"); got != "3" {
		t.Fatalf("zcount: %q", got)
	}
	if got := c.cmd(t, "zdel 20"); got != "DELETED" {
		t.Fatalf("zdel: %q", got)
	}
	if got := c.cmd(t, "zdel 20"); got != "NOT_FOUND" {
		t.Fatalf("zdel again: %q", got)
	}
	if got := c.cmd(t, "zcount 0 100"); got != "2" {
		t.Fatalf("zcount after zdel: %q", got)
	}
	// The ordered and unordered keyspaces are separate: a map set does
	// not shadow a skip-list key and vice versa.
	if got := c.cmd(t, "set 10 999"); got != "STORED" {
		t.Fatalf("set: %q", got)
	}
	if got := c.cmd(t, "zget 10"); got != "VALUE 10 105" {
		t.Fatalf("zget after set: %q", got)
	}
	for _, bad := range []string{
		"zadd 1", "zadd a b", "zget", "zincr 1", "zdel",
		"zrange 1", "zrange a b", "zrange 1 2 x", "zcount 1",
	} {
		if got := c.cmd(t, "%s", bad); !strings.HasPrefix(got, "CLIENT_ERROR") {
			t.Errorf("%q -> %q, want CLIENT_ERROR", bad, got)
		}
	}
}

func TestOrderedRESPOverTCP(t *testing.T) {
	s := startServer(t, WithShards(2))
	c := dialRESP(t, s.Addr().String())

	if got := c.cmd(t, "ZADD", "10", "100"); got != "+OK" {
		t.Fatalf("ZADD: %q", got)
	}
	if got := c.cmd(t, "ZADD", "20", "200"); got != "+OK" {
		t.Fatalf("ZADD: %q", got)
	}
	if got := c.cmd(t, "ZGET", "10"); got != "$ 100" {
		t.Fatalf("ZGET: %q", got)
	}
	if got := c.cmd(t, "ZGET", "15"); got != "(nil)" {
		t.Fatalf("ZGET missing: %q", got)
	}
	if got := c.cmd(t, "ZINCR", "10", "5"); got != ":105" {
		t.Fatalf("ZINCR: %q", got)
	}
	if got := c.cmd(t, "ZRANGE", "0", "100"); got != "$ 10|$ 105|$ 20|$ 200" {
		t.Fatalf("ZRANGE: %q", got)
	}
	if got := c.cmd(t, "ZRANGE", "0", "100", "1"); got != "$ 10|$ 105" {
		t.Fatalf("ZRANGE limit: %q", got)
	}
	if got := c.cmd(t, "ZCOUNT", "0", "100"); got != ":2" {
		t.Fatalf("ZCOUNT: %q", got)
	}
	if got := c.cmd(t, "ZDEL", "20"); got != ":1" {
		t.Fatalf("ZDEL: %q", got)
	}
	if got := c.cmd(t, "ZDEL", "20"); got != ":0" {
		t.Fatalf("ZDEL again: %q", got)
	}
	// Crash survivability over RESP: the skip list recovers with the map.
	if got := c.cmd(t, "CRASH"); !strings.HasPrefix(got, "$ OK RECOVERED EPOCH ") {
		t.Fatalf("CRASH: %q", got)
	}
	if got := c.cmd(t, "ZGET", "10"); got != "$ 105" {
		t.Fatalf("ZGET after crash: %q", got)
	}
	if got := c.cmd(t, "ZRANGE", "lo", "hi"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("ZRANGE text bounds: %q", got)
	}
}

// parseRange turns zrange VALUE lines into key/val pairs, asserting the
// trailing END.
func parseRange(t *testing.T, lines []string) (keys, vals []uint64) {
	t.Helper()
	if len(lines) == 0 || lines[len(lines)-1] != "END" {
		t.Fatalf("zrange reply not END-terminated: %v", lines)
	}
	for _, l := range lines[:len(lines)-1] {
		f := strings.Fields(l)
		if len(f) != 3 || f[0] != "VALUE" {
			t.Fatalf("bad zrange line %q", l)
		}
		k, err1 := strconv.ParseUint(f[1], 10, 64)
		v, err2 := strconv.ParseUint(f[2], 10, 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad zrange line %q", l)
		}
		keys = append(keys, k)
		vals = append(vals, v)
	}
	return keys, vals
}

// TestZRangeDuringZAddLockFree is the acceptance test for the ordered
// read path: zrange runs concurrently with a stream of batched zadd
// writes and must always observe a sorted, consistent prefix-free view
// (every returned pair is a value some zadd actually wrote, keys
// strictly ascending). Afterwards the server crash-recovers and the
// full ordered view must survive intact.
func TestZRangeDuringZAddLockFree(t *testing.T) {
	const n = 2000
	s := startServer(t, WithShards(4))
	addr := s.Addr().String()

	var acked atomic.Uint64
	errCh := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			errCh <- err
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		const burst = 64
		for base := 0; base < n; base += burst {
			var b strings.Builder
			lim := base + burst
			if lim > n {
				lim = n
			}
			for k := base; k < lim; k++ {
				fmt.Fprintf(&b, "zadd %d %d\r\n", k, 2*k+1)
			}
			if _, err := conn.Write([]byte(b.String())); err != nil {
				errCh <- err
				return
			}
			for k := base; k < lim; k++ {
				line, err := r.ReadString('\n')
				if err != nil {
					errCh <- err
					return
				}
				if strings.TrimSpace(line) != "STORED" {
					errCh <- fmt.Errorf("zadd %d: %q", k, line)
					return
				}
				acked.Add(1)
			}
		}
	}()

	// Concurrent scans: never block on the writer, always sorted, every
	// value the one its zadd wrote.
	c := dial(t, addr)
	scans := 0
	for {
		keys, vals := parseRange(t, c.lines(t, "zrange 0 %d", n))
		for i := range keys {
			if i > 0 && keys[i] <= keys[i-1] {
				t.Fatalf("scan %d out of order: %d after %d", scans, keys[i], keys[i-1])
			}
			if vals[i] != 2*keys[i]+1 {
				t.Fatalf("scan %d: key %d has value %d, want %d", scans, keys[i], vals[i], 2*keys[i]+1)
			}
		}
		scans++
		if writerDone(done) {
			break
		}
	}
	select {
	case err := <-errCh:
		t.Fatalf("writer: %v", err)
	default:
	}
	if acked.Load() != n {
		t.Fatalf("writer acked %d of %d", acked.Load(), n)
	}

	check := func(when string) {
		t.Helper()
		keys, vals := parseRange(t, c.lines(t, "zrange 0 %d", n))
		if len(keys) != n {
			t.Fatalf("%s: zrange has %d keys, want %d", when, len(keys), n)
		}
		for i := range keys {
			if keys[i] != uint64(i) || vals[i] != uint64(2*i+1) {
				t.Fatalf("%s: entry %d = (%d,%d), want (%d,%d)", when, i, keys[i], vals[i], i, 2*i+1)
			}
		}
		if got := c.cmd(t, "zcount 0 %d", n); got != itoa(n) {
			t.Fatalf("%s: zcount = %q, want %d", when, got, n)
		}
	}
	check("after writer")

	// Crash and recover: every acked zadd was persistent at its CAS, so
	// the whole ordered keyspace must come back.
	if got := c.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED EPOCH ") {
		t.Fatalf("crash: %q", got)
	}
	check("after crash")
}

func writerDone(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// TestOrderedReplication checks z mutations replicate in commit order
// and the follower serves the ordered read commands while read-only.
func TestOrderedReplication(t *testing.T) {
	primary, follower := startReplPair(t)
	pc := dial(t, primary.Addr().String())
	fc := dial(t, follower.Addr().String())

	const n = 48
	for i := 0; i < n; i++ {
		if got := pc.cmd(t, "zadd %d %d", i, i*10); got != "STORED" {
			t.Fatalf("zadd %d: %q", i, got)
		}
	}
	// The other mutation kinds replicate as resolved effects.
	if got := pc.cmd(t, "zincr 3 1"); got != "31" {
		t.Fatalf("zincr: %q", got)
	}
	if got := pc.cmd(t, "zdel 5"); got != "DELETED" {
		t.Fatalf("zdel: %q", got)
	}

	waitReplFor(t, "ordered convergence", func() bool {
		return fc.cmd(t, "zcount 0 %d", n) == itoa(n-1) &&
			fc.cmd(t, "zget 3") == "VALUE 3 31"
	})

	// The follower's ordered view matches the primary's, entry by entry.
	pk, pv := parseRange(t, pc.lines(t, "zrange 0 %d", n))
	fk, fv := parseRange(t, fc.lines(t, "zrange 0 %d", n))
	if len(pk) != len(fk) || len(pk) != n-1 {
		t.Fatalf("range lengths: primary %d follower %d, want %d", len(pk), len(fk), n-1)
	}
	for i := range pk {
		if pk[i] != fk[i] || pv[i] != fv[i] {
			t.Fatalf("entry %d: primary (%d,%d) follower (%d,%d)", i, pk[i], pv[i], fk[i], fv[i])
		}
	}

	// Read-only gate: ordered mutations rejected, ordered reads served.
	for _, cmd := range []string{"zadd 1 2", "zincr 1 1", "zdel 1"} {
		if got := fc.cmd(t, "%s", cmd); !strings.HasPrefix(got, "SERVER_ERROR read-only") {
			t.Fatalf("follower %q = %q, want read-only rejection", cmd, got)
		}
	}

	// A follower crash must recover the replicated skip list too.
	if got := fc.cmd(t, "promote"); got != "OK PROMOTED" {
		t.Fatalf("promote: %q", got)
	}
	if got := fc.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED EPOCH ") {
		t.Fatalf("crash: %q", got)
	}
	if got := fc.cmd(t, "zget 3"); got != "VALUE 3 31" {
		t.Fatalf("post-crash zget: %q", got)
	}
	if got := fc.cmd(t, "zcount 0 %d", n); got != itoa(n-1) {
		t.Fatalf("post-crash zcount: %q", got)
	}
}

// atlasTotals sums the Atlas write-machinery counters across shards.
func atlasTotals(s *Server) (ocs, appends uint64) {
	for _, sh := range s.shards {
		c := sh.tel.Counters()
		ocs += c["atlas_ocs_commits"]
		appends += c["atlas_log_appends"]
	}
	return ocs, appends
}

// TestOrderedReadsTakeNoAtlasSection pins the zero-crash-consistency-
// measures property from the paper's Section 4.1: a pure stream of
// ordered reads must not open a single Atlas critical section or append
// a single undo record — on the primary or on a replicating follower.
func TestOrderedReadsTakeNoAtlasSection(t *testing.T) {
	primary, follower := startReplPair(t)
	pc := dial(t, primary.Addr().String())
	fc := dial(t, follower.Addr().String())

	const n = 64
	for i := 0; i < n; i++ {
		if got := pc.cmd(t, "zadd %d %d", i, i); got != "STORED" {
			t.Fatalf("zadd %d: %q", i, got)
		}
	}
	waitReplFor(t, "follower has the keyspace", func() bool {
		return fc.cmd(t, "zcount 0 %d", n) == itoa(n)
	})

	for _, tc := range []struct {
		name string
		srv  *Server
		c    *client
	}{
		{"primary", primary, pc},
		{"follower", follower, fc},
	} {
		ocs0, app0 := atlasTotals(tc.srv)
		for i := 0; i < 200; i++ {
			if got := tc.c.cmd(t, "zget %d", i%n); !strings.HasPrefix(got, "VALUE") {
				t.Fatalf("%s zget: %q", tc.name, got)
			}
			tc.c.lines(t, "zrange %d %d", i%n, i%n+16)
			tc.c.cmd(t, "zcount 0 %d", n)
		}
		ocs1, app1 := atlasTotals(tc.srv)
		if ocs1 != ocs0 || app1 != app0 {
			t.Fatalf("%s: ordered reads moved Atlas counters: ocs %d->%d, log appends %d->%d",
				tc.name, ocs0, ocs1, app0, app1)
		}
	}
}
