package cacheserver

import (
	"bytes"
	"strings"

	"tsp/internal/proto"
)

// dispatch is a test-only compatibility shim for the pre-codec
// line-at-a-time API: it parses one native-protocol line, serves it as
// a single-request batch, and returns the rendered reply without the
// trailing CRLF — exactly what the old production dispatch returned.
// Benchmarks use it to drive the exec machinery without a socket.
func (s *Server) dispatch(cs *connState, line string) string {
	var na proto.Native
	var req proto.Request
	n, err := na.Parse([]byte(line+"\r\n"), &req)
	if err != nil || n == 0 {
		return "ERROR unparseable line"
	}
	if req.Cmd == proto.CmdNone {
		return "ERROR empty command"
	}
	var buf bytes.Buffer
	enc := proto.NewEncoder(&buf, na, 0)
	s.serveBatch(cs, enc, []proto.Request{req})
	enc.Flush()
	return strings.TrimSuffix(buf.String(), "\r\n")
}
