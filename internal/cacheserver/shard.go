package cacheserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/repl"
	"tsp/internal/stack"
	"tsp/internal/telemetry"
)

// shard is one independent storage stack: its own device, heap, Atlas
// runtime and map. Keys are hashed across shards, so operations on
// different shards share no lock, no log ring, no device counter — the
// multi-core scaling the single global stack could not provide.
type shard struct {
	idx int
	cfg config

	// tel is the shard's telemetry registry: one observability plane for
	// this shard's whole stack, from device counters to protocol-level
	// hit/miss counts and op latency. The registry pointer is stable for
	// the shard's lifetime even though the stack underneath is torn down
	// and rebuilt by crashes — stack.CrashReattach reuses it, so counters
	// accumulate across incarnations.
	tel *telemetry.Registry

	// mu guards the stack pointer: a crash tears the stack down and
	// rebuilds it under the write lock, so request handling holds the
	// read lock for the duration of each operation. Different shards
	// have different locks; only same-shard operations and that shard's
	// recovery ever contend.
	mu  sync.RWMutex
	stk *stack.Stack

	// gen counts stack rebuilds. A connection's per-shard Atlas thread
	// is valid only for the generation it registered with; threadFor
	// re-registers lazily after a crash.
	gen atomic.Uint64

	// Batch pipeline state (see batch.go). queue is nil when batching
	// is disabled. combineMu is the drain lock: its holder — the
	// handler that won it without waiting, else the worker woken by the
	// doorbell — is the one goroutine draining and executing batches,
	// and owns carry, the scratch slices and the drain thread wth/wgen
	// while it holds the lock. busy is true while a drain is in flight,
	// the signal exec uses to route single ops into an active batch
	// instead of the idle-shard inline path.
	queue          chan *batchReq
	doorbell       chan struct{}
	combineMu      sync.Mutex
	busy           atomic.Bool
	workerDone     chan struct{}
	carry          *batchReq
	wth            *atlas.Thread
	wgen           uint64
	pendingScratch []*batchReq
	stripeScratch  []int
	mutexScratch   []*atlas.Mutex

	// replLog, when non-nil (primary role), receives every drained
	// batch's committed effects as one replication group; runBatch
	// appends under the shard read lock so a crash can never separate a
	// commit from its log entry. Written once before traffic (see
	// Server.startReplication).
	replLog *repl.Log

	// ovl buffers this shard's acked-but-unflushed relaxed-tier writes
	// (see epoch.go). It is volatile by design — a crash discards it;
	// that is the relaxed tier's bounded loss.
	ovl overlay

	// sess is the shard's session dedup window (see session.go): the
	// volatile mirror of the persistent per-session records that make
	// seq-tagged mutations exactly-once across crash and retry.
	sess sessTable

	// markScratch accumulates the session records persisted during the
	// current drained batch; appendRepl drains it into the batch's
	// replication group so followers inherit the window. Owned by the
	// drain-lock holder, like the other scratch slices.
	markScratch []repl.SessRec
}

func newShard(idx int, c config) (*shard, error) {
	// The worker drains at most batchMax ops into one outermost critical
	// section; size the undo-log ring so the largest group (acquire and
	// release records per stripe plus first-store undo records per op)
	// cannot lap it, without shrinking the atlas default.
	logEntries := c.batchMax*32 + 1024
	if logEntries < 4096 {
		logEntries = 4096
	}
	tel := telemetry.NewRegistry()
	stk, err := stack.New(
		stack.WithDeviceWords(c.deviceWords),
		stack.WithMode(c.mode),
		// One thread slot per admitted connection, one for the shard's
		// batch worker, and one for the replication applier a follower
		// runs.
		stack.WithMaxThreads(c.maxConns+2),
		stack.WithLogEntries(logEntries),
		stack.WithBuckets(c.buckets, c.perMutex),
		stack.WithSessionSlots(c.sessSlots),
		stack.WithTelemetry(tel),
	)
	if err != nil {
		return nil, fmt.Errorf("cacheserver: shard %d: %w", idx, err)
	}
	sh := &shard{idx: idx, cfg: c, tel: tel, stk: stk}
	sh.sessRebuild()
	if c.batchMax > 0 {
		sh.queue = make(chan *batchReq, c.queueDepth)
		sh.doorbell = make(chan struct{}, 1)
		sh.workerDone = make(chan struct{})
		go sh.worker()
	}
	return sh, nil
}

// threadFor returns the connection's Atlas thread on this shard,
// registering one (or re-registering after a crash replaced the
// runtime) on first use. Caller holds the shard read lock, which keeps
// gen stable: rebuilds happen only under the write lock.
func (sh *shard) threadFor(cs *connState) (*atlas.Thread, error) {
	slot := &cs.shards[sh.idx]
	if slot.th != nil && slot.gen == sh.gen.Load() {
		return slot.th, nil
	}
	th, err := sh.stk.RT.NewThread()
	if err != nil {
		return nil, err
	}
	slot.th = th
	slot.gen = sh.gen.Load()
	return th, nil
}

// releaseThread returns the connection's thread slot to this shard's
// runtime at connection end. A thread whose runtime was replaced by a
// crash is garbage along with that runtime and needs no release.
func (sh *shard) releaseThread(cs *connState) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	slot := &cs.shards[sh.idx]
	if slot.th != nil && slot.gen == sh.gen.Load() {
		_ = sh.stk.RT.ReleaseThread(slot.th)
	}
	slot.th = nil
}

// crashAndRecover simulates a power failure with a TSP rescue on this
// shard only and brings its stack back through the standard recovery
// path, re-verifying the map's integrity invariants before serving
// again. Other shards keep serving throughout: the write lock taken
// here is per-shard. The crash-to-serving latency lands in the shard
// registry's RecoveryLatency histogram; the recovery counts themselves
// are recorded by stack.Reattach.
func (sh *shard) crashAndRecover() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stk.Dev.StopEvictor()
	start := time.Now()
	ns, err := sh.stk.CrashReattach(nvm.CrashOptions{RescueFraction: 1})
	if err != nil {
		return fmt.Errorf("cacheserver: shard %d rebuild: %w", sh.idx, err)
	}
	if _, err := ns.Map.Verify(); err != nil {
		return fmt.Errorf("cacheserver: shard %d verify: %w", sh.idx, err)
	}
	if _, err := ns.List.Verify(); err != nil {
		return fmt.Errorf("cacheserver: shard %d list verify: %w", sh.idx, err)
	}
	sh.stk = ns
	sh.gen.Add(1)
	// The overlay is what the power failure erases: writes acked with
	// epochs above the persistent frontier. Discarding it here — under
	// the same write lock the rebuild held — is the relaxed tier's loss
	// event, bounded by the epoch interval.
	sh.ovl.discard()
	// Rebuild the session window's volatile mirror from the recovered
	// heap: records committed in-section with their mutations survived;
	// volatile-only records died with the overlay values they guarded,
	// which is exactly why their retries are safe to re-apply.
	sh.sessRebuild()
	sh.tel.RecoveryLatency.Observe(time.Since(start))
	// The rebuilt state shed whatever the crash caught un-persisted, so
	// "snapshot + suffix of the replication log" no longer describes
	// this server: move followers to a fresh generation, which re-seeds
	// them with a full snapshot.
	if sh.replLog != nil {
		sh.replLog.Bump()
	}
	return nil
}

// getOptimistic serves one get on the map's lock-free seqlock path. The
// shard read lock held here is a plain Go RWMutex guarding the stack
// pointer against a concurrent crash rebuild — it is not an Atlas mutex
// and not the batch pipeline's drain lock, so optimistic readers never
// contend with writers (only with recovery, exactly like every other
// request). valid=false means the retry budget was exhausted and the
// caller must re-run the read through the locked machinery.
func (sh *shard) getOptimistic(key uint64) (val uint64, ok, valid bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	// The relaxed overlay is this key's newest logical state when an
	// entry is pending; one atomic load when none is.
	if e, hit := sh.ovl.get(key, false); hit {
		sh.tel.Server.Gets.Inc()
		if !e.del {
			sh.tel.Server.Hits.Inc()
		}
		return e.val, !e.del, true
	}
	val, ok, valid = sh.stk.Map.GetOptimistic(key)
	if valid {
		sh.tel.Server.Gets.Inc()
		if ok {
			sh.tel.Server.Hits.Inc()
		}
	}
	return val, ok, valid
}

// captureVersion snapshots the shard generation and the seqlock version
// of the stripe covering key — the cross-key consistency witness for
// multi-key optimistic reads (see Server.readOptimistic). even is false
// when the stripe is mid-write; the caller should fall back to the
// locked path.
func (sh *shard) captureVersion(key uint64) (gen, ver uint64, even bool) {
	sh.mu.RLock()
	m := sh.stk.Map
	ver = m.StripeVersion(m.StripeOf(key))
	gen = sh.gen.Load()
	sh.mu.RUnlock()
	return gen, ver, ver%2 == 0
}

// verify re-checks the shard's map and skip-list invariants on a
// quiesced shard.
func (sh *shard) verify() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, err := sh.stk.Map.Verify(); err != nil {
		return fmt.Errorf("cacheserver: shard %d: %w", sh.idx, err)
	}
	if _, err := sh.stk.List.Verify(); err != nil {
		return fmt.Errorf("cacheserver: shard %d list: %w", sh.idx, err)
	}
	return nil
}

// shardView is one shard's telemetry contribution to the stats command
// and the metrics endpoint: the full registry snapshot plus the only
// value the registry cannot know — the map's live item count.
type shardView struct {
	items      int
	zitems     int
	counters   telemetry.Snapshot
	opLat      telemetry.HistogramSnapshot
	recLat     telemetry.HistogramSnapshot
	readLat    telemetry.HistogramSnapshot
	cmdLat     telemetry.CommandLatencySnapshot
	cmdProto   [telemetry.NumProtocols]telemetry.CommandLatencySnapshot
	batchSize  telemetry.HistogramSnapshot
	rangeLen   telemetry.HistogramSnapshot
	epochFlush telemetry.HistogramSnapshot
}

// view collects the shard's telemetry under the read lock (Map.Len
// needs a live stack; the registry itself is lock-free).
func (sh *shard) view() shardView {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return shardView{
		items:      sh.stk.Map.Len(),
		zitems:     sh.stk.List.Len(),
		counters:   sh.tel.Counters(),
		opLat:      sh.tel.OpLatency.Snapshot(),
		recLat:     sh.tel.RecoveryLatency.Snapshot(),
		readLat:    sh.tel.ReadLatency.Snapshot(),
		cmdLat:     sh.tel.CmdLatency.SnapshotAll(),
		cmdProto:   sh.tel.CmdLatency.SnapshotAllByProto(),
		batchSize:  sh.tel.BatchSize.Snapshot(),
		rangeLen:   sh.tel.RangeLen.Snapshot(),
		epochFlush: sh.tel.EpochFlushLatency.Snapshot(),
	}
}
