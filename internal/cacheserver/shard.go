package cacheserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/stack"
	"tsp/internal/stats"
)

// shard is one independent storage stack: its own device, heap, Atlas
// runtime and map. Keys are hashed across shards, so operations on
// different shards share no lock, no log ring, no device counter — the
// multi-core scaling the single global stack could not provide.
type shard struct {
	idx int
	cfg config

	// mu guards the stack pointer: a crash tears the stack down and
	// rebuilds it under the write lock, so request handling holds the
	// read lock for the duration of each operation. Different shards
	// have different locks; only same-shard operations and that shard's
	// recovery ever contend.
	mu  sync.RWMutex
	stk *stack.Stack

	// gen counts stack rebuilds. A connection's per-shard Atlas thread
	// is valid only for the generation it registered with; threadFor
	// re-registers lazily after a crash.
	gen atomic.Uint64

	// Per-shard operation counters for the stats surface.
	gets, hits, sets, dels atomic.Uint64

	// Recovery bookkeeping. recoveries is read lock-free by stats;
	// recLat is only appended under the shard write lock (recoveries are
	// serialized by it) and read under the read lock.
	recoveries atomic.Uint64
	recLat     stats.Sample
}

func newShard(idx int, c config) (*shard, error) {
	stk, err := stack.New(
		stack.WithDeviceWords(c.deviceWords),
		stack.WithMode(c.mode),
		stack.WithMaxThreads(c.maxConns),
		stack.WithBuckets(c.buckets, c.perMutex),
	)
	if err != nil {
		return nil, fmt.Errorf("cacheserver: shard %d: %w", idx, err)
	}
	return &shard{idx: idx, cfg: c, stk: stk}, nil
}

// threadFor returns the connection's Atlas thread on this shard,
// registering one (or re-registering after a crash replaced the
// runtime) on first use. Caller holds the shard read lock, which keeps
// gen stable: rebuilds happen only under the write lock.
func (sh *shard) threadFor(cs *connState) (*atlas.Thread, error) {
	slot := &cs.shards[sh.idx]
	if slot.th != nil && slot.gen == sh.gen.Load() {
		return slot.th, nil
	}
	th, err := sh.stk.RT.NewThread()
	if err != nil {
		return nil, err
	}
	slot.th = th
	slot.gen = sh.gen.Load()
	return th, nil
}

// releaseThread returns the connection's thread slot to this shard's
// runtime at connection end. A thread whose runtime was replaced by a
// crash is garbage along with that runtime and needs no release.
func (sh *shard) releaseThread(cs *connState) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	slot := &cs.shards[sh.idx]
	if slot.th != nil && slot.gen == sh.gen.Load() {
		_ = sh.stk.RT.ReleaseThread(slot.th)
	}
	slot.th = nil
}

// crashAndRecover simulates a power failure with a TSP rescue on this
// shard only and brings its stack back through the standard recovery
// path, re-verifying the map's integrity invariants before serving
// again. Other shards keep serving throughout: the write lock taken
// here is per-shard.
func (sh *shard) crashAndRecover() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stk.Dev.StopEvictor()
	start := time.Now()
	ns, err := sh.stk.CrashReattach(nvm.CrashOptions{RescueFraction: 1})
	if err != nil {
		return fmt.Errorf("cacheserver: shard %d rebuild: %w", sh.idx, err)
	}
	if _, err := ns.Map.Verify(); err != nil {
		return fmt.Errorf("cacheserver: shard %d verify: %w", sh.idx, err)
	}
	sh.stk = ns
	sh.gen.Add(1)
	sh.recoveries.Add(1)
	sh.recLat.Add(time.Since(start).Seconds())
	return nil
}

// verify re-checks the shard's map invariants on a quiesced shard.
func (sh *shard) verify() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, err := sh.stk.Map.Verify(); err != nil {
		return fmt.Errorf("cacheserver: shard %d: %w", sh.idx, err)
	}
	return nil
}

// shardStats is one shard's contribution to the stats command.
type shardStats struct {
	items                  int
	gets, hits, sets, dels uint64
	recoveries             uint64
	recAvgUS, recMaxUS     float64
	dev                    nvm.StatsSnapshot
}

// snapshot collects the shard's counters under the read lock.
func (sh *shard) snapshot() shardStats {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return shardStats{
		items:      sh.stk.Map.Len(),
		gets:       sh.gets.Load(),
		hits:       sh.hits.Load(),
		sets:       sh.sets.Load(),
		dels:       sh.dels.Load(),
		recoveries: sh.recoveries.Load(),
		recAvgUS:   sh.recLat.Mean() * 1e6,
		recMaxUS:   sh.recLat.Max() * 1e6,
		dev:        sh.stk.Dev.Stats(),
	}
}
