package cacheserver

import (
	"sync"
	"sync/atomic"
	"time"

	"tsp/internal/proto"
	"tsp/internal/telemetry"
)

// Per-operation durability tiers on an epoch clock — the paper's
// "timeliness requirement" made a per-command knob. The TSP planner's
// verdict for a power failure is that persistence need only be TIMELY:
// data must be durable by the time the failure's consequences are
// observable, not at every store. The durable tier keeps today's
// contract (the command's effects are committed to fortified state
// before the ack). The relaxed tier procrastinates harder: the write
// lands in a volatile per-shard overlay — plain Go memory, no Atlas
// machinery, no device stores — and is acknowledged immediately,
// stamped with the current epoch. A background clock closes an epoch
// every epochInterval by draining every shard's overlay through the
// normal batch pipeline (one Atlas critical section per drained chunk)
// and then advancing a persistent frontier word on each shard's heap.
// A crash therefore loses at most one epoch interval of relaxed writes
// — a bounded, configured, and *purchasable* loss window, which is
// exactly the paper's Figure-1 argument that the cost of persistence
// should be priced per requirement, not paid maximally everywhere.
// The fire tier acks without even consulting current state.
//
// Epoch stamps are crash-scoped receipts. An ack `STORED @e` promises:
// if the server has not crashed since, the write is durable once the
// persistent frontier reaches e (observable via `wait`). A crash reply
// carries the recovered frontier (`OK RECOVERED EPOCH <p>`); acks with
// epoch <= p are guaranteed to have survived, acks above it may be
// gone. The frontier never advances past an epoch whose drain raced a
// crash (closeEpoch re-checks every shard generation before
// persisting), so the receipt can never overpromise.
//
// Read-your-writes holds across tiers without waiting: every read path
// — batched gets, optimistic seqlock gets, ordered-keyspace reads —
// consults the overlay first, and a durable write to a key with a
// pending relaxed entry folds that entry into its critical section
// before applying (so a relaxed set followed by a durable incr
// increments the relaxed value, then commits durably).

// ovKey addresses one overlay entry: a key in either the hash-map or
// the ordered (skip-list) keyspace.
type ovKey struct {
	key  uint64
	list bool
}

// ovEntry is one acked-but-unflushed relaxed write. seq orders entries
// per overlay so an epoch drain applies an entry only if it is still
// the newest write to its key (apply-if-still-pending); del marks a
// buffered delete (a tombstone reads must honor). A sessioned relaxed
// write (sess != 0) additionally buffers its dedup record fields —
// sseq and spay — beside the value, so the record persists in the same
// section that makes the value durable (see session.go).
type ovEntry struct {
	val uint64
	seq uint64
	del bool

	sess uint64
	sseq uint64
	spay uint64
}

// overlay is a shard's volatile relaxed-write buffer. It is exactly
// the state a crash is allowed to lose: crashAndRecover discards it
// wholesale. size mirrors len(m) atomically so the hot read and
// durable-write paths can skip the mutex when no relaxed write is
// pending — the common case on an all-durable workload, which must not
// pay for a feature it does not use.
type overlay struct {
	mu   sync.Mutex
	m    map[ovKey]ovEntry
	size atomic.Int64
	seq  uint64
}

// put inserts or replaces the entry for (key, list) and returns its
// sequence stamp.
func (o *overlay) put(key uint64, list, del bool, val uint64) uint64 {
	return o.putSess(key, list, del, val, 0, 0, 0)
}

// putSess is put carrying a sessioned write's dedup-record fields
// (sess == 0 degrades to a plain put). The record rides the entry so
// the epoch flush persists value and record in one section.
func (o *overlay) putSess(key uint64, list, del bool, val, sess, sseq, spay uint64) uint64 {
	o.mu.Lock()
	if o.m == nil {
		o.m = make(map[ovKey]ovEntry)
	}
	k := ovKey{key: key, list: list}
	if _, ok := o.m[k]; !ok {
		o.size.Add(1)
	}
	o.seq++
	seq := o.seq
	o.m[k] = ovEntry{val: val, seq: seq, del: del, sess: sess, sseq: sseq, spay: spay}
	o.mu.Unlock()
	return seq
}

// get returns the pending entry for (key, list), if any. Callers on
// hot paths should gate on size.Load() != 0 first.
func (o *overlay) get(key uint64, list bool) (ovEntry, bool) {
	if o.size.Load() == 0 {
		return ovEntry{}, false
	}
	o.mu.Lock()
	e, ok := o.m[ovKey{key: key, list: list}]
	o.mu.Unlock()
	return e, ok
}

// stillPending reports whether the entry at (key, list) still carries
// seq — i.e. no newer relaxed write and no durable fold superseded it
// since the epoch drain snapshotted it.
func (o *overlay) stillPending(key uint64, list bool, seq uint64) bool {
	o.mu.Lock()
	e, ok := o.m[ovKey{key: key, list: list}]
	o.mu.Unlock()
	return ok && e.seq == seq
}

// clearIfSeq removes the entry at (key, list) if it still carries seq.
func (o *overlay) clearIfSeq(key uint64, list bool, seq uint64) {
	o.mu.Lock()
	k := ovKey{key: key, list: list}
	if e, ok := o.m[k]; ok && e.seq == seq {
		delete(o.m, k)
		o.size.Add(-1)
	}
	o.mu.Unlock()
}

// take pops and returns the pending entry for (key, list) — the
// durable-write fold: a durable op on the key supersedes (and must
// account for) the buffered relaxed state. The size fast path keeps an
// all-durable workload at one atomic load per op; a relaxed put racing
// past it serializes after the durable op, a legal order for
// concurrent commands.
func (o *overlay) take(key uint64, list bool) (ovEntry, bool) {
	if o.size.Load() == 0 {
		return ovEntry{}, false
	}
	o.mu.Lock()
	k := ovKey{key: key, list: list}
	e, ok := o.m[k]
	if ok {
		delete(o.m, k)
		o.size.Add(-1)
	}
	o.mu.Unlock()
	return e, ok
}

// discard drops every pending entry — the crash path. The entries were
// acked with epochs above the persistent frontier, so dropping them is
// precisely the loss the relaxed tier's contract allows.
func (o *overlay) discard() {
	o.mu.Lock()
	if n := int64(len(o.m)); n > 0 {
		o.m = make(map[ovKey]ovEntry)
		o.size.Add(-n)
	}
	o.mu.Unlock()
}

// pendingOps snapshots every pending entry as a flush op for the epoch
// drain. Each op carries the entry's seq so execOp applies it only if
// still pending (a newer relaxed write or a durable fold may land
// between snapshot and apply).
func (o *overlay) pendingOps(out []batchOp) []batchOp {
	if o.size.Load() == 0 {
		return out
	}
	o.mu.Lock()
	for k, e := range o.m {
		kind := opFlushSet
		switch {
		case k.list && e.del:
			kind = opFlushZDel
		case k.list:
			kind = opFlushZSet
		case e.del:
			kind = opFlushDel
		}
		out = append(out, batchOp{
			kind: kind, key: k.key, arg: e.val, seq: e.seq,
			sess: e.sess, sseq: e.sseq, spay: e.spay,
		})
	}
	o.mu.Unlock()
	return out
}

// rangeList visits every pending ordered-keyspace entry with key in
// [lo, hi) under the overlay lock — the ordered read path's merge
// source. f must not call back into the overlay.
func (o *overlay) rangeList(lo, hi uint64, f func(key uint64, e ovEntry)) {
	if o.size.Load() == 0 {
		return
	}
	o.mu.Lock()
	for k, e := range o.m {
		if k.list && k.key >= lo && k.key < hi {
			f(k.key, e)
		}
	}
	o.mu.Unlock()
}

// epochEnabled reports whether the durability tiers are live. When
// false, relaxed and fire degrade to durable and epoch waits return
// immediately.
func (s *Server) epochEnabled() bool { return s.cfg.epochInterval > 0 }

// broadcastWake publishes a wakeup to every waiter parked on p by
// swapping in a fresh channel and closing the old one — a one-shot
// broadcast with no waiter registry and no lock.
func broadcastWake(p *atomic.Pointer[chan struct{}]) {
	next := make(chan struct{})
	old := p.Swap(&next)
	close(*old)
}

// startEpochClock initializes the epoch state and, when the tiers are
// enabled, starts the clock goroutine. Epochs start at 1 so an epoch
// stamp of 0 can mean "absent" on the wire.
func (s *Server) startEpochClock() {
	s.curEpoch.Store(1)
	ch1 := make(chan struct{})
	s.epochWake.Store(&ch1)
	ch2 := make(chan struct{})
	s.ackWake.Store(&ch2)
	if !s.epochEnabled() {
		return
	}
	s.epochStop = make(chan struct{})
	s.epochDone = make(chan struct{})
	go s.epochLoop()
}

// stopEpochClock runs one final epoch close (draining every overlay —
// relaxed writes acked before a clean shutdown are NOT allowed to be
// lost by it; only crashes get that license) and stops the clock.
func (s *Server) stopEpochClock() {
	if s.epochStop == nil {
		return
	}
	close(s.epochStop)
	<-s.epochDone
}

// epochLoop is the clock: one closeEpoch per tick, one final close on
// stop.
func (s *Server) epochLoop() {
	defer close(s.epochDone)
	t := time.NewTicker(s.cfg.epochInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.closeEpoch()
		case <-s.epochStop:
			s.closeEpoch()
			return
		}
	}
}

// closeEpoch closes the current epoch e: open e+1, drain every shard's
// overlay into fortified state through the batch pipeline, and — if no
// shard crashed during the drain — persist e as every shard's durable
// frontier and advance the volatile frontier waiters watch.
//
// Ordering is what makes the ack sound: curEpoch moves to e+1 BEFORE
// the overlays are snapshotted, and a relaxed writer inserts its
// overlay entry BEFORE reading curEpoch for its ack stamp (both sides
// ordered by the overlay mutex). So any entry the snapshot misses was
// inserted after the snapshot, and its writer must have read e+1 —
// every write acked with stamp <= e is in this (or an earlier) drain.
//
// A shard generation changing across the drain means a crash landed
// somewhere inside it: some flushed chunks may have committed, but the
// crashed shard's overlay (and possibly its un-rescued commits) are
// gone, so the frontier must NOT advance to e — the receipts for epoch
// e would overpromise. The entries that did survive re-flush is not
// needed (they committed); the lost ones were acked above the frontier
// and are legal losses. The next tick simply tries the next epoch.
func (s *Server) closeEpoch() {
	e := s.curEpoch.Load()
	s.curEpoch.Store(e + 1)

	gens := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		gens[i] = sh.gen.Load()
	}
	for _, sh := range s.shards {
		sh.flushOverlay(s)
	}
	stable := true
	for i, sh := range s.shards {
		if sh.gen.Load() != gens[i] {
			stable = false
			break
		}
	}
	tel := s.shards[0].tel.Server
	if stable {
		for _, sh := range s.shards {
			sh.setDurableEpoch(e)
		}
		s.perEpoch.Store(e)
	} else {
		tel.EpochSkipped.Inc()
	}
	tel.EpochCloses.Inc()
	// Wake waiters unconditionally: on an advance they observe the new
	// frontier; on a skip (or shutdown) they re-check closing state
	// instead of parking forever.
	broadcastWake(&s.epochWake)
}

// flushOverlay drains this shard's pending relaxed writes into
// fortified state through the drain lock (one OCS and one replication
// group per batchMax-sized chunk), stamping the epoch being closed on
// the replicated groups.
func (sh *shard) flushOverlay(s *Server) {
	ops := sh.ovl.pendingOps(nil)
	if len(ops) == 0 {
		return
	}
	start := time.Now()
	s.runGroupDirect(sh, ops, s.curEpoch.Load()-1)
	sh.tel.EpochFlushLatency.Observe(time.Since(start))
	applied := uint64(0)
	for i := range ops {
		if ops[i].ok {
			applied++
		}
	}
	sh.tel.Server.EpochFlushed.Add(applied)
}

// setDurableEpoch persists e as the shard's epoch frontier, under the
// read lock so it cannot race the crash command's stack swap.
func (sh *shard) setDurableEpoch(e uint64) {
	sh.mu.RLock()
	sh.stk.SetDurableEpoch(e)
	sh.mu.RUnlock()
}

// waitEpoch blocks until the persistent frontier reaches target, the
// timeout (0 = none) passes, or the server closes. Returns whether the
// frontier got there.
func (s *Server) waitEpoch(target uint64, timeout time.Duration) bool {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		if s.perEpoch.Load() >= target {
			return true
		}
		if s.closing.Load() {
			return false
		}
		ch := *s.epochWake.Load()
		// Re-check between arming and parking: the broadcast may have
		// happened after the first check but before the channel load.
		if s.perEpoch.Load() >= target {
			return true
		}
		select {
		case <-ch:
		case <-deadline:
			return s.perEpoch.Load() >= target
		}
	}
}

// waitRepl blocks until need followers have acknowledged (gen, seq),
// the timeout (0 = none) passes, or the server closes. Returns the
// achieved count and whether the target was met.
func (s *Server) waitRepl(gen, seq uint64, need int, timeout time.Duration) (int, bool) {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		if got := s.replPrimary.AckedCount(gen, seq); got >= need {
			return got, true
		}
		if s.closing.Load() {
			return s.replPrimary.AckedCount(gen, seq), false
		}
		ch := *s.ackWake.Load()
		if got := s.replPrimary.AckedCount(gen, seq); got >= need {
			return got, true
		}
		select {
		case <-ch:
		case <-deadline:
			got := s.replPrimary.AckedCount(gen, seq)
			return got, got >= need
		}
	}
}

// serveWait answers one wait barrier. Called from serveBatch AFTER the
// pending data group flushed, so the barrier covers every write this
// connection pipelined before it. Two forms:
//
//   - epoch barrier (WaitRepl false): block until the persistent epoch
//     frontier reaches KV[0] (0 = the current epoch, which covers every
//     relaxed ack this connection has received). Replies the reached
//     frontier; a native-protocol timeout is an error, a RESP timeout
//     returns the frontier anyway (RESP WAIT has no error form).
//   - replication barrier (WaitRepl true): block until KV[0] followers
//     have acknowledged the replication log position captured now.
//     Replies the achieved count. Relaxed writes replicate at epoch
//     close, so a relaxed writer that needs follower coverage should
//     issue an epoch wait first.
func (s *Server) serveWait(cs *connState, req *proto.Request) proto.Reply {
	start := time.Now()
	tel := s.shards[0].tel
	tel.Server.Waits.Inc()
	defer func() {
		tel.CmdLatency.ObserveProto(cs.ptel, telemetry.CmdWait, time.Since(start))
	}()
	timeout := time.Duration(req.KV[1]) * time.Millisecond

	if req.WaitRepl {
		need := int(req.KV[0])
		if s.replPrimary == nil {
			if cs.ptel == telemetry.ProtoRESP {
				return proto.Reply{Kind: proto.KInt, Val: 0}
			}
			return proto.Reply{Kind: proto.KErrClient, Msg: "not a replication primary"}
		}
		gen, seq := s.replLog.Position()
		got, met := s.waitRepl(gen, seq, need, timeout)
		if !met && cs.ptel != telemetry.ProtoRESP {
			return proto.Reply{Kind: proto.KErrServer, Msg: "wait timeout"}
		}
		return proto.Reply{Kind: proto.KInt, Val: uint64(got)}
	}

	if !s.epochEnabled() {
		// Tiers off: nothing is ever buffered, so every ack was durable
		// and the barrier is trivially met.
		return proto.Reply{Kind: proto.KInt, Val: s.perEpoch.Load()}
	}
	target := req.KV[0]
	cur := s.curEpoch.Load()
	if target == 0 {
		target = cur
	} else if target > cur {
		// Epochs are only ever learned from acks, which never exceed the
		// current epoch — a future target is a confused client, and with
		// no timeout it would park the connection until the clock crawled
		// there. Reject instead of blocking unboundedly.
		return proto.Reply{Kind: proto.KErrClient, Msg: "wait epoch beyond current"}
	}
	if !s.waitEpoch(target, timeout) && cs.ptel != telemetry.ProtoRESP {
		return proto.Reply{Kind: proto.KErrServer, Msg: "wait timeout"}
	}
	return proto.Reply{Kind: proto.KInt, Val: s.perEpoch.Load()}
}

// serveRelaxed executes one relaxed- or fire-tier mutation: buffer the
// effects in the target shards' overlays and ack immediately with the
// current epoch stamp. Called from serveBatch as a sequence point (the
// pending durable group flushed first), so tiers interleave in program
// order on a connection.
func (s *Server) serveRelaxed(cs *connState, req *proto.Request) proto.Reply {
	start := time.Now()
	fire := req.Dur == proto.DurFire
	sh0 := s.shardOf(req.KV[0])
	if fire {
		sh0.tel.Server.FireOps.Inc()
	} else {
		sh0.tel.Server.RelaxedOps.Inc()
	}
	var rep proto.Reply
	switch req.Cmd {
	case proto.CmdSet:
		sh := s.shardOf(req.KV[0])
		sh.ovl.put(req.KV[0], false, false, req.KV[1])
		rep = proto.Reply{Kind: proto.KStored, Epoch: s.curEpoch.Load()}
	case proto.CmdZAdd:
		sh := s.shardOf(req.KV[0])
		sh.ovl.put(req.KV[0], true, false, req.KV[1])
		rep = proto.Reply{Kind: proto.KStored, Epoch: s.curEpoch.Load()}
	case proto.CmdMSet:
		n := 0
		for i := 0; i+1 < len(req.KV); i += 2 {
			s.shardOf(req.KV[i]).ovl.put(req.KV[i], false, false, req.KV[i+1])
			n++
		}
		rep = proto.Reply{Kind: proto.KStoredN, N: n, Epoch: s.curEpoch.Load()}
	case proto.CmdIncr, proto.CmdZIncr:
		list := req.Cmd == proto.CmdZIncr
		sh := s.shardOf(req.KV[0])
		base, _, err := s.peekVal(cs, sh, req.KV[0], list)
		if err != nil {
			return proto.Reply{Kind: proto.KErrServer, Msg: err.Error()}
		}
		nv := base + req.KV[1]
		sh.ovl.put(req.KV[0], list, false, nv)
		rep = proto.Reply{Kind: proto.KInt, Val: nv, Epoch: s.curEpoch.Load()}
	default: // CmdDelete, CmdZDel
		list := req.Cmd == proto.CmdZDel
		items := cs.items[:0]
		for _, k := range req.KV {
			sh := s.shardOf(k)
			found := true
			if !fire {
				// The fire tier acks without consulting state; relaxed
				// reports presence as of the ack.
				var err error
				_, found, err = s.peekVal(cs, sh, k, list)
				if err != nil {
					return proto.Reply{Kind: proto.KErrServer, Msg: err.Error()}
				}
			}
			sh.ovl.put(k, list, true, 0)
			items = append(items, proto.Item{Key: k, Found: found})
		}
		cs.items = items
		rep = proto.Reply{Kind: proto.KDelete, Items: items, Epoch: s.curEpoch.Load()}
	}
	sh0.tel.CmdLatency.ObserveProto(cs.ptel, cmdTelemetry(req.Cmd), time.Since(start))
	return rep
}

// peekVal reads a key's current logical value for the relaxed paths:
// the pending overlay entry if one exists, else the underlying engine
// (optimistic first for the map, falling back to the locked path; the
// skip list read is already lock-free). A missing key reads as (0,
// false, nil) — the base an incr on an absent key starts from.
func (s *Server) peekVal(cs *connState, sh *shard, key uint64, list bool) (uint64, bool, error) {
	if e, ok := sh.ovl.get(key, list); ok {
		if e.del {
			return 0, false, nil
		}
		return e.val, true, nil
	}
	if list {
		sh.mu.RLock()
		v, ok := sh.stk.List.Get(key)
		sh.mu.RUnlock()
		return v, ok, nil
	}
	sh.mu.RLock()
	v, ok, valid := sh.stk.Map.GetOptimistic(key)
	sh.mu.RUnlock()
	if valid {
		return v, ok, nil
	}
	ops := []batchOp{{kind: opGet, key: key}}
	s.execSync(cs, sh, ops)
	return ops[0].val, ops[0].ok, ops[0].err
}
