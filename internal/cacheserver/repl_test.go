package cacheserver

import (
	"strings"
	"testing"
	"time"
)

// startReplPair boots a primary (replication listener on an ephemeral
// port) and a follower replicating from it, both with small stacks.
func startReplPair(t *testing.T, extra ...Option) (primary, follower *Server) {
	t.Helper()
	popts := append([]Option{
		WithReplListen("127.0.0.1:0"),
		WithShards(2),
		WithDeviceWords(1 << 16),
	}, extra...)
	primary = startServer(t, popts...)
	follower = startServer(t,
		WithReplicaOf(primary.ReplAddr().String()),
		WithShards(2),
		WithDeviceWords(1<<16),
	)
	return primary, follower
}

// waitReplFor polls until cond holds or the deadline passes.
func waitReplFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// mgetLines fetches keys [0,n) and returns the VALUE/NOT_FOUND lines.
func mgetLines(t *testing.T, c *client, n int) []string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("mget")
	for i := 0; i < n; i++ {
		sb.WriteString(" ")
		sb.WriteString(itoa(i))
	}
	return c.lines(t, "%s", sb.String())
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// statValue extracts one STAT field from a stats response.
func replStat(lines []string, key string) (string, bool) {
	prefix := "STAT " + key + " "
	for _, l := range lines {
		if strings.HasPrefix(l, prefix) {
			return strings.TrimPrefix(l, prefix), true
		}
	}
	return "", false
}

// sameLines compares the mget views of two servers over the wire.
func converged(t *testing.T, pc, fc *client, n int) bool {
	t.Helper()
	p := mgetLines(t, pc, n)
	f := mgetLines(t, fc, n)
	if len(p) != len(f) {
		return false
	}
	for i := range p {
		if p[i] != f[i] {
			return false
		}
	}
	return true
}

// TestReplicationStreamToFollower loads a primary, checks the follower
// converges to the same wire-visible contents, that the follower
// rejects mutations while replicating, and that promote lifts the gate.
func TestReplicationStreamToFollower(t *testing.T) {
	primary, follower := startReplPair(t)
	pc := dial(t, primary.Addr().String())
	fc := dial(t, follower.Addr().String())

	const n = 64
	for i := 0; i < n; i++ {
		if got := pc.cmd(t, "set %d %d", i, i*7); got != "STORED" {
			t.Fatalf("set %d: %q", i, got)
		}
	}
	// Mix in the other mutation kinds: resolved increments and deletes
	// must replicate as their effects.
	if got := pc.cmd(t, "incr 3 1000"); got != "1021" {
		t.Fatalf("incr: %q", got)
	}
	if got := pc.cmd(t, "delete 5"); got != "DELETED" {
		t.Fatalf("delete: %q", got)
	}

	waitReplFor(t, "follower convergence", func() bool {
		return converged(t, pc, fc, n)
	})

	// Read-only gate: every mutation class is rejected, reads serve.
	for _, cmd := range []string{"set 1 2", "incr 1 1", "delete 1", "mset 1 2", "crash"} {
		if got := fc.cmd(t, "%s", cmd); !strings.HasPrefix(got, "SERVER_ERROR read-only") {
			t.Fatalf("follower %q = %q, want read-only rejection", cmd, got)
		}
	}
	if got := fc.cmd(t, "get 3"); got != "VALUE 3 1021" {
		t.Fatalf("follower get 3 = %q", got)
	}

	// Primary stats carry the replication surface.
	stats := pc.lines(t, "stats")
	if v, ok := replStat(stats, "repl_role"); !ok || v != "primary" {
		t.Fatalf("repl_role = %q ok=%v", v, ok)
	}
	if v, ok := replStat(stats, "repl_followers"); !ok || v != "1" {
		t.Fatalf("repl_followers = %q ok=%v", v, ok)
	}
	waitReplFor(t, "lag samples in primary stats", func() bool {
		_, ok := replStat(pc.lines(t, "stats"), "repl_lag_p50_us")
		return ok
	})

	// Promote: a second promote is idempotent, mutations open up, and
	// the promoted copy is crash-survivable like any server.
	if got := fc.cmd(t, "promote"); got != "OK PROMOTED" {
		t.Fatalf("promote: %q", got)
	}
	if got := fc.cmd(t, "promote"); got != "OK PROMOTED" {
		t.Fatalf("second promote: %q", got)
	}
	if got := fc.cmd(t, "set 500 1"); got != "STORED" {
		t.Fatalf("post-promote set: %q", got)
	}
	if got := fc.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED EPOCH ") {
		t.Fatalf("post-promote crash: %q", got)
	}
	if got := fc.cmd(t, "get 3"); got != "VALUE 3 1021" {
		t.Fatalf("post-promote get 3 = %q", got)
	}
	fstats := fc.lines(t, "stats")
	if v, ok := replStat(fstats, "repl_role"); !ok || v != "promoted" {
		t.Fatalf("follower repl_role = %q ok=%v", v, ok)
	}
}

// TestReplicationLateFollowerBootstraps starts the follower only after
// the primary holds data: the whole state must arrive via snapshot.
func TestReplicationLateFollowerBootstraps(t *testing.T) {
	primary := startServer(t,
		WithReplListen("127.0.0.1:0"),
		WithShards(2),
		WithDeviceWords(1<<16),
	)
	pc := dial(t, primary.Addr().String())
	const n = 48
	for i := 0; i < n; i++ {
		pc.cmd(t, "set %d %d", i, i+1)
	}

	follower := startServer(t,
		WithReplicaOf(primary.ReplAddr().String()),
		WithShards(4), // shard counts may differ: routing is by key
		WithDeviceWords(1<<16),
	)
	fc := dial(t, follower.Addr().String())
	waitReplFor(t, "late follower convergence", func() bool {
		return converged(t, pc, fc, n)
	})
	fstats := fc.lines(t, "stats")
	if v, ok := replStat(fstats, "repl_snapshots_loaded"); !ok || v == "0" {
		t.Fatalf("repl_snapshots_loaded = %q ok=%v, want >= 1", v, ok)
	}
}

// TestReplicationConvergesAcrossPrimaryCrash crashes the primary's
// shards mid-replication: the log generation bumps, the connected
// follower is re-seeded with a snapshot, and the copies converge on
// the post-crash state.
func TestReplicationConvergesAcrossPrimaryCrash(t *testing.T) {
	primary, follower := startReplPair(t)
	pc := dial(t, primary.Addr().String())
	fc := dial(t, follower.Addr().String())

	const n = 32
	for i := 0; i < n; i++ {
		pc.cmd(t, "set %d %d", i, i)
	}
	waitReplFor(t, "pre-crash convergence", func() bool {
		return converged(t, pc, fc, n)
	})

	if got := pc.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED EPOCH ") {
		t.Fatalf("crash: %q", got)
	}
	// Post-crash mutations land on a new log generation.
	for i := 0; i < n; i++ {
		pc.cmd(t, "set %d %d", i, i+9000)
	}
	waitReplFor(t, "post-crash convergence", func() bool {
		return converged(t, pc, fc, n)
	})
	stats := pc.lines(t, "stats")
	if v, ok := replStat(stats, "repl_snapshots"); !ok || v == "0" || v == "1" {
		t.Fatalf("repl_snapshots = %q ok=%v, want >= 2 (initial + post-crash reseed)", v, ok)
	}
}

// TestReplicationRejectsDualRole checks the config guard.
func TestReplicationRejectsDualRole(t *testing.T) {
	_, err := New(WithReplListen("127.0.0.1:0"), WithReplicaOf("127.0.0.1:1"))
	if err == nil {
		t.Fatal("dual-role config was accepted")
	}
}
