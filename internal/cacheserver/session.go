package cacheserver

import (
	"fmt"
	"sync"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/proto"
	"tsp/internal/repl"
	"tsp/internal/stack"
)

// Exactly-once retries via detectable operations. A client that loses
// a connection mid-command cannot tell whether its mutation applied —
// the classic at-most-once/at-least-once dilemma every retry loop
// faces. The TSP planner's answer is the same as for every other
// failure class: make the operation DETECTABLE with the minimum
// persistence that is still timely. Each shard keeps a bounded
// persistent dedup window — one record per client session holding
// {session id, highest applied seq, reply payload, witness key} — in
// the heap beside the epoch frontier, and commits the record INSIDE
// the same Atlas critical section as the mutation it witnesses. The
// record and the effect are therefore atomic under power failure: a
// recovered (or promoted) server either has both — the retry is
// recognized and answered from the recorded payload without
// re-applying — or neither, and the retry applies as a fresh request.
// No command pays an extra flush for this: the record's stores ride
// the section the mutation already commits.
//
// The wire contract (docs/PROTOCOL.md): a client binds its connection
// with `session <id>` and tags each mutation with a monotonically
// increasing `seq=<n>`. A seq equal to the session's record replays
// the recorded reply; a seq below it (or at/below the shard's eviction
// floor) answers `seq too old` — the bounded window's honesty about
// what it can no longer dedup; a higher seq applies and advances the
// record. Clients retry only their most recent request, so one record
// per session suffices.
//
// Scope: seq is honored on set, incr, mset, zadd, zincr, zdel, and
// single-key delete. A sessioned mset executes its non-witness shards
// first (absolute sets — idempotent under replay) and its witness
// shard (the shard of the first key) last, with the record committed
// in that final section: the record's presence therefore implies every
// other shard applied. Relaxed-tier sessioned writes keep their fast
// ack — the record buffers beside the value in the volatile overlay
// and both persist in the same section at epoch close, so a crash
// loses value and record together (the relaxed tier's legal loss; the
// retry simply re-applies). On a replicating primary every persisted
// record also rides the replication stream as a group mark, so a
// promoted follower inherits the window and keeps suppressing the same
// retries (DESIGN.md §12).

// Error texts of the session contract.
const (
	noSessionMsg = "seq requires a session (send: session <id> first)"
	seqScopeMsg  = "seq requires a mutating command"
	seqDeleteMsg = "seq requires a single-key delete"
	seqTooOldMsg = "seq too old (behind the session's dedup window)"
)

// sessVerdict classifies one sessioned request against the window.
type sessVerdict uint8

const (
	// sessFresh means the seq is new: apply and record.
	sessFresh sessVerdict = iota
	// sessDup means the seq equals the record: replay the payload.
	sessDup
	// sessOld means the seq is below the record or the eviction floor.
	sessOld
)

// sessRec is the volatile mirror of one session's dedup record. seq,
// pay and wkey track the newest acknowledged request (possibly still
// overlay-buffered on the relaxed tier); pseq is the seq the
// persistent slot currently holds (0 when nothing persisted); slot is
// the record's slot in the shard's persistent table, -1 while the
// record is volatile-only.
type sessRec struct {
	seq  uint64
	pay  uint64
	wkey uint64
	pseq uint64
	slot int
}

// sessTable is a shard's session dedup window: the volatile mirror of
// the persistent table (rebuilt from the heap on every recovery), the
// slot-occupancy index, and the eviction floor. The mirror is
// authoritative for checks — it covers volatile-only relaxed records
// the heap does not hold yet — and the heap is authoritative across
// crashes, which is exactly the relaxed tier's loss contract applied
// to the records themselves.
type sessTable struct {
	mu    sync.Mutex
	m     map[uint64]sessRec
	slots []uint64 // slot index -> occupying session id (0 = free)
	floor uint64   // highest evicted seq; seqs at/below it are undecidable
	cur   int      // round-robin eviction cursor
}

// sessRebuild (re)builds the volatile mirror from the shard's
// persistent session table. Called at shard construction and after
// every crash-reattach, under the shard write lock (or before the
// shard serves), so no reader races it. Volatile-only records vanish
// here by design: their values lived in the overlay the same crash
// discarded.
func (sh *shard) sessRebuild() {
	t := &sh.sess
	t.mu.Lock()
	defer t.mu.Unlock()
	p, slots := sh.stk.SessTable()
	t.m = make(map[uint64]sessRec)
	t.slots = make([]uint64, slots)
	t.cur = 0
	t.floor = 0
	if p.IsNil() || slots == 0 {
		return
	}
	h := sh.stk.Heap
	t.floor = h.Load(p, stack.SessFloorWord)
	for i := 0; i < slots; i++ {
		base := stack.SessHdrWords + stack.SessRecWords*i
		sess := h.Load(p, base+stack.SessRecSess)
		if sess == 0 {
			continue
		}
		seq := h.Load(p, base+stack.SessRecSeq)
		t.m[sess] = sessRec{
			seq:  seq,
			pay:  h.Load(p, base+stack.SessRecPayload),
			wkey: h.Load(p, base+stack.SessRecKey),
			pseq: seq,
			slot: i,
		}
		t.slots[i] = sess
	}
}

// sessCheck classifies (sess, seq) against the window. The payload is
// meaningful only on sessDup.
func (sh *shard) sessCheck(sess, seq uint64) (sessVerdict, uint64) {
	t := &sh.sess
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec, ok := t.m[sess]; ok {
		switch {
		case seq == rec.seq:
			return sessDup, rec.pay
		case seq < rec.seq:
			return sessOld, 0
		}
		return sessFresh, 0
	}
	if seq <= t.floor {
		return sessOld, 0
	}
	return sessFresh, 0
}

// sessBuffer records a relaxed-tier sessioned ack in the volatile
// mirror only — the persistent slot (if the session has one) is left
// at its old seq until the overlay entry's epoch flush calls
// sessPersist inside the flush section. Between ack and flush the
// mirror suppresses retries; a crash discards mirror and overlay
// together, so the retry re-applies against state that equally lost
// the value.
func (sh *shard) sessBuffer(sess, seq, pay, wkey uint64) {
	t := &sh.sess
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.m[sess]
	if !ok {
		rec = sessRec{slot: -1}
	}
	if seq >= rec.seq {
		rec.seq, rec.pay, rec.wkey = seq, pay, wkey
	}
	t.m[sess] = rec
}

// sessAddr returns the word address off words into the shard's session
// table block.
func sessAddr(p pheap.Ptr, off int) nvm.Addr {
	return p.Addr() + nvm.Addr(off)
}

// sessPersist commits (sess, seq, pay, wkey) into the shard's
// persistent session table. MUST be called inside an open Atlas
// section on th (the batch drain's section), holding the shard read
// lock: the record's stores are undo-logged with the mutation they
// witness, which is the whole point — record and effect commit or
// roll back together. Persists are seq-guarded (a slot never moves
// backwards), so out-of-order epoch flushes of two keys written by one
// session converge. When the table is full the round-robin victim's
// record is evicted and the floor raised to its seq — in the same
// section, so the window's honesty survives the crash too. On a
// replicating primary the persisted record is queued as a group mark
// for appendRepl (the caller holds the drain lock, which makes
// markScratch single-writer).
func (sh *shard) sessPersist(th *atlas.Thread, sess, seq, pay, wkey uint64) {
	t := &sh.sess
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.m[sess]
	if ok && rec.pseq >= seq {
		return
	}
	if !ok {
		rec = sessRec{slot: -1}
	}
	p, _ := sh.stk.SessTable()
	if p.IsNil() || len(t.slots) == 0 {
		return
	}
	slot := rec.slot
	if slot < 0 {
		slot = t.freeSlotLocked(sh, th, p)
	}
	base := stack.SessHdrWords + stack.SessRecWords*slot
	th.Store(sessAddr(p, base+stack.SessRecSess), sess)
	th.Store(sessAddr(p, base+stack.SessRecSeq), seq)
	th.Store(sessAddr(p, base+stack.SessRecPayload), pay)
	th.Store(sessAddr(p, base+stack.SessRecKey), wkey)
	if seq >= rec.seq {
		rec.seq, rec.pay, rec.wkey = seq, pay, wkey
	}
	rec.pseq, rec.slot = seq, slot
	t.m[sess] = rec
	t.slots[slot] = sess
	if sh.replLog != nil {
		sh.markScratch = append(sh.markScratch,
			repl.SessRec{Sess: sess, Seq: seq, Payload: pay, Key: wkey})
	}
}

// freeSlotLocked returns a free slot in the persistent table, evicting
// the round-robin victim (and raising the persistent floor to its seq,
// in-section) when the table is full. Caller holds t.mu and an open
// section on th.
func (t *sessTable) freeSlotLocked(sh *shard, th *atlas.Thread, p pheap.Ptr) int {
	for i := range t.slots {
		if t.slots[i] == 0 {
			return i
		}
	}
	v := t.cur
	t.cur = (t.cur + 1) % len(t.slots)
	victim := t.slots[v]
	if vrec, ok := t.m[victim]; ok {
		if vrec.seq > t.floor {
			t.floor = vrec.seq
			th.Store(sessAddr(p, stack.SessFloorWord), t.floor)
		}
		delete(t.m, victim)
	}
	t.slots[v] = 0
	sh.tel.Server.SessionEvicted.Inc()
	return v
}

// sessRaiseFloor raises the shard's eviction floor to at least floor —
// the follower-side merge of the primary's floor. Caller requirements
// match sessPersist.
func (sh *shard) sessRaiseFloor(th *atlas.Thread, floor uint64) {
	t := &sh.sess
	t.mu.Lock()
	defer t.mu.Unlock()
	if floor <= t.floor {
		return
	}
	p, _ := sh.stk.SessTable()
	if p.IsNil() {
		return
	}
	t.floor = floor
	th.Store(sessAddr(p, stack.SessFloorWord), floor)
}

// sessSnapshot reads the shard's PERSISTENT session window — the slot
// words, not the volatile mirror — for a replication state transfer.
// Volatile-only records are deliberately excluded: their values are
// not in the snapshot's pairs, so shipping the record would suppress a
// retry whose effect the follower never received. Takes the shard
// write lock briefly, like pairs().
func (sh *shard) sessSnapshot() ([]repl.SessRec, uint64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, slots := sh.stk.SessTable()
	if p.IsNil() || slots == 0 {
		return nil, 0
	}
	h := sh.stk.Heap
	floor := h.Load(p, stack.SessFloorWord)
	var recs []repl.SessRec
	for i := 0; i < slots; i++ {
		base := stack.SessHdrWords + stack.SessRecWords*i
		sess := h.Load(p, base+stack.SessRecSess)
		if sess == 0 {
			continue
		}
		recs = append(recs, repl.SessRec{
			Sess:    sess,
			Seq:     h.Load(p, base+stack.SessRecSeq),
			Payload: h.Load(p, base+stack.SessRecPayload),
			Key:     h.Load(p, base+stack.SessRecKey),
		})
	}
	return recs, floor
}

// sessPayload derives the recorded reply payload from a sessioned
// request's resolved ops: the new value for arithmetic commands, the
// found bit for deletes, 0 for sets (whose replies need no state).
func sessPayload(cmd proto.Cmd, ops []batchOp) uint64 {
	switch cmd {
	case proto.CmdIncr, proto.CmdZIncr:
		return ops[0].val
	case proto.CmdDelete, proto.CmdZDel:
		if ops[0].ok {
			return 1
		}
		return 0
	}
	return 0
}

// runSessReq executes one sessioned request inside the drain's open
// section: re-check the window (authoritative under the drain lock),
// apply the ops, and commit the dedup record — all in one OCS. An op
// error skips the record so the client's retry re-runs rather than
// being suppressed with a failure it can't see.
func (sh *shard) runSessReq(th *atlas.Thread, r *batchReq) {
	v, pay := sh.sessCheck(r.sess, r.sseq)
	switch v {
	case sessDup:
		r.sessDup, r.sessPay = true, pay
		return
	case sessOld:
		r.sessOld = true
		return
	}
	for i := range r.ops {
		sh.execOp(th, &r.ops[i], true)
	}
	for i := range r.ops {
		if r.ops[i].err != nil {
			return
		}
	}
	r.sessPay = sessPayload(r.sessCmd, r.ops)
	sh.sessPersist(th, r.sess, r.sseq, r.sessPay, r.wkey)
}

// runSessGroup runs one sessioned op group on sh under the drain lock
// — check, effects and record in one OCS (chunking never splits a
// sessioned group: serveSessioned keeps witness groups within the
// batch bound). Returns the completed request carrying the verdict.
func (s *Server) runSessGroup(sh *shard, ops []batchOp, cmd proto.Cmd, sess, seq, wkey uint64) *batchReq {
	req := &batchReq{
		ops: ops, sess: sess, sseq: seq, wkey: wkey, sessCmd: cmd,
		done: make(chan struct{}),
	}
	sh.combineMu.Lock()
	sh.busy.Store(true)
	sh.runBatch([]*batchReq{req}, len(ops))
	sh.busy.Store(false)
	sh.combineMu.Unlock()
	return req
}

// sessReplay shapes the reply a duplicate retry is answered with, from
// the recorded payload and the (retried) request's own shape. The
// epoch stamp, when the retry rides a relaxed tier, is the current
// epoch: the recorded effect is at least that durable.
func (s *Server) sessReplay(cs *connState, req *proto.Request, pay uint64) proto.Reply {
	var epoch uint64
	if req.Dur != proto.DurDurable && s.epochEnabled() {
		epoch = s.curEpoch.Load()
	}
	switch req.Cmd {
	case proto.CmdIncr, proto.CmdZIncr:
		return proto.Reply{Kind: proto.KInt, Val: pay, Epoch: epoch}
	case proto.CmdDelete, proto.CmdZDel:
		items := append(cs.items[:0], proto.Item{Key: req.KV[0], Found: pay != 0})
		cs.items = items
		return proto.Reply{Kind: proto.KDelete, Items: items, Epoch: epoch}
	case proto.CmdMSet:
		return proto.Reply{Kind: proto.KStoredN, N: len(req.KV) / 2, Epoch: epoch}
	default: // CmdSet, CmdZAdd
		return proto.Reply{Kind: proto.KStored, Epoch: epoch}
	}
}

// sessTooOld is the reply for a seq below the window: a client error
// (native CLIENT_ERROR, RESP -ERR) — the request is well-formed but
// undecidable, and only the client knows whether it was acked before.
func sessTooOld() proto.Reply {
	return proto.Reply{Kind: proto.KErrClient, Msg: seqTooOldMsg}
}

// serveSessioned serves one seq-tagged mutation with the exactly-once
// contract. Called from serveBatch as a sequence point (the pending
// data group flushed first), so sessioned and plain commands interleave
// in program order on the connection.
func (s *Server) serveSessioned(cs *connState, req *proto.Request) proto.Reply {
	start := time.Now()
	if cs.sess == 0 {
		return proto.Reply{Kind: proto.KErrClient, Msg: noSessionMsg}
	}
	if !mutates(req.Cmd) {
		return proto.Reply{Kind: proto.KErrClient, Msg: seqScopeMsg}
	}
	if req.Cmd == proto.CmdDelete && len(req.KV) != 1 {
		return proto.Reply{Kind: proto.KErrClient, Msg: seqDeleteMsg}
	}
	wkey := req.KV[0]
	wsh := s.shardOf(wkey)
	tel := wsh.tel.Server
	tel.SessionOps.Inc()
	defer func() {
		wsh.tel.CmdLatency.ObserveProto(cs.ptel, cmdTelemetry(req.Cmd), time.Since(start))
	}()

	// Volatile pre-check: answers dups and stale seqs without touching
	// a section, and keeps a duplicate mset from re-entering its
	// non-witness shards at all.
	switch v, pay := wsh.sessCheck(cs.sess, req.Seq); v {
	case sessDup:
		tel.SessionDups.Inc()
		return s.sessReplay(cs, req, pay)
	case sessOld:
		tel.SessionTooOld.Inc()
		return sessTooOld()
	}

	// Relaxed/fire single-key writes keep their overlay fast path; a
	// sessioned mset always escalates to durable (its multi-shard
	// witness ordering needs the section).
	if req.Dur != proto.DurDurable && s.epochEnabled() && req.Cmd != proto.CmdMSet {
		return s.serveSessRelaxed(cs, req, wsh)
	}
	tel.DurableOps.Inc()

	ops := appendOps(cs.sops[:0], req)
	cs.sops = ops[:0]

	// A sessioned mset may span shards: execute every non-witness
	// shard's ops first (absolute sets — replaying them after a crash
	// that beat the record is idempotent), then the witness shard with
	// the record in its section. Record present ⇒ everything applied.
	var witness []batchOp
	if req.Cmd == proto.CmdMSet {
		for i := range ops {
			if s.shardOf(ops[i].key) == wsh {
				witness = append(witness, ops[i])
			}
		}
		if len(witness) < len(ops) {
			s.runNonWitness(ops, wsh)
		}
	} else {
		witness = ops
	}

	// Keep the witness group inside the batch bound (one OCS, one
	// undo-log-ring's worth): a wide mset's surplus witness-shard sets
	// run ahead as plain absolute sets — idempotent like the non-witness
	// legs — with only the final chunk carrying the record.
	if max := s.cfg.batchMax; max > 0 && len(witness) > max {
		head := len(witness) - max
		s.runGroupDirect(wsh, witness[:head], 0)
		witness = witness[head:]
	}

	r := s.runSessGroup(wsh, witness, req.Cmd, cs.sess, req.Seq, wkey)
	switch {
	case r.sessDup:
		tel.SessionDups.Inc()
		return s.sessReplay(cs, req, r.sessPay)
	case r.sessOld:
		tel.SessionTooOld.Inc()
		return sessTooOld()
	}
	if err := spanErr(r.ops); err != nil {
		return proto.Reply{Kind: proto.KErrServer, Msg: err.Error()}
	}
	switch req.Cmd {
	case proto.CmdIncr, proto.CmdZIncr:
		return proto.Reply{Kind: proto.KInt, Val: r.sessPay}
	case proto.CmdDelete, proto.CmdZDel:
		items := append(cs.items[:0], proto.Item{Key: wkey, Found: r.sessPay != 0})
		cs.items = items
		return proto.Reply{Kind: proto.KDelete, Items: items}
	case proto.CmdMSet:
		return proto.Reply{Kind: proto.KStoredN, N: len(req.KV) / 2}
	default: // CmdSet, CmdZAdd
		return proto.Reply{Kind: proto.KStored}
	}
}

// runNonWitness runs the non-witness leg of a sessioned mset: each
// non-witness shard's ops go through that shard's drain lock in turn.
// Results are not consulted — they are absolute sets, and a retry
// replays them idempotently when a crash beats the witness record.
func (s *Server) runNonWitness(ops []batchOp, skip *shard) {
	byShard := make(map[*shard][]batchOp)
	for i := range ops {
		sh := s.shardOf(ops[i].key)
		if sh == skip {
			continue
		}
		byShard[sh] = append(byShard[sh], ops[i])
	}
	for sh, group := range byShard {
		s.runGroupDirect(sh, group, 0)
	}
}

// serveSessRelaxed buffers one sessioned relaxed/fire write: value and
// dedup record land side by side in the overlay and the volatile
// mirror, ack immediately with the epoch stamp, and both persist in
// the same section when the epoch closes (or a durable fold takes the
// entry). A crash before that section loses value and record together
// — the relaxed tier's loss contract extended to detectability: the
// retry re-applies precisely because nothing of the first attempt
// survived.
func (s *Server) serveSessRelaxed(cs *connState, req *proto.Request, sh *shard) proto.Reply {
	tel := sh.tel.Server
	if req.Dur == proto.DurFire {
		tel.FireOps.Inc()
	} else {
		tel.RelaxedOps.Inc()
	}
	key := req.KV[0]
	sess, seq := cs.sess, req.Seq
	var pay uint64
	var rep proto.Reply
	switch req.Cmd {
	case proto.CmdSet:
		sh.ovl.putSess(key, false, false, req.KV[1], sess, seq, 0)
		rep = proto.Reply{Kind: proto.KStored, Epoch: s.curEpoch.Load()}
	case proto.CmdZAdd:
		sh.ovl.putSess(key, true, false, req.KV[1], sess, seq, 0)
		rep = proto.Reply{Kind: proto.KStored, Epoch: s.curEpoch.Load()}
	case proto.CmdIncr, proto.CmdZIncr:
		list := req.Cmd == proto.CmdZIncr
		base, _, err := s.peekVal(cs, sh, key, list)
		if err != nil {
			return proto.Reply{Kind: proto.KErrServer, Msg: err.Error()}
		}
		pay = base + req.KV[1]
		sh.ovl.putSess(key, list, false, pay, sess, seq, pay)
		rep = proto.Reply{Kind: proto.KInt, Val: pay, Epoch: s.curEpoch.Load()}
	default: // CmdDelete (single-key), CmdZDel
		list := req.Cmd == proto.CmdZDel
		found := true
		if req.Dur != proto.DurFire {
			var err error
			_, found, err = s.peekVal(cs, sh, key, list)
			if err != nil {
				return proto.Reply{Kind: proto.KErrServer, Msg: err.Error()}
			}
		}
		if found {
			pay = 1
		}
		sh.ovl.putSess(key, list, true, 0, sess, seq, pay)
		items := append(cs.items[:0], proto.Item{Key: key, Found: found})
		cs.items = items
		rep = proto.Reply{Kind: proto.KDelete, Items: items, Epoch: s.curEpoch.Load()}
	}
	sh.sessBuffer(sess, seq, pay, key)
	return rep
}

// serveSession binds the connection to a client session for subsequent
// seq-tagged mutations. Rebinding mid-connection is allowed (a proxy
// multiplexing several logical clients re-binds per request stream).
func (s *Server) serveSession(cs *connState, req *proto.Request) proto.Reply {
	cs.sess = req.KV[0]
	return proto.Reply{Kind: proto.KRaw, Msg: fmt.Sprintf("OK SESSION %d", req.KV[0])}
}
