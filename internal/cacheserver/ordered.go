package cacheserver

import (
	"sort"
	"time"

	"tsp/internal/proto"
)

// The ordered read path. zget, zrange and zcount never enter the batch
// pipeline and never open an Atlas critical section: the skip list is
// lock-free and its bottom-level CAS is both linearization point and
// durability point (the paper's Section 4.1 recovery-observer argument
// — a reader that can run concurrently with the writer observes
// nothing a recovery observer couldn't), so a traversal is correct
// against concurrent zadd batches and against a crash landing
// mid-scan. The only lock taken is the shard's generation read lock,
// which orders the read against the administrative crash command's
// stack swap — it protects the *pointer* to the list, not the list.
//
// Ordered keys are hash-routed across shards exactly like map keys
// (see DESIGN.md §10): a zrange therefore fans out to every shard and
// k-way merges the per-shard ascending runs; a zcount sums per-shard
// counts. Both stay lock-free per shard.

// defaultRangeLimit caps a zrange that names no limit, so an
// accidental full-keyspace scan cannot stall a connection or balloon
// its reply arena.
const defaultRangeLimit = 65536

// serveOrdered answers one ordered-keyspace read (zget, zrange,
// zcount). Called from serveBatch after the pending write group
// flushed, so a pipelined zadd→zrange reads its own writes.
func (s *Server) serveOrdered(cs *connState, req *proto.Request) proto.Reply {
	start := time.Now()
	var rep proto.Reply
	var telSh *shard
	switch req.Cmd {
	case proto.CmdZGet:
		telSh = s.shardOf(req.KV[0])
		v, ok := telSh.listGet(req.KV[0])
		if ok {
			rep = proto.Reply{Kind: proto.KValue, Key: req.KV[0], Val: v}
		} else {
			rep = proto.Reply{Kind: proto.KNotFound}
		}
	case proto.CmdZRange:
		telSh = s.shards[0]
		limit := defaultRangeLimit
		if len(req.KV) == 3 && req.KV[2] < uint64(limit) {
			limit = int(req.KV[2])
		}
		items := s.rangeMerged(cs, req.KV[0], req.KV[1], limit)
		telSh.tel.RangeLen.ObserveValue(uint64(len(items)))
		rep = proto.Reply{Kind: proto.KRange, Items: items}
	default: // CmdZCount
		telSh = s.shards[0]
		n := 0
		for _, sh := range s.shards {
			n += sh.listCount(req.KV[0], req.KV[1])
		}
		rep = proto.Reply{Kind: proto.KInt, Val: uint64(n)}
	}
	el := time.Since(start)
	telSh.tel.ReadLatency.Observe(el)
	telSh.tel.CmdLatency.ObserveProto(cs.ptel, cmdTelemetry(req.Cmd), el)
	return rep
}

// listGet reads one ordered key wait-free off the shard's skip list,
// after consulting the relaxed overlay — a pending relaxed zadd/zdel
// is the key's newest logical state (read-your-writes across tiers).
func (sh *shard) listGet(key uint64) (uint64, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sh.tel.Server.ZGets.Inc()
	if e, hit := sh.ovl.get(key, true); hit {
		if e.del {
			return 0, false
		}
		sh.tel.Server.ZHits.Inc()
		return e.val, true
	}
	v, ok := sh.stk.List.Get(key)
	if ok {
		sh.tel.Server.ZHits.Inc()
	}
	return v, ok
}

// listRange appends the shard's live ordered pairs in [lo, hi) to out,
// ascending, stopping once limit pairs have been appended in total.
// Pending relaxed entries merge in by key — a buffered zadd appears, a
// buffered zdel hides its key — so a range reads the same logical
// state a zget would, tier boundaries invisible.
func (sh *shard) listRange(lo, hi uint64, limit int, out []proto.Item) []proto.Item {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sh.tel.Server.ZGets.Inc()
	type ovPair struct {
		key uint64
		e   ovEntry
	}
	var pend []ovPair
	sh.ovl.rangeList(lo, hi, func(k uint64, e ovEntry) {
		pend = append(pend, ovPair{key: k, e: e})
	})
	if len(pend) == 0 {
		sh.stk.List.RangeBetween(lo, hi, func(k, v uint64) bool {
			if len(out) >= limit {
				return false
			}
			out = append(out, proto.Item{Key: k, Val: v, Found: true})
			return len(out) < limit
		})
		return out
	}
	sort.Slice(pend, func(i, j int) bool { return pend[i].key < pend[j].key })
	pi := 0
	sh.stk.List.RangeBetween(lo, hi, func(k, v uint64) bool {
		for pi < len(pend) && pend[pi].key < k {
			p := pend[pi]
			pi++
			if !p.e.del {
				if len(out) >= limit {
					return false
				}
				out = append(out, proto.Item{Key: p.key, Val: p.e.val, Found: true})
			}
		}
		if pi < len(pend) && pend[pi].key == k {
			p := pend[pi]
			pi++
			if p.e.del {
				return len(out) < limit
			}
			v = p.e.val
		}
		if len(out) >= limit {
			return false
		}
		out = append(out, proto.Item{Key: k, Val: v, Found: true})
		return len(out) < limit
	})
	for pi < len(pend) && len(out) < limit {
		p := pend[pi]
		pi++
		if !p.e.del {
			out = append(out, proto.Item{Key: p.key, Val: p.e.val, Found: true})
		}
	}
	return out
}

// listCount counts the shard's live ordered keys in [lo, hi),
// adjusting for pending relaxed entries: a buffered zadd of an absent
// key adds one, a buffered zdel of a present key removes one.
func (sh *shard) listCount(lo, hi uint64) int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sh.tel.Server.ZGets.Inc()
	n := sh.stk.List.CountBetween(lo, hi)
	sh.ovl.rangeList(lo, hi, func(k uint64, e ovEntry) {
		_, has := sh.stk.List.Get(k)
		switch {
		case e.del && has:
			n--
		case !e.del && !has:
			n++
		}
	})
	return n
}

// rangeMerged produces the globally ascending [lo, hi) scan across
// every shard's skip list, capped at limit pairs. Keys are
// hash-partitioned, so each lands on exactly one shard and the
// per-shard ascending runs merge without duplicates. The result
// aliases the connection's item arena, valid until the next reply is
// built — the caller stages it immediately.
func (s *Server) rangeMerged(cs *connState, lo, hi uint64, limit int) []proto.Item {
	if limit <= 0 {
		cs.items = cs.items[:0]
		return cs.items
	}
	if len(s.shards) == 1 {
		cs.items = s.shards[0].listRange(lo, hi, limit, cs.items[:0])
		return cs.items
	}
	// Collect each shard's run, then k-way merge by key. The per-shard
	// runs are each capped at limit — more can never survive the merge.
	runs := make([][]proto.Item, 0, len(s.shards))
	for _, sh := range s.shards {
		run := sh.listRange(lo, hi, limit, nil)
		if len(run) > 0 {
			runs = append(runs, run)
		}
	}
	out := cs.items[:0]
	for len(out) < limit && len(runs) > 0 {
		min := 0
		for i := 1; i < len(runs); i++ {
			if runs[i][0].Key < runs[min][0].Key {
				min = i
			}
		}
		out = append(out, runs[min][0])
		runs[min] = runs[min][1:]
		if len(runs[min]) == 0 {
			runs[min] = runs[len(runs)-1]
			runs = runs[:len(runs)-1]
		}
	}
	cs.items = out
	return out
}
