package cacheserver

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tsp/internal/harness"
)

// TestOptimisticReadPathServes: reads on the default (optimistic)
// configuration are correct, land on the lock-free path, and never
// create batch pipeline work.
func TestOptimisticReadPathServes(t *testing.T) {
	s := startServer(t, WithShards(2))
	c := dial(t, s.Addr().String())
	for i := 0; i < 32; i++ {
		if got := c.cmd(t, "set %d %d", i, i*10); got != "STORED" {
			t.Fatalf("set: %q", got)
		}
	}
	stats := c.lines(t, "stats")
	batchesBefore := statValue(t, stats, "server_batches")
	optBefore := statValue(t, stats, "map_opt_gets")

	for i := 0; i < 32; i++ {
		if got := c.cmd(t, "get %d", i); got != fmt.Sprintf("VALUE %d %d", i, i*10) {
			t.Fatalf("get %d: %q", i, got)
		}
	}
	if got := c.cmd(t, "get 999"); got != "NOT_FOUND" {
		t.Fatalf("get miss: %q", got)
	}
	lines := mgetLines(t, c, 8)
	for i := 0; i < 8; i++ {
		if lines[i] != fmt.Sprintf("VALUE %d %d", i, i*10) {
			t.Fatalf("mget line %d: %q", i, lines[i])
		}
	}

	stats = c.lines(t, "stats")
	if got := statValue(t, stats, "server_batches"); got != batchesBefore {
		t.Fatalf("reads created %d batch groups; the optimistic path must bypass the pipeline", got-batchesBefore)
	}
	// 33 gets + 8 mget keys, all on a quiescent map: every one lock-free.
	if got := statValue(t, stats, "map_opt_gets"); got != optBefore+41 {
		t.Fatalf("map_opt_gets = %d, want %d", got, optBefore+41)
	}
	if got := statValue(t, stats, "read_count"); got != 34 {
		t.Fatalf("read_count = %d, want 34 (33 gets + 1 fully-optimistic mget)", got)
	}
	if got := statValue(t, stats, "cmd_get_count"); got != 33 {
		t.Fatalf("cmd_get_count = %d, want 33", got)
	}
}

// TestOptimisticReadsDisabled: WithOptimisticReads(false) routes every
// read through the locked machinery — the opt counters stay zero.
func TestOptimisticReadsDisabled(t *testing.T) {
	s := startServer(t, WithShards(2), WithOptimisticReads(false))
	c := dial(t, s.Addr().String())
	c.cmd(t, "set 1 100")
	if got := c.cmd(t, "get 1"); got != "VALUE 1 100" {
		t.Fatalf("get: %q", got)
	}
	mgetLines(t, c, 4)
	stats := c.lines(t, "stats")
	if got := statValue(t, stats, "map_opt_gets"); got != 0 {
		t.Fatalf("map_opt_gets = %d with optimistic reads disabled", got)
	}
	if got := statValue(t, stats, "read_count"); got != 0 {
		t.Fatalf("read_count = %d with optimistic reads disabled", got)
	}
}

// TestOptimisticReadsOnFollower: a read-only follower serves get/mget on
// the lock-free path without ever touching the drain lock — reads
// coexist with the replication applier instead of queueing behind it.
func TestOptimisticReadsOnFollower(t *testing.T) {
	primary, follower := startReplPair(t)
	pc := dial(t, primary.Addr().String())
	fc := dial(t, follower.Addr().String())

	const n = 64
	for i := 0; i < n; i++ {
		if got := pc.cmd(t, "set %d %d", i, i+1000); got != "STORED" {
			t.Fatalf("set: %q", got)
		}
	}
	waitReplFor(t, "follower convergence", func() bool { return converged(t, pc, fc, n) })

	// Quiescent now: no primary traffic, so the applier is idle and the
	// follower's batch count is stable.
	fstats := fc.lines(t, "stats")
	batchesBefore := statValue(t, fstats, "server_batches")
	optBefore := statValue(t, fstats, "map_opt_gets")

	// The follower still rejects writes (the read gate is untouched)...
	if got := fc.cmd(t, "set 1 2"); !strings.HasPrefix(got, "SERVER_ERROR read-only") {
		t.Fatalf("follower accepted a write: %q", got)
	}
	// ...while reads are served lock-free.
	for i := 0; i < n; i++ {
		if got := fc.cmd(t, "get %d", i); got != fmt.Sprintf("VALUE %d %d", i, i+1000) {
			t.Fatalf("follower get %d: %q", i, got)
		}
	}
	lines := mgetLines(t, fc, n)
	for i := 0; i < n; i++ {
		if lines[i] != fmt.Sprintf("VALUE %d %d", i, i+1000) {
			t.Fatalf("follower mget line %d: %q", i, lines[i])
		}
	}

	fstats = fc.lines(t, "stats")
	if got := statValue(t, fstats, "server_batches"); got != batchesBefore {
		t.Fatalf("follower reads took the drain lock: batches %d -> %d", batchesBefore, got)
	}
	if got := statValue(t, fstats, "map_opt_gets"); got != optBefore+2*n {
		t.Fatalf("map_opt_gets = %d, want %d", got, optBefore+2*n)
	}
}

// TestCmdLatencyCountedOncePerCommand: a multi-shard mget/mset is one
// command and must observe CmdLatency exactly once, not once per
// touched shard (the per-shard inflation this regression test pins).
func TestCmdLatencyCountedOncePerCommand(t *testing.T) {
	// Optimistic reads off so mget exercises the exec multi-shard path.
	s := startServer(t, WithShards(4), WithOptimisticReads(false))
	c := dial(t, s.Addr().String())

	// 32 keys spread across 4 shards: both commands touch several shards.
	var sb strings.Builder
	sb.WriteString("mset")
	for i := 0; i < 32; i++ {
		fmt.Fprintf(&sb, " %d %d", i, i)
	}
	if got := c.cmd(t, "%s", sb.String()); got != "STORED 32" {
		t.Fatalf("mset: %q", got)
	}
	mgetLines(t, c, 32)

	stats := c.lines(t, "stats")
	if got := statValue(t, stats, "cmd_mset_count"); got != 1 {
		t.Fatalf("cmd_mset_count = %d, want 1 (one command, one observation)", got)
	}
	if got := statValue(t, stats, "cmd_mget_count"); got != 1 {
		t.Fatalf("cmd_mget_count = %d, want 1 (one command, one observation)", got)
	}
}

// TestOptimisticReadsUnderWriteLoad is the no-livelock acceptance test:
// under a 100% write load on a single shard, every read still completes
// — the retry budget bounds the optimistic attempts and the locked path
// finishes the job, visible as a bounded fallback counter.
func TestOptimisticReadsUnderWriteLoad(t *testing.T) {
	s := startServer(t, WithShards(1), WithBuckets(64, 64)) // one stripe: every write collides
	addr := s.Addr().String()

	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wc := dial(t, addr)
		wg.Add(1)
		go func(w int, wc *client) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if got := wc.cmd(t, "set %d %d", (w*1000+i)%64, i); got != "STORED" {
					t.Errorf("set: %q", got)
					return
				}
			}
		}(w, wc)
	}

	rc := dial(t, addr)
	const reads = 500
	for i := 0; i < reads; i++ {
		got := rc.cmd(t, "get %d", i%64)
		if !strings.HasPrefix(got, "VALUE") && got != "NOT_FOUND" {
			t.Fatalf("get under write load: %q", got)
		}
	}
	close(stop)
	wg.Wait()

	stats := rc.lines(t, "stats")
	optGets := statValue(t, stats, "map_opt_gets")
	retries := statValue(t, stats, "map_opt_retries")
	fallbacks := statValue(t, stats, "map_opt_fallbacks")
	t.Logf("under write load: opt_gets=%d retries=%d fallbacks=%d", optGets, retries, fallbacks)
	// Every read terminated (we got 500 responses); the retry budget is
	// the only thing bounding the optimistic attempts, so the attempt
	// count can never exceed budget * reads.
	if max := uint64(reads * 4); retries > max {
		t.Fatalf("opt_retries = %d > %d: retry budget not enforced", retries, max)
	}
	if optGets+fallbacks < reads {
		t.Fatalf("opt_gets+fallbacks = %d, want >= %d: some read bypassed both paths", optGets+fallbacks, reads)
	}
}

// TestCrashCampaignWithOptimisticReaders runs the Section 5.1-shaped
// workload (per-writer c1/high/c2 increment triples) against a server
// being crash-and-recovered mid-load while optimistic readers hammer
// the same keys lock-free, then checks Equations 1 and 2 on the final
// state — the recovery-observer argument end to end: lock-free readers
// add zero crash-consistency exposure.
func TestCrashCampaignWithOptimisticReaders(t *testing.T) {
	s := startServer(t, WithShards(2), WithDeviceWords(1<<18))
	addr := s.Addr().String()

	const (
		writers  = 4
		iters    = 120
		highKeys = 16
		crashes  = 3
	)
	highBase := harness.HighBase(writers)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wc := dial(t, addr)
		wg.Add(1)
		go func(w int, wc *client) {
			defer wg.Done()
			c1, c2 := harness.KeyC1(w), harness.KeyC2(w)
			for i := 0; i < iters; i++ {
				if got := wc.cmd(t, "incr %d 1", c1); strings.HasPrefix(got, "SERVER_ERROR") {
					t.Errorf("incr c1: %q", got)
					return
				}
				high := highBase + uint64((w*iters+i)%highKeys)
				if got := wc.cmd(t, "incr %d 1", high); strings.HasPrefix(got, "SERVER_ERROR") {
					t.Errorf("incr high: %q", got)
					return
				}
				if got := wc.cmd(t, "incr %d 1", c2); strings.HasPrefix(got, "SERVER_ERROR") {
					t.Errorf("incr c2: %q", got)
					return
				}
			}
		}(w, wc)
	}

	// Optimistic readers: per-key monotonicity of the c1 counters is the
	// linearizability property the seqlock must preserve across crashes.
	stopReaders := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rc := dial(t, addr)
		rg.Add(1)
		go func(rc *client) {
			defer rg.Done()
			last := make([]uint64, writers)
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				for w := 0; w < writers; w++ {
					got := rc.cmd(t, "get %d", harness.KeyC1(w))
					if got == "NOT_FOUND" {
						continue
					}
					fields := strings.Fields(got)
					if len(fields) != 3 || fields[0] != "VALUE" {
						t.Errorf("reader got %q", got)
						return
					}
					v, err := strconv.ParseUint(fields[2], 10, 64)
					if err != nil {
						t.Errorf("reader value: %v", err)
						return
					}
					if v < last[w] {
						t.Errorf("non-monotonic read of c1[%d]: %d after %d", w, v, last[w])
						return
					}
					last[w] = v
				}
			}
		}(rc)
	}

	// Crash injector: whole-server power failures while everything runs.
	cc := dial(t, addr)
	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()
	for i := 0; i < crashes; i++ {
		// Pace each kill on actual write progress (or writer completion,
		// whichever first) so a crash always lands on live traffic.
		start := totalSets(s)
		waitFor(t, 10*time.Second, "write progress before crash", func() bool {
			select {
			case <-writersDone:
				return true
			default:
			}
			return totalSets(s)-start >= 50
		})
		if got := cc.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED EPOCH ") {
			t.Fatalf("crash %d: %q", i, got)
		}
	}

	wg.Wait()
	close(stopReaders)
	rg.Wait()

	// The recovery observer's verdict on the quiescent store, over the
	// wire (Section 5.1, Equations 1 and 2).
	var sumC1, sumC2, sumHigh uint64
	get := func(key uint64) uint64 {
		got := cc.cmd(t, "get %d", key)
		if got == "NOT_FOUND" {
			return 0
		}
		fields := strings.Fields(got)
		v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", got, err)
		}
		return v
	}
	for w := 0; w < writers; w++ {
		c1, c2 := get(harness.KeyC1(w)), get(harness.KeyC2(w))
		if !(c2 <= c1 && c1 <= c2+1) {
			t.Fatalf("per-thread invariant violated for writer %d: c1=%d c2=%d", w, c1, c2)
		}
		sumC1 += c1
		sumC2 += c2
	}
	for k := uint64(0); k < highKeys; k++ {
		sumHigh += get(highBase + k)
	}
	diff := int64(sumC1) - int64(sumC2)
	if diff < 0 || diff > writers {
		t.Fatalf("Equation 1 violated: Σc1-Σc2 = %d, want [0,%d]", diff, writers)
	}
	if !(sumC1 >= sumHigh && sumHigh >= sumC2) {
		t.Fatalf("Equation 2 violated: Σc1=%d ΣH=%d Σc2=%d", sumC1, sumHigh, sumC2)
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
	stats := cc.lines(t, "stats")
	if got := statValue(t, stats, "map_opt_gets"); got == 0 {
		t.Fatal("campaign readers never hit the optimistic path")
	}
	if got := statValue(t, stats, "recovery_count"); got < crashes {
		t.Fatalf("recovery_count = %d, want >= %d", got, crashes)
	}
}

// TestMGetSnapshotConsistency: an optimistic mget must be a cross-key
// SNAPSHOT, not merely a set of individually-valid reads. A writer
// loops msets that rewrite every key to one common value; a reader that
// catches key A from mset v and key B from mset v+1 has observed a
// mixture no locked reader could — per-key seqlock validation alone
// admits exactly that interleaving (read A, mset commits, read B). The
// group-level protections this test witnesses end to end: runBatch
// holds every stripe of an mset odd for its whole section, and
// readOptimistic's capture-all/revalidate-all protocol rejects any
// mget whose stripes moved between its first and last read.
func TestMGetSnapshotConsistency(t *testing.T) {
	s := startServer(t, WithShards(1))
	addr := s.Addr().String()

	// Enough keys that the walk from the mget's first read to its last
	// is a real window for a concurrent mset to land in.
	keys := make([]uint64, 32)
	for i := range keys {
		keys[i] = uint64(i*97 + 3)
	}
	mset := func(v uint64) string {
		var sb strings.Builder
		sb.WriteString("mset")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %d %d", k, v)
		}
		return sb.String()
	}
	mgetCmd := func() string {
		var sb strings.Builder
		sb.WriteString("mget")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %d", k)
		}
		return sb.String()
	}()

	wc := dial(t, addr)
	stored := fmt.Sprintf("STORED %d", len(keys))
	if got := wc.cmd(t, "%s", mset(0)); got != stored {
		t.Fatalf("seed mset: %q", got)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const writers = 4
	for w := 0; w < writers; w++ {
		c := dial(t, addr)
		wg.Add(1)
		go func(w int, c *client) {
			defer wg.Done()
			for v := uint64(w*1_000_000 + 1); ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				if got := c.cmd(t, "%s", mset(v)); got != stored {
					t.Errorf("mset: %q", got)
					return
				}
			}
		}(w, c)
	}

	const readers = 3
	const reads = 800
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rc := dial(t, addr)
		rg.Add(1)
		go func(rc *client) {
			defer rg.Done()
			for i := 0; i < reads; i++ {
				lines := rc.lines(t, "%s", mgetCmd)
				if len(lines) != len(keys)+1 {
					t.Errorf("mget returned %d lines: %v", len(lines), lines)
					return
				}
				var first uint64
				for j, k := range keys {
					want := fmt.Sprintf("VALUE %d ", k)
					if !strings.HasPrefix(lines[j], want) {
						t.Errorf("mget line %d: %q", j, lines[j])
						return
					}
					v, err := strconv.ParseUint(strings.TrimPrefix(lines[j], want), 10, 64)
					if err != nil {
						t.Errorf("mget value: %v", err)
						return
					}
					if j == 0 {
						first = v
					} else if v != first {
						t.Errorf("torn mget snapshot: key %d = %d but key %d = %d", keys[0], first, k, v)
						return
					}
				}
			}
		}(rc)
	}
	rg.Wait()
	close(stop)
	wg.Wait()

	// The guarantee is only interesting if the lock-free path actually
	// served reads; an all-fallback run would pass vacuously.
	stats := wc.lines(t, "stats")
	if got := statValue(t, stats, "map_opt_gets"); got == 0 {
		t.Fatal("no mget ever hit the optimistic path")
	}
}

// TestMGetRejectsMidGroupCommit lands a full durable mset between two
// reads of one optimistic mget — deterministically, via the server's
// optReadHook — and asserts the group validation refuses to serve the
// result. This is the regression the capture-all/revalidate-all
// protocol exists for: both reads are INDIVIDUALLY valid (each key held
// a committed value at its read), but the pair never coexisted, and the
// old per-key validation would have returned the mixture. The timing
// race is unreachable on a single-core host, so the hook is what makes
// the hazard testable at all there.
func TestMGetRejectsMidGroupCommit(t *testing.T) {
	s := startServer(t, WithShards(1))
	wc := dial(t, s.Addr().String())
	const k1, k2 = 5, 9
	if got := wc.cmd(t, "mset %d 1 %d 1", k1, k2); got != "STORED 2" {
		t.Fatalf("seed mset: %q", got)
	}

	fired := false
	s.optReadHook = func(i int) {
		if fired {
			return
		}
		fired = true
		// A whole mset commits between the mget's two reads.
		if got := wc.cmd(t, "mset %d 2 %d 2", k1, k2); got != "STORED 2" {
			t.Errorf("mid-group mset: %q", got)
		}
	}
	defer func() { s.optReadHook = nil }()

	ops := []batchOp{{kind: opGet, key: k1}, {kind: opGet, key: k2}}
	pending := s.readOptimistic(ops)
	if !fired {
		t.Fatal("interleaving hook never fired")
	}
	if len(pending) != len(ops) {
		t.Fatalf("readOptimistic returned pending=%v: a mid-group commit must send the whole group to the locked fallback", pending)
	}
}

// TestMultiFollowerFanout exercises the primary's one-to-many streaming
// (ROADMAP open item): two followers fed concurrently both converge,
// and after the primary dies either one can be promoted with Equations
// 1 and 2 intact — the replicated copy is always a group-prefix of the
// primary's commit order.
func TestMultiFollowerFanout(t *testing.T) {
	primary := startServer(t,
		WithReplListen("127.0.0.1:0"),
		WithShards(2),
		WithDeviceWords(1<<16),
	)
	replAddr := primary.ReplAddr().String()
	f1 := startServer(t, WithReplicaOf(replAddr), WithShards(2), WithDeviceWords(1<<16))
	f2 := startServer(t, WithReplicaOf(replAddr), WithShards(2), WithDeviceWords(1<<16))

	pc := dial(t, primary.Addr().String())
	waitReplFor(t, "both followers connected", func() bool {
		return primary.replPrimary.Followers() == 2
	})

	const (
		writers  = 3
		iters    = 50
		highKeys = 8
	)
	highBase := harness.HighBase(writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wc := dial(t, primary.Addr().String())
		wg.Add(1)
		go func(w int, wc *client) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				wc.cmd(t, "incr %d 1", harness.KeyC1(w))
				wc.cmd(t, "incr %d 1", highBase+uint64((w*iters+i)%highKeys))
				wc.cmd(t, "incr %d 1", harness.KeyC2(w))
			}
		}(w, wc)
	}
	wg.Wait()

	nKeys := int(highBase) + highKeys
	f1c := dial(t, f1.Addr().String())
	f2c := dial(t, f2.Addr().String())
	waitReplFor(t, "follower 1 convergence", func() bool { return converged(t, pc, f1c, nKeys) })
	waitReplFor(t, "follower 2 convergence", func() bool { return converged(t, pc, f2c, nKeys) })

	// The primary's site is lost.
	primary.Close()

	checkInvariants := func(name string, c *client) {
		t.Helper()
		get := func(key uint64) uint64 {
			got := c.cmd(t, "get %d", key)
			if got == "NOT_FOUND" {
				return 0
			}
			fields := strings.Fields(got)
			v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("%s: parse %q: %v", name, got, err)
			}
			return v
		}
		var sumC1, sumC2, sumHigh uint64
		for w := 0; w < writers; w++ {
			c1, c2 := get(harness.KeyC1(w)), get(harness.KeyC2(w))
			if !(c2 <= c1 && c1 <= c2+1) {
				t.Fatalf("%s: per-thread invariant violated: c1=%d c2=%d", name, c1, c2)
			}
			sumC1 += c1
			sumC2 += c2
		}
		for k := uint64(0); k < highKeys; k++ {
			sumHigh += get(highBase + k)
		}
		diff := int64(sumC1) - int64(sumC2)
		if diff < 0 || diff > writers {
			t.Fatalf("%s: Equation 1 violated: Σc1-Σc2 = %d", name, diff)
		}
		if !(sumC1 >= sumHigh && sumHigh >= sumC2) {
			t.Fatalf("%s: Equation 2 violated: Σc1=%d ΣH=%d Σc2=%d", name, sumC1, sumHigh, sumC2)
		}
		// Fully converged before the kill: the writers finished, so both
		// sums must agree exactly.
		if sumC1 != uint64(writers*iters) || sumC2 != uint64(writers*iters) {
			t.Fatalf("%s: Σc1=%d Σc2=%d, want both %d", name, sumC1, sumC2, writers*iters)
		}
	}

	// Promote each follower in turn; both must hold the invariants and
	// accept writes afterwards.
	for name, fc := range map[string]*client{"follower1": f1c, "follower2": f2c} {
		if got := fc.cmd(t, "promote"); got != "OK PROMOTED" {
			t.Fatalf("%s promote: %q", name, got)
		}
		checkInvariants(name, fc)
		if got := fc.cmd(t, "set 900000 1"); got != "STORED" {
			t.Fatalf("%s post-promote write: %q", name, got)
		}
	}
}
