package cacheserver

import (
	"fmt"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/cluster"
	"tsp/internal/proto"
)

// config is the resolved server configuration. It is built from
// functional options rather than a zero-value-defaulted struct: the old
// Config approach could not express "explicitly off" — atlas.ModeOff
// (== 0) was indistinguishable from "unset" and silently rewritten to
// ModeTSP, so an unfortified server was unreachable. An Option runs
// only when the caller invokes it, so WithMode(atlas.ModeOff) now
// sticks.
type config struct {
	addr        string
	mode        atlas.Mode
	shards      int
	maxConns    int
	deviceWords int // per shard
	writeBuf    int // per-connection response buffer bound, bytes
	buckets     int // per-shard hash map shape
	perMutex    int
	metricsAddr string // optional HTTP metrics endpoint; "" = disabled
	batchMax    int    // max ops per drained batch group; 0 disables the pipeline
	queueDepth  int    // per-shard pending-request queue bound
	replListen  string // replication listener (primary role); "" = disabled
	replicaOf   string // primary's replication address (follower role); "" = disabled
	replWindow  int    // committed groups the replication log retains

	proto           string // wire protocol: "auto" (sniff), "native", "resp"
	maxRequestBytes int    // single-request wire-size ceiling
	optimisticReads bool   // serve pure reads on the lock-free seqlock path

	clusterSlots string // owned hash-slot spec ("lo-hi,lo" or "all"); "" = not a cluster node

	epochInterval time.Duration // epoch clock period; <= 0 disables the tiers

	sessSlots int // per-shard persistent session dedup records
}

// Wire protocol selections for config.proto / WithProto.
const (
	protoAuto   = "auto"
	protoNative = "native"
	protoRESP   = "resp"
)

func defaultConfig() config {
	return config{
		addr:        "127.0.0.1:0",
		mode:        atlas.ModeTSP,
		shards:      4,
		maxConns:    16,
		deviceWords: 1 << 20,
		writeBuf:    16 << 10,
		buckets:     4096,
		perMutex:    256,
		batchMax:    64,
		queueDepth:  256,
		replWindow:  4096,

		proto:           protoAuto,
		maxRequestBytes: proto.DefaultMaxRequest,
		optimisticReads: true,

		epochInterval: 5 * time.Millisecond,

		sessSlots: 256,
	}
}

func (c config) validate() error {
	if c.shards < 1 {
		return fmt.Errorf("cacheserver: shards must be >= 1, got %d", c.shards)
	}
	if c.maxConns < 1 {
		return fmt.Errorf("cacheserver: max conns must be >= 1, got %d", c.maxConns)
	}
	if c.deviceWords < 1<<12 {
		return fmt.Errorf("cacheserver: device words %d too small", c.deviceWords)
	}
	if c.writeBuf < 512 {
		return fmt.Errorf("cacheserver: write buffer %d bytes too small", c.writeBuf)
	}
	if c.batchMax < 0 {
		return fmt.Errorf("cacheserver: batch max must be >= 0, got %d", c.batchMax)
	}
	if c.batchMax > 0 && c.queueDepth < 1 {
		return fmt.Errorf("cacheserver: queue depth must be >= 1, got %d", c.queueDepth)
	}
	if c.replListen != "" && c.replicaOf != "" {
		return fmt.Errorf("cacheserver: a server cannot be both primary (repl listen) and follower (replica of)")
	}
	if (c.replListen != "" || c.replicaOf != "") && c.replWindow < 1 {
		return fmt.Errorf("cacheserver: repl window must be >= 1, got %d", c.replWindow)
	}
	switch c.proto {
	case protoAuto, protoNative, protoRESP:
	default:
		return fmt.Errorf("cacheserver: unknown protocol %q (want auto, native, or resp)", c.proto)
	}
	if c.maxRequestBytes < 64 {
		return fmt.Errorf("cacheserver: max request bytes %d too small", c.maxRequestBytes)
	}
	if c.sessSlots < 1 {
		return fmt.Errorf("cacheserver: session window must be >= 1, got %d", c.sessSlots)
	}
	if c.clusterSlots != "" {
		if _, err := cluster.ParseSlots(c.clusterSlots); err != nil {
			return fmt.Errorf("cacheserver: %w", err)
		}
		if c.replicaOf != "" {
			return fmt.Errorf("cacheserver: a cluster node cannot be a replication follower")
		}
	}
	return nil
}

// Option configures New.
type Option func(*config)

// WithAddr sets the TCP listen address (default "127.0.0.1:0").
func WithAddr(addr string) Option {
	return func(c *config) { c.addr = addr }
}

// WithMode sets the Atlas fortification level for every shard. The
// default is ModeTSP; WithMode(atlas.ModeOff) runs the server genuinely
// unfortified.
func WithMode(m atlas.Mode) Option {
	return func(c *config) { c.mode = m }
}

// WithShards sets the number of independent storage stacks keys are
// hashed across (default 4). Operations on different shards never
// contend: each shard has its own device, heap, Atlas runtime, map and
// lock.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithMaxConns bounds concurrently served connections (default 16).
// Connections beyond the bound are not rejected; they queue until a
// slot frees (accept-side backpressure). Each shard's runtime is sized
// so every admitted connection can register a thread on every shard.
func WithMaxConns(n int) Option {
	return func(c *config) { c.maxConns = n }
}

// WithDeviceWords sizes each shard's simulated NVM device
// (default 1<<20 words).
func WithDeviceWords(n int) Option {
	return func(c *config) { c.deviceWords = n }
}

// WithWriteBuffer bounds each connection's response buffer in bytes
// (default 16 KiB). Responses larger than the bound spill to the socket
// as they are produced, so a slow reader exerts backpressure on its own
// handler instead of growing server memory.
func WithWriteBuffer(bytes int) Option {
	return func(c *config) { c.writeBuf = bytes }
}

// WithMetricsAddr enables the HTTP metrics endpoint on addr (e.g.
// "127.0.0.1:9090"): GET /metrics serves every shard's telemetry
// registry as Prometheus-style text. Empty (the default) disables it.
func WithMetricsAddr(addr string) Option {
	return func(c *config) { c.metricsAddr = addr }
}

// WithBatchMax bounds how many operations one drained batch group may
// execute inside a single Atlas critical section (default 64).
// WithBatchMax(0) disables the batch pipeline entirely: every request
// takes the synchronous per-op path, the pre-pipeline behavior. A
// request group larger than the bound (a wide mset aimed at one shard)
// also falls back to the synchronous path rather than being split —
// the bound is what sizes the undo-log ring.
func WithBatchMax(n int) Option {
	return func(c *config) { c.batchMax = n }
}

// WithQueueDepth bounds each shard's pending-request queue (default
// 256 groups). A full queue does not block the handler: the request
// degrades to the synchronous path and the fallback is counted, so
// backpressure shows up in stats rather than as added latency.
func WithQueueDepth(n int) Option {
	return func(c *config) { c.queueDepth = n }
}

// WithBuckets shapes each shard's hash map: bucket count and buckets
// per stripe mutex (defaults 4096 and 256).
func WithBuckets(buckets, perMutex int) Option {
	return func(c *config) {
		c.buckets = buckets
		c.perMutex = perMutex
	}
}

// WithReplListen makes the server a replication primary: it accepts
// follower connections on addr (e.g. "127.0.0.1:0") and streams every
// committed batch group to them (see internal/repl). Mutually exclusive
// with WithReplicaOf. On a replicating primary every mutating group is
// serialized through the shard's drain lock so the replication log
// order matches commit order exactly.
func WithReplListen(addr string) Option {
	return func(c *config) { c.replListen = addr }
}

// WithReplicaOf makes the server a read-only follower of the primary
// whose replication listener is at addr: it applies the streamed groups
// through its own storage stacks and rejects client mutations until the
// "promote" command severs replication — the site-disaster failover the
// planner's prevention verdict calls for. Mutually exclusive with
// WithReplListen.
func WithReplicaOf(addr string) Option {
	return func(c *config) { c.replicaOf = addr }
}

// WithOptimisticReads toggles the lock-free read path (default true).
// When enabled, get and the pure-read mget are served by seqlock-
// validated optimistic reads that take no Atlas mutex and never enter
// the batch pipeline — the paper's recovery-observer argument (readers
// need zero persistence work) applied to the server's hot path. A read
// that keeps colliding with writers falls back to the locked path, so
// disabling the option only removes the fast path, never behavior.
func WithOptimisticReads(on bool) Option {
	return func(c *config) { c.optimisticReads = on }
}

// WithProto pins the listener's wire protocol: "native" (the
// line-oriented text protocol), "resp" (RESP2, what redis-cli and
// redis-benchmark speak), or "auto" (the default — each connection is
// sniffed from its first byte; RESP framing always leads with '*',
// which no native command starts with).
func WithProto(p string) Option {
	return func(c *config) { c.proto = p }
}

// WithMaxRequestBytes bounds the wire size of a single request
// (default proto.DefaultMaxRequest, 1 MiB). An oversized request is
// answered with a "request too large" error instead of being buffered:
// on the native protocol the connection then resynchronizes at the
// next newline and keeps serving; RESP frames cannot be skipped
// without trusting the oversized header, so the connection is closed
// after the error is written. The old bufio.Scanner handler silently
// dropped the connection at 64 KiB with no error at all.
func WithMaxRequestBytes(n int) Option {
	return func(c *config) { c.maxRequestBytes = n }
}

// WithReplWindow bounds how many committed groups the primary's
// in-memory replication log retains (default 4096). A follower
// reconnecting inside the window catches up by streaming; one behind it
// receives a full snapshot transfer instead.
func WithReplWindow(n int) Option {
	return func(c *config) { c.replWindow = n }
}

// WithSessionWindow sizes each shard's persistent session dedup window
// (default 256 records). One record tracks one client session's highest
// applied seq on that shard; when every slot is taken a round-robin
// victim is evicted and the shard's floor rises to the victim's seq, so
// a retry of any evicted-or-earlier seq is refused with "seq too old"
// rather than risked as a re-application. Size it to the number of
// concurrently retrying sessions, not to total sessions ever seen.
func WithSessionWindow(n int) Option {
	return func(c *config) { c.sessSlots = n }
}

// WithClusterSlots makes the server a cluster node owning the given
// hash slots — a "lo-hi,lo" spec over internal/cluster's slot space,
// "all", or "none" (join empty; slots arrive by migration). Keyed
// requests for slots outside the set are answered with
// a MOVED redirect instead of being executed; the `migrate` command
// hands a slot (with its data, session windows, and in-flight suffix)
// to another node live. Cluster nodes keep a replication log even
// without followers: it is what migration streams from. Mutually
// exclusive with WithReplicaOf (a follower mirrors its primary's
// keyspace wholesale; slot ownership would fight the stream).
func WithClusterSlots(spec string) Option {
	return func(c *config) { c.clusterSlots = spec }
}

// WithEpochInterval sets the durability epoch clock's period (default
// 5ms). Relaxed-tier writes are acknowledged the moment they land in a
// shard's volatile overlay, stamped with the current epoch, and made
// persistent when that epoch closes — so the interval IS the loss bound
// a crash can inflict on the relaxed tier. A non-positive interval
// disables the epoch clock entirely: relaxed and fire degrade to
// durable (every write commits before its ack) and epoch waits return
// immediately.
func WithEpochInterval(d time.Duration) Option {
	return func(c *config) { c.epochInterval = d }
}
