package cacheserver

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestStatsTelemetry verifies the extended stats vocabulary: per-layer
// counters and op-latency percentiles from the shard registries.
func TestStatsTelemetry(t *testing.T) {
	s := startServer(t, WithShards(2))
	c := dial(t, s.Addr().String())

	c.cmd(t, "set 1 10")
	c.cmd(t, "set 2 20")
	c.cmd(t, "get 1")
	c.cmd(t, "crash 0")

	out := strings.Join(c.lines(t, "stats"), "\n")
	for _, want := range []string{
		"STAT op_count ",
		"STAT op_p50_us ",
		"STAT op_p95_us ",
		"STAT op_p99_us ",
		"STAT nvm_stores ",
		"STAT nvm_flushes ",
		"STAT atlas_log_appends ",
		"STAT atlas_ocs_commits ",
		"STAT map_gets ",
		"STAT map_puts ",
		"STAT heap_allocs ",
		"STAT server_gets 1",
		"STAT server_sets 2",
		"STAT recovery_count 1",
		"STAT stack_generation 3", // 2 shards at gen 1, one reattach bumps one to 2
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}

	// Per-shard lines carry the per-layer highlights too.
	shardOut := strings.Join(c.lines(t, "stats shards"), "\n")
	for _, want := range []string{"atlas_log_appends ", "map_gets ", "op_p50_us ", "op_p99_us "} {
		if !strings.Contains(shardOut, want) {
			t.Fatalf("stats shards output missing %q:\n%s", want, shardOut)
		}
	}
}

// TestMetricsEndpoint exercises the -metrics-addr HTTP surface: the
// same registry data in Prometheus text form, per shard and aggregated.
func TestMetricsEndpoint(t *testing.T) {
	s := startServer(t, WithShards(2), WithMetricsAddr("127.0.0.1:0"))
	c := dial(t, s.Addr().String())

	c.cmd(t, "set 1 10")
	c.cmd(t, "get 1")
	c.cmd(t, "crash")

	addr := s.MetricsAddr()
	if addr == nil {
		t.Fatal("MetricsAddr is nil with WithMetricsAddr set")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE tsp_nvm_stores counter",
		`tsp_nvm_stores{shard="all"}`,
		`tsp_nvm_stores{shard="0"}`,
		`tsp_nvm_stores{shard="1"}`,
		`tsp_server_gets{shard="all"} 1`,
		`tsp_recovery_count{shard="all"} 2`,
		"# TYPE tsp_op_latency_seconds summary",
		`tsp_op_latency_seconds{quantile="0.99"}`,
		"tsp_op_latency_seconds_count",
		"# TYPE tsp_recovery_latency_seconds summary",
		"tsp_recovery_latency_seconds_count 2",
		"tsp_items",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsDisabled: no WithMetricsAddr means no endpoint.
func TestMetricsDisabled(t *testing.T) {
	s := startServer(t)
	if s.MetricsAddr() != nil {
		t.Fatal("MetricsAddr should be nil by default")
	}
}
