package cacheserver

import (
	"errors"
	"fmt"
	"net"
	"time"

	"tsp/internal/proto"
	"tsp/internal/telemetry"
)

// The pipelined serving path. A connection's bytes flow through a
// proto.Decoder that surfaces every buffered request as ONE batch, the
// batch's data commands coalesce into ONE combined op group fed to the
// shard pipeline as a single enqueue, and the replies stage in a
// proto.Encoder that answers the whole batch with ONE write. The
// protocol itself — framing, spellings, error texts — lives entirely
// behind the proto.Adapter seam, so this file never touches wire
// bytes.

// readOnlyMsg is the mutation-rejection text a replicating follower
// answers until promoted.
const readOnlyMsg = "read-only replica (promote to enable writes)"

// protoLabel maps a wire adapter to its telemetry protocol label.
func protoLabel(a proto.Adapter) telemetry.Protocol {
	if a.Name() == "resp" {
		return telemetry.ProtoRESP
	}
	return telemetry.ProtoNative
}

// handle runs one connection's request loop: decode a batch, serve it,
// flush one write. The protocol is fixed per listener config or
// sniffed from the first byte — RESP framing always leads with '*',
// which no native command starts with.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := proto.NewDecoder(conn, proto.Native{}, s.cfg.maxRequestBytes)
	var ad proto.Adapter
	switch s.cfg.proto {
	case protoNative:
		ad = proto.Native{}
	case protoRESP:
		ad = proto.RESP{}
	default: // protoAuto
		b, err := dec.Peek()
		if err != nil {
			return
		}
		if b == '*' {
			ad = proto.RESP{}
		} else {
			ad = proto.Native{}
		}
	}
	dec.Use(ad)
	enc := proto.NewEncoder(conn, ad, s.cfg.writeBuf)
	defer enc.Flush()

	cs := s.newConnState()
	cs.ptel = protoLabel(ad)
	defer s.releaseConn(cs)

	for {
		batch, err := dec.Next()
		if len(batch) > 0 {
			s.decodedBatch[cs.ptel].ObserveValue(uint64(len(batch)))
			quit := s.serveBatch(cs, enc, batch)
			if ferr := enc.Flush(); ferr != nil || quit {
				if ferr == nil && cs.importSlot >= 0 {
					// acceptslot committed this connection to an inbound
					// migration; its OK reply is on the wire, so splice the
					// stream onto the frame reader (see cluster.go).
					s.serveImport(conn, dec, cs.importSlot)
				}
				return
			}
		}
		if err != nil {
			// ErrDesync and I/O errors alike: any error reply explaining
			// the teardown was already staged and flushed above.
			return
		}
	}
}

// cmdTag maps one request's slice of the combined op group back to the
// reply that answers it: ops[start:start+n] belong to req.
type cmdTag struct {
	cmd   telemetry.Command
	req   *proto.Request
	start int
	n     int
}

// cmdTelemetry maps a data command to its latency-histogram key.
func cmdTelemetry(c proto.Cmd) telemetry.Command {
	switch c {
	case proto.CmdGet:
		return telemetry.CmdGet
	case proto.CmdSet:
		return telemetry.CmdSet
	case proto.CmdIncr:
		return telemetry.CmdIncr
	case proto.CmdDelete:
		return telemetry.CmdDelete
	case proto.CmdMGet:
		return telemetry.CmdMGet
	case proto.CmdZAdd:
		return telemetry.CmdZAdd
	case proto.CmdZGet:
		return telemetry.CmdZGet
	case proto.CmdZIncr:
		return telemetry.CmdZIncr
	case proto.CmdZDel:
		return telemetry.CmdZDel
	case proto.CmdZRange:
		return telemetry.CmdZRange
	case proto.CmdZCount:
		return telemetry.CmdZCount
	default:
		return telemetry.CmdMSet
	}
}

// mutates reports whether a data command writes.
func mutates(c proto.Cmd) bool {
	switch c {
	case proto.CmdGet, proto.CmdMGet, proto.CmdZGet, proto.CmdZRange, proto.CmdZCount:
		return false
	}
	return true
}

// appendOps translates one decoded request into batch pipeline ops.
func appendOps(ops []batchOp, req *proto.Request) []batchOp {
	switch req.Cmd {
	case proto.CmdGet:
		return append(ops, batchOp{kind: opGet, key: req.KV[0]})
	case proto.CmdSet:
		return append(ops, batchOp{kind: opSet, key: req.KV[0], arg: req.KV[1]})
	case proto.CmdIncr:
		return append(ops, batchOp{kind: opIncr, key: req.KV[0], arg: req.KV[1]})
	case proto.CmdDelete:
		for _, k := range req.KV {
			ops = append(ops, batchOp{kind: opDelete, key: k})
		}
		return ops
	case proto.CmdMGet:
		for _, k := range req.KV {
			ops = append(ops, batchOp{kind: opGet, key: k})
		}
		return ops
	case proto.CmdZAdd:
		return append(ops, batchOp{kind: opZSet, key: req.KV[0], arg: req.KV[1]})
	case proto.CmdZIncr:
		return append(ops, batchOp{kind: opZIncr, key: req.KV[0], arg: req.KV[1]})
	case proto.CmdZDel:
		return append(ops, batchOp{kind: opZDelete, key: req.KV[0]})
	default: // CmdMSet
		for i := 0; i+1 < len(req.KV); i += 2 {
			ops = append(ops, batchOp{kind: opSet, key: req.KV[i], arg: req.KV[i+1]})
		}
		return ops
	}
}

// serveBatch executes one decoded batch and stages every reply, in
// request order. Consecutive data commands coalesce into one combined
// op group — the decoded group becomes the batch pipeline's group, so
// a pipelined burst pays one enqueue and one Atlas critical section
// per shard rather than one per command. Admin commands (and malformed
// requests) are sequence points: the pending group executes first,
// because a crash or stats must observe every earlier command's
// effects. Returns true when the client asked to quit; requests after
// the quit are not executed (the old per-line handler stopped at quit
// the same way).
func (s *Server) serveBatch(cs *connState, enc *proto.Encoder, batch []proto.Request) (quit bool) {
	ops := cs.ops[:0]
	tags := cs.tags[:0]
	defer func() { cs.ops, cs.tags = ops, tags }()

	// On a cluster node the whole batch runs under the slot gate's read
	// lock, so an ownership check and the execution it admitted cannot
	// straddle a migration flip (which takes the write lock). Parking
	// commands (wait) and admin sequence points (migrate itself) release
	// the gate around their work.
	cl := s.clusterSt
	if cl != nil {
		cl.gate.RLock()
		defer cl.gate.RUnlock()
	}

	flushData := func() {
		if len(tags) == 0 {
			return
		}
		s.runDataGroup(cs, ops, tags)
		for ti := range tags {
			rep := s.buildDataReply(cs, &tags[ti], ops)
			enc.Stage(&rep)
		}
		ops, tags = ops[:0], tags[:0]
	}

	for i := range batch {
		req := &batch[i]
		switch req.Cmd {
		case proto.CmdGet, proto.CmdSet, proto.CmdIncr, proto.CmdDelete,
			proto.CmdMGet, proto.CmdMSet,
			proto.CmdZAdd, proto.CmdZIncr, proto.CmdZDel:
			if s.readOnly.Load() && mutates(req.Cmd) {
				flushData()
				rep := proto.Reply{Kind: proto.KErrServer, Msg: readOnlyMsg}
				enc.Stage(&rep)
				continue
			}
			if cl != nil {
				if rep, moved := cl.checkReq(req); moved {
					flushData()
					enc.Stage(&rep)
					continue
				}
			}
			if req.HasSeq {
				// A seq-tagged request is a detectable operation: it must
				// consult (and maybe replay from) the session window, so it
				// never coalesces into the combined group. Sequence point —
				// earlier pipelined writes land first, in program order.
				flushData()
				rep := s.serveSessioned(cs, req)
				enc.Stage(&rep)
				continue
			}
			if mutates(req.Cmd) {
				if req.Dur != proto.DurDurable && s.epochEnabled() {
					// Relaxed/fire tier: a sequence point — the pending
					// durable group lands first so tiers interleave in
					// program order on this connection — then the write is
					// buffered and acked with its epoch receipt.
					flushData()
					rep := s.serveRelaxed(cs, req)
					enc.Stage(&rep)
					continue
				}
				s.shardOf(req.KV[0]).tel.Server.DurableOps.Inc()
			}
			start := len(ops)
			ops = appendOps(ops, req)
			tags = append(tags, cmdTag{cmd: cmdTelemetry(req.Cmd), req: req, start: start, n: len(ops) - start})
		case proto.CmdZGet, proto.CmdZRange, proto.CmdZCount:
			// Ordered reads run lock-free off the skip list — no Atlas
			// section, no seqlock — but the pending write group must land
			// first so a pipelined zadd→zrange sees its own write.
			flushData()
			if cl != nil {
				// zget is keyed; range reads pass (they answer from local
				// slots, the routing tier merges across nodes).
				if rep, moved := cl.checkReq(req); moved {
					enc.Stage(&rep)
					continue
				}
			}
			rep := s.serveOrdered(cs, req)
			enc.Stage(&rep)
		case proto.CmdSession:
			// The handshake binds this connection to a session id; it is a
			// sequence point so a rebinding cannot race writes pipelined
			// under the old id.
			flushData()
			rep := s.serveSession(cs, req)
			enc.Stage(&rep)
		case proto.CmdWait:
			// The barrier must cover every write this connection
			// pipelined before it, so the pending group flushes first.
			// A parked barrier must not hold the slot gate shared — a
			// migration flip would wait behind it.
			flushData()
			if cl != nil {
				cl.gate.RUnlock()
			}
			rep := s.serveWait(cs, req)
			if cl != nil {
				cl.gate.RLock()
			}
			enc.Stage(&rep)
		case proto.CmdQuit:
			flushData()
			rep := proto.Reply{Kind: proto.KQuit}
			enc.Stage(&rep)
			return true
		case proto.CmdAcceptSlot:
			// Inbound migration handshake: on success the connection
			// leaves the request protocol — serveBatch returns and handle
			// splices the byte stream onto the frame reader. Requests
			// pipelined after acceptslot are not served (the source sends
			// none until it reads the OK).
			flushData()
			rep, ok := s.beginImport(req)
			enc.Stage(&rep)
			if ok {
				cs.importSlot = int(req.KV[0])
				return true
			}
		default:
			// Admin sequence points run without the slot gate: migrate
			// takes its write side for the ownership flip, and crash can
			// quiesce shards for long enough that holding the gate would
			// stall a concurrent flip.
			flushData()
			if cl != nil {
				cl.gate.RUnlock()
			}
			rep := s.serveAdmin(req)
			if cl != nil {
				cl.gate.RLock()
			}
			enc.Stage(&rep)
		}
	}
	flushData()
	return false
}

// runDataGroup executes one coalesced op group and attributes latency
// per command tag. A group of pure reads tries the lock-free seqlock
// path first (key by key; the contended minority re-runs through the
// pipeline); any mutation in the group forces the whole group through
// exec in arrival order, which is what preserves read-your-writes
// inside a pipelined burst. Every tag observes the group's end-to-end
// time: replies flush together, so the group completion IS each
// command's service time.
func (s *Server) runDataGroup(cs *connState, ops []batchOp, tags []cmdTag) {
	start := time.Now()
	allGets := true
	for i := range ops {
		if ops[i].kind != opGet {
			allGets = false
			break
		}
	}
	if s.cfg.optimisticReads && allGets {
		pending := s.readOptimistic(ops)
		if pending == nil {
			el := time.Since(start)
			for ti := range tags {
				sh := s.shardOf(ops[tags[ti].start].key)
				sh.tel.ReadLatency.Observe(el)
				sh.tel.CmdLatency.ObserveProto(cs.ptel, tags[ti].cmd, el)
			}
			return
		}
		sub := make([]batchOp, len(pending))
		for j, i := range pending {
			sub[j] = ops[i]
		}
		s.execGroup(cs, sub)
		for j, i := range pending {
			ops[i] = sub[j]
		}
	} else {
		s.execGroup(cs, ops)
	}
	el := time.Since(start)
	for ti := range tags {
		sh := s.shardOf(ops[tags[ti].start].key)
		sh.tel.CmdLatency.ObserveProto(cs.ptel, tags[ti].cmd, el)
	}
}

// buildDataReply shapes one command's reply from its resolved op span.
// Item slices alias the connection's scratch arena, valid until the
// next buildDataReply call — the caller stages (encodes) each reply
// before building the next.
func (s *Server) buildDataReply(cs *connState, tg *cmdTag, ops []batchOp) proto.Reply {
	span := ops[tg.start : tg.start+tg.n]
	switch tg.req.Cmd {
	case proto.CmdGet:
		op := &span[0]
		switch {
		case op.err != nil:
			return proto.Reply{Kind: proto.KErrServer, Msg: op.err.Error()}
		case !op.ok:
			return proto.Reply{Kind: proto.KNotFound}
		}
		return proto.Reply{Kind: proto.KValue, Key: op.key, Val: op.val}
	case proto.CmdSet:
		if err := span[0].err; err != nil {
			return proto.Reply{Kind: proto.KErrServer, Msg: err.Error()}
		}
		return proto.Reply{Kind: proto.KStored}
	case proto.CmdIncr:
		op := &span[0]
		if op.err != nil {
			return proto.Reply{Kind: proto.KErrServer, Msg: op.err.Error()}
		}
		return proto.Reply{Kind: proto.KInt, Val: op.val}
	case proto.CmdDelete:
		if err := spanErr(span); err != nil {
			return proto.Reply{Kind: proto.KErrServer, Msg: err.Error()}
		}
		items := cs.items[:0]
		for i := range span {
			items = append(items, proto.Item{Key: span[i].key, Found: span[i].ok})
		}
		cs.items = items
		return proto.Reply{Kind: proto.KDelete, Items: items}
	case proto.CmdZAdd:
		if err := span[0].err; err != nil {
			return proto.Reply{Kind: proto.KErrServer, Msg: err.Error()}
		}
		return proto.Reply{Kind: proto.KStored}
	case proto.CmdZIncr:
		op := &span[0]
		if op.err != nil {
			return proto.Reply{Kind: proto.KErrServer, Msg: op.err.Error()}
		}
		return proto.Reply{Kind: proto.KInt, Val: op.val}
	case proto.CmdZDel:
		op := &span[0]
		if op.err != nil {
			return proto.Reply{Kind: proto.KErrServer, Msg: op.err.Error()}
		}
		items := append(cs.items[:0], proto.Item{Key: op.key, Found: op.ok})
		cs.items = items
		return proto.Reply{Kind: proto.KDelete, Items: items}
	case proto.CmdMGet:
		if err := spanErr(span); err != nil {
			return proto.Reply{Kind: proto.KErrServer, Msg: err.Error()}
		}
		items := cs.items[:0]
		for i := range span {
			items = append(items, proto.Item{Key: span[i].key, Val: span[i].val, Found: span[i].ok})
		}
		cs.items = items
		return proto.Reply{Kind: proto.KMGet, Items: items}
	default: // CmdMSet
		if err := spanErr(span); err != nil {
			return proto.Reply{Kind: proto.KErrServer, Msg: err.Error()}
		}
		return proto.Reply{Kind: proto.KStoredN, N: tg.n}
	}
}

// spanErr joins a span's per-op errors (nil when every op succeeded).
func spanErr(span []batchOp) error {
	var errs []error
	for i := range span {
		if span[i].err != nil {
			errs = append(errs, span[i].err)
		}
	}
	return errors.Join(errs...)
}

// serveAdmin executes one non-data request and returns its reply.
func (s *Server) serveAdmin(req *proto.Request) proto.Reply {
	switch req.Cmd {
	case proto.CmdBad:
		return proto.Reply{Kind: req.Bad, Msg: req.BadMsg}

	case proto.CmdStats:
		switch req.Stats {
		case proto.StatsShards:
			return proto.Reply{Kind: proto.KRaw, Msg: s.statsShards()}
		case proto.StatsReset:
			return proto.Reply{Kind: proto.KRaw, Msg: s.statsReset()}
		default:
			return proto.Reply{Kind: proto.KRaw, Msg: s.statsAggregate()}
		}

	case proto.CmdCrash:
		// Crash takes shard write locks itself; the pending data group
		// was flushed before we got here.
		if s.readOnly.Load() {
			return proto.Reply{Kind: proto.KErrServer, Msg: readOnlyMsg}
		}
		// The trailing EPOCH on the recovery reply is the crash receipt's
		// redemption value: relaxed acks stamped <= this frontier survived;
		// later ones may be gone (they are the bounded loss). The frontier
		// must be captured BEFORE the crash sheds the overlays — the epoch
		// clock keeps ticking through recovery, and once the volatile
		// entries are discarded every subsequent close advances the
		// frontier over writes it never persisted. Capturing early only
		// ever under-reports (a close completing in between made more
		// stamps durable), which is the safe direction for a receipt.
		frontier := s.perEpoch.Load()
		if req.HasShard {
			if req.Shard < 0 || req.Shard >= len(s.shards) {
				return proto.Reply{Kind: proto.KErrClient,
					Msg: fmt.Sprintf("shard index out of range [0,%d)", len(s.shards))}
			}
			if err := s.shards[req.Shard].crashAndRecover(); err != nil {
				return proto.Reply{Kind: proto.KErrServer, Msg: fmt.Sprintf("recovery failed: %v", err)}
			}
			return proto.Reply{Kind: proto.KRaw,
				Msg: fmt.Sprintf("OK RECOVERED SHARD %d EPOCH %d", req.Shard, frontier)}
		}
		if err := s.crashAll(); err != nil {
			return proto.Reply{Kind: proto.KErrServer, Msg: fmt.Sprintf("recovery failed: %v", err)}
		}
		return proto.Reply{Kind: proto.KRaw,
			Msg: fmt.Sprintf("OK RECOVERED EPOCH %d", frontier)}

	case proto.CmdPromote:
		if s.replFollower == nil {
			return proto.Reply{Kind: proto.KErrClient, Msg: "not a replica"}
		}
		s.replFollower.Stop()
		s.readOnly.Store(false)
		return proto.Reply{Kind: proto.KRaw, Msg: "OK PROMOTED"}

	case proto.CmdCluster:
		return s.serveClusterInfo()

	case proto.CmdMigrate:
		if s.readOnly.Load() {
			return proto.Reply{Kind: proto.KErrServer, Msg: readOnlyMsg}
		}
		return s.serveMigrate(req)

	case proto.CmdPing:
		return proto.Reply{Kind: proto.KPong}

	case proto.CmdInfo:
		return proto.Reply{Kind: proto.KRaw, Msg: s.infoText()}

	case proto.CmdCommand:
		return proto.Reply{Kind: proto.KEmpty}

	default:
		return proto.Reply{Kind: proto.KErrProto, Msg: "unknown command"}
	}
}

// infoText renders the RESP INFO reply: a small redis-shaped section
// so redis-cli's `info` and monitoring probes get something useful.
func (s *Server) infoText() string {
	role := s.replRole()
	if role == "" {
		role = "master"
	}
	v := s.aggregateViews()
	return fmt.Sprintf(
		"# Server\r\nserver:tspcached\r\nmode:%v\r\nshards:%d\r\n\r\n# Keyspace\r\nitems:%d\r\n\r\n# Replication\r\nrole:%s\r\n",
		s.cfg.mode, len(s.shards), v.items, role)
}
