package cacheserver

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"tsp/internal/telemetry"
)

// metricsServer is the optional HTTP side-channel serving the shards'
// telemetry as Prometheus-style text exposition (hand-rolled on
// net/http; the repo takes no dependencies). It listens on its own
// address so scraping never competes with the cache protocol for
// connection slots.
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// startMetrics binds addr and begins serving GET /metrics in the
// background. Serve errors after close are expected and discarded.
func startMetrics(s *Server, addr string) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cacheserver: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(s.renderMetrics()))
	})
	m := &metricsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = m.srv.Serve(ln) }()
	return m, nil
}

func (m *metricsServer) addr() net.Addr { return m.ln.Addr() }

func (m *metricsServer) close() { _ = m.srv.Close() }

// renderMetrics renders every shard's registry plus the merged
// aggregate in Prometheus text format. Counters carry a shard label
// ("all" for the aggregate); the latency histograms surface as summary
// quantiles in seconds, the conventional Prometheus unit.
func (s *Server) renderMetrics() string {
	var b strings.Builder

	v := s.aggregateViews()
	agg := v.agg

	b.WriteString("# TYPE tsp_items gauge\n")
	fmt.Fprintf(&b, "tsp_items %d\n", v.items)

	// One TYPE header per counter family, then the aggregate and every
	// shard's value. The registry's Walk order keeps families contiguous.
	views := make([]shardView, len(s.shards))
	for i, sh := range s.shards {
		views[i] = sh.view()
	}
	for _, name := range agg.Names() {
		fmt.Fprintf(&b, "# TYPE tsp_%s counter\n", name)
		fmt.Fprintf(&b, "tsp_%s{shard=\"all\"} %d\n", name, agg[name])
		for i, v := range views {
			fmt.Fprintf(&b, "tsp_%s{shard=\"%d\"} %d\n", name, i, v.counters[name])
		}
	}

	writeSummary := func(name string, snap telemetry.HistogramSnapshot) {
		fmt.Fprintf(&b, "# TYPE tsp_%s summary\n", name)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(&b, "tsp_%s{quantile=\"%g\"} %g\n", name, q, snap.Quantile(q).Seconds())
		}
		fmt.Fprintf(&b, "tsp_%s_sum %g\n", name, (time.Duration(snap.Sum) * time.Nanosecond).Seconds())
		fmt.Fprintf(&b, "tsp_%s_count %d\n", name, snap.Count())
	}
	writeSummary("op_latency_seconds", v.opLat)
	writeSummary("recovery_latency_seconds", v.recLat)
	writeSummary("read_latency_seconds", v.readLat)
	for _, c := range telemetry.Commands() {
		if v.cmdLat[c].Count() == 0 {
			continue
		}
		writeSummary(fmt.Sprintf("cmd_%s_latency_seconds", c), v.cmdLat[c])
	}

	// Batch sizes are plain counts, not durations: render the summary
	// in ops.
	b.WriteString("# TYPE tsp_batch_size_ops summary\n")
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(&b, "tsp_batch_size_ops{quantile=\"%g\"} %d\n", q, uint64(v.batchSize.Quantile(q)))
	}
	fmt.Fprintf(&b, "tsp_batch_size_ops_sum %d\n", v.batchSize.Sum)
	fmt.Fprintf(&b, "tsp_batch_size_ops_count %d\n", v.batchSize.Count())

	// Replication family: server-wide (streams span shards), so no
	// shard label. The role gauge's value encodes nothing; the label
	// carries the information, Prometheus-info-metric style.
	if role := s.replRole(); role != "" {
		b.WriteString("# TYPE tsp_repl_role gauge\n")
		fmt.Fprintf(&b, "tsp_repl_role{role=%q} 1\n", role)
		if s.replPrimary != nil {
			b.WriteString("# TYPE tsp_repl_followers gauge\n")
			fmt.Fprintf(&b, "tsp_repl_followers %d\n", s.replPrimary.Followers())
		}
		rs := s.replTel.Snapshot()
		for _, name := range sortedKeys(rs) {
			fmt.Fprintf(&b, "# TYPE tsp_%s counter\n", name)
			fmt.Fprintf(&b, "tsp_%s %d\n", name, rs[name])
		}
		writeSummary("repl_lag_seconds", s.replTel.LagSnapshot())
	}

	return b.String()
}
