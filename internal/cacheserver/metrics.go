package cacheserver

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"tsp/internal/telemetry"
)

// metricsServer is the optional HTTP side-channel serving the shards'
// telemetry as Prometheus-style text exposition (hand-rolled on
// net/http; the repo takes no dependencies). It listens on its own
// address so scraping never competes with the cache protocol for
// connection slots.
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// startMetrics binds addr and begins serving GET /metrics in the
// background. Serve errors after close are expected and discarded.
func startMetrics(s *Server, addr string) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cacheserver: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(s.renderMetrics()))
	})
	m := &metricsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = m.srv.Serve(ln) }()
	return m, nil
}

func (m *metricsServer) addr() net.Addr { return m.ln.Addr() }

func (m *metricsServer) close() { _ = m.srv.Close() }

// renderMetrics renders every shard's registry plus the merged
// aggregate in Prometheus text format. Counters carry a shard label
// ("all" for the aggregate); the latency histograms surface as summary
// quantiles in seconds, the conventional Prometheus unit.
func (s *Server) renderMetrics() string {
	var b strings.Builder

	v := s.aggregateViews()
	agg := v.agg

	b.WriteString("# TYPE tsp_items gauge\n")
	fmt.Fprintf(&b, "tsp_items %d\n", v.items)
	b.WriteString("# TYPE tsp_zitems gauge\n")
	fmt.Fprintf(&b, "tsp_zitems %d\n", v.zitems)

	// One TYPE header per counter family, then the aggregate and every
	// shard's value. The registry's Walk order keeps families contiguous.
	views := make([]shardView, len(s.shards))
	for i, sh := range s.shards {
		views[i] = sh.view()
	}
	for _, name := range agg.Names() {
		fmt.Fprintf(&b, "# TYPE tsp_%s counter\n", name)
		fmt.Fprintf(&b, "tsp_%s{shard=\"all\"} %d\n", name, agg[name])
		for i, v := range views {
			fmt.Fprintf(&b, "tsp_%s{shard=\"%d\"} %d\n", name, i, v.counters[name])
		}
	}

	writeSummary := func(name string, snap telemetry.HistogramSnapshot) {
		fmt.Fprintf(&b, "# TYPE tsp_%s summary\n", name)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(&b, "tsp_%s{quantile=\"%g\"} %g\n", name, q, snap.Quantile(q).Seconds())
		}
		fmt.Fprintf(&b, "tsp_%s_sum %g\n", name, (time.Duration(snap.Sum) * time.Nanosecond).Seconds())
		fmt.Fprintf(&b, "tsp_%s_count %d\n", name, snap.Count())
	}
	writeSummary("op_latency_seconds", v.opLat)
	writeSummary("recovery_latency_seconds", v.recLat)
	writeSummary("read_latency_seconds", v.readLat)
	for _, c := range telemetry.Commands() {
		if v.cmdLat[c].Count() == 0 {
			continue
		}
		writeSummary(fmt.Sprintf("cmd_%s_latency_seconds", c), v.cmdLat[c])
	}

	// Per-protocol command latency: same histograms as above, protocol
	// dimension unmerged, as one labeled family.
	if hasProtoCmd(v) {
		b.WriteString("# TYPE tsp_cmd_latency_by_proto_seconds summary\n")
		for _, p := range telemetry.Protocols() {
			for _, c := range telemetry.Commands() {
				snap := v.cmdProto[p][c]
				if snap.Count() == 0 {
					continue
				}
				for _, q := range []float64{0.5, 0.95, 0.99} {
					fmt.Fprintf(&b, "tsp_cmd_latency_by_proto_seconds{proto=%q,cmd=%q,quantile=\"%g\"} %g\n",
						p.String(), c.String(), q, snap.Quantile(q).Seconds())
				}
				fmt.Fprintf(&b, "tsp_cmd_latency_by_proto_seconds_count{proto=%q,cmd=%q} %d\n",
					p.String(), c.String(), snap.Count())
			}
		}
	}

	// Decoded batch sizes per protocol: how many requests each socket
	// read surfaced — the pipelining depth clients actually present.
	b.WriteString("# TYPE tsp_decoded_batch_requests summary\n")
	for _, p := range telemetry.Protocols() {
		db := s.decodedBatch[p].Snapshot()
		if db.Count() == 0 {
			continue
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(&b, "tsp_decoded_batch_requests{proto=%q,quantile=\"%g\"} %d\n",
				p.String(), q, uint64(db.Quantile(q)))
		}
		fmt.Fprintf(&b, "tsp_decoded_batch_requests_sum{proto=%q} %d\n", p.String(), db.Sum)
		fmt.Fprintf(&b, "tsp_decoded_batch_requests_count{proto=%q} %d\n", p.String(), db.Count())
	}

	// Batch sizes are plain counts, not durations: render the summary
	// in ops.
	b.WriteString("# TYPE tsp_batch_size_ops summary\n")
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(&b, "tsp_batch_size_ops{quantile=\"%g\"} %d\n", q, uint64(v.batchSize.Quantile(q)))
	}
	fmt.Fprintf(&b, "tsp_batch_size_ops_sum %d\n", v.batchSize.Sum)
	fmt.Fprintf(&b, "tsp_batch_size_ops_count %d\n", v.batchSize.Count())

	// zrange result lengths: plain counts too, in keys per range.
	if v.rangeLen.Count() > 0 {
		b.WriteString("# TYPE tsp_zrange_len_keys summary\n")
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(&b, "tsp_zrange_len_keys{quantile=\"%g\"} %d\n", q, uint64(v.rangeLen.Quantile(q)))
		}
		fmt.Fprintf(&b, "tsp_zrange_len_keys_sum %d\n", v.rangeLen.Sum)
		fmt.Fprintf(&b, "tsp_zrange_len_keys_count %d\n", v.rangeLen.Count())
	}

	// Durability-tier family: the epoch clock's two frontiers as gauges
	// (their gap, in epochs, is how much acked-but-volatile state a
	// crash would shed) and the cost of closing an epoch as a summary.
	// Server-wide: the clock spans shards.
	if s.epochEnabled() {
		b.WriteString("# TYPE tsp_epoch_current gauge\n")
		fmt.Fprintf(&b, "tsp_epoch_current %d\n", s.curEpoch.Load())
		b.WriteString("# TYPE tsp_epoch_persisted gauge\n")
		fmt.Fprintf(&b, "tsp_epoch_persisted %d\n", s.perEpoch.Load())
		if v.epochFlush.Count() > 0 {
			writeSummary("epoch_flush_latency_seconds", v.epochFlush)
		}
	}

	// Replication family: server-wide (streams span shards), so no
	// shard label. The role gauge's value encodes nothing; the label
	// carries the information, Prometheus-info-metric style.
	if role := s.replRole(); role != "" {
		b.WriteString("# TYPE tsp_repl_role gauge\n")
		fmt.Fprintf(&b, "tsp_repl_role{role=%q} 1\n", role)
		if s.replPrimary != nil {
			b.WriteString("# TYPE tsp_repl_followers gauge\n")
			fmt.Fprintf(&b, "tsp_repl_followers %d\n", s.replPrimary.Followers())
		}
		rs := s.replTel.Snapshot()
		for _, name := range sortedKeys(rs) {
			fmt.Fprintf(&b, "# TYPE tsp_%s counter\n", name)
			fmt.Fprintf(&b, "tsp_%s %d\n", name, rs[name])
		}
		writeSummary("repl_lag_seconds", s.replTel.LagSnapshot())
	}

	return b.String()
}

// hasProtoCmd reports whether any protocol × command histogram has
// observations, gating the labeled family's TYPE header.
func hasProtoCmd(v serverView) bool {
	for p := range v.cmdProto {
		for c := range v.cmdProto[p] {
			if v.cmdProto[p][c].Count() > 0 {
				return true
			}
		}
	}
	return false
}
