package cacheserver

import (
	"strings"
	"testing"
	"time"

	"tsp/internal/proto"
)

// The exactly-once contract over the wire: a session-bound, seq-tagged
// mutation applies once no matter how often its ack is lost and the
// command retried — across pipelines, crash recovery, and failover to
// a promoted follower.

func TestSessionHandshakeAndSeqErrors(t *testing.T) {
	s := startServer(t, WithShards(2), WithDeviceWords(1<<16))
	c := dial(t, s.Addr().String())

	// seq before the handshake is refused with a pointer to the fix.
	if got := c.cmd(t, "incr 1 5 seq=1"); !strings.Contains(got, noSessionMsg) {
		t.Fatalf("seq without session: %q", got)
	}
	if got := c.cmd(t, "session 9"); got != "OK SESSION 9" {
		t.Fatalf("session: %q", got)
	}
	// A multi-key delete has no single witness record, and reads have
	// nothing to dedup; both guards answer with the contract's wording.
	// (Native grammar only produces a multi-key delete via RESP DEL, so
	// these are exercised at the serve layer.)
	cs := s.newConnState()
	cs.sess = 1
	if rep := s.serveSessioned(cs, &proto.Request{
		Cmd: proto.CmdDelete, KV: []uint64{1, 2}, Seq: 1, HasSeq: true,
	}); rep.Msg != seqDeleteMsg {
		t.Fatalf("multi-key delete with seq: %q", rep.Msg)
	}
	if rep := s.serveSessioned(cs, &proto.Request{
		Cmd: proto.CmdGet, KV: []uint64{1}, Seq: 1, HasSeq: true,
	}); rep.Msg != seqScopeMsg {
		t.Fatalf("read with seq: %q", rep.Msg)
	}
	// seq=0 and a second seq are grammar errors, caught at parse time.
	if got := c.cmd(t, "set 1 2 seq=0"); !strings.Contains(got, "bad seq") {
		t.Fatalf("seq=0: %q", got)
	}
	if got := c.cmd(t, "set 1 2 seq=1 seq=2"); !strings.Contains(got, "bad seq") {
		t.Fatalf("double seq: %q", got)
	}
}

func TestSessionExactlyOnceIncr(t *testing.T) {
	s := startServer(t, WithShards(2), WithDeviceWords(1<<16))
	c := dial(t, s.Addr().String())

	if got := c.cmd(t, "session 7"); got != "OK SESSION 7" {
		t.Fatalf("session: %q", got)
	}
	if got := c.cmd(t, "incr 42 5 seq=1"); got != "5" {
		t.Fatalf("first incr: %q", got)
	}
	// The retry storm: every duplicate replays the recorded ack instead
	// of re-adding.
	for i := 0; i < 3; i++ {
		if got := c.cmd(t, "incr 42 5 seq=1"); got != "5" {
			t.Fatalf("retry %d: %q", i, got)
		}
	}
	if got := c.cmd(t, "incr 42 5 seq=2"); got != "10" {
		t.Fatalf("fresh seq: %q", got)
	}
	// A seq behind the record is undecidable and must say so, not apply.
	if got := c.cmd(t, "incr 42 5 seq=1"); !strings.Contains(got, "seq too old") {
		t.Fatalf("stale seq: %q", got)
	}
	if got := c.cmd(t, "get 42"); got != "VALUE 42 10" {
		t.Fatalf("final value: %q", got)
	}
}

func TestSessionRetryAfterCrash(t *testing.T) {
	s := startServer(t, WithShards(2), WithDeviceWords(1<<16))
	c := dial(t, s.Addr().String())

	c.cmd(t, "session 3")
	if got := c.cmd(t, "incr 11 7 seq=1"); got != "7" {
		t.Fatalf("incr: %q", got)
	}
	if got := c.cmd(t, "zincr 12 9 seq=2"); got != "9" {
		t.Fatalf("zincr: %q", got)
	}
	if got := c.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED") {
		t.Fatalf("crash: %q", got)
	}
	// The records committed inside the mutations' sections, so the
	// recovered server still recognizes the retries.
	if got := c.cmd(t, "incr 11 7 seq=1"); got != "7" {
		t.Fatalf("incr retry after crash: %q", got)
	}
	if got := c.cmd(t, "zincr 12 9 seq=2"); got != "9" {
		t.Fatalf("zincr retry after crash: %q", got)
	}
	if got := c.cmd(t, "get 11"); got != "VALUE 11 7" {
		t.Fatalf("value: %q", got)
	}
	if got := c.cmd(t, "zget 12"); got != "VALUE 12 9" {
		t.Fatalf("zvalue: %q", got)
	}
}

func TestSessionedMSetExactlyOnce(t *testing.T) {
	s := startServer(t, WithShards(4), WithDeviceWords(1<<16))
	c := dial(t, s.Addr().String())

	c.cmd(t, "session 5")
	// Keys spread across shards; the witness shard commits the record
	// last, so a duplicate never re-enters any shard.
	if got := c.cmd(t, "mset 1 10 2 20 3 30 4 40 seq=1"); got != "STORED 4" {
		t.Fatalf("mset: %q", got)
	}
	if got := c.cmd(t, "mset 1 10 2 20 3 30 4 40 seq=1"); got != "STORED 4" {
		t.Fatalf("mset retry: %q", got)
	}
	if got := c.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED") {
		t.Fatalf("crash: %q", got)
	}
	if got := c.cmd(t, "mset 1 10 2 20 3 30 4 40 seq=1"); got != "STORED 4" {
		t.Fatalf("mset retry after crash: %q", got)
	}
	lines := c.lines(t, "mget 1 2 3 4")
	want := []string{"VALUE 1 10", "VALUE 2 20", "VALUE 3 30", "VALUE 4 40", "END"}
	if len(lines) != len(want) {
		t.Fatalf("mget: %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("mget[%d]: %q != %q", i, lines[i], want[i])
		}
	}
}

func TestSessionRelaxedSuppressionAndLoss(t *testing.T) {
	// A huge epoch interval pins the overlay: nothing flushes on its
	// own, so the crash below is guaranteed to land before the record
	// persists — the loss leg of the relaxed contract.
	s := startServer(t, WithShards(1), WithDeviceWords(1<<16),
		WithEpochInterval(time.Hour))
	c := dial(t, s.Addr().String())

	c.cmd(t, "session 2")
	got := c.cmd(t, "incr 8 3 seq=1 relaxed")
	if !strings.HasPrefix(got, "3 @") {
		t.Fatalf("relaxed incr: %q", got)
	}
	// Volatile suppression: the duplicate replays without re-adding.
	if got := c.cmd(t, "incr 8 3 seq=1 relaxed"); !strings.HasPrefix(got, "3 @") {
		t.Fatalf("relaxed retry: %q", got)
	}
	// A durable write on the same key folds the overlay entry — and its
	// record — into a persistent section.
	if got := c.cmd(t, "incr 8 1 seq=2"); got != "4" {
		t.Fatalf("durable fold: %q", got)
	}
	if got := c.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED") {
		t.Fatalf("crash: %q", got)
	}
	// The folded record survived: both seqs are still recognized.
	if got := c.cmd(t, "incr 8 3 seq=1"); !strings.Contains(got, "seq too old") {
		t.Fatalf("stale after fold: %q", got)
	}
	if got := c.cmd(t, "incr 8 1 seq=2"); got != "4" {
		t.Fatalf("dup after crash: %q", got)
	}

	// The loss leg: a relaxed write whose epoch never closed loses the
	// value AND the record together, so the retry re-applies cleanly.
	c.cmd(t, "session 4")
	if got := c.cmd(t, "incr 99 5 seq=1 relaxed"); !strings.HasPrefix(got, "5 @") {
		t.Fatalf("relaxed: %q", got)
	}
	if got := c.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED") {
		t.Fatalf("crash: %q", got)
	}
	if got := c.cmd(t, "incr 99 5 seq=1"); got != "5" {
		t.Fatalf("retry after loss: %q", got)
	}
	if got := c.cmd(t, "get 99"); got != "VALUE 99 5" {
		t.Fatalf("value: %q", got)
	}
}

func TestSessionWindowEvictionFloor(t *testing.T) {
	s := startServer(t, WithShards(1), WithDeviceWords(1<<16),
		WithSessionWindow(1))
	c := dial(t, s.Addr().String())

	c.cmd(t, "session 1")
	if got := c.cmd(t, "incr 5 1 seq=10"); got != "1" {
		t.Fatalf("incr: %q", got)
	}
	// A second session fills the single-slot window: session 1's record
	// is evicted and the floor rises to its seq.
	c.cmd(t, "session 2")
	if got := c.cmd(t, "set 6 60 seq=3"); got != "STORED" {
		t.Fatalf("set: %q", got)
	}
	// Session 1's retry is now undecidable — refused, never re-applied.
	c.cmd(t, "session 1")
	if got := c.cmd(t, "incr 5 1 seq=10"); !strings.Contains(got, "seq too old") {
		t.Fatalf("evicted retry: %q", got)
	}
	// A brand-new session starting at/below the floor is equally
	// undecidable; above it is fine.
	c.cmd(t, "session 99")
	if got := c.cmd(t, "incr 5 1 seq=10"); !strings.Contains(got, "seq too old") {
		t.Fatalf("below-floor fresh session: %q", got)
	}
	if got := c.cmd(t, "incr 5 1 seq=11"); got != "2" {
		t.Fatalf("above-floor: %q", got)
	}
	// Eviction and floor survive a crash: they were stored in-section.
	if got := c.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED") {
		t.Fatalf("crash: %q", got)
	}
	c.cmd(t, "session 1")
	if got := c.cmd(t, "incr 5 1 seq=10"); !strings.Contains(got, "seq too old") {
		t.Fatalf("evicted retry after crash: %q", got)
	}
}

func TestSessionRetryAfterPromote(t *testing.T) {
	primary, follower := startReplPair(t)
	pc := dial(t, primary.Addr().String())
	fc := dial(t, follower.Addr().String())

	pc.cmd(t, "session 6")
	if got := pc.cmd(t, "incr 21 4 seq=1"); got != "4" {
		t.Fatalf("incr: %q", got)
	}
	if got := pc.cmd(t, "zincr 22 8 seq=2"); got != "8" {
		t.Fatalf("zincr: %q", got)
	}

	// The primary's acks are lost (simulated); the client fails over to
	// the promoted follower and replays its last requests. The records
	// rode the replication stream as group marks, so the follower
	// recognizes them.
	waitReplFor(t, "session marks on follower", func() bool {
		for _, sh := range follower.shards {
			sh.sess.mu.Lock()
			_, ok := sh.sess.m[6]
			sh.sess.mu.Unlock()
			if ok {
				return true
			}
		}
		return false
	})
	waitReplFor(t, "follower convergence", func() bool {
		return converged(t, pc, fc, 32)
	})

	if got := fc.cmd(t, "promote"); got != "OK PROMOTED" {
		t.Fatalf("promote: %q", got)
	}
	fc.cmd(t, "session 6")
	if got := fc.cmd(t, "incr 21 4 seq=1"); got != "4" {
		t.Fatalf("incr retry on promoted follower: %q", got)
	}
	if got := fc.cmd(t, "zincr 22 8 seq=2"); got != "8" {
		t.Fatalf("zincr retry on promoted follower: %q", got)
	}
	if got := fc.cmd(t, "get 21"); got != "VALUE 21 4" {
		t.Fatalf("value: %q", got)
	}
	if got := fc.cmd(t, "zget 22"); got != "VALUE 22 8" {
		t.Fatalf("zvalue: %q", got)
	}
	// Fresh traffic continues on the new primary.
	if got := fc.cmd(t, "incr 21 1 seq=3"); got != "5" {
		t.Fatalf("fresh seq on promoted follower: %q", got)
	}
}

func TestSessionSnapshotTransfersWindow(t *testing.T) {
	// Records persisted BEFORE a follower connects arrive via the
	// snapshot's session chunks rather than streamed marks.
	primary := startServer(t,
		WithReplListen("127.0.0.1:0"),
		WithShards(2),
		WithDeviceWords(1<<16))
	pc := dial(t, primary.Addr().String())
	pc.cmd(t, "session 8")
	if got := pc.cmd(t, "incr 31 6 seq=1"); got != "6" {
		t.Fatalf("incr: %q", got)
	}

	follower := startServer(t,
		WithReplicaOf(primary.ReplAddr().String()),
		WithShards(2),
		WithDeviceWords(1<<16))
	fc := dial(t, follower.Addr().String())
	waitReplFor(t, "snapshot convergence", func() bool {
		return converged(t, pc, fc, 32)
	})
	waitReplFor(t, "session window transfer", func() bool {
		for _, sh := range follower.shards {
			sh.sess.mu.Lock()
			_, ok := sh.sess.m[8]
			sh.sess.mu.Unlock()
			if ok {
				return true
			}
		}
		return false
	})

	if got := fc.cmd(t, "promote"); got != "OK PROMOTED" {
		t.Fatalf("promote: %q", got)
	}
	fc.cmd(t, "session 8")
	if got := fc.cmd(t, "incr 31 6 seq=1"); got != "6" {
		t.Fatalf("retry after snapshot+promote: %q", got)
	}
	if got := fc.cmd(t, "get 31"); got != "VALUE 31 6" {
		t.Fatalf("value: %q", got)
	}
}

func TestSessionStatsCounters(t *testing.T) {
	s := startServer(t, WithShards(1), WithDeviceWords(1<<16))
	c := dial(t, s.Addr().String())

	c.cmd(t, "session 1")
	c.cmd(t, "incr 1 1 seq=1")
	c.cmd(t, "incr 1 1 seq=1")
	c.cmd(t, "incr 1 1 seq=1")

	lines := c.lines(t, "stats")
	if v, ok := replStat(lines, "server_session_ops"); !ok || v != "3" {
		t.Fatalf("session_ops: %q %v", v, ok)
	}
	if v, ok := replStat(lines, "server_session_dups"); !ok || v != "2" {
		t.Fatalf("session_dups: %q %v", v, ok)
	}
}
