package cacheserver

import (
	"sort"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/proto"
	"tsp/internal/repl"
)

// The batch pipeline: each shard owns a bounded request queue, a drain
// lock, and one worker goroutine. Handlers enqueue a request's
// operations as a group; a drain pulls every group already queued (up
// to BatchMax operations), executes them all inside ONE Atlas
// outermost critical section over the union of their stripe mutexes,
// and then completes every waiting handler at once. That is the
// paper's procrastination argument applied to the server's own request
// path: the persistence cost — acquire/release log records, undo
// logging, the OCS commit — is paid once per DRAINED BATCH instead of
// once per operation, so the per-op cost shrinks as load (and
// therefore batch size) grows.
//
// Who runs the drain is a flat-combining split: the handler that just
// enqueued tries the drain lock without waiting and, if it wins, runs
// the drain in its own goroutine — no context switch, so an
// uncontended batched command costs what the synchronous path costs
// (see combine). Handlers that lose the lock ring the shard's doorbell
// and wait; the dedicated worker goroutine wakes, takes its turn on
// the drain lock, and flushes what the combiners left (see worker).
// An idle server therefore loses nothing — the flush-on-idle contract,
// enforced at every layer: a single op on an idle pipeline runs inline
// on the synchronous path (see Server.exec and shard.pipelineActive),
// a multi-op group on an idle pipeline is drained by its own handler
// the instant it is enqueued, and a full queue degrades to the
// synchronous path instead of blocking the handler (see
// Server.tryEnqueue).
//
// Crash safety is inherited rather than re-proven: every drain
// executes under the shard read lock, and the administrative crash
// command tears the stack down under the shard WRITE lock, so a
// simulated power failure always lands between batches, never inside
// one — each drained batch is one OCS and is therefore applied or
// rolled back as a unit. Requests still in the queue live in volatile
// Go memory the simulated crash does not touch; they simply execute
// against the recovered stack, the drain re-registering its Atlas
// thread under the new runtime generation exactly like a connection
// does.

// opKind selects the map operation a batchOp performs.
type opKind uint8

const (
	opGet opKind = iota
	opSet
	opIncr
	opDelete
	// The opZ* kinds write the ordered keyspace (the shard's skip
	// list). They ride the same drained batches as map ops — the drain
	// lock serializes them into commit order, which is what replication
	// needs — but the skip list itself takes no Atlas measures: its
	// bottom-level CAS is both linearization and durability point.
	opZSet
	opZIncr
	opZDelete
	// The opFlush* kinds are the epoch drain's writes (see epoch.go):
	// each carries the overlay sequence it snapshotted and applies only
	// if that entry is still pending — a newer relaxed write or a
	// durable fold between snapshot and apply supersedes it.
	opFlushSet
	opFlushDel
	opFlushZSet
	opFlushZDel
)

// batchOp is one key operation plus its result slots. Ops travel by
// slice; the executor writes results in place and the channel close on
// batchReq.done publishes them back to the waiting handler.
type batchOp struct {
	kind opKind
	key  uint64
	arg  uint64 // value for set, delta for incr
	seq  uint64 // overlay sequence for the opFlush* kinds

	// The sess* fields ride only on opFlush* ops whose overlay entry
	// was a sessioned relaxed write: on a successful apply the entry's
	// dedup record persists inside the same section (see sessPersist).
	sess uint64
	sseq uint64
	spay uint64

	val uint64
	ok  bool
	err error
}

// batchReq is one enqueued group: the ops one command contributes to
// one shard. done is closed after every op's result is filled in.
// epoch is non-zero only on epoch-drain groups; it stamps the
// replication log group so followers learn how far the relaxed
// frontier has propagated.
//
// A request with sess != 0 is a sessioned group (see session.go): the
// drain re-checks the dedup window, applies the ops, and commits the
// session record inside the one section — sessDup/sessOld/sessPay
// carry the verdict back. marks and floor ride only on follower-apply
// groups: replicated session records (and the primary's eviction
// floor) that must commit atomically with the group's ops.
type batchReq struct {
	ops   []batchOp
	epoch uint64

	sess    uint64
	sseq    uint64
	wkey    uint64
	sessCmd proto.Cmd
	sessDup bool
	sessOld bool
	sessPay uint64

	marks []repl.SessRec
	floor uint64

	done chan struct{}
}

// workerThread returns the drain's Atlas thread on the current stack
// incarnation, re-registering after a crash replaced the runtime. Only
// the drain-lock holder (worker or combiner) touches wth/wgen, and the
// caller holds the shard read lock, which keeps gen stable.
func (sh *shard) workerThread() (*atlas.Thread, error) {
	if sh.wth != nil && sh.wgen == sh.gen.Load() {
		return sh.wth, nil
	}
	th, err := sh.stk.RT.NewThread()
	if err != nil {
		return nil, err
	}
	sh.wth = th
	sh.wgen = sh.gen.Load()
	return th, nil
}

// worker is the pipeline's liveness backstop. Nobody blocks receiving
// on the queue — an enqueuer that wins the drain lock flushes the queue
// in its own goroutine (see combine), paying no handoff. Only when the
// lock is contended does the loser ring the doorbell, and the worker
// wakes, waits its turn on the drain lock, and flushes whatever the
// combiners left behind. The doorbell has capacity one: rings coalesce,
// and a wake that finds the queue already drained costs one empty
// drainAll.
func (sh *shard) worker() {
	defer close(sh.workerDone)
	for {
		_, ok := <-sh.doorbell
		sh.drainAll()
		if !ok {
			return
		}
	}
}

// ringDoorbell wakes the worker if it is not already pending a wake.
// Must not be called after closePipeline (the server only closes once
// every connection handler has exited).
func (sh *shard) ringDoorbell() {
	select {
	case sh.doorbell <- struct{}{}:
	default:
	}
}

// drainLocked pulls the next batch — at most batchMax ops, never
// splitting a group — off the carry slot and the queue. Caller holds
// combineMu. A group that would overflow this batch parks in sh.carry
// for the next call, keeping its one-OCS atomicity intact.
func (sh *shard) drainLocked() ([]*batchReq, int) {
	max := sh.cfg.batchMax
	pending := sh.pendingScratch[:0]
	nops := 0
	if sh.carry != nil {
		pending = append(pending, sh.carry)
		nops = len(sh.carry.ops)
		sh.carry = nil
	}
	for nops < max {
		select {
		case r := <-sh.queue:
			if nops+len(r.ops) > max {
				sh.carry = r
				sh.pendingScratch = pending
				return pending, nops
			}
			pending = append(pending, r)
			nops += len(r.ops)
		default:
			sh.pendingScratch = pending
			return pending, nops
		}
	}
	sh.pendingScratch = pending
	return pending, nops
}

// drainAll flushes the queue to empty (in batchMax-bounded sections),
// blocking for the drain lock. The worker's path.
func (sh *shard) drainAll() {
	sh.combineMu.Lock()
	sh.busy.Store(true)
	for {
		reqs, nops := sh.drainLocked()
		if len(reqs) == 0 {
			break
		}
		sh.runBatch(reqs, nops)
	}
	sh.busy.Store(false)
	sh.combineMu.Unlock()
}

// combine is the flat-combining fast path: the goroutine that just
// enqueued req tries to take the drain lock without waiting and, if it
// wins, drains and executes batches itself until its own request
// completes — the batch runs with zero goroutine handoff, which is
// what lets an uncontended batched op cost the same as the synchronous
// path. Groups drained alongside req complete with it; groups still
// queued when combine returns belong to enqueuers that lost the drain
// lock, and each of those rings the doorbell, so the worker flushes
// them. Returns whether req completed; on false the caller must ring
// the doorbell and wait.
func (sh *shard) combine(req *batchReq) bool {
	if !sh.combineMu.TryLock() {
		return false
	}
	sh.busy.Store(true)
	done := false
	for {
		select {
		case <-req.done:
			done = true
		default:
		}
		if done {
			break
		}
		reqs, nops := sh.drainLocked()
		if len(reqs) == 0 {
			// req is neither queued nor done: a prior lock holder
			// drained it and is completing it. Fall back to waiting.
			break
		}
		sh.runBatch(reqs, nops)
	}
	sh.busy.Store(false)
	sh.combineMu.Unlock()
	return done
}

// runBatch executes one drained batch of requests inside a single
// outermost critical section over the union of their stripe mutexes,
// then completes every request. The caller holds combineMu, so at most
// one batch is in flight per shard and the scratch buffers and drain
// thread are single-owner. Stripes are deduplicated and acquired in
// ascending order; the drain-lock holder is the only multi-stripe
// acquirer on this shard (synchronous-path ops lock one stripe at a
// time), so the ordering makes the acquisition deadlock-free.
func (sh *shard) runBatch(reqs []*batchReq, nops int) {
	sh.mu.RLock()
	th, err := sh.workerThread()
	if err != nil {
		sh.mu.RUnlock()
		for _, r := range reqs {
			for i := range r.ops {
				r.ops[i].err = err
			}
			close(r.done)
		}
		return
	}
	m := sh.stk.Map
	stripes := sh.stripeScratch[:0]
	hasMut := false
	for _, r := range reqs {
		for i := range r.ops {
			if isZ(r.ops[i].kind) {
				// Skip-list ops need no stripe mutex: the structure is
				// lock-free. They still execute inside the section so
				// the batch stays one commit-ordered unit.
				continue
			}
			if r.ops[i].kind != opGet {
				hasMut = true
			}
			stripes = append(stripes, m.StripeOf(r.ops[i].key))
		}
	}
	sort.Ints(stripes)
	mus := sh.mutexScratch[:0]
	last := -1
	n := 0
	for _, st := range stripes {
		if st != last {
			mus = append(mus, m.StripeMutex(st))
			stripes[n] = st
			n++
			last = st
		}
	}
	uniq := stripes[:n]

	start := time.Now()
	_ = th.Section(mus, func() error {
		// Section-wide seqlock bracket: hold every involved stripe odd
		// for the whole group so optimistic readers can never validate a
		// half-applied batch. The *Locked map variants do not bump on
		// their own (see hashmap.BeginStripeWrites) — per-mutation
		// brackets would leave validatable quiet windows between a
		// group's mutations, tearing cross-key mget snapshots.
		if hasMut {
			for _, st := range uniq {
				m.BeginStripeWrites(st)
			}
			defer func() {
				for _, st := range uniq {
					m.EndStripeWrites(st)
				}
			}()
		}
		for _, r := range reqs {
			if r.sess != 0 {
				// Sessioned group: window check, effects, and dedup
				// record in this one section (see session.go).
				sh.runSessReq(th, r)
				continue
			}
			for i := range r.ops {
				sh.execOp(th, &r.ops[i], true)
			}
			// Follower-apply groups carry the primary's session records
			// (and floor), committed with the ops they witnessed.
			for _, mk := range r.marks {
				sh.sessPersist(th, mk.Sess, mk.Seq, mk.Payload, mk.Key)
			}
			if r.floor > 0 {
				sh.sessRaiseFloor(th, r.floor)
			}
		}
		return nil
	})
	// One latency observation and one size observation per drained
	// group — the amortization the stats should make visible.
	sh.tel.OpLatency.Observe(time.Since(start))
	sh.tel.BatchSize.ObserveValue(uint64(nops))
	sh.tel.Server.Batches.Inc()
	sh.tel.Server.BatchedOps.Add(uint64(nops))
	// Replication tail: the batch just committed as one OCS becomes one
	// replication log group. Still under the read lock, so a crash (and
	// its generation bump) cannot land between commit and append.
	if sh.replLog != nil {
		sh.appendRepl(reqs)
	}
	sh.stripeScratch, sh.mutexScratch = stripes[:0], mus[:0]
	sh.mu.RUnlock()
	for _, r := range reqs {
		close(r.done)
	}
}

// execOp runs one op against the shard's map with th, recording the
// protocol counters. locked selects the *Locked map variants for the
// batch path, where the section already holds every stripe mutex the
// group needs; the synchronous path lets each call take its own.
//
// Tier interleaving happens here: reads consult the shard's relaxed
// overlay first (read-your-writes across tiers), and a durable write
// to a key with a pending relaxed entry pops that entry — folding it
// into this critical section, so the durable op's result accounts for
// the buffered state it supersedes. All overlay touches are gated on
// the atomic size, so an all-durable workload pays one atomic load.
func (sh *shard) execOp(th *atlas.Thread, op *batchOp, locked bool) {
	m := sh.stk.Map
	switch op.kind {
	case opGet:
		sh.tel.Server.Gets.Inc()
		if e, hit := sh.ovl.get(op.key, false); hit {
			op.val, op.ok = e.val, !e.del
		} else if locked {
			op.val, op.ok, op.err = m.GetLocked(th, op.key)
		} else {
			op.val, op.ok, op.err = m.Get(th, op.key)
		}
		if op.ok {
			sh.tel.Server.Hits.Inc()
		}
	case opSet:
		sh.takeFold(th, op.key, false, locked)
		if locked {
			op.err = m.PutLocked(th, op.key, op.arg)
		} else {
			op.err = m.Put(th, op.key, op.arg)
		}
		if op.err == nil {
			op.ok = true
			sh.tel.Server.Sets.Inc()
		}
	case opIncr:
		if op.err = sh.foldOverlay(th, op.key, false, locked); op.err != nil {
			return
		}
		if locked {
			op.val, op.err = m.IncLocked(th, op.key, op.arg)
		} else {
			op.val, op.err = m.Inc(th, op.key, op.arg)
		}
		if op.err == nil {
			op.ok = true
			sh.tel.Server.Sets.Inc()
		}
	case opDelete:
		oe, hadOv := sh.takeFold(th, op.key, false, locked)
		if locked {
			op.ok, op.err = m.DeleteLocked(th, op.key)
		} else {
			op.ok, op.err = m.Delete(th, op.key)
		}
		if op.err == nil {
			if hadOv {
				// The overlay held the key's logical state: present unless
				// the pending entry was itself a delete.
				op.ok = !oe.del
			}
			sh.tel.Server.Deletes.Inc()
		}
	case opZSet:
		sh.takeFold(th, op.key, true, locked)
		_, op.err = sh.stk.List.Put(op.key, op.arg)
		if op.err == nil {
			op.ok = true
			op.val = op.arg
			sh.tel.Server.ZSets.Inc()
		}
	case opZIncr:
		if op.err = sh.foldOverlay(th, op.key, true, locked); op.err != nil {
			return
		}
		op.val, op.err = sh.stk.List.Inc(op.key, op.arg)
		if op.err == nil {
			op.ok = true
			sh.tel.Server.ZSets.Inc()
		}
	case opZDelete:
		oe, hadOv := sh.takeFold(th, op.key, true, locked)
		op.ok, op.err = sh.stk.List.Delete(op.key)
		if op.err == nil {
			if hadOv {
				op.ok = !oe.del
			}
			sh.tel.Server.ZDeletes.Inc()
		}

	case opFlushSet:
		if !sh.ovl.stillPending(op.key, false, op.seq) {
			return
		}
		if locked {
			op.err = m.PutLocked(th, op.key, op.arg)
		} else {
			op.err = m.Put(th, op.key, op.arg)
		}
		if op.err == nil {
			op.ok = true
			op.val = op.arg
			sh.tel.Server.Sets.Inc()
			sh.ovl.clearIfSeq(op.key, false, op.seq)
			sh.flushSess(th, op, locked)
		}
	case opFlushDel:
		if !sh.ovl.stillPending(op.key, false, op.seq) {
			return
		}
		if locked {
			_, op.err = m.DeleteLocked(th, op.key)
		} else {
			_, op.err = m.Delete(th, op.key)
		}
		if op.err == nil {
			op.ok = true
			sh.tel.Server.Deletes.Inc()
			sh.ovl.clearIfSeq(op.key, false, op.seq)
			sh.flushSess(th, op, locked)
		}
	case opFlushZSet:
		if !sh.ovl.stillPending(op.key, true, op.seq) {
			return
		}
		_, op.err = sh.stk.List.Put(op.key, op.arg)
		if op.err == nil {
			op.ok = true
			op.val = op.arg
			sh.tel.Server.ZSets.Inc()
			sh.ovl.clearIfSeq(op.key, true, op.seq)
			sh.flushSess(th, op, locked)
		}
	case opFlushZDel:
		if !sh.ovl.stillPending(op.key, true, op.seq) {
			return
		}
		_, op.err = sh.stk.List.Delete(op.key)
		if op.err == nil {
			op.ok = true
			sh.tel.Server.ZDeletes.Inc()
			sh.ovl.clearIfSeq(op.key, true, op.seq)
			sh.flushSess(th, op, locked)
		}
	}
}

// flushSess persists the dedup record a sessioned relaxed write
// buffered beside its value, inside the flush's section — value and
// record become durable together, completing the relaxed tier's
// exactly-once story (see session.go). Flush ops always run on the
// locked drain path; the guard is belt and suspenders.
func (sh *shard) flushSess(th *atlas.Thread, op *batchOp, locked bool) {
	if locked && op.sess != 0 {
		sh.sessPersist(th, op.sess, op.sseq, op.spay, op.key)
	}
}

// takeFold pops the key's pending overlay entry (the durable-write
// fold) and, when the entry was a sessioned relaxed write taken on the
// locked drain path, persists its dedup record inside the open section
// — the fold is making the buffered value durable, so its record must
// become durable with it or a crash between the two would let the
// session's retry apply a second time. An unlocked (synchronous-path)
// fold has no section open at this scope and skips the record; the
// volatile mirror still suppresses retries until a crash, and a
// replicating primary never folds on the synchronous path (DESIGN.md
// §12 documents the residual non-replicated case).
func (sh *shard) takeFold(th *atlas.Thread, key uint64, list, locked bool) (ovEntry, bool) {
	e, ok := sh.ovl.take(key, list)
	if ok && locked && e.sess != 0 {
		sh.sessPersist(th, e.sess, e.sseq, e.spay, key)
	}
	return e, ok
}

// foldOverlay materializes a key's pending relaxed entry into the
// engine — a put of the buffered value, or a delete for a buffered
// tombstone — so an arithmetic durable op (incr/zincr) starts from the
// logical state its connection has already been acked.
func (sh *shard) foldOverlay(th *atlas.Thread, key uint64, list, locked bool) error {
	e, ok := sh.takeFold(th, key, list, locked)
	if !ok {
		return nil
	}
	if list {
		if e.del {
			_, err := sh.stk.List.Delete(key)
			return err
		}
		_, err := sh.stk.List.Put(key, e.val)
		return err
	}
	m := sh.stk.Map
	switch {
	case e.del && locked:
		_, err := m.DeleteLocked(th, key)
		return err
	case e.del:
		_, err := m.Delete(th, key)
		return err
	case locked:
		return m.PutLocked(th, key, e.val)
	default:
		return m.Put(th, key, e.val)
	}
}

// isZ reports whether an op kind targets the ordered keyspace.
func isZ(k opKind) bool {
	return k == opZSet || k == opZIncr || k == opZDelete ||
		k == opFlushZSet || k == opFlushZDel
}

// pipelineActive reports whether the shard's worker has a drain in
// flight or groups already waiting. A single op arriving now will
// coalesce into (or immediately follow) an existing batch, so routing
// it through the queue buys amortization; on an idle pipeline the same
// op would only pay two goroutine handoffs to share a section with
// nobody, so exec keeps it on the inline path instead.
func (sh *shard) pipelineActive() bool {
	return sh.queue != nil && (sh.busy.Load() || len(sh.queue) > 0)
}

// closePipeline stops the worker after the last enqueuer is gone: the
// doorbell is closed, the worker performs one final drain (every
// queued request is executed, never dropped), and the call returns
// when it has exited.
func (sh *shard) closePipeline() {
	if sh.queue == nil {
		return
	}
	close(sh.doorbell)
	<-sh.workerDone
}
