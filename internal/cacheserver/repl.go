package cacheserver

import (
	"errors"
	"fmt"
	"net"

	"tsp/internal/repl"
	"tsp/internal/telemetry"
)

// Replication integration (see internal/repl for the protocol and the
// paper's prevention argument). The replication unit is the batch
// pipeline's drained group: runBatch appends each committed group's
// resolved effects to the log while still holding the shard read lock,
// so a crash (which needs the write lock) can never separate an OCS
// commit from its log entry. Order is made unambiguous by routing —
// on a replicating primary every mutating group goes through the
// shard's drain lock (the pipeline, or runGroupDirect when the
// pipeline can't take it), never the synchronous path, so per shard
// the log order IS the commit order, and keys never span shards, so
// per-key order is total. Reads keep the synchronous fast path: they
// produce no log entries.

// replRole names the server's replication role for stats: "primary",
// "follower", "promoted" (a follower after promote), or "" when
// replication is not configured.
func (s *Server) replRole() string {
	switch {
	case s.replPrimary != nil:
		return "primary"
	case s.replFollower == nil:
		return ""
	case s.readOnly.Load():
		return "follower"
	default:
		return "promoted"
	}
}

// ReplAddr returns the primary's replication listener address, or nil
// when the server is not a replication primary.
func (s *Server) ReplAddr() net.Addr {
	if s.replPrimary == nil {
		return nil
	}
	if a, err := net.ResolveTCPAddr("tcp", s.replPrimary.Addr()); err == nil {
		return a
	}
	return nil
}

// ReadOnly reports whether the server currently rejects client
// mutations (follower mode before promotion).
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// startReplication wires the configured replication role. Called by
// New after the shards exist; the shard replLog fields are written
// before any client traffic, and every later reader is ordered after
// New by the connection accept (or, for the batch workers, by the
// doorbell channel), so no lock is needed.
func (s *Server) startReplication() error {
	if s.cfg.replListen != "" {
		s.replLog = repl.NewLog(s.cfg.replWindow)
		for _, sh := range s.shards {
			sh.replLog = s.replLog
		}
		p, err := repl.ListenPrimary(s.cfg.replListen, repl.PrimaryConfig{
			Log:      s.replLog,
			Snapshot: s.replSnapshot,
			Sessions: s.replSessions,
			Tel:      s.replTel,
			// Every recorded follower ack re-arms parked `wait repl`
			// barriers (see epoch.go). The wake pointer is initialized by
			// startEpochClock, which New runs before replication starts.
			OnAck: func() { broadcastWake(&s.ackWake) },
		})
		if err != nil {
			s.replLog.Close()
			return fmt.Errorf("cacheserver: %w", err)
		}
		s.replPrimary = p
	}
	if s.cfg.replicaOf != "" {
		s.readOnly.Store(true)
		s.replCS = s.newConnState()
		f, err := repl.StartFollower(repl.FollowerConfig{
			Addr:    s.cfg.replicaOf,
			Applier: &replApplier{s: s, cs: s.replCS},
			Tel:     s.replTel,
		})
		if err != nil {
			return fmt.Errorf("cacheserver: %w", err)
		}
		s.replFollower = f
	}
	return nil
}

// closeReplication tears the replication role down. Called by Close
// before the shard pipelines stop: the follower's applier and the
// primary's snapshot callback both execute through the shards and must
// be gone first.
func (s *Server) closeReplication() {
	if s.replFollower != nil {
		s.replFollower.Stop()
	}
	if s.replPrimary != nil {
		s.replPrimary.Close()
	}
	if s.replLog != nil {
		s.replLog.Close()
	}
	if s.replCS != nil {
		s.releaseConn(s.replCS)
	}
}

// replSnapshot streams a full copy of every shard to a catching-up
// follower. Each shard is copied under its write lock — the same full
// quiescence the crash command uses, since Map.Range reads the device
// directly — and released before the pairs go to the network, so the
// pause per shard is the copy, not the transfer. The log position the
// primary captured before calling this may trail the copied state;
// that is safe because replicated ops are absolute and replay
// converges.
func (s *Server) replSnapshot(emit func([]repl.Pair) error) error {
	for _, sh := range s.shards {
		pairs, err := sh.pairs()
		if err != nil {
			return err
		}
		if err := emit(pairs); err != nil {
			return err
		}
	}
	return nil
}

// pairs copies the shard's live contents for a snapshot transfer.
func (sh *shard) pairs() ([]repl.Pair, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]repl.Pair, 0, 1024)
	sh.stk.Map.Range(func(k, v uint64) bool {
		out = append(out, repl.Pair{Key: k, Val: v})
		return true
	})
	if sh.stk.List != nil {
		sh.stk.List.Range(func(k, v uint64) bool {
			out = append(out, repl.Pair{List: true, Key: k, Val: v})
			return true
		})
	}
	return out, nil
}

// replSessions streams every shard's PERSISTENT session dedup records
// (and eviction floor) to a catching-up follower, after the keyspace
// snapshot. Volatile-only records guard overlay values the snapshot
// cannot see either; both sides of that pair are lost together on a
// promote, which is the relaxed tier's normal loss shape.
func (s *Server) replSessions(emit func([]repl.SessRec, uint64) error) error {
	for _, sh := range s.shards {
		recs, floor := sh.sessSnapshot()
		if len(recs) == 0 && floor == 0 {
			continue
		}
		if err := emit(recs, floor); err != nil {
			return err
		}
	}
	return nil
}

// runGroupDirect executes a mutating group under the shard's drain
// lock when the pipeline could not take it (disabled, oversized group,
// or full queue). On a replicating primary this replaces the
// synchronous fallback: commit order must match log append order, and
// only the drain-lock holder has that guarantee. Oversized groups are
// chunked to the batch bound (each chunk one OCS and one log group) —
// the same atomicity the synchronous fallback offered, with the bound
// keeping each section inside the undo-log ring. epoch is non-zero
// only for epoch-drain groups (see shard.flushOverlay); it rides the
// replication groups so followers track the relaxed frontier.
func (s *Server) runGroupDirect(sh *shard, ops []batchOp, epoch uint64) {
	chunk := sh.cfg.batchMax
	if chunk < 1 {
		chunk = 64
	}
	sh.combineMu.Lock()
	sh.busy.Store(true)
	for off := 0; off < len(ops); off += chunk {
		end := off + chunk
		if end > len(ops) {
			end = len(ops)
		}
		req := &batchReq{ops: ops[off:end], epoch: epoch, done: make(chan struct{})}
		sh.runBatch([]*batchReq{req}, end-off)
	}
	sh.busy.Store(false)
	sh.combineMu.Unlock()
}

// appendRepl turns one drained batch's committed effects into a
// replication log group: sets and resolved increments become absolute
// sets, applied deletes become deletes, failed and read-only ops vanish.
// Epoch-drain flushes replicate the same way — an applied flush is an
// absolute write — and stamp the group with the epoch being closed.
// Caller is runBatch, still under the shard read lock.
func (sh *shard) appendRepl(reqs []*batchReq) {
	var rops []repl.Op
	var epoch uint64
	// Session records persisted during this batch (sessPersist fills
	// markScratch only on a primary) ride the same log group as the ops
	// they witnessed, so a follower commits both in one section. The
	// slice must be copied: the log ring retains what it is handed.
	var marks []repl.SessRec
	if len(sh.markScratch) > 0 {
		marks = append(marks, sh.markScratch...)
		sh.markScratch = sh.markScratch[:0]
	}
	for _, r := range reqs {
		if r.epoch > epoch {
			epoch = r.epoch
		}
		for i := range r.ops {
			op := &r.ops[i]
			if op.err != nil {
				continue
			}
			switch op.kind {
			case opSet:
				rops = append(rops, repl.Op{Key: op.key, Val: op.arg})
			case opIncr:
				rops = append(rops, repl.Op{Key: op.key, Val: op.val})
			case opDelete:
				if op.ok {
					rops = append(rops, repl.Op{Del: true, Key: op.key})
				}
			case opZSet, opZIncr:
				// Both replicate as the absolute value they produced, so
				// suffix replay over a snapshot converges for the ordered
				// keyspace exactly as for the map.
				rops = append(rops, repl.Op{List: true, Key: op.key, Val: op.val})
			case opZDelete:
				if op.ok {
					rops = append(rops, repl.Op{Del: true, List: true, Key: op.key})
				}
			case opFlushSet:
				if op.ok {
					rops = append(rops, repl.Op{Key: op.key, Val: op.arg})
				}
			case opFlushDel:
				if op.ok {
					rops = append(rops, repl.Op{Del: true, Key: op.key})
				}
			case opFlushZSet:
				if op.ok {
					rops = append(rops, repl.Op{List: true, Key: op.key, Val: op.val})
				}
			case opFlushZDel:
				if op.ok {
					rops = append(rops, repl.Op{Del: true, List: true, Key: op.key})
				}
			}
		}
	}
	if len(rops) > 0 || len(marks) > 0 {
		sh.replLog.Append(rops, epoch, marks)
	}
}

// runGroupMarks executes a follower-apply group under the shard's
// drain lock: the replicated ops plus the session records (and floor)
// that must commit in the same section as the last chunk. Works with
// zero ops — a marks-only group still opens one section, exactly like
// a skip-list-only batch.
func (s *Server) runGroupMarks(sh *shard, ops []batchOp, marks []repl.SessRec, floor uint64) {
	chunk := sh.cfg.batchMax
	if chunk < 1 {
		chunk = 64
	}
	sh.combineMu.Lock()
	sh.busy.Store(true)
	off := 0
	for {
		end := off + chunk
		if end > len(ops) {
			end = len(ops)
		}
		req := &batchReq{ops: ops[off:end], done: make(chan struct{})}
		if end == len(ops) {
			req.marks, req.floor = marks, floor
		}
		sh.runBatch([]*batchReq{req}, end-off)
		if end == len(ops) {
			break
		}
		off = end
	}
	sh.busy.Store(false)
	sh.combineMu.Unlock()
}

// replApplier applies the replication stream through the server's own
// exec path — the same sharded stacks, Atlas critical sections and
// telemetry clients use, labeled CmdRepl. All calls arrive from the
// follower's single apply goroutine.
type replApplier struct {
	s  *Server
	cs *connState
}

// applyOps converts replicated ops to batch ops and executes them.
func (a *replApplier) applyOps(rops []repl.Op) error {
	if len(rops) == 0 {
		return nil
	}
	ops := make([]batchOp, len(rops))
	for i, r := range rops {
		switch {
		case r.List && r.Del:
			ops[i] = batchOp{kind: opZDelete, key: r.Key}
		case r.List:
			ops[i] = batchOp{kind: opZSet, key: r.Key, arg: r.Val}
		case r.Del:
			ops[i] = batchOp{kind: opDelete, key: r.Key}
		default:
			ops[i] = batchOp{kind: opSet, key: r.Key, arg: r.Val}
		}
	}
	a.s.exec(a.cs, telemetry.CmdRepl, ops)
	errs := make([]error, 0, 1)
	for i := range ops {
		if ops[i].err != nil {
			errs = append(errs, ops[i].err)
		}
	}
	return errors.Join(errs...)
}

// Wipe deletes every local key so an incoming snapshot replaces the
// follower's state rather than merging with it.
func (a *replApplier) Wipe() error {
	for _, sh := range a.s.shards {
		pairs, err := sh.pairs()
		if err != nil {
			return err
		}
		dels := make([]repl.Op, len(pairs))
		for i, p := range pairs {
			dels[i] = repl.Op{Del: true, List: p.List, Key: p.Key}
		}
		if err := a.applyOps(dels); err != nil {
			return err
		}
	}
	return nil
}

// ApplyPairs installs one snapshot chunk as absolute sets.
func (a *replApplier) ApplyPairs(pairs []repl.Pair) error {
	sets := make([]repl.Op, len(pairs))
	for i, p := range pairs {
		sets[i] = repl.Op{List: p.List, Key: p.Key, Val: p.Val}
	}
	return a.applyOps(sets)
}

// ApplySessions merges one snapshot session-window chunk: records
// routed to their keys' shards, the chunk's floor raised on every
// shard. The floor must land everywhere because the follower's shard
// map need not mirror the primary's — raising it too broadly only
// turns some replayable retries into "seq too old", never into a
// duplicate application, which is the safe direction.
func (a *replApplier) ApplySessions(recs []repl.SessRec, floor uint64) error {
	byShard := make(map[*shard][]repl.SessRec)
	for _, m := range recs {
		sh := a.s.shardOf(m.Key)
		byShard[sh] = append(byShard[sh], m)
	}
	for _, sh := range a.s.shards {
		ms := byShard[sh]
		if len(ms) == 0 && floor == 0 {
			continue
		}
		a.s.runGroupMarks(sh, nil, ms, floor)
	}
	return nil
}

// ApplyGroup applies one committed group in commit order. Groups that
// carry session records route ops AND marks by shard so each shard
// commits its ops and the records that witnessed them in one section —
// a promoted follower then answers the primary's in-flight retries
// exactly as the primary would have.
func (a *replApplier) ApplyGroup(rops []repl.Op, marks []repl.SessRec) error {
	if len(marks) == 0 {
		return a.applyOps(rops)
	}
	type part struct {
		ops   []batchOp
		marks []repl.SessRec
	}
	parts := make(map[*shard]*part)
	at := func(key uint64) *part {
		sh := a.s.shardOf(key)
		p := parts[sh]
		if p == nil {
			p = &part{}
			parts[sh] = p
		}
		return p
	}
	for _, r := range rops {
		var op batchOp
		switch {
		case r.List && r.Del:
			op = batchOp{kind: opZDelete, key: r.Key}
		case r.List:
			op = batchOp{kind: opZSet, key: r.Key, arg: r.Val}
		case r.Del:
			op = batchOp{kind: opDelete, key: r.Key}
		default:
			op = batchOp{kind: opSet, key: r.Key, arg: r.Val}
		}
		p := at(r.Key)
		p.ops = append(p.ops, op)
	}
	for _, m := range marks {
		p := at(m.Key)
		p.marks = append(p.marks, m)
	}
	var errs []error
	for _, sh := range a.s.shards {
		p := parts[sh]
		if p == nil {
			continue
		}
		a.s.runGroupMarks(sh, p.ops, p.marks, 0)
		for i := range p.ops {
			if p.ops[i].err != nil {
				errs = append(errs, p.ops[i].err)
			}
		}
	}
	return errors.Join(errs...)
}
