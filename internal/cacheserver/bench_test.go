package cacheserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// resident is the number of keys loaded before measurement. Every
// deployment shape carries the same resident set; what changes with the
// shard count is how much of it each stack holds.
const resident = 1 << 18

// benchmarkShards measures the in-process command path (parse,
// shard-route, locked map operation) over a large resident key set.
// A shard is a fixed-size storage stack — one runtime, one
// heap-allocator mutex, one 4096-bucket striped map — so a single-shard
// deployment concentrates the whole resident set in one map (64-entry
// average chains here) and funnels every fortified mutation through one
// runtime and one allocator lock. Sharding divides all of it: with four
// shards each map holds a quarter of the keys (16-entry chains) and the
// serialization points quadruple. The chain-length effect shows on any
// host; the lock effects add on multi-core ones. Each goroutine plays
// one connection with its own connState, the same shape the
// multi-client tests drive over the wire.
func benchmarkShards(b *testing.B, nShards int) {
	s, err := New(
		WithShards(nShards),
		WithMaxConns(64),
		WithDeviceWords(1<<22),
	)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()

	// Preload the resident set with a few parallel loader connections.
	const loaders = 8
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			cs := s.newConnState()
			defer s.releaseConn(cs)
			for k := l; k < resident; k += loaders {
				if resp := s.dispatch(cs, fmt.Sprintf("set %d 1", k)); resp != "STORED" {
					b.Errorf("preload: %s", resp)
					return
				}
			}
		}(l)
	}
	wg.Wait()
	if b.Failed() {
		b.FailNow()
	}

	var gid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cs := s.newConnState()
		defer s.releaseConn(cs)
		rng := gid.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			// splitmix64 step: key choice uncorrelated with shard hash.
			rng += 0x9e3779b97f4a7c15
			x := rng
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			k := x % resident
			var resp string
			if x>>60 < 4 { // 1 in 4: fortified overwrite
				resp = s.dispatch(cs, fmt.Sprintf("set %d %d", k, rng))
			} else { // 3 in 4: read
				resp = s.dispatch(cs, fmt.Sprintf("get %d", k))
			}
			if len(resp) >= 12 && resp[:12] == "SERVER_ERROR" {
				b.Fatal(resp)
			}
		}
	})
}

// The acceptance comparison: with >= 4 benchmark goroutines
// (go test -bench Shards -cpu 4,8) the multi-shard configurations must
// beat the single-shard one, whose global stack serializes all
// fortified mutations and concentrates the whole key population in one
// fixed-size map.
func BenchmarkShards1(b *testing.B) { benchmarkShards(b, 1) }
func BenchmarkShards2(b *testing.B) { benchmarkShards(b, 2) }
func BenchmarkShards4(b *testing.B) { benchmarkShards(b, 4) }
func BenchmarkShards8(b *testing.B) { benchmarkShards(b, 8) }

// BenchmarkMget8Keys measures the pipelined batch read: one request
// fanned out across every shard concurrently.
func BenchmarkMget8Keys(b *testing.B) {
	s, err := New(WithShards(4), WithMaxConns(64), WithDeviceWords(1<<21))
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()
	cs := s.newConnState()
	defer s.releaseConn(cs)
	s.dispatch(cs, "mset 1 1 2 2 3 3 4 4 5 5 6 6 7 7 8 8")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.dispatch(cs, "mget 1 2 3 4 5 6 7 8")
	}
}
