package cacheserver

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tsp/internal/telemetry"
)

// resident is the number of keys loaded before measurement. Every
// deployment shape carries the same resident set; what changes with the
// shard count is how much of it each stack holds.
const resident = 1 << 18

// preloadResident loads the resident key set with a few parallel loader
// connections before measurement starts.
func preloadResident(b *testing.B, s *Server) {
	b.Helper()
	const loaders = 8
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			cs := s.newConnState()
			defer s.releaseConn(cs)
			for k := l; k < resident; k += loaders {
				if resp := s.dispatch(cs, fmt.Sprintf("set %d 1", k)); resp != "STORED" {
					b.Errorf("preload: %s", resp)
					return
				}
			}
		}(l)
	}
	wg.Wait()
	if b.Failed() {
		b.FailNow()
	}
}

// benchmarkShards measures the in-process command path (parse,
// shard-route, locked map operation) over a large resident key set.
// A shard is a fixed-size storage stack — one runtime, one
// heap-allocator mutex, one 4096-bucket striped map — so a single-shard
// deployment concentrates the whole resident set in one map (64-entry
// average chains here) and funnels every fortified mutation through one
// runtime and one allocator lock. Sharding divides all of it: with four
// shards each map holds a quarter of the keys (16-entry chains) and the
// serialization points quadruple. The chain-length effect shows on any
// host; the lock effects add on multi-core ones. Each goroutine plays
// one connection with its own connState, the same shape the
// multi-client tests drive over the wire.
func benchmarkShards(b *testing.B, nShards int) {
	s, err := New(
		WithShards(nShards),
		WithMaxConns(64),
		WithDeviceWords(1<<22),
	)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()

	preloadResident(b, s)

	var gid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cs := s.newConnState()
		defer s.releaseConn(cs)
		rng := gid.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			// splitmix64 step: key choice uncorrelated with shard hash.
			rng += 0x9e3779b97f4a7c15
			x := rng
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			k := x % resident
			var resp string
			if x>>60 < 4 { // 1 in 4: fortified overwrite
				resp = s.dispatch(cs, fmt.Sprintf("set %d %d", k, rng))
			} else { // 3 in 4: read
				resp = s.dispatch(cs, fmt.Sprintf("get %d", k))
			}
			if len(resp) >= 12 && resp[:12] == "SERVER_ERROR" {
				b.Fatal(resp)
			}
		}
	})
}

// The acceptance comparison: with >= 4 benchmark goroutines
// (go test -bench Shards -cpu 4,8) the multi-shard configurations must
// beat the single-shard one, whose global stack serializes all
// fortified mutations and concentrates the whole key population in one
// fixed-size map.
func BenchmarkShards1(b *testing.B) { benchmarkShards(b, 1) }
func BenchmarkShards2(b *testing.B) { benchmarkShards(b, 2) }
func BenchmarkShards4(b *testing.B) { benchmarkShards(b, 4) }
func BenchmarkShards8(b *testing.B) { benchmarkShards(b, 8) }

// benchmarkMutations measures a pure-mutation workload with the batch
// pipeline on (the default BatchMax) or off (BatchMax 0 — the
// pre-pipeline synchronous path), reporting the client-observed set
// latency quantiles from the servers' own per-command histograms next
// to the usual ns/op. Run with -cpu 8 or higher: batching pays off
// when concurrent requests actually coalesce into shared critical
// sections, which the reported ops/batch metric makes visible.
func benchmarkMutations(b *testing.B, nShards, batchMax int) {
	s, err := New(
		WithShards(nShards),
		WithBatchMax(batchMax),
		WithMaxConns(64),
		WithDeviceWords(1<<22),
	)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()

	var gid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cs := s.newConnState()
		defer s.releaseConn(cs)
		rng := gid.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			rng += 0x9e3779b97f4a7c15
			x := rng
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			k := x % (1 << 16)
			if resp := s.dispatch(cs, fmt.Sprintf("set %d %d", k, rng)); resp != "STORED" {
				b.Fatal(resp)
			}
		}
	})
	b.StopTimer()
	v := s.aggregateViews()
	b.ReportMetric(us(v.cmdLat[telemetry.CmdSet].Quantile(0.50)), "p50_us")
	b.ReportMetric(us(v.cmdLat[telemetry.CmdSet].Quantile(0.95)), "p95_us")
	if n := v.batchSize.Count(); n > 0 {
		b.ReportMetric(float64(v.batchSize.Sum)/float64(n), "ops/batch")
	}
}

// benchmarkMsets measures the batched mutation workload: every request
// rewrites an 8-key group. With the pipeline on, each per-shard group
// runs inside ONE outermost critical section (plus whatever other
// groups the worker's drain coalesces in); with BatchMax 0 every op
// pays its own section on the synchronous path. This is where the
// per-group amortization shows as throughput.
func benchmarkMsets(b *testing.B, nShards, batchMax int) {
	s, err := New(
		WithShards(nShards),
		WithBatchMax(batchMax),
		WithMaxConns(64),
		WithDeviceWords(1<<22),
	)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()

	var gid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cs := s.newConnState()
		defer s.releaseConn(cs)
		rng := gid.Add(1) * 0x9e3779b97f4a7c15
		var sb strings.Builder
		for pb.Next() {
			rng += 0x9e3779b97f4a7c15
			x := rng
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			base := x % (1 << 16)
			sb.Reset()
			sb.WriteString("mset")
			for i := uint64(0); i < 8; i++ {
				fmt.Fprintf(&sb, " %d %d", base+i, rng)
			}
			if resp := s.dispatch(cs, sb.String()); resp != "STORED 8" {
				b.Fatal(resp)
			}
		}
	})
	b.StopTimer()
	v := s.aggregateViews()
	b.ReportMetric(us(v.cmdLat[telemetry.CmdMSet].Quantile(0.50)), "p50_us")
	b.ReportMetric(us(v.cmdLat[telemetry.CmdMSet].Quantile(0.95)), "p95_us")
	if n := v.batchSize.Count(); n > 0 {
		b.ReportMetric(float64(v.batchSize.Sum)/float64(n), "ops/batch")
	}
}

// benchmarkMsetsPinned is benchmarkMsets with every request's 8 keys
// pinned to ONE shard (rotating per request). A pinned group takes the
// single-shard fast path — one pipeline enqueue, one drain to wait on —
// where the spread group barriers on every touched shard's drain and
// so inherits the slowest queue's convoy. The p95 gap between this
// cell and MsetsBatched at the same shard count is that convoy,
// isolated; see EXPERIMENTS.md.
func benchmarkMsetsPinned(b *testing.B, nShards int) {
	s, err := New(
		WithShards(nShards),
		WithBatchMax(64),
		WithMaxConns(64),
		WithDeviceWords(1<<22),
	)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()

	// Partition the keyspace by owning shard so a request can draw all
	// 8 keys from a single shard's pool.
	byShard := make([][]uint64, nShards)
	for k := uint64(0); k < 1<<16; k++ {
		idx := s.shardOf(k).idx
		byShard[idx] = append(byShard[idx], k)
	}

	var gid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cs := s.newConnState()
		defer s.releaseConn(cs)
		rng := gid.Add(1) * 0x9e3779b97f4a7c15
		var sb strings.Builder
		for pb.Next() {
			rng += 0x9e3779b97f4a7c15
			x := rng
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			pool := byShard[x%uint64(nShards)]
			base := x % uint64(len(pool)-8)
			sb.Reset()
			sb.WriteString("mset")
			for i := uint64(0); i < 8; i++ {
				fmt.Fprintf(&sb, " %d %d", pool[base+i], rng)
			}
			if resp := s.dispatch(cs, sb.String()); resp != "STORED 8" {
				b.Fatal(resp)
			}
		}
	})
	b.StopTimer()
	v := s.aggregateViews()
	b.ReportMetric(us(v.cmdLat[telemetry.CmdMSet].Quantile(0.50)), "p50_us")
	b.ReportMetric(us(v.cmdLat[telemetry.CmdMSet].Quantile(0.95)), "p95_us")
	if n := v.batchSize.Count(); n > 0 {
		b.ReportMetric(float64(v.batchSize.Sum)/float64(n), "ops/batch")
	}
}

func BenchmarkMsetsBatchedShards1(b *testing.B)   { benchmarkMsets(b, 1, 64) }
func BenchmarkMsetsBatchedShards4(b *testing.B)   { benchmarkMsets(b, 4, 64) }
func BenchmarkMsetsBatchedShards8(b *testing.B)   { benchmarkMsets(b, 8, 64) }
func BenchmarkMsetsUnbatchedShards1(b *testing.B) { benchmarkMsets(b, 1, 0) }
func BenchmarkMsetsUnbatchedShards4(b *testing.B) { benchmarkMsets(b, 4, 0) }
func BenchmarkMsetsUnbatchedShards8(b *testing.B) { benchmarkMsets(b, 8, 0) }

func BenchmarkMsetsPinnedShards4(b *testing.B) { benchmarkMsetsPinned(b, 4) }
func BenchmarkMsetsPinnedShards8(b *testing.B) { benchmarkMsetsPinned(b, 8) }

func BenchmarkSetsBatchedShards1(b *testing.B)   { benchmarkMutations(b, 1, 64) }
func BenchmarkSetsBatchedShards4(b *testing.B)   { benchmarkMutations(b, 4, 64) }
func BenchmarkSetsBatchedShards8(b *testing.B)   { benchmarkMutations(b, 8, 64) }
func BenchmarkSetsUnbatchedShards1(b *testing.B) { benchmarkMutations(b, 1, 0) }
func BenchmarkSetsUnbatchedShards4(b *testing.B) { benchmarkMutations(b, 4, 0) }
func BenchmarkSetsUnbatchedShards8(b *testing.B) { benchmarkMutations(b, 8, 0) }

// benchmarkSetsRepl measures the pure-set workload with the preventive
// replication tier on or off. With replication on, an in-process
// follower applies every committed group, and the primary pays the
// tier's commit-path tax: every mutating group is forced through the
// shard drain lock (so log order matches commit order) and appended to
// the replication log under the shard read lock. The streaming and the
// follower's own Atlas work happen off the measured path; the reported
// lag quantiles show how far the copy trails.
func benchmarkSetsRepl(b *testing.B, replicated bool) {
	popts := []Option{
		WithShards(4),
		WithMaxConns(64),
		WithDeviceWords(1 << 22),
	}
	if replicated {
		popts = append(popts, WithReplListen("127.0.0.1:0"))
	}
	s, err := New(popts...)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()
	if replicated {
		f, err := New(
			WithReplicaOf(s.ReplAddr().String()),
			WithShards(4),
			WithMaxConns(64),
			WithDeviceWords(1<<22),
		)
		if err != nil {
			b.Fatalf("New follower: %v", err)
		}
		defer f.Close()
	}

	var gid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cs := s.newConnState()
		defer s.releaseConn(cs)
		rng := gid.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			rng += 0x9e3779b97f4a7c15
			x := rng
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			k := x % (1 << 16)
			if resp := s.dispatch(cs, fmt.Sprintf("set %d %d", k, rng)); resp != "STORED" {
				b.Fatal(resp)
			}
		}
	})
	b.StopTimer()
	v := s.aggregateViews()
	b.ReportMetric(us(v.cmdLat[telemetry.CmdSet].Quantile(0.50)), "p50_us")
	b.ReportMetric(us(v.cmdLat[telemetry.CmdSet].Quantile(0.95)), "p95_us")
	if lag := s.replTel.LagSnapshot(); lag.Count() > 0 {
		b.ReportMetric(us(lag.Quantile(0.50)), "lag_p50_us")
		b.ReportMetric(us(lag.Quantile(0.95)), "lag_p95_us")
	}
}

// The replication overhead comparison (make bench-repl): the same
// workload, shapes, and concurrency, differing only in whether a
// follower is streaming.
func BenchmarkSetsReplOn(b *testing.B)  { benchmarkSetsRepl(b, true) }
func BenchmarkSetsReplOff(b *testing.B) { benchmarkSetsRepl(b, false) }

// benchmarkGets measures the pure-read command path over the resident
// set: with optimistic reads on, every get is a seqlock-validated walk
// — no Atlas mutex, no pipeline entry, no connState thread; with them
// off it is the pre-optimistic locked path (stripe mutex per get).
// The gap between the two is what the locked machinery charges a
// workload that, by the recovery-observer argument, owes nothing
// (run with -cpu 8: the lock-free path scales with readers, the
// locked one serializes per stripe and runtime).
func benchmarkGets(b *testing.B, nShards int, optimistic bool) {
	s, err := New(
		WithShards(nShards),
		WithMaxConns(64),
		WithDeviceWords(1<<22),
		WithOptimisticReads(optimistic),
	)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()
	preloadResident(b, s)

	var gid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cs := s.newConnState()
		defer s.releaseConn(cs)
		rng := gid.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			rng += 0x9e3779b97f4a7c15
			x := rng
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			k := x % resident
			if resp := s.dispatch(cs, fmt.Sprintf("get %d", k)); len(resp) >= 12 && resp[:12] == "SERVER_ERROR" {
				b.Fatal(resp)
			}
		}
	})
	b.StopTimer()
	v := s.aggregateViews()
	b.ReportMetric(us(v.cmdLat[telemetry.CmdGet].Quantile(0.50)), "p50_us")
	b.ReportMetric(us(v.cmdLat[telemetry.CmdGet].Quantile(0.95)), "p95_us")
}

// The pure-get scaling comparison (make bench-read): identical workload
// and concurrency, differing only in the read path.
func BenchmarkGetsOptimisticShards1(b *testing.B) { benchmarkGets(b, 1, true) }
func BenchmarkGetsOptimisticShards4(b *testing.B) { benchmarkGets(b, 4, true) }
func BenchmarkGetsOptimisticShards8(b *testing.B) { benchmarkGets(b, 8, true) }
func BenchmarkGetsLockedShards1(b *testing.B)     { benchmarkGets(b, 1, false) }
func BenchmarkGetsLockedShards4(b *testing.B)     { benchmarkGets(b, 4, false) }
func BenchmarkGetsLockedShards8(b *testing.B)     { benchmarkGets(b, 8, false) }

// benchmarkReadMix measures the 90/10 get/set mix — the read-heavy
// shape the optimistic path exists for, with enough writes that
// readers actually collide with stripe critical sections and the
// fallback machinery gets exercised on the measured path.
func benchmarkReadMix(b *testing.B, nShards int, optimistic bool) {
	s, err := New(
		WithShards(nShards),
		WithMaxConns(64),
		WithDeviceWords(1<<22),
		WithOptimisticReads(optimistic),
	)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()
	preloadResident(b, s)

	var gid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cs := s.newConnState()
		defer s.releaseConn(cs)
		rng := gid.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			rng += 0x9e3779b97f4a7c15
			x := rng
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			k := x % resident
			var resp string
			if (x>>48)%10 == 0 { // 1 in 10: fortified overwrite
				resp = s.dispatch(cs, fmt.Sprintf("set %d %d", k, rng))
			} else { // 9 in 10: read
				resp = s.dispatch(cs, fmt.Sprintf("get %d", k))
			}
			if len(resp) >= 12 && resp[:12] == "SERVER_ERROR" {
				b.Fatal(resp)
			}
		}
	})
	b.StopTimer()
	v := s.aggregateViews()
	b.ReportMetric(us(v.cmdLat[telemetry.CmdGet].Quantile(0.50)), "get_p50_us")
	b.ReportMetric(us(v.cmdLat[telemetry.CmdGet].Quantile(0.95)), "get_p95_us")
	if optimistic {
		agg := v.agg
		if total := agg["map_opt_gets"] + agg["map_opt_fallbacks"]; total > 0 {
			b.ReportMetric(float64(agg["map_opt_gets"])/float64(total), "opt_hit_rate")
		}
	}
}

func BenchmarkReadMixOptimisticShards1(b *testing.B) { benchmarkReadMix(b, 1, true) }
func BenchmarkReadMixOptimisticShards4(b *testing.B) { benchmarkReadMix(b, 4, true) }
func BenchmarkReadMixOptimisticShards8(b *testing.B) { benchmarkReadMix(b, 8, true) }
func BenchmarkReadMixLockedShards1(b *testing.B)     { benchmarkReadMix(b, 1, false) }
func BenchmarkReadMixLockedShards4(b *testing.B)     { benchmarkReadMix(b, 4, false) }
func BenchmarkReadMixLockedShards8(b *testing.B)     { benchmarkReadMix(b, 8, false) }

// BenchmarkMget8Keys measures the pipelined batch read: one request
// fanned out across every shard concurrently.
func BenchmarkMget8Keys(b *testing.B) {
	s, err := New(WithShards(4), WithMaxConns(64), WithDeviceWords(1<<21))
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()
	cs := s.newConnState()
	defer s.releaseConn(cs)
	s.dispatch(cs, "mset 1 1 2 2 3 3 4 4 5 5 6 6 7 7 8 8")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.dispatch(cs, "mget 1 2 3 4 5 6 7 8")
	}
}
